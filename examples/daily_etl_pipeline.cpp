// Scenario example: a recurring nightly ETL pipeline sharing the cluster
// with morning interactive queries — the workload mix from the paper's
// introduction.
//
// A revenue-reporting workflow is released at midnight with a 06:00
// deadline (loose: the pipeline itself needs well under two hours, like the
// paper's 24h-deadline / 2h-runtime trace example). Analysts from global
// teams fire ad-hoc queries around the clock — including while the pipeline
// is live. The example compares how FlowTime, EDF and Fair treat them.
//
// Flags: --runs N (recurrences, default 2), --query-rate R (queries per
// second, default 0.05), --scheduler NAME (run just one).
#include <cstdio>
#include <string>

#include "sched/experiment.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/trace_gen.h"

using namespace flowtime;
using workload::ResourceVec;

namespace {

constexpr double kHour = 3600.0;

workload::JobSpec job(const char* name, int tasks, double runtime_s,
                      double cores, double mem_gb) {
  workload::JobSpec spec;
  spec.name = name;
  spec.num_tasks = tasks;
  spec.task.runtime_s = runtime_s;
  spec.task.demand = ResourceVec{cores, mem_gb};
  return spec;
}

// Midnight revenue pipeline: ingest fans out to per-region aggregations,
// which join into a model refresh and a final report.
workload::Workflow nightly_pipeline(int id, double midnight_s) {
  workload::Workflow w;
  w.id = id;
  w.name = "revenue-nightly-" + std::to_string(id);
  w.start_s = midnight_s;
  w.deadline_s = midnight_s + 6.0 * kHour;  // 06:00 SLA
  w.dag = dag::Dag(8);
  // 0 ingest -> {1,2,3,4} regional rollups -> 5 join -> {6 model, 7 report}
  for (int region = 1; region <= 4; ++region) {
    w.dag.add_edge(0, region);
    w.dag.add_edge(region, 5);
  }
  w.dag.add_edge(5, 6);
  w.dag.add_edge(5, 7);
  w.jobs = {job("ingest", 480, 120.0, 1.0, 2.0),
            job("rollup-amer", 240, 180.0, 1.0, 3.0),
            job("rollup-emea", 240, 180.0, 1.0, 3.0),
            job("rollup-apac", 200, 180.0, 1.0, 3.0),
            job("rollup-latam", 120, 150.0, 1.0, 3.0),
            job("join", 320, 120.0, 1.0, 4.0),
            job("model-refresh", 360, 200.0, 1.0, 3.0),
            job("report", 80, 90.0, 1.0, 2.0)};
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int runs = static_cast<int>(flags.get_int("runs", 2));
  const double query_rate = flags.get_double("query-rate", 0.05);
  const std::string only = flags.get_string("scheduler", "");
  for (const std::string& typo : flags.unqueried()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", typo.c_str());
  }

  workload::Scenario scenario;
  for (int day = 0; day < runs; ++day) {
    scenario.workflows.push_back(nightly_pipeline(day, day * 24.0 * kHour));
  }
  // Analyst queries around the clock (global teams), densest overnight
  // when the pipeline is live.
  util::Rng rng(2024);
  int query_id = 0;
  for (int day = 0; day < runs; ++day) {
    double t = day * 24.0 * kHour;
    const double end = day * 24.0 * kHour + 8.0 * kHour;
    while ((t += rng.exponential(query_rate)) < end) {
      workload::AdhocJob query;
      query.id = query_id++;
      query.arrival_s = t;
      query.spec = job("analyst-query", static_cast<int>(rng.uniform_int(4, 24)),
                       rng.uniform_real(20.0, 90.0), 1.0, 2.0);
      query.spec.name = "analyst-query-" + std::to_string(query.id);
      scenario.adhoc_jobs.push_back(query);
    }
  }

  sched::ExperimentConfig config;
  config.sim.cluster.capacity = ResourceVec{300.0, 768.0};
  config.sim.max_horizon_s = (runs + 1) * 24.0 * kHour;
  config.flowtime.cluster.capacity = config.sim.cluster.capacity;
  config.flowtime.cluster.slot_seconds = config.sim.cluster.slot_seconds;
  config.schedulers =
      only.empty() ? std::vector<std::string>{"FlowTime", "EDF", "Fair"}
                   : std::vector<std::string>{only};

  std::printf(
      "Nightly ETL with a 06:00 SLA x %d day(s); %zu analyst queries "
      "overnight.\n\n",
      runs, scenario.adhoc_jobs.size());
  const auto outcomes = sched::run_comparison(scenario, config);

  util::Table table({"scheduler", "sla_misses", "pipeline_milestones_missed",
                     "query_mean_s", "query_p95_s"});
  for (const auto& outcome : outcomes) {
    table.begin_row()
        .add(outcome.name)
        .add(static_cast<std::int64_t>(outcome.deadlines.workflows_missed))
        .add(static_cast<std::int64_t>(outcome.deadlines.jobs_missed))
        .add(outcome.adhoc.mean_turnaround_s, 1)
        .add(outcome.adhoc.p95_turnaround_s, 1);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "FlowTime keeps the 06:00 SLA while analysts see near-interactive "
      "latency; EDF front-loads the whole pipeline at midnight and makes "
      "overnight queries wait behind it.\n");
  return 0;
}
