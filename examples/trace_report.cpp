// Offline trace analyzer for --trace-out JSONL files.
//
//   ./build/examples/trace_report trace.jsonl [--chrome-out trace.chrome.json]
//
// Reads the flat JSONL event stream any instrumented binary writes
// (flowtime_sim, the fig* benches) and prints:
//   * per-workflow timelines rebuilt from the workflow/job lifecycle spans,
//   * the re-plan cause breakdown and solver-latency percentiles,
//   * the event latency decomposition (queue-wait / coalesce / solve /
//     adoption-lag stages of every causal chain from the concurrent
//     runtime, with a stages-sum-to-total consistency check),
//   * the solver-phase profile table (pricing / ratio test / basis update /
//     refactorize seconds aggregated from solve_profile events),
//   * a deadline-risk summary (warn/breach transitions per workflow).
// With --chrome-out it additionally converts the span stream to the Chrome
// trace-event JSON that chrome://tracing and https://ui.perfetto.dev load.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "cli_common.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/stats.h"

using namespace flowtime;
using obs::TraceRecord;

namespace {

double as_double(const TraceRecord& record, const char* key,
                 double fallback = 0.0) {
  const auto it = record.find(key);
  if (it == record.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string as_string(const TraceRecord& record, const char* key,
                      const std::string& fallback = "") {
  const auto it = record.find(key);
  return it == record.end() ? fallback : it->second;
}

struct SpanRow {
  std::string kind;
  std::string name;
  std::int64_t parent = 0;  // 0: root
  int workflow = -1;
  int node = -1;
  double begin_s = 0.0;
  double end_s = -1.0;  // <0: never closed
};

}  // namespace

int main(int argc, char** argv) {
  // First positional argument is the trace path; everything after it is
  // ordinary --flag parsing.
  std::string input;
  int flag_start = 1;
  if (argc > 1 && std::strncmp(argv[1], "--", 2) != 0) {
    input = argv[1];
    flag_start = 2;
  }
  util::Flags flags(argc - flag_start + 1, argv + flag_start - 1);
  const std::string chrome_out = flags.get_string("chrome-out", "");
  for (const std::string& typo : flags.unqueried()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", typo.c_str());
  }
  if (input.empty()) {
    std::fprintf(stderr,
                 "usage: trace_report TRACE.jsonl [--chrome-out OUT.json]\n");
    return 2;
  }

  std::ifstream file(input);
  if (!file) return cli::fail(input, "cannot open file");
  std::vector<TraceRecord> events;
  int malformed = 0;
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    TraceRecord record;
    if (obs::parse_flat_json(line, &record)) {
      events.push_back(std::move(record));
    } else {
      ++malformed;
    }
  }
  std::printf("%s: %zu events", input.c_str(), events.size());
  if (malformed > 0) std::printf(" (%d malformed lines skipped)", malformed);
  std::printf("\n");

  // --- event inventory -------------------------------------------------
  std::map<std::string, int> by_type;
  for (const TraceRecord& record : events) ++by_type[as_string(record, "type")];
  std::printf("\nEvent counts:\n");
  for (const auto& [type, count] : by_type) {
    std::printf("  %-18s %d\n", type.c_str(), count);
  }

  // --- span reconstruction ---------------------------------------------
  std::map<std::int64_t, SpanRow> spans;
  int unmatched_ends = 0;
  for (const TraceRecord& record : events) {
    const std::string type = as_string(record, "type");
    if (type == "span_begin") {
      SpanRow row;
      row.kind = as_string(record, "kind");
      row.name = as_string(record, "name");
      row.parent = static_cast<std::int64_t>(as_double(record, "parent"));
      row.workflow = static_cast<int>(as_double(record, "workflow", -1.0));
      row.node = static_cast<int>(as_double(record, "node", -1.0));
      row.begin_s = as_double(record, "sim_s");
      spans[static_cast<std::int64_t>(as_double(record, "span"))] = row;
    } else if (type == "span_end") {
      const auto it =
          spans.find(static_cast<std::int64_t>(as_double(record, "span")));
      if (it == spans.end()) {
        ++unmatched_ends;
      } else {
        it->second.end_s = as_double(record, "sim_s");
      }
    }
  }
  if (unmatched_ends > 0) {
    std::printf("\nwarning: %d span_end events without a matching begin\n",
                unmatched_ends);
  }

  // Owning cell per workflow, from the (possibly repeated) workflow_arrival
  // events of a federated run. Last arrival wins: a migration re-delivers
  // the arrival on the target cell, so the final stamp is the final owner.
  std::map<int, int> cell_of_workflow;
  std::map<int, int> migrations_of_workflow;
  for (const TraceRecord& record : events) {
    const std::string type = as_string(record, "type");
    if (type == "workflow_arrival" && record.count("cell")) {
      cell_of_workflow[static_cast<int>(as_double(record, "workflow"))] =
          static_cast<int>(as_double(record, "cell"));
    } else if (type == "migration") {
      ++migrations_of_workflow[static_cast<int>(
          as_double(record, "workflow"))];
    }
  }

  // Per-workflow timelines: each workflow span plus the job spans whose
  // parent ref points at it. Workflow ids may repeat (one span per
  // scheduler in a comparison run); parent refs keep the runs separate.
  bool printed_header = false;
  for (const auto& [id, span] : spans) {
    if (span.kind != "workflow") continue;
    if (!printed_header) {
      std::printf("\nWorkflow timelines (sim seconds):\n");
      printed_header = true;
    }
    std::string cell_note;
    if (cell_of_workflow.count(span.workflow)) {
      cell_note = " [cell " +
                  std::to_string(cell_of_workflow[span.workflow]);
      if (migrations_of_workflow.count(span.workflow)) {
        cell_note += ", " +
                     std::to_string(migrations_of_workflow[span.workflow]) +
                     " migration(s)";
      }
      cell_note += "]";
    }
    std::printf("  workflow %d %s: [%.0f, %s]%s\n", span.workflow,
                span.name.c_str(), span.begin_s,
                span.end_s < 0 ? "unfinished"
                               : std::to_string(span.end_s).c_str(),
                cell_note.c_str());
    std::vector<const SpanRow*> job_rows;
    for (const auto& [jid, job] : spans) {
      (void)jid;
      if (job.kind == "job" && job.parent == id) job_rows.push_back(&job);
    }
    std::sort(job_rows.begin(), job_rows.end(),
              [](const SpanRow* a, const SpanRow* b) {
                return a->node != b->node ? a->node < b->node
                                          : a->begin_s < b->begin_s;
              });
    for (const SpanRow* job : job_rows) {
      if (job->end_s < 0) {
        std::printf("    job %-28s node %-3d %8.0f ->      (unfinished)\n",
                    job->name.c_str(), job->node, job->begin_s);
      } else {
        std::printf("    job %-28s node %-3d %8.0f -> %8.0f (%.0fs)\n",
                    job->name.c_str(), job->node, job->begin_s, job->end_s,
                    job->end_s - job->begin_s);
      }
    }
  }

  // --- re-plan causes and solver latency -------------------------------
  // Grouped by federation cell (cell -1 = a plain unsharded scheduler);
  // the overall numbers aggregate every cell, like before.
  std::map<std::string, int> causes;
  std::vector<double> replan_wall_s;
  std::int64_t total_pivots = 0;
  std::map<int, std::map<std::string, int>> causes_by_cell;
  std::map<int, std::vector<double>> wall_by_cell;
  std::map<int, std::int64_t> pivots_by_cell;
  for (const TraceRecord& record : events) {
    if (as_string(record, "type") != "replan") continue;
    const std::string cause = as_string(record, "cause", "none");
    const double wall = as_double(record, "wall_s");
    const auto pivots = static_cast<std::int64_t>(as_double(record, "pivots"));
    ++causes[cause];
    replan_wall_s.push_back(wall);
    total_pivots += pivots;
    if (record.count("cell")) {
      const int cell = static_cast<int>(as_double(record, "cell"));
      ++causes_by_cell[cell][cause];
      wall_by_cell[cell].push_back(wall);
      pivots_by_cell[cell] += pivots;
    }
  }
  if (!replan_wall_s.empty()) {
    std::printf("\nRe-plans: %zu (%lld simplex pivots total)\n",
                replan_wall_s.size(),
                static_cast<long long>(total_pivots));
    for (const auto& [cause, count] : causes) {
      std::printf("  cause %-28s %d\n", cause.c_str(), count);
    }
    std::printf(
        "  solver latency: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, "
        "max %.3f ms\n",
        util::quantile(replan_wall_s, 0.5) * 1e3,
        util::quantile(replan_wall_s, 0.95) * 1e3,
        util::quantile(replan_wall_s, 0.99) * 1e3,
        util::quantile(replan_wall_s, 1.0) * 1e3);
  }
  if (!wall_by_cell.empty()) {
    std::printf("\nPer-cell re-plans:\n");
    for (const auto& [cell, walls] : wall_by_cell) {
      std::printf(
          "  cell %-3d %4zu re-plan(s), %8lld pivots, wall p50 %.3f ms, "
          "p99 %.3f ms\n",
          cell, walls.size(), static_cast<long long>(pivots_by_cell[cell]),
          util::quantile(walls, 0.5) * 1e3,
          util::quantile(walls, 0.99) * 1e3);
      for (const auto& [cause, count] : causes_by_cell[cell]) {
        std::printf("    cause %-26s %d\n", cause.c_str(), count);
      }
    }
  }

  // --- federation activity ----------------------------------------------
  {
    std::map<std::string, int> moves;  // "from->to" -> count
    int migrations = 0;
    int overloads = 0;
    int deferrals = 0;
    int infeasible_routes = 0;
    for (const TraceRecord& record : events) {
      const std::string type = as_string(record, "type");
      if (type == "migration") {
        ++migrations;
        ++moves[as_string(record, "from_cell", "?") + "->" +
                as_string(record, "to_cell", "?")];
      } else if (type == "cell_overload") {
        ++overloads;
      } else if (type == "quota_deferral") {
        ++deferrals;
      } else if (type == "route_infeasible") {
        ++infeasible_routes;
      }
    }
    if (migrations + overloads + deferrals + infeasible_routes > 0) {
      std::printf("\nFederation:\n");
      std::printf("  cell overload events  %d\n", overloads);
      std::printf("  migrations            %d\n", migrations);
      for (const auto& [move, count] : moves) {
        std::printf("    %-18s %d\n", move.c_str(), count);
      }
      std::printf("  quota deferrals       %d\n", deferrals);
      std::printf("  infeasible routings   %d\n", infeasible_routes);
    }
  }

  // --- availability (cell faults, quarantine, failover) ------------------
  {
    int cell_failures = 0;
    int recoveries = 0;
    std::map<std::string, int> failovers_by_cause;
    std::map<std::string, int> failures_by_mode;
    // Downtime per cell, rebuilt from cell_failed/cell_recovered pairs; an
    // unrecovered failure counts as down to the end of the trace.
    std::map<int, double> down_since;   // cell -> first unrecovered failure
    std::map<int, int> downtime_slots;  // cell -> recovered downtime (slots)
    for (const TraceRecord& record : events) {
      const std::string type = as_string(record, "type");
      if (type == "cell_failed") {
        ++cell_failures;
        ++failures_by_mode[as_string(record, "mode", "?")];
        const int cell = static_cast<int>(as_double(record, "cell"));
        if (!down_since.count(cell)) {
          down_since[cell] = as_double(record, "sim_s");
        }
      } else if (type == "cell_recovered") {
        ++recoveries;
        const int cell = static_cast<int>(as_double(record, "cell"));
        downtime_slots[cell] +=
            static_cast<int>(as_double(record, "downtime_slots"));
        down_since.erase(cell);
      } else if (type == "failover") {
        ++failovers_by_cause[as_string(record, "cause", "?")];
      }
    }
    if (cell_failures > 0) {
      std::printf("\nAvailability:\n");
      std::printf("  cell failures         %d\n", cell_failures);
      for (const auto& [mode, count] : failures_by_mode) {
        std::printf("    mode %-16s %d\n", mode.c_str(), count);
      }
      std::printf("  cell recoveries       %d\n", recoveries);
      int failovers = 0;
      for (const auto& [cause, count] : failovers_by_cause) {
        failovers += count;
      }
      std::printf("  workflow failovers    %d\n", failovers);
      for (const auto& [cause, count] : failovers_by_cause) {
        std::printf("    cause %-15s %d\n", cause.c_str(), count);
      }
      for (const auto& [cell, slots] : downtime_slots) {
        std::printf("  cell %-3d downtime     %d slot(s)%s\n", cell, slots,
                    down_since.count(cell) ? " (+ unrecovered outage)" : "");
      }
      for (const auto& [cell, since] : down_since) {
        if (!downtime_slots.count(cell)) {
          std::printf("  cell %-3d down at %.0fs, never recovered\n", cell,
                      since);
        }
      }
      // Quarantine windows from the lifecycle spans (kind "quarantine",
      // one per outage, possibly still open at end of trace).
      std::vector<double> quarantine_s;
      for (const auto& [id, span] : spans) {
        (void)id;
        if (span.kind != "quarantine" || span.end_s < 0.0) continue;
        quarantine_s.push_back(span.end_s - span.begin_s);
      }
      if (!quarantine_s.empty()) {
        std::printf(
            "  quarantine windows    %zu closed, p50 %.0f s, max %.0f s\n",
            quarantine_s.size(), util::quantile(quarantine_s, 0.5),
            util::quantile(quarantine_s, 1.0));
      }
    }
  }

  // --- event latency decomposition (concurrent runtime) ------------------
  // Every plan_adopted / plan_discarded terminal carries the four causal
  // stages; by construction they tile the replan's end-to-end wall latency,
  // which the ±1 ms consistency check below re-verifies from the trace.
  {
    std::map<std::string, std::vector<double>> stages;  // key -> samples (ms)
    static const char* kStages[] = {"queue_wait_ms", "coalesce_ms",
                                    "solve_ms", "adoption_lag_ms",
                                    "total_ms"};
    int terminals = 0;
    int adopted = 0;
    int sum_mismatches = 0;
    int trigger_enqueues = 0;
    int chain_solve_begins = 0;
    for (const TraceRecord& record : events) {
      const std::string type = as_string(record, "type");
      if (type == "event_enqueued") {
        if (as_string(record, "trigger") == "true") ++trigger_enqueues;
        continue;
      }
      if (type == "solve_begin") {
        ++chain_solve_begins;
        continue;
      }
      if (type != "plan_adopted" && type != "plan_discarded") continue;
      ++terminals;
      if (type == "plan_adopted") ++adopted;
      double sum_ms = 0.0;
      for (const char* key : kStages) {
        const double value = as_double(record, key);
        stages[key].push_back(value);
        if (std::strcmp(key, "total_ms") == 0) {
          if (std::fabs(sum_ms - value) > 1.0) ++sum_mismatches;
        } else {
          sum_ms += value;
        }
      }
    }
    if (terminals > 0) {
      std::printf(
          "\nEvent latency decomposition (%d replan chains: %d adopted, "
          "%d discarded):\n",
          terminals, adopted, terminals - adopted);
      std::printf("  %-16s %10s %10s %10s %10s\n", "stage", "p50 ms",
                  "p95 ms", "p99 ms", "max ms");
      for (const char* key : kStages) {
        const std::vector<double>& samples = stages[key];
        std::printf("  %-16s %10.3f %10.3f %10.3f %10.3f\n", key,
                    util::quantile(samples, 0.5), util::quantile(samples, 0.95),
                    util::quantile(samples, 0.99), util::quantile(samples, 1.0));
      }
      if (sum_mismatches == 0) {
        std::printf("  stages sum to total within 1 ms on every chain\n");
      } else {
        std::printf("  warning: %d chain(s) where stages do not sum to "
                    "total within 1 ms\n",
                    sum_mismatches);
      }
      std::printf("  chain balance: %d trigger enqueues, %d solve_begin, "
                  "%d terminals%s\n",
                  trigger_enqueues, chain_solve_begins, terminals,
                  chain_solve_begins == terminals ? " (balanced)"
                                                  : " (UNBALANCED)");
    }
  }

  // --- solver-phase profile ---------------------------------------------
  // Aggregates the per-solve lp::SolveProfile merge events: where the LP
  // hot path spends its time, and the pivot-quality counters.
  {
    double pricing_s = 0.0;
    double ratio_test_s = 0.0;
    double basis_update_s = 0.0;
    double refactor_s = 0.0;
    std::int64_t solves = 0;
    std::int64_t pivots = 0;
    std::int64_t degenerate = 0;
    std::int64_t bound_flips = 0;
    std::int64_t refactorizations = 0;
    std::int64_t basis_patches = 0;
    std::int64_t lexmin_rounds = 0;
    int profiles = 0;
    for (const TraceRecord& record : events) {
      if (as_string(record, "type") != "solve_profile") continue;
      ++profiles;
      pricing_s += as_double(record, "pricing_s");
      ratio_test_s += as_double(record, "ratio_test_s");
      basis_update_s += as_double(record, "basis_update_s");
      refactor_s += as_double(record, "refactor_s");
      solves += static_cast<std::int64_t>(as_double(record, "solves"));
      pivots += static_cast<std::int64_t>(as_double(record, "pivots"));
      degenerate +=
          static_cast<std::int64_t>(as_double(record, "degenerate_pivots"));
      bound_flips +=
          static_cast<std::int64_t>(as_double(record, "bound_flips"));
      refactorizations +=
          static_cast<std::int64_t>(as_double(record, "refactorizations"));
      basis_patches +=
          static_cast<std::int64_t>(as_double(record, "basis_patches"));
      lexmin_rounds +=
          static_cast<std::int64_t>(as_double(record, "lexmin_rounds"));
    }
    if (profiles > 0) {
      const double phase_total =
          pricing_s + ratio_test_s + basis_update_s + refactor_s;
      auto pct = [&](double value) {
        return phase_total > 0.0 ? 100.0 * value / phase_total : 0.0;
      };
      std::printf("\nSolver phase profile (%d profiled solve scopes):\n",
                  profiles);
      std::printf("  %-16s %12s %8s\n", "phase", "seconds", "share");
      std::printf("  %-16s %12.6f %7.1f%%\n", "pricing", pricing_s,
                  pct(pricing_s));
      std::printf("  %-16s %12.6f %7.1f%%\n", "ratio_test", ratio_test_s,
                  pct(ratio_test_s));
      std::printf("  %-16s %12.6f %7.1f%%\n", "basis_update", basis_update_s,
                  pct(basis_update_s));
      std::printf("  %-16s %12.6f %7.1f%%\n", "refactorize", refactor_s,
                  pct(refactor_s));
      std::printf(
          "  %lld LP solves, %lld pivots (%lld degenerate, %lld bound "
          "flips), %lld refactorizations, %lld basis patches, %lld lexmin "
          "rounds\n",
          static_cast<long long>(solves), static_cast<long long>(pivots),
          static_cast<long long>(degenerate),
          static_cast<long long>(bound_flips),
          static_cast<long long>(refactorizations),
          static_cast<long long>(basis_patches),
          static_cast<long long>(lexmin_rounds));
    }
  }

  // --- fault injection ---------------------------------------------------
  std::map<std::string, int> fault_kinds;     // fault_injected by kind
  std::map<int, int> faults_per_workflow;     // task failures + stragglers
  std::map<int, int> retries_per_workflow;
  int task_retries = 0;
  int capacity_changes = 0;
  for (const TraceRecord& record : events) {
    const std::string type = as_string(record, "type");
    if (type == "fault_injected") {
      const std::string kind = as_string(record, "kind", "?");
      ++fault_kinds[kind];
      if (kind == "task_failure" || kind == "straggler") {
        ++faults_per_workflow[static_cast<int>(
            as_double(record, "workflow", -1.0))];
      }
    } else if (type == "task_retry") {
      ++task_retries;
      ++retries_per_workflow[static_cast<int>(
          as_double(record, "workflow", -1.0))];
    } else if (type == "capacity_change") {
      ++capacity_changes;
    }
  }
  if (!fault_kinds.empty() || task_retries > 0 || capacity_changes > 0) {
    std::printf("\nFault injection:\n");
    for (const auto& [kind, count] : fault_kinds) {
      std::printf("  injected %-18s %d\n", kind.c_str(), count);
    }
    std::printf("  capacity changes      %d\n", capacity_changes);
    std::printf("  task retries          %d\n", task_retries);
    for (const auto& [workflow, count] : faults_per_workflow) {
      std::printf("  workflow %-3d faults %d, retries %d\n", workflow, count,
                  retries_per_workflow.count(workflow)
                      ? retries_per_workflow[workflow]
                      : 0);
    }
  }

  // --- solver degradation ------------------------------------------------
  std::map<std::string, int> escalation_reasons;
  int degraded_replans = 0;
  int degrade_enters = 0;
  int degrade_exits = 0;
  for (const TraceRecord& record : events) {
    const std::string type = as_string(record, "type");
    if (type == "solver_escalation") {
      ++escalation_reasons[as_string(record, "reason", "?")];
    } else if (type == "replan") {
      if (as_double(record, "degrade_rung") > 0) ++degraded_replans;
    } else if (type == "degrade_enter") {
      ++degrade_enters;
    } else if (type == "degrade_exit") {
      ++degrade_exits;
    }
  }
  if (!escalation_reasons.empty() || degrade_enters > 0) {
    std::printf("\nSolver degradation:\n");
    std::printf("  degraded re-plans     %d\n", degraded_replans);
    std::printf("  degraded-mode windows %d entered, %d recovered\n",
                degrade_enters, degrade_exits);
    for (const auto& [reason, count] : escalation_reasons) {
      std::printf("  escalation %-18s %d\n", reason.c_str(), count);
    }
  }

  // --- deadline risk -----------------------------------------------------
  std::map<std::string, int> risk_counts;  // "entity/level" -> transitions
  // workflow id -> worst level seen (0 ok, 1 warn, 2 breach)
  std::map<int, int> workflow_worst;
  auto level_rank = [](const std::string& level) {
    return level == "breach" ? 2 : level == "warn" ? 1 : 0;
  };
  const char* kLevelNames[] = {"ok", "warn", "breach"};
  for (const TraceRecord& record : events) {
    if (as_string(record, "type") != "deadline_risk") continue;
    const std::string entity = as_string(record, "entity");
    const std::string level = as_string(record, "level");
    ++risk_counts[entity + "/" + level];
    const int workflow = static_cast<int>(as_double(record, "workflow", -1.0));
    int& worst = workflow_worst[workflow];
    worst = std::max(worst, level_rank(level));
  }
  std::printf("\nDeadline risk:\n");
  if (risk_counts.empty()) {
    std::printf("  no deadline_risk events (every projection stayed ok)\n");
  } else {
    for (const auto& [key, count] : risk_counts) {
      std::printf("  %-18s %d transition(s)\n", key.c_str(), count);
    }
    for (const auto& [workflow, worst] : workflow_worst) {
      std::printf("  workflow %-3d worst level: %s\n", workflow,
                  kLevelNames[worst]);
    }
  }

  // --- Chrome trace conversion ------------------------------------------
  if (!chrome_out.empty()) {
    const std::string json = obs::render_chrome_trace(events);
    std::ofstream out(chrome_out);
    if (!out) return cli::fail(chrome_out, "cannot write file");
    out << json;
    std::printf(
        "\nChrome trace written to %s (load in chrome://tracing or "
        "https://ui.perfetto.dev)\n",
        chrome_out.c_str());
  }
  return 0;
}
