// Shared helpers for the example CLIs (flowtime_sim, trace_report).
//
// Error surfacing contract: every user-facing failure is one line on
// stderr — `path: message` (with a line number when the error came from the
// scenario parser) — followed by a nonzero exit. No stack traces, no
// multi-line dumps; the CLIs are meant to be scripted against.
#pragma once

#include <cstdio>
#include <string>

#include "workload/scenario_io.h"

namespace flowtime::cli {

/// Prints `path: message` to stderr and returns the conventional failure
/// exit code, so call sites can write `return fail(path, "cannot open");`.
inline int fail(const std::string& path, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", path.c_str(), message.c_str());
  return 1;
}

/// Parser-error overload: `path:LINE: message` when the error carries a
/// line number, plain `path: message` otherwise (e.g. unreadable file).
inline int fail(const std::string& path, const workload::ParseError& error) {
  if (error.line > 0) {
    std::fprintf(stderr, "%s:%d: %s\n", path.c_str(), error.line,
                 error.message.c_str());
    return 1;
  }
  return fail(path, error.message);
}

}  // namespace flowtime::cli
