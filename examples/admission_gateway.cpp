// Scenario example: an admission gateway in front of the deadline queue.
//
// Production clusters do not accept every SLA blindly: an operator wants to
// answer "can we still promise this deadline?" at submission time. Because
// FlowTime's placement is a feasibility problem, the answer is exact — this
// example replays a morning of workflow submissions through the
// AdmissionController, prints each accept/reject with its measured peak
// load, and shows how completions re-open capacity.
//
// Flags: --headroom F (fraction of the cluster reserved for ad-hoc work,
// default 0.3), --submissions N (default 10), --seed S, --dot (print the
// first workflow's Graphviz rendering).
#include <cstdio>

#include "core/admission.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/dot.h"
#include "workload/trace_gen.h"

using namespace flowtime;
using workload::ResourceVec;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const double headroom = flags.get_double("headroom", 0.3);
  const int submissions = static_cast<int>(flags.get_int("submissions", 10));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 21));
  const bool dump_dot = flags.get_bool("dot", false);
  for (const std::string& typo : flags.unqueried()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", typo.c_str());
  }

  // The operator's authoritative cluster spec; the gateway prices every SLA
  // answer against it, so a skewed copy silently mis-prices admissions.
  const workload::ClusterSpec authoritative{ResourceVec{300.0, 640.0}, 10.0};

  core::AdmissionConfig config;
  config.cluster = authoritative;
  config.deadline_cap_fraction = 1.0 - headroom;
  core::AdmissionController controller(config);
  if (!controller.verify_cluster(authoritative)) {
    std::fprintf(stderr, "error: admission gateway cluster spec skew\n");
    return 1;
  }

  util::Rng rng(seed);
  workload::WorkflowGenConfig gen;
  gen.num_jobs = 10;
  gen.cluster.capacity = config.cluster.capacity;
  gen.looseness_min = 1.5;
  gen.looseness_max = 3.0;

  std::printf(
      "Admission gateway: %.0f cores / %.0f GB, %.0f%% reserved for ad-hoc "
      "work.\n\n",
      config.cluster.capacity[workload::kCpu],
      config.cluster.capacity[workload::kMemory], 100.0 * headroom);

  util::Table table({"t_s", "workflow", "deadline_s", "decision",
                     "peak_load", "pending_jobs"});
  int accepted = 0;
  for (int i = 0; i < submissions; ++i) {
    const double now = i * 120.0;  // a submission every two minutes
    const workload::Workflow candidate =
        workload::make_workflow(rng, i, now, gen);
    if (i == 0 && dump_dot) {
      std::printf("%s\n", workload::to_dot(candidate).c_str());
    }
    const core::AdmissionDecision decision =
        controller.admit(candidate, now);
    if (decision.admitted) ++accepted;
    // Pretend the oldest accepted workflow finished once in a while,
    // re-opening capacity — the gateway sees completions in production.
    if (i > 0 && i % 4 == 0) {
      controller.forget_workflow(i - 4);
    }
    table.begin_row()
        .add(now, 0)
        .add(candidate.name)
        .add(candidate.deadline_s, 0)
        .add(std::string(decision.admitted ? "ACCEPT" : "reject"))
        .add(decision.peak_load, 3)
        .add(static_cast<std::int64_t>(controller.pending_jobs()));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("%d of %d submissions admitted under the SLA gate.\n",
              accepted, submissions);
  return 0;
}
