// Scenario example: capacity planning with the scheduling LP.
//
// Because FlowTime's placement is an optimization problem, it doubles as a
// what-if tool: for a given workflow portfolio, the smallest cluster that
// can meet every deadline is the smallest capacity whose lexmin-max load is
// <= 1. This example sweeps cluster sizes, prints the peak normalized load
// at each, and reports the provisioning point — no simulation needed.
//
// Flags: --workflows N (default 4), --seed S (default 42).
#include <cmath>
#include <cstdio>

#include "core/decomposition.h"
#include "core/lp_formulation.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/trace_gen.h"

using namespace flowtime;
using workload::ResourceVec;

namespace {

// Converts a decomposed workflow portfolio into LP jobs on a slot grid.
std::vector<core::LpJob> to_lp_jobs(
    const std::vector<workload::Workflow>& workflows,
    const ResourceVec& capacity, double slot_s, int* horizon_slots) {
  core::DecompositionConfig dconfig;
  dconfig.cluster.capacity = capacity;
  const core::DeadlineDecomposer decomposer(dconfig);
  std::vector<core::LpJob> jobs;
  int uid = 0;
  *horizon_slots = 0;
  for (const workload::Workflow& w : workflows) {
    const auto decomposition = decomposer.decompose(w);
    if (!decomposition) continue;
    for (dag::NodeId v = 0; v < w.dag.num_nodes(); ++v) {
      const core::JobWindow& window =
          decomposition.windows[static_cast<std::size_t>(v)];
      const workload::JobSpec& spec = w.jobs[static_cast<std::size_t>(v)];
      core::LpJob job;
      job.uid = uid++;
      // Slot quantization mirrors FlowTimeScheduler: release at the slot
      // containing the window start, deadline at the last slot fully
      // inside the window (rounded up to slot granularity).
      job.release_slot =
          static_cast<int>(std::floor(window.start_s / slot_s + 1e-9));
      job.deadline_slot = std::max(
          job.release_slot,
          static_cast<int>(std::ceil(window.deadline_s / slot_s - 1e-9)) -
              1);
      job.demand = spec.total_demand();
      job.width = workload::scale(spec.max_parallel_demand(), slot_s);
      *horizon_slots = std::max(*horizon_slots, job.deadline_slot + 1);
      jobs.push_back(job);
    }
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int num_workflows = static_cast<int>(flags.get_int("workflows", 4));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 42));

  util::Rng rng(seed);
  workload::WorkflowGenConfig gen;
  gen.num_jobs = 14;
  gen.looseness_min = 2.0;
  gen.looseness_max = 3.0;
  std::vector<workload::Workflow> portfolio;
  for (int i = 0; i < num_workflows; ++i) {
    // Deadlines are set against a mid-sized reference cluster so the sweep
    // below has a real crossover.
    gen.cluster.capacity = ResourceVec{250.0, 512.0};
    portfolio.push_back(workload::make_workflow(rng, i, i * 150.0, gen));
  }
  std::printf("Portfolio: %d workflows, %d jobs each.\n\n", num_workflows,
              gen.num_jobs);

  const double slot_s = 10.0;
  util::Table table({"cores", "mem_gb", "peak_load", "meets_all_deadlines"});
  double provisioning_cores = -1.0;
  for (const double cores : {100.0, 150.0, 200.0, 250.0, 300.0, 400.0,
                             500.0}) {
    const ResourceVec capacity{cores, cores * 2.2};
    int horizon = 0;
    const std::vector<core::LpJob> jobs =
        to_lp_jobs(portfolio, capacity, slot_s, &horizon);
    const std::vector<ResourceVec> caps(
        static_cast<std::size_t>(horizon),
        workload::scale(capacity, slot_s));
    const core::LpSchedule schedule = core::solve_placement(jobs, caps, 0);
    const bool feasible =
        schedule.ok() && !schedule.capacity_exceeded;
    if (feasible && provisioning_cores < 0.0) provisioning_cores = cores;
    table.begin_row()
        .add(cores, 0)
        .add(capacity[workload::kMemory], 0)
        .add(schedule.ok() ? schedule.max_normalized_load : -1.0, 3)
        .add(std::string(feasible ? "yes" : "no"));
  }
  std::printf("%s\n", table.to_string().c_str());
  if (provisioning_cores > 0.0) {
    std::printf(
        "Smallest cluster in the sweep that meets every decomposed "
        "deadline: %.0f cores.\n",
        provisioning_cores);
  } else {
    std::printf("No cluster in the sweep meets every deadline.\n");
  }
  return 0;
}
