// Command-line simulator: run any scenario file against any scheduler mix.
//
//   ./build/examples/flowtime_sim --file examples/scenarios/etl.scn
//       --schedulers FlowTime,EDF,Fair
//
// Flags:
//   --file PATH          scenario file (see src/workload/scenario_io.h for
//                        the format); required unless --dump-example
//   --schedulers LIST    comma-separated (default FlowTime,CORA,EDF,Fair,
//                        FIFO,Morpheus,Rayon)
//   --slack SECONDS      FlowTime deadline slack (default 60)
//   --csv-prefix PREFIX  write <PREFIX><scheduler>_util.csv and
//                        <PREFIX><scheduler>_jobs.csv per scheduler
//   --trace-out PATH     stream solver/scheduler/simulator events to PATH
//                        as JSONL (see DESIGN.md "Observability")
//   --prom-out PATH      write the final metric registry to PATH in the
//                        Prometheus text exposition format
//   --fault-seed N       override the fault plan's RNG seed (scenario files
//                        declare faults with the fault* directives)
//   --solver-budget-ms N cap FlowTime's per-replan LP solving at N ms of
//                        wall clock; exceeding it escalates down the
//                        graceful-degradation ladder (DESIGN.md §10)
//   --async-replan       run the FlowTime variants behind the concurrent
//                        runtime: events are queued and the LP solve runs
//                        on a background thread while the current plan
//                        keeps serving (DESIGN.md §11)
//   --async-barrier      with --async-replan: wait for every solve before
//                        serving its slot — deterministic (plan-for-plan
//                        identical to the synchronous path)
//   --runtime-threads N  solver threads for the concurrent runtime
//                        (default 1)
//   --cells N            shard the cluster into N cells and run the
//                        FlowTime variants federated: per-cell lexmin
//                        plans, greedy cross-cell routing and hotspot
//                        migration (DESIGN.md §13). With --async-replan
//                        the per-cell solves run concurrently.
//   --cell-policy P      partition policy for --cells > 1: "balanced"
//                        (default) or "round_robin"
//   --cell-deadline-ms N per-cell solve deadline (wall ms) for federated
//                        runs; a solve that misses it degrades down the
//                        escalation ladder. 0 (default) = unlimited
//   --stats-every N      print a metric-registry snapshot to stderr every
//                        N simulated slots (implies metrics collection)
//   --dump-example       print a commented example scenario and exit
#include <cstdio>

#include "cli_common.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/experiment.h"
#include "sim/report.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"
#include "workload/scenario_io.h"

using namespace flowtime;

namespace {

const char* kExample = R"(# FlowTime scenario example
# A two-stage pipeline with a 30-minute deadline plus one interactive job.
cluster cores=100 mem_gb=256 slot_seconds=10

workflow id=0 name=nightly-etl start=0 deadline=1800
job node=0 name=extract tasks=20 runtime=60 cores=1 mem=2
job node=1 name=clean tasks=40 runtime=45 cores=1 mem=2
job node=2 name=report tasks=10 runtime=30 cores=1 mem=2
edge 0 1
edge 1 2
end

adhoc id=0 name=interactive-query arrival=120 tasks=8 runtime=30 cores=1 mem=1
)";

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (flags.get_bool("dump-example", false)) {
    std::printf("%s", kExample);
    return 0;
  }
  const std::string path = flags.get_string("file", "");
  const std::string scheduler_list = flags.get_string(
      "schedulers", "FlowTime,CORA,EDF,Fair,FIFO,Morpheus,Rayon");
  const double slack = flags.get_double("slack", 60.0);
  const std::string csv_prefix = flags.get_string("csv-prefix", "");
  const std::string trace_out = flags.get_string("trace-out", "");
  const std::string prom_out = flags.get_string("prom-out", "");
  const double fault_seed = flags.get_double("fault-seed", -1.0);
  const double solver_budget_ms = flags.get_double("solver-budget-ms", 0.0);
  const bool async_replan = flags.get_bool("async-replan", false);
  const bool async_barrier = flags.get_bool("async-barrier", false);
  const int runtime_threads =
      static_cast<int>(flags.get_double("runtime-threads", 1.0));
  const int cells = static_cast<int>(flags.get_double("cells", 1.0));
  const std::string cell_policy = flags.get_string("cell-policy", "balanced");
  const double cell_deadline_ms = flags.get_double("cell-deadline-ms", 0.0);
  const int stats_every =
      static_cast<int>(flags.get_double("stats-every", 0.0));
  for (const std::string& typo : flags.unqueried()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", typo.c_str());
  }
  if (!trace_out.empty() && !obs::open_trace_file(trace_out)) {
    return cli::fail(trace_out, "cannot open trace file");
  }
  if (!prom_out.empty() || stats_every > 0) {
    obs::set_enabled(true);  // metrics without a sink
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: flowtime_sim --file scenario.scn "
                 "[--schedulers A,B] [--slack 60] [--dump-example]\n");
    return 2;
  }

  workload::ParseError error;
  const auto parsed = workload::load_scenario_file(path, &error);
  if (!parsed) return cli::fail(path, error);

  sched::ExperimentConfig config;
  if (parsed->cluster) {
    config.sim.cluster.capacity = parsed->cluster->capacity;
    config.sim.cluster.slot_seconds = parsed->cluster->slot_seconds;
  }
  config.sim.fault_plan = parsed->fault_plan;
  if (fault_seed >= 0.0) {
    config.sim.fault_plan.seed = static_cast<std::uint64_t>(fault_seed);
  }
  config.flowtime.cluster.capacity = config.sim.cluster.capacity;
  config.flowtime.cluster.slot_seconds = config.sim.cluster.slot_seconds;
  config.flowtime.deadline_slack_s = slack;
  config.flowtime.solver_budget_ms = solver_budget_ms;
  config.async_replan = async_replan;
  config.async_barrier = async_barrier;
  config.runtime_threads = runtime_threads;
  config.cells = cells;
  config.cell_policy = cell_policy;
  config.cell_solve_deadline_ms = cell_deadline_ms;
  if (stats_every > 0) {
    // Periodic registry snapshots to stderr (stdout carries the report
    // table). Counters are cumulative across the run — and across the
    // schedulers of a comparison, since the registry is global.
    config.sim.stats_every_slots = stats_every;
    config.sim.stats_hook = [](int slot, double now_s) {
      std::fprintf(stderr, "--- stats @ slot %d (t=%.0fs) ---\n%s", slot,
                   now_s, obs::registry().render_text().c_str());
    };
  }
  for (const std::string& name : util::split(scheduler_list, ',')) {
    if (!name.empty()) config.schedulers.push_back(name);
  }

  std::printf("Scenario: %zu workflow(s), %zu ad-hoc job(s); cluster %.0f "
              "cores / %.0f GB.\n\n",
              parsed->scenario.workflows.size(),
              parsed->scenario.adhoc_jobs.size(),
              config.sim.cluster.capacity[workload::kCpu],
              config.sim.cluster.capacity[workload::kMemory]);

  const auto outcomes = sched::run_comparison(parsed->scenario, config);
  util::Table table({"scheduler", "jobs_missed", "workflows_missed",
                     "delta_max_s", "adhoc_mean_s", "adhoc_p95_s",
                     "completed"});
  for (const auto& outcome : outcomes) {
    if (!csv_prefix.empty()) {
      sim::write_file(csv_prefix + outcome.name + "_util.csv",
                      sim::utilization_csv(outcome.result));
      sim::write_file(csv_prefix + outcome.name + "_jobs.csv",
                      sim::jobs_csv(outcome.result));
    }
    const auto deltas = outcome.deadlines.job_deltas();
    table.begin_row()
        .add(outcome.name)
        .add(static_cast<std::int64_t>(outcome.deadlines.jobs_missed))
        .add(static_cast<std::int64_t>(outcome.deadlines.workflows_missed))
        .add(util::max_of(deltas), 1)
        .add(outcome.adhoc.mean_turnaround_s, 1)
        .add(outcome.adhoc.p95_turnaround_s, 1)
        .add(std::string(outcome.result.all_completed ? "all" : "PARTIAL"));
  }
  std::printf("%s", table.to_string().c_str());
  if (cells > 1) {
    std::printf("\nFederation (%d cells, policy %s):\n", cells,
                cell_policy.c_str());
    for (const auto& outcome : outcomes) {
      if (outcome.replans == 0) continue;  // baselines are not federated
      std::printf("  %-12s replans %d, migrations %d, cell overloads %d\n",
                  outcome.name.c_str(), outcome.replans, outcome.migrations,
                  outcome.cell_overload_events);
      if (outcome.cell_failures > 0 || outcome.quarantines > 0) {
        std::printf(
            "  %-12s cell failures %d, quarantines %d, failovers %d, "
            "recoveries %d\n",
            "", outcome.cell_failures, outcome.quarantines,
            outcome.failovers, outcome.cell_recoveries);
      }
    }
  }
  if (!config.sim.fault_plan.empty()) {
    std::printf("\nFault injection (seed %llu):\n",
                static_cast<unsigned long long>(config.sim.fault_plan.seed));
    for (const auto& outcome : outcomes) {
      const fault::FaultLog& log = outcome.result.faults;
      std::printf(
          "  %-12s machine down/up %d/%d, capacity changes %d, task "
          "failures %d (retried %d), stragglers %d, noised jobs %d, cell "
          "faults %d (recovered %d)\n",
          outcome.name.c_str(), log.machine_downs, log.machine_ups,
          log.capacity_changes, log.task_failures, log.task_retries,
          log.stragglers, log.noised_jobs, log.cell_faults,
          log.cell_recoveries);
    }
  }
  if (!prom_out.empty()) {
    sim::write_file(prom_out,
                    obs::render_prometheus(obs::registry().snapshot()));
    std::printf("\nPrometheus metrics written to %s\n", prom_out.c_str());
  }
  if (!trace_out.empty()) {
    obs::clear_trace_sink();  // flush + close before reporting the path
    std::printf("\nObservability: events written to %s; solver/replan "
                "counters:\n%s\nAnalyze the trace with: "
                "./build/examples/trace_report %s\n",
                trace_out.c_str(), obs::registry().render_text().c_str(),
                trace_out.c_str());
  }
  return 0;
}
