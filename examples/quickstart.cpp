// Quickstart: the FlowTime pipeline end to end in ~100 lines.
//
//   1. Describe a workflow (a DAG of jobs with one deadline).
//   2. Decompose the workflow deadline into per-job windows.
//   3. Let FlowTime schedule it on a simulated cluster next to an ad-hoc
//      job, and inspect the outcome.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/flowtime_scheduler.h"
#include "dag/generators.h"
#include "sim/metrics.h"
#include "sim/simulator.h"

using namespace flowtime;
using workload::ResourceVec;

int main() {
  // --- 1. A workflow: extract -> {clean, enrich} -> report, due in 30 min.
  workload::Workflow etl;
  etl.id = 0;
  etl.name = "nightly-etl";
  etl.start_s = 0.0;
  etl.deadline_s = 1800.0;
  etl.dag = dag::Dag(4);
  etl.dag.add_edge(0, 1);  // extract -> clean
  etl.dag.add_edge(0, 2);  // extract -> enrich
  etl.dag.add_edge(1, 3);  // clean   -> report
  etl.dag.add_edge(2, 3);  // enrich  -> report

  auto job = [](const char* name, int tasks, double runtime_s, double cores,
                double mem_gb) {
    workload::JobSpec spec;
    spec.name = name;
    spec.num_tasks = tasks;
    spec.task.runtime_s = runtime_s;
    spec.task.demand = ResourceVec{cores, mem_gb};
    return spec;
  };
  etl.jobs = {job("extract", 20, 60.0, 1.0, 2.0),
              job("clean", 40, 45.0, 1.0, 2.0),
              job("enrich", 30, 50.0, 1.0, 3.0),
              job("report", 10, 30.0, 1.0, 2.0)};

  // --- 2. Decompose the workflow deadline into per-job windows.
  core::DecompositionConfig decomposition_config;
  decomposition_config.cluster.capacity = ResourceVec{100.0, 256.0};
  const core::DeadlineDecomposer decomposer(decomposition_config);
  const auto decomposition = decomposer.decompose(etl);
  if (!decomposition) {
    std::fprintf(stderr, "workflow is malformed\n");
    return 1;
  }
  std::printf("Deadline decomposition (workflow deadline %.0f s):\n",
              etl.deadline_s);
  for (dag::NodeId v = 0; v < etl.dag.num_nodes(); ++v) {
    const core::JobWindow& window =
        decomposition.windows[static_cast<std::size_t>(v)];
    std::printf("  %-8s window [%6.0f, %6.0f] s\n",
                etl.jobs[static_cast<std::size_t>(v)].name.c_str(),
                window.start_s, window.deadline_s);
  }

  // --- 3. Simulate FlowTime scheduling it next to an ad-hoc query.
  workload::Scenario scenario;
  scenario.workflows.push_back(etl);
  workload::AdhocJob query;
  query.id = 0;
  query.arrival_s = 120.0;
  query.spec = job("interactive-query", 8, 30.0, 1.0, 1.0);
  scenario.adhoc_jobs.push_back(query);

  sim::SimConfig sim_config;
  sim_config.cluster.capacity = ResourceVec{100.0, 256.0};
  core::FlowTimeConfig flowtime_config;
  flowtime_config.cluster.capacity = sim_config.cluster.capacity;
  flowtime_config.cluster.slot_seconds = sim_config.cluster.slot_seconds;

  sim::Simulator simulator(sim_config);
  core::FlowTimeScheduler scheduler(flowtime_config);
  const sim::SimResult result = simulator.run(scenario, scheduler);

  std::printf("\nSimulation (%d slots of %.0f s):\n", result.slots_simulated,
              result.slot_seconds);
  for (const sim::JobRecord& record : result.jobs) {
    std::printf("  %-28s %s at %6.0f s (turnaround %5.0f s)\n",
                record.name.c_str(),
                record.completion_s ? "finished" : "UNFINISHED",
                record.completion_s.value_or(-1.0), record.turnaround_s());
  }

  const sim::DeadlineReport report = sim::evaluate_deadlines(
      result, scenario.workflows,
      sim::JobDeadlines(scheduler.job_deadlines().begin(),
                        scheduler.job_deadlines().end()));
  std::printf("\nDeadline jobs missed: %d of %zu; workflow %s\n",
              report.jobs_missed, report.jobs.size(),
              report.workflows_missed == 0 ? "met its deadline"
                                           : "MISSED its deadline");
  return 0;
}
