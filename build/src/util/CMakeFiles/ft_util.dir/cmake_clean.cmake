file(REMOVE_RECURSE
  "CMakeFiles/ft_util.dir/flags.cpp.o"
  "CMakeFiles/ft_util.dir/flags.cpp.o.d"
  "CMakeFiles/ft_util.dir/histogram.cpp.o"
  "CMakeFiles/ft_util.dir/histogram.cpp.o.d"
  "CMakeFiles/ft_util.dir/logging.cpp.o"
  "CMakeFiles/ft_util.dir/logging.cpp.o.d"
  "CMakeFiles/ft_util.dir/stats.cpp.o"
  "CMakeFiles/ft_util.dir/stats.cpp.o.d"
  "CMakeFiles/ft_util.dir/strings.cpp.o"
  "CMakeFiles/ft_util.dir/strings.cpp.o.d"
  "CMakeFiles/ft_util.dir/table.cpp.o"
  "CMakeFiles/ft_util.dir/table.cpp.o.d"
  "libft_util.a"
  "libft_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
