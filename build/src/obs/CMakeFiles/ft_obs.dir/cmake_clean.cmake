file(REMOVE_RECURSE
  "CMakeFiles/ft_obs.dir/metrics.cpp.o"
  "CMakeFiles/ft_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/ft_obs.dir/trace.cpp.o"
  "CMakeFiles/ft_obs.dir/trace.cpp.o.d"
  "libft_obs.a"
  "libft_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
