file(REMOVE_RECURSE
  "libft_obs.a"
)
