# Empty dependencies file for ft_obs.
# This may be replaced when dependencies are built.
