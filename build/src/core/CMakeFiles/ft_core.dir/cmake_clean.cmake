file(REMOVE_RECURSE
  "CMakeFiles/ft_core.dir/admission.cpp.o"
  "CMakeFiles/ft_core.dir/admission.cpp.o.d"
  "CMakeFiles/ft_core.dir/decomposition.cpp.o"
  "CMakeFiles/ft_core.dir/decomposition.cpp.o.d"
  "CMakeFiles/ft_core.dir/flow_placement.cpp.o"
  "CMakeFiles/ft_core.dir/flow_placement.cpp.o.d"
  "CMakeFiles/ft_core.dir/flowtime_scheduler.cpp.o"
  "CMakeFiles/ft_core.dir/flowtime_scheduler.cpp.o.d"
  "CMakeFiles/ft_core.dir/lp_formulation.cpp.o"
  "CMakeFiles/ft_core.dir/lp_formulation.cpp.o.d"
  "libft_core.a"
  "libft_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
