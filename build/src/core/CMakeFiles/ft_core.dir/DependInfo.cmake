
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/admission.cpp" "src/core/CMakeFiles/ft_core.dir/admission.cpp.o" "gcc" "src/core/CMakeFiles/ft_core.dir/admission.cpp.o.d"
  "/root/repo/src/core/decomposition.cpp" "src/core/CMakeFiles/ft_core.dir/decomposition.cpp.o" "gcc" "src/core/CMakeFiles/ft_core.dir/decomposition.cpp.o.d"
  "/root/repo/src/core/flow_placement.cpp" "src/core/CMakeFiles/ft_core.dir/flow_placement.cpp.o" "gcc" "src/core/CMakeFiles/ft_core.dir/flow_placement.cpp.o.d"
  "/root/repo/src/core/flowtime_scheduler.cpp" "src/core/CMakeFiles/ft_core.dir/flowtime_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/ft_core.dir/flowtime_scheduler.cpp.o.d"
  "/root/repo/src/core/lp_formulation.cpp" "src/core/CMakeFiles/ft_core.dir/lp_formulation.cpp.o" "gcc" "src/core/CMakeFiles/ft_core.dir/lp_formulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ft_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/ft_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/ft_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ft_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ft_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
