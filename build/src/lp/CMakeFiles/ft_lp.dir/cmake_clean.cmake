file(REMOVE_RECURSE
  "CMakeFiles/ft_lp.dir/branch_and_bound.cpp.o"
  "CMakeFiles/ft_lp.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/ft_lp.dir/lambda.cpp.o"
  "CMakeFiles/ft_lp.dir/lambda.cpp.o.d"
  "CMakeFiles/ft_lp.dir/lexmin.cpp.o"
  "CMakeFiles/ft_lp.dir/lexmin.cpp.o.d"
  "CMakeFiles/ft_lp.dir/maxflow.cpp.o"
  "CMakeFiles/ft_lp.dir/maxflow.cpp.o.d"
  "CMakeFiles/ft_lp.dir/model.cpp.o"
  "CMakeFiles/ft_lp.dir/model.cpp.o.d"
  "CMakeFiles/ft_lp.dir/simplex.cpp.o"
  "CMakeFiles/ft_lp.dir/simplex.cpp.o.d"
  "CMakeFiles/ft_lp.dir/unimodular.cpp.o"
  "CMakeFiles/ft_lp.dir/unimodular.cpp.o.d"
  "libft_lp.a"
  "libft_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
