
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lp/branch_and_bound.cpp" "src/lp/CMakeFiles/ft_lp.dir/branch_and_bound.cpp.o" "gcc" "src/lp/CMakeFiles/ft_lp.dir/branch_and_bound.cpp.o.d"
  "/root/repo/src/lp/lambda.cpp" "src/lp/CMakeFiles/ft_lp.dir/lambda.cpp.o" "gcc" "src/lp/CMakeFiles/ft_lp.dir/lambda.cpp.o.d"
  "/root/repo/src/lp/lexmin.cpp" "src/lp/CMakeFiles/ft_lp.dir/lexmin.cpp.o" "gcc" "src/lp/CMakeFiles/ft_lp.dir/lexmin.cpp.o.d"
  "/root/repo/src/lp/maxflow.cpp" "src/lp/CMakeFiles/ft_lp.dir/maxflow.cpp.o" "gcc" "src/lp/CMakeFiles/ft_lp.dir/maxflow.cpp.o.d"
  "/root/repo/src/lp/model.cpp" "src/lp/CMakeFiles/ft_lp.dir/model.cpp.o" "gcc" "src/lp/CMakeFiles/ft_lp.dir/model.cpp.o.d"
  "/root/repo/src/lp/simplex.cpp" "src/lp/CMakeFiles/ft_lp.dir/simplex.cpp.o" "gcc" "src/lp/CMakeFiles/ft_lp.dir/simplex.cpp.o.d"
  "/root/repo/src/lp/unimodular.cpp" "src/lp/CMakeFiles/ft_lp.dir/unimodular.cpp.o" "gcc" "src/lp/CMakeFiles/ft_lp.dir/unimodular.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ft_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ft_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
