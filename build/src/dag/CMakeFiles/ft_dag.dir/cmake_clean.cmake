file(REMOVE_RECURSE
  "CMakeFiles/ft_dag.dir/critical_path.cpp.o"
  "CMakeFiles/ft_dag.dir/critical_path.cpp.o.d"
  "CMakeFiles/ft_dag.dir/dag.cpp.o"
  "CMakeFiles/ft_dag.dir/dag.cpp.o.d"
  "CMakeFiles/ft_dag.dir/dot.cpp.o"
  "CMakeFiles/ft_dag.dir/dot.cpp.o.d"
  "CMakeFiles/ft_dag.dir/generators.cpp.o"
  "CMakeFiles/ft_dag.dir/generators.cpp.o.d"
  "CMakeFiles/ft_dag.dir/topology.cpp.o"
  "CMakeFiles/ft_dag.dir/topology.cpp.o.d"
  "libft_dag.a"
  "libft_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
