# Empty compiler generated dependencies file for ft_dag.
# This may be replaced when dependencies are built.
