file(REMOVE_RECURSE
  "libft_dag.a"
)
