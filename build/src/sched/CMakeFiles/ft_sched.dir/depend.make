# Empty dependencies file for ft_sched.
# This may be replaced when dependencies are built.
