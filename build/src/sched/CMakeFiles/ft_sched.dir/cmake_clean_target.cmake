file(REMOVE_RECURSE
  "libft_sched.a"
)
