file(REMOVE_RECURSE
  "CMakeFiles/ft_sched.dir/allocation_util.cpp.o"
  "CMakeFiles/ft_sched.dir/allocation_util.cpp.o.d"
  "CMakeFiles/ft_sched.dir/baselines.cpp.o"
  "CMakeFiles/ft_sched.dir/baselines.cpp.o.d"
  "CMakeFiles/ft_sched.dir/cora.cpp.o"
  "CMakeFiles/ft_sched.dir/cora.cpp.o.d"
  "CMakeFiles/ft_sched.dir/experiment.cpp.o"
  "CMakeFiles/ft_sched.dir/experiment.cpp.o.d"
  "CMakeFiles/ft_sched.dir/morpheus.cpp.o"
  "CMakeFiles/ft_sched.dir/morpheus.cpp.o.d"
  "CMakeFiles/ft_sched.dir/rayon.cpp.o"
  "CMakeFiles/ft_sched.dir/rayon.cpp.o.d"
  "libft_sched.a"
  "libft_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
