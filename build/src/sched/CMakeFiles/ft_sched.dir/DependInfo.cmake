
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/allocation_util.cpp" "src/sched/CMakeFiles/ft_sched.dir/allocation_util.cpp.o" "gcc" "src/sched/CMakeFiles/ft_sched.dir/allocation_util.cpp.o.d"
  "/root/repo/src/sched/baselines.cpp" "src/sched/CMakeFiles/ft_sched.dir/baselines.cpp.o" "gcc" "src/sched/CMakeFiles/ft_sched.dir/baselines.cpp.o.d"
  "/root/repo/src/sched/cora.cpp" "src/sched/CMakeFiles/ft_sched.dir/cora.cpp.o" "gcc" "src/sched/CMakeFiles/ft_sched.dir/cora.cpp.o.d"
  "/root/repo/src/sched/experiment.cpp" "src/sched/CMakeFiles/ft_sched.dir/experiment.cpp.o" "gcc" "src/sched/CMakeFiles/ft_sched.dir/experiment.cpp.o.d"
  "/root/repo/src/sched/morpheus.cpp" "src/sched/CMakeFiles/ft_sched.dir/morpheus.cpp.o" "gcc" "src/sched/CMakeFiles/ft_sched.dir/morpheus.cpp.o.d"
  "/root/repo/src/sched/rayon.cpp" "src/sched/CMakeFiles/ft_sched.dir/rayon.cpp.o" "gcc" "src/sched/CMakeFiles/ft_sched.dir/rayon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ft_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/ft_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ft_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/ft_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ft_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
