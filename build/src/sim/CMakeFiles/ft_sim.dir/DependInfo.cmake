
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/ft_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/ft_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/sim/CMakeFiles/ft_sim.dir/report.cpp.o" "gcc" "src/sim/CMakeFiles/ft_sim.dir/report.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/ft_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/ft_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/task_simulator.cpp" "src/sim/CMakeFiles/ft_sim.dir/task_simulator.cpp.o" "gcc" "src/sim/CMakeFiles/ft_sim.dir/task_simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ft_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ft_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/ft_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ft_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
