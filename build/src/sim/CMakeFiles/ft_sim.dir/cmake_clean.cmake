file(REMOVE_RECURSE
  "CMakeFiles/ft_sim.dir/metrics.cpp.o"
  "CMakeFiles/ft_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/ft_sim.dir/report.cpp.o"
  "CMakeFiles/ft_sim.dir/report.cpp.o.d"
  "CMakeFiles/ft_sim.dir/simulator.cpp.o"
  "CMakeFiles/ft_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/ft_sim.dir/task_simulator.cpp.o"
  "CMakeFiles/ft_sim.dir/task_simulator.cpp.o.d"
  "libft_sim.a"
  "libft_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
