file(REMOVE_RECURSE
  "libft_workload.a"
)
