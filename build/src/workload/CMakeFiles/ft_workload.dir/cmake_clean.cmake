file(REMOVE_RECURSE
  "CMakeFiles/ft_workload.dir/dot.cpp.o"
  "CMakeFiles/ft_workload.dir/dot.cpp.o.d"
  "CMakeFiles/ft_workload.dir/estimator.cpp.o"
  "CMakeFiles/ft_workload.dir/estimator.cpp.o.d"
  "CMakeFiles/ft_workload.dir/history.cpp.o"
  "CMakeFiles/ft_workload.dir/history.cpp.o.d"
  "CMakeFiles/ft_workload.dir/profiles.cpp.o"
  "CMakeFiles/ft_workload.dir/profiles.cpp.o.d"
  "CMakeFiles/ft_workload.dir/scenario_io.cpp.o"
  "CMakeFiles/ft_workload.dir/scenario_io.cpp.o.d"
  "CMakeFiles/ft_workload.dir/trace_gen.cpp.o"
  "CMakeFiles/ft_workload.dir/trace_gen.cpp.o.d"
  "CMakeFiles/ft_workload.dir/workflow.cpp.o"
  "CMakeFiles/ft_workload.dir/workflow.cpp.o.d"
  "libft_workload.a"
  "libft_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
