
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/dot.cpp" "src/workload/CMakeFiles/ft_workload.dir/dot.cpp.o" "gcc" "src/workload/CMakeFiles/ft_workload.dir/dot.cpp.o.d"
  "/root/repo/src/workload/estimator.cpp" "src/workload/CMakeFiles/ft_workload.dir/estimator.cpp.o" "gcc" "src/workload/CMakeFiles/ft_workload.dir/estimator.cpp.o.d"
  "/root/repo/src/workload/history.cpp" "src/workload/CMakeFiles/ft_workload.dir/history.cpp.o" "gcc" "src/workload/CMakeFiles/ft_workload.dir/history.cpp.o.d"
  "/root/repo/src/workload/profiles.cpp" "src/workload/CMakeFiles/ft_workload.dir/profiles.cpp.o" "gcc" "src/workload/CMakeFiles/ft_workload.dir/profiles.cpp.o.d"
  "/root/repo/src/workload/scenario_io.cpp" "src/workload/CMakeFiles/ft_workload.dir/scenario_io.cpp.o" "gcc" "src/workload/CMakeFiles/ft_workload.dir/scenario_io.cpp.o.d"
  "/root/repo/src/workload/trace_gen.cpp" "src/workload/CMakeFiles/ft_workload.dir/trace_gen.cpp.o" "gcc" "src/workload/CMakeFiles/ft_workload.dir/trace_gen.cpp.o.d"
  "/root/repo/src/workload/workflow.cpp" "src/workload/CMakeFiles/ft_workload.dir/workflow.cpp.o" "gcc" "src/workload/CMakeFiles/ft_workload.dir/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ft_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/ft_dag.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
