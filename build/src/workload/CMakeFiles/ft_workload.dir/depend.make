# Empty dependencies file for ft_workload.
# This may be replaced when dependencies are built.
