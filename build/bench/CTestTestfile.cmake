# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(trace_smoke "/root/repo/build/bench/trace_smoke" "--trace-out=/root/repo/build/bench/trace_smoke.jsonl")
set_tests_properties(trace_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
