file(REMOVE_RECURSE
  "CMakeFiles/trace_smoke.dir/trace_smoke.cpp.o"
  "CMakeFiles/trace_smoke.dir/trace_smoke.cpp.o.d"
  "trace_smoke"
  "trace_smoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
