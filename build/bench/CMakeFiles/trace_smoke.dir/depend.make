# Empty dependencies file for trace_smoke.
# This may be replaced when dependencies are built.
