file(REMOVE_RECURSE
  "CMakeFiles/fig4_joint_performance.dir/fig4_joint_performance.cpp.o"
  "CMakeFiles/fig4_joint_performance.dir/fig4_joint_performance.cpp.o.d"
  "fig4_joint_performance"
  "fig4_joint_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_joint_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
