# Empty dependencies file for fig4_joint_performance.
# This may be replaced when dependencies are built.
