# Empty compiler generated dependencies file for ablation_node_granularity.
# This may be replaced when dependencies are built.
