file(REMOVE_RECURSE
  "CMakeFiles/ablation_node_granularity.dir/ablation_node_granularity.cpp.o"
  "CMakeFiles/ablation_node_granularity.dir/ablation_node_granularity.cpp.o.d"
  "ablation_node_granularity"
  "ablation_node_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_node_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
