# Empty dependencies file for fig6_decomposition_scalability.
# This may be replaced when dependencies are built.
