file(REMOVE_RECURSE
  "CMakeFiles/fig6_decomposition_scalability.dir/fig6_decomposition_scalability.cpp.o"
  "CMakeFiles/fig6_decomposition_scalability.dir/fig6_decomposition_scalability.cpp.o.d"
  "fig6_decomposition_scalability"
  "fig6_decomposition_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_decomposition_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
