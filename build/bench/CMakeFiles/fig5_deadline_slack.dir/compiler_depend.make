# Empty compiler generated dependencies file for fig5_deadline_slack.
# This may be replaced when dependencies are built.
