file(REMOVE_RECURSE
  "CMakeFiles/fig5_deadline_slack.dir/fig5_deadline_slack.cpp.o"
  "CMakeFiles/fig5_deadline_slack.dir/fig5_deadline_slack.cpp.o.d"
  "fig5_deadline_slack"
  "fig5_deadline_slack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_deadline_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
