file(REMOVE_RECURSE
  "CMakeFiles/fig9_estimation_robustness.dir/fig9_estimation_robustness.cpp.o"
  "CMakeFiles/fig9_estimation_robustness.dir/fig9_estimation_robustness.cpp.o.d"
  "fig9_estimation_robustness"
  "fig9_estimation_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_estimation_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
