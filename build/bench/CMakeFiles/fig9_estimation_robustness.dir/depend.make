# Empty dependencies file for fig9_estimation_robustness.
# This may be replaced when dependencies are built.
