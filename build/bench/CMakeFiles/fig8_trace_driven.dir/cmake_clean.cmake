file(REMOVE_RECURSE
  "CMakeFiles/fig8_trace_driven.dir/fig8_trace_driven.cpp.o"
  "CMakeFiles/fig8_trace_driven.dir/fig8_trace_driven.cpp.o.d"
  "fig8_trace_driven"
  "fig8_trace_driven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_trace_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
