# Empty dependencies file for fig8_trace_driven.
# This may be replaced when dependencies are built.
