file(REMOVE_RECURSE
  "CMakeFiles/fig7_solver_latency.dir/fig7_solver_latency.cpp.o"
  "CMakeFiles/fig7_solver_latency.dir/fig7_solver_latency.cpp.o.d"
  "fig7_solver_latency"
  "fig7_solver_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_solver_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
