# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/obs_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/dag_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/decomposition_test[1]_include.cmake")
include("/root/repo/build/tests/lp_formulation_test[1]_include.cmake")
include("/root/repo/build/tests/flowtime_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/lp_property_test[1]_include.cmake")
include("/root/repo/build/tests/flowtime_extra_test[1]_include.cmake")
include("/root/repo/build/tests/lemma_test[1]_include.cmake")
include("/root/repo/build/tests/flow_placement_test[1]_include.cmake")
include("/root/repo/build/tests/rayon_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_io_test[1]_include.cmake")
include("/root/repo/build/tests/node_mode_test[1]_include.cmake")
include("/root/repo/build/tests/admission_test[1]_include.cmake")
include("/root/repo/build/tests/coupled_placement_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/task_simulator_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/solver_stress_test[1]_include.cmake")
include("/root/repo/build/tests/history_test[1]_include.cmake")
