file(REMOVE_RECURSE
  "CMakeFiles/node_mode_test.dir/node_mode_test.cpp.o"
  "CMakeFiles/node_mode_test.dir/node_mode_test.cpp.o.d"
  "node_mode_test"
  "node_mode_test.pdb"
  "node_mode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
