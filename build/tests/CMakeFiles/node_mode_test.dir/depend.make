# Empty dependencies file for node_mode_test.
# This may be replaced when dependencies are built.
