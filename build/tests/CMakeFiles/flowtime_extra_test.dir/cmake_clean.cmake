file(REMOVE_RECURSE
  "CMakeFiles/flowtime_extra_test.dir/flowtime_extra_test.cpp.o"
  "CMakeFiles/flowtime_extra_test.dir/flowtime_extra_test.cpp.o.d"
  "flowtime_extra_test"
  "flowtime_extra_test.pdb"
  "flowtime_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowtime_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
