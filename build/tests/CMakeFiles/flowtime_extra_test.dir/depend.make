# Empty dependencies file for flowtime_extra_test.
# This may be replaced when dependencies are built.
