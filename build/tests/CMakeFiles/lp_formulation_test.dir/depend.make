# Empty dependencies file for lp_formulation_test.
# This may be replaced when dependencies are built.
