file(REMOVE_RECURSE
  "CMakeFiles/lp_formulation_test.dir/lp_formulation_test.cpp.o"
  "CMakeFiles/lp_formulation_test.dir/lp_formulation_test.cpp.o.d"
  "lp_formulation_test"
  "lp_formulation_test.pdb"
  "lp_formulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_formulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
