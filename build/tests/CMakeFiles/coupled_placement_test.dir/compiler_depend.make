# Empty compiler generated dependencies file for coupled_placement_test.
# This may be replaced when dependencies are built.
