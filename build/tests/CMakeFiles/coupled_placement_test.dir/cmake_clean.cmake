file(REMOVE_RECURSE
  "CMakeFiles/coupled_placement_test.dir/coupled_placement_test.cpp.o"
  "CMakeFiles/coupled_placement_test.dir/coupled_placement_test.cpp.o.d"
  "coupled_placement_test"
  "coupled_placement_test.pdb"
  "coupled_placement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupled_placement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
