# Empty compiler generated dependencies file for flowtime_scheduler_test.
# This may be replaced when dependencies are built.
