file(REMOVE_RECURSE
  "CMakeFiles/flowtime_scheduler_test.dir/flowtime_scheduler_test.cpp.o"
  "CMakeFiles/flowtime_scheduler_test.dir/flowtime_scheduler_test.cpp.o.d"
  "flowtime_scheduler_test"
  "flowtime_scheduler_test.pdb"
  "flowtime_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowtime_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
