file(REMOVE_RECURSE
  "CMakeFiles/rayon_test.dir/rayon_test.cpp.o"
  "CMakeFiles/rayon_test.dir/rayon_test.cpp.o.d"
  "rayon_test"
  "rayon_test.pdb"
  "rayon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rayon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
