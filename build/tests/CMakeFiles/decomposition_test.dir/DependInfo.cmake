
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/decomposition_test.cpp" "tests/CMakeFiles/decomposition_test.dir/decomposition_test.cpp.o" "gcc" "tests/CMakeFiles/decomposition_test.dir/decomposition_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ft_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ft_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/ft_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/ft_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ft_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ft_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
