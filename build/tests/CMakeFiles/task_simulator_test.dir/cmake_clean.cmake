file(REMOVE_RECURSE
  "CMakeFiles/task_simulator_test.dir/task_simulator_test.cpp.o"
  "CMakeFiles/task_simulator_test.dir/task_simulator_test.cpp.o.d"
  "task_simulator_test"
  "task_simulator_test.pdb"
  "task_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
