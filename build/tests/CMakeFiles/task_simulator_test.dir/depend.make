# Empty dependencies file for task_simulator_test.
# This may be replaced when dependencies are built.
