# Empty compiler generated dependencies file for flow_placement_test.
# This may be replaced when dependencies are built.
