file(REMOVE_RECURSE
  "CMakeFiles/flow_placement_test.dir/flow_placement_test.cpp.o"
  "CMakeFiles/flow_placement_test.dir/flow_placement_test.cpp.o.d"
  "flow_placement_test"
  "flow_placement_test.pdb"
  "flow_placement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_placement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
