file(REMOVE_RECURSE
  "CMakeFiles/daily_etl_pipeline.dir/daily_etl_pipeline.cpp.o"
  "CMakeFiles/daily_etl_pipeline.dir/daily_etl_pipeline.cpp.o.d"
  "daily_etl_pipeline"
  "daily_etl_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daily_etl_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
