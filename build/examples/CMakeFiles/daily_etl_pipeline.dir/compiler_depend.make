# Empty compiler generated dependencies file for daily_etl_pipeline.
# This may be replaced when dependencies are built.
