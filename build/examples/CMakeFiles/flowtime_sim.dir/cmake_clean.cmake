file(REMOVE_RECURSE
  "CMakeFiles/flowtime_sim.dir/flowtime_sim.cpp.o"
  "CMakeFiles/flowtime_sim.dir/flowtime_sim.cpp.o.d"
  "flowtime_sim"
  "flowtime_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowtime_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
