# Empty compiler generated dependencies file for flowtime_sim.
# This may be replaced when dependencies are built.
