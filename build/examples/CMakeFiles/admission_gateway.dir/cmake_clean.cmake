file(REMOVE_RECURSE
  "CMakeFiles/admission_gateway.dir/admission_gateway.cpp.o"
  "CMakeFiles/admission_gateway.dir/admission_gateway.cpp.o.d"
  "admission_gateway"
  "admission_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admission_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
