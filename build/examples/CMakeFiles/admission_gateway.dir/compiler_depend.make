# Empty compiler generated dependencies file for admission_gateway.
# This may be replaced when dependencies are built.
