// Tests for the fault-injection subsystem: the FaultInjector engine
// (machine churn schedule, declared/hazard task faults, stragglers,
// estimate noise, determinism) and the FaultPlan scenario_io round-trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "fault/injector.h"
#include "fault/plan.h"
#include "obs/testing.h"
#include "workload/scenario_io.h"

namespace flowtime::fault {
namespace {

using workload::kCpu;
using workload::kMemory;
using workload::ResourceVec;

workload::ClusterSpec test_cluster() {
  workload::ClusterSpec cluster;
  cluster.capacity = ResourceVec{100.0, 256.0};
  cluster.slot_seconds = 10.0;
  return cluster;
}

TEST(FaultPlan, EmptyByDefault) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.hazard.prob_per_slot = 0.01;
  EXPECT_FALSE(plan.empty());
}

TEST(FaultInjector, EmptyPlanIsInactiveAndTransparent) {
  obs::testing::ScopedRegistryReset reset;
  FaultInjector injector(FaultPlan{}, test_cluster());
  EXPECT_FALSE(injector.active());
  bool changed = true;
  const ResourceVec base{100.0, 256.0};
  const ResourceVec out = injector.capacity_for_slot(0, 0.0, base, &changed);
  EXPECT_FALSE(changed);
  EXPECT_DOUBLE_EQ(out[kCpu], 100.0);
  EXPECT_DOUBLE_EQ(out[kMemory], 256.0);
  EXPECT_FALSE(injector.task_fault(0, 0, 0, 0).has_value());
  EXPECT_DOUBLE_EQ(injector.straggler_factor(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(injector.noise_factor(0, 0), 1.0);
}

TEST(FaultInjector, MachineChurnSchedule) {
  obs::testing::ScopedRegistryReset reset;
  FaultPlan plan;
  plan.machines.push_back(MachineFault{2, 5, ResourceVec{30.0, 64.0}});
  plan.machines.push_back(MachineFault{3, -1, ResourceVec{10.0, 16.0}});
  FaultInjector injector(plan, test_cluster());
  const ResourceVec base{100.0, 256.0};

  bool changed = false;
  ResourceVec cap = injector.capacity_for_slot(0, 0.0, base, &changed);
  EXPECT_FALSE(changed);
  EXPECT_DOUBLE_EQ(cap[kCpu], 100.0);

  // Slot 2: first machine down.
  injector.capacity_for_slot(1, 10.0, base, &changed);
  cap = injector.capacity_for_slot(2, 20.0, base, &changed);
  EXPECT_TRUE(changed);
  EXPECT_DOUBLE_EQ(cap[kCpu], 70.0);
  EXPECT_DOUBLE_EQ(cap[kMemory], 192.0);

  // Slot 3: second machine (never recovers) stacks on top.
  cap = injector.capacity_for_slot(3, 30.0, base, &changed);
  EXPECT_TRUE(changed);
  EXPECT_DOUBLE_EQ(cap[kCpu], 60.0);

  // Slot 4: no transition.
  cap = injector.capacity_for_slot(4, 40.0, base, &changed);
  EXPECT_FALSE(changed);
  EXPECT_DOUBLE_EQ(cap[kCpu], 60.0);

  // Slot 5: first machine recovers; the permanent loss remains.
  cap = injector.capacity_for_slot(5, 50.0, base, &changed);
  EXPECT_TRUE(changed);
  EXPECT_DOUBLE_EQ(cap[kCpu], 90.0);
  EXPECT_DOUBLE_EQ(cap[kMemory], 240.0);

  EXPECT_EQ(injector.log().machine_downs, 2);
  EXPECT_EQ(injector.log().machine_ups, 1);
  EXPECT_EQ(injector.log().capacity_changes, 3);
}

TEST(FaultInjector, CapacityNeverGoesNegative) {
  obs::testing::ScopedRegistryReset reset;
  FaultPlan plan;
  plan.machines.push_back(MachineFault{0, -1, ResourceVec{500.0, 999.0}});
  FaultInjector injector(plan, test_cluster());
  bool changed = false;
  const ResourceVec cap =
      injector.capacity_for_slot(0, 0.0, ResourceVec{100.0, 256.0}, &changed);
  EXPECT_TRUE(changed);
  EXPECT_DOUBLE_EQ(cap[kCpu], 0.0);
  EXPECT_DOUBLE_EQ(cap[kMemory], 0.0);
}

TEST(FaultInjector, DeclaredTaskFaultFiresOnceEvenWhenDeferred) {
  obs::testing::ScopedRegistryReset reset;
  FaultPlan plan;
  plan.task_faults.push_back(TaskFault{0, 1, 5, 0.5, 3});
  FaultInjector injector(plan, test_cluster());

  // Before the declared slot: nothing.
  EXPECT_FALSE(injector.task_fault(4, 0, 1, 0).has_value());
  // Wrong job at the right slot: nothing.
  EXPECT_FALSE(injector.task_fault(5, 0, 2, 0).has_value());
  // The job first becomes runnable after the declared slot: still fires.
  const auto action = injector.task_fault(8, 0, 1, 0);
  ASSERT_TRUE(action.has_value());
  EXPECT_DOUBLE_EQ(action->lost_fraction, 0.5);
  EXPECT_EQ(action->backoff_slots, 3);
  EXPECT_FALSE(action->from_hazard);
  // Consumed: never fires again.
  EXPECT_FALSE(injector.task_fault(9, 0, 1, 1).has_value());
}

TEST(FaultInjector, HazardIsDeterministicAndRespectsMaxRetries) {
  obs::testing::ScopedRegistryReset reset;
  FaultPlan plan;
  plan.seed = 7;
  plan.hazard.prob_per_slot = 0.3;
  plan.hazard.max_retries = 2;
  plan.hazard.backoff_slots = 4;

  auto draw_pattern = [&](const FaultPlan& p) {
    FaultInjector injector(p, test_cluster());
    std::string pattern;
    for (int slot = 0; slot < 64; ++slot) {
      const auto action = injector.task_fault(slot, 0, 0, 0);
      pattern += action.has_value() ? '1' : '0';
      if (action) {
        EXPECT_TRUE(action->from_hazard);
        EXPECT_EQ(action->backoff_slots, 4);
      }
    }
    return pattern;
  };
  const std::string first = draw_pattern(plan);
  EXPECT_EQ(first, draw_pattern(plan)) << "same seed must replay";
  EXPECT_NE(first.find('1'), std::string::npos) << "p=0.3 over 64 draws";

  FaultPlan other = plan;
  other.seed = 8;
  EXPECT_NE(first, draw_pattern(other)) << "different seed, different draws";

  // At the retry cap the hazard stops firing for that job.
  FaultInjector capped(plan, test_cluster());
  for (int slot = 0; slot < 64; ++slot) {
    EXPECT_FALSE(capped.task_fault(slot, 0, 0, 2).has_value());
  }
}

TEST(FaultInjector, StragglerFiresOnce) {
  obs::testing::ScopedRegistryReset reset;
  FaultPlan plan;
  plan.stragglers.push_back(StragglerFault{0, 2, 10, 2.5});
  FaultInjector injector(plan, test_cluster());
  EXPECT_DOUBLE_EQ(injector.straggler_factor(9, 0, 2), 1.0);
  EXPECT_DOUBLE_EQ(injector.straggler_factor(12, 0, 2), 2.5);  // deferred
  EXPECT_DOUBLE_EQ(injector.straggler_factor(13, 0, 2), 1.0);  // consumed
}

TEST(FaultInjector, NoiseModels) {
  obs::testing::ScopedRegistryReset reset;
  FaultPlan plan;
  plan.seed = 11;
  plan.noise.model = NoiseModel::kAdversarial;
  plan.noise.bias = 1.4;
  {
    FaultInjector injector(plan, test_cluster());
    EXPECT_DOUBLE_EQ(injector.noise_factor(0, 0), 1.4);
    EXPECT_DOUBLE_EQ(injector.noise_factor(0, 1), 1.4);
    EXPECT_EQ(injector.log().noised_jobs, 2);
  }
  plan.noise.model = NoiseModel::kLognormal;
  plan.noise.sigma = 0.25;
  plan.noise.bias = 1.0;
  FaultInjector a(plan, test_cluster());
  FaultInjector b(plan, test_cluster());
  for (int i = 0; i < 8; ++i) {
    const double factor = a.noise_factor(0, i);
    EXPECT_GT(factor, 0.0);
    EXPECT_DOUBLE_EQ(factor, b.noise_factor(0, i)) << "same seed, same draw";
  }
}

// --- cell faults ------------------------------------------------------------

TEST(FaultInjector, CellCrashWindowEmitsEngageAndLiftEdges) {
  obs::testing::ScopedRegistryReset reset;
  FaultPlan plan;
  CellFault crash;
  crash.cell = 1;
  crash.mode = CellFaultMode::kCrash;
  crash.slot = 3;
  crash.until_slot = 6;
  plan.cell_faults.push_back(crash);
  FaultInjector injector(plan, test_cluster());

  for (int slot = 0; slot < 3; ++slot) {
    EXPECT_TRUE(injector.cell_faults_for_slot(slot, slot * 10.0).empty());
  }
  auto edges = injector.cell_faults_for_slot(3, 30.0);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].cell, 1);
  EXPECT_EQ(edges[0].mode, CellFaultMode::kCrash);
  EXPECT_TRUE(edges[0].active);
  // Inside the window: no new edges.
  EXPECT_TRUE(injector.cell_faults_for_slot(4, 40.0).empty());
  EXPECT_TRUE(injector.cell_faults_for_slot(5, 50.0).empty());
  edges = injector.cell_faults_for_slot(6, 60.0);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_FALSE(edges[0].active);
  EXPECT_TRUE(injector.cell_faults_for_slot(7, 70.0).empty());
  EXPECT_EQ(injector.log().cell_faults, 1);
  EXPECT_EQ(injector.log().cell_recoveries, 1);
}

TEST(FaultInjector, CellFaultWithoutUntilNeverLifts) {
  obs::testing::ScopedRegistryReset reset;
  FaultPlan plan;
  CellFault hang;
  hang.cell = 0;
  hang.mode = CellFaultMode::kHang;
  hang.slot = 2;  // until_slot = -1 (default): permanent
  plan.cell_faults.push_back(hang);
  FaultInjector injector(plan, test_cluster());
  EXPECT_TRUE(injector.cell_faults_for_slot(0, 0.0).empty());
  EXPECT_TRUE(injector.cell_faults_for_slot(1, 10.0).empty());
  const auto edges = injector.cell_faults_for_slot(2, 20.0);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].mode, CellFaultMode::kHang);
  EXPECT_TRUE(edges[0].active);
  for (int slot = 3; slot < 40; ++slot) {
    EXPECT_TRUE(injector.cell_faults_for_slot(slot, slot * 10.0).empty())
        << "permanent fault must never lift, slot " << slot;
  }
  EXPECT_EQ(injector.log().cell_recoveries, 0);
}

TEST(FaultInjector, FlapScheduleIsSeedDeterministic) {
  obs::testing::ScopedRegistryReset reset;
  FaultPlan plan;
  plan.seed = 19;
  CellFault flap;
  flap.cell = 2;
  flap.mode = CellFaultMode::kFlap;
  flap.slot = 4;
  flap.until_slot = 60;
  flap.period_slots = 5;
  flap.jitter = 0.4;
  plan.cell_faults.push_back(flap);

  auto edge_pattern = [&](const FaultPlan& p) {
    FaultInjector injector(p, test_cluster());
    std::string pattern;
    for (int slot = 0; slot < 80; ++slot) {
      for (const auto& edge : injector.cell_faults_for_slot(slot, slot * 10.0)) {
        pattern += edge.active ? 'D' : 'U';
      }
      pattern += '.';
    }
    return pattern;
  };
  const std::string first = edge_pattern(plan);
  EXPECT_EQ(first, edge_pattern(plan)) << "same seed must replay the flaps";
  // The flap must actually flap: at least two down edges and one up edge.
  EXPECT_GE(std::count(first.begin(), first.end(), 'D'), 2);
  EXPECT_GE(std::count(first.begin(), first.end(), 'U'), 1);

  FaultPlan other = plan;
  other.seed = 20;
  EXPECT_NE(first, edge_pattern(other))
      << "jittered phases must depend on the seed";
}

// Golden stream-forking test: adding fault_cell entries to a plan must not
// shift the noise or hazard streams of the otherwise identical plan. The
// cell stream is forked from seed ^ its own salt, so the families stay
// independent by construction — this pins that invariant.
TEST(FaultInjector, CellFaultsDoNotShiftNoiseOrHazardDraws) {
  obs::testing::ScopedRegistryReset reset;
  FaultPlan base;
  base.seed = 33;
  base.hazard.prob_per_slot = 0.2;
  base.hazard.max_retries = 8;
  base.noise.model = NoiseModel::kLognormal;
  base.noise.sigma = 0.3;

  FaultPlan with_cells = base;
  for (int cell = 0; cell < 3; ++cell) {
    CellFault fault;
    fault.cell = cell;
    fault.mode = cell == 1 ? CellFaultMode::kFlap : CellFaultMode::kCrash;
    fault.slot = 2 + cell;
    fault.until_slot = 40;
    fault.period_slots = 4;
    fault.jitter = 0.5;
    with_cells.cell_faults.push_back(fault);
  }

  FaultInjector plain(base, test_cluster());
  FaultInjector chaotic(with_cells, test_cluster());
  // Exercise the cell stream heavily before comparing the other families.
  for (int slot = 0; slot < 64; ++slot) {
    (void)plain.cell_faults_for_slot(slot, slot * 10.0);
    (void)chaotic.cell_faults_for_slot(slot, slot * 10.0);
  }
  for (int node = 0; node < 16; ++node) {
    EXPECT_DOUBLE_EQ(plain.noise_factor(0, node),
                     chaotic.noise_factor(0, node))
        << "noise stream shifted by cell faults, node " << node;
  }
  for (int slot = 0; slot < 64; ++slot) {
    const auto a = plain.task_fault(slot, 0, 0, 0);
    const auto b = chaotic.task_fault(slot, 0, 0, 0);
    EXPECT_EQ(a.has_value(), b.has_value())
        << "hazard stream shifted by cell faults, slot " << slot;
  }
}

// --- scenario_io round-trip ------------------------------------------------

constexpr const char* kChaosFile = R"(
cluster cores=100 mem_gb=256 slot_seconds=10

workflow id=0 name=wf start=0 deadline=1800
job node=0 name=a tasks=10 runtime=60 cores=1 mem=2
job node=1 name=b tasks=10 runtime=60 cores=1 mem=2
edge 0 1
end

adhoc id=0 arrival=50 tasks=4 runtime=30 cores=1 mem=1

fault seed=123
fault_machine down=20 up=50 cores=30 mem_gb=64
fault_machine down=80 cores=10 mem_gb=16
fault_task workflow=0 node=1 slot=40 lose=0.75 backoff=3
fault_straggler workflow=0 node=0 slot=15 factor=2.5
fault_hazard prob=0.002 lose=0.5 backoff=2 retries=4
fault_noise model=lognormal sigma=0.2 bias=1.1
)";

TEST(FaultPlanIo, ParsesFaultDirectives) {
  workload::ParseError error;
  const auto parsed =
      workload::parse_scenario(std::string(kChaosFile), &error);
  ASSERT_TRUE(parsed.has_value()) << error.message;
  const FaultPlan& plan = parsed->fault_plan;
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.seed, 123u);

  ASSERT_EQ(plan.machines.size(), 2u);
  EXPECT_EQ(plan.machines[0].down_slot, 20);
  EXPECT_EQ(plan.machines[0].up_slot, 50);
  EXPECT_DOUBLE_EQ(plan.machines[0].capacity[kCpu], 30.0);
  EXPECT_DOUBLE_EQ(plan.machines[0].capacity[kMemory], 64.0);
  EXPECT_EQ(plan.machines[1].up_slot, -1) << "no up= means never recovers";

  ASSERT_EQ(plan.task_faults.size(), 1u);
  EXPECT_EQ(plan.task_faults[0].workflow_id, 0);
  EXPECT_EQ(plan.task_faults[0].node, 1);
  EXPECT_EQ(plan.task_faults[0].slot, 40);
  EXPECT_DOUBLE_EQ(plan.task_faults[0].lost_fraction, 0.75);
  EXPECT_EQ(plan.task_faults[0].backoff_slots, 3);

  ASSERT_EQ(plan.stragglers.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.stragglers[0].factor, 2.5);

  EXPECT_DOUBLE_EQ(plan.hazard.prob_per_slot, 0.002);
  EXPECT_DOUBLE_EQ(plan.hazard.lost_fraction, 0.5);
  EXPECT_EQ(plan.hazard.backoff_slots, 2);
  EXPECT_EQ(plan.hazard.max_retries, 4);

  EXPECT_EQ(plan.noise.model, NoiseModel::kLognormal);
  EXPECT_DOUBLE_EQ(plan.noise.sigma, 0.2);
  EXPECT_DOUBLE_EQ(plan.noise.bias, 1.1);
}

TEST(FaultPlanIo, WriteParseRoundTrip) {
  workload::ParseError error;
  const auto parsed =
      workload::parse_scenario(std::string(kChaosFile), &error);
  ASSERT_TRUE(parsed.has_value()) << error.message;

  const std::string written = workload::write_scenario(
      parsed->scenario, parsed->cluster, parsed->fault_plan);
  const auto reparsed = workload::parse_scenario(written, &error);
  ASSERT_TRUE(reparsed.has_value()) << error.message << "\n" << written;

  const FaultPlan& a = parsed->fault_plan;
  const FaultPlan& b = reparsed->fault_plan;
  EXPECT_EQ(a.seed, b.seed);
  ASSERT_EQ(a.machines.size(), b.machines.size());
  for (std::size_t i = 0; i < a.machines.size(); ++i) {
    EXPECT_EQ(a.machines[i].down_slot, b.machines[i].down_slot);
    EXPECT_EQ(a.machines[i].up_slot, b.machines[i].up_slot);
    EXPECT_EQ(a.machines[i].capacity, b.machines[i].capacity);
  }
  ASSERT_EQ(a.task_faults.size(), b.task_faults.size());
  for (std::size_t i = 0; i < a.task_faults.size(); ++i) {
    EXPECT_EQ(a.task_faults[i].workflow_id, b.task_faults[i].workflow_id);
    EXPECT_EQ(a.task_faults[i].node, b.task_faults[i].node);
    EXPECT_EQ(a.task_faults[i].slot, b.task_faults[i].slot);
    EXPECT_DOUBLE_EQ(a.task_faults[i].lost_fraction,
                     b.task_faults[i].lost_fraction);
    EXPECT_EQ(a.task_faults[i].backoff_slots, b.task_faults[i].backoff_slots);
  }
  ASSERT_EQ(a.stragglers.size(), b.stragglers.size());
  for (std::size_t i = 0; i < a.stragglers.size(); ++i) {
    EXPECT_EQ(a.stragglers[i].node, b.stragglers[i].node);
    EXPECT_DOUBLE_EQ(a.stragglers[i].factor, b.stragglers[i].factor);
  }
  EXPECT_DOUBLE_EQ(a.hazard.prob_per_slot, b.hazard.prob_per_slot);
  EXPECT_EQ(a.hazard.max_retries, b.hazard.max_retries);
  EXPECT_EQ(a.noise.model, b.noise.model);
  EXPECT_DOUBLE_EQ(a.noise.sigma, b.noise.sigma);
  EXPECT_DOUBLE_EQ(a.noise.bias, b.noise.bias);
}

TEST(FaultPlanIo, EmptyPlanWritesNoFaultLines) {
  workload::ParseError error;
  const auto parsed = workload::parse_scenario(
      std::string("adhoc id=0 arrival=0 tasks=1 runtime=10 cores=1 mem=1\n"),
      &error);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->fault_plan.empty());
  const std::string written = workload::write_scenario(
      parsed->scenario, parsed->cluster, parsed->fault_plan);
  EXPECT_EQ(written.find("fault"), std::string::npos);
}

TEST(FaultPlanIo, RejectsMalformedFaultDirectives) {
  const char* kBad[] = {
      "fault\n",                                       // missing seed
      "fault_machine up=5 cores=10 mem_gb=16\n",       // missing down
      "fault_machine down=5 cores=10\n",               // missing mem_gb
      "fault_task workflow=0 slot=4\n",                // missing node
      "fault_task workflow=0 node=1\n",                // missing slot
      "fault_straggler workflow=0 node=1 slot=2\n",    // missing factor
      "fault_hazard lose=1\n",                         // missing prob
      "fault_noise sigma=0.2\n",                       // missing model
      "fault_noise model=gauss\n",                     // unknown model
      "fault seed=abc\n",                              // non-integer seed
  };
  for (const char* text : kBad) {
    workload::ParseError error;
    EXPECT_FALSE(workload::parse_scenario(std::string(text), &error)
                     .has_value())
        << "should reject: " << text;
    EXPECT_GT(error.line, 0);
  }
}

}  // namespace
}  // namespace flowtime::fault
