// Federated scheduling tests (DESIGN.md §13): partitioner determinism
// under a seed, the 1-cell pass-through identity against a plain
// FlowTimeScheduler (serial solves and pooled barrier solves), hotspot
// migration preserving re-credited work without stranding tasks, and
// per-tenant quota enforcement with deferred re-routing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "cluster/federated_scheduler.h"
#include "cluster/partition.h"
#include "core/flowtime_scheduler.h"
#include "dag/generators.h"
#include "sched/experiment.h"
#include "sim/simulator.h"
#include "workload/scenario_io.h"

namespace flowtime {
namespace {

using workload::ResourceVec;

// ---------------------------------------------------------------------------
// CellPartitioner

workload::ClusterSpec cluster_of(double cores, double mem,
                                 double slot_seconds = 10.0) {
  workload::ClusterSpec spec;
  spec.capacity = ResourceVec{cores, mem};
  spec.slot_seconds = slot_seconds;
  return spec;
}

double fraction_sum(const std::vector<cluster::CellSpec>& cells) {
  double sum = 0.0;
  for (const auto& cell : cells) sum += cell.fraction;
  return sum;
}

TEST(CellPartitioner, BalancedSplitsEvenly) {
  cluster::PartitionConfig config;
  config.cells = 4;
  config.policy = cluster::CellPolicy::kCapacityBalanced;
  const auto cells =
      cluster::CellPartitioner(config).partition(cluster_of(500.0, 1024.0));

  ASSERT_EQ(cells.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(cells[static_cast<std::size_t>(i)].id, i);
    EXPECT_DOUBLE_EQ(cells[static_cast<std::size_t>(i)].fraction, 0.25);
    EXPECT_DOUBLE_EQ(
        cells[static_cast<std::size_t>(i)].cluster.capacity[workload::kCpu],
        125.0);
    EXPECT_DOUBLE_EQ(cells[static_cast<std::size_t>(i)]
                         .cluster.capacity[workload::kMemory],
                     256.0);
    EXPECT_DOUBLE_EQ(cells[static_cast<std::size_t>(i)].cluster.slot_seconds,
                     10.0);
  }
  EXPECT_DOUBLE_EQ(fraction_sum(cells), 1.0);
}

TEST(CellPartitioner, RoundRobinIsDeterministicUnderSeed) {
  // 10 machines into 4 cells: two cells get 3 granules, two get 2. The
  // seed decides which — the same seed must always pick the same cells.
  const workload::ClusterSpec total = cluster_of(10.0, 64.0);
  cluster::PartitionConfig config;
  config.cells = 4;
  config.policy = cluster::CellPolicy::kRoundRobin;

  std::set<std::string> layouts;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    config.seed = seed;
    const auto a = cluster::CellPartitioner(config).partition(total);
    const auto b = cluster::CellPartitioner(config).partition(total);
    ASSERT_EQ(a.size(), 4u);
    std::string layout;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i].fraction, b[i].fraction) << "seed " << seed;
      const bool big = a[i].fraction > 0.25;
      EXPECT_NEAR(a[i].fraction, big ? 0.3 : 0.2, 1e-12);
      layout += big ? 'B' : 's';
    }
    EXPECT_DOUBLE_EQ(fraction_sum(a), 1.0) << "seed " << seed;
    layouts.insert(layout);
  }
  EXPECT_GT(layouts.size(), 1u)
      << "different seeds should shuffle the remainder differently";
}

TEST(CellPartitioner, ParsePolicyNames) {
  cluster::CellPolicy policy = cluster::CellPolicy::kCapacityBalanced;
  EXPECT_TRUE(cluster::parse_cell_policy("round_robin", &policy));
  EXPECT_EQ(policy, cluster::CellPolicy::kRoundRobin);
  EXPECT_TRUE(cluster::parse_cell_policy("balanced", &policy));
  EXPECT_EQ(policy, cluster::CellPolicy::kCapacityBalanced);
  EXPECT_FALSE(cluster::parse_cell_policy("hashring", &policy));
  EXPECT_EQ(policy, cluster::CellPolicy::kCapacityBalanced) << "untouched";
}

// ---------------------------------------------------------------------------
// Scenario helpers

sim::SimConfig small_cluster() {
  sim::SimConfig config;
  config.cluster.capacity = ResourceVec{100.0, 200.0};
  config.max_horizon_s = 6000.0;
  return config;
}

core::FlowTimeConfig flowtime_config(const sim::SimConfig& sim_config) {
  core::FlowTimeConfig config;
  config.cluster.capacity = sim_config.cluster.capacity;
  config.cluster.slot_seconds = sim_config.cluster.slot_seconds;
  return config;
}

workload::JobSpec simple_job(int tasks, double runtime) {
  workload::JobSpec job;
  job.name = "j";
  job.num_tasks = tasks;
  job.task.runtime_s = runtime;
  job.task.demand = ResourceVec{1.0, 2.0};
  return job;
}

workload::Workflow chain_workflow(int id, double start_s, double deadline_s) {
  workload::Workflow w;
  w.id = id;
  w.name = "w" + std::to_string(id);
  w.start_s = start_s;
  w.deadline_s = deadline_s;
  w.dag = dag::make_chain(2);
  w.jobs = {simple_job(10, 40.0), simple_job(8, 30.0)};
  return w;
}

workload::Scenario mixed_scenario() {
  workload::Scenario scenario;
  scenario.workflows.push_back(chain_workflow(0, 0.0, 2400.0));
  scenario.workflows.push_back(chain_workflow(1, 0.0, 3000.0));
  scenario.workflows.push_back(chain_workflow(2, 300.0, 3600.0));
  workload::AdhocJob adhoc_job;
  adhoc_job.id = 0;
  adhoc_job.arrival_s = 100.0;
  adhoc_job.spec = simple_job(4, 20.0);
  adhoc_job.spec.name = "adhoc";
  scenario.adhoc_jobs.push_back(std::move(adhoc_job));
  return scenario;
}

// Completion-for-completion, grant-for-grant, replan-for-replan equality.
void expect_identical_runs(const sim::SimResult& a, const sim::SimResult& b,
                           const core::FlowTimeScheduler& sched_a,
                           const core::FlowTimeScheduler& sched_b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    ASSERT_EQ(a.jobs[i].completion_s.has_value(),
              b.jobs[i].completion_s.has_value())
        << "job " << i;
    if (a.jobs[i].completion_s) {
      EXPECT_DOUBLE_EQ(*a.jobs[i].completion_s, *b.jobs[i].completion_s)
          << "job " << i;
    }
  }
  ASSERT_EQ(a.allocated_per_slot.size(), b.allocated_per_slot.size());
  for (std::size_t t = 0; t < a.allocated_per_slot.size(); ++t) {
    for (int r = 0; r < workload::kNumResources; ++r) {
      EXPECT_DOUBLE_EQ(a.allocated_per_slot[t][r],
                       b.allocated_per_slot[t][r])
          << "slot " << t;
    }
  }
  EXPECT_EQ(sched_a.replans(), sched_b.replans());
  EXPECT_EQ(sched_a.total_pivots(), sched_b.total_pivots());
  const auto& log_a = sched_a.replan_log();
  const auto& log_b = sched_b.replan_log();
  ASSERT_EQ(log_a.size(), log_b.size());
  for (std::size_t i = 0; i < log_a.size(); ++i) {
    EXPECT_EQ(log_a[i].slot, log_b[i].slot) << "replan " << i;
    EXPECT_EQ(log_a[i].causes, log_b[i].causes) << "replan " << i;
    EXPECT_EQ(log_a[i].planned_jobs, log_b[i].planned_jobs) << "replan " << i;
    EXPECT_EQ(log_a[i].pivots, log_b[i].pivots) << "replan " << i;
    EXPECT_EQ(log_a[i].degrade_rung, log_b[i].degrade_rung) << "replan " << i;
  }
}

// ---------------------------------------------------------------------------
// 1-cell pass-through identity

void run_one_cell_identity(bool parallel_solve) {
  const sim::SimConfig sim_config = small_cluster();
  const workload::Scenario scenario = mixed_scenario();

  core::FlowTimeScheduler bare(flowtime_config(sim_config));
  const sim::SimResult bare_result =
      sim::Simulator(sim_config).run(scenario, bare);

  cluster::FederatedConfig federated;
  federated.flowtime = flowtime_config(sim_config);
  federated.partition.cells = 1;
  federated.parallel_solve = parallel_solve;
  cluster::FederatedScheduler fed(federated);
  const sim::SimResult fed_result =
      sim::Simulator(sim_config).run(scenario, fed);

  ASSERT_TRUE(bare_result.all_completed);
  ASSERT_TRUE(fed_result.all_completed);
  ASSERT_EQ(fed.num_cells(), 1);
  expect_identical_runs(bare_result, fed_result, bare,
                        fed.cell(0).scheduler());
  EXPECT_EQ(fed.migrations(), 0);
  EXPECT_EQ(fed.overload_events(), 0);
  EXPECT_EQ(fed.quota_deferrals(), 0);
}

TEST(FederatedScheduler, OneCellMatchesPlainFlowTime) {
  run_one_cell_identity(/*parallel_solve=*/false);
}

TEST(FederatedScheduler, OneCellPooledBarrierMatchesPlainFlowTime) {
  // Same identity when the (single) cell solve runs on the SolverPool and
  // allocate() waits at the barrier before adopting — the pooled path must
  // not perturb the plan.
  run_one_cell_identity(/*parallel_solve=*/true);
}

TEST(FederatedScheduler, OneCellMatchesPlainOnFig4Workload) {
  // The paper's §VII-B.1 testbed workload (5 workflows x 18 jobs + an
  // ad-hoc stream): the 1-cell federation must reproduce the unsharded
  // schedule on it exactly.
  sim::SimConfig sim_config;
  sim_config.cluster.capacity = ResourceVec{500.0, 1024.0};
  sim_config.max_horizon_s = 24.0 * 3600.0;
  const workload::Scenario scenario = workload::make_fig4_scenario(7);

  core::FlowTimeScheduler bare(flowtime_config(sim_config));
  const sim::SimResult bare_result =
      sim::Simulator(sim_config).run(scenario, bare);

  cluster::FederatedConfig federated;
  federated.flowtime = flowtime_config(sim_config);
  federated.partition.cells = 1;
  cluster::FederatedScheduler fed(federated);
  const sim::SimResult fed_result =
      sim::Simulator(sim_config).run(scenario, fed);

  expect_identical_runs(bare_result, fed_result, bare,
                        fed.cell(0).scheduler());
}

// ---------------------------------------------------------------------------
// Multi-cell runs

TEST(FederatedScheduler, TwoCellsPartitionWorkAndComplete) {
  const sim::SimConfig sim_config = small_cluster();
  const workload::Scenario scenario = mixed_scenario();

  cluster::FederatedConfig federated;
  federated.flowtime = flowtime_config(sim_config);
  federated.partition.cells = 2;
  cluster::FederatedScheduler fed(federated);
  const sim::SimResult result = sim::Simulator(sim_config).run(scenario, fed);

  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(result.capacity_violations, 0);
  EXPECT_EQ(result.width_violations, 0);
  EXPECT_EQ(result.not_ready_allocations, 0);
  // The simultaneous arrivals spread across both cells (bin-packing by
  // projected load, not everything onto cell 0), so both cells plan work.
  EXPECT_GT(fed.cell(0).scheduler().replans(), 0);
  EXPECT_GT(fed.cell(1).scheduler().replans(), 0);
  EXPECT_EQ(fed.replans(), fed.cell(0).scheduler().replans() +
                               fed.cell(1).scheduler().replans());
}

TEST(FederatedScheduler, ParallelSolveMatchesSerialPlanForPlan) {
  // Per-cell solves read only their own cell's inputs, so running them on
  // the pool must yield the same plans as solving cells one after another.
  const sim::SimConfig sim_config = small_cluster();
  const workload::Scenario scenario = mixed_scenario();

  cluster::FederatedConfig federated;
  federated.flowtime = flowtime_config(sim_config);
  federated.partition.cells = 2;
  cluster::FederatedScheduler serial(federated);
  const sim::SimResult serial_result =
      sim::Simulator(sim_config).run(scenario, serial);

  federated.parallel_solve = true;
  federated.solver_threads = 2;
  cluster::FederatedScheduler pooled(federated);
  const sim::SimResult pooled_result =
      sim::Simulator(sim_config).run(scenario, pooled);

  ASSERT_EQ(pooled.num_cells(), serial.num_cells());
  for (int c = 0; c < serial.num_cells(); ++c) {
    expect_identical_runs(serial_result, pooled_result,
                          serial.cell(c).scheduler(),
                          pooled.cell(c).scheduler());
  }
  EXPECT_EQ(pooled.migrations(), serial.migrations());
}

// ---------------------------------------------------------------------------
// Migration

TEST(FederatedScheduler, MigrationDrainsHotspotWithoutStrandingWork) {
  // A heavy and a light workflow land on different cells; with a low
  // overload threshold the heavy cell trips the hotspot test and the
  // coordinator moves its heaviest workflow to the cooler cell. Every task
  // must still run exactly once to completion: migration re-homes the
  // remaining work (forget + forced re-admission), it never loses or
  // duplicates it.
  sim::SimConfig sim_config = small_cluster();
  sim_config.max_horizon_s = 12000.0;

  workload::Scenario scenario;
  workload::Workflow heavy = chain_workflow(0, 0.0, 600.0);
  heavy.jobs = {simple_job(30, 80.0), simple_job(20, 60.0)};
  scenario.workflows.push_back(heavy);
  workload::Workflow light = chain_workflow(1, 0.0, 3600.0);
  light.jobs = {simple_job(2, 20.0), simple_job(2, 20.0)};
  scenario.workflows.push_back(light);

  cluster::FederatedConfig federated;
  federated.flowtime = flowtime_config(sim_config);
  federated.partition.cells = 2;
  // The lexmin plan spreads heavy's 3600 core-seconds over its 600 s
  // window on a 50-core cell: peak load ~0.12. Light stays well under.
  federated.overload_threshold = 0.05;
  federated.migration_cooldown_slots = 1000;  // at most one move each
  cluster::FederatedScheduler fed(federated);
  const sim::SimResult result = sim::Simulator(sim_config).run(scenario, fed);

  EXPECT_GE(fed.migrations(), 1);
  EXPECT_GE(fed.overload_events(), 1);
  EXPECT_TRUE(result.all_completed) << "migration must not strand any task";
  EXPECT_EQ(result.capacity_violations, 0);
  for (const auto& job : result.jobs) {
    EXPECT_TRUE(job.completion_s.has_value()) << job.name;
  }
}

TEST(FederatedScheduler, MigrationPreservesRecreditedWorkUnderTaskFaults) {
  // A task fault re-credits lost work onto the workflow's remaining
  // estimate. The federated split hands each cell the simulator's
  // authoritative views, so a workflow that migrates after a fault carries
  // the re-credited remainder with it — the run still finishes every task.
  workload::ParseError error;
  const auto parsed = workload::parse_scenario(
      "cluster cores=100 mem_gb=200 slot_seconds=10\n"
      "workflow id=0 name=heavy start=0 deadline=600\n"
      "job node=0 name=crunch tasks=30 runtime=80 cores=1 mem=2\n"
      "job node=1 name=pack tasks=20 runtime=60 cores=1 mem=2\n"
      "edge 0 1\n"
      "end\n"
      "workflow id=1 name=light start=0 deadline=3600\n"
      "job node=0 name=a tasks=2 runtime=20 cores=1 mem=2\n"
      "job node=1 name=b tasks=2 runtime=20 cores=1 mem=2\n"
      "edge 0 1\n"
      "end\n"
      "fault seed=7\n"
      "fault_task workflow=0 node=0 slot=2 lose=0.5 backoff=1\n",
      &error);
  ASSERT_TRUE(parsed) << error.message;

  sim::SimConfig sim_config;
  sim_config.cluster.capacity = parsed->cluster->capacity;
  sim_config.cluster.slot_seconds = parsed->cluster->slot_seconds;
  sim_config.max_horizon_s = 12000.0;
  sim_config.fault_plan = parsed->fault_plan;

  cluster::FederatedConfig federated;
  federated.flowtime = flowtime_config(sim_config);
  federated.partition.cells = 2;
  federated.overload_threshold = 0.05;
  federated.migration_cooldown_slots = 1000;
  cluster::FederatedScheduler fed(federated);
  const sim::SimResult result =
      sim::Simulator(sim_config).run(parsed->scenario, fed);

  EXPECT_GE(result.faults.task_failures, 1);
  EXPECT_GE(fed.migrations(), 1);
  EXPECT_TRUE(result.all_completed)
      << "re-credited work must survive the migration";
  for (const auto& job : result.jobs) {
    EXPECT_TRUE(job.completion_s.has_value()) << job.name;
  }
}

// ---------------------------------------------------------------------------
// Per-tenant quotas

TEST(FederatedScheduler, TenantQuotaDefersAndReroutesOnRelease) {
  // Two same-tenant workflows arrive together under a quota that only fits
  // one: the second is deferred (owned by no cell), then re-routed once the
  // first finishes and releases its share. A third workflow of another
  // tenant is never blocked.
  sim::SimConfig sim_config = small_cluster();
  sim_config.max_horizon_s = 12000.0;

  workload::Scenario scenario;
  for (int id = 0; id < 2; ++id) {
    workload::Workflow w = chain_workflow(id, 0.0, 4000.0);
    w.tenant = 1;
    scenario.workflows.push_back(std::move(w));
  }
  workload::Workflow other = chain_workflow(2, 0.0, 4000.0);
  other.tenant = 2;
  scenario.workflows.push_back(std::move(other));

  cluster::FederatedConfig federated;
  federated.flowtime = flowtime_config(sim_config);
  federated.partition.cells = 2;
  // chain_workflow demands 10*40 + 8*30 = 640 core-seconds over a 4000 s
  // window on 100 cores: share ~0.0016. A quota of 0.002 fits one in
  // flight but not two.
  federated.tenant_quota_fraction = 0.002;
  cluster::FederatedScheduler fed(federated);
  const sim::SimResult result = sim::Simulator(sim_config).run(scenario, fed);

  EXPECT_GE(fed.quota_deferrals(), 1);
  EXPECT_TRUE(result.all_completed)
      << "deferred workflows must run once the quota frees up";
  for (const auto& job : result.jobs) {
    EXPECT_TRUE(job.completion_s.has_value()) << job.name;
  }
}

TEST(FederatedScheduler, QuotaDisabledByDefault) {
  sim::SimConfig sim_config = small_cluster();
  workload::Scenario scenario = mixed_scenario();
  for (auto& w : scenario.workflows) w.tenant = 1;

  cluster::FederatedConfig federated;
  federated.flowtime = flowtime_config(sim_config);
  federated.partition.cells = 2;
  cluster::FederatedScheduler fed(federated);
  const sim::SimResult result = sim::Simulator(sim_config).run(scenario, fed);

  EXPECT_EQ(fed.quota_deferrals(), 0);
  EXPECT_TRUE(result.all_completed);
}

// ---------------------------------------------------------------------------
// Experiment-harness wiring (the flowtime_sim --cells path)

TEST(ExperimentHarness, CellsFlagBuildsFederation) {
  sched::ExperimentConfig config;
  config.sim.cluster.capacity = ResourceVec{100.0, 200.0};
  config.sim.max_horizon_s = 6000.0;
  config.flowtime.cluster = config.sim.cluster;
  config.schedulers = {"FlowTime"};
  config.cells = 2;
  config.cell_policy = "balanced";

  const auto outcomes = sched::run_comparison(mixed_scenario(), config);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].result.all_completed);
  EXPECT_GT(outcomes[0].replans, 0);
  EXPECT_GT(outcomes[0].pivots, 0);
}

}  // namespace
}  // namespace flowtime
