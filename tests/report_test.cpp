// Tests for the CSV report helpers and a few solver edge paths that the
// main suites do not reach (iteration limits, option clamps).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "dag/generators.h"
#include "lp/simplex.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "util/strings.h"

namespace flowtime {
namespace {

using workload::ResourceVec;

workload::Scenario tiny_scenario() {
  workload::Scenario scenario;
  workload::Workflow w;
  w.id = 0;
  w.name = "w";
  w.start_s = 0.0;
  w.deadline_s = 500.0;
  w.dag = dag::make_chain(1);
  workload::JobSpec job;
  job.name = "solo";
  job.num_tasks = 4;
  job.task.runtime_s = 30.0;
  job.task.demand = ResourceVec{1.0, 2.0};
  w.jobs = {job};
  scenario.workflows.push_back(std::move(w));
  workload::AdhocJob adhoc;
  adhoc.id = 0;
  adhoc.arrival_s = 10.0;
  adhoc.spec = job;
  adhoc.spec.name = "adhoc";
  scenario.adhoc_jobs.push_back(adhoc);
  return scenario;
}

class GreedyScheduler : public sim::Scheduler {
 public:
  std::string name() const override { return "greedy"; }
  std::vector<sim::Allocation> allocate(
      const sim::ClusterState& state) override {
    std::vector<sim::Allocation> out;
    for (const sim::JobView& view : state.active) {
      if (view.ready) out.push_back(sim::Allocation{view.uid, view.width});
    }
    return out;
  }
};

sim::SimResult run_tiny() {
  sim::SimConfig config;
  config.cluster.capacity = ResourceVec{20.0, 40.0};
  sim::Simulator simulator(config);
  GreedyScheduler scheduler;
  return simulator.run(tiny_scenario(), scheduler);
}

TEST(Report, UtilizationCsvHasHeaderAndOneRowPerSlot) {
  const sim::SimResult result = run_tiny();
  const std::string csv = sim::utilization_csv(result);
  const auto lines = util::split(csv, '\n');
  // header + slots + trailing empty from final newline
  EXPECT_EQ(static_cast<int>(lines.size()),
            result.slots_simulated + 2);
  EXPECT_NE(lines[0].find("used_cpu"), std::string::npos);
  EXPECT_NE(lines[0].find("allocated_mem_gb"), std::string::npos);
  // First data row starts with slot 0 at time 0.
  EXPECT_TRUE(util::starts_with(lines[1], "0,0"));
}

TEST(Report, JobsCsvListsEveryJobWithOutcome) {
  const sim::SimResult result = run_tiny();
  const std::string csv = sim::jobs_csv(result);
  const auto lines = util::split(csv, '\n');
  EXPECT_EQ(lines.size(), 2u + result.jobs.size());
  EXPECT_NE(csv.find("deadline"), std::string::npos);
  EXPECT_NE(csv.find("adhoc"), std::string::npos);
  EXPECT_NE(csv.find("solo"), std::string::npos);
}

TEST(Report, UnfinishedJobsHaveEmptyCompletionFields) {
  sim::SimConfig config;
  config.cluster.capacity = ResourceVec{20.0, 40.0};
  config.max_horizon_s = 10.0;  // too short to finish anything
  sim::Simulator simulator(config);
  GreedyScheduler scheduler;
  const sim::SimResult result = simulator.run(tiny_scenario(), scheduler);
  const std::string csv = sim::jobs_csv(result);
  // A row ending in ",," marks a job without completion/turnaround.
  EXPECT_NE(csv.find(",,"), std::string::npos);
}

TEST(Report, WriteFileRoundTrips) {
  const std::string path = "/tmp/flowtime_report_test.csv";
  ASSERT_TRUE(sim::write_file(path, "a,b\n1,2\n"));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(Report, WriteFileFailsOnBadPath) {
  EXPECT_FALSE(sim::write_file("/nonexistent_dir_xyz/file.csv", "x"));
}

TEST(SimplexEdge, IterationLimitIsReported) {
  // A non-trivial LP with an absurdly small pivot budget.
  lp::LpProblem p;
  std::vector<lp::RowEntry> row;
  for (int j = 0; j < 20; ++j) {
    const int col = p.add_column(-1.0, 0.0, 5.0);
    row.push_back(lp::RowEntry{col, 1.0});
  }
  p.add_row(lp::RowSense::kLessEqual, 30.0, std::move(row));
  lp::SimplexOptions options;
  options.max_iterations = 2;
  lp::SimplexSolver solver(options);
  const lp::Solution s = solver.solve(p);
  EXPECT_EQ(s.status, lp::SolveStatus::kIterationLimit);
}

TEST(SimplexEdge, TinyIterationBudgetStillFindsTrivialOptimum) {
  lp::LpProblem p;
  const int x = p.add_column(1.0, 2.0, 9.0);
  p.add_row(lp::RowSense::kLessEqual, 100.0, {{x, 1.0}});
  lp::SimplexOptions options;
  options.max_iterations = 50;
  lp::SimplexSolver solver(options);
  const lp::Solution s = solver.solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_DOUBLE_EQ(s.x[0], 2.0);
}

}  // namespace
}  // namespace flowtime
