// Tests for run-history estimation and the text histogram.
#include <gtest/gtest.h>

#include "dag/generators.h"
#include "util/histogram.h"
#include "workload/history.h"

namespace flowtime::workload {
namespace {

using workload::ResourceVec;

Workflow template_instance(double runtime0, double factor0, double runtime1,
                           double factor1) {
  Workflow w;
  w.id = 0;
  w.name = "t";
  w.start_s = 0.0;
  w.deadline_s = 1000.0;
  w.dag = dag::make_chain(2);
  JobSpec a;
  a.name = "a";
  a.num_tasks = 4;
  a.task.runtime_s = runtime0;
  a.task.demand = ResourceVec{1.0, 2.0};
  a.actual_runtime_factor = factor0;
  JobSpec b = a;
  b.name = "b";
  b.task.runtime_s = runtime1;
  b.actual_runtime_factor = factor1;
  w.jobs = {a, b};
  return w;
}

TEST(RunHistory, RecordsAndCounts) {
  RunHistory history;
  EXPECT_EQ(history.runs(1, 0), 0);
  history.record(1, 0, 42.0);
  history.record(1, 0, 44.0);
  history.record(1, 1, 10.0);
  EXPECT_EQ(history.runs(1, 0), 2);
  EXPECT_EQ(history.runs(1, 1), 1);
  EXPECT_EQ(history.runs(2, 0), 0);
  EXPECT_EQ(history.observations(1, 0).size(), 2u);
  EXPECT_TRUE(history.observations(9, 9).empty());
}

TEST(RunHistory, RecordRunCapturesActuals) {
  RunHistory history;
  // Estimate 30 s, actual factor 1.2 -> observed 36 s.
  history.record_run(5, template_instance(30.0, 1.2, 40.0, 0.9));
  ASSERT_EQ(history.runs(5, 0), 1);
  EXPECT_DOUBLE_EQ(history.observations(5, 0)[0], 36.0);
  EXPECT_DOUBLE_EQ(history.observations(5, 1)[0], 36.0);
}

TEST(HistoryEstimator, ReplacesEstimatesButPreservesGroundTruth) {
  RunHistory history;
  // Three prior runs of job 0 with actuals 33, 36, 30.
  history.record(0, 0, 33.0);
  history.record(0, 0, 36.0);
  history.record(0, 0, 30.0);

  Workflow instance = template_instance(30.0, 1.2, 40.0, 1.0);
  const double truth_before =
      instance.jobs[0].task.runtime_s * instance.jobs[0].actual_runtime_factor;
  const int replaced = apply_history_estimates(history, 0, instance);
  EXPECT_EQ(replaced, 1);  // job 1 has no history
  // p90 of {30, 33, 36} by nearest rank = 36.
  EXPECT_DOUBLE_EQ(instance.jobs[0].task.runtime_s, 36.0);
  const double truth_after =
      instance.jobs[0].task.runtime_s * instance.jobs[0].actual_runtime_factor;
  EXPECT_NEAR(truth_after, truth_before, 1e-9);
  // Job 1 untouched.
  EXPECT_DOUBLE_EQ(instance.jobs[1].task.runtime_s, 40.0);
}

TEST(HistoryEstimator, MinRunsGate) {
  RunHistory history;
  history.record(0, 0, 50.0);
  Workflow instance = template_instance(30.0, 1.0, 40.0, 1.0);
  HistoryEstimatorConfig config;
  config.min_runs = 2;
  EXPECT_EQ(apply_history_estimates(history, 0, instance, config), 0);
  config.min_runs = 1;
  EXPECT_EQ(apply_history_estimates(history, 0, instance, config), 1);
}

TEST(HistoryEstimator, HighPercentileUnderestimatesLessOverRecurrences) {
  // A job whose actual runtime is noisy around 60 s: after a few runs the
  // p90 estimate should sit at (or above) most actuals, so the derived
  // actual_runtime_factor is <= ~1 for typical instances.
  RunHistory history;
  for (double actual : {55.0, 62.0, 58.0, 66.0, 60.0}) {
    history.record(0, 0, actual);
  }
  Workflow instance = template_instance(50.0, 1.2, 40.0, 1.0);  // truth 60
  apply_history_estimates(history, 0, instance);
  EXPECT_GE(instance.jobs[0].task.runtime_s, 60.0);
  EXPECT_LE(instance.jobs[0].actual_runtime_factor, 1.0 + 1e-9);
}

TEST(Histogram, RendersBucketsAndCounts) {
  const std::string rendered =
      util::render_histogram({1, 1, 2, 9, 10}, {.bins = 3});
  // 3 lines, first bucket holds {1,1,2} -> count 3.
  EXPECT_NE(rendered.find("| 3"), std::string::npos);
  EXPECT_EQ(std::count(rendered.begin(), rendered.end(), '\n'), 3);
}

TEST(Histogram, EmptyInput) {
  EXPECT_EQ(util::render_histogram({}), "(no data)\n");
}

TEST(Histogram, ConstantValuesSingleSpike) {
  const std::string rendered =
      util::render_histogram({5, 5, 5}, {.bins = 4});
  EXPECT_NE(rendered.find("| 3"), std::string::npos);
}

}  // namespace
}  // namespace flowtime::workload
