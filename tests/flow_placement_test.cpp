// Tests for the max-flow engine and the flow-based placement fast path,
// including cross-checks against the LP solver (they must agree on the
// first lexmin level).
#include <gtest/gtest.h>

#include <cmath>

#include "core/flow_placement.h"
#include "core/lp_formulation.h"
#include "lp/maxflow.h"
#include "util/rng.h"

namespace flowtime {
namespace {

using core::LpJob;
using workload::kCpu;
using workload::ResourceVec;

TEST(MaxFlow, ClassicSmallNetwork) {
  // CLRS-style example: max flow 23.
  lp::FlowNetwork net(6);
  net.add_edge(0, 1, 16);
  net.add_edge(0, 2, 13);
  net.add_edge(1, 2, 10);
  net.add_edge(2, 1, 4);
  net.add_edge(1, 3, 12);
  net.add_edge(3, 2, 9);
  net.add_edge(2, 4, 14);
  net.add_edge(4, 3, 7);
  net.add_edge(3, 5, 20);
  net.add_edge(4, 5, 4);
  EXPECT_NEAR(net.max_flow(0, 5), 23.0, 1e-9);
}

TEST(MaxFlow, DisconnectedSinkGivesZero) {
  lp::FlowNetwork net(3);
  net.add_edge(0, 1, 5);
  EXPECT_DOUBLE_EQ(net.max_flow(0, 2), 0.0);
}

TEST(MaxFlow, FlowConservationAndEdgeQueries) {
  lp::FlowNetwork net(4);
  const int a = net.add_edge(0, 1, 3);
  const int b = net.add_edge(0, 2, 2);
  const int c = net.add_edge(1, 3, 2);
  const int d = net.add_edge(2, 3, 4);
  const double total = net.max_flow(0, 3);
  EXPECT_NEAR(total, 4.0, 1e-9);
  EXPECT_NEAR(net.flow(a) + net.flow(b), total, 1e-9);
  EXPECT_NEAR(net.flow(c) + net.flow(d), total, 1e-9);
  EXPECT_LE(net.flow(a), 3.0 + 1e-9);
  EXPECT_LE(net.flow(c), 2.0 + 1e-9);
}

TEST(MaxFlow, SetCapacityReparameterizes) {
  lp::FlowNetwork net(3);
  const int edge = net.add_edge(0, 1, 1);
  net.add_edge(1, 2, 10);
  EXPECT_NEAR(net.max_flow(0, 2), 1.0, 1e-9);
  net.set_capacity(edge, 7);
  EXPECT_NEAR(net.max_flow(0, 2), 7.0, 1e-9);
}

std::vector<ResourceVec> uniform_caps(int slots, double cpu, double mem) {
  return std::vector<ResourceVec>(static_cast<std::size_t>(slots),
                                  ResourceVec{cpu, mem});
}

LpJob make_job(int uid, int release, int deadline, double cpu_demand,
               double mem_demand, double cpu_width, double mem_width) {
  LpJob job;
  job.uid = uid;
  job.release_slot = release;
  job.deadline_slot = deadline;
  job.demand = ResourceVec{cpu_demand, mem_demand};
  job.width = ResourceVec{cpu_width, mem_width};
  return job;
}

TEST(FlowPlacement, SingleJobLevelMatchesArithmetic) {
  const std::vector<LpJob> jobs = {make_job(0, 0, 4, 50.0, 0.0, 20.0, 0.0)};
  const auto result =
      core::solve_flow_placement(jobs, uniform_caps(5, 100.0, 100.0), 0);
  EXPECT_TRUE(result.feasible);
  EXPECT_NEAR(result.min_max_level, 0.1, 1e-5);  // 50 / (5 x 100)
  ResourceVec placed{};
  for (int t = 0; t < 5; ++t) {
    placed = workload::add(placed, result.allocation[0][static_cast<std::size_t>(t)]);
  }
  EXPECT_NEAR(placed[kCpu], 50.0, 1e-6);
}

TEST(FlowPlacement, DetectsWindowInfeasibility) {
  // Demand 100, width 10, window 5 slots: impossible.
  const std::vector<LpJob> jobs = {make_job(0, 0, 4, 100.0, 0.0, 10.0, 0.0)};
  const auto result =
      core::solve_flow_placement(jobs, uniform_caps(5, 1000.0, 1000.0), 0);
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(std::isinf(result.min_max_level));
}

TEST(FlowPlacement, OverCapacityReportsLevelAboveOne) {
  const std::vector<LpJob> jobs = {
      make_job(0, 0, 0, 100.0, 0.0, 100.0, 0.0),
      make_job(1, 0, 0, 100.0, 0.0, 100.0, 0.0)};
  const auto result =
      core::solve_flow_placement(jobs, uniform_caps(1, 100.0, 100.0), 0);
  EXPECT_FALSE(result.feasible);
  EXPECT_NEAR(result.min_max_level, 2.0, 1e-4);
}

TEST(FlowPlacement, EmptyWindowAfterClippingIsInfeasible) {
  const std::vector<LpJob> jobs = {make_job(0, 0, 2, 10.0, 0.0, 10.0, 0.0)};
  const auto result = core::solve_flow_placement(
      jobs, uniform_caps(5, 100.0, 100.0), /*first_slot=*/3);
  EXPECT_FALSE(result.feasible);
}

class FlowVsLpProperty : public ::testing::TestWithParam<int> {};

TEST_P(FlowVsLpProperty, FirstLevelAgreesWithTheLpSolver) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int slots = static_cast<int>(rng.uniform_int(4, 16));
  const int n = static_cast<int>(rng.uniform_int(2, 12));
  std::vector<LpJob> jobs;
  for (int i = 0; i < n; ++i) {
    const int release = static_cast<int>(rng.uniform_int(0, slots - 1));
    const int deadline =
        static_cast<int>(rng.uniform_int(release, slots - 1));
    const int window = deadline - release + 1;
    const double cpu_width = rng.uniform_real(5.0, 30.0);
    const double mem_width = rng.uniform_real(5.0, 60.0);
    jobs.push_back(make_job(i, release, deadline,
                            rng.uniform_real(0.0, cpu_width * window),
                            rng.uniform_real(0.0, mem_width * window),
                            cpu_width, mem_width));
  }
  const auto caps = uniform_caps(slots, 200.0, 400.0);
  const auto flow = core::solve_flow_placement(jobs, caps, 0);
  const auto lp = core::solve_placement(jobs, caps, 0);
  ASSERT_TRUE(lp.ok());
  ASSERT_TRUE(flow.feasible || flow.min_max_level > 1.0);
  EXPECT_NEAR(flow.min_max_level, lp.max_normalized_load, 1e-3)
      << "flow and LP disagree on the first lexmin level";

  // The flow allocation must satisfy all the same invariants.
  for (int j = 0; j < n; ++j) {
    ResourceVec placed{};
    for (int t = 0; t < slots; ++t) {
      const ResourceVec& a =
          flow.allocation[static_cast<std::size_t>(j)][static_cast<std::size_t>(t)];
      EXPECT_TRUE(workload::fits_within(
          a, jobs[static_cast<std::size_t>(j)].width, 1e-5));
      placed = workload::add(placed, a);
    }
    EXPECT_NEAR(placed[kCpu], jobs[static_cast<std::size_t>(j)].demand[kCpu],
                1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowVsLpProperty, ::testing::Range(1, 13));

}  // namespace
}  // namespace flowtime
