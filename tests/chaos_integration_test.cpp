// Chaos integration: faults injected into full simulations and the
// scheduler's recovery behavior — capacity-change re-plans, task retries,
// deadline renegotiation, breach reporting, and run determinism.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "core/flowtime_scheduler.h"
#include "obs/testing.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "workload/scenario_io.h"

namespace flowtime {
namespace {

using workload::kCpu;
using workload::ResourceVec;

// One 40-task deadline job plus an ad-hoc probe on a 100-core cluster.
// Deadline 600 s against a 100 s minimum runtime: enough slack that
// FlowTime defers work, keeping the job alive when mid-run faults land.
constexpr const char* kBaseScenario = R"(
cluster cores=100 mem_gb=256 slot_seconds=10

workflow id=0 name=wf start=0 deadline=600
job node=0 name=crunch tasks=40 runtime=100 cores=1 mem=2
end

adhoc id=0 arrival=30 tasks=4 runtime=30 cores=1 mem=1
)";

workload::ParsedScenario parse(const std::string& text) {
  workload::ParseError error;
  const auto parsed = workload::parse_scenario(text, &error);
  EXPECT_TRUE(parsed.has_value())
      << "line " << error.line << ": " << error.message;
  return *parsed;
}

sim::SimConfig sim_config(const workload::ParsedScenario& parsed) {
  sim::SimConfig config;
  if (parsed.cluster) config.cluster = *parsed.cluster;
  config.fault_plan = parsed.fault_plan;
  return config;
}

core::FlowTimeConfig flowtime_config(const sim::SimConfig& sim) {
  core::FlowTimeConfig config;
  config.cluster = sim.cluster;
  return config;
}

bool any_replan_with(const core::FlowTimeScheduler& scheduler,
                     core::ReplanCause cause) {
  for (const core::ReplanRecord& record : scheduler.replan_log()) {
    if (core::has_cause(record.causes, cause)) return true;
  }
  return false;
}

TEST(ChaosIntegration, CapacityDropTriggersReplanAndRunStaysClean) {
  auto parsed = parse(std::string(kBaseScenario) +
                      "fault seed=1\n"
                      "fault_machine down=20 up=40 cores=50 mem_gb=128\n");
  const sim::SimConfig config = sim_config(parsed);
  core::FlowTimeScheduler scheduler(flowtime_config(config));
  sim::Simulator simulator(config);
  const sim::SimResult result = simulator.run(parsed.scenario, scheduler);

  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(result.capacity_violations, 0);
  EXPECT_EQ(result.width_violations, 0);
  EXPECT_EQ(result.not_ready_allocations, 0);
  EXPECT_EQ(result.faults.machine_downs, 1);
  EXPECT_EQ(result.faults.machine_ups, 1);
  EXPECT_EQ(result.faults.capacity_changes, 2);
  EXPECT_TRUE(any_replan_with(scheduler, core::ReplanCause::kCapacityChange))
      << "the capacity drop must trigger a tagged re-plan";
}

TEST(ChaosIntegration, TaskFailureRetriesAndReplans) {
  auto parsed = parse(std::string(kBaseScenario) +
                      "fault seed=1\n"
                      "fault_task workflow=0 node=0 slot=15 lose=1 "
                      "backoff=2\n");
  const sim::SimConfig config = sim_config(parsed);
  core::FlowTimeScheduler scheduler(flowtime_config(config));
  sim::Simulator simulator(config);
  const sim::SimResult result = simulator.run(parsed.scenario, scheduler);

  EXPECT_TRUE(result.all_completed) << "the retry must eventually finish";
  EXPECT_EQ(result.faults.task_failures, 1);
  EXPECT_EQ(result.faults.task_retries, 1);
  EXPECT_EQ(result.not_ready_allocations, 0)
      << "FlowTime must withhold allocations during the backoff";
  EXPECT_TRUE(any_replan_with(scheduler, core::ReplanCause::kTaskFailure));
}

TEST(ChaosIntegration, StragglerSurfacesAsOverrun) {
  auto parsed = parse(std::string(kBaseScenario) +
                      "fault seed=1\n"
                      "fault_straggler workflow=0 node=0 slot=15 "
                      "factor=3\n");
  const sim::SimConfig config = sim_config(parsed);
  core::FlowTimeScheduler scheduler(flowtime_config(config));
  sim::Simulator simulator(config);
  const sim::SimResult result = simulator.run(parsed.scenario, scheduler);

  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(result.faults.stragglers, 1);
  // 3x the remaining ground truth exhausts the estimate before the job
  // finishes, which FlowTime notices as an overrun re-plan.
  EXPECT_TRUE(any_replan_with(scheduler, core::ReplanCause::kOverrun));
}

TEST(ChaosIntegration, OutOfHorizonPlanMatchesEmptyPlanExactly) {
  auto baseline = parse(kBaseScenario);
  ASSERT_TRUE(baseline.fault_plan.empty());
  // Active plan whose only fault sits far past the run's end: the fault
  // path executes every slot but perturbs nothing.
  auto inert = parse(std::string(kBaseScenario) +
                     "fault seed=9\n"
                     "fault_machine down=100000 cores=10 mem_gb=16\n");

  const sim::SimConfig base_config = sim_config(baseline);
  core::FlowTimeScheduler base_sched(flowtime_config(base_config));
  const sim::SimResult base =
      sim::Simulator(base_config).run(baseline.scenario, base_sched);

  const sim::SimConfig inert_config = sim_config(inert);
  core::FlowTimeScheduler inert_sched(flowtime_config(inert_config));
  const sim::SimResult chaos =
      sim::Simulator(inert_config).run(inert.scenario, inert_sched);

  ASSERT_EQ(base.jobs.size(), chaos.jobs.size());
  for (std::size_t i = 0; i < base.jobs.size(); ++i) {
    EXPECT_EQ(base.jobs[i].completion_s, chaos.jobs[i].completion_s);
  }
  ASSERT_EQ(base.used_per_slot.size(), chaos.used_per_slot.size());
  for (std::size_t t = 0; t < base.used_per_slot.size(); ++t) {
    EXPECT_EQ(base.used_per_slot[t], chaos.used_per_slot[t])
        << "slot " << t;
  }
  EXPECT_EQ(chaos.faults.machine_downs, 0);
  EXPECT_EQ(chaos.faults.capacity_changes, 0);
}

TEST(ChaosIntegration, FixedSeedRunsAreBitIdentical) {
  const std::string text = std::string(kBaseScenario) +
                           "fault seed=42\n"
                           "fault_hazard prob=0.01 lose=0.5 backoff=2 "
                           "retries=3\n"
                           "fault_noise model=lognormal sigma=0.2 bias=1\n";
  auto run_once = [&]() {
    auto parsed = parse(text);
    const sim::SimConfig config = sim_config(parsed);
    core::FlowTimeScheduler scheduler(flowtime_config(config));
    return sim::Simulator(config).run(parsed.scenario, scheduler);
  };
  const sim::SimResult a = run_once();
  const sim::SimResult b = run_once();

  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].completion_s, b.jobs[i].completion_s);
    EXPECT_EQ(a.jobs[i].actual_demand, b.jobs[i].actual_demand);
  }
  ASSERT_EQ(a.used_per_slot.size(), b.used_per_slot.size());
  for (std::size_t t = 0; t < a.used_per_slot.size(); ++t) {
    EXPECT_EQ(a.used_per_slot[t], b.used_per_slot[t]);
  }
  EXPECT_EQ(a.faults.task_failures, b.faults.task_failures);
  EXPECT_EQ(a.faults.task_retries, b.faults.task_retries);
  EXPECT_EQ(a.faults.noised_jobs, b.faults.noised_jobs);

  // A different seed must change the noise draws (and almost surely the
  // hazard pattern) — the seed is not decorative.
  auto other = parse(text);
  other.fault_plan.seed = 43;
  sim::SimConfig other_config = sim_config(other);
  core::FlowTimeScheduler other_sched(flowtime_config(other_config));
  const sim::SimResult c =
      sim::Simulator(other_config).run(other.scenario, other_sched);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    if (a.jobs[i].actual_demand != c.jobs[i].actual_demand) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(ChaosIntegration, CripplingFaultBreachesExactlyOnceAndRenegotiates) {
  obs::testing::ScopedRegistryReset reset;
  auto* sink = new obs::MemorySink();
  obs::set_trace_sink(std::unique_ptr<obs::TraceSink>(sink));

  // Deadline 300 s on a 100 s-minimum job; losing everything at slot 5
  // with a 40-slot backoff makes the deadline unmeetable (retry at ~450 s).
  auto parsed = parse(
      "cluster cores=100 mem_gb=256 slot_seconds=10\n"
      "workflow id=0 name=wf start=0 deadline=300\n"
      "job node=0 name=crunch tasks=20 runtime=100 cores=1 mem=2\n"
      "end\n"
      "fault seed=1\n"
      "fault_task workflow=0 node=0 slot=5 lose=1 backoff=40\n");
  const sim::SimConfig config = sim_config(parsed);
  core::FlowTimeScheduler scheduler(flowtime_config(config));
  sim::Simulator simulator(config);
  const sim::SimResult result = simulator.run(parsed.scenario, scheduler);

  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(result.faults.task_failures, 1);
  EXPECT_EQ(result.faults.task_retries, 1);
  // The fault killed the decomposed window: the scheduler renegotiated via
  // the critical-path fallback instead of going infeasible.
  EXPECT_GE(scheduler.fault_redecompositions(), 1);

  int workflow_breaches = 0;
  int job_breaches = 0;
  std::map<std::string, int> fault_span_begins;
  std::map<std::string, int> span_ends;
  for (const std::string& line : sink->lines()) {
    std::map<std::string, std::string> record;
    ASSERT_TRUE(obs::parse_flat_json(line, &record)) << line;
    const std::string type = record["type"];
    if (type == "deadline_risk" && record["level"] == "breach") {
      if (record["entity"] == "workflow") ++workflow_breaches;
      if (record["entity"] == "job") ++job_breaches;
    } else if (type == "span_begin" && record["kind"] == "fault") {
      ++fault_span_begins[record["span"]];
    } else if (type == "span_end") {
      ++span_ends[record["span"]];
    }
  }
  EXPECT_EQ(workflow_breaches, 1)
      << "the monitor reports a breach on the transition, exactly once";
  EXPECT_EQ(job_breaches, 1);
  EXPECT_FALSE(fault_span_begins.empty());
  for (const auto& [span, begins] : fault_span_begins) {
    EXPECT_EQ(begins, 1);
    EXPECT_EQ(span_ends[span], 1)
        << "fault span " << span << " must pair injection with recovery";
  }
}

}  // namespace
}  // namespace flowtime
