// Deeper property tests for the LP stack: strong duality and complementary
// slackness on random LPs, branch-and-bound versus exhaustive enumeration
// on random boxed ILPs, and lexmin invariants under permutation.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "lp/branch_and_bound.h"
#include "lp/lexmin.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace flowtime::lp {
namespace {

// Random LP with nonnegative bounded variables and <= rows; always feasible
// (x = 0 is a point) and always bounded (box constraints).
LpProblem random_boxed_lp(util::Rng& rng, int columns, int rows) {
  LpProblem p;
  for (int j = 0; j < columns; ++j) {
    p.add_column(rng.uniform_real(-5.0, 5.0), 0.0,
                 rng.uniform_real(1.0, 10.0));
  }
  for (int i = 0; i < rows; ++i) {
    std::vector<RowEntry> entries;
    for (int j = 0; j < columns; ++j) {
      if (rng.bernoulli(0.6)) {
        entries.push_back(RowEntry{j, rng.uniform_real(-2.0, 4.0)});
      }
    }
    p.add_row(RowSense::kLessEqual, rng.uniform_real(1.0, 20.0),
              std::move(entries));
  }
  return p;
}

class RandomLpProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpProperty, SolutionIsFeasibleAndObjectiveConsistent) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const LpProblem p = random_boxed_lp(rng, 12, 8);
  SimplexSolver solver;
  const Solution s = solver.solve(p);
  ASSERT_TRUE(s.optimal()) << to_string(s.status);
  EXPECT_TRUE(p.is_feasible(s.x, 1e-5));
  EXPECT_NEAR(s.objective, p.objective_value(s.x), 1e-6);
}

TEST_P(RandomLpProperty, NoFeasiblePointBeatsTheReportedOptimum) {
  // Sample feasible points: the optimum must weakly dominate all of them.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const LpProblem p = random_boxed_lp(rng, 10, 6);
  SimplexSolver solver;
  const Solution s = solver.solve(p);
  ASSERT_TRUE(s.optimal());
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> x(static_cast<std::size_t>(p.num_columns()));
    for (int j = 0; j < p.num_columns(); ++j) {
      x[static_cast<std::size_t>(j)] =
          rng.uniform_real(0.0, p.upper_bound(j));
    }
    if (!p.is_feasible(x, 1e-9)) continue;
    EXPECT_GE(p.objective_value(x), s.objective - 1e-6);
  }
}

TEST_P(RandomLpProperty, ComplementarySlacknessHolds) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  const LpProblem p = random_boxed_lp(rng, 9, 5);
  SimplexSolver solver;
  const Solution s = solver.solve(p);
  ASSERT_TRUE(s.optimal());
  ASSERT_EQ(s.duals.size(), static_cast<std::size_t>(p.num_rows()));
  for (int i = 0; i < p.num_rows(); ++i) {
    const double slack = p.row_rhs(i) - s.row_activity[static_cast<std::size_t>(i)];
    const double dual = s.duals[static_cast<std::size_t>(i)];
    // A <= row with positive slack must carry a zero dual.
    if (slack > 1e-5) {
      EXPECT_NEAR(dual, 0.0, 1e-5)
          << "row " << i << " slack " << slack << " dual " << dual;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpProperty, ::testing::Range(1, 13));

// ---------------------------------------------------------------------------
// Branch and bound vs exhaustive enumeration over small integer boxes.
// ---------------------------------------------------------------------------

class RandomIlpProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomIlpProperty, MatchesExhaustiveEnumeration) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  const int columns = 5;
  LpProblem p;
  std::vector<int> upper(columns);
  for (int j = 0; j < columns; ++j) {
    upper[static_cast<std::size_t>(j)] = static_cast<int>(rng.uniform_int(1, 3));
    p.add_column(rng.uniform_real(-4.0, 4.0), 0.0,
                 upper[static_cast<std::size_t>(j)]);
  }
  for (int i = 0; i < 3; ++i) {
    std::vector<RowEntry> entries;
    for (int j = 0; j < columns; ++j) {
      entries.push_back(RowEntry{j, rng.uniform_real(-1.0, 3.0)});
    }
    p.add_row(RowSense::kLessEqual, rng.uniform_real(2.0, 10.0),
              std::move(entries));
  }

  std::vector<int> ints(columns);
  std::iota(ints.begin(), ints.end(), 0);
  BranchAndBound bnb;
  const Solution s = bnb.solve(p, ints);

  // Exhaustive search over the integer box.
  double best = kInfinity;
  std::vector<double> x(static_cast<std::size_t>(columns), 0.0);
  std::function<void(int)> enumerate = [&](int j) {
    if (j == columns) {
      if (p.is_feasible(x, 1e-9)) {
        best = std::min(best, p.objective_value(x));
      }
      return;
    }
    for (int v = 0; v <= upper[static_cast<std::size_t>(j)]; ++v) {
      x[static_cast<std::size_t>(j)] = v;
      enumerate(j + 1);
    }
  };
  enumerate(0);

  if (std::isinf(best)) {
    EXPECT_EQ(s.status, SolveStatus::kInfeasible);
  } else {
    ASSERT_TRUE(s.optimal());
    EXPECT_NEAR(s.objective, best, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomIlpProperty, ::testing::Range(1, 11));

// ---------------------------------------------------------------------------
// Lexmin invariants.
// ---------------------------------------------------------------------------

TEST(LexMinMaxInvariance, LoadOrderPermutationDoesNotChangeTheProfile) {
  // Same balancing problem, load rows listed in two different orders: the
  // multiset of final loads must match.
  auto build = [](bool reversed) {
    LpProblem base;
    std::vector<int> cols;
    std::vector<RowEntry> demand;
    for (int t = 0; t < 5; ++t) {
      cols.push_back(base.add_column(0.0, 0.0, 8.0));
      demand.push_back(RowEntry{cols.back(), 1.0});
    }
    base.add_row(RowSense::kEqual, 18.0, std::move(demand));
    std::vector<LoadRow> loads;
    for (int t = 0; t < 5; ++t) {
      const int index = reversed ? 4 - t : t;
      loads.push_back(LoadRow{
          {{cols[static_cast<std::size_t>(index)], 1.0}}, 10.0, ""});
    }
    LexMinMaxSolver solver;
    auto result = solver.solve(base, loads);
    std::sort(result.load.begin(), result.load.end());
    return result;
  };
  const auto forward = build(false);
  const auto backward = build(true);
  ASSERT_TRUE(forward.optimal());
  ASSERT_TRUE(backward.optimal());
  ASSERT_EQ(forward.load.size(), backward.load.size());
  for (std::size_t i = 0; i < forward.load.size(); ++i) {
    EXPECT_NEAR(forward.load[i], backward.load[i], 1e-6);
  }
}

TEST(LexMinMaxInvariance, ScalingNormalizersScalesLevels) {
  LpProblem base;
  const int x = base.add_column(0.0, 0.0, kInfinity);
  base.add_row(RowSense::kEqual, 12.0, {{x, 1.0}});
  LexMinMaxSolver solver;
  const auto small = solver.solve(base, {LoadRow{{{x, 1.0}}, 10.0, ""}});
  const auto large = solver.solve(base, {LoadRow{{{x, 1.0}}, 100.0, ""}});
  ASSERT_TRUE(small.optimal());
  ASSERT_TRUE(large.optimal());
  EXPECT_NEAR(small.max_level(), 10.0 * large.max_level(), 1e-6);
}

}  // namespace
}  // namespace flowtime::lp
