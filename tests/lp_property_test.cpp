// Deeper property tests for the LP stack: strong duality and complementary
// slackness on random LPs, branch-and-bound versus exhaustive enumeration
// on random boxed ILPs, and lexmin invariants under permutation.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "lp/branch_and_bound.h"
#include "lp/lexmin.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace flowtime::lp {
namespace {

// Random LP with nonnegative bounded variables and <= rows; always feasible
// (x = 0 is a point) and always bounded (box constraints).
LpProblem random_boxed_lp(util::Rng& rng, int columns, int rows) {
  LpProblem p;
  for (int j = 0; j < columns; ++j) {
    p.add_column(rng.uniform_real(-5.0, 5.0), 0.0,
                 rng.uniform_real(1.0, 10.0));
  }
  for (int i = 0; i < rows; ++i) {
    std::vector<RowEntry> entries;
    for (int j = 0; j < columns; ++j) {
      if (rng.bernoulli(0.6)) {
        entries.push_back(RowEntry{j, rng.uniform_real(-2.0, 4.0)});
      }
    }
    p.add_row(RowSense::kLessEqual, rng.uniform_real(1.0, 20.0),
              std::move(entries));
  }
  return p;
}

class RandomLpProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpProperty, SolutionIsFeasibleAndObjectiveConsistent) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const LpProblem p = random_boxed_lp(rng, 12, 8);
  SimplexSolver solver;
  const Solution s = solver.solve(p);
  ASSERT_TRUE(s.optimal()) << to_string(s.status);
  EXPECT_TRUE(p.is_feasible(s.x, 1e-5));
  EXPECT_NEAR(s.objective, p.objective_value(s.x), 1e-6);
}

TEST_P(RandomLpProperty, NoFeasiblePointBeatsTheReportedOptimum) {
  // Sample feasible points: the optimum must weakly dominate all of them.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const LpProblem p = random_boxed_lp(rng, 10, 6);
  SimplexSolver solver;
  const Solution s = solver.solve(p);
  ASSERT_TRUE(s.optimal());
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> x(static_cast<std::size_t>(p.num_columns()));
    for (int j = 0; j < p.num_columns(); ++j) {
      x[static_cast<std::size_t>(j)] =
          rng.uniform_real(0.0, p.upper_bound(j));
    }
    if (!p.is_feasible(x, 1e-9)) continue;
    EXPECT_GE(p.objective_value(x), s.objective - 1e-6);
  }
}

TEST_P(RandomLpProperty, ComplementarySlacknessHolds) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  const LpProblem p = random_boxed_lp(rng, 9, 5);
  SimplexSolver solver;
  const Solution s = solver.solve(p);
  ASSERT_TRUE(s.optimal());
  ASSERT_EQ(s.duals.size(), static_cast<std::size_t>(p.num_rows()));
  for (int i = 0; i < p.num_rows(); ++i) {
    const double slack = p.row_rhs(i) - s.row_activity[static_cast<std::size_t>(i)];
    const double dual = s.duals[static_cast<std::size_t>(i)];
    // A <= row with positive slack must carry a zero dual.
    if (slack > 1e-5) {
      EXPECT_NEAR(dual, 0.0, 1e-5)
          << "row " << i << " slack " << slack << " dual " << dual;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpProperty, ::testing::Range(1, 13));

// ---------------------------------------------------------------------------
// Branch and bound vs exhaustive enumeration over small integer boxes.
// ---------------------------------------------------------------------------

class RandomIlpProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomIlpProperty, MatchesExhaustiveEnumeration) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  const int columns = 5;
  LpProblem p;
  std::vector<int> upper(columns);
  for (int j = 0; j < columns; ++j) {
    upper[static_cast<std::size_t>(j)] = static_cast<int>(rng.uniform_int(1, 3));
    p.add_column(rng.uniform_real(-4.0, 4.0), 0.0,
                 upper[static_cast<std::size_t>(j)]);
  }
  for (int i = 0; i < 3; ++i) {
    std::vector<RowEntry> entries;
    for (int j = 0; j < columns; ++j) {
      entries.push_back(RowEntry{j, rng.uniform_real(-1.0, 3.0)});
    }
    p.add_row(RowSense::kLessEqual, rng.uniform_real(2.0, 10.0),
              std::move(entries));
  }

  std::vector<int> ints(columns);
  std::iota(ints.begin(), ints.end(), 0);
  BranchAndBound bnb;
  const Solution s = bnb.solve(p, ints);

  // Exhaustive search over the integer box.
  double best = kInfinity;
  std::vector<double> x(static_cast<std::size_t>(columns), 0.0);
  std::function<void(int)> enumerate = [&](int j) {
    if (j == columns) {
      if (p.is_feasible(x, 1e-9)) {
        best = std::min(best, p.objective_value(x));
      }
      return;
    }
    for (int v = 0; v <= upper[static_cast<std::size_t>(j)]; ++v) {
      x[static_cast<std::size_t>(j)] = v;
      enumerate(j + 1);
    }
  };
  enumerate(0);

  if (std::isinf(best)) {
    EXPECT_EQ(s.status, SolveStatus::kInfeasible);
  } else {
    ASSERT_TRUE(s.optimal());
    EXPECT_NEAR(s.objective, best, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomIlpProperty, ::testing::Range(1, 11));

// ---------------------------------------------------------------------------
// Lexmin invariants.
// ---------------------------------------------------------------------------

TEST(LexMinMaxInvariance, LoadOrderPermutationDoesNotChangeTheProfile) {
  // Same balancing problem, load rows listed in two different orders: the
  // multiset of final loads must match.
  auto build = [](bool reversed) {
    LpProblem base;
    std::vector<int> cols;
    std::vector<RowEntry> demand;
    for (int t = 0; t < 5; ++t) {
      cols.push_back(base.add_column(0.0, 0.0, 8.0));
      demand.push_back(RowEntry{cols.back(), 1.0});
    }
    base.add_row(RowSense::kEqual, 18.0, std::move(demand));
    std::vector<LoadRow> loads;
    for (int t = 0; t < 5; ++t) {
      const int index = reversed ? 4 - t : t;
      loads.push_back(LoadRow{
          {{cols[static_cast<std::size_t>(index)], 1.0}}, 10.0, ""});
    }
    LexMinMaxSolver solver;
    auto result = solver.solve(base, loads);
    std::sort(result.load.begin(), result.load.end());
    return result;
  };
  const auto forward = build(false);
  const auto backward = build(true);
  ASSERT_TRUE(forward.optimal());
  ASSERT_TRUE(backward.optimal());
  ASSERT_EQ(forward.load.size(), backward.load.size());
  for (std::size_t i = 0; i < forward.load.size(); ++i) {
    EXPECT_NEAR(forward.load[i], backward.load[i], 1e-6);
  }
}

TEST(LexMinMaxInvariance, ScalingNormalizersScalesLevels) {
  LpProblem base;
  const int x = base.add_column(0.0, 0.0, kInfinity);
  base.add_row(RowSense::kEqual, 12.0, {{x, 1.0}});
  LexMinMaxSolver solver;
  const auto small = solver.solve(base, {LoadRow{{{x, 1.0}}, 10.0, ""}});
  const auto large = solver.solve(base, {LoadRow{{{x, 1.0}}, 100.0, ""}});
  ASSERT_TRUE(small.optimal());
  ASSERT_TRUE(large.optimal());
  EXPECT_NEAR(small.max_level(), 10.0 * large.max_level(), 1e-6);
}

TEST(LexMinMaxInvariance, RoundBudgetExhaustionIsReportedAsTruncated) {
  // Two slots forced to distinct levels need two rounds; with max_rounds = 1
  // the solve must still return a feasible optimum for the first level but
  // flag that the tail was never refined.
  LpProblem base;
  const int a = base.add_column(0.0, 0.0, kInfinity);
  const int b = base.add_column(0.0, 0.0, kInfinity);
  base.add_row(RowSense::kEqual, 8.0, {{a, 1.0}});
  base.add_row(RowSense::kEqual, 2.0, {{b, 1.0}});
  const std::vector<LoadRow> loads = {LoadRow{{{a, 1.0}}, 10.0, ""},
                                      LoadRow{{{b, 1.0}}, 10.0, ""}};

  LexMinMaxOptions full;
  const auto exact = LexMinMaxSolver(full).solve(base, loads);
  ASSERT_TRUE(exact.optimal());
  EXPECT_FALSE(exact.truncated);

  LexMinMaxOptions capped;
  capped.max_rounds = 1;
  const auto truncated = LexMinMaxSolver(capped).solve(base, loads);
  ASSERT_TRUE(truncated.optimal());
  EXPECT_TRUE(truncated.truncated);
  EXPECT_EQ(truncated.rounds, 1);
  EXPECT_NEAR(truncated.max_level(), exact.max_level(), 1e-6);
}

// ---------------------------------------------------------------------------
// Warm-start properties: a warm solve must reach the same optimum as a cold
// one — the hint only changes the pivot count — and a stale or mismatched
// hint must fall back cleanly instead of corrupting the result.
// ---------------------------------------------------------------------------

class WarmStartProperty : public ::testing::TestWithParam<int> {};

TEST_P(WarmStartProperty, ResolveWithOwnBasisMatchesColdOptimum) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  const LpProblem p = random_boxed_lp(rng, 14, 9);
  SimplexSolver solver;
  const Solution cold = solver.solve(p);
  ASSERT_TRUE(cold.optimal());
  ASSERT_FALSE(cold.basis.empty());

  const Solution warm = solver.solve(p, &cold.basis);
  ASSERT_TRUE(warm.optimal());
  EXPECT_TRUE(warm.warm_start_used);
  EXPECT_FALSE(warm.warm_start_fallback);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-6);
  EXPECT_TRUE(p.is_feasible(warm.x, 1e-5));
  // Re-solving from the optimal basis must not cost more than from scratch.
  EXPECT_LE(warm.iterations, cold.iterations);
}

TEST_P(WarmStartProperty, PerturbedRhsWarmSolveMatchesColdSolve) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  const LpProblem p = random_boxed_lp(rng, 12, 8);
  SimplexSolver solver;
  const Solution original = solver.solve(p);
  ASSERT_TRUE(original.optimal());

  // Same shape, shifted rhs: exactly the replan pattern warm starts absorb.
  LpProblem shifted = p;
  for (int i = 0; i < shifted.num_rows(); ++i) {
    shifted.set_row(i, shifted.row_sense(i),
                    shifted.row_rhs(i) + rng.uniform_real(-0.5, 0.5));
  }
  const Solution cold = solver.solve(shifted);
  const Solution warm = solver.solve(shifted, &original.basis);
  ASSERT_TRUE(cold.optimal());
  ASSERT_TRUE(warm.optimal());
  EXPECT_NEAR(warm.objective, cold.objective, 1e-6);
  EXPECT_TRUE(shifted.is_feasible(warm.x, 1e-5));
}

TEST_P(WarmStartProperty, MismatchedBasisFallsBackToColdSolve) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 5000);
  const LpProblem small = random_boxed_lp(rng, 6, 4);
  const LpProblem big = random_boxed_lp(rng, 13, 9);
  SimplexSolver solver;
  const Solution donor = solver.solve(small);
  ASSERT_TRUE(donor.optimal());

  const Solution cold = solver.solve(big);
  const Solution warm = solver.solve(big, &donor.basis);
  ASSERT_TRUE(cold.optimal());
  ASSERT_TRUE(warm.optimal());
  EXPECT_FALSE(warm.warm_start_used);
  EXPECT_TRUE(warm.warm_start_fallback);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmStartProperty, ::testing::Range(1, 13));

// A random placement-shaped lexmin instance: jobs spread demand over slot
// windows, one load row per slot.
struct LexMinInstance {
  LpProblem base;
  std::vector<LoadRow> loads;
};

LexMinInstance random_lexmin_instance(util::Rng& rng, int jobs, int slots) {
  LexMinInstance inst;
  std::vector<std::vector<RowEntry>> slot_entries(
      static_cast<std::size_t>(slots));
  for (int j = 0; j < jobs; ++j) {
    const int release = static_cast<int>(rng.uniform_int(0, slots - 1));
    const int deadline =
        static_cast<int>(rng.uniform_int(release, slots - 1));
    const int window = deadline - release + 1;
    const double width = rng.uniform_real(2.0, 6.0);
    const double demand = rng.uniform_real(0.5, 0.9) * width * window;
    std::vector<RowEntry> demand_row;
    for (int t = release; t <= deadline; ++t) {
      const int col = inst.base.add_column(0.0, 0.0, width);
      demand_row.push_back(RowEntry{col, 1.0});
      slot_entries[static_cast<std::size_t>(t)].push_back(
          RowEntry{col, 1.0});
    }
    inst.base.add_row(RowSense::kEqual, demand, std::move(demand_row));
  }
  for (int t = 0; t < slots; ++t) {
    inst.loads.push_back(
        LoadRow{slot_entries[static_cast<std::size_t>(t)], 20.0, ""});
  }
  return inst;
}

class LexMinWarmStartProperty : public ::testing::TestWithParam<int> {};

TEST_P(LexMinWarmStartProperty, WarmStartedSolveReproducesTheColdProfile) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 6000);
  const LexMinInstance inst = random_lexmin_instance(rng, 5, 6);
  LexMinMaxSolver solver;
  const auto cold = solver.solve(inst.base, inst.loads);
  ASSERT_TRUE(cold.optimal());
  ASSERT_FALSE(cold.final_basis.empty());

  const auto warm = solver.solve(inst.base, inst.loads, &cold.final_basis);
  ASSERT_TRUE(warm.optimal());
  ASSERT_EQ(warm.levels.size(), cold.levels.size());
  for (std::size_t i = 0; i < cold.levels.size(); ++i) {
    EXPECT_NEAR(warm.levels[i], cold.levels[i], 1e-6) << "level " << i;
  }
  ASSERT_EQ(warm.load.size(), cold.load.size());
  for (std::size_t k = 0; k < cold.load.size(); ++k) {
    EXPECT_NEAR(warm.load[k], cold.load[k], 1e-5) << "load " << k;
  }
  // No pivot-count assertion here: on instances this small the cross-solve
  // hint's repair pivots can outweigh the skipped phase 1. The smoke test
  // asserts the pivot win at scheduler scale.
}

TEST_P(LexMinWarmStartProperty, ExactFixingAgreesUnderWarmStart) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 7000);
  const LexMinInstance inst = random_lexmin_instance(rng, 4, 5);
  LexMinMaxOptions exact_opts;
  exact_opts.exact_fixing = true;
  LexMinMaxSolver solver(exact_opts);
  const auto cold = solver.solve(inst.base, inst.loads);
  ASSERT_TRUE(cold.optimal());
  const auto warm = solver.solve(inst.base, inst.loads, &cold.final_basis);
  ASSERT_TRUE(warm.optimal());
  EXPECT_NEAR(warm.max_level(), cold.max_level(), 1e-6);
  ASSERT_EQ(warm.load.size(), cold.load.size());
  for (std::size_t k = 0; k < cold.load.size(); ++k) {
    EXPECT_NEAR(warm.load[k], cold.load[k], 1e-5) << "load " << k;
  }
}

TEST_P(LexMinWarmStartProperty, ForeignBasisIsHarmless) {
  // A basis from a differently-shaped instance must be rejected inside the
  // simplex (shape check) without affecting the lexmin result.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 8000);
  const LexMinInstance inst = random_lexmin_instance(rng, 5, 6);
  const LexMinInstance other = random_lexmin_instance(rng, 3, 4);
  LexMinMaxSolver solver;
  const auto donor = solver.solve(other.base, other.loads);
  ASSERT_TRUE(donor.optimal());
  const auto cold = solver.solve(inst.base, inst.loads);
  const auto warm = solver.solve(inst.base, inst.loads, &donor.final_basis);
  ASSERT_TRUE(cold.optimal());
  ASSERT_TRUE(warm.optimal());
  EXPECT_NEAR(warm.max_level(), cold.max_level(), 1e-6);
  ASSERT_EQ(warm.load.size(), cold.load.size());
  for (std::size_t k = 0; k < cold.load.size(); ++k) {
    EXPECT_NEAR(warm.load[k], cold.load[k], 1e-5) << "load " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LexMinWarmStartProperty,
                         ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Phase-1 tolerance scaling: infeasibility is judged against
// feasibility_tol * max(1, ||b||_inf), not an absolute 1e-6.
// ---------------------------------------------------------------------------

TEST(SimplexToleranceScaling, LargeRhsFeasibleProblemStaysOptimal) {
  // At rhs ~1e9 the phase-1 objective retains roundoff far above an
  // absolute 1e-6; the scaled threshold must still accept it as feasible.
  LpProblem p;
  const double scale = 1e9;
  const int x = p.add_column(1.0, 0.0, kInfinity);
  const int y = p.add_column(2.0, 0.0, kInfinity);
  p.add_row(RowSense::kEqual, 3.0 * scale, {{x, 1.0}, {y, 2.0}});
  p.add_row(RowSense::kEqual, 1.0 * scale, {{x, 1.0}, {y, -1.0}});
  p.add_row(RowSense::kLessEqual, 5.0 * scale, {{x, 2.0}, {y, 1.0}});
  SimplexSolver solver;
  const Solution s = solver.solve(p);
  ASSERT_TRUE(s.optimal()) << to_string(s.status);
  // x = 5e8/3*... solve directly: x - y = 1e9, x + 2y = 3e9 => y = 2e9/3.
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 2.0 * scale / 3.0,
              1e-3 * scale);
  EXPECT_NEAR(s.objective,
              p.objective_value(s.x), 1e-6 * scale);
}

TEST(SimplexToleranceScaling, SmallInfeasibleProblemIsStillDetected) {
  // Scaling the threshold by max(1, ||b||_inf) must not mask genuinely
  // infeasible systems whose data is of order one.
  LpProblem p;
  const int x = p.add_column(1.0, 0.0, 1.0);
  p.add_row(RowSense::kEqual, 2.0, {{x, 1.0}});   // x = 2 but x <= 1
  SimplexSolver solver;
  const Solution s = solver.solve(p);
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

}  // namespace
}  // namespace flowtime::lp
