// Direct unit tests for lp/unimodular: the exact TU check (Bareiss
// determinant enumeration), the Ghouila-Houri certificate, and the O(nnz)
// flow_representable gate that guards the max-flow fast path. lemma_test.cpp
// checks TU on the matrices the formulation builds; this file pins the
// checker itself on hand-constructed matrices, including the classic
// non-TU counterexamples and the Bareiss pivoting edge cases.
#include <gtest/gtest.h>

#include <vector>

#include "lp/lexmin.h"
#include "lp/model.h"
#include "lp/unimodular.h"

namespace flowtime::lp {
namespace {

IntMatrix make(int rows, int cols, std::vector<int> data) {
  IntMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.data = std::move(data);
  return m;
}

TEST(Unimodular, KnownTuMatrices) {
  // Identity, a network matrix, and an interval matrix are all TU.
  EXPECT_TRUE(is_totally_unimodular(make(2, 2, {1, 0, 0, 1})));
  EXPECT_TRUE(is_totally_unimodular(make(3, 2, {1, 0, -1, 1, 0, -1})));
  EXPECT_TRUE(is_totally_unimodular(make(3, 3,
      {1, 1, 0,
       0, 1, 1,
       0, 0, 1})));
}

TEST(Unimodular, OddCycleIncidenceIsNotTu) {
  // The vertex-edge incidence matrix of a triangle (odd cycle) has
  // determinant 2 — the canonical non-TU example.
  const IntMatrix triangle = make(3, 3,
      {1, 1, 0,
       0, 1, 1,
       1, 0, 1});
  EXPECT_FALSE(is_totally_unimodular(triangle));
  const auto violation = ghouila_houri_violation(triangle);
  ASSERT_TRUE(violation.has_value());
  EXPECT_FALSE(violation->empty());
}

TEST(Unimodular, EntryOutsideMinusOneZeroOneFailsImmediately) {
  // A 2 anywhere is a 1x1 submatrix with |det| = 2.
  EXPECT_FALSE(is_totally_unimodular(make(2, 2, {1, 0, 0, 2})));
  EXPECT_FALSE(is_totally_unimodular(make(1, 1, {-3})));
}

TEST(Unimodular, BareissHandlesZeroPivotAndSingularSubmatrices) {
  // First leading entry zero forces the row-swap path inside the Bareiss
  // determinant; the matrix is a permutation so still TU.
  EXPECT_TRUE(is_totally_unimodular(make(3, 3,
      {0, 1, 0,
       1, 0, 0,
       0, 0, 1})));
  // A singular (rank-1) all-ones matrix: every 2x2 minor is 0, so TU.
  EXPECT_TRUE(is_totally_unimodular(make(3, 3,
      {1, 1, 1,
       1, 1, 1,
       1, 1, 1})));
  // Anti-diagonal: det = -1 after swaps; sign bookkeeping must not report 1
  // incorrectly (TU either way, but the 3x3 det must be in {-1, 0, 1}).
  EXPECT_TRUE(is_totally_unimodular(make(3, 3,
      {0, 0, 1,
       0, 1, 0,
       1, 0, 0})));
}

TEST(Unimodular, GhouilaHouriAgreesOnSmallMatrices) {
  const IntMatrix tu = make(3, 3,
      {1, -1, 0,
       0, 1, -1,
       0, 0, 1});
  EXPECT_TRUE(is_totally_unimodular(tu));
  EXPECT_FALSE(ghouila_houri_violation(tu).has_value());

  const IntMatrix not_tu = make(3, 3,
      {1, 1, 0,
       0, 1, 1,
       1, 0, 1});
  EXPECT_TRUE(ghouila_houri_violation(not_tu).has_value());
}

// --- flow_representable: the structural gate for the max-flow fast path ---

// Builds the canonical 2-job / 2-slot transportation system the gate is
// designed for: one equality demand row per job over its window columns,
// one load row per slot.
struct GateFixture {
  LpProblem base;
  std::vector<LoadRow> loads;
  // columns: x00 x01 x10 x11  (job, slot)
  GateFixture() {
    for (int j = 0; j < 4; ++j) base.add_column(0.0, 0.0, 5.0);
    base.add_row(RowSense::kEqual, 6.0, {{0, 1.0}, {1, 1.0}});
    base.add_row(RowSense::kEqual, 4.0, {{2, 1.0}, {3, 1.0}});
    loads.resize(2);
    loads[0].entries = {{0, 1.0}, {2, 1.0}};
    loads[0].normalizer = 10.0;
    loads[1].entries = {{1, 1.0}, {3, 1.0}};
    loads[1].normalizer = 10.0;
  }
};

TEST(FlowRepresentable, AcceptsTransportationStructure) {
  GateFixture f;
  EXPECT_TRUE(flow_representable(f.base, f.loads));
}

TEST(FlowRepresentable, RejectsEmptyAndNonEqualityRows) {
  EXPECT_FALSE(flow_representable(LpProblem{}, {}));
  GateFixture f;
  f.base.set_row(0, RowSense::kLessEqual, 6.0);
  EXPECT_FALSE(flow_representable(f.base, f.loads));
}

TEST(FlowRepresentable, RejectsNegativeRhsAndNonUnitCoefficients) {
  {
    GateFixture f;
    f.base.set_row(0, RowSense::kEqual, -1.0);
    EXPECT_FALSE(flow_representable(f.base, f.loads));
  }
  {
    GateFixture f;
    f.base.set_row_coeff(0, 1, 2.0);  // demand coefficient != 1
    EXPECT_FALSE(flow_representable(f.base, f.loads));
  }
  {
    GateFixture f;
    f.loads[0].entries[0].coeff = 0.5;  // load coefficient != 1
    EXPECT_FALSE(flow_representable(f.base, f.loads));
  }
}

TEST(FlowRepresentable, RequiresExactlyOneBaseAndOneLoadRowPerColumn) {
  {
    // Column 0 in two demand rows: not a bipartite incidence column.
    GateFixture f;
    f.base.set_row_coeff(1, 0, 1.0);
    EXPECT_FALSE(flow_representable(f.base, f.loads));
  }
  {
    // Column 0 in two load rows.
    GateFixture f;
    f.loads[1].entries.push_back({0, 1.0});
    EXPECT_FALSE(flow_representable(f.base, f.loads));
  }
  {
    // Column 3 in no load row.
    GateFixture f;
    f.loads[1].entries.pop_back();
    EXPECT_FALSE(flow_representable(f.base, f.loads));
  }
}

TEST(FlowRepresentable, RejectsBadBoundsAndNormalizers) {
  {
    GateFixture f;
    f.base.set_bounds(2, 0.0, kInfinity);  // width bound must be finite
    EXPECT_FALSE(flow_representable(f.base, f.loads));
  }
  {
    GateFixture f;
    f.base.set_bounds(2, 1.0, 5.0);  // nonzero lower bound
    EXPECT_FALSE(flow_representable(f.base, f.loads));
  }
  {
    GateFixture f;
    f.loads[0].normalizer = 0.0;  // zero capacity cannot normalize
    EXPECT_FALSE(flow_representable(f.base, f.loads));
  }
}

}  // namespace
}  // namespace flowtime::lp
