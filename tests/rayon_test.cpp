// Tests for the Rayon-like reservation baseline.
#include <gtest/gtest.h>

#include "dag/generators.h"
#include "sched/rayon.h"
#include "sim/metrics.h"
#include "sim/simulator.h"

namespace flowtime::sched {
namespace {

using workload::ResourceVec;

workload::JobSpec simple_job(int tasks, double runtime, double cpu,
                             double mem) {
  workload::JobSpec job;
  job.name = "j";
  job.num_tasks = tasks;
  job.task.runtime_s = runtime;
  job.task.demand = ResourceVec{cpu, mem};
  return job;
}

core::DecompositionConfig tiny_decomposition() {
  core::DecompositionConfig config;
  config.cluster.capacity = ResourceVec{20.0, 40.0};
  return config;
}

sim::SimConfig tiny_cluster() {
  sim::SimConfig config;
  config.cluster.capacity = ResourceVec{20.0, 40.0};
  config.max_horizon_s = 4000.0;
  return config;
}

TEST(Rayon, ReservationsAreFrontLoadedAndMet) {
  workload::Scenario scenario;
  workload::Workflow w;
  w.id = 0;
  w.name = "w";
  w.start_s = 0.0;
  w.deadline_s = 2000.0;
  w.dag = dag::make_chain(1);
  w.jobs = {simple_job(10, 60.0, 1.0, 2.0)};
  scenario.workflows.push_back(std::move(w));

  sim::Simulator sim(tiny_cluster());
  RayonScheduler scheduler(tiny_decomposition());
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  // Earliest-fit booking: 600 core-s at width 100/slot -> 6 slots -> 60 s.
  EXPECT_DOUBLE_EQ(result.jobs[0].completion_s.value(), 60.0);
  EXPECT_EQ(result.capacity_violations, 0);
}

TEST(Rayon, SecondWorkflowBooksAroundTheFirst) {
  // Two 1-job workflows, each needing the full cluster width: the second's
  // reservation starts only after the first's booked slots.
  workload::Scenario scenario;
  for (int i = 0; i < 2; ++i) {
    workload::Workflow w;
    w.id = i;
    w.name = "w" + std::to_string(i);
    w.start_s = 0.0;
    w.deadline_s = 3000.0;
    w.dag = dag::make_chain(1);
    w.jobs = {simple_job(20, 50.0, 1.0, 2.0)};  // width = full cluster
    scenario.workflows.push_back(std::move(w));
  }
  sim::Simulator sim(tiny_cluster());
  RayonScheduler scheduler(tiny_decomposition());
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  EXPECT_DOUBLE_EQ(result.jobs[0].completion_s.value(), 50.0);
  EXPECT_DOUBLE_EQ(result.jobs[1].completion_s.value(), 100.0);
}

TEST(Rayon, AdhocRunsInPhysicallyFreeCapacity) {
  workload::Scenario scenario;
  workload::Workflow w;
  w.id = 0;
  w.name = "w";
  w.start_s = 0.0;
  w.deadline_s = 2000.0;
  w.dag = dag::make_chain(1);
  w.jobs = {simple_job(10, 60.0, 1.0, 2.0)};  // width 10 of 20 cores
  scenario.workflows.push_back(std::move(w));
  workload::AdhocJob adhoc;
  adhoc.id = 0;
  adhoc.arrival_s = 0.0;
  adhoc.spec = simple_job(10, 30.0, 1.0, 1.0);
  adhoc.spec.name = "adhoc";
  scenario.adhoc_jobs.push_back(adhoc);

  sim::Simulator sim(tiny_cluster());
  RayonScheduler scheduler(tiny_decomposition());
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  // Both fit side by side: adhoc is NOT blocked by the reservation.
  EXPECT_DOUBLE_EQ(result.jobs[1].completion_s.value(), 30.0);
}

TEST(Rayon, LateParentTriggersRebooking) {
  // Chain with an under-estimated parent: the child's early reservation
  // burns while the parent runs; the rebooking path must still finish it.
  workload::Scenario scenario;
  workload::Workflow w;
  w.id = 0;
  w.name = "w";
  w.start_s = 0.0;
  w.deadline_s = 3000.0;
  w.dag = dag::make_chain(2);
  w.jobs = {simple_job(10, 60.0, 1.0, 2.0), simple_job(10, 60.0, 1.0, 2.0)};
  w.jobs[0].actual_runtime_factor = 2.0;  // parent runs twice as long
  scenario.workflows.push_back(std::move(w));

  sim::Simulator sim(tiny_cluster());
  RayonScheduler scheduler(tiny_decomposition());
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  EXPECT_GT(result.jobs[1].completion_s.value(),
            result.jobs[0].completion_s.value());
}

TEST(Rayon, EarlyCompletionReleasesBookedCapacity) {
  // Over-estimated job: its booking is released at completion, letting a
  // later workflow's booking start sooner than the stale agenda suggested.
  workload::Scenario scenario;
  workload::Workflow a;
  a.id = 0;
  a.name = "a";
  a.start_s = 0.0;
  a.deadline_s = 3000.0;
  a.dag = dag::make_chain(1);
  a.jobs = {simple_job(20, 100.0, 1.0, 2.0)};
  a.jobs[0].actual_runtime_factor = 0.3;  // finishes way early
  scenario.workflows.push_back(std::move(a));

  sim::Simulator sim(tiny_cluster());
  RayonScheduler scheduler(tiny_decomposition());
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  EXPECT_LT(result.jobs[0].completion_s.value(), 100.0);
}

}  // namespace
}  // namespace flowtime::sched
