// Tests for the node-granular (YARN-like) execution mode: container
// quantization, first-fit packing, fragmentation accounting, and the
// equivalence with fluid mode when nodes are large.
#include <gtest/gtest.h>

#include "core/flowtime_scheduler.h"
#include "dag/generators.h"
#include "sched/baselines.h"
#include "sim/metrics.h"
#include "sim/simulator.h"

namespace flowtime::sim {
namespace {

using workload::ResourceVec;

workload::JobSpec simple_job(int tasks, double runtime, double cpu,
                             double mem) {
  workload::JobSpec job;
  job.name = "j";
  job.num_tasks = tasks;
  job.task.runtime_s = runtime;
  job.task.demand = ResourceVec{cpu, mem};
  return job;
}

class FullWidthScheduler : public Scheduler {
 public:
  std::string name() const override { return "full-width"; }
  std::vector<Allocation> allocate(const ClusterState& state) override {
    std::vector<Allocation> out;
    for (const JobView& view : state.active) {
      if (view.ready) out.push_back(Allocation{view.uid, view.width});
    }
    return out;
  }
};

workload::Scenario one_job(int tasks, double runtime, double cpu,
                           double mem) {
  workload::Scenario scenario;
  workload::Workflow w;
  w.id = 0;
  w.name = "w";
  w.start_s = 0.0;
  w.deadline_s = 4000.0;
  w.dag = dag::make_chain(1);
  w.jobs = {simple_job(tasks, runtime, cpu, mem)};
  scenario.workflows.push_back(std::move(w));
  return scenario;
}

TEST(NodeMode, MatchesFluidModeWhenContainersPackPerfectly) {
  // 10 tasks of 1 core on 10 nodes of 2 cores: 5 waves? No — width 10 of
  // 20-core cluster, 2 containers per node fit exactly.
  SimConfig fluid;
  fluid.cluster.capacity = ResourceVec{20.0, 40.0};
  SimConfig nodes = fluid;
  nodes.num_nodes = 10;

  FullWidthScheduler scheduler;
  const SimResult a = Simulator(fluid).run(one_job(10, 60.0, 1.0, 2.0),
                                           scheduler);
  const SimResult b = Simulator(nodes).run(one_job(10, 60.0, 1.0, 2.0),
                                           scheduler);
  ASSERT_TRUE(a.all_completed);
  ASSERT_TRUE(b.all_completed);
  EXPECT_DOUBLE_EQ(a.jobs[0].completion_s.value(),
                   b.jobs[0].completion_s.value());
  EXPECT_TRUE(workload::is_zero(b.fragmentation_lost, 1e-6));
}

TEST(NodeMode, FragmentationSlowsAwkwardContainers) {
  // Containers of 3 cores on nodes of 4 cores: one per node, 25% of each
  // node wasted. 8 tasks on 4 nodes: fluid width would run 5+ tasks
  // (16 cores / 3), node mode places only 4 at a time.
  SimConfig fluid;
  fluid.cluster.capacity = ResourceVec{16.0, 64.0};
  SimConfig nodes = fluid;
  nodes.num_nodes = 4;

  FullWidthScheduler scheduler;
  const workload::Scenario scenario = one_job(8, 60.0, 3.0, 2.0);
  const SimResult a = Simulator(fluid).run(scenario, scheduler);
  const SimResult b = Simulator(nodes).run(scenario, scheduler);
  ASSERT_TRUE(a.all_completed);
  ASSERT_TRUE(b.all_completed);
  EXPECT_GT(b.jobs[0].completion_s.value(), a.jobs[0].completion_s.value());
  EXPECT_GT(b.fragmentation_lost[workload::kCpu], 0.0);
}

TEST(NodeMode, PartialContainersAreNeverDelivered) {
  // Grant is always quantized: with 1 node of 1 core and 2-core containers
  // nothing ever runs.
  SimConfig config;
  config.cluster.capacity = ResourceVec{1.0, 64.0};
  config.num_nodes = 1;
  config.max_horizon_s = 300.0;
  FullWidthScheduler scheduler;
  const SimResult result =
      Simulator(config).run(one_job(2, 30.0, 2.0, 1.0), scheduler);
  EXPECT_FALSE(result.all_completed);
  for (const auto& used : result.used_per_slot) {
    EXPECT_TRUE(workload::is_zero(used, 1e-9));
  }
}

TEST(NodeMode, FlowTimeStillMeetsDeadlinesOnNodeCluster) {
  SimConfig config;
  config.cluster.capacity = ResourceVec{48.0, 96.0};
  config.num_nodes = 12;
  config.max_horizon_s = 2.0 * 3600.0;

  workload::Scenario scenario;
  workload::Workflow w;
  w.id = 0;
  w.name = "w";
  w.start_s = 0.0;
  w.deadline_s = 2400.0;
  w.dag = dag::make_fork_join(3);
  w.jobs.assign(5, simple_job(8, 50.0, 1.0, 2.0));
  scenario.workflows.push_back(std::move(w));

  core::FlowTimeConfig flowtime;
  flowtime.cluster.capacity = config.cluster.capacity;
  flowtime.cluster.slot_seconds = config.cluster.slot_seconds;
  core::FlowTimeScheduler scheduler(flowtime);
  const SimResult result = Simulator(config).run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  const DeadlineReport report = evaluate_deadlines(
      result, scenario.workflows,
      JobDeadlines(scheduler.job_deadlines().begin(),
                   scheduler.job_deadlines().end()));
  EXPECT_EQ(report.jobs_missed, 0);
}

TEST(NodeMode, BaselinesCompleteOnNodeCluster) {
  SimConfig config;
  config.cluster.capacity = ResourceVec{48.0, 96.0};
  config.num_nodes = 12;
  config.max_horizon_s = 2.0 * 3600.0;
  workload::Scenario scenario = one_job(16, 40.0, 1.0, 2.0);
  workload::AdhocJob adhoc;
  adhoc.id = 0;
  adhoc.arrival_s = 0.0;
  adhoc.spec = simple_job(4, 30.0, 2.0, 4.0);
  adhoc.spec.name = "adhoc";
  scenario.adhoc_jobs.push_back(adhoc);

  sched::FairScheduler fair;
  const SimResult fair_result = Simulator(config).run(scenario, fair);
  EXPECT_TRUE(fair_result.all_completed);
  sched::FifoScheduler fifo;
  const SimResult fifo_result = Simulator(config).run(scenario, fifo);
  EXPECT_TRUE(fifo_result.all_completed);
}

}  // namespace
}  // namespace flowtime::sim
