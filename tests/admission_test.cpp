// Tests for the admission controller and the DOT exporters.
#include <gtest/gtest.h>

#include "core/admission.h"
#include "dag/dot.h"
#include "dag/generators.h"
#include "workload/dot.h"

namespace flowtime {
namespace {

using workload::ResourceVec;

workload::JobSpec simple_job(int tasks, double runtime, double cpu,
                             double mem) {
  workload::JobSpec job;
  job.name = "j";
  job.num_tasks = tasks;
  job.task.runtime_s = runtime;
  job.task.demand = ResourceVec{cpu, mem};
  return job;
}

workload::Workflow heavy_workflow(int id, double start, double deadline) {
  workload::Workflow w;
  w.id = id;
  w.name = "w" + std::to_string(id);
  w.start_s = start;
  w.deadline_s = deadline;
  w.dag = dag::make_chain(2);
  // Each job: 20 tasks x 100 s = 2000 core-s.
  w.jobs = {simple_job(20, 100.0, 1.0, 2.0), simple_job(20, 100.0, 1.0, 2.0)};
  return w;
}

core::AdmissionConfig small_cluster() {
  core::AdmissionConfig config;
  config.cluster.capacity = ResourceVec{20.0, 40.0};
  return config;
}

TEST(Admission, AcceptsFeasibleWorkflow) {
  core::AdmissionController controller(small_cluster());
  // 4000 core-s on 20 cores needs 200 s minimum; deadline 1000 is ample.
  const auto decision = controller.admit(heavy_workflow(0, 0.0, 1000.0), 0.0);
  EXPECT_TRUE(decision.admitted) << decision.reason;
  EXPECT_LE(decision.peak_load, 1.0 + 1e-6);
  EXPECT_EQ(controller.admitted_workflows(), 1);
  EXPECT_EQ(controller.pending_jobs(), 2);
}

TEST(Admission, RejectsWhenClusterAlreadyCommitted) {
  core::AdmissionController controller(small_cluster());
  // Each workflow needs 4000 core-s before t=500 -> 8 cores average each;
  // the third pushes the shared window over 20 cores.
  EXPECT_TRUE(controller.admit(heavy_workflow(0, 0.0, 500.0), 0.0).admitted);
  EXPECT_TRUE(controller.admit(heavy_workflow(1, 0.0, 500.0), 0.0).admitted);
  const auto third = controller.admit(heavy_workflow(2, 0.0, 500.0), 0.0);
  EXPECT_FALSE(third.admitted);
  EXPECT_GT(third.peak_load, 1.0);
  EXPECT_EQ(controller.admitted_workflows(), 2);
}

TEST(Admission, EvaluateDoesNotMutate) {
  core::AdmissionController controller(small_cluster());
  controller.evaluate(heavy_workflow(0, 0.0, 1000.0), 0.0);
  EXPECT_EQ(controller.admitted_workflows(), 0);
}

TEST(Admission, CompletionFreesCapacity) {
  core::AdmissionController controller(small_cluster());
  EXPECT_TRUE(controller.admit(heavy_workflow(0, 0.0, 500.0), 0.0).admitted);
  EXPECT_TRUE(controller.admit(heavy_workflow(1, 0.0, 500.0), 0.0).admitted);
  EXPECT_FALSE(
      controller.admit(heavy_workflow(2, 0.0, 500.0), 0.0).admitted);
  // Workflow 0 finishes entirely: the third now fits.
  controller.complete_job(0, 0);
  controller.complete_job(0, 1);
  EXPECT_TRUE(
      controller.admit(heavy_workflow(2, 0.0, 500.0), 0.0).admitted);
}

TEST(Admission, ForgetDropsWholeWorkflow) {
  core::AdmissionController controller(small_cluster());
  controller.admit(heavy_workflow(0, 0.0, 1000.0), 0.0);
  controller.forget_workflow(0);
  EXPECT_EQ(controller.admitted_workflows(), 0);
  EXPECT_EQ(controller.pending_jobs(), 0);
}

TEST(Admission, HeadroomFractionTightensTheGate) {
  core::AdmissionConfig config = small_cluster();
  config.deadline_cap_fraction = 0.5;
  core::AdmissionController half(config);
  core::AdmissionController full(small_cluster());
  // Needs ~8 of 20 cores on average: fits the full cluster, not half of it
  // once two are admitted.
  const workload::Workflow w0 = heavy_workflow(0, 0.0, 500.0);
  const workload::Workflow w1 = heavy_workflow(1, 0.0, 500.0);
  EXPECT_TRUE(full.admit(w0, 0.0).admitted);
  EXPECT_TRUE(full.admit(w1, 0.0).admitted);
  EXPECT_TRUE(half.admit(w0, 0.0).admitted);
  EXPECT_FALSE(half.admit(w1, 0.0).admitted);
}

TEST(Admission, RejectsMalformedWorkflow) {
  core::AdmissionController controller(small_cluster());
  workload::Workflow broken = heavy_workflow(0, 0.0, 1000.0);
  broken.jobs[0].num_tasks = 0;
  const auto decision = controller.admit(broken, 0.0);
  EXPECT_FALSE(decision.admitted);
  EXPECT_NE(decision.reason.find("invalid"), std::string::npos);
}

TEST(Admission, WidthLimitedWorkflowReportsReason) {
  core::AdmissionController controller(small_cluster());
  // One task of 100 s with a 50 s window can never fit regardless of load.
  workload::Workflow w;
  w.id = 0;
  w.name = "w";
  w.start_s = 0.0;
  w.deadline_s = 50.0;
  w.dag = dag::make_chain(1);
  w.jobs = {simple_job(1, 100.0, 1.0, 1.0)};
  const auto decision = controller.admit(w, 0.0);
  EXPECT_FALSE(decision.admitted);
}

TEST(Dot, DagExportContainsNodesAndEdges) {
  const dag::Dag dag = dag::make_fork_join(2);
  const std::string dot = dag::to_dot(dag, "g");
  EXPECT_NE(dot.find("digraph g"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n3"), std::string::npos);
}

TEST(Dot, WorkflowExportHasLabelsAndRanks) {
  workload::Workflow w = heavy_workflow(7, 0.0, 1000.0);
  w.dag = dag::make_fork_join(3);
  w.jobs.assign(5, simple_job(4, 25.0, 1.0, 1.0));
  w.jobs[0].name = "source";
  const std::string dot = workload::to_dot(w);
  EXPECT_NE(dot.find("digraph workflow_7"), std::string::npos);
  EXPECT_NE(dot.find("source"), std::string::npos);
  EXPECT_NE(dot.find("deadline 1000"), std::string::npos);
  EXPECT_NE(dot.find("rank=same"), std::string::npos);
}

}  // namespace
}  // namespace flowtime
