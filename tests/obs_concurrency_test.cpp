// Concurrency smoke test for the observability layer (DESIGN.md §11): the
// concurrent runtime records metrics and spans from both the serving thread
// and solver threads, so Registry, Counter/Gauge/Histogram, the JSONL trace
// sink and the span table must tolerate concurrent use. Four threads hammer
// every surface; the final counts must be exact (atomics and locks, not
// best-effort). Run under TSan via the sanitize-tsan preset to catch races
// the counting cannot.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/testing.h"
#include "obs/trace.h"

namespace flowtime {
namespace {

constexpr int kThreads = 4;
constexpr int kIterations = 2000;

TEST(ObsConcurrency, CountersGaugesHistogramsStayExact) {
  obs::testing::ScopedRegistryReset reset;
  obs::set_enabled(true);

  // Shared instruments resolved once plus per-thread instruments resolved
  // inside the loop, so both the hot path (cached reference) and the
  // registry lookup path run concurrently.
  obs::Counter& shared_counter = obs::registry().counter("test.shared");
  obs::Histogram& shared_histogram = obs::registry().histogram("test.hist");

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &shared_counter, &shared_histogram] {
      const std::string own = "test.thread_" + std::to_string(t);
      for (int i = 0; i < kIterations; ++i) {
        shared_counter.add();
        obs::registry().counter(own).add(2);
        obs::registry().gauge("test.gauge").set(static_cast<double>(i));
        shared_histogram.observe(static_cast<double>(i % 100));
        obs::registry().histogram(own + ".hist").observe(1.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(shared_counter.value(), kThreads * kIterations);
  EXPECT_EQ(shared_histogram.count(), kThreads * kIterations);
  for (int t = 0; t < kThreads; ++t) {
    const std::string own = "test.thread_" + std::to_string(t);
    EXPECT_EQ(obs::registry().counter(own).value(), 2 * kIterations);
    EXPECT_EQ(obs::registry().histogram(own + ".hist").count(), kIterations);
  }
  const double gauge = obs::registry().gauge("test.gauge").value();
  EXPECT_GE(gauge, 0.0);
  EXPECT_LT(gauge, static_cast<double>(kIterations));
}

TEST(ObsConcurrency, TraceSinkAndSpansFromManyThreads) {
  obs::testing::ScopedRegistryReset reset;
  obs::set_enabled(true);
  auto sink = std::make_unique<obs::MemorySink>();
  obs::MemorySink* memory = sink.get();
  obs::set_trace_sink(std::move(sink));

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kIterations; ++i) {
        const double now = static_cast<double>(i);
        const obs::SpanId span = obs::begin_span(
            "async_replan", "thread_" + std::to_string(t), obs::kNoSpan, now);
        obs::emit(obs::TraceEvent("test_event")
                      .field("sim_s", now)
                      .field("thread", t)
                      .field("i", i));
        obs::end_span(span, now + 1.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Each iteration emits span_begin, the explicit event, and span_end.
  const std::size_t expected =
      static_cast<std::size_t>(3 * kThreads * kIterations);
  EXPECT_EQ(memory->lines().size(), expected);
  for (const std::string& line : memory->lines()) {
    // Every line is a complete JSON object — no interleaved writes.
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  obs::clear_trace_sink();
}

TEST(ObsConcurrency, SnapshotWhileWriting) {
  obs::testing::ScopedRegistryReset reset;
  obs::set_enabled(true);

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads - 1; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < kIterations; ++i) {
        obs::registry().counter("snap.counter").add();
      }
    });
  }
  // Concurrent reader: snapshots must be internally consistent (no torn
  // reads, never over the final total).
  const std::int64_t total =
      static_cast<std::int64_t>(kThreads - 1) * kIterations;
  std::thread reader([total] {
    for (int i = 0; i < 50; ++i) {
      const auto snapshot = obs::registry().snapshot();
      for (const auto& [name, value] : snapshot.counters) {
        if (name == "snap.counter") {
          EXPECT_GE(value, 0);
          EXPECT_LE(value, total);
        }
      }
    }
  });
  for (std::thread& writer : writers) writer.join();
  reader.join();
  EXPECT_EQ(obs::registry().counter("snap.counter").value(), total);
}

}  // namespace
}  // namespace flowtime
