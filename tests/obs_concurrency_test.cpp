// Concurrency smoke test for the observability layer (DESIGN.md §11): the
// concurrent runtime records metrics and spans from both the serving thread
// and solver threads, so Registry, Counter/Gauge/Histogram, the JSONL trace
// sink and the span table must tolerate concurrent use. Four threads hammer
// every surface; the final counts must be exact (atomics and locks, not
// best-effort). Run under TSan via the sanitize-tsan preset to catch races
// the counting cannot.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "dag/generators.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/testing.h"
#include "obs/trace.h"
#include "runtime/concurrent_scheduler.h"
#include "sim/events.h"
#include "workload/trace_gen.h"

namespace flowtime {
namespace {

using workload::ResourceVec;

constexpr int kThreads = 4;
constexpr int kIterations = 2000;

TEST(ObsConcurrency, CountersGaugesHistogramsStayExact) {
  obs::testing::ScopedRegistryReset reset;
  obs::set_enabled(true);

  // Shared instruments resolved once plus per-thread instruments resolved
  // inside the loop, so both the hot path (cached reference) and the
  // registry lookup path run concurrently.
  obs::Counter& shared_counter = obs::registry().counter("test.shared");
  obs::Histogram& shared_histogram = obs::registry().histogram("test.hist");

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &shared_counter, &shared_histogram] {
      const std::string own = "test.thread_" + std::to_string(t);
      for (int i = 0; i < kIterations; ++i) {
        shared_counter.add();
        obs::registry().counter(own).add(2);
        obs::registry().gauge("test.gauge").set(static_cast<double>(i));
        shared_histogram.observe(static_cast<double>(i % 100));
        obs::registry().histogram(own + ".hist").observe(1.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(shared_counter.value(), kThreads * kIterations);
  EXPECT_EQ(shared_histogram.count(), kThreads * kIterations);
  for (int t = 0; t < kThreads; ++t) {
    const std::string own = "test.thread_" + std::to_string(t);
    EXPECT_EQ(obs::registry().counter(own).value(), 2 * kIterations);
    EXPECT_EQ(obs::registry().histogram(own + ".hist").count(), kIterations);
  }
  const double gauge = obs::registry().gauge("test.gauge").value();
  EXPECT_GE(gauge, 0.0);
  EXPECT_LT(gauge, static_cast<double>(kIterations));
}

TEST(ObsConcurrency, TraceSinkAndSpansFromManyThreads) {
  obs::testing::ScopedRegistryReset reset;
  obs::set_enabled(true);
  auto sink = std::make_unique<obs::MemorySink>();
  obs::MemorySink* memory = sink.get();
  obs::set_trace_sink(std::move(sink));

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kIterations; ++i) {
        const double now = static_cast<double>(i);
        const obs::SpanId span = obs::begin_span(
            "async_replan", "thread_" + std::to_string(t), obs::kNoSpan, now);
        obs::emit(obs::TraceEvent("test_event")
                      .field("sim_s", now)
                      .field("thread", t)
                      .field("i", i));
        obs::end_span(span, now + 1.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Each iteration emits span_begin, the explicit event, and span_end.
  const std::size_t expected =
      static_cast<std::size_t>(3 * kThreads * kIterations);
  EXPECT_EQ(memory->lines().size(), expected);
  for (const std::string& line : memory->lines()) {
    // Every line is a complete JSON object — no interleaved writes.
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  obs::clear_trace_sink();
}

TEST(ObsConcurrency, SnapshotWhileWriting) {
  obs::testing::ScopedRegistryReset reset;
  obs::set_enabled(true);

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads - 1; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < kIterations; ++i) {
        obs::registry().counter("snap.counter").add();
      }
    });
  }
  // Concurrent reader: snapshots must be internally consistent (no torn
  // reads, never over the final total).
  const std::int64_t total =
      static_cast<std::int64_t>(kThreads - 1) * kIterations;
  std::thread reader([total] {
    for (int i = 0; i < 50; ++i) {
      const auto snapshot = obs::registry().snapshot();
      for (const auto& [name, value] : snapshot.counters) {
        if (name == "snap.counter") {
          EXPECT_GE(value, 0);
          EXPECT_LE(value, total);
        }
      }
    }
  });
  for (std::thread& writer : writers) writer.join();
  reader.join();
  EXPECT_EQ(obs::registry().counter("snap.counter").value(), total);
}

// Causal-chain pairing across real threads: N producer threads enqueue
// replan-trigger events (workflow arrivals) and non-trigger events (ad-hoc
// arrivals) into a ConcurrentScheduler whose solves run on a 2-thread
// solver pool, while the serving thread drains and plans concurrently.
// After quiesce, the JSONL stream — parsed BY ID, since line order races
// between threads by design — must balance: every trigger event_enqueued
// resolves through its batch to exactly one plan_adopted/plan_discarded
// terminal, and every solve_begin reaches exactly one terminal.
TEST(ObsConcurrency, CausalChainsPairAcrossThreads) {
  obs::testing::ScopedRegistryReset reset;
  auto sink = std::make_unique<obs::MemorySink>();
  obs::MemorySink* memory = sink.get();
  obs::set_trace_sink(std::move(sink));

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 6;
  const double slot_s = 10.0;

  // Pre-built single-job workflows (one per trigger event), kept alive for
  // the whole run — the queue carries non-owning references.
  std::vector<std::shared_ptr<workload::Workflow>> workflows;
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    auto w = std::make_shared<workload::Workflow>();
    w->id = i;
    w->name = "chain_w" + std::to_string(i);
    w->start_s = 0.0;
    w->deadline_s = 3000.0;
    w->dag = dag::make_chain(1);
    workload::JobSpec spec;
    spec.name = "j";
    spec.num_tasks = 4;
    spec.task.runtime_s = 30.0;
    spec.task.demand = ResourceVec{1.0, 2.0};
    w->jobs = {spec};
    workflows.push_back(std::move(w));
  }

  runtime::RuntimeConfig rt;
  rt.flowtime.cluster.capacity = ResourceVec{100.0, 200.0};
  rt.flowtime.cluster.slot_seconds = slot_s;
  rt.async_replan = true;
  rt.solver_threads = 2;
  {
    runtime::ConcurrentScheduler sched(rt);
    std::atomic<int> live_producers{kProducers};
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int t = 0; t < kProducers; ++t) {
      producers.emplace_back([&sched, &workflows, &live_producers, t] {
        for (int i = 0; i < kPerProducer; ++i) {
          const sim::JobUid uid = t * kPerProducer + i;
          sched.on_event(sim::WorkflowArrivalEvent{
              workflows[static_cast<std::size_t>(uid)], {uid}, 0.0});
          // Non-trigger event: its chain legitimately ends at batch_formed.
          sched.on_event(sim::AdhocArrivalEvent{1000 + uid, 0.0,
                                                ResourceVec{1.0, 1.0}});
        }
        live_producers.fetch_sub(1, std::memory_order_release);
      });
    }
    // Serve continuously while producers run so drains interleave with
    // enqueues and with in-flight solves.
    sim::ClusterState state;
    state.slot_seconds = slot_s;
    state.capacity = workload::scale(ResourceVec{100.0, 200.0}, slot_s);
    int slot = 0;
    while (live_producers.load(std::memory_order_acquire) > 0) {
      state.slot = slot;
      state.now_s = slot * slot_s;
      sched.allocate(state);
      ++slot;
    }
    for (std::thread& producer : producers) producer.join();
    state.slot = slot;
    state.now_s = slot * slot_s;
    sched.allocate(state);
    sched.quiesce(state);
  }
  // Copy the stream out BEFORE clearing the sink — clear_trace_sink()
  // destroys the registered MemorySink, invalidating `memory`.
  const std::vector<std::string> lines = memory->lines();
  obs::clear_trace_sink();

  // Re-join the chain from the flat stream.
  std::set<std::int64_t> trigger_enqueues;
  std::map<std::int64_t, std::int64_t> event_batch;   // trace -> batch
  std::map<std::int64_t, std::int64_t> batch_replan;  // batch -> replan
  std::set<std::int64_t> begun;
  std::map<std::int64_t, int> terminals;              // replan -> count
  for (const std::string& line : lines) {
    std::map<std::string, std::string> fields;
    ASSERT_TRUE(obs::parse_flat_json(line, &fields)) << line;
    const auto id = [&fields](const char* key) {
      return static_cast<std::int64_t>(
          std::strtod(fields.at(key).c_str(), nullptr));
    };
    const std::string& type = fields["type"];
    if (type == "event_enqueued") {
      if (fields["trigger"] == "true") trigger_enqueues.insert(id("trace"));
    } else if (type == "event_dequeued") {
      event_batch[id("trace")] = id("batch");
    } else if (type == "batch_planned") {
      batch_replan[id("batch")] = id("replan");
    } else if (type == "solve_begin") {
      EXPECT_TRUE(begun.insert(id("replan")).second)
          << "replan id reused by a second solve_begin";
    } else if (type == "plan_adopted" || type == "plan_discarded") {
      ++terminals[id("replan")];
    }
  }

  EXPECT_EQ(trigger_enqueues.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  for (const std::int64_t trace : trigger_enqueues) {
    const auto batch_it = event_batch.find(trace);
    ASSERT_NE(batch_it, event_batch.end())
        << "trigger event " << trace << " never drained";
    const auto replan_it = batch_replan.find(batch_it->second);
    ASSERT_NE(replan_it, batch_replan.end())
        << "trigger event " << trace << "'s batch never planned";
    EXPECT_EQ(terminals[replan_it->second], 1)
        << "trigger event " << trace
        << " did not resolve to exactly one terminal";
  }
  // Every replan attempt — including internally-triggered ones — reaches
  // exactly one terminal, and no terminal appears without a begin.
  EXPECT_FALSE(begun.empty());
  for (const std::int64_t replan : begun) {
    EXPECT_EQ(terminals[replan], 1) << "replan " << replan;
  }
  for (const auto& [replan, count] : terminals) {
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(begun.count(replan))
        << "terminal without solve_begin for replan " << replan;
  }
}

}  // namespace
}  // namespace flowtime
