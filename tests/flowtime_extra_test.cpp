// Additional FlowTime and baseline behaviours: plan-ahead coarsening,
// strict vs leftover EDF, FIFO submission-order semantics, ready-time
// reporting, and randomized contract property sweeps.
#include <gtest/gtest.h>

#include "core/flowtime_scheduler.h"
#include "dag/generators.h"
#include "sched/baselines.h"
#include "sched/experiment.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace flowtime {
namespace {

using workload::ResourceVec;

workload::JobSpec simple_job(int tasks, double runtime, double cpu,
                             double mem) {
  workload::JobSpec job;
  job.name = "j";
  job.num_tasks = tasks;
  job.task.runtime_s = runtime;
  job.task.demand = ResourceVec{cpu, mem};
  return job;
}

workload::Scenario chain_scenario(double deadline) {
  workload::Scenario scenario;
  workload::Workflow w;
  w.id = 0;
  w.name = "w";
  w.start_s = 0.0;
  w.deadline_s = deadline;
  w.dag = dag::make_chain(3);
  w.jobs = {simple_job(10, 40.0, 1.0, 2.0), simple_job(20, 30.0, 1.0, 2.0),
            simple_job(5, 60.0, 1.0, 2.0)};
  scenario.workflows.push_back(std::move(w));
  return scenario;
}

TEST(PlanCoarsening, CoarsePlansStillMeetDeadlines) {
  sim::SimConfig sim_config;
  sim_config.cluster.capacity = ResourceVec{50.0, 100.0};
  sim_config.max_horizon_s = 3.0 * 3600.0;
  core::FlowTimeConfig config;
  config.cluster.capacity = sim_config.cluster.capacity;
  config.cluster.slot_seconds = sim_config.cluster.slot_seconds;
  config.max_planning_slots = 16;  // force aggressive bucketing

  const workload::Scenario scenario = chain_scenario(4000.0);
  sim::Simulator sim(sim_config);
  core::FlowTimeScheduler scheduler(config);
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  EXPECT_EQ(result.capacity_violations, 0);
  EXPECT_EQ(result.width_violations, 0);
  const sim::DeadlineReport report = sim::evaluate_deadlines(
      result, scenario.workflows,
      sim::JobDeadlines(scheduler.job_deadlines().begin(),
                        scheduler.job_deadlines().end()));
  EXPECT_EQ(report.jobs_missed, 0);
}

TEST(PlanCoarsening, MatchesFineGrainedOutcomeOnLooseDeadlines) {
  sim::SimConfig sim_config;
  sim_config.cluster.capacity = ResourceVec{50.0, 100.0};
  sim_config.max_horizon_s = 3.0 * 3600.0;
  const workload::Scenario scenario = chain_scenario(6000.0);

  auto run_with = [&](int max_slots) {
    core::FlowTimeConfig config;
    config.cluster.capacity = sim_config.cluster.capacity;
    config.cluster.slot_seconds = sim_config.cluster.slot_seconds;
    config.max_planning_slots = max_slots;
    sim::Simulator sim(sim_config);
    core::FlowTimeScheduler scheduler(config);
    const sim::SimResult result = sim.run(scenario, scheduler);
    const sim::DeadlineReport report = sim::evaluate_deadlines(
        result, scenario.workflows,
        sim::JobDeadlines(scheduler.job_deadlines().begin(),
                          scheduler.job_deadlines().end()));
    return report.jobs_missed;
  };
  EXPECT_EQ(run_with(10000), 0);  // fine grained
  EXPECT_EQ(run_with(32), 0);     // heavily coarsened
}

TEST(EdfStrictness, StrictVariantStarvesAdhocLonger) {
  workload::Scenario scenario;
  workload::Workflow w;
  w.id = 0;
  w.name = "w";
  w.start_s = 0.0;
  w.deadline_s = 3000.0;
  w.dag = dag::make_chain(2);
  // Narrow jobs: widths well below the cluster, so the non-strict variant
  // has leftovers for the ad-hoc job while the strict one gives it nothing.
  w.jobs = {simple_job(4, 100.0, 1.0, 1.0), simple_job(4, 100.0, 1.0, 1.0)};
  scenario.workflows.push_back(std::move(w));
  workload::AdhocJob adhoc;
  adhoc.id = 0;
  adhoc.arrival_s = 0.0;
  adhoc.spec = simple_job(4, 50.0, 1.0, 1.0);
  adhoc.spec.name = "adhoc";
  scenario.adhoc_jobs.push_back(adhoc);

  sim::SimConfig sim_config;
  sim_config.cluster.capacity = ResourceVec{20.0, 40.0};
  sim_config.max_horizon_s = 3600.0;

  sim::Simulator sim(sim_config);
  sched::EdfScheduler strict({}, /*strict_adhoc_blocking=*/true);
  const sim::SimResult strict_result = sim.run(scenario, strict);
  sched::EdfScheduler leftover({}, /*strict_adhoc_blocking=*/false);
  const sim::SimResult leftover_result = sim.run(scenario, leftover);

  ASSERT_TRUE(strict_result.all_completed);
  ASSERT_TRUE(leftover_result.all_completed);
  const double strict_turnaround =
      sim::evaluate_adhoc(strict_result).mean_turnaround_s;
  const double leftover_turnaround =
      sim::evaluate_adhoc(leftover_result).mean_turnaround_s;
  EXPECT_GT(strict_turnaround, leftover_turnaround);
  // With leftovers the adhoc job runs immediately (widths don't collide).
  EXPECT_LE(leftover_turnaround, 60.0);
  // Strictly blocked until both deadline jobs are done (2x 200s + adhoc).
  EXPECT_GE(strict_turnaround, 200.0);
}

TEST(FifoSubmissionOrder, ChildrenQueueBehindBacklogAccumulatedMeanwhile) {
  // Parent runs [0,100); during that time an ad-hoc job arrives. The child
  // becomes ready at 100 and must queue behind the ad-hoc job under
  // submission-order FIFO.
  workload::Scenario scenario;
  workload::Workflow w;
  w.id = 0;
  w.name = "w";
  w.start_s = 0.0;
  w.deadline_s = 5000.0;
  w.dag = dag::make_chain(2);
  w.jobs = {simple_job(10, 100.0, 1.0, 1.0), simple_job(10, 100.0, 1.0, 1.0)};
  scenario.workflows.push_back(std::move(w));
  workload::AdhocJob adhoc;
  adhoc.id = 0;
  adhoc.arrival_s = 50.0;
  adhoc.spec = simple_job(10, 100.0, 1.0, 1.0);
  adhoc.spec.name = "adhoc";
  scenario.adhoc_jobs.push_back(adhoc);

  sim::SimConfig sim_config;
  sim_config.cluster.capacity = ResourceVec{10.0, 20.0};  // one job at a time
  sim_config.max_horizon_s = 3600.0;
  sim::Simulator sim(sim_config);
  sched::FifoScheduler scheduler;
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  // Parent [0,100), adhoc [100,200), child [200,300).
  EXPECT_DOUBLE_EQ(result.jobs[0].completion_s.value(), 100.0);
  EXPECT_DOUBLE_EQ(result.jobs[2].completion_s.value(), 200.0);
  EXPECT_DOUBLE_EQ(result.jobs[1].completion_s.value(), 300.0);
}

TEST(ReadySince, ViewReportsFirstRunnableInstant) {
  class Probe : public sim::Scheduler {
   public:
    std::string name() const override { return "probe"; }
    std::vector<sim::Allocation> allocate(
        const sim::ClusterState& state) override {
      std::vector<sim::Allocation> out;
      for (const sim::JobView& view : state.active) {
        if (view.ready) {
          ready_since[view.uid] = view.ready_since_s;
          out.push_back(sim::Allocation{view.uid, view.width});
        }
      }
      return out;
    }
    std::map<sim::JobUid, double> ready_since;
  };

  const workload::Scenario scenario = chain_scenario(5000.0);
  sim::SimConfig sim_config;
  sim_config.cluster.capacity = ResourceVec{50.0, 100.0};
  sim::Simulator sim(sim_config);
  Probe probe;
  const sim::SimResult result = sim.run(scenario, probe);
  ASSERT_TRUE(result.all_completed);
  EXPECT_DOUBLE_EQ(probe.ready_since.at(0), 0.0);
  // Job 1 becomes ready exactly when job 0 completes.
  EXPECT_DOUBLE_EQ(probe.ready_since.at(1),
                   result.jobs[0].completion_s.value());
  EXPECT_DOUBLE_EQ(probe.ready_since.at(2),
                   result.jobs[1].completion_s.value());
}

TEST(DeadlineCapFraction, ReservesHeadroomWhenFeasible) {
  // With cap fraction 0.5 the deadline plan must stay below half the
  // cluster whenever that is feasible, leaving guaranteed ad-hoc headroom.
  sim::SimConfig sim_config;
  sim_config.cluster.capacity = ResourceVec{50.0, 100.0};
  sim_config.max_horizon_s = 2.0 * 3600.0;
  core::FlowTimeConfig config;
  config.cluster.capacity = sim_config.cluster.capacity;
  config.cluster.slot_seconds = sim_config.cluster.slot_seconds;
  config.deadline_cap_fraction = 0.5;

  const workload::Scenario scenario = chain_scenario(4000.0);
  sim::Simulator sim(sim_config);
  core::FlowTimeScheduler scheduler(config);
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  const sim::DeadlineReport report = sim::evaluate_deadlines(
      result, scenario.workflows,
      sim::JobDeadlines(scheduler.job_deadlines().begin(),
                        scheduler.job_deadlines().end()));
  EXPECT_EQ(report.jobs_missed, 0);
  // No slot's usage exceeds half the cluster (no ad-hoc jobs are present,
  // so all usage is deadline work).
  for (const auto& used : result.used_per_slot) {
    EXPECT_LE(used[0], 0.5 * 50.0 * 10.0 + 1e-6);
  }
}

TEST(DeadlineCapFraction, FallsBackToFullClusterWhenTight) {
  // A deadline tight enough that half the cluster cannot meet it: the
  // scheduler must abandon the headroom rather than the deadline.
  sim::SimConfig sim_config;
  sim_config.cluster.capacity = ResourceVec{50.0, 100.0};
  sim_config.max_horizon_s = 2.0 * 3600.0;
  core::FlowTimeConfig config;
  config.cluster.capacity = sim_config.cluster.capacity;
  config.cluster.slot_seconds = sim_config.cluster.slot_seconds;
  config.deadline_cap_fraction = 0.5;
  config.deadline_slack_s = 0.0;

  // Chain min makespan: job0 400/100=40s? (10 tasks x 40 s at width 100:
  // 4 slots) + job1 600/200: 3 slots + job2 300/50: 6 slots = 130 s.
  // Deadline 300 s is meetable at full width but not at half.
  const workload::Scenario scenario = chain_scenario(300.0);
  sim::Simulator sim(sim_config);
  core::FlowTimeScheduler scheduler(config);
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  const sim::DeadlineReport report = sim::evaluate_deadlines(
      result, scenario.workflows,
      sim::JobDeadlines(scheduler.job_deadlines().begin(),
                        scheduler.job_deadlines().end()));
  EXPECT_EQ(report.workflows_missed, 0);
}

TEST(CoupledMode, FlowTimeMeetsDeadlinesWithCoupledLp) {
  sim::SimConfig sim_config;
  sim_config.cluster.capacity = ResourceVec{50.0, 100.0};
  sim_config.max_horizon_s = 2.0 * 3600.0;
  core::FlowTimeConfig config;
  config.cluster.capacity = sim_config.cluster.capacity;
  config.cluster.slot_seconds = sim_config.cluster.slot_seconds;
  config.lp.coupled_resources = true;

  const workload::Scenario scenario = chain_scenario(4000.0);
  sim::Simulator sim(sim_config);
  core::FlowTimeScheduler scheduler(config);
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  const sim::DeadlineReport report = sim::evaluate_deadlines(
      result, scenario.workflows,
      sim::JobDeadlines(scheduler.job_deadlines().begin(),
                        scheduler.job_deadlines().end()));
  EXPECT_EQ(report.jobs_missed, 0);
  // Coupled plans keep resources proportional per slot: check a sample of
  // the allocated profile (cpu:mem = 1:2 for these jobs).
  for (const auto& allocated : result.allocated_per_slot) {
    if (allocated[0] > 1e-6) {
      EXPECT_NEAR(allocated[1] / allocated[0], 2.0, 1e-3);
    }
  }
}

class SchedulerContractSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(SchedulerContractSweep, RandomScenarioViolatesNothing) {
  const auto& [name, seed] = GetParam();
  sched::ExperimentConfig config;
  config.sim.cluster.capacity = ResourceVec{150.0, 320.0};
  config.sim.max_horizon_s = 6.0 * 3600.0;
  config.flowtime.cluster.capacity = config.sim.cluster.capacity;
  config.flowtime.cluster.slot_seconds = config.sim.cluster.slot_seconds;
  config.schedulers = {name};

  workload::Fig4Config fig4;
  fig4.num_workflows = 2;
  fig4.jobs_per_workflow = 9;
  fig4.workflow.cluster.capacity = config.sim.cluster.capacity;
  fig4.adhoc.rate_per_s = 0.03;
  fig4.adhoc.horizon_s = 900.0;
  const workload::Scenario scenario = workload::make_fig4_scenario(
      static_cast<std::uint64_t>(seed), fig4);

  const auto outcomes = sched::run_comparison(scenario, config);
  ASSERT_EQ(outcomes.size(), 1u);
  const auto& outcome = outcomes.front();
  EXPECT_TRUE(outcome.result.all_completed);
  EXPECT_EQ(outcome.result.capacity_violations, 0);
  EXPECT_EQ(outcome.result.width_violations, 0);
  EXPECT_EQ(outcome.result.not_ready_allocations, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerContractSweep,
    ::testing::Combine(::testing::Values("FlowTime", "CORA", "EDF", "Fair",
                                         "FIFO", "Morpheus", "Rayon"),
                       ::testing::Values(101, 102)));

}  // namespace
}  // namespace flowtime
