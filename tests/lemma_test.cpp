// Empirical verification of the paper's two lemmas.
//
// Lemma 2: the scheduling LP's constraint matrix is totally unimodular —
// checked here with an exact determinant-enumeration TU test, the
// Ghouila-Houri characterization and the structural (bipartite-incidence)
// argument, on matrices built exactly the way the formulation builds them.
//
// Lemma 1: minimizing Σ K^{u_i} (λ-represented, K = |T||R|) yields the
// lexicographically minimal max vector — checked by comparing the
// scalarized optimum against the iterative LexMinMaxSolver on randomized
// small instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "lp/lambda.h"
#include "lp/lexmin.h"
#include "lp/simplex.h"
#include "lp/unimodular.h"
#include "util/rng.h"

namespace flowtime::lp {
namespace {

// Builds the paper's constraint matrix for a small slot-scheduling
// instance: one demand equality row per job, one capacity row per slot,
// one column per (job, slot in window).
LpProblem scheduling_problem(const std::vector<std::pair<int, int>>& windows,
                             int slots, double demand = 2.0,
                             double cap = 3.0) {
  LpProblem p;
  std::vector<std::vector<RowEntry>> slot_entries(
      static_cast<std::size_t>(slots));
  for (const auto& [begin, end] : windows) {
    std::vector<RowEntry> demand_row;
    for (int t = begin; t <= end; ++t) {
      const int col = p.add_column(0.0, 0.0, kInfinity);
      demand_row.push_back(RowEntry{col, 1.0});
      slot_entries[static_cast<std::size_t>(t)].push_back(
          RowEntry{col, 1.0});
    }
    p.add_row(RowSense::kEqual, demand, std::move(demand_row));
  }
  for (int t = 0; t < slots; ++t) {
    p.add_row(RowSense::kLessEqual, cap,
              std::move(slot_entries[static_cast<std::size_t>(t)]));
  }
  return p;
}

TEST(UnimodularChecker, IdentityAndClassicCounterexamples) {
  IntMatrix identity{2, 2, {1, 0, 0, 1}};
  EXPECT_TRUE(is_totally_unimodular(identity));
  // det = -2.
  IntMatrix bad{2, 2, {1, 1, 1, -1}};
  EXPECT_FALSE(is_totally_unimodular(bad));
  // The classic 3x3 non-TU circulant (every 2x2 minor ok, det = 2).
  IntMatrix circulant{3, 3, {1, 1, 0, 0, 1, 1, 1, 0, 1}};
  EXPECT_FALSE(is_totally_unimodular(circulant));
  EXPECT_TRUE(ghouila_houri_violation(circulant).has_value());
  EXPECT_FALSE(ghouila_houri_violation(identity).has_value());
}

TEST(UnimodularChecker, IntervalMatrixIsRecognizedAndTu) {
  // Consecutive-ones columns.
  IntMatrix interval{4, 3, {1, 0, 0,
                            1, 1, 0,
                            0, 1, 1,
                            0, 0, 1}};
  EXPECT_TRUE(has_consecutive_ones_columns(interval));
  EXPECT_TRUE(is_totally_unimodular(interval));
  IntMatrix gap{3, 1, {1, 0, 1}};
  EXPECT_FALSE(has_consecutive_ones_columns(gap));
}

TEST(UnimodularChecker, NetworkMatrixRecognition) {
  IntMatrix network{3, 2, {1, 0, -1, 1, 0, -1}};
  EXPECT_TRUE(is_network_matrix(network));
  EXPECT_TRUE(is_totally_unimodular(network));
  IntMatrix two_plus{2, 1, {1, 1}};
  EXPECT_FALSE(is_network_matrix(two_plus));  // two +1s in a column
}

TEST(Lemma2, SchedulingMatrixIsTotallyUnimodular) {
  // 3 jobs with overlapping windows over 4 slots: the real formulation's
  // structure (this is the matrix of paper constraints (2)-(4)).
  const LpProblem p =
      scheduling_problem({{0, 2}, {1, 3}, {0, 3}}, /*slots=*/4);
  const auto matrix = coefficient_matrix(p);
  ASSERT_TRUE(matrix.has_value());
  EXPECT_TRUE(is_totally_unimodular(*matrix))
      << "paper Lemma 2 violated by the formulation's own matrix";
  EXPECT_FALSE(ghouila_houri_violation(*matrix).has_value());
  EXPECT_TRUE(is_bipartite_incidence_like(*matrix));
}

TEST(Lemma2, WidthBoundsPreserveTotalUnimodularity) {
  // Appending identity rows (per-column upper bounds as explicit rows)
  // preserves TU — the argument DESIGN.md §5.4 relies on.
  LpProblem p = scheduling_problem({{0, 1}, {1, 2}}, 3);
  for (int j = 0; j < p.num_columns(); ++j) {
    p.add_row(RowSense::kLessEqual, 1.0, {RowEntry{j, 1.0}});
  }
  const auto matrix = coefficient_matrix(p);
  ASSERT_TRUE(matrix.has_value());
  EXPECT_TRUE(is_totally_unimodular(*matrix));
}

TEST(Lemma2, GhouilaHouriAgreesWithExactCheckOnRandomMatrices) {
  util::Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    IntMatrix m;
    m.rows = static_cast<int>(rng.uniform_int(2, 5));
    m.cols = static_cast<int>(rng.uniform_int(2, 5));
    m.data.resize(static_cast<std::size_t>(m.rows) * m.cols);
    for (int& v : m.data) {
      v = static_cast<int>(rng.uniform_int(-1, 1));
    }
    const bool exact = is_totally_unimodular(m);
    const bool gh = !ghouila_houri_violation(m).has_value();
    EXPECT_EQ(exact, gh) << "trial " << trial;
  }
}

TEST(LambdaRepresentation, ConvexInterpolationAtFractionalPoints) {
  // y fixed at 2.5; f(j) = j^2. Convexity forces adjacent breakpoints 2,3:
  // objective = 0.5*4 + 0.5*9 = 6.5.
  LpProblem p;
  const int y = p.add_column(0.0, 2.5, 2.5);
  append_lambda_representation(p, {RowEntry{y, 1.0}}, 0, 5,
                               [](int j) { return static_cast<double>(j * j); });
  SimplexSolver solver;
  const Solution s = solver.solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 6.5, 1e-6);
}

TEST(LambdaRepresentation, MinimizesConvexFunctionOverDomain) {
  // Free y in [0,6]; f(j) = (j-4)^2; optimum at y = 4 with objective 0.
  LpProblem p;
  const int y = p.add_column(0.0, 0.0, 6.0);
  append_lambda_representation(
      p, {RowEntry{y, 1.0}}, 0, 6,
      [](int j) { return static_cast<double>((j - 4) * (j - 4)); });
  SimplexSolver solver;
  const Solution s = solver.solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 0.0, 1e-7);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 4.0, 1e-6);
}

// ---------------------------------------------------------------------------
// Lemma 1: scalarized objective == iterative lexicographic min-max.
// ---------------------------------------------------------------------------

// Lemma 1 speaks about INTEGER vectors: the scalarized LP (TU + separable
// convex) returns the lexicographically minimal INTEGRAL load profile. The
// oracle therefore enumerates every integral placement exhaustively.
// (The iterative LexMinMaxSolver optimizes over fractional allocations and
// can legitimately achieve flatter profiles — e.g. demand 2 over 3 slots is
// {2/3,2/3,2/3} fractionally but {1,1,0} integrally.)
class Lemma1Property : public ::testing::TestWithParam<int> {};

namespace {

struct TinyInstance {
  int slots = 0;
  double cap = 6.0;
  // Per job: [begin, end] window and integer demand.
  std::vector<std::tuple<int, int, int>> jobs;
};

// Lexicographic comparison of sorted-descending load vectors.
bool lex_less(const std::vector<double>& a, const std::vector<double>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > 1e-12) return a[i] < b[i];
  }
  return false;
}

// Exhaustively enumerates integral placements and returns the sorted
// lexmin profile.
std::vector<double> integral_lexmin_oracle(const TinyInstance& inst) {
  std::vector<int> load(static_cast<std::size_t>(inst.slots), 0);
  std::vector<double> best;
  std::function<void(std::size_t)> place = [&](std::size_t job_index) {
    if (job_index == inst.jobs.size()) {
      std::vector<double> profile;
      profile.reserve(load.size());
      for (int l : load) profile.push_back(l / inst.cap);
      std::sort(profile.rbegin(), profile.rend());
      if (best.empty() || lex_less(profile, best)) best = profile;
      return;
    }
    const auto& [begin, end, demand] = inst.jobs[job_index];
    const int width = end - begin + 1;
    // Enumerate compositions of `demand` into `width` nonnegative parts.
    std::vector<int> parts(static_cast<std::size_t>(width), 0);
    std::function<void(int, int)> compose = [&](int position, int left) {
      if (position == width - 1) {
        parts[static_cast<std::size_t>(position)] = left;
        for (int t = 0; t < width; ++t) {
          load[static_cast<std::size_t>(begin + t)] +=
              parts[static_cast<std::size_t>(t)];
        }
        place(job_index + 1);
        for (int t = 0; t < width; ++t) {
          load[static_cast<std::size_t>(begin + t)] -=
              parts[static_cast<std::size_t>(t)];
        }
        return;
      }
      for (int take = 0; take <= left; ++take) {
        parts[static_cast<std::size_t>(position)] = take;
        compose(position + 1, left - take);
      }
    };
    compose(0, demand);
  };
  place(0);
  return best;
}

}  // namespace

TEST_P(Lemma1Property, ScalarizedOptimumMatchesIntegralLexminOracle) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  TinyInstance inst;
  inst.slots = static_cast<int>(rng.uniform_int(2, 4));
  const int jobs = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < jobs; ++i) {
    const int begin = static_cast<int>(rng.uniform_int(0, inst.slots - 1));
    const int end =
        static_cast<int>(rng.uniform_int(begin, inst.slots - 1));
    const int demand = static_cast<int>(rng.uniform_int(1, 5));
    inst.jobs.emplace_back(begin, end, demand);
  }

  LpProblem base;
  std::vector<LoadRow> loads(static_cast<std::size_t>(inst.slots));
  for (int t = 0; t < inst.slots; ++t) {
    loads[static_cast<std::size_t>(t)].normalizer = inst.cap;
  }
  for (const auto& [begin, end, demand] : inst.jobs) {
    std::vector<RowEntry> row;
    for (int t = begin; t <= end; ++t) {
      const int col = base.add_column(0.0, 0.0, kInfinity);
      row.push_back(RowEntry{col, 1.0});
      loads[static_cast<std::size_t>(t)].entries.push_back(
          RowEntry{col, 1.0});
    }
    base.add_row(RowSense::kEqual, static_cast<double>(demand),
                 std::move(row));
  }

  // The paper's K = |T||R| (here R = 1); any sufficiently large base
  // separates the levels. Use K large enough that one unit at a higher
  // level always outweighs rebalancing everything below it.
  const double k_base = 4.0 * inst.slots;
  const ScalarizedResult scalarized =
      solve_scalarized_lexmin(base, loads, k_base);
  ASSERT_EQ(scalarized.status, SolveStatus::kOptimal);

  const std::vector<double> oracle = integral_lexmin_oracle(inst);
  std::vector<double> measured = scalarized.load;
  std::sort(measured.rbegin(), measured.rend());
  ASSERT_EQ(measured.size(), oracle.size());
  for (std::size_t i = 0; i < measured.size(); ++i) {
    EXPECT_NEAR(measured[i], oracle[i], 1e-5)
        << "coordinate " << i << ": Lemma 1 equivalence violated";
  }
}

TEST(Lemma1, FractionalLexminIsAtLeastAsFlatAsIntegral) {
  // The documented relationship between the two solvers: the fractional
  // iterative optimum is lexicographically <= the integral one.
  LpProblem base;
  std::vector<int> cols;
  std::vector<RowEntry> demand;
  std::vector<LoadRow> loads(3);
  for (int t = 0; t < 3; ++t) {
    cols.push_back(base.add_column(0.0, 0.0, kInfinity));
    demand.push_back(RowEntry{cols.back(), 1.0});
    loads[static_cast<std::size_t>(t)] =
        LoadRow{{{cols[static_cast<std::size_t>(t)], 1.0}}, 6.0, ""};
  }
  base.add_row(RowSense::kEqual, 2.0, std::move(demand));

  const ScalarizedResult integral =
      solve_scalarized_lexmin(base, loads, 12.0);
  const LexMinMaxResult fractional = LexMinMaxSolver().solve(base, loads);
  ASSERT_EQ(integral.status, SolveStatus::kOptimal);
  ASSERT_TRUE(fractional.optimal());
  // Fractional: 2/3 per slot -> 0.111; integral: {1,1,0} -> max 0.167.
  EXPECT_NEAR(fractional.max_level(), 2.0 / 18.0, 1e-6);
  std::vector<double> profile = integral.load;
  std::sort(profile.rbegin(), profile.rend());
  EXPECT_NEAR(profile[0], 1.0 / 6.0, 1e-6);
  EXPECT_LE(fractional.max_level(), profile[0] + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Property, ::testing::Range(1, 17));

}  // namespace
}  // namespace flowtime::lp
