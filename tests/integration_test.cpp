// End-to-end integration: all schedulers over shared scenarios, asserting
// the paper's qualitative ordering and the simulator contract for every
// policy.
#include <gtest/gtest.h>

#include "sched/experiment.h"
#include "workload/estimator.h"
#include "workload/trace_gen.h"

namespace flowtime::sched {
namespace {

using workload::ResourceVec;

// A scaled-down Fig. 4-style scenario that keeps the test fast: a smaller
// cluster, 3 workflows x 10 jobs, modest ad-hoc stream.
workload::Scenario small_fig4(std::uint64_t seed,
                              const ExperimentConfig& config) {
  workload::Fig4Config fig4;
  fig4.num_workflows = 3;
  fig4.jobs_per_workflow = 10;
  fig4.workflow_start_spread_s = 300.0;
  fig4.workflow.cluster.capacity = config.sim.cluster.capacity;
  fig4.workflow.looseness_min = 3.0;
  fig4.workflow.looseness_max = 4.5;
  fig4.adhoc.rate_per_s = 0.02;
  fig4.adhoc.horizon_s = 1500.0;
  fig4.adhoc.min_tasks = 3;
  fig4.adhoc.max_tasks = 10;
  return workload::make_fig4_scenario(seed, fig4);
}

ExperimentConfig small_config() {
  ExperimentConfig config;
  // Capacity-to-workload ratio mirrors the paper's testbed (500 cores for
  // 90 jobs): enough headroom that deadlines are physically meetable even
  // though ad-hoc contention is real. (FlowTime defers deadline work by
  // design, so a cluster saturated by back-to-back workflow arrivals can
  // make decomposed milestones physically unmeetable for a lazy scheduler;
  // that regime is exercised separately in the benches.)
  config.sim.cluster.capacity = ResourceVec{320.0, 680.0};
  config.sim.max_horizon_s = 4.0 * 3600.0;
  config.flowtime.cluster.capacity = config.sim.cluster.capacity;
  config.flowtime.cluster.slot_seconds = config.sim.cluster.slot_seconds;
  config.schedulers = {"FlowTime", "CORA", "EDF", "Fair", "FIFO",
                       "Morpheus"};
  return config;
}

const SchedulerOutcome& by_name(const std::vector<SchedulerOutcome>& all,
                                const std::string& name) {
  for (const SchedulerOutcome& outcome : all) {
    if (outcome.name == name) return outcome;
  }
  ADD_FAILURE() << "missing scheduler " << name;
  return all.front();
}

class IntegrationSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntegrationSeeds, EverySchedulerHonoursTheSimulatorContract) {
  const ExperimentConfig config = small_config();
  const workload::Scenario scenario = small_fig4(GetParam(), config);
  const auto outcomes = run_comparison(scenario, config);
  ASSERT_EQ(outcomes.size(), 6u);
  for (const SchedulerOutcome& outcome : outcomes) {
    EXPECT_TRUE(outcome.result.all_completed) << outcome.name;
    EXPECT_EQ(outcome.result.capacity_violations, 0) << outcome.name;
    EXPECT_EQ(outcome.result.width_violations, 0) << outcome.name;
    EXPECT_EQ(outcome.result.not_ready_allocations, 0) << outcome.name;
  }
}

TEST_P(IntegrationSeeds, FlowTimeMeetsAllMilestones) {
  const ExperimentConfig config = small_config();
  const workload::Scenario scenario = small_fig4(GetParam(), config);
  const auto outcomes = run_comparison(scenario, config);
  const SchedulerOutcome& flowtime = by_name(outcomes, "FlowTime");
  EXPECT_EQ(flowtime.deadlines.jobs_missed, 0);
  EXPECT_EQ(flowtime.deadlines.workflows_missed, 0);
}

TEST_P(IntegrationSeeds, FlowTimeBeatsEdfOnAdhocTurnaround) {
  const ExperimentConfig config = small_config();
  const workload::Scenario scenario = small_fig4(GetParam(), config);
  const auto outcomes = run_comparison(scenario, config);
  const SchedulerOutcome& flowtime = by_name(outcomes, "FlowTime");
  const SchedulerOutcome& edf = by_name(outcomes, "EDF");
  ASSERT_GT(flowtime.adhoc.completed, 0);
  EXPECT_LT(flowtime.adhoc.mean_turnaround_s,
            edf.adhoc.mean_turnaround_s + 1e-9);
}

TEST_P(IntegrationSeeds, FlowTimeNeverMissesMoreJobsThanAnyBaseline) {
  const ExperimentConfig config = small_config();
  const workload::Scenario scenario = small_fig4(GetParam(), config);
  const auto outcomes = run_comparison(scenario, config);
  const SchedulerOutcome& flowtime = by_name(outcomes, "FlowTime");
  for (const SchedulerOutcome& outcome : outcomes) {
    EXPECT_LE(flowtime.deadlines.jobs_missed, outcome.deadlines.jobs_missed)
        << outcome.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrationSeeds,
                         ::testing::Values(1u, 2u, 3u));

TEST(Integration, EstimationErrorsDoNotBreakTheContract) {
  ExperimentConfig config = small_config();
  config.schedulers = {"FlowTime", "EDF", "Fair"};
  workload::Scenario scenario = small_fig4(9, config);
  util::Rng rng(99);
  workload::EstimationErrorConfig error;
  error.affected_fraction = 0.5;
  error.under_severity = 0.3;
  error.over_severity = 0.3;
  workload::inject_estimation_error(scenario.workflows, error, rng);
  const auto outcomes = run_comparison(scenario, config);
  for (const SchedulerOutcome& outcome : outcomes) {
    EXPECT_TRUE(outcome.result.all_completed) << outcome.name;
    EXPECT_EQ(outcome.result.capacity_violations, 0) << outcome.name;
  }
}

TEST(Integration, RecurringTraceRunsToCompletion) {
  ExperimentConfig config = small_config();
  config.schedulers = {"FlowTime", "Fair"};
  workload::RecurringTraceConfig trace;
  trace.num_templates = 2;
  trace.recurrences = 2;
  trace.period_s = 1200.0;
  trace.workflow.num_jobs = 8;
  trace.workflow.cluster.capacity = config.sim.cluster.capacity;
  trace.adhoc.rate_per_s = 0.01;
  const workload::Scenario scenario = workload::make_recurring_trace(5, trace);
  const auto outcomes = run_comparison(scenario, config);
  for (const SchedulerOutcome& outcome : outcomes) {
    EXPECT_TRUE(outcome.result.all_completed) << outcome.name;
  }
}

TEST(Integration, MilestoneDeadlinesCoverEveryWorkflowJob) {
  const ExperimentConfig config = small_config();
  const workload::Scenario scenario = small_fig4(4, config);
  const sim::JobDeadlines deadlines =
      milestone_deadlines(scenario, config);
  std::size_t expected = 0;
  for (const workload::Workflow& w : scenario.workflows) {
    expected += static_cast<std::size_t>(w.dag.num_nodes());
    for (dag::NodeId v = 0; v < w.dag.num_nodes(); ++v) {
      const auto it = deadlines.find(workload::WorkflowJobRef{w.id, v});
      ASSERT_NE(it, deadlines.end());
      // Milestones are quantized up to the end of their slot.
      EXPECT_LE(it->second, w.deadline_s + config.sim.cluster.slot_seconds + 1e-6);
      EXPECT_GT(it->second, w.start_s);
    }
  }
  EXPECT_EQ(deadlines.size(), expected);
}

}  // namespace
}  // namespace flowtime::sched
