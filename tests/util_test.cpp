// Unit tests for the util module: stats, tables, strings, flags, rng,
// backoff.
#include <gtest/gtest.h>

#include <cmath>

#include "util/backoff.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace flowtime::util {
namespace {

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Stats, MeanOfValues) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Stats, StddevOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(stddev({5.0, 5.0, 5.0}), 0.0);
}

TEST(Stats, StddevPopulation) {
  // Population stddev of {2, 4, 4, 4, 5, 5, 7, 9} is exactly 2.
  EXPECT_DOUBLE_EQ(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0);
}

TEST(Stats, QuantileNearestRank) {
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.9), 50.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.2), 10.0);
  // Out-of-range q clamps; empty input yields 0.
  EXPECT_DOUBLE_EQ(quantile(v, 1.5), 50.0);
  EXPECT_DOUBLE_EQ(quantile(v, -0.5), 10.0);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(Stats, SortedQuantileMatchesQuantile) {
  std::vector<double> sorted{1, 2, 3, 4};
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(sorted_quantile(sorted, q), quantile(sorted, q));
  }
}

TEST(Stats, MinMaxSum) {
  std::vector<double> v{3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(min_of(v), -1.0);
  EXPECT_DOUBLE_EQ(max_of(v), 3.0);
  EXPECT_DOUBLE_EQ(sum_of(v), 4.0);
}

TEST(Stats, RunningStatMatchesBatch) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  RunningStat rs;
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.begin_row().add("alpha").add(1.5, 1);
  t.begin_row().add("b").add(std::int64_t{42});
  const std::string rendered = t.to_string();
  EXPECT_NE(rendered.find("name"), std::string::npos);
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
  EXPECT_NE(rendered.find("1.5"), std::string::npos);
  EXPECT_NE(rendered.find("42"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.begin_row().add("x").add(std::int64_t{1});
  EXPECT_EQ(t.to_csv(), "a,b\nx,1\n");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hello\t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Flags, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--workflows=7", "--rate", "0.5", "--verbose"};
  Flags flags(5, argv);
  EXPECT_EQ(flags.get_int("workflows", 0), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 0.5);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get_int("absent", 9), 9);
}

TEST(Flags, TracksUnqueriedFlags) {
  const char* argv[] = {"prog", "--typo=1"};
  Flags flags(2, argv);
  EXPECT_EQ(flags.unqueried().size(), 1u);
  flags.get_int("typo", 0);
  EXPECT_TRUE(flags.unqueried().empty());
}

TEST(Flags, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(Flags(2, argv), std::invalid_argument);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, ForkDecorrelatesStreams) {
  Rng parent(1);
  Rng child = parent.fork();
  // The forked stream must not replay the parent's stream.
  Rng parent_copy(1);
  parent_copy.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.uniform_int(0, 1 << 30) == parent_copy.uniform_int(0, 1 << 30)) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 100);
}

TEST(Rng, ExponentialMeanApproximatesInverseRate) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Backoff, ExponentialSequenceWithCapAndReset) {
  BackoffConfig config;
  config.base = 2.0;
  config.multiplier = 2.0;
  config.cap = 10.0;
  Backoff backoff(config);
  EXPECT_EQ(backoff.attempts(), 0);
  EXPECT_DOUBLE_EQ(backoff.next(), 2.0);
  EXPECT_DOUBLE_EQ(backoff.next(), 4.0);
  EXPECT_DOUBLE_EQ(backoff.next(), 8.0);
  EXPECT_DOUBLE_EQ(backoff.next(), 10.0);  // capped
  EXPECT_DOUBLE_EQ(backoff.next(), 10.0);  // stays capped
  EXPECT_EQ(backoff.attempts(), 5);
  backoff.reset();
  EXPECT_EQ(backoff.attempts(), 0);
  EXPECT_DOUBLE_EQ(backoff.next(), 2.0);  // restarts from base
}

TEST(Backoff, MultiplierOneReproducesFixedDelay) {
  // The simulator's task-retry path relies on this: multiplier 1 and no
  // jitter must reproduce the historical constant backoff_slots delay.
  BackoffConfig config;
  config.base = 3.0;
  config.multiplier = 1.0;
  Backoff backoff(config);
  for (int i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(backoff.next(), 3.0) << "attempt " << i;
  }
}

TEST(Backoff, JitterIsBoundedAndSeedDeterministic) {
  BackoffConfig config;
  config.base = 4.0;
  config.multiplier = 2.0;
  config.cap = 64.0;
  config.jitter = 0.25;
  config.seed = 42;
  Backoff a(config);
  Backoff b(config);
  config.seed = 43;
  Backoff c(config);
  bool any_differs = false;
  for (int i = 0; i < 8; ++i) {
    const double unjittered = std::min(4.0 * std::pow(2.0, i), 64.0);
    const double da = a.next();
    EXPECT_DOUBLE_EQ(da, b.next()) << "same seed, same sequence";
    EXPECT_GE(da, unjittered * 0.75 - 1e-12) << "attempt " << i;
    EXPECT_LE(da, unjittered * 1.25 + 1e-12) << "attempt " << i;
    if (std::abs(da - c.next()) > 1e-12) any_differs = true;
  }
  EXPECT_TRUE(any_differs) << "different seeds should draw different jitter";
}

TEST(Backoff, ResetKeepsJitterStreamPosition) {
  // reset() restarts the attempt counter but must NOT rewind the jitter
  // stream: the stream position is part of the run's deterministic state.
  BackoffConfig config;
  config.base = 2.0;
  config.jitter = 0.5;
  config.seed = 7;
  Backoff straight(config);
  Backoff with_reset(config);
  (void)straight.next();
  (void)with_reset.next();
  with_reset.reset();
  // Same stream position now: with_reset's attempt 0 uses the draw that
  // straight's attempt 1 uses — delays differ (attempt counts differ) but
  // dividing out the un-jittered part exposes the same jitter factor.
  const double straight_factor = straight.next() / (2.0 * 2.0);
  const double reset_factor = with_reset.next() / 2.0;
  EXPECT_DOUBLE_EQ(straight_factor, reset_factor);
}

}  // namespace
}  // namespace flowtime::util
