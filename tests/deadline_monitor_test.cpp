// Tests for the deadline-risk monitor: ok/warn/breach transitions, event
// emission discipline (transitions only), the binary completion verdict,
// gauges — and end-to-end through FlowTimeScheduler + Simulator, where a
// workflow with an impossible deadline must produce a `breach`
// deadline_risk event while one with ample slack produces none.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/flowtime_scheduler.h"
#include "dag/generators.h"
#include "obs/deadline_monitor.h"
#include "obs/metrics.h"
#include "obs/testing.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace flowtime::obs {
namespace {

using workload::ResourceVec;

class DeadlineMonitorTest : public ::testing::Test {
 protected:
  DeadlineMonitorTest() {
    auto sink = std::make_unique<MemorySink>();
    sink_ = sink.get();
    set_trace_sink(std::move(sink));  // also enables the layer
  }

  // All deadline_risk events seen so far, parsed.
  std::vector<std::map<std::string, std::string>> risk_events() const {
    std::vector<std::map<std::string, std::string>> out;
    for (const std::string& line : sink_->lines()) {
      std::map<std::string, std::string> fields;
      EXPECT_TRUE(parse_flat_json(line, &fields)) << line;
      if (fields["type"] == "deadline_risk") out.push_back(std::move(fields));
    }
    return out;
  }

  testing::ScopedRegistryReset reset_;  // must precede the sink install
  MemorySink* sink_ = nullptr;
};

// Job: deadline 100. The default warn_fraction of 0.1 means warn fires
// when laxity drops below a tenth of the remaining window (deadline - now):
// at now = 20 that threshold is 8 s.
TEST_F(DeadlineMonitorTest, EmitsEventsOnlyOnLevelTransitions) {
  DeadlineMonitor monitor;
  monitor.track_workflow(7, 0.0, 100.0);
  monitor.track_job(7, 0, 0.0, 100.0, 20.0);
  EXPECT_EQ(monitor.inflight_jobs(), 1);
  EXPECT_EQ(monitor.inflight_workflows(), 1);

  monitor.update_job(7, 0, 10.0, 40.0);  // laxity 60: ok, silent
  EXPECT_TRUE(risk_events().empty());
  EXPECT_EQ(monitor.job_level(7, 0), RiskLevel::kOk);

  monitor.update_job(7, 0, 20.0, 95.0);   // laxity 5 < 8: warn
  monitor.update_job(7, 0, 30.0, 96.0);   // still warn: no new event
  monitor.update_job(7, 0, 40.0, 120.0);  // laxity -20: breach
  monitor.update_job(7, 0, 50.0, 125.0);  // still breach: no new event

  const auto events = risk_events();
  ASSERT_EQ(events.size(), 4u);  // job+workflow warn, job+workflow breach
  EXPECT_EQ(events[0].at("entity"), "job");
  EXPECT_EQ(events[0].at("workflow"), "7");
  EXPECT_EQ(events[0].at("node"), "0");
  EXPECT_EQ(events[0].at("level"), "warn");
  EXPECT_EQ(events[1].at("entity"), "workflow");
  EXPECT_EQ(events[1].at("level"), "warn");
  EXPECT_EQ(events[1].count("node"), 0u);
  EXPECT_EQ(events[2].at("level"), "breach");
  EXPECT_EQ(events[3].at("entity"), "workflow");
  EXPECT_EQ(events[3].at("level"), "breach");
  EXPECT_EQ(monitor.job_level(7, 0), RiskLevel::kBreach);
  EXPECT_EQ(monitor.workflow_level(7), RiskLevel::kBreach);

  EXPECT_EQ(registry().counter("obs.deadline.risk_events").value(), 4);
  EXPECT_EQ(registry().counter("obs.deadline.breaches").value(), 2);
}

TEST_F(DeadlineMonitorTest, RecoveringLaxityTransitionsBackToOk) {
  DeadlineMonitor monitor;
  monitor.track_workflow(1, 0.0, 100.0);
  monitor.track_job(1, 0, 0.0, 100.0, 20.0);
  monitor.update_job(1, 0, 10.0, 95.0);  // warn
  monitor.update_job(1, 0, 20.0, 50.0);  // back to ok after a good replan
  const auto events = risk_events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[2].at("level"), "ok");
  EXPECT_EQ(events[3].at("level"), "ok");
  EXPECT_EQ(monitor.job_level(1, 0), RiskLevel::kOk);
  EXPECT_EQ(monitor.workflow_level(1), RiskLevel::kOk);
}

TEST_F(DeadlineMonitorTest, CompletionVerdictIsBinary) {
  DeadlineMonitor monitor;
  monitor.track_workflow(1, 0.0, 100.0);
  monitor.track_job(1, 0, 0.0, 100.0, 20.0);
  monitor.update_job(1, 0, 20.0, 95.0);   // warn
  monitor.complete_job(1, 0, 90.0);       // made the deadline: final ok
  EXPECT_EQ(monitor.job_level(1, 0), RiskLevel::kOk);
  EXPECT_EQ(monitor.inflight_jobs(), 0);
  EXPECT_EQ(monitor.inflight_workflows(), 0);

  monitor.track_workflow(2, 0.0, 100.0);
  monitor.track_job(2, 0, 0.0, 100.0, 20.0);
  monitor.complete_job(2, 0, 110.0);  // past the deadline: breach
  EXPECT_EQ(monitor.job_level(2, 0), RiskLevel::kBreach);
  const auto events = risk_events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().at("level"), "breach");
  EXPECT_EQ(events.back().at("workflow"), "2");
}

TEST_F(DeadlineMonitorTest, AmpleSlackStaysSilentAndGaugesTrack) {
  DeadlineMonitor monitor;
  monitor.track_workflow(3, 0.0, 1000.0);
  monitor.track_job(3, 0, 0.0, 1000.0, 100.0);  // laxity stays far above warn
  monitor.update_job(3, 0, 100.0, 300.0);
  monitor.update_job(3, 0, 500.0, 800.0);  // laxity 200, still ok
  EXPECT_TRUE(risk_events().empty());
  EXPECT_EQ(registry().gauge("obs.deadline.jobs_inflight").value(), 1.0);
  EXPECT_EQ(registry().gauge("obs.deadline.jobs_warn").value(), 0.0);
  EXPECT_DOUBLE_EQ(registry().gauge("obs.deadline.min_laxity_s").value(),
                   200.0);
  monitor.complete_job(3, 0, 810.0);
  EXPECT_TRUE(risk_events().empty());  // on-time completion: still silent
  EXPECT_EQ(registry().gauge("obs.deadline.jobs_inflight").value(), 0.0);
}

// ---------------------------------------------------------------------------
// End-to-end: FlowTimeScheduler + Simulator feeding the process monitor.

// One workflow, one job: 10 tasks x 100 s at 1 cpu -> 1000 core-s of work
// at width 10 cores, so the width-limited minimum runtime is 100 s.
workload::Scenario one_job_scenario(double deadline_s) {
  workload::Scenario scenario;
  workload::Workflow w;
  w.id = 0;
  w.name = "w";
  w.start_s = 0.0;
  w.deadline_s = deadline_s;
  w.dag = dag::make_chain(1);
  workload::JobSpec job;
  job.name = "j";
  job.num_tasks = 10;
  job.task.runtime_s = 100.0;
  job.task.demand = ResourceVec{1.0, 2.0};
  w.jobs = {job};
  scenario.workflows.push_back(std::move(w));
  return scenario;
}

sim::SimResult run_flowtime(const workload::Scenario& scenario) {
  sim::SimConfig sim_config;
  sim_config.cluster.capacity = ResourceVec{50.0, 100.0};
  sim_config.max_horizon_s = 6000.0;
  core::FlowTimeConfig config;
  config.cluster.capacity = sim_config.cluster.capacity;
  config.cluster.slot_seconds = sim_config.cluster.slot_seconds;
  core::FlowTimeScheduler scheduler(config);
  sim::Simulator sim(sim_config);
  return sim.run(scenario, scheduler);
}

TEST_F(DeadlineMonitorTest, ImpossibleDeadlineBreachesEndToEnd) {
  // Deadline 50 s for 100 s of width-limited work: unmeetable from the
  // start, so the first risk projection already crosses the Stage-1
  // deadline.
  const sim::SimResult result = run_flowtime(one_job_scenario(50.0));
  EXPECT_TRUE(result.all_completed);
  const auto events = risk_events();
  bool job_breach = false, workflow_breach = false;
  for (const auto& event : events) {
    if (event.at("level") != "breach") continue;
    if (event.at("entity") == "job") job_breach = true;
    if (event.at("entity") == "workflow") workflow_breach = true;
  }
  EXPECT_TRUE(job_breach);
  EXPECT_TRUE(workflow_breach);
  EXPECT_GE(registry().counter("obs.deadline.breaches").value(), 1);
}

TEST_F(DeadlineMonitorTest, AmpleSlackWorkflowEmitsNoRiskEventsEndToEnd) {
  // Deadline 300 s for 100 s of work: the plan (deferred toward the
  // deadline minus slack, per FlowTime) keeps the earliest-feasible
  // projection comfortably above the warn threshold throughout.
  const sim::SimResult result = run_flowtime(one_job_scenario(300.0));
  EXPECT_TRUE(result.all_completed);
  ASSERT_TRUE(result.jobs[0].completion_s.has_value());
  EXPECT_LE(result.jobs[0].completion_s.value(), 300.0);
  EXPECT_TRUE(risk_events().empty());
}

}  // namespace
}  // namespace flowtime::obs
