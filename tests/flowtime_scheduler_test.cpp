// Tests for the FlowTime scheduler: deadline adherence, ad-hoc leftover
// allocation, dynamic re-planning and estimation-error robustness.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <numeric>

#include "core/flowtime_scheduler.h"
#include "dag/generators.h"
#include "obs/testing.h"
#include "obs/trace.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/estimator.h"
#include "workload/trace_gen.h"

namespace flowtime::core {
namespace {

using workload::kCpu;
using workload::ResourceVec;

workload::JobSpec simple_job(int tasks, double runtime, double cpu,
                             double mem) {
  workload::JobSpec job;
  job.name = "j";
  job.num_tasks = tasks;
  job.task.runtime_s = runtime;
  job.task.demand = ResourceVec{cpu, mem};
  return job;
}

// A small cluster so contention is real but tests stay fast.
sim::SimConfig small_cluster() {
  sim::SimConfig config;
  config.cluster.capacity = ResourceVec{50.0, 100.0};
  config.max_horizon_s = 6000.0;
  return config;
}

FlowTimeConfig flowtime_config(const sim::SimConfig& sim_config) {
  FlowTimeConfig config;
  config.cluster.capacity = sim_config.cluster.capacity;
  config.cluster.slot_seconds = sim_config.cluster.slot_seconds;
  return config;
}

workload::Scenario chain_scenario(double deadline = 2000.0) {
  workload::Scenario scenario;
  workload::Workflow w;
  w.id = 0;
  w.name = "w";
  w.start_s = 0.0;
  w.deadline_s = deadline;
  w.dag = dag::make_chain(3);
  w.jobs = {simple_job(10, 40.0, 1.0, 2.0), simple_job(20, 30.0, 1.0, 2.0),
            simple_job(5, 60.0, 1.0, 2.0)};
  scenario.workflows.push_back(std::move(w));
  return scenario;
}

TEST(FlowTimeScheduler, MeetsAllDecomposedDeadlinesWithoutContention) {
  const sim::SimConfig sim_config = small_cluster();
  sim::Simulator sim(sim_config);
  FlowTimeScheduler scheduler(flowtime_config(sim_config));
  const workload::Scenario scenario = chain_scenario();
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  EXPECT_EQ(result.capacity_violations, 0);
  EXPECT_EQ(result.width_violations, 0);
  EXPECT_EQ(result.not_ready_allocations, 0);

  const sim::DeadlineReport report = sim::evaluate_deadlines(
      result, scenario.workflows,
      sim::JobDeadlines(scheduler.job_deadlines().begin(),
                        scheduler.job_deadlines().end()));
  EXPECT_EQ(report.jobs_missed, 0);
  EXPECT_EQ(report.workflows_missed, 0);
}

TEST(FlowTimeScheduler, ExposesDecompositionAndDeadlines) {
  const sim::SimConfig sim_config = small_cluster();
  sim::Simulator sim(sim_config);
  FlowTimeScheduler scheduler(flowtime_config(sim_config));
  const workload::Scenario scenario = chain_scenario();
  sim.run(scenario, scheduler);
  EXPECT_EQ(scheduler.job_deadlines().size(), 3u);
  const DecompositionResult* decomposition = scheduler.decomposition(0);
  ASSERT_NE(decomposition, nullptr);
  EXPECT_EQ(decomposition->levels.size(), 3u);
  EXPECT_EQ(scheduler.decomposition(42), nullptr);
  // Final job's decomposed deadline is the workflow deadline.
  EXPECT_NEAR(scheduler.job_deadlines().at(workload::WorkflowJobRef{0, 2}),
              2000.0, 1e-9);
}

TEST(FlowTimeScheduler, SpreadsWorkInsteadOfFrontLoading) {
  // The lexmin objective should keep per-slot usage near demand/window, far
  // below an EDF-style full-width burst.
  const sim::SimConfig sim_config = small_cluster();
  sim::Simulator sim(sim_config);
  FlowTimeScheduler scheduler(flowtime_config(sim_config));
  const workload::Scenario scenario = chain_scenario(4000.0);
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  double peak_cpu = 0.0;
  for (const auto& used : result.allocated_per_slot) {
    peak_cpu = std::max(peak_cpu, used[kCpu]);
  }
  // Full width of the widest job would be 20 cores x 10 s = 200; flattening
  // over the loose deadline must stay well below that.
  EXPECT_LT(peak_cpu, 100.0);
}

TEST(FlowTimeScheduler, AdhocJobsRunImmediatelyOnLeftovers) {
  const sim::SimConfig sim_config = small_cluster();
  sim::Simulator sim(sim_config);
  FlowTimeScheduler scheduler(flowtime_config(sim_config));
  workload::Scenario scenario = chain_scenario(4000.0);
  workload::AdhocJob adhoc;
  adhoc.id = 0;
  adhoc.arrival_s = 0.0;
  adhoc.spec = simple_job(5, 20.0, 1.0, 1.0);
  adhoc.spec.name = "adhoc";
  scenario.adhoc_jobs.push_back(adhoc);
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  const sim::AdhocReport report = sim::evaluate_adhoc(result);
  ASSERT_EQ(report.completed, 1);
  // 5 tasks x 20 s x 1 core = 100 core-s; width 50 core-s/slot -> 2 slots
  // if served instantly. Allow one extra slot of slack.
  EXPECT_LE(report.mean_turnaround_s, 30.0 + 1e-9);
}

TEST(FlowTimeScheduler, ReplansOnlyOnMeaningfulEventsWithExactEstimates) {
  const sim::SimConfig sim_config = small_cluster();
  sim::Simulator sim(sim_config);
  FlowTimeScheduler scheduler(flowtime_config(sim_config));
  const workload::Scenario scenario = chain_scenario();
  sim.run(scenario, scheduler);
  // One arrival plus at most a few deviation-driven replans (slot rounding
  // can make a job finish one slot early).
  EXPECT_GE(scheduler.replans(), 1);
  EXPECT_LE(scheduler.replans(), 6);
}

TEST(FlowTimeScheduler, SlackAbsorbsUnderEstimation) {
  const sim::SimConfig sim_config = small_cluster();
  workload::Scenario scenario = chain_scenario();
  // All jobs run 15% longer than estimated.
  for (workload::JobSpec& job : scenario.workflows[0].jobs) {
    job.actual_runtime_factor = 1.15;
  }
  FlowTimeConfig config = flowtime_config(sim_config);
  config.deadline_slack_s = 120.0;
  sim::Simulator sim(sim_config);
  FlowTimeScheduler scheduler(config);
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  const sim::DeadlineReport report = sim::evaluate_deadlines(
      result, scenario.workflows,
      sim::JobDeadlines(scheduler.job_deadlines().begin(),
                        scheduler.job_deadlines().end()));
  EXPECT_EQ(report.jobs_missed, 0);
  EXPECT_GT(scheduler.replans(), 1);  // overruns forced re-planning
}

TEST(FlowTimeScheduler, OverEstimationFreesCapacityEarly) {
  const sim::SimConfig sim_config = small_cluster();
  workload::Scenario scenario = chain_scenario();
  for (workload::JobSpec& job : scenario.workflows[0].jobs) {
    job.actual_runtime_factor = 0.6;  // strongly over-estimated
  }
  sim::Simulator sim(sim_config);
  FlowTimeScheduler scheduler(flowtime_config(sim_config));
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  const sim::DeadlineReport report = sim::evaluate_deadlines(
      result, scenario.workflows,
      sim::JobDeadlines(scheduler.job_deadlines().begin(),
                        scheduler.job_deadlines().end()));
  EXPECT_EQ(report.jobs_missed, 0);
}

TEST(FlowTimeScheduler, TightDeadlineStillCompletesViaFallback) {
  // Deadline below the minimum makespan: decomposition falls back to
  // critical-path windows and the LP extends late windows minimally; the
  // workflow finishes as fast as the cluster allows even though the
  // deadline is missed.
  const sim::SimConfig sim_config = small_cluster();
  workload::Scenario scenario = chain_scenario(/*deadline=*/60.0);
  sim::Simulator sim(sim_config);
  FlowTimeScheduler scheduler(flowtime_config(sim_config));
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  // Minimum possible makespan: job0 2 slots (wait: 10x40=400 core-s,
  // width 100/slot -> 4 slots) + job1 600/200 -> 3 slots + job2 300/50 ->
  // 6 slots = 13 slots = 130 s. Allow some slack for planning granularity.
  EXPECT_LE(result.jobs[2].completion_s.value(), 300.0);
}

TEST(FlowTimeScheduler, HandlesMultipleOverlappingWorkflows) {
  const sim::SimConfig sim_config = small_cluster();
  workload::Scenario scenario;
  util::Rng rng(77);
  workload::WorkflowGenConfig gen;
  gen.num_jobs = 8;
  gen.cluster.capacity = sim_config.cluster.capacity;
  gen.looseness_min = 4.0;
  gen.looseness_max = 6.0;
  for (int i = 0; i < 3; ++i) {
    scenario.workflows.push_back(
        workload::make_workflow(rng, i, i * 100.0, gen));
  }
  sim::Simulator sim(sim_config);
  FlowTimeScheduler scheduler(flowtime_config(sim_config));
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  EXPECT_EQ(result.capacity_violations, 0);
  const sim::DeadlineReport report = sim::evaluate_deadlines(
      result, scenario.workflows,
      sim::JobDeadlines(scheduler.job_deadlines().begin(),
                        scheduler.job_deadlines().end()));
  EXPECT_EQ(report.workflows_missed, 0);
}

TEST(FlowTimeScheduler, NoSlackVariantUsesFullWindow) {
  FlowTimeConfig with_slack = flowtime_config(small_cluster());
  with_slack.deadline_slack_s = 60.0;
  FlowTimeConfig no_slack = flowtime_config(small_cluster());
  no_slack.deadline_slack_s = 0.0;
  // The slack variant must plan completions strictly earlier for the same
  // single job.
  workload::Scenario scenario = chain_scenario(1000.0);

  sim::Simulator sim(small_cluster());
  FlowTimeScheduler slack_scheduler(with_slack);
  const sim::SimResult slack_result = sim.run(scenario, slack_scheduler);
  FlowTimeScheduler no_slack_scheduler(no_slack);
  const sim::SimResult no_slack_result =
      sim.run(scenario, no_slack_scheduler);
  ASSERT_TRUE(slack_result.all_completed);
  ASSERT_TRUE(no_slack_result.all_completed);
  // Last job completes no later under slack (usually strictly earlier).
  EXPECT_LE(slack_result.jobs[2].completion_s.value(),
            no_slack_result.jobs[2].completion_s.value() + 1e-9);
}

TEST(FlowTimeScheduler, ReplanLogCarriesCauseTags) {
  const sim::SimConfig sim_config = small_cluster();
  sim::Simulator sim(sim_config);
  FlowTimeScheduler scheduler(flowtime_config(sim_config));
  const workload::Scenario scenario = chain_scenario();
  sim.run(scenario, scheduler);

  const auto& log = scheduler.replan_log();
  ASSERT_EQ(static_cast<int>(log.size()), scheduler.replans());
  ASSERT_FALSE(log.empty());
  // The first replan is triggered by the workflow's arrival.
  EXPECT_TRUE(has_cause(log.front().causes, ReplanCause::kWorkflowArrival));
  EXPECT_NE(to_string(log.front().causes).find("arrival"),
            std::string::npos);
  // Every replan was triggered by something; none fires spuriously.
  for (const ReplanRecord& record : log) {
    EXPECT_NE(record.causes, ReplanCause::kNone);
    EXPECT_FALSE(record.lp_failed);
  }
}

TEST(FlowTimeScheduler, OverrunsAreTaggedInReplanLog) {
  const sim::SimConfig sim_config = small_cluster();
  workload::Scenario scenario = chain_scenario();
  for (workload::JobSpec& job : scenario.workflows[0].jobs) {
    job.actual_runtime_factor = 1.3;  // every job runs longer than planned
  }
  FlowTimeConfig config = flowtime_config(sim_config);
  config.deadline_slack_s = 120.0;
  sim::Simulator sim(sim_config);
  FlowTimeScheduler scheduler(config);
  sim.run(scenario, scheduler);

  bool saw_overrun = false;
  for (const ReplanRecord& record : scheduler.replan_log()) {
    saw_overrun |= has_cause(record.causes, ReplanCause::kOverrun);
  }
  EXPECT_TRUE(saw_overrun);
}

TEST(FlowTimeScheduler, ReplanLogSolverStatsAreMonotoneAndConsistent) {
  const sim::SimConfig sim_config = small_cluster();
  sim::Simulator sim(sim_config);
  FlowTimeScheduler scheduler(flowtime_config(sim_config));
  sim.run(chain_scenario(), scheduler);

  const auto& log = scheduler.replan_log();
  ASSERT_FALSE(log.empty());
  std::int64_t pivot_sum = 0;
  int last_slot = -1;
  for (const ReplanRecord& record : log) {
    EXPECT_GE(record.pivots, 0);
    EXPECT_GE(record.planned_jobs, 0);
    EXPECT_GE(record.slot, last_slot);  // log is in simulation order
    last_slot = record.slot;
    pivot_sum += record.pivots;
  }
  // Per-replan pivot deltas partition the scheduler-wide total.
  EXPECT_EQ(pivot_sum, scheduler.total_pivots());
}

TEST(FlowTimeScheduler, EmitsReplanTraceEventsWithSolverStats) {
  obs::testing::ScopedRegistryReset reset;
  auto owned = std::make_unique<obs::MemorySink>();
  obs::MemorySink* sink = owned.get();
  obs::set_trace_sink(std::move(owned));

  const sim::SimConfig sim_config = small_cluster();
  sim::Simulator sim(sim_config);
  FlowTimeScheduler scheduler(flowtime_config(sim_config));
  sim.run(chain_scenario(), scheduler);
  const std::vector<std::string> lines = sink->lines();
  obs::clear_trace_sink();

  int replan_events = 0;
  bool saw_arrival_cause = false;
  for (const std::string& line : lines) {
    std::map<std::string, std::string> fields;
    ASSERT_TRUE(obs::parse_flat_json(line, &fields)) << line;
    if (fields.at("type") != "replan") continue;
    ++replan_events;
    ASSERT_TRUE(fields.count("cause"));
    ASSERT_TRUE(fields.count("pivots"));
    ASSERT_TRUE(fields.count("wall_s"));
    EXPECT_GE(std::stod(fields.at("wall_s")), 0.0);
    saw_arrival_cause |=
        fields.at("cause").find("arrival") != std::string::npos;
  }
  EXPECT_EQ(replan_events, scheduler.replans());
  EXPECT_TRUE(saw_arrival_cause);
}

}  // namespace
}  // namespace flowtime::core
