// Concurrent runtime tests (DESIGN.md §11): event-queue ordering and
// back-pressure, burst coalescing, sync pass-through identity, async+barrier
// determinism against the synchronous path, stale-solve discard with
// cancel-token preemption, and chaos sabotage under the async runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/flowtime_scheduler.h"
#include "dag/generators.h"
#include "obs/metrics.h"
#include "obs/testing.h"
#include "runtime/concurrent_scheduler.h"
#include "runtime/event_queue.h"
#include "runtime/solver_pool.h"
#include "sched/experiment.h"
#include "sim/simulator.h"
#include "workload/scenario_io.h"
#include "workload/trace_gen.h"

namespace flowtime {
namespace {

using workload::ResourceVec;

// ---------------------------------------------------------------------------
// EventQueue

sim::SchedulerEvent adhoc(sim::JobUid uid, double now_s) {
  return sim::AdhocArrivalEvent{uid, now_s, ResourceVec{1.0, 1.0}};
}

TEST(EventQueue, DrainPreservesFifoOrderAcrossKinds) {
  runtime::EventQueue queue(8);
  ASSERT_TRUE(queue.push(adhoc(7, 0.0)));
  ASSERT_TRUE(queue.push(sim::JobCompleteEvent{3, 10.0}));
  ASSERT_TRUE(queue.push(
      sim::CapacityChangeEvent{20.0, ResourceVec{100.0, 200.0}}));
  EXPECT_EQ(queue.depth(), 3u);

  std::vector<sim::SchedulerEvent> out;
  EXPECT_EQ(queue.drain(out), 3u);
  EXPECT_EQ(queue.depth(), 0u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_STREQ(sim::event_name(out[0]), "adhoc_arrival");
  EXPECT_STREQ(sim::event_name(out[1]), "job_complete");
  EXPECT_STREQ(sim::event_name(out[2]), "capacity_change");
  EXPECT_DOUBLE_EQ(sim::event_time(out[0]), 0.0);
  EXPECT_DOUBLE_EQ(sim::event_time(out[2]), 20.0);
}

TEST(EventQueue, FullQueueBlocksUntilDrained) {
  runtime::EventQueue queue(1);
  ASSERT_TRUE(queue.push(adhoc(0, 0.0)));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(adhoc(1, 1.0)));  // blocks: queue is full
    pushed.store(true);
  });
  std::vector<sim::SchedulerEvent> out;
  // Drain until both events came through; the producer unblocks on the
  // first drain's not_full notification.
  while (out.size() < 2u) queue.drain(out);
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(sim::event_time(out[0]), 0.0);
  EXPECT_DOUBLE_EQ(sim::event_time(out[1]), 1.0);
}

TEST(EventQueue, ConsumerThreadPushGrowsPastCapacityInsteadOfBlocking) {
  // The standard single-threaded setup makes the simulator thread both
  // sole producer and sole consumer; a blocking push from it could never
  // be drained. The constructing thread counts as the consumer, so these
  // pushes must exceed the bound rather than deadlock.
  runtime::EventQueue queue(2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.push(adhoc(i, static_cast<double>(i))));
  }
  EXPECT_EQ(queue.depth(), 5u);
  EXPECT_EQ(queue.overflows(), 3);

  std::vector<sim::SchedulerEvent> out;
  EXPECT_EQ(queue.drain(out), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(sim::event_time(out[static_cast<std::size_t>(i)]),
                     static_cast<double>(i));
  }
  // Draining re-binds the consumer to the draining thread: a push from a
  // different thread is back-pressured (blocks) once the queue refills.
  std::atomic<bool> pushed{false};
  ASSERT_TRUE(queue.push(adhoc(10, 10.0)));
  ASSERT_TRUE(queue.push(adhoc(11, 11.0)));
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(adhoc(12, 12.0)));  // blocks until the drain
    pushed.store(true);
  });
  out.clear();
  while (out.size() < 3u) queue.drain(out);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.overflows(), 3) << "cross-thread pushes never overflow";
}

TEST(EventQueue, CloseUnblocksProducersAndRejectsPushes) {
  runtime::EventQueue queue(1);
  ASSERT_TRUE(queue.push(adhoc(0, 0.0)));
  std::thread producer([&] {
    EXPECT_FALSE(queue.push(adhoc(1, 1.0)));  // blocked, then released
  });
  queue.close();
  producer.join();
  EXPECT_FALSE(queue.push(adhoc(2, 2.0)));
  // Already-queued events stay drainable after close.
  std::vector<sim::SchedulerEvent> out;
  EXPECT_EQ(queue.drain(out), 1u);
}

TEST(SolverPool, ShutdownRunsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    runtime::SolverPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor drains
  EXPECT_EQ(ran.load(), 16);
}

// ---------------------------------------------------------------------------
// Scenario helpers

sim::SimConfig small_cluster() {
  sim::SimConfig config;
  config.cluster.capacity = ResourceVec{100.0, 200.0};
  config.max_horizon_s = 6000.0;
  return config;
}

core::FlowTimeConfig flowtime_config(const sim::SimConfig& sim_config) {
  core::FlowTimeConfig config;
  config.cluster.capacity = sim_config.cluster.capacity;
  config.cluster.slot_seconds = sim_config.cluster.slot_seconds;
  return config;
}

workload::JobSpec simple_job(int tasks, double runtime) {
  workload::JobSpec job;
  job.name = "j";
  job.num_tasks = tasks;
  job.task.runtime_s = runtime;
  job.task.demand = ResourceVec{1.0, 2.0};
  return job;
}

workload::Workflow chain_workflow(int id, double start_s, double deadline_s) {
  workload::Workflow w;
  w.id = id;
  w.name = "w" + std::to_string(id);
  w.start_s = start_s;
  w.deadline_s = deadline_s;
  w.dag = dag::make_chain(2);
  w.jobs = {simple_job(10, 40.0), simple_job(8, 30.0)};
  return w;
}

workload::Scenario burst_scenario() {
  // Three workflows released at the same instant: their arrival events
  // land in one drained batch, so the async runtime must coalesce them
  // into a single re-plan.
  workload::Scenario scenario;
  scenario.workflows.push_back(chain_workflow(0, 0.0, 2400.0));
  scenario.workflows.push_back(chain_workflow(1, 0.0, 3000.0));
  scenario.workflows.push_back(chain_workflow(2, 0.0, 3600.0));
  workload::AdhocJob adhoc_job;
  adhoc_job.id = 0;
  adhoc_job.arrival_s = 100.0;
  adhoc_job.spec = simple_job(4, 20.0);
  adhoc_job.spec.name = "adhoc";
  scenario.adhoc_jobs.push_back(std::move(adhoc_job));
  return scenario;
}

// Everything that must agree between two runs for them to count as "the
// same schedule": completions, per-slot grants, and the re-plan history.
void expect_identical_runs(const sim::SimResult& a, const sim::SimResult& b,
                           const core::FlowTimeScheduler& sched_a,
                           const core::FlowTimeScheduler& sched_b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    ASSERT_EQ(a.jobs[i].completion_s.has_value(),
              b.jobs[i].completion_s.has_value())
        << "job " << i;
    if (a.jobs[i].completion_s) {
      EXPECT_DOUBLE_EQ(*a.jobs[i].completion_s, *b.jobs[i].completion_s)
          << "job " << i;
    }
  }
  ASSERT_EQ(a.allocated_per_slot.size(), b.allocated_per_slot.size());
  for (std::size_t t = 0; t < a.allocated_per_slot.size(); ++t) {
    for (int r = 0; r < workload::kNumResources; ++r) {
      EXPECT_DOUBLE_EQ(a.allocated_per_slot[t][r],
                       b.allocated_per_slot[t][r])
          << "slot " << t;
    }
  }
  EXPECT_EQ(sched_a.replans(), sched_b.replans());
  EXPECT_EQ(sched_a.replans_discarded(), sched_b.replans_discarded());
  EXPECT_EQ(sched_a.total_pivots(), sched_b.total_pivots());
  const auto& log_a = sched_a.replan_log();
  const auto& log_b = sched_b.replan_log();
  ASSERT_EQ(log_a.size(), log_b.size());
  for (std::size_t i = 0; i < log_a.size(); ++i) {
    EXPECT_EQ(log_a[i].slot, log_b[i].slot) << "replan " << i;
    EXPECT_EQ(log_a[i].causes, log_b[i].causes) << "replan " << i;
    EXPECT_EQ(log_a[i].planned_jobs, log_b[i].planned_jobs) << "replan " << i;
    EXPECT_EQ(log_a[i].pivots, log_b[i].pivots) << "replan " << i;
    EXPECT_EQ(log_a[i].degrade_rung, log_b[i].degrade_rung) << "replan " << i;
    EXPECT_FALSE(log_b[i].discarded) << "replan " << i;
  }
}

// ---------------------------------------------------------------------------
// ConcurrentScheduler: pass-through and determinism

TEST(ConcurrentScheduler, SyncModeIsPassThrough) {
  const sim::SimConfig sim_config = small_cluster();
  const workload::Scenario scenario = burst_scenario();

  core::FlowTimeScheduler bare(flowtime_config(sim_config));
  const sim::SimResult bare_result =
      sim::Simulator(sim_config).run(scenario, bare);

  runtime::RuntimeConfig rt;
  rt.flowtime = flowtime_config(sim_config);
  rt.async_replan = false;
  runtime::ConcurrentScheduler wrapped(rt);
  const sim::SimResult wrapped_result =
      sim::Simulator(sim_config).run(scenario, wrapped);

  EXPECT_EQ(wrapped.name(), bare.name());
  expect_identical_runs(bare_result, wrapped_result, bare, wrapped.inner());
  EXPECT_EQ(wrapped.async_solves(), 0);
  EXPECT_EQ(wrapped.coalesced_events(), 0);
}

TEST(ConcurrentScheduler, AsyncBarrierMatchesSyncPlanForPlan) {
  const sim::SimConfig sim_config = small_cluster();
  const workload::Scenario scenario = burst_scenario();

  core::FlowTimeScheduler bare(flowtime_config(sim_config));
  const sim::SimResult bare_result =
      sim::Simulator(sim_config).run(scenario, bare);

  runtime::RuntimeConfig rt;
  rt.flowtime = flowtime_config(sim_config);
  rt.async_replan = true;
  rt.barrier_mode = true;
  runtime::ConcurrentScheduler wrapped(rt);
  sim::SimResult wrapped_result =
      sim::Simulator(sim_config).run(scenario, wrapped);
  wrapped.drain_events();  // apply post-run completion events

  ASSERT_TRUE(bare_result.all_completed);
  ASSERT_TRUE(wrapped_result.all_completed);
  expect_identical_runs(bare_result, wrapped_result, bare, wrapped.inner());
  EXPECT_GT(wrapped.async_solves(), 0);
  EXPECT_EQ(wrapped.stale_solves(), 0)
      << "barrier mode never lets a solve go stale";
}

TEST(ConcurrentScheduler, FreeRunningAsyncHonoursTheSimulatorContract) {
  // Without the barrier the simulator fast-forwards slots in microseconds
  // while solves take milliseconds, so plans adopt late (possibly never) —
  // completion is NOT guaranteed here, unlike in barrier mode or real time.
  // What must hold regardless: the scheduler contract (capacity, width,
  // readiness) and a runtime that never deadlocks or crashes.
  const sim::SimConfig sim_config = small_cluster();
  const workload::Scenario scenario = burst_scenario();

  runtime::RuntimeConfig rt;
  rt.flowtime = flowtime_config(sim_config);
  rt.async_replan = true;
  runtime::ConcurrentScheduler wrapped(rt);
  const sim::SimResult result =
      sim::Simulator(sim_config).run(scenario, wrapped);
  EXPECT_EQ(result.capacity_violations, 0);
  EXPECT_EQ(result.width_violations, 0);
  EXPECT_EQ(result.not_ready_allocations, 0);
  EXPECT_GE(wrapped.async_solves(), 1);
}

TEST(ConcurrentScheduler, CoalescesArrivalBursts) {
  obs::testing::ScopedRegistryReset reset;
  obs::set_enabled(true);
  const sim::SimConfig sim_config = small_cluster();
  const workload::Scenario scenario = burst_scenario();

  runtime::RuntimeConfig rt;
  rt.flowtime = flowtime_config(sim_config);
  rt.async_replan = true;
  rt.barrier_mode = true;
  runtime::ConcurrentScheduler wrapped(rt);
  sim::Simulator(sim_config).run(scenario, wrapped);
  wrapped.drain_events();

  // The three simultaneous arrivals drain as one batch: two of the three
  // triggers ride along with the first one's re-plan.
  EXPECT_GE(wrapped.coalesced_events(), 2);
  EXPECT_EQ(
      obs::registry().counter("runtime.coalesced_events").value(),
      wrapped.coalesced_events());
  EXPECT_GT(obs::registry().counter("runtime.events_enqueued").value(), 0);
  EXPECT_EQ(obs::registry().counter("runtime.async_solves").value(),
            wrapped.async_solves());
}

TEST(ExperimentHarness, AsyncBarrierComparisonMatchesSync) {
  // The same wiring end users hit via flowtime_sim --async-replan
  // --async-barrier: run_comparison must produce the sync results.
  sched::ExperimentConfig config;
  config.sim.cluster.capacity = ResourceVec{100.0, 200.0};
  config.sim.max_horizon_s = 6000.0;
  config.flowtime.cluster = config.sim.cluster;
  config.schedulers = {"FlowTime"};
  const workload::Scenario scenario = burst_scenario();

  const auto sync_outcomes = sched::run_comparison(scenario, config);
  config.async_replan = true;
  config.async_barrier = true;
  const auto async_outcomes = sched::run_comparison(scenario, config);

  ASSERT_EQ(sync_outcomes.size(), 1u);
  ASSERT_EQ(async_outcomes.size(), 1u);
  EXPECT_EQ(async_outcomes[0].replans, sync_outcomes[0].replans);
  EXPECT_EQ(async_outcomes[0].pivots, sync_outcomes[0].pivots);
  EXPECT_EQ(async_outcomes[0].deadlines.jobs_missed,
            sync_outcomes[0].deadlines.jobs_missed);
  EXPECT_GE(async_outcomes[0].coalesced_events, 2);
  EXPECT_EQ(sync_outcomes[0].coalesced_events, 0);
}

// ---------------------------------------------------------------------------
// Stale-solve discard and preemption (deterministically gated solver)

/// Counting gate: the solver thread takes one permit per solve, so a test
/// decides exactly when each solve may run.
class SolveGate {
 public:
  void release(int permits) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      permits_ += permits;
    }
    cv_.notify_all();
  }
  void acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return permits_ > 0; });
    --permits_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int permits_ = 0;
};

sim::JobView view_for(const workload::Workflow& w, sim::JobUid uid,
                      double slot_seconds) {
  const workload::JobSpec& spec = w.jobs[0];
  sim::JobView view;
  view.uid = uid;
  view.kind = sim::JobKind::kDeadline;
  view.workflow_id = w.id;
  view.node = 0;
  view.arrival_s = w.start_s;
  view.remaining_estimate = spec.total_demand();
  view.width = workload::scale(spec.max_parallel_demand(), slot_seconds);
  view.container = workload::scale(spec.task.demand, slot_seconds);
  view.ready = true;
  return view;
}

workload::Workflow single_job_workflow(int id, double deadline_s) {
  workload::Workflow w;
  w.id = id;
  w.name = "w" + std::to_string(id);
  w.start_s = 0.0;
  w.deadline_s = deadline_s;
  w.dag = dag::make_chain(1);
  w.jobs = {simple_job(10, 40.0)};
  return w;
}

TEST(ConcurrentScheduler, StaleSolveIsPreemptedDiscardedAndRebased) {
  const double slot_s = 10.0;
  SolveGate gate;

  runtime::RuntimeConfig rt;
  rt.flowtime.cluster.capacity = ResourceVec{100.0, 200.0};
  rt.flowtime.cluster.slot_seconds = slot_s;
  rt.async_replan = true;
  rt.solve_started_hook = [&gate](const core::PendingReplan&) {
    gate.acquire();
  };
  runtime::ConcurrentScheduler sched(rt);

  const workload::Workflow wf_a = single_job_workflow(0, 600.0);
  const workload::Workflow wf_b = single_job_workflow(1, 900.0);
  const auto alias = [](const workload::Workflow& w) {
    return std::shared_ptr<const workload::Workflow>(
        std::shared_ptr<const workload::Workflow>(), &w);
  };

  sim::ClusterState state;
  state.slot = 0;
  state.now_s = 0.0;
  state.slot_seconds = slot_s;
  state.capacity = workload::scale(ResourceVec{100.0, 200.0}, slot_s);

  // Slot 0: workflow A arrives; the solve for it starts and blocks at the
  // gate. No plan exists yet, so nothing is allocated.
  sched.on_event(sim::WorkflowArrivalEvent{alias(wf_a), {0}, 0.0});
  state.active = {view_for(wf_a, 0, slot_s)};
  EXPECT_TRUE(sched.allocate(state).empty());
  ASSERT_EQ(sched.async_solves(), 1);

  // Slot 1: workflow B arrives while the solve is still held — the drain
  // bumps the epoch and fires the cancel token.
  sched.on_event(sim::WorkflowArrivalEvent{alias(wf_b), {1}, slot_s});
  state.slot = 1;
  state.now_s = slot_s;
  state.active = {view_for(wf_a, 0, slot_s), view_for(wf_b, 1, slot_s)};
  sched.allocate(state);

  // Release both the doomed solve and its re-based successor, then wait
  // for the runtime to settle.
  gate.release(2);
  sched.quiesce(state);

  EXPECT_EQ(sched.stale_solves(), 1);
  EXPECT_EQ(sched.preempted_solves(), 1)
      << "the cancel token must stop the stale solve before it solves";
  EXPECT_EQ(sched.async_solves(), 2);
  const auto& log = sched.inner().replan_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[0].discarded);
  EXPECT_FALSE(log[1].discarded);
  EXPECT_EQ(log[1].planned_jobs, 2) << "the re-based solve sees both jobs";
  EXPECT_FALSE(sched.inner().dirty());

  // With the plan adopted, slot 2 serves actual allocations.
  state.slot = 2;
  state.now_s = 2 * slot_s;
  EXPECT_FALSE(sched.allocate(state).empty());
}

TEST(ConcurrentScheduler, DiscardedSolveReassertsItsTrigger) {
  // The staleness-inducing event here is an ON-TIME completion: it bumps
  // the planner epoch (the planning set shrank) but marks nothing dirty.
  // When the solve for workflow B's arrival is discarded as stale, the
  // discard must put the arrival cause back and re-base a fresh solve —
  // otherwise B has no plan rows, planned_last_slot stays -1, and neither
  // kPlanExhausted nor kStalePlan can ever re-trigger: B starves.
  const double slot_s = 10.0;
  SolveGate gate;

  runtime::RuntimeConfig rt;
  rt.flowtime.cluster.capacity = ResourceVec{100.0, 200.0};
  rt.flowtime.cluster.slot_seconds = slot_s;
  // Every completion counts as on-time, so none marks kDeviation.
  rt.flowtime.replan_deviation_slots = 1000;
  rt.async_replan = true;
  rt.solve_started_hook = [&gate](const core::PendingReplan&) {
    gate.acquire();
  };
  runtime::ConcurrentScheduler sched(rt);

  const workload::Workflow wf_a = single_job_workflow(0, 600.0);
  const workload::Workflow wf_b = single_job_workflow(1, 900.0);
  const auto alias = [](const workload::Workflow& w) {
    return std::shared_ptr<const workload::Workflow>(
        std::shared_ptr<const workload::Workflow>(), &w);
  };

  sim::ClusterState state;
  state.slot = 0;
  state.now_s = 0.0;
  state.slot_seconds = slot_s;
  state.capacity = workload::scale(ResourceVec{100.0, 200.0}, slot_s);

  // Slot 0: workflow A arrives; its solve runs and is adopted.
  sched.on_event(sim::WorkflowArrivalEvent{alias(wf_a), {0}, 0.0});
  state.active = {view_for(wf_a, 0, slot_s)};
  sched.allocate(state);
  gate.release(1);
  sched.quiesce(state);
  ASSERT_EQ(sched.async_solves(), 1);
  ASSERT_EQ(sched.stale_solves(), 0);

  // Slot 1: workflow B arrives; its solve starts and is held at the gate.
  sched.on_event(sim::WorkflowArrivalEvent{alias(wf_b), {1}, slot_s});
  state.slot = 1;
  state.now_s = slot_s;
  state.active = {view_for(wf_a, 0, slot_s), view_for(wf_b, 1, slot_s)};
  sched.allocate(state);
  ASSERT_EQ(sched.async_solves(), 2);

  // Slot 2: A completes on time while B's solve is in flight. The drain
  // bumps the epoch without marking dirty, staling (and preempting) the
  // held solve.
  sched.on_event(sim::JobCompleteEvent{0, 2 * slot_s});
  state.slot = 2;
  state.now_s = 2 * slot_s;
  state.active = {view_for(wf_b, 1, slot_s)};
  sched.allocate(state);

  // Release the doomed solve and the re-based one the discard must cause.
  gate.release(2);
  sched.quiesce(state);

  EXPECT_EQ(sched.stale_solves(), 1);
  EXPECT_EQ(sched.preempted_solves(), 1);
  EXPECT_EQ(sched.async_solves(), 3)
      << "discarding the stale solve must re-assert the arrival trigger";
  EXPECT_FALSE(sched.inner().dirty());
  EXPECT_EQ(sched.inner().replans(), 2) << "two adopted plans";
  EXPECT_EQ(sched.inner().replans_discarded(), 1);
  const auto& log = sched.inner().replan_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_FALSE(log[0].discarded);
  EXPECT_TRUE(log[1].discarded);
  EXPECT_FALSE(log[2].discarded);
  EXPECT_TRUE(core::has_cause(log[2].causes,
                              core::ReplanCause::kWorkflowArrival))
      << "the re-based solve carries the discarded solve's causes";
  EXPECT_EQ(log[2].planned_jobs, 1) << "only B is left to plan";

  // With the re-based plan adopted, B is actually served.
  state.slot = 3;
  state.now_s = 3 * slot_s;
  EXPECT_FALSE(sched.allocate(state).empty());
}

// ---------------------------------------------------------------------------
// Chaos: solver sabotage through the async runtime

TEST(ConcurrentRuntimeChaos, SabotageCancellationAndLadderUnderAsync) {
  // fault_solver forces the rung-0 solve into a numerical failure while the
  // async runtime drives the ladder from a background thread; the run must
  // complete, degrade exactly as the sync path would, and recover.
  workload::ParseError error;
  auto parsed = workload::parse_scenario(
      "cluster cores=100 mem_gb=256 slot_seconds=10\n"
      "workflow id=0 name=wf start=0 deadline=600\n"
      "job node=0 name=crunch tasks=40 runtime=100 cores=1 mem=2\n"
      "end\n"
      "workflow id=1 name=late start=200 deadline=900\n"
      "job node=0 name=tail tasks=10 runtime=60 cores=1 mem=2\n"
      "end\n"
      "fault seed=1\n"
      "fault_solver slot=0 until=1 fail=1\n",
      &error);
  ASSERT_TRUE(parsed) << error.message;

  sim::SimConfig sim_config;
  sim_config.cluster.capacity = parsed->cluster->capacity;
  sim_config.cluster.slot_seconds = parsed->cluster->slot_seconds;
  sim_config.fault_plan = parsed->fault_plan;

  runtime::RuntimeConfig rt;
  rt.flowtime = flowtime_config(sim_config);
  rt.flowtime.degrade_recovery_replans = 1;
  rt.async_replan = true;
  rt.barrier_mode = true;
  runtime::ConcurrentScheduler sched(rt);
  const sim::SimResult result =
      sim::Simulator(sim_config).run(parsed->scenario, sched);
  sched.drain_events();

  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(result.faults.solver_sabotages, 1);
  EXPECT_GE(sched.inner().degraded_replans(), 1);
  EXPECT_FALSE(sched.inner().degraded_mode());
  ASSERT_FALSE(sched.inner().replan_log().empty());
  EXPECT_EQ(sched.inner().replan_log().front().degrade_rung, 1);
}

}  // namespace
}  // namespace flowtime
