// Tests for the observability layer: metrics registry semantics, trace
// event rendering, sink installation, and the flat-JSON parser the smoke
// targets rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace flowtime::obs {
namespace {

// Every test leaves the layer the way it found it: disabled, no sink.
class ObsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    clear_trace_sink();
    registry().reset();
  }
};

TEST_F(ObsTest, DisabledByDefaultAndToggles) {
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(false);
  EXPECT_FALSE(enabled());
}

TEST_F(ObsTest, CounterAccumulatesAndResets) {
  Counter& c = registry().counter("test.counter");
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST_F(ObsTest, RegistryReturnsStableHandles) {
  Counter& a = registry().counter("test.stable");
  a.add(7);
  Counter& b = registry().counter("test.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 7);
  // Distinct names get distinct metrics.
  EXPECT_NE(&a, &registry().counter("test.stable2"));
}

TEST_F(ObsTest, GaugeKeepsLastValue) {
  Gauge& g = registry().gauge("test.gauge");
  g.set(2.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST_F(ObsTest, HistogramStatisticsAreExact) {
  Histogram& h = registry().histogram("test.hist");
  for (const double v : {4.0, 1.0, 3.0, 2.0}) h.observe(v);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 4.0);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST_F(ObsTest, RegistryRenderListsMetrics) {
  registry().counter("test.render.count").add(3);
  registry().histogram("test.render.lat").observe(0.5);
  const std::string text = registry().render_text();
  EXPECT_NE(text.find("test.render.count"), std::string::npos);
  EXPECT_NE(text.find("test.render.lat"), std::string::npos);
}

TEST_F(ObsTest, ScopedTimerWritesElapsedAndHistogram) {
  Histogram& h = registry().histogram("test.timer");
  double elapsed = -1.0;
  {
    ScopedTimer timer(&elapsed, &h);
    EXPECT_GE(timer.elapsed_s(), 0.0);
  }
  EXPECT_GE(elapsed, 0.0);
  EXPECT_EQ(h.count(), 1);
}

TEST_F(ObsTest, TraceEventRendersFlatJson) {
  const std::string json = TraceEvent("unit")
                               .field("i", 7)
                               .field("d", 1.5)
                               .field("b", true)
                               .field("s", "x\"y\n")
                               .to_json();
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(parse_flat_json(json, &fields));
  EXPECT_EQ(fields.at("type"), "unit");
  EXPECT_EQ(fields.at("i"), "7");
  EXPECT_EQ(fields.at("d"), "1.5");
  EXPECT_EQ(fields.at("b"), "true");
  EXPECT_EQ(fields.at("s"), "x\"y\n");  // round-trips through escaping
}

TEST_F(ObsTest, TraceEventStringifiesNonFiniteNumbers) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::string json = TraceEvent("unit")
                               .field("pos", inf)
                               .field("neg", -inf)
                               .field("nan", std::nan(""))
                               .to_json();
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(parse_flat_json(json, &fields));
  EXPECT_EQ(fields.at("pos"), "inf");
  EXPECT_EQ(fields.at("neg"), "-inf");
  EXPECT_EQ(fields.at("nan"), "nan");
}

TEST_F(ObsTest, SinkInstallationEnablesLayerAndReceivesEvents) {
  auto owned = std::make_unique<MemorySink>();
  MemorySink* sink = owned.get();
  set_trace_sink(std::move(owned));
  EXPECT_TRUE(enabled());
  emit(TraceEvent("first").field("k", 1));
  emit(TraceEvent("second").field("k", 2));
  ASSERT_EQ(sink->lines().size(), 2u);
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(parse_flat_json(sink->lines()[1], &fields));
  EXPECT_EQ(fields.at("type"), "second");

  clear_trace_sink();
  EXPECT_FALSE(enabled());
  EXPECT_EQ(trace_sink(), nullptr);
  emit(TraceEvent("dropped"));  // no sink: silently discarded
}

TEST_F(ObsTest, ParserRejectsMalformedLines) {
  std::map<std::string, std::string> fields;
  EXPECT_FALSE(parse_flat_json("", &fields));
  EXPECT_FALSE(parse_flat_json("{\"a\":1", &fields));           // unterminated
  EXPECT_FALSE(parse_flat_json("{\"a\":{\"b\":1}}", &fields));  // nested
  EXPECT_FALSE(parse_flat_json("{\"a\":[1]}", &fields));        // array
  EXPECT_FALSE(parse_flat_json("{\"a\":1} trailing", &fields));
  EXPECT_FALSE(parse_flat_json("{\"a\":12x}", &fields));  // bad number
  EXPECT_TRUE(parse_flat_json("{}", &fields));
  EXPECT_TRUE(fields.empty());
  EXPECT_TRUE(parse_flat_json("{\"a\":-1e-3,\"b\":null}", &fields));
  EXPECT_EQ(fields.at("b"), "null");
}

}  // namespace
}  // namespace flowtime::obs
