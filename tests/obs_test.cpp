// Tests for the observability layer: metrics registry semantics, trace
// event rendering, sink installation, the flat-JSON parser the smoke
// targets rely on, lifecycle spans, and the Chrome/Prometheus exporters.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/testing.h"
#include "obs/trace.h"

namespace flowtime::obs {
namespace {

// Every test starts from and leaves behind a pristine obs layer: disabled,
// no sink, empty registry, no open spans, no tracked deadlines.
class ObsTest : public ::testing::Test {
 protected:
  testing::ScopedRegistryReset reset_;
};

TEST_F(ObsTest, DisabledByDefaultAndToggles) {
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(false);
  EXPECT_FALSE(enabled());
}

TEST_F(ObsTest, CounterAccumulatesAndResets) {
  Counter& c = registry().counter("test.counter");
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST_F(ObsTest, RegistryReturnsStableHandles) {
  Counter& a = registry().counter("test.stable");
  a.add(7);
  Counter& b = registry().counter("test.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 7);
  // Distinct names get distinct metrics.
  EXPECT_NE(&a, &registry().counter("test.stable2"));
}

TEST_F(ObsTest, GaugeKeepsLastValue) {
  Gauge& g = registry().gauge("test.gauge");
  g.set(2.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST_F(ObsTest, HistogramStatisticsAreExact) {
  Histogram& h = registry().histogram("test.hist");
  for (const double v : {4.0, 1.0, 3.0, 2.0}) h.observe(v);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 4.0);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST_F(ObsTest, RegistryRenderListsMetrics) {
  registry().counter("test.render.count").add(3);
  registry().histogram("test.render.lat").observe(0.5);
  const std::string text = registry().render_text();
  EXPECT_NE(text.find("test.render.count"), std::string::npos);
  EXPECT_NE(text.find("test.render.lat"), std::string::npos);
}

TEST_F(ObsTest, ScopedTimerWritesElapsedAndHistogram) {
  Histogram& h = registry().histogram("test.timer");
  double elapsed = -1.0;
  {
    ScopedTimer timer(&elapsed, &h);
    EXPECT_GE(timer.elapsed_s(), 0.0);
  }
  EXPECT_GE(elapsed, 0.0);
  EXPECT_EQ(h.count(), 1);
}

TEST_F(ObsTest, TraceEventRendersFlatJson) {
  const std::string json = TraceEvent("unit")
                               .field("i", 7)
                               .field("d", 1.5)
                               .field("b", true)
                               .field("s", "x\"y\n")
                               .to_json();
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(parse_flat_json(json, &fields));
  EXPECT_EQ(fields.at("type"), "unit");
  EXPECT_EQ(fields.at("i"), "7");
  EXPECT_EQ(fields.at("d"), "1.5");
  EXPECT_EQ(fields.at("b"), "true");
  EXPECT_EQ(fields.at("s"), "x\"y\n");  // round-trips through escaping
}

TEST_F(ObsTest, TraceEventStringifiesNonFiniteNumbers) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::string json = TraceEvent("unit")
                               .field("pos", inf)
                               .field("neg", -inf)
                               .field("nan", std::nan(""))
                               .to_json();
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(parse_flat_json(json, &fields));
  EXPECT_EQ(fields.at("pos"), "inf");
  EXPECT_EQ(fields.at("neg"), "-inf");
  EXPECT_EQ(fields.at("nan"), "nan");
}

TEST_F(ObsTest, SinkInstallationEnablesLayerAndReceivesEvents) {
  auto owned = std::make_unique<MemorySink>();
  MemorySink* sink = owned.get();
  set_trace_sink(std::move(owned));
  EXPECT_TRUE(enabled());
  emit(TraceEvent("first").field("k", 1));
  emit(TraceEvent("second").field("k", 2));
  ASSERT_EQ(sink->lines().size(), 2u);
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(parse_flat_json(sink->lines()[1], &fields));
  EXPECT_EQ(fields.at("type"), "second");

  clear_trace_sink();
  EXPECT_FALSE(enabled());
  EXPECT_EQ(trace_sink(), nullptr);
  emit(TraceEvent("dropped"));  // no sink: silently discarded
}

TEST_F(ObsTest, ParserRejectsMalformedLines) {
  std::map<std::string, std::string> fields;
  EXPECT_FALSE(parse_flat_json("", &fields));
  EXPECT_FALSE(parse_flat_json("{\"a\":1", &fields));           // unterminated
  EXPECT_FALSE(parse_flat_json("{\"a\":{\"b\":1}}", &fields));  // nested
  EXPECT_FALSE(parse_flat_json("{\"a\":[1]}", &fields));        // array
  EXPECT_FALSE(parse_flat_json("{\"a\":1} trailing", &fields));
  EXPECT_FALSE(parse_flat_json("{\"a\":12x}", &fields));  // bad number
  EXPECT_TRUE(parse_flat_json("{}", &fields));
  EXPECT_TRUE(fields.empty());
  EXPECT_TRUE(parse_flat_json("{\"a\":-1e-3,\"b\":null}", &fields));
  EXPECT_EQ(fields.at("b"), "null");
}

TEST_F(ObsTest, SpansRequireSinkAndPairBeginEnd) {
  // Without a sink the layer is inert: no ids, no open spans.
  EXPECT_EQ(begin_span("workflow", "w", kNoSpan, 0.0), kNoSpan);
  EXPECT_EQ(open_span_count(), 0);

  auto owned = std::make_unique<MemorySink>();
  MemorySink* sink = owned.get();
  set_trace_sink(std::move(owned));
  SpanMeta meta;
  meta.workflow_id = 7;
  meta.deadline_s = 100.0;
  const SpanId wf = begin_span("workflow", "w", kNoSpan, 0.0, meta);
  const SpanId job = begin_span("job", "w/j", wf, 10.0);
  EXPECT_NE(wf, kNoSpan);
  EXPECT_NE(job, kNoSpan);
  EXPECT_EQ(open_span_count(), 2);
  end_span(job, 20.0);
  end_span(job, 25.0);  // double-end: ignored
  end_span(wf, 30.0);
  EXPECT_EQ(open_span_count(), 0);

  ASSERT_EQ(sink->lines().size(), 4u);  // 2 begins + 2 ends
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(parse_flat_json(sink->lines()[0], &fields));
  EXPECT_EQ(fields.at("type"), "span_begin");
  EXPECT_EQ(fields.at("kind"), "workflow");
  EXPECT_EQ(fields.at("workflow"), "7");
  ASSERT_TRUE(parse_flat_json(sink->lines()[1], &fields));
  EXPECT_EQ(fields.at("parent"), std::to_string(wf));
  ASSERT_TRUE(parse_flat_json(sink->lines()[2], &fields));
  EXPECT_EQ(fields.at("type"), "span_end");
  EXPECT_EQ(fields.at("span"), std::to_string(job));
}

TEST_F(ObsTest, EndOpenSpansClosesChildrenBeforeParents) {
  auto owned = std::make_unique<MemorySink>();
  MemorySink* sink = owned.get();
  set_trace_sink(std::move(owned));
  const SpanId wf = begin_span("workflow", "w", kNoSpan, 0.0);
  const SpanId job = begin_span("job", "w/j", wf, 0.0);
  end_open_spans(50.0);
  EXPECT_EQ(open_span_count(), 0);
  ASSERT_EQ(sink->lines().size(), 4u);
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(parse_flat_json(sink->lines()[2], &fields));
  EXPECT_EQ(fields.at("span"), std::to_string(job));  // child first
  ASSERT_TRUE(parse_flat_json(sink->lines()[3], &fields));
  EXPECT_EQ(fields.at("span"), std::to_string(wf));
  EXPECT_EQ(fields.at("sim_s"), "50");
}

TEST_F(ObsTest, ChromeTraceProjectsSpanHierarchy) {
  auto owned = std::make_unique<MemorySink>();
  MemorySink* sink = owned.get();
  set_trace_sink(std::move(owned));
  SpanMeta meta;
  meta.workflow_id = 3;
  const SpanId wf = begin_span("workflow", "etl", kNoSpan, 0.0, meta);
  const SpanId job = begin_span("job", "etl/extract", wf, 0.0, meta);
  const SpanId run = begin_span("placement", "etl/extract", job, 10.0, meta);
  begin_span("plan", "plan#1", kNoSpan, 0.0);
  end_span(run, 40.0);
  end_span(job, 40.0);
  end_span(wf, 60.0);
  end_open_spans(60.0);
  emit(TraceEvent("replan").field("cause", "arrival").field("now_s", 0.0));

  std::vector<std::map<std::string, std::string>> events;
  for (const std::string& line : sink->lines()) {
    std::map<std::string, std::string> fields;
    ASSERT_TRUE(parse_flat_json(line, &fields));
    events.push_back(std::move(fields));
  }
  const std::string json = render_chrome_trace(events);
  // Workflow gets its own pid with the slice on tid 0; the job gets its
  // own tid and the placement inherits it; the plan span lands on pid 0.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"etl\",\"cat\":\"workflow\",\"ts\":0,"
                      "\"dur\":60000000,\"pid\":1,\"tid\":0"),
            std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"job\",\"ts\":0,\"dur\":40000000,"
                      "\"pid\":1,\"tid\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"placement\",\"ts\":10000000,"
                      "\"dur\":30000000,\"pid\":1,\"tid\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"plan\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"replan(arrival)\""), std::string::npos);
}

TEST_F(ObsTest, PrometheusRendersAllMetricKinds) {
  registry().counter("core.replans").add(3);
  registry().gauge("obs.deadline.min_laxity_s").set(-2.5);
  Histogram& h = registry().histogram("lp.simplex.solve_seconds");
  h.observe(0.1);
  h.observe(0.3);
  const std::string text = render_prometheus(registry().snapshot());
  EXPECT_NE(text.find("# TYPE flowtime_core_replans_total counter\n"
                      "flowtime_core_replans_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE flowtime_obs_deadline_min_laxity_s gauge\n"
                      "flowtime_obs_deadline_min_laxity_s -2.5"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE flowtime_lp_simplex_solve_seconds summary"),
            std::string::npos);
  EXPECT_NE(text.find("flowtime_lp_simplex_solve_seconds{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("flowtime_lp_simplex_solve_seconds_count 2"),
            std::string::npos);
}

}  // namespace
}  // namespace flowtime::obs
