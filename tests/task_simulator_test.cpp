// Tests for the task-level (non-preemptive) simulator and its relationship
// to the fluid model.
#include <gtest/gtest.h>

#include "core/flowtime_scheduler.h"
#include "dag/generators.h"
#include "sched/baselines.h"
#include "sim/metrics.h"
#include "sim/task_simulator.h"

namespace flowtime::sim {
namespace {

using workload::ResourceVec;

workload::JobSpec simple_job(int tasks, double runtime, double cpu,
                             double mem) {
  workload::JobSpec job;
  job.name = "j";
  job.num_tasks = tasks;
  job.task.runtime_s = runtime;
  job.task.demand = ResourceVec{cpu, mem};
  return job;
}

class FullWidthScheduler : public Scheduler {
 public:
  std::string name() const override { return "full-width"; }
  std::vector<Allocation> allocate(const ClusterState& state) override {
    std::vector<Allocation> out;
    for (const JobView& view : state.active) {
      if (view.ready) out.push_back(Allocation{view.uid, view.width});
    }
    return out;
  }
};

workload::Scenario chain_scenario() {
  workload::Scenario scenario;
  workload::Workflow w;
  w.id = 0;
  w.name = "w";
  w.start_s = 0.0;
  w.deadline_s = 2000.0;
  w.dag = dag::make_chain(2);
  w.jobs = {simple_job(4, 30.0, 1.0, 2.0), simple_job(2, 20.0, 1.0, 2.0)};
  scenario.workflows.push_back(std::move(w));
  return scenario;
}

TEST(TaskSimulator, MatchesFluidTimingWhenTasksFitSlots) {
  TaskSimConfig config;
  config.cluster.capacity = ResourceVec{100.0, 200.0};
  TaskLevelSimulator sim(config);
  FullWidthScheduler scheduler;
  const SimResult result = sim.run(chain_scenario(), scheduler);
  ASSERT_TRUE(result.all_completed);
  // Job 0: 4 tasks of 30 s -> 3 slots each, all in parallel -> done at 30.
  EXPECT_DOUBLE_EQ(result.jobs[0].completion_s.value(), 30.0);
  // Job 1: 2 tasks of 20 s -> 2 slots -> done at 50.
  EXPECT_DOUBLE_EQ(result.jobs[1].completion_s.value(), 50.0);
}

TEST(TaskSimulator, TaskWavesWhenClusterIsNarrow) {
  // 4 tasks of 1 core on a 2-core cluster: 2 waves of 3 slots each.
  workload::Scenario scenario;
  workload::Workflow w;
  w.id = 0;
  w.name = "w";
  w.start_s = 0.0;
  w.deadline_s = 2000.0;
  w.dag = dag::make_chain(1);
  w.jobs = {simple_job(4, 30.0, 1.0, 1.0)};
  scenario.workflows.push_back(std::move(w));

  TaskSimConfig config;
  config.cluster.capacity = ResourceVec{2.0, 4.0};
  TaskLevelSimulator sim(config);
  FullWidthScheduler scheduler;
  const SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  EXPECT_DOUBLE_EQ(result.jobs[0].completion_s.value(), 60.0);
}

TEST(TaskSimulator, NonPreemption_RunningTasksOutliveShrinkingGrants) {
  // A scheduler that grants everything in slot 0 and nothing afterwards:
  // tasks started in slot 0 still run to completion.
  class OneShotScheduler : public Scheduler {
   public:
    std::string name() const override { return "one-shot"; }
    std::vector<Allocation> allocate(const ClusterState& state) override {
      std::vector<Allocation> out;
      if (state.slot != 0) return out;
      for (const JobView& view : state.active) {
        if (view.ready) out.push_back(Allocation{view.uid, view.width});
      }
      return out;
    }
  };
  workload::Scenario scenario;
  workload::Workflow w;
  w.id = 0;
  w.name = "w";
  w.start_s = 0.0;
  w.deadline_s = 2000.0;
  w.dag = dag::make_chain(1);
  w.jobs = {simple_job(3, 40.0, 1.0, 1.0)};  // 4-slot tasks
  scenario.workflows.push_back(std::move(w));

  TaskSimConfig config;
  config.cluster.capacity = ResourceVec{10.0, 20.0};
  config.max_horizon_s = 600.0;
  TaskLevelSimulator sim(config);
  OneShotScheduler scheduler;
  const SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  EXPECT_DOUBLE_EQ(result.jobs[0].completion_s.value(), 40.0);
  // Occupancy persisted over all four slots despite zero grants after 0.
  for (int t = 0; t < 4; ++t) {
    EXPECT_GT(result.used_per_slot[static_cast<std::size_t>(t)][0], 0.0);
  }
}

TEST(TaskSimulator, RespectsDagPrecedence) {
  TaskSimConfig config;
  config.cluster.capacity = ResourceVec{100.0, 200.0};
  TaskLevelSimulator sim(config);
  FullWidthScheduler scheduler;
  const SimResult result = sim.run(chain_scenario(), scheduler);
  ASSERT_TRUE(result.all_completed);
  EXPECT_GE(result.jobs[1].completion_s.value() -
                result.jobs[0].completion_s.value(),
            20.0 - 1e-9);
}

TEST(TaskSimulator, UnderEstimatedTasksRunLonger) {
  workload::Scenario scenario = chain_scenario();
  scenario.workflows[0].jobs[0].actual_runtime_factor = 2.0;  // 30 -> 60 s
  TaskSimConfig config;
  config.cluster.capacity = ResourceVec{100.0, 200.0};
  TaskLevelSimulator sim(config);
  FullWidthScheduler scheduler;
  const SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  EXPECT_DOUBLE_EQ(result.jobs[0].completion_s.value(), 60.0);
}

TEST(TaskSimulator, FlowTimeMeetsDeadlinesAtTaskGranularity) {
  TaskSimConfig config;
  config.cluster.capacity = ResourceVec{50.0, 100.0};
  config.max_horizon_s = 2.0 * 3600.0;
  core::FlowTimeConfig flowtime;
  flowtime.cluster.capacity = config.cluster.capacity;
  flowtime.cluster.slot_seconds = config.cluster.slot_seconds;
  flowtime.round_to_containers = true;  // task grants are container-shaped

  workload::Scenario scenario;
  workload::Workflow w;
  w.id = 0;
  w.name = "w";
  w.start_s = 0.0;
  w.deadline_s = 2400.0;
  w.dag = dag::make_fork_join(3);
  w.jobs.assign(5, simple_job(8, 50.0, 1.0, 2.0));
  scenario.workflows.push_back(std::move(w));

  TaskLevelSimulator sim(config);
  core::FlowTimeScheduler scheduler(flowtime);
  const SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  const DeadlineReport report = evaluate_deadlines(
      result, scenario.workflows,
      JobDeadlines(scheduler.job_deadlines().begin(),
                   scheduler.job_deadlines().end()));
  EXPECT_EQ(report.jobs_missed, 0);
}

TEST(TaskSimulator, BaselinesCompleteWithAdhocMix) {
  workload::Scenario scenario = chain_scenario();
  workload::AdhocJob adhoc;
  adhoc.id = 0;
  adhoc.arrival_s = 10.0;
  adhoc.spec = simple_job(2, 25.0, 1.0, 1.0);
  adhoc.spec.name = "adhoc";
  scenario.adhoc_jobs.push_back(adhoc);

  TaskSimConfig config;
  config.cluster.capacity = ResourceVec{50.0, 100.0};
  TaskLevelSimulator sim(config);
  sched::FairScheduler fair;
  EXPECT_TRUE(sim.run(scenario, fair).all_completed);
  sched::EdfScheduler edf;
  EXPECT_TRUE(sim.run(scenario, edf).all_completed);
  sched::FifoScheduler fifo;
  EXPECT_TRUE(sim.run(scenario, fifo).all_completed);
}

TEST(TaskSimulator, HorizonExpiryReported) {
  TaskSimConfig config;
  config.cluster.capacity = ResourceVec{100.0, 200.0};
  config.max_horizon_s = 20.0;
  TaskLevelSimulator sim(config);
  FullWidthScheduler scheduler;
  const SimResult result = sim.run(chain_scenario(), scheduler);
  EXPECT_FALSE(result.all_completed);
}

}  // namespace
}  // namespace flowtime::sim
