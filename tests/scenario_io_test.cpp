// Tests for the scenario file parser/writer: happy path, every error
// branch, and write->parse round-trips.
#include <gtest/gtest.h>

#include "dag/generators.h"
#include "util/rng.h"
#include "workload/scenario_io.h"
#include "workload/trace_gen.h"

namespace flowtime::workload {
namespace {

constexpr const char* kValid = R"(
# comment
cluster cores=100 mem_gb=256 slot_seconds=5

workflow id=3 name=etl start=10 deadline=1800
job node=0 name=extract tasks=20 runtime=60 cores=1 mem=2
job node=1 name=clean tasks=40 runtime=45 cores=1 mem=2 error=1.2
edge 0 1
end

adhoc id=0 name=q arrival=120 tasks=8 runtime=30 cores=1 mem=1
)";

TEST(ScenarioIo, ParsesValidFile) {
  ParseError error;
  const auto parsed = parse_scenario(std::string(kValid), &error);
  ASSERT_TRUE(parsed.has_value()) << error.message;
  ASSERT_TRUE(parsed->cluster.has_value());
  EXPECT_DOUBLE_EQ(parsed->cluster->capacity[kCpu], 100.0);
  EXPECT_DOUBLE_EQ(parsed->cluster->capacity[kMemory], 256.0);
  EXPECT_DOUBLE_EQ(parsed->cluster->slot_seconds, 5.0);

  ASSERT_EQ(parsed->scenario.workflows.size(), 1u);
  const Workflow& w = parsed->scenario.workflows[0];
  EXPECT_EQ(w.id, 3);
  EXPECT_EQ(w.name, "etl");
  EXPECT_DOUBLE_EQ(w.start_s, 10.0);
  EXPECT_DOUBLE_EQ(w.deadline_s, 1800.0);
  ASSERT_EQ(w.jobs.size(), 2u);
  EXPECT_EQ(w.jobs[0].name, "extract");
  EXPECT_EQ(w.jobs[0].num_tasks, 20);
  EXPECT_DOUBLE_EQ(w.jobs[1].actual_runtime_factor, 1.2);
  EXPECT_TRUE(w.dag.has_edge(0, 1));

  ASSERT_EQ(parsed->scenario.adhoc_jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed->scenario.adhoc_jobs[0].arrival_s, 120.0);
}

TEST(ScenarioIo, ClusterLineIsOptional) {
  ParseError error;
  const auto parsed = parse_scenario(
      std::string("adhoc id=0 arrival=0 tasks=1 runtime=10 cores=1 mem=1\n"),
      &error);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->cluster.has_value());
}

struct ErrorCase {
  const char* name;
  const char* text;
  const char* expected_fragment;
};

class ScenarioIoErrors : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(ScenarioIoErrors, ReportsLineAndMessage) {
  ParseError error;
  const auto parsed = parse_scenario(std::string(GetParam().text), &error);
  EXPECT_FALSE(parsed.has_value());
  EXPECT_GE(error.line, 0);
  EXPECT_NE(error.message.find(GetParam().expected_fragment),
            std::string::npos)
      << "actual message: " << error.message;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ScenarioIoErrors,
    ::testing::Values(
        ErrorCase{"unknown", "frobnicate a=1\n", "unknown directive"},
        ErrorCase{"badfield", "cluster cores\n", "expected key=value"},
        ErrorCase{"missing", "cluster cores=5\n", "missing field"},
        ErrorCase{"notnum", "cluster cores=x mem_gb=1\n", "not a number"},
        ErrorCase{"joboutside",
                  "job node=0 tasks=1 runtime=1 cores=1 mem=1\n",
                  "outside a workflow"},
        ErrorCase{"edgeoutside", "edge 0 1\n", "outside a workflow"},
        ErrorCase{"endoutside", "end\n", "'end' without"},
        ErrorCase{"unclosed",
                  "workflow id=0 start=0 deadline=10\n"
                  "job node=0 tasks=1 runtime=1 cores=1 mem=1\n",
                  "ended inside"},
        ErrorCase{"nojobs", "workflow id=0 start=0 deadline=10\nend\n",
                  "no jobs"},
        ErrorCase{"sparse",
                  "workflow id=0 start=0 deadline=10\n"
                  "job node=1 tasks=1 runtime=1 cores=1 mem=1\nend\n",
                  "densely"},
        ErrorCase{"dupnode",
                  "workflow id=0 start=0 deadline=10\n"
                  "job node=0 tasks=1 runtime=1 cores=1 mem=1\n"
                  "job node=0 tasks=1 runtime=1 cores=1 mem=1\nend\n",
                  "duplicate job node"},
        ErrorCase{"badedge",
                  "workflow id=0 start=0 deadline=100\n"
                  "job node=0 tasks=1 runtime=1 cores=1 mem=1\n"
                  "edge 0 5\nend\n",
                  "unknown node"},
        ErrorCase{"cycle",
                  "workflow id=0 start=0 deadline=100\n"
                  "job node=0 tasks=1 runtime=1 cores=1 mem=1\n"
                  "job node=1 tasks=1 runtime=1 cores=1 mem=1\n"
                  "edge 0 1\nedge 1 0\nend\n",
                  "invalid"},
        ErrorCase{"nested",
                  "workflow id=0 start=0 deadline=10\n"
                  "workflow id=1 start=0 deadline=10\n",
                  "not closed"},
        // Numeric hardening: non-finite, negative, and zero values that
        // strtod parses happily but no directive can mean.
        ErrorCase{"nancores", "cluster cores=nan mem_gb=1\n", "not finite"},
        ErrorCase{"infruntime",
                  "workflow id=0 start=0 deadline=10\n"
                  "job node=0 tasks=1 runtime=inf cores=1 mem=1\nend\n",
                  "not finite"},
        ErrorCase{"zerocores", "cluster cores=0 mem_gb=1\n", "must be > 0"},
        ErrorCase{"negslot",
                  "cluster cores=1 mem_gb=1 slot_seconds=-5\n",
                  "must be > 0"},
        ErrorCase{"negruntime",
                  "workflow id=0 start=0 deadline=10\n"
                  "job node=0 tasks=1 runtime=-1 cores=1 mem=1\nend\n",
                  "must be >= 0"},
        ErrorCase{"negdemand",
                  "workflow id=0 start=0 deadline=10\n"
                  "job node=0 tasks=1 runtime=1 cores=-2 mem=1\nend\n",
                  "must be >= 0"},
        ErrorCase{"zerotasks",
                  "workflow id=0 start=0 deadline=10\n"
                  "job node=0 tasks=0 runtime=1 cores=1 mem=1\nend\n",
                  "at least one task"},
        ErrorCase{"negdeadline",
                  "workflow id=0 start=0 deadline=-10\n"
                  "job node=0 tasks=1 runtime=1 cores=1 mem=1\nend\n",
                  "must be >= 0"},
        ErrorCase{"deadlinebeforestart",
                  "workflow id=0 start=50 deadline=50\n"
                  "job node=0 tasks=1 runtime=1 cores=1 mem=1\nend\n",
                  "after its start"},
        ErrorCase{"negarrival",
                  "adhoc id=0 arrival=-3 tasks=1 runtime=1 cores=1 mem=1\n",
                  "must be >= 0"},
        ErrorCase{"adhoczerotasks",
                  "adhoc id=0 arrival=0 tasks=0 runtime=1 cores=1 mem=1\n",
                  "at least one task"},
        ErrorCase{"negsolverslot", "fault seed=1\nfault_solver slot=-1\n",
                  "must be >= 0"}));

TEST(ScenarioIo, BadInputReportsTheOffendingLineNumber) {
  // The invalid job sits on line 4 (line numbers are 1-based and count the
  // leading comment and blank line).
  ParseError error;
  const auto parsed = parse_scenario(
      "# header\n"
      "cluster cores=10 mem_gb=10\n"
      "workflow id=0 start=0 deadline=100\n"
      "job node=0 tasks=1 runtime=nan cores=1 mem=1\n"
      "end\n",
      &error);
  EXPECT_FALSE(parsed.has_value());
  EXPECT_EQ(error.line, 4) << error.message;
  EXPECT_NE(error.message.find("not finite"), std::string::npos);
}

TEST(ScenarioIo, MissingFileReportsError) {
  ParseError error;
  const auto parsed =
      load_scenario_file("/nonexistent/path.scn", &error);
  EXPECT_FALSE(parsed.has_value());
  EXPECT_NE(error.message.find("cannot open"), std::string::npos);
}

TEST(ScenarioIo, RoundTripsGeneratedScenarios) {
  const Scenario original = make_fig4_scenario(5);
  ScenarioCluster cluster;
  cluster.capacity = ResourceVec{500.0, 1024.0};
  const std::string text = write_scenario(original, cluster);

  ParseError error;
  const auto parsed = parse_scenario(text, &error);
  ASSERT_TRUE(parsed.has_value()) << "line " << error.line << ": "
                                  << error.message;
  ASSERT_EQ(parsed->scenario.workflows.size(), original.workflows.size());
  ASSERT_EQ(parsed->scenario.adhoc_jobs.size(), original.adhoc_jobs.size());
  for (std::size_t i = 0; i < original.workflows.size(); ++i) {
    const Workflow& a = original.workflows[i];
    const Workflow& b = parsed->scenario.workflows[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.dag.num_nodes(), b.dag.num_nodes());
    EXPECT_EQ(a.dag.num_edges(), b.dag.num_edges());
    EXPECT_NEAR(a.deadline_s, b.deadline_s, 1e-3);
    for (dag::NodeId v = 0; v < a.dag.num_nodes(); ++v) {
      EXPECT_EQ(a.jobs[static_cast<std::size_t>(v)].num_tasks,
                b.jobs[static_cast<std::size_t>(v)].num_tasks);
      EXPECT_EQ(a.dag.children(v), b.dag.children(v));
    }
  }
  for (std::size_t i = 0; i < original.adhoc_jobs.size(); ++i) {
    EXPECT_NEAR(original.adhoc_jobs[i].arrival_s,
                parsed->scenario.adhoc_jobs[i].arrival_s, 1e-3);
  }
}

TEST(ScenarioIo, RoundTripPreservesErrorFactors) {
  Scenario scenario;
  Workflow w;
  w.id = 0;
  w.name = "w";
  w.start_s = 0.0;
  w.deadline_s = 100.0;
  w.dag = dag::make_chain(1);
  JobSpec job;
  job.name = "j";
  job.num_tasks = 3;
  job.task.runtime_s = 10.0;
  job.task.demand = ResourceVec{1.0, 2.0};
  job.actual_runtime_factor = 1.3;
  w.jobs = {job};
  scenario.workflows.push_back(std::move(w));

  ParseError error;
  const auto parsed =
      parse_scenario(write_scenario(scenario, std::nullopt), &error);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_NEAR(parsed->scenario.workflows[0].jobs[0].actual_runtime_factor,
              1.3, 1e-9);
}

TEST(ScenarioIo, FaultSolverDirectiveRoundTrips) {
  ParseError error;
  const auto parsed = parse_scenario(
      "cluster cores=10 mem_gb=10\n"
      "adhoc id=0 arrival=0 tasks=1 runtime=10 cores=1 mem=1\n"
      "fault seed=7\n"
      "fault_solver slot=5 until=9 budget_ms=0.5 pivots=40 fail=1\n"
      "fault_solver slot=20\n",
      &error);
  ASSERT_TRUE(parsed.has_value()) << "line " << error.line << ": "
                                  << error.message;
  ASSERT_EQ(parsed->fault_plan.solver_faults.size(), 2u);
  const fault::SolverFault& first = parsed->fault_plan.solver_faults[0];
  EXPECT_EQ(first.slot, 5);
  EXPECT_EQ(first.until_slot, 9);
  EXPECT_DOUBLE_EQ(first.budget_ms, 0.5);
  EXPECT_EQ(first.pivot_cap, 40);
  EXPECT_TRUE(first.force_numerical_failure);
  const fault::SolverFault& second = parsed->fault_plan.solver_faults[1];
  EXPECT_EQ(second.slot, 20);
  EXPECT_EQ(second.until_slot, -1);
  EXPECT_DOUBLE_EQ(second.budget_ms, -1.0);
  EXPECT_EQ(second.pivot_cap, 0);
  EXPECT_FALSE(second.force_numerical_failure);

  // write -> parse preserves every field.
  const std::string text =
      write_scenario(parsed->scenario, parsed->cluster, parsed->fault_plan);
  ParseError error2;
  const auto reparsed = parse_scenario(text, &error2);
  ASSERT_TRUE(reparsed.has_value()) << "line " << error2.line << ": "
                                    << error2.message;
  ASSERT_EQ(reparsed->fault_plan.solver_faults.size(), 2u);
  const fault::SolverFault& a = reparsed->fault_plan.solver_faults[0];
  EXPECT_EQ(a.slot, 5);
  EXPECT_EQ(a.until_slot, 9);
  EXPECT_DOUBLE_EQ(a.budget_ms, 0.5);
  EXPECT_EQ(a.pivot_cap, 40);
  EXPECT_TRUE(a.force_numerical_failure);
  const fault::SolverFault& b = reparsed->fault_plan.solver_faults[1];
  EXPECT_EQ(b.slot, 20);
  EXPECT_EQ(b.until_slot, -1);
  EXPECT_FALSE(b.force_numerical_failure);
}

TEST(ScenarioIo, FaultCellDirectiveRoundTrips) {
  ParseError error;
  const auto parsed = parse_scenario(
      "cluster cores=10 mem_gb=10\n"
      "adhoc id=0 arrival=0 tasks=1 runtime=10 cores=1 mem=1\n"
      "fault seed=7\n"
      "fault_cell cell=1 mode=crash slot=40 until=80\n"
      "fault_cell cell=2 mode=flap slot=10 period=6 jitter=0.3\n"
      "fault_cell cell=0 slot=5\n",
      &error);
  ASSERT_TRUE(parsed.has_value()) << "line " << error.line << ": "
                                  << error.message;
  ASSERT_EQ(parsed->fault_plan.cell_faults.size(), 3u);
  const fault::CellFault& crash = parsed->fault_plan.cell_faults[0];
  EXPECT_EQ(crash.cell, 1);
  EXPECT_EQ(crash.mode, fault::CellFaultMode::kCrash);
  EXPECT_EQ(crash.slot, 40);
  EXPECT_EQ(crash.until_slot, 80);
  const fault::CellFault& flap = parsed->fault_plan.cell_faults[1];
  EXPECT_EQ(flap.cell, 2);
  EXPECT_EQ(flap.mode, fault::CellFaultMode::kFlap);
  EXPECT_EQ(flap.period_slots, 6);
  EXPECT_DOUBLE_EQ(flap.jitter, 0.3);
  const fault::CellFault& bare = parsed->fault_plan.cell_faults[2];
  EXPECT_EQ(bare.cell, 0);
  EXPECT_EQ(bare.mode, fault::CellFaultMode::kCrash);  // default mode
  EXPECT_EQ(bare.slot, 5);
  EXPECT_EQ(bare.until_slot, -1);

  // write -> parse preserves every field.
  const std::string text =
      write_scenario(parsed->scenario, parsed->cluster, parsed->fault_plan);
  ParseError error2;
  const auto reparsed = parse_scenario(text, &error2);
  ASSERT_TRUE(reparsed.has_value()) << "line " << error2.line << ": "
                                    << error2.message;
  ASSERT_EQ(reparsed->fault_plan.cell_faults.size(), 3u);
  const fault::CellFault& a = reparsed->fault_plan.cell_faults[0];
  EXPECT_EQ(a.cell, 1);
  EXPECT_EQ(a.mode, fault::CellFaultMode::kCrash);
  EXPECT_EQ(a.slot, 40);
  EXPECT_EQ(a.until_slot, 80);
  const fault::CellFault& f = reparsed->fault_plan.cell_faults[1];
  EXPECT_EQ(f.mode, fault::CellFaultMode::kFlap);
  EXPECT_EQ(f.period_slots, 6);
  EXPECT_DOUBLE_EQ(f.jitter, 0.3);
}

TEST(ScenarioIo, FaultCellRejectsBadMode) {
  ParseError error;
  const auto parsed = parse_scenario(
      "cluster cores=10 mem_gb=10\n"
      "fault seed=1\n"
      "fault_cell cell=0 mode=melt slot=3\n",
      &error);
  EXPECT_FALSE(parsed.has_value());
  EXPECT_EQ(error.line, 3);
}

}  // namespace
}  // namespace flowtime::workload
