// Tests for the DAG container, topology (Kahn grouping), critical path and
// the shape generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dag/critical_path.h"
#include "dag/dag.h"
#include "dag/generators.h"
#include "dag/topology.h"
#include "util/rng.h"

namespace flowtime::dag {
namespace {

TEST(Dag, AddNodesAndEdges) {
  Dag dag(3);
  EXPECT_EQ(dag.num_nodes(), 3);
  EXPECT_TRUE(dag.add_edge(0, 1));
  EXPECT_TRUE(dag.add_edge(1, 2));
  EXPECT_EQ(dag.num_edges(), 2);
  EXPECT_TRUE(dag.has_edge(0, 1));
  EXPECT_FALSE(dag.has_edge(1, 0));
  EXPECT_EQ(dag.in_degree(2), 1);
  EXPECT_EQ(dag.out_degree(0), 1);
}

TEST(Dag, RejectsSelfLoopsAndDuplicatesAndOutOfRange) {
  Dag dag(2);
  EXPECT_FALSE(dag.add_edge(0, 0));
  EXPECT_TRUE(dag.add_edge(0, 1));
  EXPECT_FALSE(dag.add_edge(0, 1));  // duplicate
  EXPECT_FALSE(dag.add_edge(0, 5));
  EXPECT_FALSE(dag.add_edge(-1, 1));
  EXPECT_EQ(dag.num_edges(), 1);
}

TEST(Dag, SourcesAndSinks) {
  Dag dag = make_fork_join(3);
  const auto sources = dag.sources();
  const auto sinks = dag.sinks();
  ASSERT_EQ(sources.size(), 1u);
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(sources[0], 0);
  EXPECT_EQ(sinks[0], 4);
}

TEST(Dag, AcyclicityDetection) {
  Dag dag(3);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  EXPECT_TRUE(dag.is_acyclic());
  dag.add_edge(2, 0);
  EXPECT_FALSE(dag.is_acyclic());
}

TEST(Topology, OrderRespectsEdges) {
  util::Rng rng(3);
  const Dag dag = make_random_layered(rng, 40, 5, 120);
  const auto order = topological_order(dag);
  ASSERT_TRUE(order.has_value());
  std::vector<int> position(40);
  for (int i = 0; i < 40; ++i) {
    position[static_cast<std::size_t>((*order)[static_cast<std::size_t>(i)])] =
        i;
  }
  for (NodeId u = 0; u < 40; ++u) {
    for (NodeId v : dag.children(u)) {
      EXPECT_LT(position[static_cast<std::size_t>(u)],
                position[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(Topology, OrderDetectsCycle) {
  Dag dag(2);
  dag.add_edge(0, 1);
  dag.add_edge(1, 0);
  EXPECT_FALSE(topological_order(dag).has_value());
  EXPECT_FALSE(level_groups(dag).has_value());
  EXPECT_FALSE(node_levels(dag).has_value());
}

TEST(Topology, ForkJoinLevelGroupsMatchPaperExample) {
  // Paper §IV-A: the grouped Kahn output for Fig. 3 is {1, {2..n}, n+1}.
  const int width = 7;
  const Dag dag = make_fork_join(width);
  const auto groups = level_groups(dag);
  ASSERT_TRUE(groups.has_value());
  ASSERT_EQ(groups->size(), 3u);
  EXPECT_EQ((*groups)[0], std::vector<NodeId>{0});
  EXPECT_EQ((*groups)[1].size(), static_cast<std::size_t>(width));
  EXPECT_EQ((*groups)[2], std::vector<NodeId>{width + 1});
}

TEST(Topology, GroupMembersAreMutuallyIndependent) {
  util::Rng rng(17);
  const Dag dag = make_random_layered(rng, 30, 4, 80);
  const auto groups = level_groups(dag);
  ASSERT_TRUE(groups.has_value());
  for (const auto& group : *groups) {
    for (NodeId a : group) {
      for (NodeId b : group) {
        if (a == b) continue;
        EXPECT_FALSE(reachable(dag, a, b))
            << a << " -> " << b << " violates level independence";
      }
    }
  }
}

TEST(Topology, LevelsCoverAllNodesExactlyOnce) {
  util::Rng rng(99);
  const Dag dag = make_random_layered(rng, 50, 6, 200);
  const auto groups = level_groups(dag);
  ASSERT_TRUE(groups.has_value());
  std::set<NodeId> seen;
  for (const auto& group : *groups) {
    for (NodeId v : group) EXPECT_TRUE(seen.insert(v).second);
  }
  EXPECT_EQ(static_cast<int>(seen.size()), dag.num_nodes());
}

TEST(Topology, ReachabilityAndTransitiveEdges) {
  Dag dag(4);
  dag.add_edge(0, 1);
  dag.add_edge(1, 2);
  dag.add_edge(0, 2);  // transitive
  dag.add_edge(2, 3);
  EXPECT_TRUE(reachable(dag, 0, 3));
  EXPECT_FALSE(reachable(dag, 3, 0));
  EXPECT_TRUE(reachable(dag, 1, 1));
  EXPECT_TRUE(edge_is_transitive(dag, 0, 2));
  EXPECT_FALSE(edge_is_transitive(dag, 0, 1));
  EXPECT_FALSE(edge_is_transitive(dag, 1, 3));  // no such edge
}

TEST(CriticalPath, ChainSumsAllWeights) {
  const Dag dag = make_chain(4);
  const auto cp = critical_path(dag, {1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(cp.has_value());
  EXPECT_DOUBLE_EQ(cp->length, 10.0);
  EXPECT_EQ(cp->path, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(cp->earliest[3], 6.0);
}

TEST(CriticalPath, PicksHeaviestBranch) {
  const Dag dag = make_diamond(1, 1);  // 0 -> {1, 2} -> 3
  const auto cp = critical_path(dag, {1.0, 5.0, 2.0, 1.0});
  ASSERT_TRUE(cp.has_value());
  EXPECT_DOUBLE_EQ(cp->length, 7.0);
  EXPECT_EQ(cp->path, (std::vector<NodeId>{0, 1, 3}));
}

TEST(CriticalPath, RejectsWrongWeightSize) {
  const Dag dag = make_chain(3);
  EXPECT_FALSE(critical_path(dag, {1.0, 2.0}).has_value());
}

TEST(CriticalPath, ForkJoinEarliestStarts) {
  const Dag dag = make_fork_join(3);
  const auto cp = critical_path(dag, {2.0, 1.0, 4.0, 2.0, 3.0});
  ASSERT_TRUE(cp.has_value());
  // All middle jobs start when the source ends.
  EXPECT_DOUBLE_EQ(cp->earliest[1], 2.0);
  EXPECT_DOUBLE_EQ(cp->earliest[2], 2.0);
  EXPECT_DOUBLE_EQ(cp->earliest[3], 2.0);
  // Sink starts after the slowest middle job.
  EXPECT_DOUBLE_EQ(cp->earliest[4], 6.0);
  EXPECT_DOUBLE_EQ(cp->length, 9.0);
}

struct ShapeCase {
  const char* name;
  Dag dag;
  int expected_nodes;
};

class GeneratorShapes : public ::testing::TestWithParam<int> {};

TEST(Generators, ChainShape) {
  const Dag dag = make_chain(5);
  EXPECT_EQ(dag.num_nodes(), 5);
  EXPECT_EQ(dag.num_edges(), 4);
  EXPECT_TRUE(dag.is_acyclic());
  EXPECT_EQ(dag.sources().size(), 1u);
  EXPECT_EQ(dag.sinks().size(), 1u);
}

TEST(Generators, ForkJoinShape) {
  const Dag dag = make_fork_join(10);
  EXPECT_EQ(dag.num_nodes(), 12);
  EXPECT_EQ(dag.num_edges(), 20);
  EXPECT_TRUE(dag.is_acyclic());
}

TEST(Generators, DiamondShape) {
  const Dag dag = make_diamond(3, 2);
  EXPECT_EQ(dag.num_nodes(), 7);
  EXPECT_TRUE(dag.is_acyclic());
  EXPECT_EQ(dag.sources().size(), 1u);
  EXPECT_EQ(dag.sinks().size(), 1u);
}

TEST(Generators, MontageShape) {
  const Dag dag = make_montage_like(6);
  EXPECT_EQ(dag.num_nodes(), 15);
  EXPECT_TRUE(dag.is_acyclic());
  EXPECT_EQ(dag.sources().size(), 1u);
  EXPECT_EQ(dag.sinks().size(), 1u);
}

TEST(Generators, EpigenomicsShape) {
  const Dag dag = make_epigenomics_like(4, 4);
  EXPECT_EQ(dag.num_nodes(), 18);
  EXPECT_TRUE(dag.is_acyclic());
  const auto groups = level_groups(dag);
  ASSERT_TRUE(groups.has_value());
  EXPECT_EQ(groups->size(), 6u);  // split, 4 pipeline stages, merge
}

TEST(Generators, LigoShape) {
  const Dag dag = make_ligo_like(3, 4);
  EXPECT_EQ(dag.num_nodes(), 1 + 3 * 6 + 1);
  EXPECT_TRUE(dag.is_acyclic());
  EXPECT_EQ(dag.sources().size(), 1u);
  EXPECT_EQ(dag.sinks().size(), 1u);
  const auto groups = level_groups(dag);
  ASSERT_TRUE(groups.has_value());
  EXPECT_EQ(groups->size(), 5u);  // source, splitters, inspirals, coalesce, sink
}

TEST(Generators, SiphtShape) {
  const Dag dag = make_sipht_like(5);
  EXPECT_EQ(dag.num_nodes(), 12);
  EXPECT_TRUE(dag.is_acyclic());
  const auto groups = level_groups(dag);
  ASSERT_TRUE(groups.has_value());
  EXPECT_EQ(groups->size(), 4u);  // source, stage-1, stage-2, final
  EXPECT_EQ((*groups)[1].size(), 5u);
}

TEST(Generators, CybershakeShape) {
  const Dag dag = make_cybershake_like(5);
  EXPECT_EQ(dag.num_nodes(), 15);
  EXPECT_TRUE(dag.is_acyclic());
}

TEST_P(GeneratorShapes, RandomLayeredIsAcyclicConnectedAndSized) {
  const int nodes = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(nodes));
  const Dag dag = make_random_layered(rng, nodes, 5, 3 * nodes);
  EXPECT_EQ(dag.num_nodes(), nodes);
  EXPECT_TRUE(dag.is_acyclic());
  // Every non-source node has a parent (generator guarantees connectivity
  // to the previous layer).
  const auto levels = node_levels(dag);
  ASSERT_TRUE(levels.has_value());
  for (NodeId v = 0; v < nodes; ++v) {
    if ((*levels)[static_cast<std::size_t>(v)] > 0) {
      EXPECT_GT(dag.in_degree(v), 0) << "node " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratorShapes,
                         ::testing::Values(10, 25, 50, 100, 200));

TEST(Generators, RandomLayeredHitsEdgeTargetWhenFeasible) {
  util::Rng rng(5);
  const Dag dag = make_random_layered(rng, 60, 6, 150);
  EXPECT_GE(dag.num_edges(), 150);
}

TEST(Generators, RandomLayeredDeterministicPerSeed) {
  util::Rng rng_a(7), rng_b(7);
  const Dag a = make_random_layered(rng_a, 30, 4, 90);
  const Dag b = make_random_layered(rng_b, 30, 4, 90);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.children(v), b.children(v));
  }
}

}  // namespace
}  // namespace flowtime::dag
