// Tests for the cluster simulator: arrival/completion events, precedence
// enforcement, capacity/width clamping, estimation overruns and metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "dag/generators.h"
#include "sim/metrics.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace flowtime::sim {
namespace {

using workload::kCpu;
using workload::kMemory;
using workload::ResourceVec;

workload::JobSpec simple_job(int tasks, double runtime, double cpu,
                             double mem) {
  workload::JobSpec job;
  job.name = "j";
  job.num_tasks = tasks;
  job.task.runtime_s = runtime;
  job.task.demand = ResourceVec{cpu, mem};
  return job;
}

// Grants every ready active job its full width (no capacity awareness — used
// to probe the simulator's clamping when oversubscribed).
class FullWidthScheduler : public Scheduler {
 public:
  std::string name() const override { return "full-width"; }
  std::vector<Allocation> allocate(const ClusterState& state) override {
    std::vector<Allocation> out;
    for (const JobView& view : state.active) {
      if (view.ready) out.push_back(Allocation{view.uid, view.width});
    }
    return out;
  }
};

// Deliberately violates the contract to verify the simulator's defenses.
class MisbehavingScheduler : public Scheduler {
 public:
  enum class Mode { kOverWidth, kNotReady, kBogusUid };
  explicit MisbehavingScheduler(Mode mode) : mode_(mode) {}
  std::string name() const override { return "misbehaving"; }
  std::vector<Allocation> allocate(const ClusterState& state) override {
    std::vector<Allocation> out;
    for (const JobView& view : state.active) {
      switch (mode_) {
        case Mode::kOverWidth:
          if (view.ready) {
            out.push_back(
                Allocation{view.uid, workload::scale(view.width, 3.0)});
          }
          break;
        case Mode::kNotReady:
          out.push_back(Allocation{view.uid, view.width});
          break;
        case Mode::kBogusUid:
          out.push_back(Allocation{99999, view.width});
          if (view.ready) out.push_back(Allocation{view.uid, view.width});
          break;
      }
    }
    return out;
  }

 private:
  Mode mode_;
};

// Never allocates anything.
class IdleScheduler : public Scheduler {
 public:
  std::string name() const override { return "idle"; }
  std::vector<Allocation> allocate(const ClusterState&) override {
    return {};
  }
};

// Records the event stream for assertions.
class RecordingScheduler : public FullWidthScheduler {
 public:
  void on_workflow_arrival(const workload::Workflow& workflow,
                           const std::vector<JobUid>& node_uids,
                           double now_s) override {
    workflow_arrivals.emplace_back(workflow.id, now_s);
    uids_per_workflow.push_back(node_uids);
  }
  void on_adhoc_arrival(JobUid uid, double now_s,
                        const ResourceVec& width) override {
    adhoc_arrivals.emplace_back(uid, now_s);
    widths.push_back(width);
  }
  void on_job_complete(JobUid uid, double now_s) override {
    completions.emplace_back(uid, now_s);
  }

  std::vector<std::pair<int, double>> workflow_arrivals;
  std::vector<std::vector<JobUid>> uids_per_workflow;
  std::vector<std::pair<JobUid, double>> adhoc_arrivals;
  std::vector<ResourceVec> widths;
  std::vector<std::pair<JobUid, double>> completions;
};

workload::Scenario single_chain_scenario() {
  workload::Scenario scenario;
  workload::Workflow w;
  w.id = 0;
  w.name = "w";
  w.start_s = 0.0;
  w.deadline_s = 500.0;
  w.dag = dag::make_chain(2);
  w.jobs = {simple_job(4, 30.0, 1.0, 2.0), simple_job(2, 20.0, 1.0, 2.0)};
  scenario.workflows.push_back(std::move(w));
  return scenario;
}

TEST(Simulator, RunsChainToCompletionRespectingPrecedence) {
  SimConfig config;
  config.cluster.capacity = ResourceVec{100.0, 200.0};
  Simulator sim(config);
  FullWidthScheduler scheduler;
  const SimResult result = sim.run(single_chain_scenario(), scheduler);
  ASSERT_TRUE(result.all_completed);
  ASSERT_EQ(result.jobs.size(), 2u);
  // Job 0: 4 tasks x 30 s at width 4 cores -> 120 core-s / 40 per slot = 3
  // slots -> completes at 30 s.
  EXPECT_DOUBLE_EQ(result.jobs[0].completion_s.value(), 30.0);
  // Job 1 starts only after job 0: 2x20=40 core-s / 20 per slot = 2 slots.
  EXPECT_DOUBLE_EQ(result.jobs[1].completion_s.value(), 50.0);
  EXPECT_EQ(result.capacity_violations, 0);
  EXPECT_EQ(result.width_violations, 0);
  EXPECT_EQ(result.not_ready_allocations, 0);
}

TEST(Simulator, EventStreamIsCompleteAndOrdered) {
  workload::Scenario scenario = single_chain_scenario();
  workload::AdhocJob adhoc;
  adhoc.id = 0;
  adhoc.arrival_s = 15.0;
  adhoc.spec = simple_job(2, 10.0, 1.0, 1.0);
  adhoc.spec.name = "adhoc";
  scenario.adhoc_jobs.push_back(adhoc);

  Simulator sim(SimConfig{});
  RecordingScheduler scheduler;
  const SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  ASSERT_EQ(scheduler.workflow_arrivals.size(), 1u);
  EXPECT_EQ(scheduler.workflow_arrivals[0].first, 0);
  EXPECT_DOUBLE_EQ(scheduler.workflow_arrivals[0].second, 0.0);
  ASSERT_EQ(scheduler.uids_per_workflow[0].size(), 2u);
  ASSERT_EQ(scheduler.adhoc_arrivals.size(), 1u);
  // Arrival at 15 s is released at the start of slot 2 (20 s).
  EXPECT_DOUBLE_EQ(scheduler.adhoc_arrivals[0].second, 20.0);
  EXPECT_EQ(scheduler.completions.size(), 3u);
  for (std::size_t i = 1; i < scheduler.completions.size(); ++i) {
    EXPECT_LE(scheduler.completions[i - 1].second,
              scheduler.completions[i].second);
  }
}

TEST(Simulator, ClampsOverWidthAllocations) {
  SimConfig config;
  config.cluster.capacity = ResourceVec{1000.0, 2000.0};
  Simulator sim(config);
  MisbehavingScheduler scheduler(MisbehavingScheduler::Mode::kOverWidth);
  const SimResult result = sim.run(single_chain_scenario(), scheduler);
  EXPECT_GT(result.width_violations, 0);
  ASSERT_TRUE(result.all_completed);
  // Despite asking for 3x width, delivery was clamped: job 0 still needs 3
  // slots.
  EXPECT_DOUBLE_EQ(result.jobs[0].completion_s.value(), 30.0);
}

TEST(Simulator, WastesNotReadyAllocations) {
  Simulator sim(SimConfig{});
  MisbehavingScheduler scheduler(MisbehavingScheduler::Mode::kNotReady);
  const SimResult result = sim.run(single_chain_scenario(), scheduler);
  EXPECT_GT(result.not_ready_allocations, 0);
  ASSERT_TRUE(result.all_completed);
  // Child never progressed while the parent ran.
  EXPECT_DOUBLE_EQ(result.jobs[1].completion_s.value(), 50.0);
}

TEST(Simulator, IgnoresBogusUids) {
  Simulator sim(SimConfig{});
  MisbehavingScheduler scheduler(MisbehavingScheduler::Mode::kBogusUid);
  const SimResult result = sim.run(single_chain_scenario(), scheduler);
  ASSERT_TRUE(result.all_completed);
}

TEST(Simulator, ScalesDownWhenCapacityExceeded) {
  // Two independent 1-job workflows, each of width 60 cores, on a 100-core
  // cluster: full-width grants (120) must be scaled to fit.
  workload::Scenario scenario;
  for (int i = 0; i < 2; ++i) {
    workload::Workflow w;
    w.id = i;
    w.name = "w" + std::to_string(i);
    w.start_s = 0.0;
    w.deadline_s = 500.0;
    w.dag = dag::make_chain(1);
    w.jobs = {simple_job(60, 30.0, 1.0, 1.0)};
    scenario.workflows.push_back(std::move(w));
  }
  SimConfig config;
  config.cluster.capacity = ResourceVec{100.0, 1000.0};
  Simulator sim(config);
  FullWidthScheduler scheduler;
  const SimResult result = sim.run(scenario, scheduler);
  EXPECT_GT(result.capacity_violations, 0);
  ASSERT_TRUE(result.all_completed);
  for (const auto& used : result.used_per_slot) {
    EXPECT_LE(used[kCpu], 100.0 * 10.0 + 1e-6);
  }
}

TEST(Simulator, HorizonExpiryLeavesJobsIncomplete) {
  SimConfig config;
  config.max_horizon_s = 20.0;  // too short for the chain
  Simulator sim(config);
  FullWidthScheduler scheduler;
  const SimResult result = sim.run(single_chain_scenario(), scheduler);
  EXPECT_FALSE(result.all_completed);
  EXPECT_FALSE(result.jobs[1].completion_s.has_value());
}

TEST(Simulator, IdleSchedulerMakesNoProgress) {
  SimConfig config;
  config.max_horizon_s = 100.0;
  Simulator sim(config);
  IdleScheduler scheduler;
  const SimResult result = sim.run(single_chain_scenario(), scheduler);
  EXPECT_FALSE(result.all_completed);
  for (const auto& used : result.used_per_slot) {
    EXPECT_TRUE(workload::is_zero(used));
  }
}

TEST(Simulator, UnderEstimatedJobRunsLongerAndFlagsOverrun) {
  workload::Scenario scenario = single_chain_scenario();
  scenario.workflows[0].jobs[0].actual_runtime_factor = 2.0;
  Simulator sim(SimConfig{});
  FullWidthScheduler scheduler;
  const SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  // 240 core-s at 40/slot -> 6 slots instead of 3.
  EXPECT_DOUBLE_EQ(result.jobs[0].completion_s.value(), 60.0);
}

TEST(Simulator, CapacityOverridesApply) {
  SimConfig config;
  config.cluster.capacity = ResourceVec{100.0, 200.0};
  config.capacity_overrides = {{0, ResourceVec{0.0, 0.0}}};  // slot 0 dark
  Simulator sim(config);
  FullWidthScheduler scheduler;
  const SimResult result = sim.run(single_chain_scenario(), scheduler);
  ASSERT_TRUE(result.all_completed);
  // Everything shifted one slot.
  EXPECT_DOUBLE_EQ(result.jobs[0].completion_s.value(), 40.0);
}

TEST(Metrics, DeadlineEvaluation) {
  Simulator sim(SimConfig{});
  FullWidthScheduler scheduler;
  const workload::Scenario scenario = single_chain_scenario();
  const SimResult result = sim.run(scenario, scheduler);

  JobDeadlines deadlines;
  deadlines[workload::WorkflowJobRef{0, 0}] = 25.0;  // missed (done at 30)
  deadlines[workload::WorkflowJobRef{0, 1}] = 60.0;  // met (done at 50)
  const DeadlineReport report =
      evaluate_deadlines(result, scenario.workflows, deadlines);
  EXPECT_EQ(report.jobs_missed, 1);
  ASSERT_EQ(report.jobs.size(), 2u);
  ASSERT_EQ(report.workflows.size(), 1u);
  EXPECT_FALSE(report.workflows[0].missed);  // deadline 500, done 50
  EXPECT_DOUBLE_EQ(report.workflows[0].completion_s.value(), 50.0);
  const auto deltas = report.job_deltas();
  EXPECT_EQ(deltas.size(), 2u);
}

TEST(Metrics, UnfinishedJobsCountAsMissed) {
  SimConfig config;
  config.max_horizon_s = 20.0;
  Simulator sim(config);
  FullWidthScheduler scheduler;
  const workload::Scenario scenario = single_chain_scenario();
  const SimResult result = sim.run(scenario, scheduler);
  JobDeadlines deadlines;
  deadlines[workload::WorkflowJobRef{0, 1}] = 100.0;
  const DeadlineReport report =
      evaluate_deadlines(result, scenario.workflows, deadlines);
  EXPECT_EQ(report.jobs_missed, 1);
  EXPECT_EQ(report.workflows_missed, 1);
}

TEST(Metrics, AdhocTurnaroundStats) {
  workload::Scenario scenario;
  for (int i = 0; i < 3; ++i) {
    workload::AdhocJob job;
    job.id = i;
    job.arrival_s = i * 10.0;
    job.spec = simple_job(2, 10.0, 1.0, 1.0);
    job.spec.name = "a" + std::to_string(i);
    scenario.adhoc_jobs.push_back(job);
  }
  Simulator sim(SimConfig{});
  FullWidthScheduler scheduler;
  const SimResult result = sim.run(scenario, scheduler);
  const AdhocReport report = evaluate_adhoc(result);
  EXPECT_EQ(report.total, 3);
  EXPECT_EQ(report.completed, 3);
  EXPECT_GT(report.mean_turnaround_s, 0.0);
  EXPECT_GE(report.p95_turnaround_s, report.p50_turnaround_s);
  EXPECT_GE(report.max_turnaround_s, report.p95_turnaround_s);
}

TEST(Metrics, UtilizationReflectsDeliveredWork) {
  Simulator sim(SimConfig{});
  FullWidthScheduler scheduler;
  const SimResult result = sim.run(single_chain_scenario(), scheduler);
  const ResourceVec util = mean_utilization(
      result, workload::scale(ResourceVec{500.0, 1024.0}, 10.0));
  EXPECT_GT(util[kCpu], 0.0);
  EXPECT_LE(util[kCpu], 1.0);
}

}  // namespace
}  // namespace flowtime::sim
