// Tests for the workload module: job math, workflow validation, profile
// sampling, trace generation and estimation-error injection.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "dag/generators.h"
#include "util/rng.h"
#include "workload/estimator.h"
#include "workload/job.h"
#include "workload/profiles.h"
#include "workload/trace_gen.h"
#include "workload/workflow.h"

namespace flowtime::workload {
namespace {

JobSpec simple_job(int tasks, double runtime, double cpu, double mem) {
  JobSpec job;
  job.name = "j";
  job.num_tasks = tasks;
  job.task.runtime_s = runtime;
  job.task.demand = ResourceVec{cpu, mem};
  return job;
}

TEST(JobSpec, TotalDemandIsTasksTimesRuntimeTimesDemand) {
  const JobSpec job = simple_job(10, 30.0, 1.0, 2.0);
  const ResourceVec total = job.total_demand();
  EXPECT_DOUBLE_EQ(total[kCpu], 300.0);
  EXPECT_DOUBLE_EQ(total[kMemory], 600.0);
}

TEST(JobSpec, ActualDemandScalesWithErrorFactor) {
  JobSpec job = simple_job(10, 30.0, 1.0, 2.0);
  job.actual_runtime_factor = 1.5;
  EXPECT_DOUBLE_EQ(job.actual_total_demand()[kCpu], 450.0);
}

TEST(JobSpec, MaxParallelDemand) {
  const JobSpec job = simple_job(8, 10.0, 2.0, 4.0);
  EXPECT_DOUBLE_EQ(job.max_parallel_demand()[kCpu], 16.0);
  EXPECT_DOUBLE_EQ(job.max_parallel_demand()[kMemory], 32.0);
}

TEST(JobSpec, MinRuntimeSingleWave) {
  const JobSpec job = simple_job(10, 30.0, 1.0, 2.0);
  // 10 tasks of 1 core fit a 500-core cluster in one wave.
  EXPECT_DOUBLE_EQ(job.min_runtime_s(ResourceVec{500.0, 1024.0}), 30.0);
}

TEST(JobSpec, MinRuntimeMultipleWaves) {
  const JobSpec job = simple_job(10, 30.0, 1.0, 2.0);
  // Only 4 tasks fit at once -> ceil(10/4) = 3 waves.
  EXPECT_DOUBLE_EQ(job.min_runtime_s(ResourceVec{4.0, 1024.0}), 90.0);
}

TEST(JobSpec, MinRuntimeBoundByScarcestResource) {
  const JobSpec job = simple_job(10, 30.0, 1.0, 8.0);
  // CPU fits all 10, memory fits floor(32/8)=4 -> 3 waves.
  EXPECT_DOUBLE_EQ(job.min_runtime_s(ResourceVec{500.0, 32.0}), 90.0);
}

TEST(JobSpec, MinRuntimeInfiniteWhenTaskCannotFit) {
  const JobSpec job = simple_job(1, 30.0, 600.0, 1.0);
  EXPECT_TRUE(std::isinf(job.min_runtime_s(ResourceVec{500.0, 1024.0})));
}

Workflow tiny_workflow() {
  Workflow w;
  w.id = 1;
  w.name = "w";
  w.start_s = 0.0;
  w.deadline_s = 1000.0;
  w.dag = dag::make_chain(2);
  w.jobs = {simple_job(4, 50.0, 1.0, 2.0), simple_job(2, 100.0, 1.0, 2.0)};
  return w;
}

TEST(Workflow, ValidAcceptsWellFormed) {
  EXPECT_TRUE(tiny_workflow().valid());
}

TEST(Workflow, ValidRejectsBadStructures) {
  Workflow w = tiny_workflow();
  w.deadline_s = 0.0;
  EXPECT_FALSE(w.valid());  // deadline before start

  w = tiny_workflow();
  w.jobs.pop_back();
  EXPECT_FALSE(w.valid());  // job/node mismatch

  w = tiny_workflow();
  w.jobs[0].num_tasks = 0;
  EXPECT_FALSE(w.valid());

  w = tiny_workflow();
  w.jobs[0].task.demand = ResourceVec{0.0, 0.0};
  EXPECT_FALSE(w.valid());  // no demand at all

  w = tiny_workflow();
  w.dag = dag::Dag(2);
  w.dag.add_edge(0, 1);
  w.dag.add_edge(1, 0);
  EXPECT_FALSE(w.valid());  // cycle
}

TEST(Workflow, TotalDemandSumsJobs) {
  const Workflow w = tiny_workflow();
  EXPECT_DOUBLE_EQ(w.total_demand()[kCpu], 4 * 50.0 + 2 * 100.0);
}

TEST(Workflow, MinMakespanIsCriticalPathOfMinRuntimes) {
  const Workflow w = tiny_workflow();
  EXPECT_DOUBLE_EQ(w.min_makespan_s(ResourceVec{500.0, 1024.0}), 150.0);
}

TEST(Profiles, TableContainsThePaperBenchmarks) {
  std::set<std::string> names;
  for (const JobProfile& p : puma_profiles()) names.insert(p.name);
  for (const char* required :
       {"TeraSort", "WordCount", "InvertedIndex", "SequenceCount",
        "SelfJoin"}) {
    EXPECT_TRUE(names.count(required)) << required;
  }
}

TEST(Profiles, SampledJobsRespectRanges) {
  util::Rng rng(4);
  const JobProfile& profile = profile_by_name("TeraSort");
  for (int i = 0; i < 50; ++i) {
    const JobSpec job = sample_job(profile, rng);
    EXPECT_GE(job.num_tasks, profile.min_tasks);
    EXPECT_LE(job.num_tasks, profile.max_tasks);
    EXPECT_GE(job.task.runtime_s, profile.min_task_runtime_s);
    EXPECT_LE(job.task.runtime_s, profile.max_task_runtime_s);
    EXPECT_EQ(job.task.demand, profile.task_demand);
    EXPECT_DOUBLE_EQ(job.actual_runtime_factor, 1.0);
  }
}

TEST(TraceGen, WorkflowHasRequestedJobCountAndLooseDeadline) {
  util::Rng rng(11);
  WorkflowGenConfig config;
  config.num_jobs = 18;
  config.looseness_min = 3.0;
  config.looseness_max = 3.0;
  const Workflow w = make_workflow(rng, 7, 100.0, config);
  EXPECT_EQ(w.id, 7);
  EXPECT_EQ(w.dag.num_nodes(), 18);
  EXPECT_TRUE(w.valid());
  const double makespan = w.min_makespan_s(config.cluster.capacity);
  EXPECT_NEAR(w.deadline_s, 100.0 + 3.0 * makespan, 1e-6);
}

TEST(TraceGen, AdhocStreamIsPoissonSorted) {
  util::Rng rng(13);
  AdhocGenConfig config;
  config.rate_per_s = 0.1;
  config.horizon_s = 2000.0;
  const auto jobs = make_adhoc_stream(rng, config);
  EXPECT_GT(jobs.size(), 100u);  // rate * horizon = 200 expected
  EXPECT_LT(jobs.size(), 320u);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].arrival_s, jobs[i - 1].arrival_s);
  }
  for (const AdhocJob& job : jobs) {
    EXPECT_LT(job.arrival_s, config.horizon_s);
    EXPECT_GE(job.spec.num_tasks, config.min_tasks);
    EXPECT_LE(job.spec.num_tasks, config.max_tasks);
  }
}

TEST(TraceGen, Fig4ScenarioShape) {
  const Scenario s = make_fig4_scenario(42);
  ASSERT_EQ(s.workflows.size(), 5u);
  int deadline_jobs = 0;
  for (const Workflow& w : s.workflows) {
    EXPECT_TRUE(w.valid());
    deadline_jobs += w.dag.num_nodes();
  }
  EXPECT_EQ(deadline_jobs, 90);  // the paper's 90 deadline-aware jobs
  EXPECT_FALSE(s.adhoc_jobs.empty());
}

TEST(TraceGen, Fig4ScenarioDeterministicPerSeed) {
  const Scenario a = make_fig4_scenario(1);
  const Scenario b = make_fig4_scenario(1);
  ASSERT_EQ(a.adhoc_jobs.size(), b.adhoc_jobs.size());
  for (std::size_t i = 0; i < a.adhoc_jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.adhoc_jobs[i].arrival_s, b.adhoc_jobs[i].arrival_s);
  }
  const Scenario c = make_fig4_scenario(2);
  // Different seed changes the stream (overwhelmingly likely).
  bool any_diff = a.adhoc_jobs.size() != c.adhoc_jobs.size();
  for (std::size_t i = 0;
       !any_diff && i < std::min(a.adhoc_jobs.size(), c.adhoc_jobs.size());
       ++i) {
    any_diff = a.adhoc_jobs[i].arrival_s != c.adhoc_jobs[i].arrival_s;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TraceGen, RecurringTraceRepeatsTemplates) {
  RecurringTraceConfig config;
  config.num_templates = 2;
  config.recurrences = 3;
  const Scenario s = make_recurring_trace(9, config);
  ASSERT_EQ(s.workflows.size(), 6u);
  // Instances of the same template share DAG shape and job sizes.
  const Workflow& first = s.workflows[0];
  const Workflow& second = s.workflows[1];
  EXPECT_EQ(first.dag.num_nodes(), second.dag.num_nodes());
  EXPECT_EQ(first.jobs[0].num_tasks, second.jobs[0].num_tasks);
  EXPECT_LT(first.start_s, second.start_s);
  // Relative deadline preserved.
  EXPECT_NEAR(first.deadline_s - first.start_s,
              second.deadline_s - second.start_s, 1e-9);
}

TEST(Estimator, InjectsBoundedErrors) {
  util::Rng rng(21);
  WorkflowGenConfig config;
  util::Rng wf_rng(22);
  Workflow w = make_workflow(wf_rng, 0, 0.0, config);
  EstimationErrorConfig error;
  error.affected_fraction = 1.0;
  error.under_probability = 0.5;
  error.under_severity = 0.3;
  error.over_severity = 0.3;
  inject_estimation_error(w, error, rng);
  int changed = 0;
  for (const JobSpec& job : w.jobs) {
    EXPECT_GE(job.actual_runtime_factor, 0.7 - 1e-9);
    EXPECT_LE(job.actual_runtime_factor, 1.3 + 1e-9);
    if (job.actual_runtime_factor != 1.0) ++changed;
  }
  EXPECT_GT(changed, 0);
}

TEST(Estimator, ZeroFractionChangesNothing) {
  util::Rng rng(23);
  util::Rng wf_rng(24);
  Workflow w = make_workflow(wf_rng, 0, 0.0, WorkflowGenConfig{});
  EstimationErrorConfig error;
  error.affected_fraction = 0.0;
  inject_estimation_error(w, error, rng);
  for (const JobSpec& job : w.jobs) {
    EXPECT_DOUBLE_EQ(job.actual_runtime_factor, 1.0);
  }
}

TEST(Resources, VectorHelpers) {
  const ResourceVec a{3.0, 5.0};
  const ResourceVec b{1.0, 8.0};
  EXPECT_EQ(add(a, b), (ResourceVec{4.0, 13.0}));
  EXPECT_EQ(sub(a, b), (ResourceVec{2.0, -3.0}));
  EXPECT_EQ(scale(a, 2.0), (ResourceVec{6.0, 10.0}));
  EXPECT_EQ(elementwise_min(a, b), (ResourceVec{1.0, 5.0}));
  EXPECT_EQ(clamp_nonnegative(sub(b, a)), (ResourceVec{0.0, 3.0}));
  EXPECT_TRUE(fits_within(b, ResourceVec{1.0, 8.0}));
  EXPECT_FALSE(fits_within(b, ResourceVec{0.5, 8.0}));
  EXPECT_TRUE(is_zero(ResourceVec{0.0, 0.0}));
  EXPECT_FALSE(is_zero(a));
}

}  // namespace
}  // namespace flowtime::workload
