// Cell fault-tolerance tests (DESIGN.md §14): the fault_cell chaos family
// driving the coordinator's health state machine — crash quarantine +
// workflow failover, hang heartbeat escalation, flap determinism, solver
// circuit breaker, probe re-admission — plus the invariants that no
// workflow is ever stranded or duplicated and that fault-free runs leave
// the machinery idle.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/federated_scheduler.h"
#include "core/flowtime_scheduler.h"
#include "dag/generators.h"
#include "fault/plan.h"
#include "sim/simulator.h"
#include "workload/scenario_io.h"

namespace flowtime {
namespace {

using workload::ResourceVec;

// ---------------------------------------------------------------------------
// Scenario helpers (same shapes as cluster_test.cpp)

sim::SimConfig small_cluster() {
  sim::SimConfig config;
  config.cluster.capacity = ResourceVec{100.0, 200.0};
  config.max_horizon_s = 6000.0;
  return config;
}

core::FlowTimeConfig flowtime_config(const sim::SimConfig& sim_config) {
  core::FlowTimeConfig config;
  config.cluster.capacity = sim_config.cluster.capacity;
  config.cluster.slot_seconds = sim_config.cluster.slot_seconds;
  return config;
}

workload::JobSpec simple_job(int tasks, double runtime) {
  workload::JobSpec job;
  job.name = "j";
  job.num_tasks = tasks;
  job.task.runtime_s = runtime;
  job.task.demand = ResourceVec{1.0, 2.0};
  return job;
}

workload::Workflow chain_workflow(int id, double start_s, double deadline_s) {
  workload::Workflow w;
  w.id = id;
  w.name = "w" + std::to_string(id);
  w.start_s = start_s;
  w.deadline_s = deadline_s;
  w.dag = dag::make_chain(2);
  w.jobs = {simple_job(10, 40.0), simple_job(8, 30.0)};
  return w;
}

// Enough simultaneous arrivals that least-load routing puts work on every
// cell of a 4-cell federation, so killing any one cell hits live workflows.
workload::Scenario spread_scenario(int workflows, int adhocs = 0) {
  workload::Scenario scenario;
  for (int id = 0; id < workflows; ++id) {
    scenario.workflows.push_back(
        chain_workflow(id, 0.0, 3000.0 + 200.0 * id));
  }
  for (int id = 0; id < adhocs; ++id) {
    workload::AdhocJob adhoc_job;
    adhoc_job.id = id;
    adhoc_job.arrival_s = 50.0 + 10.0 * id;
    adhoc_job.spec = simple_job(4, 20.0);
    adhoc_job.spec.name = "adhoc" + std::to_string(id);
    scenario.adhoc_jobs.push_back(std::move(adhoc_job));
  }
  return scenario;
}

fault::CellFault cell_fault(int cell, fault::CellFaultMode mode, int slot,
                            int until_slot = -1) {
  fault::CellFault fault;
  fault.cell = cell;
  fault.mode = mode;
  fault.slot = slot;
  fault.until_slot = until_slot;
  return fault;
}

void expect_no_stranded_or_duplicated_work(
    const sim::SimResult& result, const cluster::FederatedScheduler& fed) {
  EXPECT_TRUE(result.all_completed);
  for (const auto& job : result.jobs) {
    EXPECT_TRUE(job.completion_s.has_value()) << job.name;
  }
  EXPECT_EQ(fed.pending_failover(), 0)
      << "evacuated workflows must drain once a cell is routable";
  EXPECT_EQ(result.capacity_violations, 0)
      << "duplicated work would over-allocate the surviving cells";
}

// ---------------------------------------------------------------------------
// Crash: instant quarantine, state-lost failover, probe re-admission

TEST(Failover, CrashedCellFailsOverWithoutStrandingWork) {
  const sim::SimConfig base = small_cluster();
  sim::SimConfig sim_config = base;
  sim_config.fault_plan.seed = 5;
  sim_config.fault_plan.cell_faults.push_back(
      cell_fault(1, fault::CellFaultMode::kCrash, 4, 60));

  cluster::FederatedConfig federated;
  federated.flowtime = flowtime_config(sim_config);
  federated.partition.cells = 4;
  cluster::FederatedScheduler fed(federated);
  const sim::SimResult result =
      sim::Simulator(sim_config).run(spread_scenario(8, 4), fed);

  EXPECT_GE(result.faults.cell_faults, 1);
  EXPECT_GE(fed.cell_failures(), 1);
  EXPECT_GE(fed.quarantines(), 1) << "a crash quarantines immediately";
  EXPECT_GE(fed.failovers(), 1)
      << "cell 1 owned live workflows when it died";
  expect_no_stranded_or_duplicated_work(result, fed);

  // The fault window ends at slot 60; a probe must have re-admitted the
  // cell well before the 600-slot horizon.
  EXPECT_GE(fed.cell_recoveries(), 1);
  ASSERT_GE(fed.outage_log().size(), 1u);
  const auto& outage = fed.outage_log().front();
  EXPECT_EQ(outage.cell, 1);
  EXPECT_GT(outage.recovered_slot, outage.failed_slot);
  EXPECT_EQ(fed.cell(1).health(), cluster::CellHealth::kHealthy);
}

TEST(Failover, PermanentCellLossCompletesOnSurvivors) {
  sim::SimConfig sim_config = small_cluster();
  sim_config.fault_plan.seed = 5;
  sim_config.fault_plan.cell_faults.push_back(
      cell_fault(2, fault::CellFaultMode::kCrash, 5));  // never recovers

  cluster::FederatedConfig federated;
  federated.flowtime = flowtime_config(sim_config);
  federated.partition.cells = 4;
  cluster::FederatedScheduler fed(federated);
  const sim::SimResult result =
      sim::Simulator(sim_config).run(spread_scenario(8), fed);

  EXPECT_GE(fed.quarantines(), 1);
  EXPECT_EQ(fed.cell_recoveries(), 0) << "the cell never comes back";
  expect_no_stranded_or_duplicated_work(result, fed);
  ASSERT_GE(fed.outage_log().size(), 1u);
  EXPECT_EQ(fed.outage_log().front().recovered_slot, -1)
      << "the outage stays open";
  EXPECT_EQ(fed.cell(2).health(), cluster::CellHealth::kQuarantined);
}

// ---------------------------------------------------------------------------
// Hang: heartbeat escalation through the circuit breaker

TEST(Failover, HungCellEscalatesThroughHeartbeatBreaker) {
  sim::SimConfig sim_config = small_cluster();
  sim_config.fault_plan.seed = 5;
  sim_config.fault_plan.cell_faults.push_back(
      cell_fault(0, fault::CellFaultMode::kHang, 6, 40));

  cluster::FederatedConfig federated;
  federated.flowtime = flowtime_config(sim_config);
  federated.partition.cells = 4;
  // Default quarantine_after_failures = 3: the hang must survive three
  // missed heartbeats before the breaker trips (a timeout is ambiguous,
  // a dead connection is not).
  cluster::FederatedScheduler fed(federated);
  const sim::SimResult result =
      sim::Simulator(sim_config).run(spread_scenario(8), fed);

  EXPECT_GE(fed.cell_failures(), 1);
  EXPECT_GE(fed.quarantines(), 1)
      << "three missed heartbeats must trip the breaker";
  EXPECT_GE(fed.failovers(), 1);
  EXPECT_GE(fed.cell_recoveries(), 1);
  expect_no_stranded_or_duplicated_work(result, fed);
  ASSERT_GE(fed.outage_log().size(), 1u);
  // Heartbeat escalation means quarantine lags the hang by K slots.
  EXPECT_GE(fed.outage_log().front().failed_slot, 6 + 2);
  EXPECT_EQ(fed.cell(0).health(), cluster::CellHealth::kHealthy);
}

// ---------------------------------------------------------------------------
// Solver fault: preempted solves trip the breaker, the cell keeps serving

TEST(Failover, SolverFaultTripsCircuitBreaker) {
  sim::SimConfig sim_config = small_cluster();
  sim_config.max_horizon_s = 12000.0;
  sim_config.fault_plan.seed = 5;
  sim_config.fault_plan.cell_faults.push_back(
      cell_fault(0, fault::CellFaultMode::kSolverFail, 2, 30));
  sim_config.fault_plan.cell_faults.push_back(
      cell_fault(1, fault::CellFaultMode::kSolverFail, 2, 30));

  // Arrivals inside the fault window are the replan triggers: the lexmin
  // plan spreads the early work, so the first job completions land after
  // the fault lifts.
  workload::Scenario scenario;
  scenario.workflows.push_back(chain_workflow(0, 0.0, 3000.0));
  scenario.workflows.push_back(chain_workflow(1, 0.0, 3200.0));
  scenario.workflows.push_back(chain_workflow(2, 100.0, 3400.0));
  scenario.workflows.push_back(chain_workflow(3, 150.0, 3600.0));

  cluster::FederatedConfig federated;
  federated.flowtime = flowtime_config(sim_config);
  federated.partition.cells = 2;
  // One preempted solve is enough here: each cell sees only a couple of
  // replan triggers while its solver is broken.
  federated.quarantine_after_failures = 1;
  cluster::FederatedScheduler fed(federated);
  const sim::SimResult result = sim::Simulator(sim_config).run(scenario, fed);

  EXPECT_GE(fed.quarantines(), 1)
      << "a preempted solve must count as a failure";
  EXPECT_GE(fed.failovers(), 1);
  EXPECT_GE(fed.cell_recoveries(), 1) << "the fault lifts at slot 30";
  expect_no_stranded_or_duplicated_work(result, fed);
}

// ---------------------------------------------------------------------------
// Flap: repeated crash/recovery cycles, bit-deterministic under a seed

TEST(Failover, FlappingCellRunIsDeterministic) {
  sim::SimConfig sim_config = small_cluster();
  sim_config.fault_plan.seed = 21;
  fault::CellFault flap = cell_fault(1, fault::CellFaultMode::kFlap, 4, 80);
  flap.period_slots = 6;
  flap.jitter = 0.3;
  sim_config.fault_plan.cell_faults.push_back(flap);

  cluster::FederatedConfig federated;
  federated.flowtime = flowtime_config(sim_config);
  federated.partition.cells = 4;

  cluster::FederatedScheduler fed_a(federated);
  const sim::SimResult a =
      sim::Simulator(sim_config).run(spread_scenario(8), fed_a);
  cluster::FederatedScheduler fed_b(federated);
  const sim::SimResult b =
      sim::Simulator(sim_config).run(spread_scenario(8), fed_b);

  EXPECT_GE(fed_a.quarantines(), 2) << "a flap should trip more than once";
  expect_no_stranded_or_duplicated_work(a, fed_a);
  expect_no_stranded_or_duplicated_work(b, fed_b);

  // Same seed, same flap phases, same failovers: bit-identical runs.
  EXPECT_EQ(fed_a.quarantines(), fed_b.quarantines());
  EXPECT_EQ(fed_a.failovers(), fed_b.failovers());
  EXPECT_EQ(fed_a.cell_recoveries(), fed_b.cell_recoveries());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    ASSERT_TRUE(a.jobs[i].completion_s.has_value());
    ASSERT_TRUE(b.jobs[i].completion_s.has_value());
    EXPECT_DOUBLE_EQ(*a.jobs[i].completion_s, *b.jobs[i].completion_s)
        << "job " << i;
  }
  ASSERT_EQ(a.allocated_per_slot.size(), b.allocated_per_slot.size());
  for (std::size_t t = 0; t < a.allocated_per_slot.size(); ++t) {
    for (int r = 0; r < workload::kNumResources; ++r) {
      EXPECT_DOUBLE_EQ(a.allocated_per_slot[t][r],
                       b.allocated_per_slot[t][r])
          << "slot " << t;
    }
  }
}

// ---------------------------------------------------------------------------
// Crash concurrent with machine churn: the rebuilt cell replays the last
// capacity broadcast, so its fresh admission ledger tracks the shrunk
// cluster instead of assuming full capacity.

TEST(Failover, CrashDuringMachineChurnStillCompletes) {
  sim::SimConfig sim_config = small_cluster();
  sim_config.fault_plan.seed = 5;
  sim_config.fault_plan.machines.push_back(
      fault::MachineFault{3, 50, ResourceVec{30.0, 60.0}});
  sim_config.fault_plan.cell_faults.push_back(
      cell_fault(1, fault::CellFaultMode::kCrash, 6, 60));

  cluster::FederatedConfig federated;
  federated.flowtime = flowtime_config(sim_config);
  federated.partition.cells = 4;
  cluster::FederatedScheduler fed(federated);
  const sim::SimResult result =
      sim::Simulator(sim_config).run(spread_scenario(8), fed);

  EXPECT_GE(result.faults.machine_downs, 1);
  EXPECT_GE(fed.quarantines(), 1);
  EXPECT_TRUE(result.all_completed);
  for (const auto& job : result.jobs) {
    EXPECT_TRUE(job.completion_s.has_value()) << job.name;
  }
  EXPECT_EQ(fed.pending_failover(), 0);
}

// ---------------------------------------------------------------------------
// Quotas across failover: an evacuated workflow keeps its tenant share
// claimed while parked, and releases it exactly once on completion, so
// deferred same-tenant work still unblocks.

TEST(Failover, QuotaSurvivesFailoverAndReleasesOnCompletion) {
  sim::SimConfig sim_config = small_cluster();
  sim_config.max_horizon_s = 16000.0;
  sim_config.fault_plan.seed = 5;
  // Hit both cells at different times: wherever the active workflow lives,
  // at least one crash lands on it mid-flight.
  sim_config.fault_plan.cell_faults.push_back(
      cell_fault(0, fault::CellFaultMode::kCrash, 3, 40));
  sim_config.fault_plan.cell_faults.push_back(
      cell_fault(1, fault::CellFaultMode::kCrash, 60, 100));

  workload::Scenario scenario;
  for (int id = 0; id < 2; ++id) {
    workload::Workflow w = chain_workflow(id, 0.0, 4000.0);
    w.tenant = 1;
    scenario.workflows.push_back(std::move(w));
  }

  cluster::FederatedConfig federated;
  federated.flowtime = flowtime_config(sim_config);
  federated.partition.cells = 2;
  // chain_workflow claims ~0.0016 of the cluster over its window; 0.002
  // fits one in flight but not two (same constant as cluster_test).
  federated.tenant_quota_fraction = 0.002;
  cluster::FederatedScheduler fed(federated);
  const sim::SimResult result = sim::Simulator(sim_config).run(scenario, fed);

  EXPECT_GE(fed.quota_deferrals(), 1);
  EXPECT_GE(fed.failovers(), 1);
  expect_no_stranded_or_duplicated_work(result, fed);
}

// ---------------------------------------------------------------------------
// One cell, total outage: arrivals park in the failover queue (owned by no
// cell) and drain after the probe re-admits — never dropped.

TEST(Failover, SingleCellParksArrivalsUntilRecovery) {
  sim::SimConfig sim_config = small_cluster();
  sim_config.fault_plan.seed = 5;
  sim_config.fault_plan.cell_faults.push_back(
      cell_fault(0, fault::CellFaultMode::kCrash, 2, 20));

  workload::Scenario scenario;
  scenario.workflows.push_back(chain_workflow(0, 0.0, 2400.0));
  // Arrives at slot 5, mid-outage: no routable cell exists.
  scenario.workflows.push_back(chain_workflow(1, 50.0, 3000.0));

  cluster::FederatedConfig federated;
  federated.flowtime = flowtime_config(sim_config);
  federated.partition.cells = 1;
  cluster::FederatedScheduler fed(federated);
  const sim::SimResult result = sim::Simulator(sim_config).run(scenario, fed);

  EXPECT_GE(fed.quarantines(), 1);
  EXPECT_GE(fed.cell_recoveries(), 1);
  EXPECT_GE(fed.failovers(), 1)
      << "parked workflows count as failovers when they finally place";
  expect_no_stranded_or_duplicated_work(result, fed);
}

// ---------------------------------------------------------------------------
// No faults: the machinery must be provably idle (the byte-identity of the
// 1-cell pass-through is pinned separately in cluster_test).

TEST(Failover, NoCellFaultsLeaveMachineryIdle) {
  const sim::SimConfig sim_config = small_cluster();

  cluster::FederatedConfig federated;
  federated.flowtime = flowtime_config(sim_config);
  federated.partition.cells = 4;
  cluster::FederatedScheduler fed(federated);
  const sim::SimResult result =
      sim::Simulator(sim_config).run(spread_scenario(8, 2), fed);

  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(fed.cell_failures(), 0);
  EXPECT_EQ(fed.quarantines(), 0);
  EXPECT_EQ(fed.failovers(), 0);
  EXPECT_EQ(fed.cell_recoveries(), 0);
  EXPECT_EQ(fed.pending_failover(), 0);
  EXPECT_TRUE(fed.outage_log().empty());
  for (int c = 0; c < fed.num_cells(); ++c) {
    EXPECT_EQ(fed.cell(c).health(), cluster::CellHealth::kHealthy);
  }
}

// ---------------------------------------------------------------------------
// End-to-end through scenario_io: the fault_cell directive drives the same
// path as the programmatic plan.

TEST(Failover, ScenarioFileFaultCellDirectiveDrivesFailover) {
  workload::ParseError error;
  const auto parsed = workload::parse_scenario(
      "cluster cores=100 mem_gb=200 slot_seconds=10\n"
      "workflow id=0 name=a start=0 deadline=2600\n"
      "job node=0 name=x tasks=10 runtime=40 cores=1 mem=2\n"
      "job node=1 name=y tasks=8 runtime=30 cores=1 mem=2\n"
      "edge 0 1\n"
      "end\n"
      "workflow id=1 name=b start=0 deadline=3000\n"
      "job node=0 name=x tasks=10 runtime=40 cores=1 mem=2\n"
      "job node=1 name=y tasks=8 runtime=30 cores=1 mem=2\n"
      "edge 0 1\n"
      "end\n"
      "fault seed=9\n"
      "fault_cell cell=0 mode=crash slot=4 until=50\n",
      &error);
  ASSERT_TRUE(parsed) << error.message;

  sim::SimConfig sim_config;
  sim_config.cluster.capacity = parsed->cluster->capacity;
  sim_config.cluster.slot_seconds = parsed->cluster->slot_seconds;
  sim_config.max_horizon_s = 6000.0;
  sim_config.fault_plan = parsed->fault_plan;

  cluster::FederatedConfig federated;
  federated.flowtime = flowtime_config(sim_config);
  federated.partition.cells = 2;
  cluster::FederatedScheduler fed(federated);
  const sim::SimResult result =
      sim::Simulator(sim_config).run(parsed->scenario, fed);

  EXPECT_GE(fed.cell_failures(), 1);
  EXPECT_GE(fed.quarantines(), 1);
  expect_no_stranded_or_duplicated_work(result, fed);
}

}  // namespace
}  // namespace flowtime
