// Tests for the baseline schedulers: FIFO, Fair, EDF, CORA-like and
// Morpheus-like.
#include <gtest/gtest.h>

#include "dag/generators.h"
#include "sched/allocation_util.h"
#include "sched/baselines.h"
#include "sched/cora.h"
#include "sched/morpheus.h"
#include "sim/metrics.h"
#include "sim/simulator.h"

namespace flowtime::sched {
namespace {

using workload::kCpu;
using workload::ResourceVec;

workload::JobSpec simple_job(int tasks, double runtime, double cpu,
                             double mem) {
  workload::JobSpec job;
  job.name = "j";
  job.num_tasks = tasks;
  job.task.runtime_s = runtime;
  job.task.demand = ResourceVec{cpu, mem};
  return job;
}

workload::Workflow one_job_workflow(int id, double start, double deadline,
                                    const workload::JobSpec& job) {
  workload::Workflow w;
  w.id = id;
  w.name = "w" + std::to_string(id);
  w.start_s = start;
  w.deadline_s = deadline;
  w.dag = dag::make_chain(1);
  w.jobs = {job};
  return w;
}

workload::AdhocJob adhoc(int id, double arrival, int tasks, double runtime) {
  workload::AdhocJob job;
  job.id = id;
  job.arrival_s = arrival;
  job.spec = simple_job(tasks, runtime, 1.0, 1.0);
  job.spec.name = "adhoc" + std::to_string(id);
  return job;
}

sim::SimConfig tiny_cluster() {
  sim::SimConfig config;
  config.cluster.capacity = ResourceVec{10.0, 20.0};
  config.max_horizon_s = 5000.0;
  return config;
}

TEST(Fifo, ServesInArrivalOrder) {
  // Two identical 1-job workflows with different starts; a 10-core cluster
  // fits exactly one at a time (width 10 each).
  workload::Scenario scenario;
  scenario.workflows.push_back(
      one_job_workflow(0, 0.0, 4000.0, simple_job(10, 30.0, 1.0, 1.0)));
  scenario.workflows.push_back(
      one_job_workflow(1, 10.0, 4000.0, simple_job(10, 30.0, 1.0, 1.0)));
  sim::Simulator sim(tiny_cluster());
  FifoScheduler scheduler;
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  // First job monopolizes: 300 core-s / 100 per slot = 3 slots.
  EXPECT_DOUBLE_EQ(result.jobs[0].completion_s.value(), 30.0);
  EXPECT_DOUBLE_EQ(result.jobs[1].completion_s.value(), 60.0);
  EXPECT_EQ(result.capacity_violations, 0);
}

TEST(Fifo, AdhocAheadOfLaterDeadlineJob) {
  // FIFO is deadline-oblivious: an earlier ad-hoc job outranks a later
  // deadline job.
  workload::Scenario scenario;
  scenario.adhoc_jobs.push_back(adhoc(0, 0.0, 10, 30.0));
  scenario.workflows.push_back(
      one_job_workflow(0, 10.0, 100.0, simple_job(10, 30.0, 1.0, 1.0)));
  sim::Simulator sim(tiny_cluster());
  FifoScheduler scheduler;
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  const auto& adhoc_record = result.jobs[1];  // workflow job laid out first
  ASSERT_EQ(adhoc_record.kind, sim::JobKind::kAdhoc);
  EXPECT_LT(adhoc_record.completion_s.value(),
            result.jobs[0].completion_s.value());
}

TEST(Fair, SplitsCapacityEqually) {
  // Two identical jobs arriving together share the 10 cores 5/5, finishing
  // together at twice the solo time.
  workload::Scenario scenario;
  scenario.workflows.push_back(
      one_job_workflow(0, 0.0, 4000.0, simple_job(10, 30.0, 1.0, 1.0)));
  scenario.workflows.push_back(
      one_job_workflow(1, 0.0, 4000.0, simple_job(10, 30.0, 1.0, 1.0)));
  sim::Simulator sim(tiny_cluster());
  FairScheduler scheduler;
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  EXPECT_DOUBLE_EQ(result.jobs[0].completion_s.value(), 60.0);
  EXPECT_DOUBLE_EQ(result.jobs[1].completion_s.value(), 60.0);
}

TEST(Fair, LetsSmallAdhocFinishQuicklyUnderLoad) {
  workload::Scenario scenario;
  scenario.workflows.push_back(
      one_job_workflow(0, 0.0, 4000.0, simple_job(10, 100.0, 1.0, 1.0)));
  scenario.adhoc_jobs.push_back(adhoc(0, 0.0, 2, 10.0));
  sim::Simulator sim(tiny_cluster());
  FairScheduler scheduler;
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  const sim::AdhocReport report = sim::evaluate_adhoc(result);
  // The ad-hoc job's fair share lets it finish far sooner than the big job.
  EXPECT_LT(report.mean_turnaround_s,
            result.jobs[0].completion_s.value() / 2.0);
}

TEST(Edf, DeadlineJobsBlockAdhoc) {
  workload::Scenario scenario;
  scenario.workflows.push_back(
      one_job_workflow(0, 0.0, 2000.0, simple_job(10, 100.0, 1.0, 1.0)));
  scenario.adhoc_jobs.push_back(adhoc(0, 0.0, 10, 30.0));
  sim::Simulator sim(tiny_cluster());
  EdfScheduler scheduler;
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  // Deadline job (1000 core-s / 100 per slot = 10 slots) hogs everything;
  // adhoc runs after.
  EXPECT_DOUBLE_EQ(result.jobs[0].completion_s.value(), 100.0);
  EXPECT_DOUBLE_EQ(result.jobs[1].completion_s.value(), 130.0);
}

TEST(Edf, OrdersByDecomposedDeadline) {
  // Workflow 1 has a much tighter deadline and must preempt workflow 0 in
  // priority even though it arrives second.
  workload::Scenario scenario;
  scenario.workflows.push_back(
      one_job_workflow(0, 0.0, 3000.0, simple_job(10, 50.0, 1.0, 1.0)));
  scenario.workflows.push_back(
      one_job_workflow(1, 10.0, 200.0, simple_job(10, 50.0, 1.0, 1.0)));
  sim::Simulator sim(tiny_cluster());
  EdfScheduler scheduler;
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  EXPECT_LT(result.jobs[1].completion_s.value(),
            result.jobs[0].completion_s.value());
}

TEST(Edf, MultiJobWorkflowRespectsPrecedence) {
  workload::Scenario scenario;
  workload::Workflow w;
  w.id = 0;
  w.name = "w";
  w.start_s = 0.0;
  w.deadline_s = 2000.0;
  w.dag = dag::make_chain(2);
  w.jobs = {simple_job(5, 40.0, 1.0, 1.0), simple_job(5, 40.0, 1.0, 1.0)};
  scenario.workflows.push_back(std::move(w));
  sim::Simulator sim(tiny_cluster());
  EdfScheduler scheduler;
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  EXPECT_EQ(result.not_ready_allocations, 0);
  EXPECT_GT(result.jobs[1].completion_s.value(),
            result.jobs[0].completion_s.value());
}

TEST(Cora, PacesDeadlineJobsInsteadOfRushing) {
  // Under contention CORA paces the deadline job (it only owns its paced
  // rate; the rest is shared), so it finishes later than EDF's full-width
  // optimum of 50 s — but still within its loose deadline.
  workload::Scenario scenario;
  scenario.workflows.push_back(
      one_job_workflow(0, 0.0, 1000.0, simple_job(10, 50.0, 1.0, 1.0)));
  scenario.adhoc_jobs.push_back(adhoc(0, 0.0, 10, 200.0));  // big competitor
  sim::Simulator sim(tiny_cluster());
  CoraScheduler scheduler;
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  EXPECT_GT(result.jobs[0].completion_s.value(), 50.0);
  EXPECT_LE(result.jobs[0].completion_s.value(), 1000.0);
}

TEST(Cora, SharesLeftoversWithAdhoc) {
  workload::Scenario scenario;
  scenario.workflows.push_back(
      one_job_workflow(0, 0.0, 1000.0, simple_job(10, 50.0, 1.0, 1.0)));
  scenario.adhoc_jobs.push_back(adhoc(0, 0.0, 5, 20.0));
  sim::Simulator sim(tiny_cluster());
  CoraScheduler scheduler;
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  const sim::AdhocReport report = sim::evaluate_adhoc(result);
  // The ad-hoc job is not starved behind the deadline job.
  EXPECT_LT(report.mean_turnaround_s, 100.0);
}

TEST(Morpheus, InfersDeadlinesFromHistoryShape) {
  workload::Scenario scenario;
  workload::Workflow w;
  w.id = 0;
  w.name = "w";
  w.start_s = 100.0;
  w.deadline_s = 5000.0;
  w.dag = dag::make_chain(2);
  w.jobs = {simple_job(5, 40.0, 1.0, 1.0), simple_job(5, 60.0, 1.0, 1.0)};
  scenario.workflows.push_back(w);
  sim::Simulator sim(tiny_cluster());
  MorpheusConfig config;
  config.slo_padding = 1.5;
  config.cluster.capacity = ResourceVec{10.0, 20.0};
  MorpheusScheduler scheduler(config);
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  // Historical offsets: job0 finishes at 40, job1 at 100 (uncontended).
  EXPECT_NEAR(scheduler.inferred_deadline(0), 100.0 + 1.5 * 40.0, 1e-6);
  EXPECT_NEAR(scheduler.inferred_deadline(1), 100.0 + 1.5 * 100.0, 1e-6);
}

TEST(Morpheus, MeetsInferredSlosWhenUncontended) {
  workload::Scenario scenario;
  scenario.workflows.push_back(
      one_job_workflow(0, 0.0, 2000.0, simple_job(10, 50.0, 1.0, 1.0)));
  sim::Simulator sim(tiny_cluster());
  MorpheusScheduler scheduler(
      MorpheusConfig{1.5, ResourceVec{10.0, 20.0}});
  const sim::SimResult result = sim.run(scenario, scheduler);
  ASSERT_TRUE(result.all_completed);
  EXPECT_LE(result.jobs[0].completion_s.value(),
            scheduler.inferred_deadline(0) + 10.0);
}

TEST(AllocationUtil, DesiredAmountRespectsEstimate) {
  sim::JobView view;
  view.kind = sim::JobKind::kDeadline;
  view.width = ResourceVec{100.0, 200.0};
  view.remaining_estimate = ResourceVec{30.0, 60.0};
  EXPECT_EQ(desired_amount(view), (ResourceVec{30.0, 60.0}));
  view.overrun = true;
  EXPECT_EQ(desired_amount(view), (ResourceVec{100.0, 200.0}));
  sim::JobView adhoc_view;
  adhoc_view.kind = sim::JobKind::kAdhoc;
  adhoc_view.width = ResourceVec{10.0, 20.0};
  EXPECT_EQ(desired_amount(adhoc_view), (ResourceVec{10.0, 20.0}));
}

TEST(AllocationUtil, GreedyScalesGangProportionally) {
  sim::JobView view;
  view.uid = 0;
  view.kind = sim::JobKind::kAdhoc;
  view.ready = true;
  view.width = ResourceVec{100.0, 50.0};
  std::vector<const sim::JobView*> views{&view};
  workload::ResourceVec issued{};
  std::vector<sim::Allocation> out;
  // Capacity limits CPU to half the width: both resources shrink by half.
  grant_greedy_in_order(views, ResourceVec{50.0, 1000.0}, true, issued, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].amount[0], 50.0);
  EXPECT_DOUBLE_EQ(out[0].amount[1], 25.0);
}

TEST(AllocationUtil, MaxMinFairSplitsAndSweeps) {
  sim::JobView a, b;
  a.uid = 0;
  a.kind = sim::JobKind::kAdhoc;
  a.ready = true;
  a.arrival_s = 0.0;
  a.width = ResourceVec{60.0, 60.0};
  b = a;
  b.uid = 1;
  b.arrival_s = 1.0;
  std::vector<const sim::JobView*> views{&a, &b};
  std::vector<sim::Allocation> out;
  grant_max_min_fair(views, ResourceVec{90.0, 90.0}, out);
  ASSERT_EQ(out.size(), 2u);
  // lambda = 90/120 = 0.75 -> 45 each; nothing left for the sweep.
  EXPECT_DOUBLE_EQ(out[0].amount[0], 45.0);
  EXPECT_DOUBLE_EQ(out[1].amount[0], 45.0);
}

TEST(AllocationUtil, SweepGivesRemainderInArrivalOrder) {
  sim::JobView a, b;
  a.uid = 0;
  a.kind = sim::JobKind::kAdhoc;
  a.ready = true;
  a.arrival_s = 5.0;
  a.width = ResourceVec{30.0, 30.0};
  b = a;
  b.uid = 1;
  b.arrival_s = 1.0;  // earlier arrival
  b.width = ResourceVec{100.0, 100.0};
  std::vector<const sim::JobView*> views{&a, &b};
  std::vector<sim::Allocation> out;
  // lambda = 100/130; leftovers go to b first (earlier arrival).
  grant_max_min_fair(views, ResourceVec{100.0, 100.0}, out);
  double total = 0.0;
  for (const auto& allocation : out) total += allocation.amount[0];
  EXPECT_NEAR(total, 100.0, 1e-9);
}

}  // namespace
}  // namespace flowtime::sched
