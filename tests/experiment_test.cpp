// Tests for the comparison harness plus the §IV -> §V hand-off: when do
// decomposed windows remain jointly feasible for the placement LP?
#include <gtest/gtest.h>

#include <cmath>

#include "core/decomposition.h"
#include "dag/generators.h"
#include "core/flow_placement.h"
#include "sched/experiment.h"
#include "util/rng.h"
#include "workload/trace_gen.h"

namespace flowtime {
namespace {

using workload::ResourceVec;

std::vector<core::LpJob> windows_to_lp_jobs(
    const workload::Workflow& w,
    const core::DecompositionResult& decomposition, double slot_s) {
  std::vector<core::LpJob> jobs;
  for (dag::NodeId v = 0; v < w.dag.num_nodes(); ++v) {
    const core::JobWindow& window =
        decomposition.windows[static_cast<std::size_t>(v)];
    const workload::JobSpec& spec = w.jobs[static_cast<std::size_t>(v)];
    core::LpJob job;
    job.uid = v;
    job.release_slot =
        static_cast<int>(std::floor(window.start_s / slot_s + 1e-9));
    job.deadline_slot = std::max(
        job.release_slot,
        static_cast<int>(std::ceil(window.deadline_s / slot_s - 1e-9)) - 1);
    job.demand = spec.total_demand();
    job.width = workload::scale(spec.max_parallel_demand(), slot_s);
    jobs.push_back(job);
  }
  return jobs;
}

class DecompositionFeasibility : public ::testing::TestWithParam<int> {};

TEST_P(DecompositionFeasibility, LooseWorkflowsYieldJointlyFeasibleWindows) {
  // The §IV decomposition guarantees per-level minimum runtimes, and its
  // demand-proportional slack split is designed so whole levels fit; with
  // realistic looseness (>= 2.5x makespan) the resulting windows must be
  // placeable within capacity (peak load <= 1).
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const ResourceVec capacity{300.0, 640.0};
  workload::WorkflowGenConfig gen;
  gen.num_jobs = static_cast<int>(rng.uniform_int(6, 20));
  gen.cluster.capacity = capacity;
  gen.looseness_min = 2.5;
  gen.looseness_max = 4.0;
  const workload::Workflow w = workload::make_workflow(rng, 0, 0.0, gen);

  core::DecompositionConfig dconfig;
  dconfig.cluster.capacity = capacity;
  const auto decomposition = core::DeadlineDecomposer(dconfig).decompose(w);
  ASSERT_TRUE(decomposition.ok());

  const double slot_s = 10.0;
  const auto jobs = windows_to_lp_jobs(w, decomposition, slot_s);
  int horizon = 1;
  for (const core::LpJob& job : jobs) {
    horizon = std::max(horizon, job.deadline_slot + 1);
  }
  const std::vector<ResourceVec> caps(
      static_cast<std::size_t>(horizon), workload::scale(capacity, slot_s));
  const auto placement = core::solve_flow_placement(jobs, caps, 0);
  EXPECT_TRUE(placement.feasible)
      << "peak " << placement.min_max_level;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecompositionFeasibility,
                         ::testing::Range(1, 11));

TEST(DecompositionFeasibility, TightDeadlinesCanExceedCapacityHonestly) {
  // No guarantee at looseness ~1: a wide fork-join whose middle level
  // needs more than the whole cluster per slot shows up as peak > 1 —
  // the signal FlowTimeScheduler reacts to, not a solver failure.
  workload::Workflow w;
  w.id = 0;
  w.name = "tight";
  w.start_s = 0.0;
  w.dag = dag::make_fork_join(8);
  workload::JobSpec job;
  job.name = "j";
  job.num_tasks = 40;
  job.task.runtime_s = 60.0;
  job.task.demand = ResourceVec{1.0, 2.0};
  w.jobs.assign(10, job);
  const ResourceVec capacity{100.0, 220.0};
  w.deadline_s = 1.02 * w.min_makespan_s(capacity);

  core::DecompositionConfig dconfig;
  dconfig.cluster.capacity = capacity;
  const auto decomposition = core::DeadlineDecomposer(dconfig).decompose(w);
  ASSERT_TRUE(decomposition.ok());
  const auto jobs = windows_to_lp_jobs(w, decomposition, 10.0);
  int horizon = 1;
  for (const core::LpJob& j : jobs) {
    horizon = std::max(horizon, j.deadline_slot + 1);
  }
  const std::vector<ResourceVec> caps(
      static_cast<std::size_t>(horizon), workload::scale(capacity, 10.0));
  const auto placement = core::solve_flow_placement(jobs, caps, 0);
  EXPECT_FALSE(placement.feasible);
  EXPECT_GT(placement.min_max_level, 1.0);
}

TEST(ExperimentHarness, DefaultSchedulerSetIsThePaperFigure4Set) {
  sched::ExperimentConfig config;
  config.sim.cluster.capacity = ResourceVec{100.0, 220.0};
  config.sim.max_horizon_s = 1800.0;
  config.flowtime.cluster.capacity = config.sim.cluster.capacity;
  config.flowtime.cluster.slot_seconds = config.sim.cluster.slot_seconds;

  workload::Fig4Config fig4;
  fig4.num_workflows = 1;
  fig4.jobs_per_workflow = 5;
  fig4.workflow.cluster.capacity = config.sim.cluster.capacity;
  fig4.adhoc.rate_per_s = 0.01;
  fig4.adhoc.horizon_s = 200.0;
  const workload::Scenario scenario = workload::make_fig4_scenario(3, fig4);
  const auto outcomes = sched::run_comparison(scenario, config);
  ASSERT_EQ(outcomes.size(), 5u);
  EXPECT_EQ(outcomes[0].name, "FlowTime");
  EXPECT_EQ(outcomes[1].name, "CORA");
  EXPECT_EQ(outcomes[2].name, "EDF");
  EXPECT_EQ(outcomes[3].name, "Fair");
  EXPECT_EQ(outcomes[4].name, "FIFO");
}

TEST(ExperimentHarness, MilestonesAreSlotAligned) {
  sched::ExperimentConfig config;
  config.sim.cluster.slot_seconds = 10.0;
  config.flowtime.cluster.capacity = config.sim.cluster.capacity;

  workload::Fig4Config fig4;
  fig4.num_workflows = 2;
  fig4.jobs_per_workflow = 6;
  fig4.workflow.cluster.capacity = config.sim.cluster.capacity;
  fig4.adhoc.rate_per_s = 0.001;
  fig4.adhoc.horizon_s = 100.0;
  const workload::Scenario scenario = workload::make_fig4_scenario(8, fig4);
  const sim::JobDeadlines deadlines =
      sched::milestone_deadlines(scenario, config);
  for (const auto& [ref, deadline] : deadlines) {
    (void)ref;
    EXPECT_NEAR(std::fmod(deadline, 10.0), 0.0, 1e-6) << deadline;
  }
}

TEST(ExperimentHarness, FlowTimeOutcomeCarriesSolverTelemetry) {
  sched::ExperimentConfig config;
  config.sim.cluster.capacity = ResourceVec{100.0, 220.0};
  config.sim.max_horizon_s = 3600.0;
  config.flowtime.cluster.capacity = config.sim.cluster.capacity;
  config.flowtime.cluster.slot_seconds = config.sim.cluster.slot_seconds;
  config.schedulers = {"FlowTime", "Fair"};

  workload::Fig4Config fig4;
  fig4.num_workflows = 1;
  fig4.jobs_per_workflow = 6;
  fig4.workflow.cluster.capacity = config.sim.cluster.capacity;
  fig4.adhoc.rate_per_s = 0.01;
  fig4.adhoc.horizon_s = 300.0;
  const workload::Scenario scenario = workload::make_fig4_scenario(4, fig4);
  const auto outcomes = sched::run_comparison(scenario, config);
  EXPECT_GE(outcomes[0].replans, 1);
  EXPECT_GT(outcomes[0].pivots, 0);
  EXPECT_EQ(outcomes[1].replans, 0);  // Fair has no solver
  EXPECT_EQ(outcomes[1].pivots, 0);
}

}  // namespace
}  // namespace flowtime
