// Direct unit tests for lp/maxflow beyond the placement-level coverage in
// flow_placement_test.cpp: repeated solves on one network, the parametric
// set_capacity pattern the fast path's binary search relies on, and the
// invalid-argument rejection contract.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "lp/maxflow.h"

namespace flowtime::lp {
namespace {

TEST(MaxFlowRepeat, RepeatedSolvesAreIdempotent) {
  // Diamond: 0 -> {1, 2} -> 3, bottleneck 7 + 4.
  FlowNetwork net(4);
  net.add_edge(0, 1, 10.0);
  net.add_edge(0, 2, 4.0);
  const int e13 = net.add_edge(1, 3, 7.0);
  net.add_edge(2, 3, 9.0);
  const double first = net.max_flow(0, 3);
  EXPECT_DOUBLE_EQ(first, 11.0);
  // State fully resets between calls: same value, same edge flows.
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(net.max_flow(0, 3), first);
    EXPECT_DOUBLE_EQ(net.flow(e13), 7.0);
  }
}

TEST(MaxFlowRepeat, ParametricCapacitySweepIsMonotone) {
  // One job (demand 10, width 4) over 3 slots of capacity 5: the fast
  // path's inner loop — scale sink-side capacities by u and re-solve.
  FlowNetwork net(6);  // 0 source, 1 job, 2..4 slots, 5 sink
  net.add_edge(0, 1, 10.0);
  std::vector<int> slot_edges;
  for (int t = 0; t < 3; ++t) {
    net.add_edge(1, 2 + t, 4.0);
    slot_edges.push_back(net.add_edge(2 + t, 5, 5.0));
  }
  double previous = -1.0;
  for (double u : {0.2, 0.5, 2.0 / 3.0, 0.8, 1.0}) {
    for (int e : slot_edges) ASSERT_TRUE(net.set_capacity(e, u * 5.0));
    const double flow = net.max_flow(0, 5);
    EXPECT_GE(flow, previous - 1e-12);  // monotone in u
    previous = flow;
    // Saturates at min(total width 12, demand 10, 3 * u * 5).
    EXPECT_NEAR(flow, std::min(10.0, 3.0 * u * 5.0), 1e-9);
  }
  // Shrinking back down reproduces the small-u answer exactly.
  for (int e : slot_edges) ASSERT_TRUE(net.set_capacity(e, 0.2 * 5.0));
  EXPECT_NEAR(net.max_flow(0, 5), 3.0, 1e-9);
}

TEST(MaxFlowRepeat, CapacityZeroClosesAnEdge) {
  FlowNetwork net(3);
  const int e01 = net.add_edge(0, 1, 5.0);
  net.add_edge(1, 2, 5.0);
  EXPECT_DOUBLE_EQ(net.max_flow(0, 2), 5.0);
  ASSERT_TRUE(net.set_capacity(e01, 0.0));
  EXPECT_DOUBLE_EQ(net.max_flow(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(net.flow(e01), 0.0);
}

TEST(MaxFlowReject, SetCapacityRejectsBadIdsAndValues) {
#ifndef NDEBUG
  GTEST_SKIP() << "asserts fire before the return-false path in debug";
#else
  FlowNetwork net(3);
  const int forward = net.add_edge(0, 1, 2.0);
  ASSERT_EQ(forward % 2, 0);
  // Reverse companion id, out-of-range ids, negative and NaN capacities.
  EXPECT_FALSE(net.set_capacity(forward + 1, 1.0));
  EXPECT_FALSE(net.set_capacity(-1, 1.0));
  EXPECT_FALSE(net.set_capacity(99, 1.0));
  EXPECT_FALSE(net.set_capacity(forward, -1.0));
  EXPECT_FALSE(
      net.set_capacity(forward, std::numeric_limits<double>::quiet_NaN()));
  // All rejected writes left the network unchanged.
  net.add_edge(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(net.max_flow(0, 2), 2.0);
  // A valid write still works after rejections.
  EXPECT_TRUE(net.set_capacity(forward, 1.5));
  EXPECT_DOUBLE_EQ(net.max_flow(0, 2), 1.5);
#endif
}

}  // namespace
}  // namespace flowtime::lp
