// Graceful-degradation ladder (DESIGN.md §10): SolveBudget semantics, the
// greedy fallback placement, the scheduler's escalation ladder, degraded-mode
// hysteresis, and determinism of pivot-capped degraded runs.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/flowtime_scheduler.h"
#include "core/greedy_placement.h"
#include "core/lp_formulation.h"
#include "lp/simplex.h"
#include "lp/solve_budget.h"
#include "obs/testing.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "workload/scenario_io.h"

namespace flowtime {
namespace {

using workload::kCpu;
using workload::kMemory;
using workload::ResourceVec;

// ---------------------------------------------------------------------------
// SolveBudget

TEST(SolveBudget, UnlimitedByDefault) {
  lp::SolveBudget budget;
  EXPECT_FALSE(budget.limited());
  EXPECT_FALSE(budget.exhausted());
  budget.charge_pivot();
  EXPECT_FALSE(budget.exhausted());
}

TEST(SolveBudget, PivotCapExhaustsAsIterationLimit) {
  lp::SolveBudget budget;
  budget.set_pivot_cap(2);
  EXPECT_TRUE(budget.limited());
  EXPECT_FALSE(budget.exhausted());
  budget.charge_pivot();
  EXPECT_FALSE(budget.exhausted());
  budget.charge_pivot();
  ASSERT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.exhausted_status(), lp::SolveStatus::kIterationLimit);
  // Exhaustion latches.
  EXPECT_TRUE(budget.exhausted());
}

TEST(SolveBudget, CancelTokenExhaustsAsTimeout) {
  std::atomic<bool> cancel{false};
  lp::SolveBudget budget;
  budget.set_cancel_token(&cancel);
  EXPECT_TRUE(budget.limited());
  EXPECT_FALSE(budget.exhausted());
  cancel.store(true);
  ASSERT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.exhausted_status(), lp::SolveStatus::kTimeout);
}

TEST(SolveBudget, SimplexStopsAtPivotCapWithFeasiblePoint) {
  // Phase 1 prices structural columns ahead of slacks (they clear more
  // artificial mass per pivot), so it lands on a vertex with x and y well
  // inside the box; the real objective pulls the other way, back to the
  // origin, which takes at least two more pivots. A cap of phase-1-plus-one
  // therefore cuts mid-phase-2, which must still hand back the current
  // feasible vertex (truncated, not failed).
  lp::LpProblem p;
  const int x = p.add_column(3.0, 0.0, lp::kInfinity);
  const int y = p.add_column(5.0, 0.0, lp::kInfinity);
  p.add_row(lp::RowSense::kLessEqual, 4.0, {{x, 1.0}});
  p.add_row(lp::RowSense::kLessEqual, 12.0, {{y, 2.0}});
  p.add_row(lp::RowSense::kLessEqual, 18.0, {{x, 3.0}, {y, 2.0}});

  const lp::Solution full = lp::SimplexSolver().solve(p);
  ASSERT_TRUE(full.optimal());
  EXPECT_NEAR(full.objective, 0.0, 1e-7);
  ASSERT_GE(full.iterations, full.phase1_iterations + 2)
      << "phase 2 must need at least two pivots for the cut to be partial";

  lp::SolveBudget budget;
  budget.set_pivot_cap(full.phase1_iterations + 1);
  lp::SimplexOptions options;
  options.budget = &budget;
  const lp::Solution s = lp::SimplexSolver(options).solve(p);
  EXPECT_EQ(s.status, lp::SolveStatus::kIterationLimit);
  ASSERT_EQ(s.x.size(), 2u);
  EXPECT_TRUE(p.is_feasible(s.x));

  // A cap that dies inside phase 1 has no feasible point to hand back:
  // the raw status propagates so the caller's ladder can classify it.
  lp::SolveBudget tight;
  tight.set_pivot_cap(1);
  lp::SimplexOptions tight_options;
  tight_options.budget = &tight;
  const lp::Solution cut = lp::SimplexSolver(tight_options).solve(p);
  EXPECT_EQ(cut.status, lp::SolveStatus::kIterationLimit);
  EXPECT_TRUE(cut.x.empty());
}

TEST(SolveBudget, SimplexHonorsCancellationToken) {
  lp::LpProblem p;
  const int x = p.add_column(-1.0, 0.0, 10.0);
  p.add_row(lp::RowSense::kLessEqual, 5.0, {{x, 1.0}});

  std::atomic<bool> cancel{true};  // cancelled before the solve even starts
  lp::SolveBudget budget;
  budget.set_cancel_token(&cancel);
  lp::SimplexOptions options;
  options.budget = &budget;
  const lp::Solution s = lp::SimplexSolver(options).solve(p);
  EXPECT_EQ(s.status, lp::SolveStatus::kTimeout);
}

// ---------------------------------------------------------------------------
// Greedy fallback placement

std::vector<ResourceVec> flat_capacity(int slots, double cpu, double mem) {
  return std::vector<ResourceVec>(static_cast<std::size_t>(slots),
                                  ResourceVec{cpu, mem});
}

core::LpJob make_job(int uid, int release, int deadline, ResourceVec demand,
                     ResourceVec width) {
  core::LpJob job;
  job.uid = uid;
  job.release_slot = release;
  job.deadline_slot = deadline;
  job.demand = demand;
  job.width = width;
  return job;
}

TEST(GreedyPlacement, DeliversFullDemandInsideFeasibleWindows) {
  // B's deadline is tighter, so EDF places it first (slots 0-1); A then
  // water-fills the three emptiest remaining slots (2-4).
  const std::vector<core::LpJob> jobs = {
      make_job(1, 0, 4, ResourceVec{300.0, 30.0}, ResourceVec{100.0, 10.0}),
      make_job(2, 0, 1, ResourceVec{150.0, 15.0}, ResourceVec{100.0, 10.0}),
  };
  const auto capacity = flat_capacity(5, 100.0, 200.0);
  const core::LpSchedule s = core::greedy_placement(jobs, capacity, 0);

  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(s.capacity_exceeded);
  ASSERT_EQ(s.allocation.size(), 2u);
  ASSERT_EQ(s.num_slots, 5);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    ResourceVec placed{};
    for (int t = 0; t < s.num_slots; ++t) {
      for (int r = 0; r < workload::kNumResources; ++r) {
        placed[r] += s.allocation[j][t][r];
        EXPECT_LE(s.allocation[j][t][r], jobs[j].width[r] + 1e-9);
        if (t < jobs[j].release_slot || t > jobs[j].deadline_slot) {
          EXPECT_EQ(s.allocation[j][t][r], 0.0)
              << "job " << j << " slot " << t << " outside window";
        }
      }
    }
    EXPECT_NEAR(placed[kCpu], jobs[j].demand[kCpu], 1e-9);
    EXPECT_NEAR(placed[kMemory], jobs[j].demand[kMemory], 1e-9);
  }
  // The tight job must occupy its whole window; the loose one avoids it.
  EXPECT_GT(s.allocation[1][0][kCpu], 0.0);
  EXPECT_GT(s.allocation[1][1][kCpu], 0.0);
  EXPECT_EQ(s.allocation[0][0][kCpu], 0.0);
  EXPECT_EQ(s.allocation[0][1][kCpu], 0.0);
  EXPECT_NEAR(s.max_normalized_load, 1.0, 1e-9);
}

TEST(GreedyPlacement, OversubscriptionIsFlaggedNotClipped) {
  // One job that cannot fit: 1000 core-seconds through a 2-slot window on a
  // 100 core-seconds/slot cluster. The placement still delivers the demand
  // (the allocator shrinks later); capacity_exceeded reports the overload.
  const std::vector<core::LpJob> jobs = {
      make_job(7, 0, 1, ResourceVec{1000.0, 10.0}, ResourceVec{500.0, 5.0}),
  };
  const auto capacity = flat_capacity(2, 100.0, 200.0);
  const core::LpSchedule s = core::greedy_placement(jobs, capacity, 0);

  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s.capacity_exceeded);
  EXPECT_NEAR(s.max_normalized_load, 5.0, 1e-9);
  double placed = 0.0;
  for (int t = 0; t < s.num_slots; ++t) placed += s.allocation[0][t][kCpu];
  EXPECT_NEAR(placed, 1000.0, 1e-9);
}

TEST(GreedyPlacement, ClipsWindowsToTheHorizon) {
  // Release before the horizon and deadline past it: the window clamps to
  // [0, num_slots) and the demand still lands in full.
  const std::vector<core::LpJob> jobs = {
      make_job(3, -5, 10, ResourceVec{90.0, 9.0}, ResourceVec{30.0, 3.0}),
  };
  const auto capacity = flat_capacity(3, 100.0, 200.0);
  const core::LpSchedule s = core::greedy_placement(jobs, capacity, 0);

  ASSERT_TRUE(s.ok());
  double placed = 0.0;
  for (int t = 0; t < s.num_slots; ++t) placed += s.allocation[0][t][kCpu];
  EXPECT_NEAR(placed, 90.0, 1e-9);
}

TEST(GreedyPlacement, IsDeterministic) {
  const std::vector<core::LpJob> jobs = {
      make_job(1, 0, 9, ResourceVec{400.0, 40.0}, ResourceVec{80.0, 8.0}),
      make_job(2, 2, 6, ResourceVec{200.0, 20.0}, ResourceVec{100.0, 10.0}),
      make_job(3, 0, 3, ResourceVec{120.0, 12.0}, ResourceVec{60.0, 6.0}),
  };
  const auto capacity = flat_capacity(10, 150.0, 300.0);
  const core::LpSchedule a = core::greedy_placement(jobs, capacity, 0);
  const core::LpSchedule b = core::greedy_placement(jobs, capacity, 0);
  ASSERT_EQ(a.allocation.size(), b.allocation.size());
  for (std::size_t j = 0; j < a.allocation.size(); ++j) {
    ASSERT_EQ(a.allocation[j].size(), b.allocation[j].size());
    for (std::size_t t = 0; t < a.allocation[j].size(); ++t) {
      EXPECT_EQ(a.allocation[j][t], b.allocation[j][t]);
    }
  }
  EXPECT_EQ(a.max_normalized_load, b.max_normalized_load);
}

TEST(GreedyPlacement, EmptyHorizonIsInfeasibleOnlyWithJobs) {
  const std::vector<ResourceVec> empty_capacity;
  EXPECT_TRUE(core::greedy_placement({}, empty_capacity, 0).ok());
  const std::vector<core::LpJob> jobs = {
      make_job(1, 0, 1, ResourceVec{10.0, 1.0}, ResourceVec{10.0, 1.0})};
  EXPECT_EQ(core::greedy_placement(jobs, empty_capacity, 0).status,
            lp::SolveStatus::kInfeasible);
}

// ---------------------------------------------------------------------------
// End-to-end escalation ladder

constexpr const char* kBaseScenario = R"(
cluster cores=100 mem_gb=256 slot_seconds=10

workflow id=0 name=wf start=0 deadline=600
job node=0 name=crunch tasks=40 runtime=100 cores=1 mem=2
end

adhoc id=0 arrival=30 tasks=4 runtime=30 cores=1 mem=1
)";

workload::ParsedScenario parse(const std::string& text) {
  workload::ParseError error;
  const auto parsed = workload::parse_scenario(text, &error);
  EXPECT_TRUE(parsed.has_value())
      << "line " << error.line << ": " << error.message;
  return *parsed;
}

sim::SimConfig sim_config(const workload::ParsedScenario& parsed) {
  sim::SimConfig config;
  if (parsed.cluster) config.cluster = *parsed.cluster;
  config.fault_plan = parsed.fault_plan;
  return config;
}

core::FlowTimeConfig flowtime_config(const sim::SimConfig& sim) {
  core::FlowTimeConfig config;
  config.cluster = sim.cluster;
  return config;
}

TEST(DegradationLadder, PivotBudgetOfOneFallsThroughToGreedy) {
  auto parsed = parse(kBaseScenario);
  const sim::SimConfig config = sim_config(parsed);
  core::FlowTimeConfig ft = flowtime_config(config);
  ft.solver_pivot_budget = 1;  // deterministic: exhausts inside rung 0
  core::FlowTimeScheduler scheduler(ft);
  const sim::SimResult result =
      sim::Simulator(config).run(parsed.scenario, scheduler);

  // The acceptance bar: even with the solver effectively disabled, every
  // runnable deadline job is placed and the run finishes clean.
  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(result.capacity_violations, 0);
  EXPECT_EQ(result.width_violations, 0);
  EXPECT_EQ(result.not_ready_allocations, 0);

  ASSERT_FALSE(scheduler.replan_log().empty());
  EXPECT_GE(scheduler.degraded_replans(), 1);
  int greedy_replans = 0;
  for (const core::ReplanRecord& record : scheduler.replan_log()) {
    // A re-plan with no incomplete deadline jobs solves a trivial LP in
    // zero pivots and legitimately stays on rung 0; any real placement
    // must have burned the one-pivot budget and fallen through to greedy.
    if (record.planned_jobs == 0) continue;
    ++greedy_replans;
    EXPECT_EQ(record.degrade_rung, 2) << "slot " << record.slot;
    EXPECT_EQ(record.degrade_reason, core::DegradeReason::kIterationLimit);
    EXPECT_TRUE(record.budget_exhausted);
    EXPECT_TRUE(record.lp_failed);
  }
  EXPECT_GE(greedy_replans, 1);
}

TEST(DegradationLadder, PivotCappedDegradedRunsAreBitIdentical) {
  auto run_once = [&]() {
    auto parsed = parse(kBaseScenario);
    const sim::SimConfig config = sim_config(parsed);
    core::FlowTimeConfig ft = flowtime_config(config);
    ft.solver_pivot_budget = 1;
    core::FlowTimeScheduler scheduler(ft);
    return sim::Simulator(config).run(parsed.scenario, scheduler);
  };
  const sim::SimResult a = run_once();
  const sim::SimResult b = run_once();
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].completion_s, b.jobs[i].completion_s);
  }
  ASSERT_EQ(a.used_per_slot.size(), b.used_per_slot.size());
  for (std::size_t t = 0; t < a.used_per_slot.size(); ++t) {
    EXPECT_EQ(a.used_per_slot[t], b.used_per_slot[t]) << "slot " << t;
  }
}

TEST(DegradationLadder, HugeBudgetIsTransparent) {
  // A budget that never fires must not perturb the solve: installing the
  // watchdog may cost a clock read per pivot but never a different pivot.
  auto run_once = [&](double budget_ms) {
    auto parsed = parse(kBaseScenario);
    const sim::SimConfig config = sim_config(parsed);
    core::FlowTimeConfig ft = flowtime_config(config);
    ft.solver_budget_ms = budget_ms;
    core::FlowTimeScheduler scheduler(ft);
    return sim::Simulator(config).run(parsed.scenario, scheduler);
  };
  const sim::SimResult unlimited = run_once(0.0);
  const sim::SimResult bounded = run_once(1e9);
  ASSERT_EQ(unlimited.jobs.size(), bounded.jobs.size());
  for (std::size_t i = 0; i < unlimited.jobs.size(); ++i) {
    EXPECT_EQ(unlimited.jobs[i].completion_s, bounded.jobs[i].completion_s);
  }
  ASSERT_EQ(unlimited.used_per_slot.size(), bounded.used_per_slot.size());
  for (std::size_t t = 0; t < unlimited.used_per_slot.size(); ++t) {
    EXPECT_EQ(unlimited.used_per_slot[t], bounded.used_per_slot[t]);
  }
}

TEST(DegradationLadder, EscalationsAreTracedWithReasons) {
  obs::testing::ScopedRegistryReset reset;
  auto* sink = new obs::MemorySink();
  obs::set_trace_sink(std::unique_ptr<obs::TraceSink>(sink));

  auto parsed = parse(kBaseScenario);
  const sim::SimConfig config = sim_config(parsed);
  core::FlowTimeConfig ft = flowtime_config(config);
  ft.solver_pivot_budget = 1;
  core::FlowTimeScheduler scheduler(ft);
  const sim::SimResult result =
      sim::Simulator(config).run(parsed.scenario, scheduler);
  EXPECT_TRUE(result.all_completed);

  int escalations = 0;
  int enters = 0;
  int degraded_span_begins = 0;
  for (const std::string& line : sink->lines()) {
    std::map<std::string, std::string> record;
    ASSERT_TRUE(obs::parse_flat_json(line, &record)) << line;
    const std::string type = record["type"];
    if (type == "solver_escalation") {
      ++escalations;
      EXPECT_EQ(record["reason"], "iteration_limit") << line;
    } else if (type == "degrade_enter") {
      ++enters;
    } else if (type == "span_begin" && record["kind"] == "degraded") {
      ++degraded_span_begins;
    } else if (type == "replan" && record["degrade_rung"] != "0") {
      EXPECT_EQ(record["degrade_rung"], "2") << line;
      EXPECT_EQ(record["degrade_reason"], "iteration_limit") << line;
    }
  }
  // Each degraded re-plan escalates twice (warm -> cold -> greedy); every
  // degraded-mode window opens exactly one paired span.
  EXPECT_GE(escalations, 2);
  EXPECT_EQ(escalations, 2 * scheduler.degraded_replans());
  EXPECT_GE(enters, 1);
  EXPECT_EQ(degraded_span_begins, enters);
}

TEST(DegradationLadder, SolverSabotageEntersAndHysteresisExits) {
  obs::testing::ScopedRegistryReset reset;
  auto* sink = new obs::MemorySink();
  obs::set_trace_sink(std::unique_ptr<obs::TraceSink>(sink));

  // The sabotage window covers slot 0 only: the arrival re-plan is forced
  // into a numerical failure (rung 1 cold retry succeeds). The second
  // workflow arrives long after the window lifts, giving the hysteresis a
  // clean full-LP re-plan to recover on.
  auto parsed = parse(
      "cluster cores=100 mem_gb=256 slot_seconds=10\n"
      "workflow id=0 name=wf start=0 deadline=600\n"
      "job node=0 name=crunch tasks=40 runtime=100 cores=1 mem=2\n"
      "end\n"
      "workflow id=1 name=late start=200 deadline=900\n"
      "job node=0 name=tail tasks=10 runtime=60 cores=1 mem=2\n"
      "end\n"
      "fault seed=1\n"
      "fault_solver slot=0 until=1 fail=1\n");
  const sim::SimConfig config = sim_config(parsed);
  core::FlowTimeConfig ft = flowtime_config(config);
  ft.degrade_recovery_replans = 1;
  core::FlowTimeScheduler scheduler(ft);
  const sim::SimResult result =
      sim::Simulator(config).run(parsed.scenario, scheduler);

  EXPECT_TRUE(result.all_completed);
  EXPECT_GE(scheduler.degraded_replans(), 1);
  EXPECT_FALSE(scheduler.degraded_mode())
      << "one clean re-plan after the window must recover the mode";

  ASSERT_FALSE(scheduler.replan_log().empty());
  const core::ReplanRecord& first = scheduler.replan_log().front();
  EXPECT_EQ(first.degrade_rung, 1) << "the cold retry absorbs the sabotage";
  EXPECT_EQ(first.degrade_reason, core::DegradeReason::kNumericalFailure);

  int enters = 0;
  int exits = 0;
  int sabotage_events = 0;
  for (const std::string& line : sink->lines()) {
    std::map<std::string, std::string> record;
    ASSERT_TRUE(obs::parse_flat_json(line, &record)) << line;
    const std::string type = record["type"];
    if (type == "degrade_enter") ++enters;
    if (type == "degrade_exit") ++exits;
    if (type == "fault_injected" && record["kind"] == "solver_sabotage") {
      ++sabotage_events;
    }
  }
  EXPECT_EQ(enters, 1);
  EXPECT_EQ(exits, 1);
  EXPECT_EQ(sabotage_events, 1);
  EXPECT_EQ(result.faults.solver_sabotages, 1);
}

TEST(DegradationLadder, OneMillisecondWallBudgetSurvivesChaosSuite) {
  // The wall clock is machine-dependent, so this test asserts the safety
  // contract, not which rung fired: under a 1 ms budget plus task-failure
  // chaos, the run completes with every job placed and any escalation
  // carries an attributed reason.
  auto parsed = parse(std::string(kBaseScenario) +
                      "fault seed=42\n"
                      "fault_hazard prob=0.01 lose=0.5 backoff=2 retries=3\n");
  const sim::SimConfig config = sim_config(parsed);
  core::FlowTimeConfig ft = flowtime_config(config);
  ft.solver_budget_ms = 1.0;
  core::FlowTimeScheduler scheduler(ft);
  const sim::SimResult result =
      sim::Simulator(config).run(parsed.scenario, scheduler);

  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(result.capacity_violations, 0);
  EXPECT_EQ(result.width_violations, 0);
  EXPECT_EQ(result.not_ready_allocations, 0);
  for (const core::ReplanRecord& record : scheduler.replan_log()) {
    if (record.degrade_rung > 0) {
      EXPECT_NE(record.degrade_reason, core::DegradeReason::kNone)
          << "slot " << record.slot;
    } else {
      EXPECT_EQ(record.degrade_reason, core::DegradeReason::kNone);
    }
  }
}

}  // namespace
}  // namespace flowtime
