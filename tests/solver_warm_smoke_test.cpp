// Smoke test for the warm-started LP hot path (DESIGN.md "Warm starts").
//
// Drives the exact pattern the scheduler produces: a sequence of re-plans
// over the same job set whose remaining demands shrink step by step (work
// completing between deviation re-plans), so every step after the first
// builds the same LP shape with different data. With a shared
// PlacementWarmCache the tail steps must warm-start — observable through
// the lp.simplex.warm_starts counter — and the total pivot count must drop
// well below the cold baseline of the identical sequence.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/lp_formulation.h"
#include "obs/metrics.h"
#include "obs/testing.h"
#include "util/rng.h"

namespace flowtime::core {
namespace {

using workload::ResourceVec;

constexpr int kHorizon = 16;
constexpr int kSteps = 6;

std::vector<LpJob> make_jobs(util::Rng& rng) {
  std::vector<LpJob> jobs;
  for (int i = 0; i < 10; ++i) {
    LpJob job;
    job.uid = i;
    job.release_slot = static_cast<int>(rng.uniform_int(0, 6));
    job.deadline_slot =
        job.release_slot + static_cast<int>(rng.uniform_int(3, 9));
    const int window = job.deadline_slot - job.release_slot + 1;
    const double cpu_width = rng.uniform_real(20.0, 60.0);
    const double mem_width = rng.uniform_real(40.0, 120.0);
    job.width = ResourceVec{cpu_width, mem_width};
    // Demand fills 50-80% of the window at full width: multi-round lexmin
    // territory, comfortably feasible at every shrink step.
    const double fill = rng.uniform_real(0.5, 0.8);
    job.demand =
        ResourceVec{fill * cpu_width * window, fill * mem_width * window};
    jobs.push_back(job);
  }
  return jobs;
}

// The re-plan at step s sees the same jobs and windows with demands scaled
// down — progress since the previous plan. The LP shape is unchanged.
std::vector<LpJob> at_step(const std::vector<LpJob>& jobs, int step) {
  std::vector<LpJob> out = jobs;
  const double scale = 1.0 - 0.07 * step;
  for (LpJob& job : out) job.demand = workload::scale(job.demand, scale);
  return out;
}

// Runs the whole sequence, returns per-step pivot counts.
std::vector<std::int64_t> run_sequence(const std::vector<LpJob>& jobs,
                                       PlacementWarmCache* cache,
                                       bool warm_start) {
  const std::vector<ResourceVec> caps(
      kHorizon, ResourceVec{500.0, 1000.0});
  LpScheduleOptions options;
  options.warm_cache = cache;
  options.lexmin.warm_start = warm_start;
  std::vector<std::int64_t> pivots;
  for (int step = 0; step < kSteps; ++step) {
    const LpSchedule s = solve_placement(at_step(jobs, step), caps, 0,
                                         options);
    EXPECT_TRUE(s.ok()) << "step " << step;
    EXPECT_FALSE(s.capacity_exceeded) << "step " << step;
    pivots.push_back(s.pivots);
  }
  return pivots;
}

std::int64_t total(const std::vector<std::int64_t>& v) {
  std::int64_t sum = 0;
  for (const std::int64_t p : v) sum += p;
  return sum;
}

TEST(SolverWarmSmoke, ReplanSequenceWarmStartsAndCutsPivots) {
  obs::testing::ScopedRegistryReset reset;
  obs::set_enabled(true);
  obs::Counter& warm_starts =
      obs::registry().counter("lp.simplex.warm_starts");

  util::Rng rng(42);
  const std::vector<LpJob> jobs = make_jobs(rng);

  // Cold baseline: warm starting off entirely — every round of every step
  // pays the full two-phase solve, the pre-hot-path behaviour.
  const std::vector<std::int64_t> cold =
      run_sequence(jobs, nullptr, /*warm_start=*/false);
  EXPECT_EQ(warm_starts.value(), 0) << "cold run must not warm-start";

  // Warm run: rounds thread bases within each solve, and the shared cache
  // carries the final basis across steps.
  PlacementWarmCache cache;
  const std::vector<std::int64_t> warm =
      run_sequence(jobs, &cache, /*warm_start=*/true);

  EXPECT_GT(warm_starts.value(), 0);
  ASSERT_EQ(cold.size(), warm.size());
  // The hot path must beat the cold baseline outright, and by at least the
  // 2x it is built to deliver on a multi-round replan sequence.
  EXPECT_LT(total(warm), total(cold));
  EXPECT_LE(2 * total(warm), total(cold))
      << "warm total " << total(warm) << " vs cold total " << total(cold);
}

TEST(SolverWarmSmoke, ShapeChangeFallsBackWithoutFailing) {
  // A job set change alters the fingerprint: the cross-replan cache entry
  // must be bypassed (stale-basis reuse would be a shape mismatch) and the
  // solve must still succeed.
  obs::testing::ScopedRegistryReset reset;
  obs::set_enabled(true);

  util::Rng rng(7);
  std::vector<LpJob> jobs = make_jobs(rng);
  const std::vector<ResourceVec> caps(
      kHorizon, ResourceVec{500.0, 1000.0});
  PlacementWarmCache cache;
  LpScheduleOptions options;
  options.warm_cache = &cache;

  const LpSchedule first = solve_placement(jobs, caps, 0, options);
  ASSERT_TRUE(first.ok());

  jobs.pop_back();  // different shape: fingerprint mismatch, cold solve
  const LpSchedule second = solve_placement(jobs, caps, 0, options);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second.pivots, 0);
}

}  // namespace
}  // namespace flowtime::core
