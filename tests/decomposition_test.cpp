// Tests for deadline decomposition (paper §IV), including the Fig. 3
// fork-join example and the critical-path fallback.
#include <gtest/gtest.h>

#include <cmath>

#include "core/decomposition.h"
#include "dag/generators.h"
#include "util/rng.h"
#include "workload/trace_gen.h"

namespace flowtime::core {
namespace {

using workload::ResourceVec;

workload::JobSpec uniform_job(double runtime = 100.0) {
  workload::JobSpec job;
  job.name = "j";
  job.num_tasks = 10;
  job.task.runtime_s = runtime;
  job.task.demand = ResourceVec{1.0, 2.0};
  return job;
}

// The paper's Fig. 3: fork-join with n-1 parallel middle jobs, all jobs
// identical.
workload::Workflow fig3_workflow(int middle_jobs, double deadline) {
  workload::Workflow w;
  w.id = 0;
  w.name = "fig3";
  w.start_s = 0.0;
  w.deadline_s = deadline;
  w.dag = dag::make_fork_join(middle_jobs);
  w.jobs.assign(static_cast<std::size_t>(middle_jobs + 2), uniform_job());
  return w;
}

TEST(Decomposition, Fig3ResourceDemandShares) {
  // n+1 = 11 identical jobs: 1 source, 9 middle, 1 sink. The demand-based
  // split gives the middle level 9/11 of the slack (vs 1/3 under the
  // critical-path scheme) — the §IV-B example.
  const int middle = 9;
  const double deadline = 11000.0;
  const workload::Workflow w = fig3_workflow(middle, deadline);
  DecompositionConfig config;
  config.cluster.capacity = ResourceVec{500.0, 1024.0};
  const DeadlineDecomposer decomposer(config);
  const auto result = decomposer.decompose(w);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.used_fallback);
  ASSERT_EQ(result.levels.size(), 3u);

  // All jobs identical: min runtime 100 s per level; slack = 11000 - 300.
  const double slack = deadline - 300.0;
  const double expected_middle = 100.0 + slack * (middle / (middle + 2.0));
  EXPECT_NEAR(result.level_duration_s[1], expected_middle, 1e-6);
  EXPECT_NEAR(result.level_duration_s[0],
              100.0 + slack / (middle + 2.0), 1e-6);
}

TEST(Decomposition, CriticalPathModeGivesEqualSharesForUniformChain) {
  const workload::Workflow w = fig3_workflow(9, 11000.0);
  DecompositionConfig config;
  config.mode = DecompositionMode::kCriticalPath;
  const DeadlineDecomposer decomposer(config);
  const auto result = decomposer.decompose(w);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.used_fallback);
  // Equal min runtimes -> each level gets 1/3 of the whole budget, the
  // "traditional approach" of the Fig. 3 discussion.
  for (int l = 0; l < 3; ++l) {
    EXPECT_NEAR(result.level_duration_s[static_cast<std::size_t>(l)],
                11000.0 / 3.0, 1e-6);
  }
}

TEST(Decomposition, NegativeSlackFallsBackToCriticalPath) {
  // Deadline below the 300 s minimum makespan.
  const workload::Workflow w = fig3_workflow(9, 250.0);
  const DeadlineDecomposer decomposer;
  const auto result = decomposer.decompose(w);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.used_fallback);
  double total = 0.0;
  for (double d : result.level_duration_s) total += d;
  EXPECT_NEAR(total, 250.0, 1e-6);
}

TEST(Decomposition, WindowsAreContiguousAndEndAtDeadline) {
  util::Rng rng(5);
  workload::WorkflowGenConfig config;
  config.num_jobs = 20;
  const workload::Workflow w = workload::make_workflow(rng, 0, 50.0, config);
  const DeadlineDecomposer decomposer;
  const auto result = decomposer.decompose(w);
  ASSERT_TRUE(result.ok());

  // Every level's jobs share one window; consecutive windows abut.
  double cursor = w.start_s;
  for (std::size_t l = 0; l < result.levels.size(); ++l) {
    for (dag::NodeId v : result.levels[l]) {
      const JobWindow& window = result.windows[static_cast<std::size_t>(v)];
      EXPECT_NEAR(window.start_s, cursor, 1e-6);
    }
    cursor += result.level_duration_s[l];
  }
  EXPECT_NEAR(cursor, w.deadline_s, 1e-6);
}

TEST(Decomposition, ParentWindowsPrecedeChildWindows) {
  util::Rng rng(6);
  workload::WorkflowGenConfig config;
  config.num_jobs = 24;
  const workload::Workflow w = workload::make_workflow(rng, 0, 0.0, config);
  const DeadlineDecomposer decomposer;
  const auto result = decomposer.decompose(w);
  ASSERT_TRUE(result.ok());
  for (dag::NodeId v = 0; v < w.dag.num_nodes(); ++v) {
    for (dag::NodeId c : w.dag.children(v)) {
      EXPECT_LE(result.windows[static_cast<std::size_t>(v)].deadline_s,
                result.windows[static_cast<std::size_t>(c)].start_s + 1e-6);
    }
  }
}

TEST(Decomposition, EveryLevelGetsAtLeastItsMinimumRuntime) {
  util::Rng rng(7);
  workload::WorkflowGenConfig config;
  config.num_jobs = 18;
  config.looseness_min = 1.5;
  config.looseness_max = 2.0;
  const workload::Workflow w = workload::make_workflow(rng, 0, 0.0, config);
  DecompositionConfig dconfig;
  const DeadlineDecomposer decomposer(dconfig);
  const auto result = decomposer.decompose(w);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.used_fallback);
  for (std::size_t l = 0; l < result.levels.size(); ++l) {
    double level_min = 0.0;
    for (dag::NodeId v : result.levels[l]) {
      level_min = std::max(
          level_min, w.jobs[static_cast<std::size_t>(v)].min_runtime_s(
                         dconfig.cluster.capacity));
    }
    EXPECT_GE(result.level_duration_s[l], level_min - 1e-6);
  }
}

TEST(Decomposition, WiderLevelsGetProportionallyMoreSlack) {
  // Two-level workflow where level 1 holds 4x the demand of level 0.
  workload::Workflow w;
  w.id = 0;
  w.name = "two-level";
  w.start_s = 0.0;
  w.deadline_s = 5000.0;
  w.dag = dag::make_fork_join(4);
  w.dag = [] {
    // source -> 4 parallel -> no sink: build manually for a 2-level shape.
    dag::Dag d(5);
    for (int k = 1; k <= 4; ++k) d.add_edge(0, k);
    return d;
  }();
  w.jobs.assign(5, uniform_job());
  const DeadlineDecomposer decomposer;
  const auto result = decomposer.decompose(w);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.level_duration_s.size(), 2u);
  const double slack = 5000.0 - 200.0;
  EXPECT_NEAR(result.level_duration_s[0], 100.0 + slack * (1.0 / 5.0), 1e-6);
  EXPECT_NEAR(result.level_duration_s[1], 100.0 + slack * (4.0 / 5.0), 1e-6);
}

TEST(Decomposition, RejectsInvalidWorkflow) {
  workload::Workflow w = fig3_workflow(3, 1000.0);
  w.jobs[0].num_tasks = 0;
  const DeadlineDecomposer decomposer;
  const DecompositionResult result = decomposer.decompose(w);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status, DecomposeStatus::kInvalidWorkflow);
}

TEST(Decomposition, RejectsJobThatCannotFitCluster) {
  workload::Workflow w = fig3_workflow(3, 1000.0);
  w.jobs[1].task.demand = ResourceVec{9999.0, 1.0};
  DecompositionConfig config;
  config.cluster.capacity = ResourceVec{500.0, 1024.0};
  const DeadlineDecomposer decomposer(config);
  const DecompositionResult result = decomposer.decompose(w);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status, DecomposeStatus::kJobExceedsCapacity);
}

TEST(Decomposition, RejectsEmptyWorkflow) {
  const workload::Workflow w;
  const DeadlineDecomposer decomposer;
  const DecompositionResult result = decomposer.decompose(w);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status, DecomposeStatus::kEmptyWorkflow);
}

TEST(Decomposition, RejectsCyclicDag) {
  workload::Workflow w = fig3_workflow(3, 1000.0);
  w.dag.add_edge(2, 0);  // back edge closes a cycle
  const DeadlineDecomposer decomposer;
  const DecompositionResult result = decomposer.decompose(w);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status, DecomposeStatus::kCyclicDag);
}

TEST(Decomposition, MultiWaveJobsExtendLevelMinimumRuntime) {
  // 100 tasks of 10 cores on a 500-core cluster: 2 waves of 50.
  workload::Workflow w;
  w.id = 0;
  w.name = "wavy";
  w.start_s = 0.0;
  w.deadline_s = 10000.0;
  w.dag = dag::make_chain(1);
  workload::JobSpec job = uniform_job(100.0);
  job.num_tasks = 100;
  job.task.demand = ResourceVec{10.0, 1.0};
  w.jobs = {job};
  DecompositionConfig config;
  config.cluster.capacity = ResourceVec{500.0, 1024.0};
  const DeadlineDecomposer decomposer(config);
  const auto result = decomposer.decompose(w);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.min_makespan_s, 200.0, 1e-9);
}

class DecompositionProperty : public ::testing::TestWithParam<int> {};

TEST_P(DecompositionProperty, WindowsPartitionTheBudgetOnRandomWorkflows) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  workload::WorkflowGenConfig config;
  config.num_jobs = static_cast<int>(rng.uniform_int(5, 40));
  const workload::Workflow w =
      workload::make_workflow(rng, 0, rng.uniform_real(0.0, 500.0), config);
  const DeadlineDecomposer decomposer;
  const auto result = decomposer.decompose(w);
  ASSERT_TRUE(result.ok());
  double total = 0.0;
  for (double d : result.level_duration_s) {
    EXPECT_GE(d, -1e-9);
    total += d;
  }
  EXPECT_NEAR(total, w.deadline_s - w.start_s, 1e-6);
  // Last level's jobs end exactly at the workflow deadline.
  for (dag::NodeId v : result.levels.back()) {
    EXPECT_NEAR(result.windows[static_cast<std::size_t>(v)].deadline_s,
                w.deadline_s, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecompositionProperty,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace flowtime::core
