// Tests for the scheduling LP builder/solver (paper §V): demand
// satisfaction, window and width respect, load flattening, infeasibility
// signalling and integral extraction.
#include <gtest/gtest.h>

#include <cmath>

#include "core/lp_formulation.h"
#include "util/rng.h"

namespace flowtime::core {
namespace {

using workload::kCpu;
using workload::kMemory;
using workload::ResourceVec;

std::vector<ResourceVec> uniform_caps(int slots, double cpu, double mem) {
  return std::vector<ResourceVec>(static_cast<std::size_t>(slots),
                                  ResourceVec{cpu, mem});
}

LpJob make_job(int uid, int release, int deadline, double cpu_demand,
               double mem_demand, double cpu_width, double mem_width) {
  LpJob job;
  job.uid = uid;
  job.release_slot = release;
  job.deadline_slot = deadline;
  job.demand = ResourceVec{cpu_demand, mem_demand};
  job.width = ResourceVec{cpu_width, mem_width};
  return job;
}

TEST(LpFormulation, SingleJobSpreadsFlat) {
  const std::vector<LpJob> jobs = {make_job(7, 0, 4, 50.0, 100.0, 20.0, 40.0)};
  const LpSchedule s =
      solve_placement(jobs, uniform_caps(5, 100.0, 200.0), 0);
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(s.capacity_exceeded);
  // 50 over 5 slots with cap 100 -> 10 per slot, normalized 0.1.
  EXPECT_NEAR(s.max_normalized_load, 0.1, 1e-6);
  double total_cpu = 0.0;
  for (int t = 0; t < 5; ++t) {
    EXPECT_NEAR(s.allocation[0][static_cast<std::size_t>(t)][kCpu], 10.0,
                1e-6);
    total_cpu += s.allocation[0][static_cast<std::size_t>(t)][kCpu];
  }
  EXPECT_NEAR(total_cpu, 50.0, 1e-6);
}

TEST(LpFormulation, DemandIsFullySatisfiedForEveryResource) {
  util::Rng rng(3);
  std::vector<LpJob> jobs;
  for (int i = 0; i < 8; ++i) {
    const int release = static_cast<int>(rng.uniform_int(0, 6));
    const int deadline = release + static_cast<int>(rng.uniform_int(2, 8));
    jobs.push_back(make_job(i, release, deadline,
                            rng.uniform_real(10.0, 80.0),
                            rng.uniform_real(20.0, 160.0), 40.0, 80.0));
  }
  const LpSchedule s =
      solve_placement(jobs, uniform_caps(15, 200.0, 400.0), 0);
  ASSERT_TRUE(s.ok());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    ResourceVec placed{};
    for (int t = 0; t < s.num_slots; ++t) {
      placed = workload::add(placed,
                             s.allocation[j][static_cast<std::size_t>(t)]);
      // Window respected.
      if (t < jobs[j].release_slot || t > jobs[j].deadline_slot) {
        EXPECT_TRUE(workload::is_zero(
            s.allocation[j][static_cast<std::size_t>(t)], 1e-7));
      }
      // Width respected.
      EXPECT_TRUE(workload::fits_within(
          s.allocation[j][static_cast<std::size_t>(t)], jobs[j].width,
          1e-6));
    }
    EXPECT_NEAR(placed[kCpu], jobs[j].demand[kCpu], 1e-5);
    EXPECT_NEAR(placed[kMemory], jobs[j].demand[kMemory], 1e-5);
  }
}

TEST(LpFormulation, LexminPrefersFlatOverlap) {
  // Two jobs, one pinned to slots {0,1}, one free over {0..3}; the free job
  // should avoid the pinned job's slots.
  const std::vector<LpJob> jobs = {
      make_job(0, 0, 1, 80.0, 0.0, 40.0, 0.0),
      make_job(1, 0, 3, 80.0, 0.0, 40.0, 0.0),
  };
  const LpSchedule s =
      solve_placement(jobs, uniform_caps(4, 100.0, 100.0), 0);
  ASSERT_TRUE(s.ok());
  // Flattest profile: 40 everywhere (0.4 normalized).
  EXPECT_NEAR(s.max_normalized_load, 0.4, 1e-6);
  EXPECT_NEAR(s.allocation[1][2][kCpu] + s.allocation[1][3][kCpu], 80.0,
              1e-5);
}

TEST(LpFormulation, ZeroDemandResourceProducesNoAllocation) {
  const std::vector<LpJob> jobs = {make_job(0, 0, 3, 40.0, 0.0, 20.0, 0.0)};
  const LpSchedule s =
      solve_placement(jobs, uniform_caps(4, 100.0, 100.0), 0);
  ASSERT_TRUE(s.ok());
  for (int t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(s.allocation[0][static_cast<std::size_t>(t)][kMemory],
                     0.0);
  }
}

TEST(LpFormulation, EmptyWindowIsInfeasible) {
  // Window entirely before the horizon start.
  const std::vector<LpJob> jobs = {make_job(0, 0, 2, 40.0, 0.0, 20.0, 0.0)};
  const LpSchedule s =
      solve_placement(jobs, uniform_caps(5, 100.0, 100.0), /*first_slot=*/3);
  EXPECT_EQ(s.status, lp::SolveStatus::kInfeasible);
}

TEST(LpFormulation, TooNarrowWidthIsInfeasible) {
  // 100 demand, width 10, window 5 slots: max 50 placeable.
  const std::vector<LpJob> jobs = {make_job(0, 0, 4, 100.0, 0.0, 10.0, 0.0)};
  const LpSchedule s =
      solve_placement(jobs, uniform_caps(5, 1000.0, 1000.0), 0);
  EXPECT_EQ(s.status, lp::SolveStatus::kInfeasible);
}

TEST(LpFormulation, CapacityExceededIsFlaggedNotFatal) {
  // Two jobs each needing the full cap in a single shared slot.
  const std::vector<LpJob> jobs = {
      make_job(0, 0, 0, 100.0, 0.0, 100.0, 0.0),
      make_job(1, 0, 0, 100.0, 0.0, 100.0, 0.0),
  };
  const LpSchedule s =
      solve_placement(jobs, uniform_caps(1, 100.0, 100.0), 0);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s.capacity_exceeded);
  EXPECT_NEAR(s.max_normalized_load, 2.0, 1e-6);
}

TEST(LpFormulation, WindowsClipToHorizon) {
  const std::vector<LpJob> jobs = {make_job(0, 2, 100, 30.0, 0.0, 10.0, 0.0)};
  const LpSchedule s =
      solve_placement(jobs, uniform_caps(6, 100.0, 100.0), 0);
  ASSERT_TRUE(s.ok());
  // Only slots 2..5 available: 30 over 4 slots.
  ResourceVec placed{};
  for (int t = 0; t < s.num_slots; ++t) {
    placed =
        workload::add(placed, s.allocation[0][static_cast<std::size_t>(t)]);
  }
  EXPECT_NEAR(placed[kCpu], 30.0, 1e-6);
  EXPECT_TRUE(workload::is_zero(s.allocation[0][0], 1e-9));
  EXPECT_TRUE(workload::is_zero(s.allocation[0][1], 1e-9));
}

TEST(LpFormulation, SecondLexLevelRefinesUnconstrainedSlots) {
  // Job A pinned to slot 0 (load 0.8); job B over slots 0..2 must flatten
  // its 60 units over slots 1,2 (0.3 each), never slot 0.
  const std::vector<LpJob> jobs = {
      make_job(0, 0, 0, 80.0, 0.0, 100.0, 0.0),
      make_job(1, 0, 2, 60.0, 0.0, 100.0, 0.0),
  };
  const LpSchedule s =
      solve_placement(jobs, uniform_caps(3, 100.0, 100.0), 0);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.normalized_load[0][kCpu], 0.8, 1e-6);
  EXPECT_NEAR(s.normalized_load[1][kCpu], 0.3, 1e-6);
  EXPECT_NEAR(s.normalized_load[2][kCpu], 0.3, 1e-6);
  EXPECT_LT(s.allocation[1][0][kCpu], 1e-6);
}

TEST(LpFormulation, IntegralExtractionYieldsIntegersOnIntegerData) {
  // 10 units over 3 slots: fractional lexmin gives 3.33 each; integral
  // extraction must give integers summing to 10 with max 4.
  std::vector<LpJob> jobs = {make_job(0, 0, 2, 10.0, 0.0, 10.0, 0.0)};
  LpScheduleOptions options;
  options.integral_extraction = true;
  const LpSchedule s =
      solve_placement(jobs, uniform_caps(3, 10.0, 10.0), 0, options);
  ASSERT_TRUE(s.ok());
  double total = 0.0;
  for (int t = 0; t < 3; ++t) {
    const double v = s.allocation[0][static_cast<std::size_t>(t)][kCpu];
    EXPECT_NEAR(v, std::round(v), 1e-6) << "slot " << t;
    EXPECT_LE(v, 4.0 + 1e-6);
    total += v;
  }
  EXPECT_NEAR(total, 10.0, 1e-6);
}

TEST(LpFormulation, NonZeroFirstSlotOffsetsIndices) {
  const std::vector<LpJob> jobs = {make_job(0, 10, 12, 30.0, 0.0, 15.0, 0.0)};
  const LpSchedule s =
      solve_placement(jobs, uniform_caps(3, 100.0, 100.0), /*first_slot=*/10);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.first_slot, 10);
  ResourceVec placed{};
  for (int t = 0; t < 3; ++t) {
    placed =
        workload::add(placed, s.allocation[0][static_cast<std::size_t>(t)]);
  }
  EXPECT_NEAR(placed[kCpu], 30.0, 1e-6);
}

TEST(LpFormulation, ResourcesAreSolvedIndependently) {
  // CPU tight in slot 0, memory tight in slot 1: per-resource lexmin finds
  // both flat placements independently.
  std::vector<ResourceVec> caps = {ResourceVec{10.0, 100.0},
                                   ResourceVec{100.0, 10.0}};
  const std::vector<LpJob> jobs = {make_job(0, 0, 1, 20.0, 20.0, 20.0, 20.0)};
  const LpSchedule s = solve_placement(jobs, caps, 0);
  ASSERT_TRUE(s.ok());
  // CPU: lexmin puts at most cap*level in slot 0; with caps 10/100 the flat
  // split is load-balanced by normalized value.
  const double cpu0 = s.allocation[0][0][kCpu];
  const double cpu1 = s.allocation[0][1][kCpu];
  EXPECT_NEAR(cpu0 + cpu1, 20.0, 1e-6);
  EXPECT_LT(cpu0, cpu1);  // slot 0 has 10x less CPU capacity
  const double mem0 = s.allocation[0][0][kMemory];
  const double mem1 = s.allocation[0][1][kMemory];
  EXPECT_NEAR(mem0 + mem1, 20.0, 1e-6);
  EXPECT_GT(mem0, mem1);  // and vice versa for memory
}

class LpFormulationProperty : public ::testing::TestWithParam<int> {};

TEST_P(LpFormulationProperty, RandomInstancesSatisfyAllInvariants) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int slots = static_cast<int>(rng.uniform_int(5, 20));
  const int n = static_cast<int>(rng.uniform_int(2, 15));
  std::vector<LpJob> jobs;
  for (int i = 0; i < n; ++i) {
    const int release = static_cast<int>(rng.uniform_int(0, slots - 1));
    const int deadline =
        static_cast<int>(rng.uniform_int(release, slots - 1));
    const int window = deadline - release + 1;
    const double cpu_width = rng.uniform_real(5.0, 30.0);
    const double mem_width = rng.uniform_real(5.0, 60.0);
    jobs.push_back(make_job(i, release, deadline,
                            rng.uniform_real(0.0, cpu_width * window),
                            rng.uniform_real(0.0, mem_width * window),
                            cpu_width, mem_width));
  }
  const LpSchedule s =
      solve_placement(jobs, uniform_caps(slots, 500.0, 1024.0), 0);
  ASSERT_TRUE(s.ok());
  for (int j = 0; j < n; ++j) {
    ResourceVec placed{};
    for (int t = 0; t < slots; ++t) {
      const ResourceVec& a =
          s.allocation[static_cast<std::size_t>(j)][static_cast<std::size_t>(t)];
      EXPECT_TRUE(workload::fits_within(a, jobs[static_cast<std::size_t>(j)].width, 1e-5));
      if (t < jobs[static_cast<std::size_t>(j)].release_slot ||
          t > jobs[static_cast<std::size_t>(j)].deadline_slot) {
        EXPECT_TRUE(workload::is_zero(a, 1e-6));
      }
      placed = workload::add(placed, a);
    }
    EXPECT_NEAR(placed[kCpu], jobs[static_cast<std::size_t>(j)].demand[kCpu],
                1e-4);
    EXPECT_NEAR(placed[kMemory],
                jobs[static_cast<std::size_t>(j)].demand[kMemory], 1e-4);
  }
  // Loads never exceed the reported max level.
  for (int t = 0; t < slots; ++t) {
    for (int r = 0; r < workload::kNumResources; ++r) {
      EXPECT_LE(s.normalized_load[static_cast<std::size_t>(t)][r],
                s.max_normalized_load + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpFormulationProperty,
                         ::testing::Range(100, 112));

}  // namespace
}  // namespace flowtime::core
