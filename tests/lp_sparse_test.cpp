// Differential tests between the two simplex basis representations
// (SimplexEngine::kSparseLu, the default, vs kDenseInverse, the retained
// reference). Both engines walk the same pricing / ratio-test rules, but
// they round the solved directions differently in the last ULP (dense
// inverse-multiply vs sparse LU + eta solves), so degenerate ties can
// resolve to different — equally optimal — vertices. What IS guaranteed,
// and pinned here on generated job sets: identical statuses and
// infeasibility diagnoses, the same optimum level to ~1e-9, and plans that
// are each feasible, demand-complete, and width/window-respecting.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/lp_formulation.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "lp/solve_budget.h"
#include "util/rng.h"

namespace flowtime::core {
namespace {

using workload::ResourceVec;

std::vector<ResourceVec> uniform_caps(int slots, double cpu, double mem) {
  return std::vector<ResourceVec>(static_cast<std::size_t>(slots),
                                  ResourceVec{cpu, mem});
}

std::vector<LpJob> random_jobs(int count, int horizon, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<LpJob> jobs;
  for (int i = 0; i < count; ++i) {
    LpJob job;
    job.uid = i;
    job.release_slot = static_cast<int>(rng.uniform_int(0, horizon - 2));
    job.deadline_slot =
        job.release_slot + static_cast<int>(rng.uniform_int(1, 6));
    job.demand = ResourceVec{rng.uniform_real(5.0, 60.0),
                             rng.uniform_real(10.0, 120.0)};
    job.width = ResourceVec{40.0, 80.0};
    jobs.push_back(job);
  }
  return jobs;
}

LpScheduleOptions engine_options(lp::SimplexEngine engine,
                                 bool coupled = false) {
  LpScheduleOptions options;
  options.lexmin.lp_options.engine = engine;
  options.flow_fast_path = false;  // both sides through simplex
  options.coupled_resources = coupled;
  return options;
}

// One engine's plan must be a valid optimum on its own: every demand fully
// placed inside its window, width bounds respected, and no slot loaded
// beyond the reported peak level.
void expect_valid_plan(const LpSchedule& s, const std::vector<LpJob>& jobs,
                       const std::vector<ResourceVec>& caps) {
  const int num_slots = static_cast<int>(caps.size());
  ASSERT_EQ(s.allocation.size(), jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    for (int r = 0; r < workload::kNumResources; ++r) {
      double placed = 0.0;
      for (int t = 0; t < num_slots; ++t) {
        const double x = s.allocation[j][static_cast<std::size_t>(t)][r];
        EXPECT_GE(x, -1e-9);
        EXPECT_LE(x, jobs[j].width[r] + 1e-7) << "width, job " << j;
        if (t < jobs[j].release_slot || t > jobs[j].deadline_slot) {
          EXPECT_EQ(x, 0.0) << "outside window, job " << j << " slot " << t;
        }
        placed += x;
      }
      EXPECT_NEAR(placed, jobs[j].demand[r], 1e-5) << "job " << j;
    }
  }
  for (int t = 0; t < num_slots; ++t) {
    for (int r = 0; r < workload::kNumResources; ++r) {
      double load = 0.0;
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        load += s.allocation[j][static_cast<std::size_t>(t)][r];
      }
      EXPECT_LE(load / caps[static_cast<std::size_t>(t)][r],
                s.max_normalized_load + 1e-6)
          << "slot " << t << " resource " << r;
    }
  }
}

// The cross-engine contract: same statuses and diagnoses, same optimum
// level, and each plan independently valid.
void expect_equivalent(const LpSchedule& a, const LpSchedule& b,
                       const std::vector<LpJob>& jobs,
                       const std::vector<ResourceVec>& caps) {
  ASSERT_EQ(a.status, b.status);
  EXPECT_EQ(a.capacity_exceeded, b.capacity_exceeded);
  EXPECT_NEAR(a.max_normalized_load, b.max_normalized_load, 1e-9);
  if (a.ok()) {
    expect_valid_plan(a, jobs, caps);
    expect_valid_plan(b, jobs, caps);
  }
}

TEST(SparseDifferential, PlansEquivalentAcrossSeeds) {
  for (std::uint64_t seed : {1u, 7u, 23u, 91u}) {
    const auto jobs = random_jobs(12, 10, seed);
    const auto caps = uniform_caps(10, 150.0, 300.0);
    const LpSchedule sparse = solve_placement(
        jobs, caps, 0, engine_options(lp::SimplexEngine::kSparseLu));
    const LpSchedule dense = solve_placement(
        jobs, caps, 0, engine_options(lp::SimplexEngine::kDenseInverse));
    ASSERT_TRUE(sparse.ok()) << "seed " << seed;
    expect_equivalent(sparse, dense, jobs, caps);
  }
}

TEST(SparseDifferential, CoupledFormulationEquivalent) {
  // The coupled matrix loses the clean bipartite TU structure; the
  // equivalence contract must still hold there.
  const auto jobs = random_jobs(8, 8, 5);
  const auto caps = uniform_caps(8, 200.0, 400.0);
  const LpSchedule sparse = solve_placement(
      jobs, caps, 0, engine_options(lp::SimplexEngine::kSparseLu, true));
  const LpSchedule dense = solve_placement(
      jobs, caps, 0, engine_options(lp::SimplexEngine::kDenseInverse, true));
  ASSERT_TRUE(sparse.ok());
  expect_equivalent(sparse, dense, jobs, caps);
}

TEST(SparseDifferential, OverloadedAndInfeasibleAgree) {
  // Over-capacity: both report capacity_exceeded with the same level.
  const std::vector<LpJob> heavy = random_jobs(10, 4, 11);
  const auto tight = uniform_caps(4, 30.0, 60.0);
  const LpSchedule s = solve_placement(
      heavy, tight, 0, engine_options(lp::SimplexEngine::kSparseLu));
  const LpSchedule d = solve_placement(
      heavy, tight, 0, engine_options(lp::SimplexEngine::kDenseInverse));
  expect_equivalent(s, d, heavy, tight);
  EXPECT_TRUE(s.capacity_exceeded);
}

TEST(SparseDifferential, WarmStartedResolvesEquivalent) {
  // Same cache flow the scheduler uses: solve, perturb demands under the
  // same shape, re-solve warm. Warm-started solves must honor the same
  // contract engine-to-engine.
  const auto caps = uniform_caps(10, 150.0, 300.0);
  PlacementWarmCache sparse_cache;
  PlacementWarmCache dense_cache;
  LpScheduleOptions sparse_options =
      engine_options(lp::SimplexEngine::kSparseLu);
  sparse_options.warm_cache = &sparse_cache;
  LpScheduleOptions dense_options =
      engine_options(lp::SimplexEngine::kDenseInverse);
  dense_options.warm_cache = &dense_cache;
  for (std::uint64_t seed : {3u, 4u}) {  // same windows, different demands
    auto jobs = random_jobs(10, 10, 3);
    util::Rng perturb(seed);
    for (LpJob& job : jobs) {
      job.demand[0] *= perturb.uniform_real(0.8, 1.2);
      job.demand[1] *= perturb.uniform_real(0.8, 1.2);
    }
    const LpSchedule s = solve_placement(jobs, caps, 0, sparse_options);
    const LpSchedule d = solve_placement(jobs, caps, 0, dense_options);
    ASSERT_TRUE(s.ok());
    expect_equivalent(s, d, jobs, caps);
  }
}

TEST(SparseDifferential, BudgetExhaustionAgrees) {
  // A 1-pivot budget must stop both engines at the same point with the
  // same statuses — the watchdog sits outside the basis representation.
  const auto jobs = random_jobs(10, 8, 17);
  const auto caps = uniform_caps(8, 120.0, 240.0);
  auto run = [&](lp::SimplexEngine engine) {
    lp::SolveBudget budget;
    budget.set_pivot_cap(1);
    LpScheduleOptions options = engine_options(engine);
    options.lexmin.lp_options.budget = &budget;
    return solve_placement(jobs, caps, 0, options);
  };
  const LpSchedule s = run(lp::SimplexEngine::kSparseLu);
  const LpSchedule d = run(lp::SimplexEngine::kDenseInverse);
  EXPECT_EQ(s.status, d.status);
  EXPECT_EQ(s.budget_exhausted, d.budget_exhausted);
  EXPECT_EQ(s.pivots, d.pivots);
  EXPECT_TRUE(s.budget_exhausted);
}

TEST(FlowFastPath, MatchesSimplexFirstLevel) {
  // First-round-only solves are exactly where the fast path may answer:
  // its level and per-slot loads must match the simplex answer within the
  // binary-search tolerance, and the flag must report which path ran.
  const auto jobs = random_jobs(12, 10, 29);
  const auto caps = uniform_caps(10, 150.0, 300.0);
  LpScheduleOptions flow_options;
  flow_options.lexmin.max_rounds = 1;
  flow_options.flow_fast_path = true;
  LpScheduleOptions simplex_options = flow_options;
  simplex_options.flow_fast_path = false;
  const LpSchedule flow = solve_placement(jobs, caps, 0, flow_options);
  const LpSchedule simplex = solve_placement(jobs, caps, 0, simplex_options);
  ASSERT_TRUE(flow.ok());
  ASSERT_TRUE(simplex.ok());
  EXPECT_TRUE(flow.flow_fast_path);
  EXPECT_FALSE(simplex.flow_fast_path);
  EXPECT_EQ(flow.pivots, 0);
  EXPECT_GT(simplex.pivots, 0);
  EXPECT_NEAR(flow.max_normalized_load, simplex.max_normalized_load, 1e-4);
  // Both allocations place the full demand inside each job's window.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    for (int r = 0; r < workload::kNumResources; ++r) {
      double placed = 0.0;
      for (int t = 0; t < 10; ++t) {
        placed += flow.allocation[j][static_cast<std::size_t>(t)][r];
      }
      EXPECT_NEAR(placed, jobs[j].demand[r], 1e-5) << "job " << j;
    }
  }
}

TEST(FlowFastPath, DeepRefinementNeverTakesFlowPath) {
  const auto jobs = random_jobs(8, 8, 31);
  const auto caps = uniform_caps(8, 150.0, 300.0);
  LpScheduleOptions options;  // default max_rounds = 64: refines deeper
  options.flow_fast_path = true;
  const LpSchedule s = solve_placement(jobs, caps, 0, options);
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(s.flow_fast_path);
  EXPECT_GT(s.pivots, 0);
}

}  // namespace
}  // namespace flowtime::core
