// Tests for the resource-coupled placement variant: proportionality of the
// produced allocations, demand satisfaction, and the relationship with the
// paper's decoupled formulation (coupled is never flatter).
#include <gtest/gtest.h>

#include <cmath>

#include "core/lp_formulation.h"
#include "util/rng.h"

namespace flowtime::core {
namespace {

using workload::kCpu;
using workload::kMemory;
using workload::ResourceVec;

std::vector<ResourceVec> uniform_caps(int slots, double cpu, double mem) {
  return std::vector<ResourceVec>(static_cast<std::size_t>(slots),
                                  ResourceVec{cpu, mem});
}

// A gang job: demand and width share the per-task bundle ratio.
LpJob gang_job(int uid, int release, int deadline, int tasks,
               double task_seconds, double cpu_per_task,
               double mem_per_task, double slot_seconds = 10.0) {
  LpJob job;
  job.uid = uid;
  job.release_slot = release;
  job.deadline_slot = deadline;
  job.demand = ResourceVec{tasks * task_seconds * cpu_per_task,
                           tasks * task_seconds * mem_per_task};
  job.width = ResourceVec{tasks * cpu_per_task * slot_seconds,
                          tasks * mem_per_task * slot_seconds};
  return job;
}

LpScheduleOptions coupled_options() {
  LpScheduleOptions options;
  options.coupled_resources = true;
  return options;
}

TEST(CoupledPlacement, AllocationsAreProportionalAcrossResources) {
  const std::vector<LpJob> jobs = {gang_job(0, 0, 5, 10, 60.0, 1.0, 3.0)};
  const LpSchedule s = solve_placement(
      jobs, uniform_caps(6, 1000.0, 3000.0), 0, coupled_options());
  ASSERT_TRUE(s.ok());
  for (int t = 0; t < 6; ++t) {
    const ResourceVec& a = s.allocation[0][static_cast<std::size_t>(t)];
    // mem = 3x cpu in every slot, matching the task bundle.
    EXPECT_NEAR(a[kMemory], 3.0 * a[kCpu], 1e-6) << "slot " << t;
  }
}

TEST(CoupledPlacement, SatisfiesBothResourceDemands) {
  util::Rng rng(5);
  std::vector<LpJob> jobs;
  for (int i = 0; i < 6; ++i) {
    const int release = static_cast<int>(rng.uniform_int(0, 5));
    const int deadline = release + static_cast<int>(rng.uniform_int(3, 8));
    // Task runtime bounded by the window so the job can fit at full width.
    const double max_runtime = (deadline - release + 1) * 10.0;
    jobs.push_back(gang_job(i, release, deadline,
                            static_cast<int>(rng.uniform_int(5, 30)),
                            rng.uniform_real(20.0, 0.9 * max_runtime), 1.0,
                            rng.uniform_real(1.0, 4.0)));
  }
  const LpSchedule s = solve_placement(
      jobs, uniform_caps(16, 2000.0, 6000.0), 0, coupled_options());
  ASSERT_TRUE(s.ok());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    ResourceVec placed{};
    for (int t = 0; t < s.num_slots; ++t) {
      placed = workload::add(placed,
                             s.allocation[j][static_cast<std::size_t>(t)]);
      EXPECT_TRUE(workload::fits_within(
          s.allocation[j][static_cast<std::size_t>(t)], jobs[j].width,
          1e-5));
    }
    EXPECT_NEAR(placed[kCpu], jobs[j].demand[kCpu], 1e-4);
    EXPECT_NEAR(placed[kMemory], jobs[j].demand[kMemory], 1e-4);
  }
}

TEST(CoupledPlacement, NeverFlatterThanTheDecoupledFormulation) {
  // The coupled feasible set is contained in the decoupled one, so its
  // min-max level is >= the paper's (usually equal for gang jobs on
  // uniform caps).
  util::Rng rng(9);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<LpJob> jobs;
    const int n = static_cast<int>(rng.uniform_int(2, 8));
    for (int i = 0; i < n; ++i) {
      const int release = static_cast<int>(rng.uniform_int(0, 4));
      const int deadline = release + static_cast<int>(rng.uniform_int(2, 7));
      const double max_runtime = (deadline - release + 1) * 10.0;
      jobs.push_back(gang_job(i, release, deadline,
                              static_cast<int>(rng.uniform_int(4, 20)),
                              rng.uniform_real(15.0, 0.9 * max_runtime), 1.0,
                              rng.uniform_real(1.0, 4.0)));
    }
    const auto caps = uniform_caps(12, 1500.0, 5000.0);
    const LpSchedule coupled =
        solve_placement(jobs, caps, 0, coupled_options());
    const LpSchedule decoupled = solve_placement(jobs, caps, 0);
    ASSERT_TRUE(coupled.ok());
    ASSERT_TRUE(decoupled.ok());
    EXPECT_GE(coupled.max_normalized_load,
              decoupled.max_normalized_load - 1e-6)
        << "trial " << trial;
  }
}

TEST(CoupledPlacement, EmptyWindowIsInfeasible) {
  const std::vector<LpJob> jobs = {gang_job(0, 0, 1, 4, 30.0, 1.0, 2.0)};
  const LpSchedule s = solve_placement(
      jobs, uniform_caps(4, 100.0, 200.0), /*first_slot=*/2,
      coupled_options());
  EXPECT_EQ(s.status, lp::SolveStatus::kInfeasible);
}

TEST(CoupledPlacement, SingleResourceJobsStillWork) {
  LpJob job = gang_job(0, 0, 3, 5, 40.0, 1.0, 0.0);
  const LpSchedule s = solve_placement(
      {job}, uniform_caps(4, 500.0, 500.0), 0, coupled_options());
  ASSERT_TRUE(s.ok());
  ResourceVec placed{};
  for (int t = 0; t < 4; ++t) {
    placed =
        workload::add(placed, s.allocation[0][static_cast<std::size_t>(t)]);
  }
  EXPECT_NEAR(placed[kCpu], 200.0, 1e-6);
  EXPECT_NEAR(placed[kMemory], 0.0, 1e-9);
}

TEST(CoupledPlacement, LoadsReportedPerResource) {
  const std::vector<LpJob> jobs = {gang_job(0, 0, 3, 10, 40.0, 1.0, 4.0)};
  // Memory cap relatively tighter: its normalized load rules the peak.
  const LpSchedule s = solve_placement(
      jobs, uniform_caps(4, 1000.0, 2000.0), 0, coupled_options());
  ASSERT_TRUE(s.ok());
  for (int t = 0; t < 4; ++t) {
    EXPECT_GT(s.normalized_load[static_cast<std::size_t>(t)][kMemory],
              s.normalized_load[static_cast<std::size_t>(t)][kCpu]);
  }
}

}  // namespace
}  // namespace flowtime::core
