// Unit and property tests for the LP stack: model, simplex, branch-and-bound
// and the lexicographic min-max driver.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "lp/branch_and_bound.h"
#include "lp/lexmin.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace flowtime::lp {
namespace {

SimplexSolver solver;

TEST(LpProblem, MergesDuplicateRowEntries) {
  LpProblem p;
  const int x = p.add_column(1.0, 0.0, 10.0);
  const int row = p.add_row(RowSense::kLessEqual, 4.0,
                            {{x, 1.0}, {x, 2.0}});
  ASSERT_EQ(p.row_entries(row).size(), 1u);
  EXPECT_DOUBLE_EQ(p.row_entries(row)[0].coeff, 3.0);
}

TEST(LpProblem, DropsCancelledEntries) {
  LpProblem p;
  const int x = p.add_column(1.0, 0.0, 10.0);
  const int row = p.add_row(RowSense::kLessEqual, 4.0,
                            {{x, 1.0}, {x, -1.0}});
  EXPECT_TRUE(p.row_entries(row).empty());
}

TEST(LpProblem, FeasibilityCheck) {
  LpProblem p;
  const int x = p.add_column(0.0, 0.0, 5.0);
  p.add_row(RowSense::kGreaterEqual, 2.0, {{x, 1.0}});
  EXPECT_TRUE(p.is_feasible({3.0}));
  EXPECT_FALSE(p.is_feasible({1.0}));   // row violated
  EXPECT_FALSE(p.is_feasible({6.0}));   // bound violated
  EXPECT_FALSE(p.is_feasible({}));      // wrong dimension
}

TEST(Simplex, SolvesTextbookTwoVariableLp) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Dantzig's example)
  // => min -3x - 5y, optimum x=2, y=6, objective -36.
  LpProblem p;
  const int x = p.add_column(-3.0, 0.0, kInfinity);
  const int y = p.add_column(-5.0, 0.0, kInfinity);
  p.add_row(RowSense::kLessEqual, 4.0, {{x, 1.0}});
  p.add_row(RowSense::kLessEqual, 12.0, {{y, 2.0}});
  p.add_row(RowSense::kLessEqual, 18.0, {{x, 3.0}, {y, 2.0}});
  const Solution s = solver.solve(p);
  ASSERT_TRUE(s.optimal()) << to_string(s.status);
  EXPECT_NEAR(s.objective, -36.0, 1e-7);
  EXPECT_NEAR(s.x[0], 2.0, 1e-7);
  EXPECT_NEAR(s.x[1], 6.0, 1e-7);
}

TEST(Simplex, HandlesEqualityRows) {
  // min x + y s.t. x + y = 10, x - y = 4  => x=7, y=3.
  LpProblem p;
  const int x = p.add_column(1.0, 0.0, kInfinity);
  const int y = p.add_column(1.0, 0.0, kInfinity);
  p.add_row(RowSense::kEqual, 10.0, {{x, 1.0}, {y, 1.0}});
  p.add_row(RowSense::kEqual, 4.0, {{x, 1.0}, {y, -1.0}});
  const Solution s = solver.solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[0], 7.0, 1e-7);
  EXPECT_NEAR(s.x[1], 3.0, 1e-7);
}

TEST(Simplex, DetectsInfeasibility) {
  LpProblem p;
  const int x = p.add_column(1.0, 0.0, 1.0);
  p.add_row(RowSense::kGreaterEqual, 5.0, {{x, 1.0}});
  EXPECT_EQ(solver.solve(p).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsInconsistentEqualities) {
  LpProblem p;
  const int x = p.add_column(0.0, -kInfinity, kInfinity);
  p.add_row(RowSense::kEqual, 1.0, {{x, 1.0}});
  p.add_row(RowSense::kEqual, 2.0, {{x, 1.0}});
  EXPECT_EQ(solver.solve(p).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  LpProblem p;
  const int x = p.add_column(-1.0, 0.0, kInfinity);
  p.add_row(RowSense::kGreaterEqual, 0.0, {{x, 1.0}});
  EXPECT_EQ(solver.solve(p).status, SolveStatus::kUnbounded);
}

TEST(Simplex, RespectsUpperBoundsViaBoundFlips) {
  // min -x - 2y with 0 <= x,y <= 3 and x + y <= 5  => x=2, y=3 or x,y split;
  // unique optimum y=3 (higher reward), x=2.
  LpProblem p;
  const int x = p.add_column(-1.0, 0.0, 3.0);
  const int y = p.add_column(-2.0, 0.0, 3.0);
  p.add_row(RowSense::kLessEqual, 5.0, {{x, 1.0}, {y, 1.0}});
  const Solution s = solver.solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[1], 3.0, 1e-7);
  EXPECT_NEAR(s.x[0], 2.0, 1e-7);
  EXPECT_NEAR(s.objective, -8.0, 1e-7);
}

TEST(Simplex, HandlesNegativeLowerBounds) {
  // min x s.t. x >= -5 (bound), x + y = 0, 0 <= y <= 5 => x = -5, y = 5.
  LpProblem p;
  const int x = p.add_column(1.0, -5.0, kInfinity);
  const int y = p.add_column(0.0, 0.0, 5.0);
  p.add_row(RowSense::kEqual, 0.0, {{x, 1.0}, {y, 1.0}});
  const Solution s = solver.solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[0], -5.0, 1e-7);
}

TEST(Simplex, HandlesFreeVariables) {
  // min |structure|: x free, min x s.t. x >= y - 3, y = 1  => x = -2.
  LpProblem p;
  const int x = p.add_column(1.0, -kInfinity, kInfinity);
  const int y = p.add_column(0.0, 1.0, 1.0);
  p.add_row(RowSense::kGreaterEqual, -3.0, {{x, 1.0}, {y, -1.0}});
  const Solution s = solver.solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[0], -2.0, 1e-7);
}

TEST(Simplex, FixedVariablesStayFixed) {
  LpProblem p;
  const int x = p.add_column(-1.0, 2.0, 2.0);  // fixed at 2
  const int y = p.add_column(-1.0, 0.0, kInfinity);
  p.add_row(RowSense::kLessEqual, 6.0, {{x, 1.0}, {y, 1.0}});
  const Solution s = solver.solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 4.0, 1e-7);
}

TEST(Simplex, ReportsRowActivity) {
  LpProblem p;
  const int x = p.add_column(-1.0, 0.0, 10.0);
  const int row = p.add_row(RowSense::kLessEqual, 7.0, {{x, 2.0}});
  const Solution s = solver.solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.row_activity[static_cast<std::size_t>(row)], 7.0, 1e-7);
}

TEST(Simplex, DualsSatisfyStrongDuality) {
  // For the textbook LP above, strong duality: c^T x* = y^T b (all rows <=).
  LpProblem p;
  const int x = p.add_column(-3.0, 0.0, kInfinity);
  const int y = p.add_column(-5.0, 0.0, kInfinity);
  p.add_row(RowSense::kLessEqual, 4.0, {{x, 1.0}});
  p.add_row(RowSense::kLessEqual, 12.0, {{y, 2.0}});
  p.add_row(RowSense::kLessEqual, 18.0, {{x, 3.0}, {y, 2.0}});
  const Solution s = solver.solve(p);
  ASSERT_TRUE(s.optimal());
  const double dual_obj = s.duals[0] * 4.0 + s.duals[1] * 12.0 +
                          s.duals[2] * 18.0;
  EXPECT_NEAR(dual_obj, s.objective, 1e-6);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degenerate LP (many redundant constraints through the origin).
  LpProblem p;
  const int x = p.add_column(-1.0, 0.0, kInfinity);
  const int y = p.add_column(-1.0, 0.0, kInfinity);
  for (int i = 1; i <= 10; ++i) {
    p.add_row(RowSense::kLessEqual, 0.0,
              {{x, 1.0}, {y, -static_cast<double>(i)}});
  }
  p.add_row(RowSense::kLessEqual, 1.0, {{y, 1.0}});
  const Solution s = solver.solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[1], 1.0, 1e-7);
  EXPECT_NEAR(s.x[0], 1.0, 1e-7);  // x <= 1*y is tightest
}

TEST(Simplex, EmptyProblemIsOptimal) {
  LpProblem p;
  const Solution s = solver.solve(p);
  EXPECT_TRUE(s.optimal());
  EXPECT_EQ(s.objective, 0.0);
}

TEST(Simplex, PureBoundProblem) {
  LpProblem p;
  p.add_column(2.0, -1.0, 3.0);   // min at lower bound
  p.add_column(-2.0, -1.0, 3.0);  // min at upper bound
  const Solution s = solver.solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_DOUBLE_EQ(s.x[0], -1.0);
  EXPECT_DOUBLE_EQ(s.x[1], 3.0);
  EXPECT_DOUBLE_EQ(s.objective, -8.0);
}

TEST(Simplex, PureBoundProblemUnbounded) {
  LpProblem p;
  p.add_column(1.0, -kInfinity, kInfinity);
  EXPECT_EQ(solver.solve(p).status, SolveStatus::kUnbounded);
}

// ---------------------------------------------------------------------------
// Transportation-structured property tests. These instances have exactly the
// structure of the paper's scheduling LP (each variable in one demand row and
// one capacity row), whose constraint matrix is totally unimodular (Lemma 2).
// ---------------------------------------------------------------------------

struct TransportationCase {
  int jobs;
  int slots;
  std::uint64_t seed;
};

class TransportationProperty
    : public ::testing::TestWithParam<TransportationCase> {};

// Builds: min sum(cost * x) s.t. per-job demand equality over a window,
// per-slot capacity <=, integer data.
LpProblem make_transportation(const TransportationCase& c, bool* feasible) {
  util::Rng rng(c.seed);
  LpProblem p;
  std::vector<std::vector<int>> vars(
      static_cast<std::size_t>(c.jobs));
  std::vector<double> slot_load(static_cast<std::size_t>(c.slots), 0.0);

  std::vector<std::vector<RowEntry>> slot_entries(
      static_cast<std::size_t>(c.slots));
  double total_demand = 0.0;
  for (int i = 0; i < c.jobs; ++i) {
    const int a = static_cast<int>(rng.uniform_int(0, c.slots - 1));
    const int d = static_cast<int>(rng.uniform_int(a, c.slots - 1));
    // Bounded by the job's own window width times its per-slot cap (6) so
    // every generated instance is feasible.
    const double demand = static_cast<double>(
        rng.uniform_int(1, std::min<std::int64_t>(8, (d - a + 1) * 6)));
    total_demand += demand;
    std::vector<RowEntry> row;
    for (int t = a; t <= d; ++t) {
      const int col = p.add_column(rng.uniform_real(0.1, 2.0), 0.0, 6.0);
      vars[static_cast<std::size_t>(i)].push_back(col);
      row.push_back(RowEntry{col, 1.0});
      slot_entries[static_cast<std::size_t>(t)].push_back(
          RowEntry{col, 1.0});
    }
    p.add_row(RowSense::kEqual, demand, std::move(row));
  }
  const double cap = std::ceil(total_demand / c.slots) + 4.0;
  for (int t = 0; t < c.slots; ++t) {
    p.add_row(RowSense::kLessEqual, cap,
              std::move(slot_entries[static_cast<std::size_t>(t)]));
  }
  (void)slot_load;
  *feasible = true;  // not guaranteed; the test handles infeasible cases
  return p;
}

TEST_P(TransportationProperty, LpVertexSolutionsAreIntegral) {
  bool feasible = false;
  const LpProblem p = make_transportation(GetParam(), &feasible);
  const Solution s = solver.solve(p);
  if (s.status == SolveStatus::kInfeasible) {
    GTEST_SKIP() << "instance infeasible (window too tight)";
  }
  ASSERT_TRUE(s.optimal()) << to_string(s.status);
  for (double v : s.x) {
    EXPECT_NEAR(v, std::round(v), 1e-6)
        << "TU matrix must give integral vertex solutions";
  }
  EXPECT_TRUE(p.is_feasible(s.x, 1e-5));
}

TEST_P(TransportationProperty, LpMatchesBranchAndBoundOptimum) {
  bool feasible = false;
  const LpProblem p = make_transportation(GetParam(), &feasible);
  const Solution s = solver.solve(p);
  if (s.status == SolveStatus::kInfeasible) {
    GTEST_SKIP() << "instance infeasible";
  }
  ASSERT_TRUE(s.optimal());

  std::vector<int> integer_columns(static_cast<std::size_t>(p.num_columns()));
  std::iota(integer_columns.begin(), integer_columns.end(), 0);
  BranchAndBound bnb;
  const Solution exact = bnb.solve(p, integer_columns);
  ASSERT_TRUE(exact.optimal());
  EXPECT_NEAR(s.objective, exact.objective, 1e-5)
      << "LP relaxation must already equal the integer optimum (Lemma 2)";
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, TransportationProperty,
    ::testing::Values(
        TransportationCase{3, 5, 1}, TransportationCase{4, 6, 2},
        TransportationCase{5, 8, 3}, TransportationCase{6, 10, 4},
        TransportationCase{8, 12, 5}, TransportationCase{10, 15, 6},
        TransportationCase{12, 10, 7}, TransportationCase{7, 7, 8},
        TransportationCase{9, 20, 9}, TransportationCase{15, 25, 10}));

// ---------------------------------------------------------------------------
// Branch and bound.
// ---------------------------------------------------------------------------

TEST(BranchAndBound, SolvesKnapsackIlp) {
  // max 8a + 11b + 6c + 4d, weights 5,7,4,3 <= 14, binary.
  // Optimum: b + c + d? 11+6+4=21 weight 14 ok; a+b? 19 w12; a+c+d 18 w12;
  // best is 21.
  LpProblem p;
  const double values[] = {8, 11, 6, 4};
  const double weights[] = {5, 7, 4, 3};
  std::vector<RowEntry> row;
  std::vector<int> ints;
  for (int i = 0; i < 4; ++i) {
    const int col = p.add_column(-values[i], 0.0, 1.0);
    row.push_back(RowEntry{col, weights[i]});
    ints.push_back(col);
  }
  p.add_row(RowSense::kLessEqual, 14.0, std::move(row));
  BranchAndBound bnb;
  const Solution s = bnb.solve(p, ints);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -21.0, 1e-6);
  EXPECT_NEAR(s.x[1] + s.x[2] + s.x[3], 3.0, 1e-6);
  EXPECT_NEAR(s.x[0], 0.0, 1e-6);
}

TEST(BranchAndBound, FractionalLpGetsCutToInteger) {
  // max x + y s.t. 2x + 3y <= 6, 3x + 2y <= 6; LP optimum (1.2, 1.2),
  // integer optimum value 2 (e.g. (0,2) or (2,0) violate? 3*2=6 ok, (2,0):
  // 2*2=4<=6, 3*2=6<=6 -> value 2).
  LpProblem p;
  const int x = p.add_column(-1.0, 0.0, kInfinity);
  const int y = p.add_column(-1.0, 0.0, kInfinity);
  p.add_row(RowSense::kLessEqual, 6.0, {{x, 2.0}, {y, 3.0}});
  p.add_row(RowSense::kLessEqual, 6.0, {{x, 3.0}, {y, 2.0}});
  BranchAndBound bnb;
  const Solution s = bnb.solve(p, {x, y});
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -2.0, 1e-6);
}

TEST(BranchAndBound, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6 has no integer point.
  LpProblem p;
  const int x = p.add_column(1.0, 0.4, 0.6);
  BranchAndBound bnb;
  const Solution s = bnb.solve(p, {x});
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(BranchAndBound, MixedIntegerKeepsContinuousColumns) {
  // min -x - 0.5f, x integer <= 2.5, f continuous <= 0.7.
  LpProblem p;
  const int x = p.add_column(-1.0, 0.0, 2.5);
  const int f = p.add_column(-0.5, 0.0, 0.7);
  BranchAndBound bnb;
  const Solution s = bnb.solve(p, {x});
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 2.0, 1e-9);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(f)], 0.7, 1e-9);
}

// ---------------------------------------------------------------------------
// Lexicographic min-max.
// ---------------------------------------------------------------------------

TEST(LexMinMax, BalancesSingleJobAcrossSlots) {
  // One job, demand 9, window of 3 slots, caps 10 each: the flattest
  // placement is 3 per slot (normalized 0.3).
  LpProblem base;
  std::vector<int> cols;
  std::vector<RowEntry> demand;
  for (int t = 0; t < 3; ++t) {
    cols.push_back(base.add_column(0.0, 0.0, kInfinity));
    demand.push_back(RowEntry{cols.back(), 1.0});
  }
  base.add_row(RowSense::kEqual, 9.0, std::move(demand));

  std::vector<LoadRow> loads;
  for (int t = 0; t < 3; ++t) {
    loads.push_back(LoadRow{{{cols[static_cast<std::size_t>(t)], 1.0}},
                            10.0,
                            "slot" + std::to_string(t)});
  }
  LexMinMaxSolver lex;
  const LexMinMaxResult r = lex.solve(base, loads);
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.max_level(), 0.3, 1e-6);
  for (double load : r.load) EXPECT_NEAR(load, 0.3, 1e-6);
}

TEST(LexMinMax, SecondLevelIsRefinedAfterFixingFirst) {
  // Job A must occupy slot 0 only (window = 1 slot, demand 8, cap 10).
  // Job B has window {0,1,2} and demand 6. Lexmin: slot0 is pinned at 0.8 by
  // A alone; B must avoid slot 0 entirely and balance 3/3 over slots 1,2.
  LpProblem base;
  const int a0 = base.add_column(0.0, 0.0, kInfinity);
  base.add_row(RowSense::kEqual, 8.0, {{a0, 1.0}});
  std::vector<int> b_cols;
  std::vector<RowEntry> b_demand;
  for (int t = 0; t < 3; ++t) {
    b_cols.push_back(base.add_column(0.0, 0.0, kInfinity));
    b_demand.push_back(RowEntry{b_cols.back(), 1.0});
  }
  base.add_row(RowSense::kEqual, 6.0, std::move(b_demand));

  std::vector<LoadRow> loads(3);
  loads[0] = LoadRow{{{a0, 1.0}, {b_cols[0], 1.0}}, 10.0, "slot0"};
  loads[1] = LoadRow{{{b_cols[1], 1.0}}, 10.0, "slot1"};
  loads[2] = LoadRow{{{b_cols[2], 1.0}}, 10.0, "slot2"};

  LexMinMaxSolver lex;
  const LexMinMaxResult r = lex.solve(base, loads);
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.load[0], 0.8, 1e-6);
  EXPECT_NEAR(r.load[1], 0.3, 1e-6);
  EXPECT_NEAR(r.load[2], 0.3, 1e-6);
}

TEST(LexMinMax, ExactFixingMatchesHeuristicOnSeparableCase) {
  LpProblem base;
  std::vector<int> cols;
  std::vector<RowEntry> demand;
  for (int t = 0; t < 4; ++t) {
    cols.push_back(base.add_column(0.0, 0.0, 5.0));
    demand.push_back(RowEntry{cols.back(), 1.0});
  }
  base.add_row(RowSense::kEqual, 10.0, std::move(demand));
  std::vector<LoadRow> loads;
  for (int t = 0; t < 4; ++t) {
    loads.push_back(
        LoadRow{{{cols[static_cast<std::size_t>(t)], 1.0}}, 5.0, ""});
  }
  LexMinMaxOptions heuristic;
  LexMinMaxOptions exact;
  exact.exact_fixing = true;
  const auto rh = LexMinMaxSolver(heuristic).solve(base, loads);
  const auto re = LexMinMaxSolver(exact).solve(base, loads);
  ASSERT_TRUE(rh.optimal());
  ASSERT_TRUE(re.optimal());
  EXPECT_NEAR(rh.max_level(), re.max_level(), 1e-6);
  for (int t = 0; t < 4; ++t) {
    EXPECT_NEAR(rh.load[static_cast<std::size_t>(t)],
                re.load[static_cast<std::size_t>(t)], 1e-5);
  }
}

TEST(LexMinMax, InfeasibleBaseReportsInfeasible) {
  LpProblem base;
  const int x = base.add_column(0.0, 0.0, 1.0);
  base.add_row(RowSense::kEqual, 5.0, {{x, 1.0}});
  LexMinMaxSolver lex;
  const auto r = lex.solve(base, {LoadRow{{{x, 1.0}}, 1.0, ""}});
  EXPECT_EQ(r.status, SolveStatus::kInfeasible);
}

TEST(LexMinMax, NoLoadsFallsBackToFeasibility) {
  LpProblem base;
  const int x = base.add_column(0.0, 2.0, 4.0);
  base.add_row(RowSense::kLessEqual, 3.0, {{x, 1.0}});
  LexMinMaxSolver lex;
  const auto r = lex.solve(base, {});
  ASSERT_TRUE(r.optimal());
  EXPECT_GE(r.x[0], 2.0 - 1e-7);
  EXPECT_LE(r.x[0], 3.0 + 1e-7);
}

TEST(LexMinMax, ZeroDemandGivesZeroLevels) {
  LpProblem base;
  const int x = base.add_column(0.0, 0.0, 5.0);
  base.add_row(RowSense::kEqual, 0.0, {{x, 1.0}});
  LexMinMaxSolver lex;
  const auto r = lex.solve(base, {LoadRow{{{x, 1.0}}, 10.0, ""}});
  ASSERT_TRUE(r.optimal());
  EXPECT_NEAR(r.max_level(), 0.0, 1e-9);
}

struct LexRandomCase {
  int jobs;
  int slots;
  std::uint64_t seed;
};

class LexMinMaxProperty : public ::testing::TestWithParam<LexRandomCase> {};

TEST_P(LexMinMaxProperty, MaxLevelIsNeverBelowTheoreticalLowerBound) {
  // On uniform caps, max normalized load >= total_demand / (slots * cap)
  // and >= each job's demand / (window * cap).
  const auto c = GetParam();
  util::Rng rng(c.seed);
  LpProblem base;
  std::vector<LoadRow> loads(static_cast<std::size_t>(c.slots));
  const double cap = 20.0;
  for (int t = 0; t < c.slots; ++t) {
    loads[static_cast<std::size_t>(t)].normalizer = cap;
  }
  double total = 0.0;
  double per_job_bound = 0.0;
  for (int i = 0; i < c.jobs; ++i) {
    const int a = static_cast<int>(rng.uniform_int(0, c.slots - 1));
    const int d = static_cast<int>(rng.uniform_int(a, c.slots - 1));
    const double demand = static_cast<double>(rng.uniform_int(1, 15));
    total += demand;
    per_job_bound =
        std::max(per_job_bound, demand / ((d - a + 1) * cap));
    std::vector<RowEntry> row;
    for (int t = a; t <= d; ++t) {
      const int col = base.add_column(0.0, 0.0, kInfinity);
      row.push_back(RowEntry{col, 1.0});
      loads[static_cast<std::size_t>(t)].entries.push_back(
          RowEntry{col, 1.0});
    }
    base.add_row(RowSense::kEqual, demand, std::move(row));
  }
  LexMinMaxSolver lex;
  const auto r = lex.solve(base, loads);
  ASSERT_TRUE(r.optimal());
  const double lower_bound =
      std::max(total / (c.slots * cap), per_job_bound);
  EXPECT_GE(r.max_level(), lower_bound - 1e-6);
  // All loads bounded by the reported max level.
  for (double load : r.load) EXPECT_LE(load, r.max_level() + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, LexMinMaxProperty,
    ::testing::Values(LexRandomCase{3, 4, 11}, LexRandomCase{5, 6, 12},
                      LexRandomCase{8, 8, 13}, LexRandomCase{10, 12, 14},
                      LexRandomCase{14, 10, 15}, LexRandomCase{20, 16, 16}));

}  // namespace
}  // namespace flowtime::lp
