// Stress and cross-validation tests for the solver stack: pricing-rule
// independence, lexmin level monotonicity, heuristic-vs-exact fixing, and
// table formatting edge cases that the bench harnesses rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/flowtime_scheduler.h"
#include "lp/lexmin.h"
#include "lp/simplex.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/scenario_io.h"

namespace flowtime {
namespace {

using lp::kInfinity;
using lp::LoadRow;
using lp::LpProblem;
using lp::RowEntry;
using lp::RowSense;

LpProblem random_lp(util::Rng& rng, int columns, int rows) {
  LpProblem p;
  for (int j = 0; j < columns; ++j) {
    p.add_column(rng.uniform_real(-3.0, 3.0), 0.0,
                 rng.uniform_real(2.0, 8.0));
  }
  for (int i = 0; i < rows; ++i) {
    std::vector<RowEntry> entries;
    for (int j = 0; j < columns; ++j) {
      if (rng.bernoulli(0.5)) {
        entries.push_back(RowEntry{j, rng.uniform_real(-1.0, 3.0)});
      }
    }
    p.add_row(RowSense::kLessEqual, rng.uniform_real(2.0, 15.0),
              std::move(entries));
  }
  return p;
}

class PricingRuleIndependence : public ::testing::TestWithParam<int> {};

TEST_P(PricingRuleIndependence, BlandAndDantzigAgreeOnTheOptimum) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  const LpProblem p = random_lp(rng, 10, 7);

  lp::SimplexOptions dantzig;  // defaults: Dantzig with Bland fallback
  lp::SimplexOptions bland;
  bland.degenerate_before_bland = 0;  // Bland from the first pivot

  const lp::Solution a = lp::SimplexSolver(dantzig).solve(p);
  const lp::Solution b = lp::SimplexSolver(bland).solve(p);
  ASSERT_EQ(a.status, b.status);
  if (a.optimal()) {
    EXPECT_NEAR(a.objective, b.objective, 1e-6);
    EXPECT_TRUE(p.is_feasible(b.x, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PricingRuleIndependence,
                         ::testing::Range(1, 11));

class LexminStress : public ::testing::TestWithParam<int> {};

TEST_P(LexminStress, LevelsAreNonIncreasingAndLoadsRespectThem) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 6000);
  const int slots = static_cast<int>(rng.uniform_int(6, 24));
  const int jobs = static_cast<int>(rng.uniform_int(4, 20));
  LpProblem base;
  std::vector<LoadRow> loads(static_cast<std::size_t>(slots));
  for (int t = 0; t < slots; ++t) {
    loads[static_cast<std::size_t>(t)].normalizer =
        rng.uniform_real(50.0, 200.0);
  }
  for (int i = 0; i < jobs; ++i) {
    const int begin = static_cast<int>(rng.uniform_int(0, slots - 1));
    const int end = static_cast<int>(rng.uniform_int(begin, slots - 1));
    std::vector<RowEntry> row;
    for (int t = begin; t <= end; ++t) {
      const int col = base.add_column(0.0, 0.0, kInfinity);
      row.push_back(RowEntry{col, 1.0});
      loads[static_cast<std::size_t>(t)].entries.push_back(
          RowEntry{col, 1.0});
    }
    base.add_row(RowSense::kEqual,
                 rng.uniform_real(5.0, 40.0 * (end - begin + 1)),
                 std::move(row));
  }
  lp::LexMinMaxOptions options;
  options.max_rounds = 64;
  const lp::LexMinMaxResult r =
      lp::LexMinMaxSolver(options).solve(base, loads);
  ASSERT_TRUE(r.optimal());
  for (std::size_t k = 1; k < r.levels.size(); ++k) {
    EXPECT_LE(r.levels[k], r.levels[k - 1] + 1e-6)
        << "levels must come out in decreasing order";
  }
  for (double load : r.load) {
    EXPECT_LE(load, r.max_level() + 1e-6);
    EXPECT_GE(load, -1e-9);
  }
}

TEST_P(LexminStress, HeuristicFixingMatchesExactOnMaxLevel) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 7000);
  const int slots = static_cast<int>(rng.uniform_int(4, 10));
  LpProblem base;
  std::vector<LoadRow> loads(static_cast<std::size_t>(slots));
  for (int t = 0; t < slots; ++t) {
    loads[static_cast<std::size_t>(t)].normalizer = 100.0;
  }
  for (int i = 0; i < 6; ++i) {
    const int begin = static_cast<int>(rng.uniform_int(0, slots - 1));
    const int end = static_cast<int>(rng.uniform_int(begin, slots - 1));
    std::vector<RowEntry> row;
    for (int t = begin; t <= end; ++t) {
      const int col = base.add_column(0.0, 0.0, kInfinity);
      row.push_back(RowEntry{col, 1.0});
      loads[static_cast<std::size_t>(t)].entries.push_back(
          RowEntry{col, 1.0});
    }
    base.add_row(RowSense::kEqual,
                 rng.uniform_real(10.0, 60.0 * (end - begin + 1)),
                 std::move(row));
  }
  lp::LexMinMaxOptions heuristic;
  lp::LexMinMaxOptions exact;
  exact.exact_fixing = true;
  const auto h = lp::LexMinMaxSolver(heuristic).solve(base, loads);
  const auto e = lp::LexMinMaxSolver(exact).solve(base, loads);
  ASSERT_TRUE(h.optimal());
  ASSERT_TRUE(e.optimal());
  // The first coordinate (overall min-max) is exact in both modes. Deeper
  // coordinates may differ either way when the binding set is non-unique
  // (see the exactness caveat in lexmin.h), so only the peak is asserted.
  EXPECT_NEAR(h.max_level(), e.max_level(), 1e-5);
  for (double load : h.load) EXPECT_LE(load, h.max_level() + 1e-6);
  for (double load : e.load) EXPECT_LE(load, e.max_level() + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LexminStress, ::testing::Range(1, 11));

TEST(IterationLimitEndToEnd, ExhaustedPivotCapYieldsDeterministicFallback) {
  // Eight identical jobs sharing one window make the placement LP highly
  // degenerate — plenty of tied pivots to chew through a tiny cap. The cap
  // must surface as kIterationLimit (never a crash or an unplaced job), and
  // because the pivot budget is deterministic, two runs must be
  // byte-identical.
  const char* scenario_text =
      "cluster cores=64 mem_gb=128 slot_seconds=10\n"
      "workflow id=0 name=degenerate start=0 deadline=500\n"
      "job node=0 name=a tasks=8 runtime=80 cores=1 mem=2\n"
      "job node=1 name=b tasks=8 runtime=80 cores=1 mem=2\n"
      "job node=2 name=c tasks=8 runtime=80 cores=1 mem=2\n"
      "job node=3 name=d tasks=8 runtime=80 cores=1 mem=2\n"
      "job node=4 name=e tasks=8 runtime=80 cores=1 mem=2\n"
      "job node=5 name=f tasks=8 runtime=80 cores=1 mem=2\n"
      "job node=6 name=g tasks=8 runtime=80 cores=1 mem=2\n"
      "job node=7 name=h tasks=8 runtime=80 cores=1 mem=2\n"
      "end\n";
  auto run_once = [&]() {
    workload::ParseError error;
    const auto parsed = workload::parse_scenario(scenario_text, &error);
    EXPECT_TRUE(parsed.has_value()) << error.message;
    sim::SimConfig config;
    if (parsed->cluster) config.cluster = *parsed->cluster;
    core::FlowTimeConfig ft;
    ft.cluster = config.cluster;
    ft.solver_pivot_budget = 5;  // far below what 8 demand rows need
    core::FlowTimeScheduler scheduler(ft);
    sim::Simulator simulator(config);
    sim::SimResult result = simulator.run(parsed->scenario, scheduler);
    bool iteration_limited = false;
    for (const core::ReplanRecord& record : scheduler.replan_log()) {
      if (record.degrade_reason == core::DegradeReason::kIterationLimit) {
        iteration_limited = true;
        EXPECT_TRUE(record.budget_exhausted);
      }
    }
    EXPECT_TRUE(iteration_limited)
        << "the pivot cap must trip at least one re-plan";
    return result;
  };
  const sim::SimResult a = run_once();
  const sim::SimResult b = run_once();
  EXPECT_TRUE(a.all_completed);
  EXPECT_EQ(a.capacity_violations, 0);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].completion_s, b.jobs[i].completion_s);
  }
  ASSERT_EQ(a.used_per_slot.size(), b.used_per_slot.size());
  for (std::size_t t = 0; t < a.used_per_slot.size(); ++t) {
    EXPECT_EQ(a.used_per_slot[t], b.used_per_slot[t]) << "slot " << t;
  }
}

TEST(TableEdge, EmptyTableRendersHeaderOnly) {
  util::Table t({"a", "b"});
  EXPECT_EQ(t.row_count(), 0u);
  const std::string rendered = t.to_string();
  EXPECT_NE(rendered.find("a"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "a,b\n");
}

TEST(TableEdge, FormatDoublePrecision) {
  EXPECT_EQ(util::format_double(3.14159, 2), "3.14");
  EXPECT_EQ(util::format_double(3.14159, 0), "3");
  EXPECT_EQ(util::format_double(-1.005, 1), "-1.0");
}

}  // namespace
}  // namespace flowtime
