// Fig. 9 (reconstructed) — robustness to estimation errors.
//
// §III-A names robustness to estimation errors as a design requirement
// (recurring jobs change input data and code between runs; both under- and
// over-estimation occur), and Fig. 5 evaluates one mitigation (slack). The
// evaluation tail is truncated in the available scan, so this bench sweeps
// the error severity directly: every workflow job's true runtime diverges
// from its estimate by up to the given fraction (half the jobs under-, half
// over-estimated), and we track FlowTime's deadline misses and ad-hoc
// turnaround with and without slack.
#include <cstdio>

#include "bench_trace.h"

#include "sched/experiment.h"
#include "util/table.h"
#include "workload/estimator.h"
#include "workload/trace_gen.h"

int main(int argc, char** argv) {
  if (!flowtime::bench::init_trace_out(&argc, argv)) return 1;
  const double solver_budget_ms =
      flowtime::bench::init_solver_budget_ms(&argc, argv);
  using namespace flowtime;
  using workload::ResourceVec;

  sched::ExperimentConfig config;
  config.sim.cluster.capacity = ResourceVec{500.0, 1024.0};
  config.sim.max_horizon_s = 8.0 * 3600.0;
  config.flowtime.cluster.capacity = config.sim.cluster.capacity;
  config.flowtime.cluster.slot_seconds = config.sim.cluster.slot_seconds;
  config.flowtime.solver_budget_ms = solver_budget_ms;
  config.schedulers = {"FlowTime", "FlowTime_no_ds"};

  workload::Fig4Config fig4;
  fig4.num_workflows = 3;
  fig4.jobs_per_workflow = 12;
  fig4.workflow_start_spread_s = 400.0;
  fig4.workflow.cluster.capacity = config.sim.cluster.capacity;
  fig4.workflow.looseness_min = 4.0;
  fig4.workflow.looseness_max = 6.0;
  fig4.adhoc.rate_per_s = 0.10;
  fig4.adhoc.horizon_s = 1200.0;
  fig4.adhoc.min_tasks = 10;
  fig4.adhoc.max_tasks = 40;

  std::printf("=== Fig. 9 (reconstructed): estimation-error robustness ===\n");
  std::printf(
      "Severity x means every job's actual runtime is off by up to x "
      "(50%% under-, 50%% over-estimated). 36 deadline jobs.\n\n");

  util::Table table({"severity", "slack60_missed", "slack60_adhoc_s",
                     "slack60_replans", "noslack_missed", "noslack_adhoc_s"});
  for (const double severity : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    workload::Scenario scenario = workload::make_fig4_scenario(31, fig4);
    util::Rng rng(77);
    workload::EstimationErrorConfig error;
    error.affected_fraction = severity > 0.0 ? 1.0 : 0.0;
    error.under_probability = 0.5;
    error.under_severity = severity;
    error.over_severity = severity;
    workload::inject_estimation_error(scenario.workflows, error, rng);

    const auto outcomes = sched::run_comparison(scenario, config);
    table.begin_row().add(severity, 1);
    for (const auto& outcome : outcomes) {
      if (outcome.name == "FlowTime") {
        table.add(static_cast<std::int64_t>(outcome.deadlines.jobs_missed))
            .add(outcome.adhoc.mean_turnaround_s, 1)
            .add(static_cast<std::int64_t>(outcome.replans));
      } else {
        table.add(static_cast<std::int64_t>(outcome.deadlines.jobs_missed))
            .add(outcome.adhoc.mean_turnaround_s, 1);
      }
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: with slack, misses stay at (or near) zero across "
      "severities because re-planning plus the 60 s buffer absorb "
      "overruns; without slack, misses appear and grow with severity; "
      "ad-hoc turnaround degrades only mildly (re-solves spread the "
      "extra work).\n");
  flowtime::bench::finish_trace_out();
  return 0;
}
