// Re-planning latency benchmark for the concurrent runtime (DESIGN.md §11).
//
// Runs the same Fig.4-style workload end-to-end twice — once with the
// synchronous FlowTime scheduler (every re-plan blocks the serving slot)
// and once behind the concurrent runtime in barrier mode (every solve runs
// on the solver thread; the barrier keeps the run plan-for-plan identical,
// so the two rows are directly comparable) — and reports, per mode, the
// re-plan count, simplex pivots, and the wall-clock distribution of the
// solve (p50/p99), plus the runtime's coalescing and staleness counters.
//
// Output is one JSON document (default BENCH_replan.json, committed to the
// repo so the numbers travel with the code). Regenerate with:
//   ./build/bench/bench_replan --out BENCH_replan.json
#include <cstdio>
#include <string>
#include <vector>

#include "core/flowtime_scheduler.h"
#include "obs/metrics.h"
#include "runtime/concurrent_scheduler.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "util/stats.h"
#include "workload/trace_gen.h"

namespace {

using namespace flowtime;
using workload::ResourceVec;

struct ModeStats {
  std::string mode;
  int replans = 0;
  int discarded = 0;
  std::int64_t pivots = 0;
  double wall_p50_ms = 0.0;
  double wall_p99_ms = 0.0;
  double wall_max_ms = 0.0;
  std::int64_t coalesced_events = 0;
  std::int64_t stale_solves = 0;
  std::int64_t async_solves = 0;
  bool all_completed = false;
};

ModeStats collect(const std::string& mode,
                  const core::FlowTimeScheduler& scheduler,
                  const sim::SimResult& result) {
  ModeStats stats;
  stats.mode = mode;
  stats.pivots = scheduler.total_pivots();
  stats.all_completed = result.all_completed;
  std::vector<double> wall_ms;
  for (const core::ReplanRecord& record : scheduler.replan_log()) {
    if (record.discarded) {
      ++stats.discarded;
      continue;
    }
    ++stats.replans;
    wall_ms.push_back(record.wall_s * 1e3);
  }
  if (!wall_ms.empty()) {
    stats.wall_p50_ms = util::quantile(wall_ms, 0.50);
    stats.wall_p99_ms = util::quantile(wall_ms, 0.99);
    stats.wall_max_ms = util::max_of(wall_ms);
  }
  return stats;
}

std::string render_json(const std::vector<ModeStats>& rows,
                        const workload::Scenario& scenario) {
  std::string out = "{\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"benchmark\": \"replan\",\n"
                "  \"workflows\": %zu,\n"
                "  \"adhoc_jobs\": %zu,\n"
                "  \"modes\": [\n",
                scenario.workflows.size(), scenario.adhoc_jobs.size());
  out += buf;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ModeStats& r = rows[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\n"
        "      \"mode\": \"%s\",\n"
        "      \"replans\": %d,\n"
        "      \"discarded_solves\": %d,\n"
        "      \"pivots\": %lld,\n"
        "      \"wall_p50_ms\": %.3f,\n"
        "      \"wall_p99_ms\": %.3f,\n"
        "      \"wall_max_ms\": %.3f,\n"
        "      \"coalesced_events\": %lld,\n"
        "      \"stale_solves\": %lld,\n"
        "      \"async_solves\": %lld,\n"
        "      \"all_completed\": %s\n"
        "    }%s\n",
        r.mode.c_str(), r.replans, r.discarded,
        static_cast<long long>(r.pivots), r.wall_p50_ms, r.wall_p99_ms,
        r.wall_max_ms, static_cast<long long>(r.coalesced_events),
        static_cast<long long>(r.stale_solves),
        static_cast<long long>(r.async_solves),
        r.all_completed ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string out_path = flags.get_string("out", "BENCH_replan.json");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_double("seed", 7.0));
  obs::set_enabled(true);  // wall-clock timers live behind the obs switch

  sim::SimConfig sim_config;
  sim_config.cluster.capacity = ResourceVec{500.0, 1024.0};
  sim_config.max_horizon_s = 8.0 * 3600.0;

  workload::Fig4Config fig4;
  fig4.num_workflows = 5;
  fig4.jobs_per_workflow = 18;
  fig4.workflow_start_spread_s = 400.0;
  fig4.workflow.cluster.capacity = sim_config.cluster.capacity;
  fig4.workflow.looseness_min = 4.0;
  fig4.workflow.looseness_max = 6.0;
  fig4.adhoc.rate_per_s = 0.15;
  fig4.adhoc.horizon_s = 1500.0;
  const workload::Scenario scenario = workload::make_fig4_scenario(seed, fig4);

  core::FlowTimeConfig flowtime;
  flowtime.cluster.capacity = sim_config.cluster.capacity;
  flowtime.cluster.slot_seconds = sim_config.cluster.slot_seconds;

  std::vector<ModeStats> rows;

  {
    core::FlowTimeScheduler scheduler(flowtime);
    const sim::SimResult result =
        sim::Simulator(sim_config).run(scenario, scheduler);
    rows.push_back(collect("sync", scheduler, result));
  }

  {
    runtime::RuntimeConfig rt;
    rt.flowtime = flowtime;
    rt.async_replan = true;
    rt.barrier_mode = true;
    runtime::ConcurrentScheduler scheduler(rt);
    const sim::SimResult result =
        sim::Simulator(sim_config).run(scenario, scheduler);
    scheduler.drain_events();
    ModeStats stats = collect("async_barrier", scheduler.inner(), result);
    stats.coalesced_events = scheduler.coalesced_events();
    stats.stale_solves = scheduler.stale_solves();
    stats.async_solves = scheduler.async_solves();
    rows.push_back(stats);
  }

  const std::string json = render_json(rows, scenario);
  if (!sim::write_file(out_path, json)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("%s", json.c_str());
  std::printf("Written to %s\n", out_path.c_str());
  return 0;
}
