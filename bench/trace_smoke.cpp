// Smoke test for the observability pipeline (DESIGN.md "Observability").
//
// Two phases, both wired into ctest so a broken event schema fails the
// build's test stage, not a downstream consumer:
//
//   1. Synchronous run: a small FlowTime scenario with JSONL tracing
//      enabled. The trace is re-read and EVERY line is validated against
//      the documented per-type field schema below — an unknown event type
//      or a missing required field fails the test. On top of the schema,
//      the structural invariants: at least one LP solve and one replan,
//      a per-slot load record for every simulated slot, and well-formed
//      lifecycle spans (paired begin/end, matching kinds, monotone
//      timestamps, workflow/job/placement/plan hierarchy present).
//
//   2. Asynchronous run behind the concurrent runtime (barrier mode, so
//      the seeded scenario completes deterministically while every solve
//      still flows queue -> batch -> solver pool -> adoption): the causal
//      chain must balance when paired BY ID (line order races between
//      threads by design): every solve_begin resolves to exactly one
//      plan_adopted/plan_discarded terminal, every batch_planned points
//      at a known replan, every event_dequeued at a known enqueue, and
//      the four stage latencies of each terminal sum to its total_ms.
//      (Free-running non-barrier pairing is covered by
//      ObsConcurrency.CausalChainsPairAcrossThreads.)
//
// Flags: --trace-out PATH (default trace_smoke.jsonl in the CWD; the
// async phase writes PATH.async).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/flowtime_scheduler.h"
#include "dag/generators.h"
#include "obs/metrics.h"
#include "obs/testing.h"
#include "obs/trace.h"
#include "runtime/concurrent_scheduler.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "workload/trace_gen.h"

using namespace flowtime;
using workload::ResourceVec;

namespace {

workload::JobSpec job(int tasks, double runtime_s) {
  workload::JobSpec spec;
  spec.name = "j";
  spec.num_tasks = tasks;
  spec.task.runtime_s = runtime_s;
  spec.task.demand = ResourceVec{1.0, 2.0};
  return spec;
}

int fail(const char* what) {
  std::fprintf(stderr, "trace_smoke: FAIL: %s\n", what);
  return 1;
}

// The documented event schema (DESIGN.md §8): required fields per type.
// Emitters may add optional fields (span metadata, per-resource columns,
// fault-kind specifics); removing or renaming a field listed here is a
// compatibility break for trace consumers and fails this test.
const std::map<std::string, std::vector<std::string>>& event_schema() {
  static const std::map<std::string, std::vector<std::string>> schema = {
      // -- lifecycle spans --------------------------------------------------
      {"span_begin", {"span", "parent", "kind", "name", "sim_s", "wall_s"}},
      {"span_end", {"span", "kind", "name", "sim_s", "wall_s"}},
      // -- simulator --------------------------------------------------------
      {"slot",
       {"scheduler", "slot", "now_s", "load_cpu", "load_mem_gb",
        "active_jobs", "ready_jobs", "completions"}},
      {"sim_run",
       {"scheduler", "slots", "jobs", "all_completed",
        "capacity_violations", "width_violations",
        "not_ready_allocations"}},
      // -- scheduler core ---------------------------------------------------
      {"workflow_arrival",
       {"workflow", "now_s", "jobs", "deadline_s", "decompose_status",
        "used_fallback", "min_makespan_s"}},
      {"replan",
       {"slot", "cause", "planned_jobs", "pivots", "wall_s",
        "late_extensions", "capacity_exceeded", "lp_failed",
        "lexmin_truncated", "max_normalized_load", "degrade_rung",
        "degrade_reason", "budget_exhausted", "degraded_mode"}},
      {"replan_discarded", {"slot", "cause", "epoch", "pivots", "preempted"}},
      {"solver_escalation",
       {"slot", "from_rung", "to_rung", "reason", "budget_pivots"}},
      {"degrade_enter", {"slot", "rung", "reason"}},
      {"degrade_exit", {"slot", "clean_replans"}},
      {"greedy_placement",
       {"jobs", "slots", "max_normalized_load", "capacity_exceeded"}},
      {"admission",
       {"op", "workflow", "now_s", "admitted", "peak_load", "reason"}},
      {"config_skew", {"component", "configured", "authoritative"}},
      {"deadline_risk",
       {"entity", "workflow", "level", "now_s", "deadline_s", "projected_s",
        "laxity_s"}},
      // -- LP layer ---------------------------------------------------------
      {"simplex_solve",
       {"rows", "cols", "status", "pivots", "phase1_iters", "phase2_iters",
        "objective", "warm_start", "warm_start_fallback", "wall_s"}},
      {"lexmin_solve",
       {"rows", "cols", "loads", "status", "rounds", "pivots", "levels",
        "max_level", "truncated", "budget_exhausted", "probe_failures",
        "wall_s"}},
      {"lexmin_round",
       {"round", "level", "pivots", "fixed", "total_fixed", "wall_s"}},
      {"solve_profile",
       {"context", "slot", "solves", "pivots", "degenerate_pivots",
        "bound_flips", "refactorizations", "basis_patches", "lexmin_rounds",
        "pricing_s", "ratio_test_s", "basis_update_s", "refactor_s",
        "wall_s"}},
      // -- fault injection --------------------------------------------------
      {"fault_injected", {"kind"}},  // per-kind fields differ by variant
      {"fault_lifted", {"kind", "slot", "now_s"}},
      {"fault_redecompose",
       {"workflow", "node", "now_s", "retry_at_s", "relaxed_windows"}},
      {"task_retry",
       {"slot", "now_s", "uid", "workflow", "node", "name", "retry"}},
      {"capacity_change", {"now_s"}},  // fault + admission variants
      // -- concurrent runtime causal chain ----------------------------------
      {"event_enqueued",
       {"trace", "event", "now_s", "wall_s", "trigger", "lane", "depth"}},
      {"event_dequeued", {"trace", "batch", "queue_wait_ms", "wall_s"}},
      {"batch_formed", {"batch", "events", "triggers", "lane", "wall_s"}},
      {"batch_planned", {"batch", "replan"}},
      {"solve_begin",
       {"replan", "slot", "epoch", "batches", "coalesce_ms", "lane",
        "wall_s"}},
      {"solve_done",
       {"replan", "pivots", "preempted", "solve_ms", "lane", "wall_s"}},
      {"plan_adopted",
       {"replan", "slot", "epoch", "pivots", "stale", "preempted",
        "queue_wait_ms", "coalesce_ms", "solve_ms", "adoption_lag_ms",
        "total_ms", "lane", "wall_s"}},
      {"plan_discarded",
       {"replan", "slot", "epoch", "pivots", "stale", "preempted",
        "queue_wait_ms", "coalesce_ms", "solve_ms", "adoption_lag_ms",
        "total_ms", "lane", "wall_s"}},
  };
  return schema;
}

// Validates one parsed line against the schema. Returns nullptr on
// success, a static description on failure (the caller prints the type).
const char* check_schema(const std::map<std::string, std::string>& fields) {
  const auto type_it = fields.find("type");
  if (type_it == fields.end()) return "event without type field";
  const auto schema_it = event_schema().find(type_it->second);
  if (schema_it == event_schema().end()) return "unknown event type";
  for (const std::string& key : schema_it->second) {
    if (!fields.count(key)) return "missing required field";
  }
  return nullptr;
}

bool load_trace(const std::string& path,
                std::vector<std::map<std::string, std::string>>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    std::map<std::string, std::string> fields;
    if (!obs::parse_flat_json(line, &fields)) return false;
    out->push_back(std::move(fields));
  }
  return true;
}

double num(const std::map<std::string, std::string>& fields,
           const std::string& key) {
  const auto it = fields.find(key);
  return it == fields.end() ? 0.0 : std::strtod(it->second.c_str(), nullptr);
}

workload::Scenario make_scenario() {
  // A 3-job chain with a runtime overrun so the run exercises arrival-,
  // deviation- and overrun-driven replans.
  workload::Scenario scenario;
  workload::Workflow w;
  w.id = 0;
  w.name = "smoke";
  w.start_s = 0.0;
  w.deadline_s = 2000.0;
  w.dag = dag::make_chain(3);
  w.jobs = {job(10, 40.0), job(20, 30.0), job(5, 60.0)};
  w.jobs[1].actual_runtime_factor = 1.2;
  scenario.workflows.push_back(std::move(w));
  return scenario;
}

// Phase 2: async (barrier-mode) run; the causal chain must balance by id.
int check_async_chain(const std::string& path,
                      const workload::ClusterSpec& cluster) {
  obs::testing::ScopedRegistryReset::reset();
  if (!obs::open_trace_file(path)) return fail("cannot open async trace");

  sim::SimConfig sim_config;
  sim_config.cluster = cluster;
  sim_config.max_horizon_s = 6000.0;
  runtime::RuntimeConfig rt;
  rt.flowtime.cluster = cluster;
  rt.async_replan = true;
  rt.barrier_mode = true;
  {
    runtime::ConcurrentScheduler scheduler(rt);
    sim::Simulator sim(sim_config);
    const sim::SimResult result = sim.run(make_scenario(), scheduler);
    if (!result.all_completed) return fail("async scenario did not complete");
  }  // destructor closes any leftover in-flight chain
  obs::clear_trace_sink();

  std::vector<std::map<std::string, std::string>> events;
  if (!load_trace(path, &events)) return fail("async trace unreadable");

  std::set<std::int64_t> enqueued, dequeued;
  std::set<std::int64_t> batches, planned_batches;
  std::set<std::int64_t> begun, done, terminal;
  int bad_stage_sums = 0;
  for (const auto& fields : events) {
    if (const char* err = check_schema(fields)) {
      std::fprintf(stderr, "trace_smoke: async: %s (%s)\n", err,
                   fields.count("type") ? fields.at("type").c_str() : "?");
      return fail("async schema violation");
    }
    const std::string& type = fields.at("type");
    const auto id = [&](const char* key) {
      return static_cast<std::int64_t>(num(fields, key));
    };
    if (type == "event_enqueued") {
      if (!enqueued.insert(id("trace")).second) {
        return fail("duplicate event trace id");
      }
    } else if (type == "event_dequeued") {
      dequeued.insert(id("trace"));
    } else if (type == "batch_formed") {
      if (!batches.insert(id("batch")).second) {
        return fail("duplicate batch id");
      }
    } else if (type == "batch_planned") {
      planned_batches.insert(id("batch"));
    } else if (type == "solve_begin") {
      if (!begun.insert(id("replan")).second) {
        return fail("duplicate solve_begin replan id");
      }
    } else if (type == "solve_done") {
      done.insert(id("replan"));
    } else if (type == "plan_adopted" || type == "plan_discarded") {
      if (!terminal.insert(id("replan")).second) {
        return fail("replan reached two terminals");
      }
      const double sum = num(fields, "queue_wait_ms") +
                         num(fields, "coalesce_ms") +
                         num(fields, "solve_ms") +
                         num(fields, "adoption_lag_ms");
      if (std::fabs(sum - num(fields, "total_ms")) > 1.0) ++bad_stage_sums;
    }
  }
  // Pairing is by id, never by line order: enqueue/dequeue lines race
  // between producer and serving threads in the sink.
  for (const std::int64_t id : dequeued) {
    if (!enqueued.count(id)) return fail("event_dequeued without enqueue");
  }
  for (const std::int64_t id : planned_batches) {
    if (!batches.count(id)) return fail("batch_planned without batch_formed");
  }
  if (begun != terminal) {
    return fail("solve_begin/terminal chains unbalanced");
  }
  for (const std::int64_t id : done) {
    if (!begun.count(id)) return fail("solve_done without solve_begin");
  }
  if (begun.empty()) return fail("async run produced no replan chains");
  if (bad_stage_sums > 0) {
    return fail("terminal stages do not sum to total_ms within 1 ms");
  }
  std::printf(
      "trace_smoke: async OK (%zu events: %zu queued, %zu batches, %zu "
      "replan chains all terminated; stages tile total_ms)\n",
      events.size(), enqueued.size(), batches.size(), begun.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string path = flags.get_string("trace-out", "trace_smoke.jsonl");

  if (!obs::open_trace_file(path)) return fail("cannot open trace file");

  workload::ClusterSpec cluster{ResourceVec{50.0, 100.0}, 10.0};
  workload::Scenario scenario = make_scenario();

  sim::SimConfig sim_config;
  sim_config.cluster = cluster;
  sim_config.max_horizon_s = 6000.0;
  core::FlowTimeConfig ft_config;
  ft_config.cluster = cluster;
  sim::Simulator sim(sim_config);
  core::FlowTimeScheduler scheduler(ft_config);
  const sim::SimResult result = sim.run(scenario, scheduler);
  obs::clear_trace_sink();  // flush before re-reading

  if (!result.all_completed) return fail("scenario did not complete");

  std::ifstream in(path);
  if (!in) return fail("trace file unreadable after run");
  int lines = 0, solves = 0, replans = 0, slots = 0;
  // Open spans by id -> (kind, begin sim_s); kinds seen over the whole run.
  std::map<std::string, std::pair<std::string, double>> open_spans;
  std::map<std::string, int> span_kinds;
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
    std::map<std::string, std::string> fields;
    if (!obs::parse_flat_json(line, &fields)) return fail("invalid JSONL line");
    if (const char* err = check_schema(fields)) {
      std::fprintf(stderr, "trace_smoke: %s (%s)\n", err,
                   fields.count("type") ? fields["type"].c_str() : "?");
      return fail("schema violation");
    }
    const std::string& type = fields["type"];
    if (type == "span_begin") {
      if (open_spans.count(fields["span"])) return fail("span id reused");
      open_spans[fields["span"]] = {fields["kind"],
                                    std::strtod(fields["sim_s"].c_str(),
                                                nullptr)};
      ++span_kinds[fields["kind"]];
    }
    if (type == "span_end") {
      const auto it = open_spans.find(fields["span"]);
      if (it == open_spans.end()) return fail("span_end without span_begin");
      if (it->second.first != fields["kind"]) {
        return fail("span_end kind mismatch");
      }
      const double end_s = std::strtod(fields["sim_s"].c_str(), nullptr);
      if (end_s + 1e-9 < it->second.second) {
        return fail("span timestamps not monotone");
      }
      open_spans.erase(it);
    }
    if (type == "simplex_solve" || type == "lexmin_solve") ++solves;
    if (type == "replan") ++replans;
    if (type == "slot") ++slots;
  }
  if (solves < 1) return fail("no LP solve events");
  if (replans < 1) return fail("no replan events");
  if (slots < result.slots_simulated) {
    return fail("missing per-slot load records");
  }
  if (!open_spans.empty()) return fail("spans left open at end of run");
  if (span_kinds["workflow"] < 1) return fail("no workflow spans");
  if (span_kinds["job"] < 3) return fail("expected a span per chain job");
  if (span_kinds["placement"] < 1) return fail("no placement spans");
  if (span_kinds["plan"] < 1) return fail("no plan spans");
  int total_spans = 0;
  for (const auto& [kind, count] : span_kinds) {
    (void)kind;
    total_spans += count;
  }

  std::printf(
      "trace_smoke: OK (%d lines, all schema-valid: %d solves, %d replans, "
      "%d slot records, %d paired spans in %s)\n",
      lines, solves, replans, slots, total_spans, path.c_str());

  return check_async_chain(path + ".async", cluster);
}
