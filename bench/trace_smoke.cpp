// Smoke test for the observability pipeline (DESIGN.md "Observability").
//
// Runs a small FlowTime scenario with JSONL tracing enabled, then re-reads
// the trace and checks the contract the docs promise: every line is flat
// JSON, at least one LP solve and one replan were recorded, the simulator
// emitted a per-slot load record for every slot it ran, and the lifecycle
// spans are well-formed — every span_end matches an earlier span_begin of
// the same kind, nothing is left open, timestamps are monotone within each
// span, and the workflow/job/placement hierarchy is present. Wired into
// ctest so a broken event schema fails the build's test stage, not a
// downstream consumer.
//
// Flags: --trace-out PATH (default trace_smoke.jsonl in the CWD).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <utility>

#include "core/flowtime_scheduler.h"
#include "dag/generators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "workload/trace_gen.h"

using namespace flowtime;
using workload::ResourceVec;

namespace {

workload::JobSpec job(int tasks, double runtime_s) {
  workload::JobSpec spec;
  spec.name = "j";
  spec.num_tasks = tasks;
  spec.task.runtime_s = runtime_s;
  spec.task.demand = ResourceVec{1.0, 2.0};
  return spec;
}

int fail(const char* what) {
  std::fprintf(stderr, "trace_smoke: FAIL: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string path = flags.get_string("trace-out", "trace_smoke.jsonl");

  if (!obs::open_trace_file(path)) return fail("cannot open trace file");

  // A 3-job chain with a runtime overrun so the run exercises arrival-,
  // deviation- and overrun-driven replans.
  workload::ClusterSpec cluster{ResourceVec{50.0, 100.0}, 10.0};
  workload::Scenario scenario;
  workload::Workflow w;
  w.id = 0;
  w.name = "smoke";
  w.start_s = 0.0;
  w.deadline_s = 2000.0;
  w.dag = dag::make_chain(3);
  w.jobs = {job(10, 40.0), job(20, 30.0), job(5, 60.0)};
  w.jobs[1].actual_runtime_factor = 1.2;
  scenario.workflows.push_back(std::move(w));

  sim::SimConfig sim_config;
  sim_config.cluster = cluster;
  sim_config.max_horizon_s = 6000.0;
  core::FlowTimeConfig ft_config;
  ft_config.cluster = cluster;
  sim::Simulator sim(sim_config);
  core::FlowTimeScheduler scheduler(ft_config);
  const sim::SimResult result = sim.run(scenario, scheduler);
  obs::clear_trace_sink();  // flush before re-reading

  if (!result.all_completed) return fail("scenario did not complete");

  std::ifstream in(path);
  if (!in) return fail("trace file unreadable after run");
  int lines = 0, solves = 0, replans = 0, slots = 0;
  // Open spans by id -> (kind, begin sim_s); kinds seen over the whole run.
  std::map<std::string, std::pair<std::string, double>> open_spans;
  std::map<std::string, int> span_kinds;
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
    std::map<std::string, std::string> fields;
    if (!obs::parse_flat_json(line, &fields)) return fail("invalid JSONL line");
    if (!fields.count("type")) return fail("event without type field");
    const std::string& type = fields["type"];
    if (type == "span_begin") {
      if (!fields.count("span") || !fields.count("kind") ||
          !fields.count("sim_s") || !fields.count("wall_s")) {
        return fail("span_begin missing span/kind/sim_s/wall_s");
      }
      if (open_spans.count(fields["span"])) return fail("span id reused");
      open_spans[fields["span"]] = {fields["kind"],
                                    std::strtod(fields["sim_s"].c_str(),
                                                nullptr)};
      ++span_kinds[fields["kind"]];
    }
    if (type == "span_end") {
      const auto it = open_spans.find(fields["span"]);
      if (it == open_spans.end()) return fail("span_end without span_begin");
      if (it->second.first != fields["kind"]) {
        return fail("span_end kind mismatch");
      }
      const double end_s = std::strtod(fields["sim_s"].c_str(), nullptr);
      if (end_s + 1e-9 < it->second.second) {
        return fail("span timestamps not monotone");
      }
      open_spans.erase(it);
    }
    if (type == "simplex_solve" || type == "lexmin_solve") ++solves;
    if (type == "replan") {
      ++replans;
      if (!fields.count("cause") || !fields.count("pivots") ||
          !fields.count("wall_s")) {
        return fail("replan event missing cause/pivots/wall_s");
      }
    }
    if (type == "slot") {
      ++slots;
      if (!fields.count("load_cpu") || !fields.count("active_jobs")) {
        return fail("slot event missing load_cpu/active_jobs");
      }
    }
  }
  if (solves < 1) return fail("no LP solve events");
  if (replans < 1) return fail("no replan events");
  if (slots < result.slots_simulated) {
    return fail("missing per-slot load records");
  }
  if (!open_spans.empty()) return fail("spans left open at end of run");
  if (span_kinds["workflow"] < 1) return fail("no workflow spans");
  if (span_kinds["job"] < 3) return fail("expected a span per chain job");
  if (span_kinds["placement"] < 1) return fail("no placement spans");
  if (span_kinds["plan"] < 1) return fail("no plan spans");
  int total_spans = 0;
  for (const auto& [kind, count] : span_kinds) {
    (void)kind;
    total_spans += count;
  }

  std::printf(
      "trace_smoke: OK (%d lines: %d solves, %d replans, %d slot records, "
      "%d paired spans in %s)\n",
      lines, solves, replans, slots, total_spans, path.c_str());
  return 0;
}
