// Fig. 6 — scalability of the deadline decomposition algorithm.
//
// The paper times decomposition over random DAGs with 10-200 nodes and up
// to ~6000 edges (1000 timed runs after 100 warm-ups, Intel i7-3630QM) and
// reports runtimes growing slowly, staying under 3 s at 200 nodes / 6000
// edges. This google-benchmark harness sweeps the same grid; absolute
// numbers differ with hardware, the claim is the slow growth and the
// comfortable ceiling.
#include <benchmark/benchmark.h>

#include "bench_trace.h"
#include "core/decomposition.h"
#include "dag/generators.h"
#include "util/rng.h"
#include "workload/profiles.h"
#include "workload/trace_gen.h"

namespace {

using namespace flowtime;

// A workflow over a random layered DAG with roughly the requested edge
// count. Deterministic per (nodes, edges) so iterations time the same input.
workload::Workflow make_input(int nodes, int target_edges) {
  util::Rng rng(static_cast<std::uint64_t>(nodes) * 10007 +
                static_cast<std::uint64_t>(target_edges));
  workload::Workflow w;
  w.id = 0;
  w.name = "bench";
  w.start_s = 0.0;
  const int layers = std::max(3, nodes / 10);
  w.dag = dag::make_random_layered(rng, nodes, layers, target_edges);
  w.jobs.reserve(static_cast<std::size_t>(nodes));
  for (int v = 0; v < nodes; ++v) {
    w.jobs.push_back(workload::sample_any_job(rng));
  }
  w.deadline_s = 50.0 * nodes;  // loose enough to use the demand-based path
  return w;
}

void BM_DeadlineDecomposition(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const int edges = static_cast<int>(state.range(1));
  const workload::Workflow w = make_input(nodes, edges);
  const core::DeadlineDecomposer decomposer;
  for (auto _ : state) {
    auto result = decomposer.decompose(w);
    benchmark::DoNotOptimize(result);
  }
  state.counters["nodes"] = nodes;
  state.counters["edges"] = w.dag.num_edges();
}

void DecompositionGrid(benchmark::internal::Benchmark* bench) {
  // The paper's grid: nodes 10..200, up to five edge densities per node
  // count (deduplicated once the density saturates the complete layered
  // graph).
  for (int nodes : {10, 50, 100, 150, 200}) {
    const int max_edges = nodes * (nodes - 1) / 2;
    int previous = -1;
    for (int target : {nodes, 3 * nodes, 10 * nodes, 20 * nodes, 30 * nodes}) {
      const int edges = std::min(target, max_edges);
      if (edges == previous) continue;
      previous = edges;
      bench->Args({nodes, edges});
    }
  }
}

BENCHMARK(BM_DeadlineDecomposition)
    ->Apply(DecompositionGrid)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN() equivalent that also accepts --trace-out: the flag is
// extracted before benchmark::Initialize, which rejects unknown arguments.
int main(int argc, char** argv) {
  if (!flowtime::bench::init_trace_out(&argc, argv)) return 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  flowtime::bench::finish_trace_out();
  return 0;
}
