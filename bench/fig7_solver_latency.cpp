// Fig. 7 — latency of the LP-based scheduler.
//
// The paper measures the LP solve time as the number of deadline-aware jobs
// grows, on a 500-core / 1 TB cluster with 100 time slots (10 s each,
// i.e. a 1000 s planning horizon), solved with CPLEX on a MacBook. This
// harness sweeps the job count over the same horizon with our simplex-based
// lexmin solver. Absolute times differ (CPLEX vs from-scratch simplex); the
// reproduction target is sub-second-to-seconds latency growing polynomially
// with the job count — fast enough to re-plan on job completion events.
#include <benchmark/benchmark.h>

#include "bench_trace.h"
#include "core/flow_placement.h"
#include "core/lp_formulation.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace {

using namespace flowtime;
using workload::ResourceVec;

constexpr int kSlots = 100;           // paper: 100 slots of 10 s
constexpr double kCpuCap = 5000.0;    // 500 cores x 10 s per slot
constexpr double kMemCap = 10240.0;   // 1 TB x 10 s per slot

std::vector<core::LpJob> make_jobs(int n) {
  util::Rng rng(static_cast<std::uint64_t>(n));
  std::vector<core::LpJob> jobs;
  jobs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    core::LpJob job;
    job.uid = i;
    job.release_slot = static_cast<int>(rng.uniform_int(0, kSlots / 2));
    job.deadline_slot = job.release_slot +
                        static_cast<int>(rng.uniform_int(10, kSlots / 2));
    job.deadline_slot = std::min(job.deadline_slot, kSlots - 1);
    const int tasks = static_cast<int>(rng.uniform_int(20, 120));
    const double runtime = rng.uniform_real(30.0, 90.0);
    job.demand = ResourceVec{tasks * runtime, tasks * runtime * 2.5};
    job.width = ResourceVec{tasks * 10.0, tasks * 25.0};
    jobs.push_back(job);
  }
  return jobs;
}

void BM_LpSchedulerLatency(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<core::LpJob> jobs = make_jobs(n);
  const std::vector<ResourceVec> caps(kSlots, ResourceVec{kCpuCap, kMemCap});
  core::LpScheduleOptions options;
  options.lexmin.max_rounds = 6;  // the scheduler's runtime configuration
  std::int64_t pivots = 0;
  for (auto _ : state) {
    const core::LpSchedule schedule =
        core::solve_placement(jobs, caps, 0, options);
    benchmark::DoNotOptimize(schedule);
    pivots = schedule.pivots;
  }
  state.counters["jobs"] = n;
  state.counters["pivots"] = static_cast<double>(pivots);
}

BENCHMARK(BM_LpSchedulerLatency)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Arg(60)
    ->Arg(80)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

// Warm-vs-cold re-plan sequence: the scheduler's steady state is a run of
// re-plans over the same job set whose remaining demands shrink as work
// completes — identical LP shape, different data. The warm series threads
// the previous solve's basis through a PlacementWarmCache (and bases
// round-to-round inside each lexmin); the cold series disables warm
// starting entirely, paying a full two-phase solve per round. Each
// iteration runs the whole kReplanSteps-step sequence; the pivot counters
// expose the warm/cold ratio directly.
constexpr int kReplanSteps = 6;

std::vector<core::LpJob> jobs_at_step(const std::vector<core::LpJob>& jobs,
                                      int step) {
  std::vector<core::LpJob> out = jobs;
  const double scale = 1.0 - 0.07 * step;
  for (core::LpJob& job : out) job.demand = workload::scale(job.demand, scale);
  return out;
}

void run_replan_sequence(benchmark::State& state, bool warm,
                         lp::SimplexEngine engine) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<core::LpJob> jobs = make_jobs(n);
  const std::vector<ResourceVec> caps(kSlots, ResourceVec{kCpuCap, kMemCap});
  core::LpScheduleOptions options;
  options.lexmin.max_rounds = 6;
  options.lexmin.warm_start = warm;
  options.lexmin.lp_options.engine = engine;
  std::int64_t pivots = 0;
  for (auto _ : state) {
    core::PlacementWarmCache cache;
    options.warm_cache = warm ? &cache : nullptr;
    pivots = 0;
    for (int step = 0; step < kReplanSteps; ++step) {
      const core::LpSchedule schedule =
          core::solve_placement(jobs_at_step(jobs, step), caps, 0, options);
      benchmark::DoNotOptimize(schedule);
      pivots += schedule.pivots;
    }
  }
  state.counters["jobs"] = n;
  state.counters["pivots"] = static_cast<double>(pivots);
}

void BM_LpReplanSequenceWarm(benchmark::State& state) {
  run_replan_sequence(state, /*warm=*/true, lp::SimplexEngine::kSparseLu);
}

void BM_LpReplanSequenceCold(benchmark::State& state) {
  run_replan_sequence(state, /*warm=*/false, lp::SimplexEngine::kSparseLu);
}

// Dense-inverse columns of the same sequences: the retained reference
// engine, for direct sparse-vs-dense comparison at equal pivot sequences'
// cost model (see also bench_lp_sparse for the committed JSON numbers).
void BM_LpReplanSequenceWarmDense(benchmark::State& state) {
  run_replan_sequence(state, /*warm=*/true, lp::SimplexEngine::kDenseInverse);
}

void BM_LpReplanSequenceColdDense(benchmark::State& state) {
  run_replan_sequence(state, /*warm=*/false,
                      lp::SimplexEngine::kDenseInverse);
}

BENCHMARK(BM_LpReplanSequenceWarm)
    ->Arg(10)
    ->Arg(40)
    ->Arg(80)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_LpReplanSequenceCold)
    ->Arg(10)
    ->Arg(40)
    ->Arg(80)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_LpReplanSequenceWarmDense)
    ->Arg(10)
    ->Arg(40)
    ->Arg(80)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_LpReplanSequenceColdDense)
    ->Arg(10)
    ->Arg(40)
    ->Arg(80)
    ->Unit(benchmark::kMillisecond);

// Companion series: full lexicographic refinement (every level fixed), the
// quality-over-speed configuration used by the ablation bench.
void BM_LpSchedulerLatencyFullLex(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<core::LpJob> jobs = make_jobs(n);
  const std::vector<ResourceVec> caps(kSlots, ResourceVec{kCpuCap, kMemCap});
  core::LpScheduleOptions options;
  options.lexmin.max_rounds = 1024;
  for (auto _ : state) {
    const core::LpSchedule schedule =
        core::solve_placement(jobs, caps, 0, options);
    benchmark::DoNotOptimize(schedule);
  }
  state.counters["jobs"] = n;
}

BENCHMARK(BM_LpSchedulerLatencyFullLex)
    ->Arg(10)
    ->Arg(40)
    ->Arg(80)
    ->Unit(benchmark::kMillisecond);

// Companion series: the max-flow fast path for the FIRST lexmin level only
// (feasibility + peak load). Orders of magnitude faster than the LP and
// the natural admission-control primitive; it does not refine the full
// lexicographic profile.
void BM_FlowPlacementLatency(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<core::LpJob> jobs = make_jobs(n);
  const std::vector<ResourceVec> caps(kSlots, ResourceVec{kCpuCap, kMemCap});
  for (auto _ : state) {
    const core::FlowPlacementResult result =
        core::solve_flow_placement(jobs, caps, 0);
    benchmark::DoNotOptimize(result);
  }
  state.counters["jobs"] = n;
}

BENCHMARK(BM_FlowPlacementLatency)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Arg(60)
    ->Arg(80)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

// Companion series: scaling with the horizon length T at a fixed job
// count (the paper fixes T=100; re-planning horizons vary in practice and
// load-row count drives the basis size).
void BM_LpSchedulerLatencyBySlots(benchmark::State& state) {
  const int slots = static_cast<int>(state.range(0));
  std::vector<core::LpJob> jobs = make_jobs(40);
  for (core::LpJob& job : jobs) {
    // Stretch windows proportionally so the instances stay comparable.
    job.release_slot = job.release_slot * slots / kSlots;
    job.deadline_slot =
        std::min(slots - 1, std::max(job.release_slot + 5,
                                     job.deadline_slot * slots / kSlots));
  }
  const std::vector<ResourceVec> caps(static_cast<std::size_t>(slots),
                                      ResourceVec{kCpuCap, kMemCap});
  core::LpScheduleOptions options;
  options.lexmin.max_rounds = 6;
  for (auto _ : state) {
    const core::LpSchedule schedule =
        core::solve_placement(jobs, caps, 0, options);
    benchmark::DoNotOptimize(schedule);
  }
  state.counters["slots"] = slots;
}

BENCHMARK(BM_LpSchedulerLatencyBySlots)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN() equivalent that also accepts --trace-out: the flag is
// extracted before benchmark::Initialize, which rejects unknown arguments.
int main(int argc, char** argv) {
  if (!flowtime::bench::init_trace_out(&argc, argv)) return 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  flowtime::bench::finish_trace_out();
  return 0;
}
