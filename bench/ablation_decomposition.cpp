// Ablation — the design choices DESIGN.md calls out.
//
// Part 1 (paper §IV-B / Fig. 3): resource-demand-aware deadline
// decomposition vs the traditional critical-path split. On a fork-join
// workflow with n-1 identical parallel middle jobs, critical-path
// decomposition gives the middle node set 1/3 of the deadline while the
// demand-aware split gives it (n-1)/(n+1); under a resource-limited cluster
// only the latter leaves the middle level enough time for its task waves.
// We print the Fig. 3 windows and then measure end-to-end misses under
// FlowTime configured with each decomposition mode.
//
// Part 2: lexicographic refinement depth. The first lexmin round already
// fixes the peak; further rounds flatten the rest of the profile. We report
// peak and mean normalized load and solve cost per round budget.
#include <cstdio>

#include "bench_trace.h"

#include "core/decomposition.h"
#include "core/lp_formulation.h"
#include "dag/generators.h"
#include "sched/experiment.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/trace_gen.h"

namespace {

using namespace flowtime;
using workload::ResourceVec;

workload::JobSpec uniform_job(int tasks, double runtime) {
  workload::JobSpec job;
  job.name = "j";
  job.num_tasks = tasks;
  job.task.runtime_s = runtime;
  job.task.demand = ResourceVec{1.0, 2.0};
  return job;
}

// Fig. 3's graph sized so the middle level cannot fit in 1/3 of the
// deadline on the bench cluster.
workload::Scenario fork_join_scenario(int middle, double deadline) {
  workload::Scenario scenario;
  workload::Workflow w;
  w.id = 0;
  w.name = "fig3";
  w.start_s = 0.0;
  w.deadline_s = deadline;
  w.dag = dag::make_fork_join(middle);
  w.jobs.assign(static_cast<std::size_t>(middle + 2), uniform_job(40, 60.0));
  scenario.workflows.push_back(std::move(w));
  return scenario;
}

void part1_decomposition_mode() {
  std::printf("--- Part 1: demand-aware vs critical-path decomposition ---\n");

  // The Fig. 3 window illustration.
  const int middle = 9;
  workload::Scenario scenario = fork_join_scenario(middle, 3300.0);
  for (const auto mode : {core::DecompositionMode::kResourceDemand,
                          core::DecompositionMode::kCriticalPath}) {
    core::DecompositionConfig dconfig;
    dconfig.cluster.capacity = ResourceVec{120.0, 256.0};
    dconfig.mode = mode;
    const core::DeadlineDecomposer decomposer(dconfig);
    const auto result = decomposer.decompose(scenario.workflows[0]);
    if (!result) continue;
    std::printf(
        "%s: level windows = [%.0f, %.0f, %.0f] s  (middle share %.2f; "
        "paper: demand-aware -> (n-1)/(n+1) = %.2f, critical-path -> 1/3)\n",
        mode == core::DecompositionMode::kResourceDemand ? "demand-aware "
                                                         : "critical-path",
        result.level_duration_s[0], result.level_duration_s[1],
        result.level_duration_s[2],
        result.level_duration_s[1] / 3300.0,
        static_cast<double>(middle) / (middle + 2));
  }

  // End-to-end: fork-join-heavy workload on a narrow cluster, both modes.
  util::Table table(
      {"decomposition", "jobs_missed", "workflows_missed", "adhoc_mean_s"});
  for (const auto mode : {core::DecompositionMode::kResourceDemand,
                          core::DecompositionMode::kCriticalPath}) {
    sched::ExperimentConfig config;
    config.sim.cluster.capacity = ResourceVec{120.0, 256.0};
    config.sim.max_horizon_s = 8.0 * 3600.0;
    config.flowtime.cluster.capacity = config.sim.cluster.capacity;
    config.flowtime.cluster.slot_seconds = config.sim.cluster.slot_seconds;
    config.flowtime.decomposition_mode = mode;
    config.schedulers = {"FlowTime"};

    workload::Scenario end_to_end;
    util::Rng rng(5);
    for (int i = 0; i < 3; ++i) {
      workload::Workflow w;
      w.id = i;
      w.name = "fj" + std::to_string(i);
      w.start_s = i * 200.0;
      const int width = 8 + 2 * i;
      w.dag = dag::make_fork_join(width);
      w.jobs.assign(static_cast<std::size_t>(width + 2),
                    uniform_job(static_cast<int>(rng.uniform_int(20, 50)),
                                rng.uniform_real(40.0, 80.0)));
      // Deadline: 2.6x the minimum makespan — meetable, but only if the
      // wide middle level receives its demand-proportional share.
      w.deadline_s =
          w.start_s + 2.6 * w.min_makespan_s(config.sim.cluster.capacity);
      end_to_end.workflows.push_back(std::move(w));
    }
    const auto outcomes = sched::run_comparison(end_to_end, config);
    const auto& outcome = outcomes.front();
    table.begin_row()
        .add(std::string(mode == core::DecompositionMode::kResourceDemand
                             ? "demand-aware"
                             : "critical-path"))
        .add(static_cast<std::int64_t>(outcome.deadlines.jobs_missed))
        .add(static_cast<std::int64_t>(outcome.deadlines.workflows_missed))
        .add(outcome.adhoc.mean_turnaround_s, 1);
  }
  std::printf("\n%s\n", table.to_string().c_str());
}

void part2_lexmin_depth() {
  std::printf("--- Part 2: lexicographic refinement depth ---\n");
  util::Rng rng(3);
  std::vector<core::LpJob> jobs;
  const int slots = 120;
  for (int i = 0; i < 40; ++i) {
    core::LpJob job;
    job.uid = i;
    job.release_slot = static_cast<int>(rng.uniform_int(0, slots / 2));
    job.deadline_slot =
        job.release_slot + static_cast<int>(rng.uniform_int(15, slots / 2));
    job.deadline_slot = std::min(job.deadline_slot, slots - 1);
    const int tasks = static_cast<int>(rng.uniform_int(20, 100));
    job.demand = ResourceVec{tasks * 60.0, tasks * 150.0};
    job.width = ResourceVec{tasks * 10.0, tasks * 25.0};
    jobs.push_back(job);
  }
  const std::vector<ResourceVec> caps(slots, ResourceVec{5000.0, 10240.0});

  util::Table table({"max_rounds", "rounds_used", "peak_load", "mean_load",
                     "load_stddev", "pivots"});
  for (const int rounds : {1, 2, 4, 8, 1024}) {
    core::LpScheduleOptions options;
    options.lexmin.max_rounds = rounds;
    const core::LpSchedule schedule =
        core::solve_placement(jobs, caps, 0, options);
    if (!schedule.ok()) continue;
    std::vector<double> loads;
    for (const auto& slot_load : schedule.normalized_load) {
      for (int r = 0; r < workload::kNumResources; ++r) {
        loads.push_back(slot_load[r]);
      }
    }
    table.begin_row()
        .add(static_cast<std::int64_t>(rounds))
        .add(static_cast<std::int64_t>(schedule.lexmin_rounds))
        .add(schedule.max_normalized_load, 4)
        .add(util::mean(loads), 4)
        .add(util::stddev(loads), 4)
        .add(schedule.pivots);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected: the peak is fixed after round 1; deeper refinement lowers "
      "the load variance (flatter profile => better ad-hoc leftovers) at "
      "growing pivot cost.\n");
}

void part3_resource_coupling() {
  std::printf("--- Part 3: decoupled (paper) vs resource-coupled LP ---\n");
  // The paper's x_it^r variables let CPU and memory follow different time
  // profiles; the coupled variant ties them to one task-time variable,
  // which containers need. Measure the flatness cost and solver effort.
  util::Rng rng(11);
  std::vector<core::LpJob> jobs;
  const int slots = 80;
  for (int i = 0; i < 30; ++i) {
    const int release = static_cast<int>(rng.uniform_int(0, slots / 2));
    const int deadline =
        std::min(slots - 1,
                 release + static_cast<int>(rng.uniform_int(10, slots / 2)));
    const int tasks = static_cast<int>(rng.uniform_int(10, 80));
    const double runtime =
        rng.uniform_real(20.0, 0.9 * (deadline - release + 1) * 10.0);
    const double mem = rng.uniform_real(1.5, 4.0);
    core::LpJob job;
    job.uid = i;
    job.release_slot = release;
    job.deadline_slot = deadline;
    job.demand = ResourceVec{tasks * runtime, tasks * runtime * mem};
    job.width = ResourceVec{tasks * 10.0, tasks * mem * 10.0};
    jobs.push_back(job);
  }
  const std::vector<ResourceVec> caps(slots, ResourceVec{5000.0, 10240.0});

  util::Table table({"formulation", "peak_load", "load_stddev", "pivots"});
  for (const bool coupled : {false, true}) {
    core::LpScheduleOptions options;
    options.coupled_resources = coupled;
    const core::LpSchedule s = core::solve_placement(jobs, caps, 0, options);
    if (!s.ok()) continue;
    std::vector<double> loads;
    for (const auto& slot_load : s.normalized_load) {
      for (int r = 0; r < workload::kNumResources; ++r) {
        loads.push_back(slot_load[r]);
      }
    }
    table.begin_row()
        .add(std::string(coupled ? "coupled (container-ready)"
                                 : "decoupled (paper)"))
        .add(s.max_normalized_load, 4)
        .add(util::stddev(loads), 4)
        .add(s.pivots);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected: nearly identical peaks for gang jobs (demands proportional "
      "to widths), with the coupled variant producing proportional task "
      "bundles per slot.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (!flowtime::bench::init_trace_out(&argc, argv)) return 1;
  std::printf("=== Ablation: decomposition mode and lexmin depth ===\n\n");
  part1_decomposition_mode();
  std::printf("\n");
  part2_lexmin_depth();
  std::printf("\n");
  part3_resource_coupling();
  flowtime::bench::finish_trace_out();
  return 0;
}
