// Smoke test for the fault-injection runtime (DESIGN.md "Fault injection
// & recovery").
//
// Runs one chaos scenario — a machine outage, a declared task failure and
// background estimate noise under a fixed seed — TWICE with JSONL tracing
// enabled, then checks the recovery contract end to end:
//   * the run completes with zero contract violations despite the faults,
//   * the capacity drop surfaces as a re-plan tagged capacity_change and
//     the task failure as one tagged task_failure,
//   * the failed task is retried successfully (task_retry recorded),
//   * every "fault" span pairs an injection with a recovery end,
//   * the two traces are byte-identical once the wall-clock-derived fields
//     (wall_s, stage latencies, solver phase timers) are stripped — the
//     documented determinism guarantee.
//
// Flags: --trace-out PATH (default chaos_smoke.jsonl in the CWD; the
// second run writes PATH.run2).
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/flowtime_scheduler.h"
#include "obs/testing.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "workload/scenario_io.h"

using namespace flowtime;

namespace {

// One deadline workflow with enough slack that FlowTime defers work (so the
// mid-run faults hit a live job), an ad-hoc probe, and three fault families
// under one seed: machine churn, a declared full task failure, and
// lognormal estimate noise.
constexpr const char* kScenario = R"(
cluster cores=100 mem_gb=256 slot_seconds=10

workflow id=0 name=wf start=0 deadline=600
job node=0 name=crunch tasks=40 runtime=100 cores=1 mem=2
end

adhoc id=0 arrival=30 tasks=4 runtime=30 cores=1 mem=1

fault seed=7
fault_machine down=20 up=40 cores=40 mem_gb=96
fault_task workflow=0 node=0 slot=15 lose=1 backoff=2
fault_noise model=lognormal sigma=0.1 bias=1
)";

int fail(const char* what) {
  std::fprintf(stderr, "chaos_smoke: FAIL: %s\n", what);
  return 1;
}

// One full traced run into `path`. Resets the global obs state first so
// both runs start from span id 1 and zeroed counters.
sim::SimResult run_traced(const std::string& path, bool* trace_ok,
                          core::ReplanCause* causes_seen) {
  obs::testing::ScopedRegistryReset::reset();
  *trace_ok = obs::open_trace_file(path);

  workload::ParseError error;
  const auto parsed = workload::parse_scenario(kScenario, &error);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "chaos_smoke: bad scenario, line %d: %s\n",
                 error.line, error.message.c_str());
    *trace_ok = false;
    return {};
  }

  sim::SimConfig sim_config;
  if (parsed->cluster) sim_config.cluster = *parsed->cluster;
  sim_config.fault_plan = parsed->fault_plan;
  core::FlowTimeConfig ft_config;
  ft_config.cluster = sim_config.cluster;

  sim::Simulator simulator(sim_config);
  core::FlowTimeScheduler scheduler(ft_config);
  const sim::SimResult result = simulator.run(parsed->scenario, scheduler);
  *causes_seen = core::ReplanCause::kNone;
  for (const core::ReplanRecord& record : scheduler.replan_log()) {
    *causes_seen |= record.causes;
  }
  obs::clear_trace_sink();  // flush before re-reading
  return result;
}

// Reads a trace back as parsed records with every wall-clock-derived field
// (the legitimately nondeterministic ones: wall_s, the causal-chain stage
// latencies, the solve_profile phase timers) removed. Everything else —
// pivot counts, levels, causes, ids — must match exactly between seeded
// runs.
bool load_stripped(const std::string& path,
                   std::vector<std::map<std::string, std::string>>* out) {
  static const char* kWallDerived[] = {
      "wall_s",         "queue_wait_ms",  "coalesce_ms",
      "solve_ms",       "adoption_lag_ms", "total_ms",
      "pricing_s",      "ratio_test_s",   "basis_update_s",
      "refactor_s"};
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    std::map<std::string, std::string> record;
    if (!obs::parse_flat_json(line, &record)) return false;
    for (const char* key : kWallDerived) record.erase(key);
    out->push_back(std::move(record));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string path = flags.get_string("trace-out", "chaos_smoke.jsonl");
  const std::string path2 = path + ".run2";

  bool trace_ok = false;
  core::ReplanCause causes = core::ReplanCause::kNone;
  const sim::SimResult result = run_traced(path, &trace_ok, &causes);
  if (!trace_ok) return fail("cannot open trace file");

  // --- recovery invariants on the run itself ---------------------------
  if (!result.all_completed) return fail("chaos run did not complete");
  if (result.capacity_violations != 0) return fail("capacity violated");
  if (result.width_violations != 0) return fail("width violated");
  if (result.not_ready_allocations != 0) {
    return fail("allocation granted to a non-runnable (backoff) job");
  }
  if (result.faults.machine_downs != 1 || result.faults.machine_ups != 1) {
    return fail("machine outage did not fire exactly once");
  }
  if (result.faults.capacity_changes != 2) {
    return fail("expected one capacity drop and one restore");
  }
  if (result.faults.task_failures < 1) return fail("task fault never fired");
  if (result.faults.task_retries < 1) {
    return fail("failed task was never retried");
  }
  if (!core::has_cause(causes, core::ReplanCause::kCapacityChange)) {
    return fail("no re-plan tagged capacity_change");
  }
  if (!core::has_cause(causes, core::ReplanCause::kTaskFailure)) {
    return fail("no re-plan tagged task_failure");
  }

  // --- fault spans pair injection with recovery ------------------------
  std::vector<std::map<std::string, std::string>> events;
  if (!load_stripped(path, &events)) return fail("trace unreadable");
  std::map<std::string, int> fault_begins;
  std::map<std::string, int> ends;
  int retries = 0;
  for (auto& record : events) {
    const std::string& type = record["type"];
    if (type == "span_begin" && record["kind"] == "fault") {
      ++fault_begins[record["span"]];
    } else if (type == "span_end") {
      ++ends[record["span"]];
    } else if (type == "task_retry") {
      ++retries;
    }
  }
  if (fault_begins.empty()) return fail("no fault spans in trace");
  for (const auto& [span, begins] : fault_begins) {
    if (begins != 1 || ends[span] != 1) {
      return fail("fault span not paired begin/end exactly once");
    }
  }
  if (retries < 1) return fail("no task_retry event in trace");

  // --- fixed seed => identical traces ----------------------------------
  bool trace_ok2 = false;
  core::ReplanCause causes2 = core::ReplanCause::kNone;
  const sim::SimResult again = run_traced(path2, &trace_ok2, &causes2);
  if (!trace_ok2) return fail("cannot open second trace file");
  if (!again.all_completed) return fail("second run did not complete");
  std::vector<std::map<std::string, std::string>> events2;
  if (!load_stripped(path2, &events2)) return fail("second trace unreadable");
  if (events.size() != events2.size()) {
    std::fprintf(stderr, "chaos_smoke: run1 %zu events, run2 %zu events\n",
                 events.size(), events2.size());
    return fail("traces differ in length under a fixed seed");
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i] != events2[i]) {
      std::fprintf(stderr, "chaos_smoke: first divergence at event %zu\n", i);
      return fail("traces differ under a fixed seed (beyond wall_s)");
    }
  }

  std::printf(
      "chaos_smoke: OK (%zu trace events; outage 1, capacity changes 2, "
      "task failures %d, retries %d, stragglers %d, noised jobs %d; two "
      "runs identical modulo wall_s)\n",
      events.size(), result.faults.task_failures, result.faults.task_retries,
      result.faults.stragglers, result.faults.noised_jobs);
  return 0;
}
