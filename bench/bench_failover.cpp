// Federation availability benchmark (DESIGN.md §14).
//
// Runs one production-shaped scenario (workload/trace_gen.h) against the
// FederatedScheduler at several cell counts, killing 0..K cells mid-run
// with seeded fault_cell crashes, and reports what cell-level fault
// tolerance costs: the deadline-miss rate next to the same series with no
// faults (the miss-rate delta is the availability price of losing a
// shard), failover/quarantine/recovery counts, mean recovery latency and
// per-run availability (fraction of cell-slots outside quarantine) derived
// from the coordinator's outage log.
//
// Output is one JSON document (default BENCH_failover.json, committed to
// the repo so the numbers travel with the code). Regenerate with:
//   ./build/bench/bench_failover --out BENCH_failover.json
// The committed file is schema-checked by the bench_failover_schema ctest
// target (--check mode); bench_failover_smoke runs a small instance
// end-to-end. Both carry the "failover" label.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/federated_scheduler.h"
#include "fault/plan.h"
#include "sched/experiment.h"
#include "sim/metrics.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "util/strings.h"
#include "workload/trace_gen.h"

namespace {

using namespace flowtime;
using workload::ResourceVec;

struct FailoverRow {
  int cells = 1;
  int cells_killed = 0;
  int cell_failures = 0;
  int failovers = 0;
  int quarantines = 0;
  int cell_recoveries = 0;
  double mean_recovery_slots = 0.0;
  int downtime_cell_slots = 0;
  double availability = 1.0;
  int deadline_jobs_missed = 0;
  double deadline_miss_rate = 0.0;
  double miss_rate_delta_vs_no_fault = 0.0;
  double adhoc_mean_turnaround_s = 0.0;
  bool all_completed = false;
};

/// Staggered mid-run crashes: cell k (k = 1..killed) goes down at slot
/// 60 + 60*(k-1) and recovers 120 slots later. All deterministic — the
/// flap jitter stream is unused by plain crash windows.
fault::FaultPlan kill_plan(int killed, std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.seed = seed;
  for (int k = 1; k <= killed; ++k) {
    fault::CellFault fault;
    fault.cell = k;
    fault.mode = fault::CellFaultMode::kCrash;
    fault.slot = 60 + 60 * (k - 1);
    fault.until_slot = fault.slot + 120;
    plan.cell_faults.push_back(fault);
  }
  return plan;
}

FailoverRow run_config(int cells, int killed,
                       const workload::Scenario& scenario,
                       const sched::ExperimentConfig& experiment,
                       const sim::JobDeadlines& deadlines, int deadline_jobs,
                       std::uint64_t seed) {
  sim::SimConfig sim_config = experiment.sim;
  sim_config.fault_plan = kill_plan(std::min(killed, cells - 1), seed);

  cluster::FederatedConfig federated;
  federated.flowtime = experiment.flowtime;
  federated.partition.cells = cells;
  federated.parallel_solve = cells > 1;  // one pool thread per cell
  cluster::FederatedScheduler fed(federated);
  const sim::SimResult result =
      sim::Simulator(sim_config).run(scenario, fed);

  FailoverRow row;
  row.cells = cells;
  row.cells_killed = std::min(killed, cells - 1);
  row.cell_failures = fed.cell_failures();
  row.failovers = fed.failovers();
  row.quarantines = fed.quarantines();
  row.cell_recoveries = fed.cell_recoveries();
  const int total_slots = static_cast<int>(result.allocated_per_slot.size());
  int closed = 0;
  double recovery_sum = 0.0;
  for (const auto& outage : fed.outage_log()) {
    const int end =
        outage.recovered_slot >= 0 ? outage.recovered_slot : total_slots;
    row.downtime_cell_slots += std::max(0, end - outage.failed_slot);
    if (outage.recovered_slot >= 0) {
      recovery_sum += outage.recovered_slot - outage.failed_slot;
      ++closed;
    }
  }
  if (closed > 0) row.mean_recovery_slots = recovery_sum / closed;
  if (total_slots > 0 && cells > 0) {
    row.availability = 1.0 - static_cast<double>(row.downtime_cell_slots) /
                                 (static_cast<double>(cells) * total_slots);
  }
  const sim::DeadlineReport stats =
      sim::evaluate_deadlines(result, scenario.workflows, deadlines);
  row.deadline_jobs_missed = stats.jobs_missed;
  row.deadline_miss_rate =
      deadline_jobs > 0 ? static_cast<double>(stats.jobs_missed) /
                              static_cast<double>(deadline_jobs)
                        : 0.0;
  row.adhoc_mean_turnaround_s = sim::evaluate_adhoc(result).mean_turnaround_s;
  row.all_completed = result.all_completed;
  return row;
}

std::string render_json(const std::vector<FailoverRow>& rows,
                        const workload::ClusterSpec& cluster, int workflows,
                        int deadline_jobs, int adhoc_jobs, double horizon_s,
                        std::uint64_t seed) {
  std::string out = "{\n";
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "  \"benchmark\": \"failover\",\n"
                "  \"cores\": %.0f,\n"
                "  \"mem_gb\": %.0f,\n"
                "  \"slot_seconds\": %.0f,\n"
                "  \"workflows\": %d,\n"
                "  \"deadline_jobs\": %d,\n"
                "  \"adhoc_jobs\": %d,\n"
                "  \"horizon_s\": %.0f,\n"
                "  \"seed\": %llu,\n"
                "  \"rows\": [\n",
                cluster.capacity[workload::kCpu],
                cluster.capacity[workload::kMemory], cluster.slot_seconds,
                workflows, deadline_jobs, adhoc_jobs, horizon_s,
                static_cast<unsigned long long>(seed));
  out += buf;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const FailoverRow& r = rows[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\n"
        "      \"cells\": %d,\n"
        "      \"cells_killed\": %d,\n"
        "      \"cell_failures\": %d,\n"
        "      \"failovers\": %d,\n"
        "      \"quarantines\": %d,\n"
        "      \"cell_recoveries\": %d,\n"
        "      \"mean_recovery_slots\": %.2f,\n"
        "      \"downtime_cell_slots\": %d,\n"
        "      \"availability\": %.6f,\n"
        "      \"deadline_jobs_missed\": %d,\n"
        "      \"deadline_miss_rate\": %.6f,\n"
        "      \"miss_rate_delta_vs_no_fault\": %.6f,\n"
        "      \"adhoc_mean_turnaround_s\": %.3f,\n"
        "      \"all_completed\": %s\n"
        "    }%s\n",
        r.cells, r.cells_killed, r.cell_failures, r.failovers, r.quarantines,
        r.cell_recoveries, r.mean_recovery_slots, r.downtime_cell_slots,
        r.availability, r.deadline_jobs_missed, r.deadline_miss_rate,
        r.miss_rate_delta_vs_no_fault, r.adhoc_mean_turnaround_s,
        r.all_completed ? "true" : "false", i + 1 < rows.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

// Schema check over the committed JSON: every required key must appear
// (value syntax is snprintf-controlled, so key presence is the contract),
// and the committed file must cover the 4/8/16-cell series with and
// without a kill.
int check_schema(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();
  const char* required[] = {
      "\"benchmark\": \"failover\"",
      "\"cores\":",
      "\"mem_gb\":",
      "\"slot_seconds\":",
      "\"workflows\":",
      "\"deadline_jobs\":",
      "\"adhoc_jobs\":",
      "\"horizon_s\":",
      "\"seed\":",
      "\"rows\":",
      "\"cells\": 4",
      "\"cells\": 8",
      "\"cells\": 16",
      "\"cells_killed\": 0",
      "\"cells_killed\": 1",
      "\"cell_failures\":",
      "\"failovers\":",
      "\"quarantines\":",
      "\"cell_recoveries\":",
      "\"mean_recovery_slots\":",
      "\"downtime_cell_slots\":",
      "\"availability\":",
      "\"deadline_jobs_missed\":",
      "\"deadline_miss_rate\":",
      "\"miss_rate_delta_vs_no_fault\":",
      "\"adhoc_mean_turnaround_s\":",
      "\"all_completed\":"};
  int missing = 0;
  for (const char* key : required) {
    if (text.find(key) == std::string::npos) {
      std::fprintf(stderr, "schema: missing %s\n", key);
      ++missing;
    }
  }
  if (missing > 0) return 1;
  std::printf("%s: schema ok (%zu bytes)\n", path.c_str(), text.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string check_path = flags.get_string("check", "");
  const std::string out_path = flags.get_string("out", "BENCH_failover.json");
  const std::string cells_list = flags.get_string("cells", "4,8,16");
  const std::string killed_list = flags.get_string("killed", "0,1");
  const int workflows = static_cast<int>(flags.get_double("workflows", 48.0));
  const double horizon_s = flags.get_double("horizon", 2.0 * 3600.0);
  const double cores = flags.get_double("cores", 10000.0);
  const double mem_gb = flags.get_double("mem-gb", 20480.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_double("seed", 42.0));
  if (!check_path.empty()) return check_schema(check_path);

  workload::ProductionScenarioConfig production;
  production.num_workflows = workflows;
  production.horizon_s = horizon_s;
  production.diurnal_period_s = horizon_s;  // one full load wave per run
  production.workflow.cluster.capacity = ResourceVec{cores, mem_gb};
  production.adhoc.base.rate_per_s = 0.05;
  production.adhoc.base.horizon_s = horizon_s;
  const workload::Scenario scenario =
      workload::make_production_scenario(seed, production);

  int deadline_jobs = 0;
  for (const auto& w : scenario.workflows) {
    deadline_jobs += static_cast<int>(w.jobs.size());
  }

  sched::ExperimentConfig experiment;
  experiment.sim.cluster.capacity = ResourceVec{cores, mem_gb};
  experiment.sim.max_horizon_s = 4.0 * horizon_s;
  experiment.flowtime.cluster = experiment.sim.cluster;
  const sim::JobDeadlines deadlines =
      sched::milestone_deadlines(scenario, experiment);

  std::printf("failover: %d workflows (%d deadline jobs), %zu ad-hoc, "
              "%.0f cores\n",
              workflows, deadline_jobs, scenario.adhoc_jobs.size(), cores);

  std::vector<FailoverRow> rows;
  for (const std::string& cells_token : util::split(cells_list, ',')) {
    if (cells_token.empty()) continue;
    const int cells = std::max(1, std::atoi(cells_token.c_str()));
    double baseline_miss_rate = 0.0;
    bool have_baseline = false;
    for (const std::string& killed_token : util::split(killed_list, ',')) {
      if (killed_token.empty()) continue;
      const int killed = std::max(0, std::atoi(killed_token.c_str()));
      std::printf("  cells=%d killed=%d ...\n", cells, killed);
      std::fflush(stdout);
      FailoverRow row = run_config(cells, killed, scenario, experiment,
                                   deadlines, deadline_jobs, seed);
      if (row.cells_killed == 0) {
        baseline_miss_rate = row.deadline_miss_rate;
        have_baseline = true;
      } else if (have_baseline) {
        row.miss_rate_delta_vs_no_fault =
            row.deadline_miss_rate - baseline_miss_rate;
      }
      std::printf(
          "  cells=%d killed=%d: failovers %d, quarantines %d, recoveries "
          "%d, mean recovery %.1f slots, availability %.4f, miss rate %.4f "
          "(delta %+.4f)\n",
          row.cells, row.cells_killed, row.failovers, row.quarantines,
          row.cell_recoveries, row.mean_recovery_slots, row.availability,
          row.deadline_miss_rate, row.miss_rate_delta_vs_no_fault);
      rows.push_back(row);
    }
  }

  const std::string json = render_json(
      rows, experiment.sim.cluster, workflows, deadline_jobs,
      static_cast<int>(scenario.adhoc_jobs.size()), horizon_s, seed);
  if (!sim::write_file(out_path, json)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("%s", json.c_str());
  std::printf("Written to %s\n", out_path.c_str());
  return 0;
}
