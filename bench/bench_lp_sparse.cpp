// Sparse-vs-dense simplex engine benchmark (ROADMAP item 1 / DESIGN.md §5).
//
// Runs the scheduler's steady-state workload — a warm-started re-plan
// sequence over one Fig.7-style job set whose demands shrink step to step —
// once per basis representation (SimplexEngine::kSparseLu vs
// kDenseInverse), plus one row for the TU/max-flow fast path answering the
// first lexmin level without simplex. Per row it reports the pivot count
// and the phase-level wall clock from lp/solve_profile (pricing, ratio
// test, basis update, refactorization), whose sum is the pivot-loop wall
// time the sparse rewrite targets.
//
// Output is one JSON document (default BENCH_lp_sparse.json, committed to
// the repo so the numbers travel with the code). Regenerate with:
//   ./build/bench/bench_lp_sparse --out BENCH_lp_sparse.json
// The committed file is schema-checked by the bench_lp_sparse_schema ctest
// target (--check mode); bench_lp_sparse_smoke regenerates a small instance.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/flow_placement.h"
#include "core/lp_formulation.h"
#include "lp/simplex.h"
#include "lp/solve_profile.h"
#include "obs/metrics.h"
#include "sim/report.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

using namespace flowtime;
using workload::ResourceVec;

struct EngineRow {
  std::string engine;
  std::int64_t pivots = 0;
  std::int64_t refactorizations = 0;
  double pricing_s = 0.0;
  double ratio_test_s = 0.0;
  double basis_update_s = 0.0;
  double refactor_s = 0.0;
  double pivot_wall_s = 0.0;  // sum of the four phases
  double total_wall_s = 0.0;  // whole sequence, build + extract included
  double max_normalized_load = 0.0;
  bool flow_fast_path = false;
};

std::vector<core::LpJob> make_jobs(int n, int slots) {
  util::Rng rng(static_cast<std::uint64_t>(n));
  std::vector<core::LpJob> jobs;
  jobs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    core::LpJob job;
    job.uid = i;
    job.release_slot = static_cast<int>(rng.uniform_int(0, slots / 2));
    job.deadline_slot =
        job.release_slot + static_cast<int>(rng.uniform_int(10, slots / 2));
    job.deadline_slot = std::min(job.deadline_slot, slots - 1);
    const int tasks = static_cast<int>(rng.uniform_int(20, 120));
    const double runtime = rng.uniform_real(30.0, 90.0);
    job.demand = ResourceVec{tasks * runtime, tasks * runtime * 2.5};
    job.width = ResourceVec{tasks * 10.0, tasks * 25.0};
    jobs.push_back(job);
  }
  return jobs;
}

std::vector<core::LpJob> jobs_at_step(const std::vector<core::LpJob>& jobs,
                                      int step) {
  std::vector<core::LpJob> out = jobs;
  const double scale = 1.0 - 0.07 * step;
  for (core::LpJob& job : out) job.demand = workload::scale(job.demand, scale);
  return out;
}

EngineRow run_sequence(const std::string& label,
                       const std::vector<core::LpJob>& jobs,
                       const std::vector<ResourceVec>& caps, int steps,
                       int rounds, lp::SimplexEngine engine,
                       bool flow_fast_path) {
  EngineRow row;
  row.engine = label;
  core::LpScheduleOptions options;
  options.lexmin.max_rounds = rounds;
  options.lexmin.lp_options.engine = engine;
  options.flow_fast_path = flow_fast_path;
  core::PlacementWarmCache cache;
  options.warm_cache = &cache;
  lp::ScopedSolveProfile profile("bench_lp_sparse");
  double total_wall = 0.0;
  {
    obs::ScopedTimer timer(&total_wall);
    for (int step = 0; step < steps; ++step) {
      const core::LpSchedule schedule =
          core::solve_placement(jobs_at_step(jobs, step), caps, 0, options);
      if (!schedule.ok()) {
        std::fprintf(stderr, "error: %s solve failed at step %d\n",
                     label.c_str(), step);
        std::exit(1);
      }
      row.pivots += schedule.pivots;
      row.max_normalized_load =
          std::max(row.max_normalized_load, schedule.max_normalized_load);
      row.flow_fast_path = row.flow_fast_path || schedule.flow_fast_path;
    }
  }
  const lp::SolveProfile& p = profile.profile();
  row.refactorizations = p.refactorizations;
  row.pricing_s = p.pricing_s;
  row.ratio_test_s = p.ratio_test_s;
  row.basis_update_s = p.basis_update_s;
  row.refactor_s = p.refactor_s;
  row.pivot_wall_s = p.phase_total_s();
  row.total_wall_s = total_wall;
  return row;
}

std::string render_json(const std::vector<EngineRow>& rows, int jobs,
                        int slots, int steps, int rounds) {
  std::string out = "{\n";
  char buf[768];
  std::snprintf(buf, sizeof(buf),
                "  \"benchmark\": \"lp_sparse\",\n"
                "  \"jobs\": %d,\n"
                "  \"slots\": %d,\n"
                "  \"replan_steps\": %d,\n"
                "  \"lexmin_rounds\": %d,\n"
                "  \"engines\": [\n",
                jobs, slots, steps, rounds);
  out += buf;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const EngineRow& r = rows[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\n"
        "      \"engine\": \"%s\",\n"
        "      \"pivots\": %lld,\n"
        "      \"refactorizations\": %lld,\n"
        "      \"pricing_s\": %.6f,\n"
        "      \"ratio_test_s\": %.6f,\n"
        "      \"basis_update_s\": %.6f,\n"
        "      \"refactor_s\": %.6f,\n"
        "      \"pivot_wall_s\": %.6f,\n"
        "      \"total_wall_s\": %.6f,\n"
        "      \"max_normalized_load\": %.6f,\n"
        "      \"flow_fast_path\": %s\n"
        "    }%s\n",
        r.engine.c_str(), static_cast<long long>(r.pivots),
        static_cast<long long>(r.refactorizations), r.pricing_s,
        r.ratio_test_s, r.basis_update_s, r.refactor_s, r.pivot_wall_s,
        r.total_wall_s, r.max_normalized_load,
        r.flow_fast_path ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

// Schema check over a committed JSON file: every required key must appear
// (value syntax is snprintf-controlled, so key presence is the contract),
// and both engine rows plus the fast-path row must be present.
int check_schema(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();
  const char* required[] = {
      "\"benchmark\": \"lp_sparse\"", "\"jobs\":",           "\"slots\":",
      "\"replan_steps\":",            "\"lexmin_rounds\":",  "\"engines\":",
      "\"engine\": \"sparse_lu\"",    "\"engine\": \"dense_inverse\"",
      "\"engine\": \"flow_fast_path\"", "\"pivots\":",
      "\"refactorizations\":",        "\"pricing_s\":",      "\"ratio_test_s\":",
      "\"basis_update_s\":",          "\"refactor_s\":",     "\"pivot_wall_s\":",
      "\"total_wall_s\":",            "\"max_normalized_load\":",
      "\"flow_fast_path\": true"};
  int missing = 0;
  for (const char* key : required) {
    if (text.find(key) == std::string::npos) {
      std::fprintf(stderr, "schema: missing %s\n", key);
      ++missing;
    }
  }
  if (missing > 0) return 1;
  std::printf("%s: schema ok (%zu bytes)\n", path.c_str(), text.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string check_path = flags.get_string("check", "");
  const std::string out_path = flags.get_string("out", "BENCH_lp_sparse.json");
  const int jobs_n = static_cast<int>(flags.get_double("jobs", 1000.0));
  const int slots = static_cast<int>(flags.get_double("slots", 100.0));
  const int steps = static_cast<int>(flags.get_double("steps", 3.0));
  const int rounds = static_cast<int>(flags.get_double("rounds", 3.0));
  if (!check_path.empty()) return check_schema(check_path);
  obs::set_enabled(true);  // phase timers live behind the obs switch

  // Paper-scale capacities (500 cores / 1 TB, 10 s slots) stretched so the
  // bigger job counts stay feasible at a sub-1.0 peak level.
  const double cap_scale = std::max(1.0, jobs_n / 100.0);
  const std::vector<ResourceVec> caps(
      static_cast<std::size_t>(slots),
      ResourceVec{5000.0 * cap_scale, 10240.0 * cap_scale});
  const std::vector<core::LpJob> jobs = make_jobs(jobs_n, slots);

  std::vector<EngineRow> rows;
  rows.push_back(run_sequence("sparse_lu", jobs, caps, steps, rounds,
                              lp::SimplexEngine::kSparseLu, false));
  rows.push_back(run_sequence("dense_inverse", jobs, caps, steps, rounds,
                              lp::SimplexEngine::kDenseInverse, false));
  // The fast-path row answers only the first lexmin level (max_rounds = 1):
  // zero pivots where the gate passes, at the cost of profile depth.
  rows.push_back(run_sequence("flow_fast_path", jobs, caps, steps, 1,
                              lp::SimplexEngine::kSparseLu, true));

  const std::string json = render_json(rows, jobs_n, slots, steps, rounds);
  if (!sim::write_file(out_path, json)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("%s", json.c_str());
  if (rows[1].pivot_wall_s > 0.0 && rows[0].pivot_wall_s > 0.0) {
    std::printf("pivot wall speedup (dense/sparse): %.2fx\n",
                rows[1].pivot_wall_s / rows[0].pivot_wall_s);
  }
  std::printf("Written to %s\n", out_path.c_str());
  return 0;
}
