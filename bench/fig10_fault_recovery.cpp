// Fig. 10 (extension) — deadline misses under injected faults.
//
// The paper evaluates FlowTime on a healthy cluster; this bench extends the
// robustness story (§III-A names estimation error and load churn as design
// requirements) to machine churn and task failures. Every run injects the
// same deterministic fault plan — a mid-run machine outage plus a Bernoulli
// per-slot task-failure hazard of the given intensity — and compares
// FlowTime's recovery (capacity-change + task-failure re-plans, deadline
// renegotiation) against the Morpheus and Rayon baselines under identical
// faults and milestones. Feeds the EXPERIMENTS.md fault-recovery table.
#include <cstdio>
#include <string>

#include "bench_trace.h"

#include "sched/experiment.h"
#include "util/table.h"
#include "workload/trace_gen.h"

int main(int argc, char** argv) {
  if (!flowtime::bench::init_trace_out(&argc, argv)) return 1;
  const double solver_budget_ms =
      flowtime::bench::init_solver_budget_ms(&argc, argv);
  using namespace flowtime;
  using workload::ResourceVec;

  sched::ExperimentConfig config;
  config.sim.cluster.capacity = ResourceVec{500.0, 1024.0};
  config.sim.max_horizon_s = 8.0 * 3600.0;
  config.flowtime.cluster.capacity = config.sim.cluster.capacity;
  config.flowtime.cluster.slot_seconds = config.sim.cluster.slot_seconds;
  config.flowtime.solver_budget_ms = solver_budget_ms;
  config.schedulers = {"FlowTime", "Morpheus", "Rayon"};

  workload::Fig4Config fig4;
  fig4.num_workflows = 3;
  fig4.jobs_per_workflow = 12;
  fig4.workflow_start_spread_s = 400.0;
  fig4.workflow.cluster.capacity = config.sim.cluster.capacity;
  fig4.workflow.looseness_min = 4.0;
  fig4.workflow.looseness_max = 6.0;
  fig4.adhoc.rate_per_s = 0.10;
  fig4.adhoc.horizon_s = 1200.0;
  fig4.adhoc.min_tasks = 10;
  fig4.adhoc.max_tasks = 40;
  const workload::Scenario scenario = workload::make_fig4_scenario(31, fig4);

  std::printf("=== Fig. 10 (extension): recovery under injected faults ===\n");
  std::printf(
      "Hazard h: per-slot task-failure probability (half the work lost, "
      "3-slot backoff, <=3 retries). Every run also loses a 100-core "
      "machine for 50 slots. 36 deadline jobs, shared milestones.\n\n");

  util::Table table({"hazard", "sched", "wf_missed", "job_missed", "fails",
                     "retries", "adhoc_s", "replans"});
  for (const double hazard : {0.0, 0.001, 0.002, 0.005, 0.01, 0.02}) {
    fault::FaultPlan plan;
    plan.seed = 1234;
    fault::MachineFault outage;
    outage.down_slot = 60;
    outage.up_slot = 110;
    outage.capacity = ResourceVec{100.0, 205.0};
    plan.machines.push_back(outage);
    plan.hazard.prob_per_slot = hazard;
    plan.hazard.lost_fraction = 0.5;
    plan.hazard.backoff_slots = 3;
    plan.hazard.max_retries = 3;
    config.sim.fault_plan = plan;

    const auto outcomes = sched::run_comparison(scenario, config);
    for (const auto& outcome : outcomes) {
      table.begin_row()
          .add(hazard, 3)
          .add(outcome.name)
          .add(static_cast<std::int64_t>(outcome.deadlines.workflows_missed))
          .add(static_cast<std::int64_t>(outcome.deadlines.jobs_missed))
          .add(static_cast<std::int64_t>(outcome.result.faults.task_failures))
          .add(static_cast<std::int64_t>(outcome.result.faults.task_retries))
          .add(outcome.adhoc.mean_turnaround_s, 1)
          .add(static_cast<std::int64_t>(outcome.replans));
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: the h=0 outage alone is absorbed by everyone "
      "(FlowTime via a capacity_change re-plan, the baselines by running "
      "degraded). As h grows, no scheduler misses a WORKFLOW deadline — "
      "FlowTime renegotiates windows after each failure — but per-JOB "
      "milestone slips appear for FlowTime first: it runs work "
      "just-in-time against the milestones, so a fault near a window's "
      "end has no slack left, while ASAP baselines sit far ahead of the "
      "same milestones. Ad-hoc turnaround stays essentially flat for "
      "every scheduler: retries are absorbed by re-plans (FlowTime) or "
      "spare capacity (baselines), not taken out of ad-hoc jobs.\n");
  flowtime::bench::finish_trace_out();
  return 0;
}
