// Ablation — fluid LP abstraction vs node-granular (YARN-like) execution.
//
// The paper's LP treats the cluster as one divisible pool (z_t^r <= C_t^r);
// its deployment ran on YARN, where allocations materialize as whole task
// containers on individual machines. This bench quantifies the gap: the
// same Fig. 4-style workload executed fluidly and on clusters of 25 / 50 /
// 100 identical nodes. The interesting outputs are FlowTime's deadline
// misses (does container fragmentation erode the LP's guarantees?) and the
// fraction of granted work lost to packing.
#include <cstdio>

#include "bench_trace.h"

#include "sched/experiment.h"
#include "sim/task_simulator.h"
#include "util/table.h"
#include "workload/trace_gen.h"

int main(int argc, char** argv) {
  if (!flowtime::bench::init_trace_out(&argc, argv)) return 1;
  using namespace flowtime;
  using workload::ResourceVec;

  workload::Fig4Config fig4;
  fig4.num_workflows = 3;
  fig4.jobs_per_workflow = 12;
  fig4.workflow_start_spread_s = 400.0;
  fig4.workflow.cluster.capacity = ResourceVec{500.0, 1024.0};
  fig4.workflow.looseness_min = 4.0;
  fig4.workflow.looseness_max = 6.0;
  fig4.adhoc.rate_per_s = 0.08;
  fig4.adhoc.horizon_s = 1200.0;
  const workload::Scenario scenario = workload::make_fig4_scenario(13, fig4);

  std::printf("=== Ablation: fluid pool vs node-granular execution ===\n");
  std::printf(
      "Same workload and scheduler; only the execution substrate "
      "changes.\n\n");

  util::Table table({"substrate", "jobs_missed", "adhoc_mean_s",
                     "frag_lost_cpu_pct", "completed"});
  // The last entry deliberately disables container rounding to expose the
  // failure mode: fractional LP grants quantize to zero containers.
  struct Row {
    int nodes;
    bool round;
  };
  for (const Row row : {Row{0, false}, Row{100, true}, Row{50, true},
                        Row{25, true}, Row{100, false}}) {
    const int nodes = row.nodes;
    sched::ExperimentConfig config;
    config.sim.cluster.capacity = ResourceVec{500.0, 1024.0};
    // The fractional-grant row starves and would otherwise burn the whole
    // safety horizon; 2 h is ample to demonstrate the failure.
    config.sim.max_horizon_s = row.round || nodes == 0 ? 6.0 * 3600.0
                                                       : 2.0 * 3600.0;
    config.sim.num_nodes = nodes;
    config.flowtime.cluster.capacity = config.sim.cluster.capacity;
    config.flowtime.cluster.slot_seconds = config.sim.cluster.slot_seconds;
    // A YARN port issues whole containers; without this, fractional LP
    // grants quantize to zero and starve (measured: >40% loss).
    config.flowtime.round_to_containers = row.round;
    config.schedulers = {"FlowTime"};
    const auto outcomes = sched::run_comparison(scenario, config);
    const auto& outcome = outcomes.front();

    double granted_cpu = 0.0;
    for (const auto& allocated : outcome.result.allocated_per_slot) {
      granted_cpu += allocated[workload::kCpu];
    }
    const double lost_pct =
        granted_cpu > 0.0
            ? 100.0 * outcome.result.fragmentation_lost[workload::kCpu] /
                  granted_cpu
            : 0.0;
    std::string label = nodes == 0 ? std::string("fluid (paper LP model)")
                                   : std::to_string(nodes) + " nodes";
    if (nodes > 0 && !row.round) label += " (fractional grants)";
    table.begin_row()
        .add(label)
        .add(static_cast<std::int64_t>(outcome.deadlines.jobs_missed))
        .add(outcome.adhoc.mean_turnaround_s, 1)
        .add(lost_pct, 2)
        .add(std::string(outcome.result.all_completed ? "all" : "PARTIAL"));
  }
  // Task-level (non-preemptive) substrate: the closest model to real YARN
  // execution. Run FlowTime against it with container-shaped grants.
  {
    sim::TaskSimConfig task_config;
    task_config.cluster.capacity = ResourceVec{500.0, 1024.0};
    task_config.max_horizon_s = 6.0 * 3600.0;
    core::FlowTimeConfig flowtime;
    flowtime.cluster.capacity = task_config.cluster.capacity;
    flowtime.cluster.slot_seconds = task_config.cluster.slot_seconds;
    flowtime.round_to_containers = true;
    sim::TaskLevelSimulator task_sim(task_config);
    core::FlowTimeScheduler scheduler(flowtime);
    const sim::SimResult result = task_sim.run(scenario, scheduler);
    const sim::DeadlineReport report = sim::evaluate_deadlines(
        result, scenario.workflows,
        sim::JobDeadlines(scheduler.job_deadlines().begin(),
                          scheduler.job_deadlines().end()));
    const sim::AdhocReport adhoc = sim::evaluate_adhoc(result);
    table.begin_row()
        .add(std::string("task-level (non-preemptive)"))
        .add(static_cast<std::int64_t>(report.jobs_missed))
        .add(adhoc.mean_turnaround_s, 1)
        .add(0.0, 2)
        .add(std::string(result.all_completed ? "all" : "PARTIAL"));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected: small 1-core/2-4 GB containers pack near-perfectly, so "
      "FlowTime's guarantees survive node granularity and non-preemptive "
      "task execution; fragmentation and starvation only appear when "
      "fractional grants skip container rounding.\n");
  flowtime::bench::finish_trace_out();
  return 0;
}
