// Fig. 4 — the paper's main testbed comparison (§VII-B.1).
//
// Workload: 5 deadline-aware workflows x 18 jobs = 90 deadline jobs (PUMA /
// HiBench-like profiles) sharing a 500-core / 1 TB cluster with a Poisson
// stream of ad-hoc jobs. Reported per scheduler:
//   (a) the distribution of (completion - deadline) over the 90 jobs,
//   (b) the number of jobs that miss their (decomposed) deadlines,
//   (c) the mean turnaround time of ad-hoc jobs,
//   plus the workflow-level deadline count discussed in the text.
//
// Paper reference points: misses FlowTime 0, CORA 10, EDF 5, Fair 8,
// FIFO 13 (all 5 workflows meet their deadlines under FlowTime); ad-hoc
// mean turnaround 522.5 s under FlowTime, with Fair ~1.56x, CORA ~2x,
// FIFO ~3x and EDF ~10x that value. Absolute seconds depend on the testbed;
// the shape (who wins, roughly by how much) is the reproduction target.
#include <cstdio>
#include <map>

#include "obs/trace.h"
#include "sched/experiment.h"
#include "util/flags.h"
#include "util/histogram.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/trace_gen.h"

namespace {

using namespace flowtime;
using workload::ResourceVec;

const std::map<std::string, int> kPaperMisses = {
    {"FlowTime", 0}, {"CORA", 10},    {"EDF", 5},   {"Fair", 8},
    {"FIFO", 13},    {"Morpheus", -1}, {"Rayon", -1}};
// Morpheus and Rayon rows are absent/truncated in the source scan.

const std::map<std::string, double> kPaperTurnaroundRatio = {
    {"FlowTime", 1.0}, {"Fair", 1.56},     {"CORA", 2.0}, {"FIFO", 3.0},
    {"EDF", 10.0},     {"Morpheus", -1.0}, {"Rayon", -1.0}};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string trace_out = flags.get_string("trace-out", "");
  if (!trace_out.empty() && !obs::open_trace_file(trace_out)) {
    std::fprintf(stderr, "error: cannot open trace file %s\n",
                 trace_out.c_str());
    return 1;
  }
  sched::ExperimentConfig config;
  config.sim.cluster.capacity = ResourceVec{500.0, 1024.0};  // Fig. 7 cluster
  config.sim.max_horizon_s = 8.0 * 3600.0;
  config.flowtime.cluster.capacity = config.sim.cluster.capacity;
  config.flowtime.cluster.slot_seconds = config.sim.cluster.slot_seconds;
  config.schedulers = {"FlowTime", "CORA", "EDF", "Fair", "FIFO",
                       "Morpheus", "Rayon"};

  workload::Fig4Config fig4;
  fig4.num_workflows = 5;
  fig4.jobs_per_workflow = 18;
  fig4.workflow_start_spread_s = 400.0;
  fig4.workflow.cluster.capacity = config.sim.cluster.capacity;
  fig4.workflow.task_multiplier = 1;
  fig4.workflow.looseness_min = 4.0;
  fig4.workflow.looseness_max = 6.0;
  fig4.adhoc.rate_per_s = 0.15;
  fig4.adhoc.horizon_s = 1500.0;
  fig4.adhoc.min_tasks = 10;
  fig4.adhoc.max_tasks = 50;
  fig4.adhoc.min_task_runtime_s = 30.0;
  fig4.adhoc.max_task_runtime_s = 80.0;

  std::printf("=== Fig. 4: deadline-aware workflows + ad-hoc jobs ===\n");
  std::printf(
      "5 workflows x 18 jobs = 90 deadline jobs, Poisson ad-hoc stream, "
      "500 cores / 1 TB, 10 s slots.\n\n");

  const workload::Scenario scenario = workload::make_fig4_scenario(13, fig4);
  std::printf("ad-hoc jobs in stream: %zu\n\n", scenario.adhoc_jobs.size());
  const auto outcomes = sched::run_comparison(scenario, config);

  double flowtime_turnaround = 0.0;
  for (const auto& outcome : outcomes) {
    if (outcome.name == "FlowTime") {
      flowtime_turnaround = outcome.adhoc.mean_turnaround_s;
    }
  }

  util::Table table({"scheduler", "jobs_missed(/90)", "paper_missed",
                     "wf_missed(/5)", "delta_mean_s", "delta_max_s",
                     "adhoc_mean_s", "ratio_vs_FlowTime", "paper_ratio"});
  for (const auto& outcome : outcomes) {
    const auto deltas = outcome.deadlines.job_deltas();
    const double ratio =
        flowtime_turnaround > 0.0
            ? outcome.adhoc.mean_turnaround_s / flowtime_turnaround
            : 0.0;
    const int paper_missed = kPaperMisses.at(outcome.name);
    const double paper_ratio = kPaperTurnaroundRatio.at(outcome.name);
    table.begin_row()
        .add(outcome.name)
        .add(static_cast<std::int64_t>(outcome.deadlines.jobs_missed))
        .add(paper_missed < 0 ? std::string("n/a")
                              : std::to_string(paper_missed))
        .add(static_cast<std::int64_t>(outcome.deadlines.workflows_missed))
        .add(util::mean(deltas), 1)
        .add(util::max_of(deltas), 1)
        .add(outcome.adhoc.mean_turnaround_s, 1)
        .add(ratio, 2)
        .add(paper_ratio < 0.0 ? std::string("n/a")
                               : util::format_double(paper_ratio, 2));
  }
  std::printf("%s\n", table.to_string().c_str());

  // Fig. 4(a) flavour: the delta distribution per scheduler.
  util::Table deltas_table({"scheduler", "delta_p10_s", "delta_p50_s",
                            "delta_p90_s", "delta_p100_s"});
  for (const auto& outcome : outcomes) {
    const auto deltas = outcome.deadlines.job_deltas();
    deltas_table.begin_row()
        .add(outcome.name)
        .add(util::quantile(deltas, 0.10), 1)
        .add(util::quantile(deltas, 0.50), 1)
        .add(util::quantile(deltas, 0.90), 1)
        .add(util::quantile(deltas, 1.00), 1);
  }
  std::printf("Fig. 4(a) delta distribution (completion - deadline):\n%s\n",
              deltas_table.to_string().c_str());
  for (const auto& outcome : outcomes) {
    if (outcome.name != "FlowTime" && outcome.name != "FIFO") continue;
    std::printf("%s delta histogram (s):\n%s\n", outcome.name.c_str(),
                util::render_histogram(outcome.deadlines.job_deltas(),
                                       {.bins = 8, .max_bar_width = 30})
                    .c_str());
  }
  std::printf(
      "Expected shape: FlowTime all deltas <= 0 and 0 misses; EDF best "
      "baseline on misses but ~10x worse ad-hoc turnaround; FIFO worst on "
      "misses; Fair best baseline on turnaround.\n\n");

  // Seed-stability appendix: the paper reports one testbed run; the table
  // above pins one representative seed. Three more seeds show which
  // conclusions are stable (FlowTime 0 misses, EDF's order-of-magnitude
  // ad-hoc penalty) and which wobble (exact baseline miss counts).
  std::printf("Seed stability (misses / adhoc-ratio vs FlowTime):\n");
  util::Table stability(
      {"seed", "FlowTime", "CORA", "EDF", "Fair", "FIFO"});
  for (const std::uint64_t seed : {13u, 7u, 11u, 21u}) {
    const workload::Scenario s2 = workload::make_fig4_scenario(seed, fig4);
    sched::ExperimentConfig c2 = config;
    c2.schedulers = {"FlowTime", "CORA", "EDF", "Fair", "FIFO"};
    const auto runs = sched::run_comparison(s2, c2);
    const double base = runs[0].adhoc.mean_turnaround_s;
    stability.begin_row().add(static_cast<std::int64_t>(seed));
    for (const auto& outcome : runs) {
      stability.add(std::to_string(outcome.deadlines.jobs_missed) + " / " +
                    util::format_double(
                        base > 0.0 ? outcome.adhoc.mean_turnaround_s / base
                                   : 0.0,
                        1));
    }
  }
  std::printf("%s", stability.to_string().c_str());
  if (!trace_out.empty()) obs::clear_trace_sink();
  return 0;
}
