// Fig. 5 — the effectiveness of deadline slack (§VII-B.2).
//
// Same workload family as Fig. 4 but with estimation noise injected (the
// slack feature exists precisely to absorb it). Compares FlowTime (60 s
// slack, the paper default) against FlowTime_no_ds (slack disabled).
//
// Paper reference: with slack all 90 jobs meet their deadlines; without it
// 5 jobs miss; ad-hoc turnaround is essentially unaffected (522.5 s vs
// ~531 s) because the slack only shifts a small amount of deadline work
// slightly earlier.
#include <cstdio>

#include "bench_trace.h"

#include "sched/experiment.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/estimator.h"
#include "workload/trace_gen.h"

int main(int argc, char** argv) {
  if (!flowtime::bench::init_trace_out(&argc, argv)) return 1;
  const double solver_budget_ms =
      flowtime::bench::init_solver_budget_ms(&argc, argv);
  using namespace flowtime;
  using workload::ResourceVec;

  sched::ExperimentConfig config;
  config.sim.cluster.capacity = ResourceVec{500.0, 1024.0};
  config.sim.max_horizon_s = 8.0 * 3600.0;
  config.flowtime.cluster.capacity = config.sim.cluster.capacity;
  config.flowtime.cluster.slot_seconds = config.sim.cluster.slot_seconds;
  config.flowtime.solver_budget_ms = solver_budget_ms;
  config.flowtime.deadline_slack_s = 60.0;  // paper default
  config.schedulers = {"FlowTime", "FlowTime_no_ds"};

  workload::Fig4Config fig4;
  fig4.num_workflows = 5;
  fig4.jobs_per_workflow = 18;
  fig4.workflow_start_spread_s = 400.0;
  fig4.workflow.cluster.capacity = config.sim.cluster.capacity;
  fig4.workflow.looseness_min = 4.0;
  fig4.workflow.looseness_max = 6.0;
  fig4.adhoc.rate_per_s = 0.15;
  fig4.adhoc.horizon_s = 1500.0;
  fig4.adhoc.min_tasks = 10;
  fig4.adhoc.max_tasks = 50;
  fig4.adhoc.min_task_runtime_s = 30.0;
  fig4.adhoc.max_task_runtime_s = 80.0;

  workload::Scenario scenario = workload::make_fig4_scenario(13, fig4);
  // Estimation noise: input data and code change between recurring runs
  // (§III-A). Under-estimates are what slack protects against.
  util::Rng rng(99);
  workload::EstimationErrorConfig error;
  error.affected_fraction = 0.45;
  error.under_probability = 0.6;
  error.under_severity = 0.20;
  error.over_severity = 0.20;
  workload::inject_estimation_error(scenario.workflows, error, rng);

  std::printf("=== Fig. 5: the effects of deadline slack ===\n");
  std::printf(
      "Fig. 4 workload + estimation noise (45%% of jobs off by up to 20%%); "
      "slack 60 s vs none.\n\n");

  const auto outcomes = sched::run_comparison(scenario, config);
  util::Table table({"scheduler", "jobs_missed(/90)", "paper_missed",
                     "delta_mean_s", "delta_max_s", "adhoc_mean_s",
                     "replans"});
  for (const auto& outcome : outcomes) {
    const auto deltas = outcome.deadlines.job_deltas();
    table.begin_row()
        .add(outcome.name)
        .add(static_cast<std::int64_t>(outcome.deadlines.jobs_missed))
        .add(std::string(outcome.name == "FlowTime" ? "0" : "5"))
        .add(util::mean(deltas), 1)
        .add(util::max_of(deltas), 1)
        .add(outcome.adhoc.mean_turnaround_s, 1)
        .add(static_cast<std::int64_t>(outcome.replans));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: slack absorbs under-estimation (0 misses); the "
      "no-slack variant misses a handful; ad-hoc turnaround is barely "
      "affected by slack.\n");
  flowtime::bench::finish_trace_out();
  return 0;
}
