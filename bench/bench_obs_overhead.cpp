// Observability overhead benchmark (DESIGN.md §8).
//
// Runs the same replan-heavy Fig.4-style workload behind the concurrent
// runtime (barrier mode, so every mode executes the identical plan
// sequence) in three observability modes:
//   * "obs_off"    — obs disabled: the instrumentation guards (one relaxed
//                    atomic load per site, a cached null profile pointer in
//                    the simplex hot loop) are the only residue,
//   * "obs_on"     — obs enabled, no sink: timers, counters, histograms
//                    and the thread-local solve profile run; rendered
//                    events are dropped,
//   * "obs_jsonl"  — obs enabled with a JSONL file sink: full causal
//                    tracing written to disk.
// The off mode runs twice ("obs_off" + "obs_off_repeat"): the spread
// between the two is the measurement noise floor that overhead numbers
// must be read against.
//
// Per mode: `repetitions` full simulations, median end-to-end wall clock,
// and overhead relative to the first off run. Output is one JSON document
// (default BENCH_obs_overhead.json, committed to the repo so the numbers
// travel with the code). Regenerate with:
//   ./build/bench/bench_obs_overhead --out BENCH_obs_overhead.json
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/flowtime_scheduler.h"
#include "obs/testing.h"
#include "obs/trace.h"
#include "runtime/concurrent_scheduler.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "util/stats.h"
#include "workload/trace_gen.h"

namespace {

using namespace flowtime;
using workload::ResourceVec;

struct ModeRow {
  std::string mode;
  double median_wall_ms = 0.0;
  double overhead_pct = 0.0;  // vs the first obs_off run
  int replans = 0;
  std::int64_t pivots = 0;
  bool all_completed = false;
};

struct RunOutcome {
  double wall_ms = 0.0;
  int replans = 0;
  std::int64_t pivots = 0;
  bool all_completed = false;
};

enum class ObsMode { kOff, kOn, kJsonl };

RunOutcome run_once(const workload::Scenario& scenario,
                    const sim::SimConfig& sim_config,
                    const core::FlowTimeConfig& flowtime, ObsMode mode,
                    const std::string& trace_path) {
  obs::testing::ScopedRegistryReset::reset();  // leaves obs disabled
  if (mode == ObsMode::kOn) {
    obs::set_enabled(true);
  } else if (mode == ObsMode::kJsonl) {
    obs::open_trace_file(trace_path);
  }

  runtime::RuntimeConfig rt;
  rt.flowtime = flowtime;
  rt.async_replan = true;
  rt.barrier_mode = true;  // identical plan sequence in every mode

  const auto start = std::chrono::steady_clock::now();
  runtime::ConcurrentScheduler scheduler(rt);
  const sim::SimResult result =
      sim::Simulator(sim_config).run(scenario, scheduler);
  scheduler.drain_events();
  const auto stop = std::chrono::steady_clock::now();

  RunOutcome outcome;
  outcome.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  outcome.pivots = scheduler.inner().total_pivots();
  outcome.all_completed = result.all_completed;
  for (const core::ReplanRecord& record : scheduler.inner().replan_log()) {
    if (!record.discarded) ++outcome.replans;
  }
  obs::testing::ScopedRegistryReset::reset();  // flush + disable
  return outcome;
}

std::string render_json(const std::vector<ModeRow>& rows, int repetitions,
                        double noise_floor_pct) {
  std::string out = "{\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"benchmark\": \"obs_overhead\",\n"
                "  \"repetitions\": %d,\n"
                "  \"baseline\": \"obs_off\",\n"
                "  \"noise_floor_pct\": %.2f,\n"
                "  \"modes\": [\n",
                repetitions, noise_floor_pct);
  out += buf;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ModeRow& r = rows[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\n"
                  "      \"mode\": \"%s\",\n"
                  "      \"median_wall_ms\": %.3f,\n"
                  "      \"overhead_pct\": %.2f,\n"
                  "      \"replans\": %d,\n"
                  "      \"pivots\": %lld,\n"
                  "      \"all_completed\": %s\n"
                  "    }%s\n",
                  r.mode.c_str(), r.median_wall_ms, r.overhead_pct,
                  r.replans, static_cast<long long>(r.pivots),
                  r.all_completed ? "true" : "false",
                  i + 1 < rows.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string out_path =
      flags.get_string("out", "BENCH_obs_overhead.json");
  const std::string trace_path =
      flags.get_string("trace-out", "bench_obs_overhead.jsonl");
  const int repetitions =
      static_cast<int>(flags.get_double("repetitions", 5.0));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_double("seed", 7.0));

  sim::SimConfig sim_config;
  sim_config.cluster.capacity = ResourceVec{400.0, 1024.0};
  sim_config.max_horizon_s = 6.0 * 3600.0;

  workload::Fig4Config fig4;
  fig4.num_workflows = 4;
  fig4.jobs_per_workflow = 14;
  fig4.workflow_start_spread_s = 350.0;
  fig4.workflow.cluster.capacity = sim_config.cluster.capacity;
  fig4.workflow.looseness_min = 4.0;
  fig4.workflow.looseness_max = 6.0;
  fig4.adhoc.rate_per_s = 0.12;
  fig4.adhoc.horizon_s = 1200.0;
  const workload::Scenario scenario = workload::make_fig4_scenario(seed, fig4);

  core::FlowTimeConfig flowtime;
  flowtime.cluster.capacity = sim_config.cluster.capacity;
  flowtime.cluster.slot_seconds = sim_config.cluster.slot_seconds;

  struct ModeSpec {
    const char* name;
    ObsMode mode;
  };
  const ModeSpec specs[] = {{"obs_off", ObsMode::kOff},
                            {"obs_off_repeat", ObsMode::kOff},
                            {"obs_on", ObsMode::kOn},
                            {"obs_jsonl", ObsMode::kJsonl}};

  std::vector<ModeRow> rows;
  double baseline_ms = 0.0;
  for (const ModeSpec& spec : specs) {
    std::vector<double> walls;
    RunOutcome last;
    for (int rep = 0; rep < repetitions; ++rep) {
      last = run_once(scenario, sim_config, flowtime, spec.mode, trace_path);
      walls.push_back(last.wall_ms);
    }
    ModeRow row;
    row.mode = spec.name;
    row.median_wall_ms = util::quantile(walls, 0.50);
    row.replans = last.replans;
    row.pivots = last.pivots;
    row.all_completed = last.all_completed;
    if (baseline_ms == 0.0) {
      baseline_ms = row.median_wall_ms;  // first row (obs_off) is baseline
    }
    row.overhead_pct = baseline_ms > 0.0
                           ? 100.0 * (row.median_wall_ms - baseline_ms) /
                                 baseline_ms
                           : 0.0;
    rows.push_back(row);
    std::printf("%-16s median %8.3f ms  overhead %+6.2f%%  (%d replans, "
                "%lld pivots)\n",
                row.mode.c_str(), row.median_wall_ms, row.overhead_pct,
                row.replans, static_cast<long long>(row.pivots));
  }
  const double noise_floor_pct = rows.size() > 1 ? rows[1].overhead_pct : 0.0;

  // Sanity: every mode must execute the identical plan sequence (barrier
  // mode + fixed seed), otherwise the wall-clock comparison is meaningless.
  for (const ModeRow& row : rows) {
    if (row.pivots != rows[0].pivots || row.replans != rows[0].replans ||
        !row.all_completed) {
      std::fprintf(stderr,
                   "bench_obs_overhead: FAIL: mode %s diverged from "
                   "baseline (replans %d vs %d, pivots %lld vs %lld)\n",
                   row.mode.c_str(), row.replans, rows[0].replans,
                   static_cast<long long>(row.pivots),
                   static_cast<long long>(rows[0].pivots));
      return 1;
    }
  }

  const std::string json = render_json(rows, repetitions, noise_floor_pct);
  if (!sim::write_file(out_path, json)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("%s", json.c_str());
  std::printf("Written to %s\n", out_path.c_str());
  return 0;
}
