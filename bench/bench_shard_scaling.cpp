// Federated shard-scaling benchmark (DESIGN.md §13, ROADMAP item 3).
//
// Runs one production-shaped scenario (diurnal workflow releases, flash
// crowds, heavy-tailed ad-hoc runtimes — workload/trace_gen.h) against the
// FederatedScheduler at increasing cell counts and reports how the re-plan
// cost scales: per-round solve wall p50/p99 (a round is one allocate() that
// solved at least one dirty cell; under the solver pool its wall is the max
// over the concurrently solved cells), total solve wall, migrations, and
// the deadline-miss rate so the quality cost of sharding is visible next to
// the latency win. The cells=1 row is the unsharded baseline — the
// coordinator is a byte-identical pass-through there — and every other row
// reports its speedup against it.
//
// Output is one JSON document (default BENCH_shard_scaling.json, committed
// to the repo so the numbers travel with the code). Regenerate with:
//   ./build/bench/bench_shard_scaling --out BENCH_shard_scaling.json
// The committed file is schema-checked by the bench_shard_scaling_schema
// ctest target (--check mode); bench_shard_scaling_smoke runs a small
// instance end-to-end.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/federated_scheduler.h"
#include "obs/metrics.h"
#include "sched/experiment.h"
#include "sim/metrics.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/strings.h"
#include "workload/trace_gen.h"

namespace {

using namespace flowtime;
using workload::ResourceVec;

struct ShardRow {
  int cells = 1;
  int replan_rounds = 0;
  double solve_wall_p50_ms = 0.0;
  double solve_wall_p99_ms = 0.0;
  double solve_wall_total_s = 0.0;
  int replans = 0;
  std::int64_t pivots = 0;
  int migrations = 0;
  int cell_overload_events = 0;
  int deadline_jobs_missed = 0;
  double deadline_miss_rate = 0.0;
  double adhoc_mean_turnaround_s = 0.0;
  double speedup_vs_1cell = 1.0;
  bool all_completed = false;
};

ShardRow run_cells(int cells, const workload::Scenario& scenario,
                   const sched::ExperimentConfig& experiment,
                   const sim::JobDeadlines& deadlines, int deadline_jobs) {
  cluster::FederatedConfig federated;
  federated.flowtime = experiment.flowtime;
  federated.partition.cells = cells;
  federated.parallel_solve = cells > 1;  // one pool thread per cell
  cluster::FederatedScheduler fed(federated);
  sim::Simulator simulator(experiment.sim);
  const sim::SimResult result = simulator.run(scenario, fed);

  ShardRow row;
  row.cells = cells;
  const std::vector<double>& rounds = fed.replan_round_wall_s();
  row.replan_rounds = static_cast<int>(rounds.size());
  if (!rounds.empty()) {
    row.solve_wall_p50_ms = util::quantile(rounds, 0.5) * 1e3;
    row.solve_wall_p99_ms = util::quantile(rounds, 0.99) * 1e3;
    for (double wall : rounds) row.solve_wall_total_s += wall;
  }
  row.replans = fed.replans();
  row.pivots = fed.total_pivots();
  row.migrations = fed.migrations();
  row.cell_overload_events = fed.overload_events();
  const sim::DeadlineReport stats =
      sim::evaluate_deadlines(result, scenario.workflows, deadlines);
  row.deadline_jobs_missed = stats.jobs_missed;
  row.deadline_miss_rate =
      deadline_jobs > 0 ? static_cast<double>(stats.jobs_missed) /
                              static_cast<double>(deadline_jobs)
                        : 0.0;
  row.adhoc_mean_turnaround_s = sim::evaluate_adhoc(result).mean_turnaround_s;
  row.all_completed = result.all_completed;
  return row;
}

std::string render_json(const std::vector<ShardRow>& rows,
                        const workload::ClusterSpec& cluster, int workflows,
                        int deadline_jobs, int adhoc_jobs,
                        std::int64_t tasks, double horizon_s,
                        std::uint64_t seed) {
  std::string out = "{\n";
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "  \"benchmark\": \"shard_scaling\",\n"
                "  \"cores\": %.0f,\n"
                "  \"mem_gb\": %.0f,\n"
                "  \"slot_seconds\": %.0f,\n"
                "  \"workflows\": %d,\n"
                "  \"deadline_jobs\": %d,\n"
                "  \"adhoc_jobs\": %d,\n"
                "  \"tasks\": %lld,\n"
                "  \"horizon_s\": %.0f,\n"
                "  \"seed\": %llu,\n"
                "  \"rows\": [\n",
                cluster.capacity[workload::kCpu],
                cluster.capacity[workload::kMemory], cluster.slot_seconds,
                workflows, deadline_jobs, adhoc_jobs,
                static_cast<long long>(tasks), horizon_s,
                static_cast<unsigned long long>(seed));
  out += buf;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ShardRow& r = rows[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\n"
        "      \"cells\": %d,\n"
        "      \"replan_rounds\": %d,\n"
        "      \"solve_wall_p50_ms\": %.3f,\n"
        "      \"solve_wall_p99_ms\": %.3f,\n"
        "      \"solve_wall_total_s\": %.6f,\n"
        "      \"replans\": %d,\n"
        "      \"pivots\": %lld,\n"
        "      \"migrations\": %d,\n"
        "      \"cell_overload_events\": %d,\n"
        "      \"deadline_jobs_missed\": %d,\n"
        "      \"deadline_miss_rate\": %.6f,\n"
        "      \"adhoc_mean_turnaround_s\": %.3f,\n"
        "      \"speedup_vs_1cell\": %.3f,\n"
        "      \"all_completed\": %s\n"
        "    }%s\n",
        r.cells, r.replan_rounds, r.solve_wall_p50_ms, r.solve_wall_p99_ms,
        r.solve_wall_total_s, r.replans, static_cast<long long>(r.pivots),
        r.migrations, r.cell_overload_events, r.deadline_jobs_missed,
        r.deadline_miss_rate, r.adhoc_mean_turnaround_s, r.speedup_vs_1cell,
        r.all_completed ? "true" : "false", i + 1 < rows.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

// Schema check over the committed JSON: every required key must appear
// (value syntax is snprintf-controlled, so key presence is the contract),
// and the committed file must cover the 1/4/16-cell series.
int check_schema(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();
  const char* required[] = {
      "\"benchmark\": \"shard_scaling\"",
      "\"cores\":",
      "\"mem_gb\":",
      "\"slot_seconds\":",
      "\"workflows\":",
      "\"deadline_jobs\":",
      "\"adhoc_jobs\":",
      "\"tasks\":",
      "\"horizon_s\":",
      "\"seed\":",
      "\"rows\":",
      "\"cells\": 1",
      "\"cells\": 4",
      "\"cells\": 16",
      "\"replan_rounds\":",
      "\"solve_wall_p50_ms\":",
      "\"solve_wall_p99_ms\":",
      "\"solve_wall_total_s\":",
      "\"replans\":",
      "\"pivots\":",
      "\"migrations\":",
      "\"cell_overload_events\":",
      "\"deadline_jobs_missed\":",
      "\"deadline_miss_rate\":",
      "\"adhoc_mean_turnaround_s\":",
      "\"speedup_vs_1cell\":",
      "\"all_completed\":"};
  int missing = 0;
  for (const char* key : required) {
    if (text.find(key) == std::string::npos) {
      std::fprintf(stderr, "schema: missing %s\n", key);
      ++missing;
    }
  }
  if (missing > 0) return 1;
  std::printf("%s: schema ok (%zu bytes)\n", path.c_str(), text.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string check_path = flags.get_string("check", "");
  const std::string out_path =
      flags.get_string("out", "BENCH_shard_scaling.json");
  const std::string cells_list = flags.get_string("cells", "1,4,16");
  const int workflows = static_cast<int>(flags.get_double("workflows", 96.0));
  const double horizon_s = flags.get_double("horizon", 2.0 * 3600.0);
  const double cores = flags.get_double("cores", 10000.0);
  const double mem_gb = flags.get_double("mem-gb", 20480.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_double("seed", 42.0));
  if (!check_path.empty()) return check_schema(check_path);
  obs::set_enabled(true);  // round wall timers live behind the obs switch

  workload::ProductionScenarioConfig production;
  production.num_workflows = workflows;
  production.horizon_s = horizon_s;
  production.diurnal_period_s = horizon_s;  // one full load wave per run
  production.workflow.cluster.capacity = ResourceVec{cores, mem_gb};
  // Workflows must individually fit a 1/16 cell, or sharding pays in
  // deadline extensions instead of routing; many small workflows is also
  // the production shape the partition exploits.
  production.workflow.task_multiplier =
      static_cast<int>(flags.get_double("task-multiplier", 1.0));
  production.adhoc.base.rate_per_s = 0.05;
  production.adhoc.base.horizon_s = horizon_s;
  const workload::Scenario scenario =
      workload::make_production_scenario(seed, production);

  int deadline_jobs = 0;
  std::int64_t tasks = 0;
  for (const auto& w : scenario.workflows) {
    deadline_jobs += static_cast<int>(w.jobs.size());
    for (const auto& job : w.jobs) tasks += job.num_tasks;
  }
  for (const auto& adhoc : scenario.adhoc_jobs) tasks += adhoc.spec.num_tasks;

  sched::ExperimentConfig experiment;
  experiment.sim.cluster.capacity = ResourceVec{cores, mem_gb};
  experiment.sim.max_horizon_s = 4.0 * horizon_s;
  experiment.flowtime.cluster = experiment.sim.cluster;
  const sim::JobDeadlines deadlines =
      sched::milestone_deadlines(scenario, experiment);

  std::printf("shard scaling: %d workflows (%d deadline jobs), %zu ad-hoc, "
              "%lld tasks, %.0f cores\n",
              workflows, deadline_jobs, scenario.adhoc_jobs.size(),
              static_cast<long long>(tasks), cores);

  std::vector<ShardRow> rows;
  for (const std::string& token : util::split(cells_list, ',')) {
    if (token.empty()) continue;
    const int cells = std::max(1, std::atoi(token.c_str()));
    std::printf("  cells=%d ...\n", cells);
    std::fflush(stdout);
    ShardRow row =
        run_cells(cells, scenario, experiment, deadlines, deadline_jobs);
    if (!rows.empty() && rows.front().cells == 1 &&
        row.solve_wall_total_s > 0.0) {
      row.speedup_vs_1cell =
          rows.front().solve_wall_total_s / row.solve_wall_total_s;
    }
    std::printf(
        "  cells=%d: %d rounds, p50 %.2f ms, p99 %.2f ms, total %.2f s, "
        "miss rate %.4f, migrations %d (%.2fx vs 1 cell)\n",
        row.cells, row.replan_rounds, row.solve_wall_p50_ms,
        row.solve_wall_p99_ms, row.solve_wall_total_s, row.deadline_miss_rate,
        row.migrations, row.speedup_vs_1cell);
    rows.push_back(row);
  }

  const std::string json = render_json(
      rows, experiment.sim.cluster, workflows, deadline_jobs,
      static_cast<int>(scenario.adhoc_jobs.size()), tasks, horizon_s, seed);
  if (!sim::write_file(out_path, json)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("%s", json.c_str());
  std::printf("Written to %s\n", out_path.c_str());
  return 0;
}
