// Shared --trace-out plumbing for the bench binaries.
//
// Every bench accepts `--trace-out PATH` (or `--trace-out=PATH`) and streams
// its solver/scheduler/simulator events there as JSONL, analyzable with
// examples/trace_report. The flag is extracted *before* any other argument
// parsing so it also works for the google-benchmark binaries (fig6, fig7),
// whose benchmark::Initialize rejects flags it does not know.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/trace.h"

namespace flowtime::bench {

/// Scans argv for --trace-out, removes it from the argument list (updating
/// *argc in place so downstream parsers never see it), and installs the
/// JSONL file sink. Returns false — after printing an error — when the file
/// cannot be opened; true otherwise (including when the flag is absent).
inline bool init_trace_out(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      path = arg.substr(std::string("--trace-out=").size());
      continue;
    }
    if (arg == "--trace-out" && i + 1 < *argc) {
      path = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  if (path.empty()) return true;
  if (!obs::open_trace_file(path)) {
    std::fprintf(stderr, "error: cannot open trace file %s\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "trace: writing events to %s\n", path.c_str());
  return true;
}

/// Flushes and closes the sink; harmless when none was installed.
inline void finish_trace_out() { obs::clear_trace_sink(); }

/// Scans argv for --solver-budget-ms (same extraction rules as
/// init_trace_out, so google-benchmark parsers never see it) and returns
/// its value, or 0.0 (= unlimited) when absent. Benches that build a
/// FlowTimeConfig assign the result to config.solver_budget_ms to run the
/// sweep under the graceful-degradation ladder (DESIGN.md §10).
inline double init_solver_budget_ms(int* argc, char** argv) {
  std::string value;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--solver-budget-ms=", 0) == 0) {
      value = arg.substr(std::string("--solver-budget-ms=").size());
      continue;
    }
    if (arg == "--solver-budget-ms" && i + 1 < *argc) {
      value = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  if (value.empty()) return 0.0;
  const double ms = std::strtod(value.c_str(), nullptr);
  if (ms > 0.0) {
    std::fprintf(stderr, "solver budget: %g ms per re-plan\n", ms);
  }
  return ms > 0.0 ? ms : 0.0;
}

}  // namespace flowtime::bench
