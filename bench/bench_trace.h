// Shared --trace-out plumbing for the bench binaries.
//
// Every bench accepts `--trace-out PATH` (or `--trace-out=PATH`) and streams
// its solver/scheduler/simulator events there as JSONL, analyzable with
// examples/trace_report. The flag is extracted *before* any other argument
// parsing so it also works for the google-benchmark binaries (fig6, fig7),
// whose benchmark::Initialize rejects flags it does not know.
#pragma once

#include <cstdio>
#include <string>

#include "obs/trace.h"

namespace flowtime::bench {

/// Scans argv for --trace-out, removes it from the argument list (updating
/// *argc in place so downstream parsers never see it), and installs the
/// JSONL file sink. Returns false — after printing an error — when the file
/// cannot be opened; true otherwise (including when the flag is absent).
inline bool init_trace_out(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      path = arg.substr(std::string("--trace-out=").size());
      continue;
    }
    if (arg == "--trace-out" && i + 1 < *argc) {
      path = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  if (path.empty()) return true;
  if (!obs::open_trace_file(path)) {
    std::fprintf(stderr, "error: cannot open trace file %s\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "trace: writing events to %s\n", path.c_str());
  return true;
}

/// Flushes and closes the sink; harmless when none was installed.
inline void finish_trace_out() { obs::clear_trace_sink(); }

}  // namespace flowtime::bench
