// Fig. 8 (reconstructed) — trace-driven simulation.
//
// The abstract and §VII promise trace-driven simulations alongside the
// testbed runs, but the evaluation text after Fig. 7 is truncated in the
// available scan (see DESIGN.md "Paper truncation notes"). This bench
// reconstructs the experiment the text promises: recurring workflow
// templates (the Huawei-trace regime: same DAG daily, deadline far looser
// than the runtime — their example is a 24 h deadline on a ~2 h workflow)
// re-released over several periods with a continuous ad-hoc stream, judged
// by the same Fig. 4 metrics.
#include <cstdio>

#include "obs/trace.h"
#include "sched/experiment.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/trace_gen.h"

int main(int argc, char** argv) {
  using namespace flowtime;
  using workload::ResourceVec;

  util::Flags flags(argc, argv);
  const std::string trace_out = flags.get_string("trace-out", "");
  if (!trace_out.empty() && !obs::open_trace_file(trace_out)) {
    std::fprintf(stderr, "error: cannot open trace file %s\n",
                 trace_out.c_str());
    return 1;
  }

  sched::ExperimentConfig config;
  config.sim.cluster.capacity = ResourceVec{500.0, 1024.0};
  config.sim.max_horizon_s = 24.0 * 3600.0;
  config.flowtime.cluster.capacity = config.sim.cluster.capacity;
  config.flowtime.cluster.slot_seconds = config.sim.cluster.slot_seconds;
  // Long-horizon LPs: a shallower lexmin budget keeps re-plans snappy
  // without affecting the peak (see the ablation bench).
  config.flowtime.lp.lexmin.max_rounds = 4;
  config.schedulers = {"FlowTime", "CORA", "EDF", "Fair", "FIFO",
                       "Morpheus", "Rayon"};

  workload::RecurringTraceConfig trace;
  trace.num_templates = 5;
  trace.recurrences = 3;
  trace.period_s = 1500.0;
  trace.workflow.num_jobs = 12;
  trace.workflow.cluster.capacity = config.sim.cluster.capacity;
  // The trace regime: deadlines much looser than the testbed experiment.
  trace.workflow.looseness_min = 6.0;
  trace.workflow.looseness_max = 10.0;
  trace.adhoc.rate_per_s = 0.12;
  trace.adhoc.min_tasks = 10;
  trace.adhoc.max_tasks = 40;
  trace.adhoc.min_task_runtime_s = 30.0;
  trace.adhoc.max_task_runtime_s = 80.0;

  const workload::Scenario scenario = workload::make_recurring_trace(17, trace);
  std::printf("=== Fig. 8 (reconstructed): trace-driven simulation ===\n");
  std::printf(
      "%d recurring templates x %d periods = %zu workflow instances "
      "(%zu deadline jobs), ad-hoc stream across %.0f s.\n\n",
      trace.num_templates, trace.recurrences, scenario.workflows.size(),
      scenario.workflows.size() * 12, trace.recurrences * trace.period_s);

  const auto outcomes = sched::run_comparison(scenario, config);
  double flowtime_turnaround = 0.0;
  for (const auto& outcome : outcomes) {
    if (outcome.name == "FlowTime") {
      flowtime_turnaround = outcome.adhoc.mean_turnaround_s;
    }
  }
  util::Table table({"scheduler", "jobs_missed", "workflows_missed",
                     "adhoc_mean_s", "adhoc_p95_s", "ratio_vs_FlowTime"});
  for (const auto& outcome : outcomes) {
    table.begin_row()
        .add(outcome.name)
        .add(static_cast<std::int64_t>(outcome.deadlines.jobs_missed))
        .add(static_cast<std::int64_t>(outcome.deadlines.workflows_missed))
        .add(outcome.adhoc.mean_turnaround_s, 1)
        .add(outcome.adhoc.p95_turnaround_s, 1)
        .add(flowtime_turnaround > 0.0
                 ? outcome.adhoc.mean_turnaround_s / flowtime_turnaround
                 : 0.0,
             2);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: same ordering as Fig. 4, with EDF's ad-hoc penalty "
      "even larger because loose-deadline workflows occupy the cluster "
      "almost continuously under EDF.\n");
  if (!trace_out.empty()) obs::clear_trace_sink();
  return 0;
}
