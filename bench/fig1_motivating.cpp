// Fig. 1 — the paper's motivating example.
//
// One workflow W1 of two chained jobs (deadline 200), ad-hoc jobs A1 (t=0)
// and A2 (t=100), resource cap 2 units. EDF burns the full cap on W1 first
// (done at 100) and delays A1 by 100 time units: mean ad-hoc turnaround
// 150 = (200+100)/2. FlowTime spreads W1 at its flat rate across the whole
// window, so A1 runs immediately: mean turnaround 100 = (100+100)/2.
#include <cstdio>

#include "bench_trace.h"
#include "dag/generators.h"
#include "sched/experiment.h"
#include "util/table.h"

namespace {

using namespace flowtime;
using workload::ResourceVec;

workload::Scenario fig1_scenario() {
  workload::Scenario scenario;
  workload::Workflow w1;
  w1.id = 0;
  w1.name = "W1";
  w1.start_s = 0.0;
  w1.deadline_s = 200.0;
  w1.dag = dag::make_chain(2);
  // Each job: 100 resource-units of work, runnable at up to the full cap of
  // 2 (so EDF can finish each in 50) or stretched to width 1 over 100.
  workload::JobSpec job;
  job.name = "Job";
  job.num_tasks = 2;
  job.task.runtime_s = 50.0;
  job.task.demand = ResourceVec{1.0, 1.0};
  w1.jobs = {job, job};
  scenario.workflows.push_back(std::move(w1));

  workload::AdhocJob a1;
  a1.id = 0;
  a1.arrival_s = 0.0;
  a1.spec.name = "A1";
  a1.spec.num_tasks = 1;
  a1.spec.task.runtime_s = 100.0;
  a1.spec.task.demand = ResourceVec{1.0, 1.0};
  workload::AdhocJob a2 = a1;
  a2.id = 1;
  a2.arrival_s = 100.0;
  a2.spec.name = "A2";
  scenario.adhoc_jobs = {a1, a2};
  return scenario;
}

}  // namespace

int main(int argc, char** argv) {
  if (!flowtime::bench::init_trace_out(&argc, argv)) return 1;
  const double solver_budget_ms =
      flowtime::bench::init_solver_budget_ms(&argc, argv);
  std::printf("=== Fig. 1: motivating example ===\n");
  std::printf(
      "W1: two chained jobs, deadline 200; A1 arrives t=0, A2 t=100; "
      "cap 2.\n\n");

  sched::ExperimentConfig config;
  config.sim.cluster.capacity = ResourceVec{2.0, 2.0};
  config.flowtime.cluster.capacity = config.sim.cluster.capacity;
  config.flowtime.cluster.slot_seconds = config.sim.cluster.slot_seconds;
  config.flowtime.solver_budget_ms = solver_budget_ms;
  // The example's windows are exact; slack would shrink them below the
  // jobs' minimum runtimes.
  config.flowtime.deadline_slack_s = 0.0;
  config.schedulers = {"FlowTime", "EDF"};

  const workload::Scenario scenario = fig1_scenario();
  const auto outcomes = sched::run_comparison(scenario, config);

  util::Table table({"scheduler", "W1_done_at_s", "W1_deadline_met",
                     "A1_turnaround_s", "A2_turnaround_s",
                     "mean_adhoc_turnaround_s", "paper_mean"});
  for (const auto& outcome : outcomes) {
    const auto& jobs = outcome.result.jobs;
    const double w1_done = jobs[1].completion_s.value_or(-1.0);
    table.begin_row()
        .add(outcome.name)
        .add(w1_done, 0)
        .add(std::string(w1_done <= 200.0 + 1e-9 ? "yes" : "NO"))
        .add(jobs[2].turnaround_s(), 0)
        .add(jobs[3].turnaround_s(), 0)
        .add(outcome.adhoc.mean_turnaround_s, 0)
        .add(std::string(outcome.name == "FlowTime" ? "100" : "150"));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper: EDF delays A1 behind the whole workflow (mean 150); FlowTime "
      "spreads W1 and serves ad-hoc jobs immediately (mean 100).\n");
  flowtime::bench::finish_trace_out();
  return 0;
}
