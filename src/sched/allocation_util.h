// Allocation primitives shared by the baseline schedulers.
#pragma once

#include <vector>

#include "sim/scheduler.h"

namespace flowtime::sched {

/// Grants each view, in the given order, as much as possible: up to its
/// width, its remaining estimate when known (`respect_estimate`), and the
/// capacity still free. Appends to `out` and updates `issued`.
void grant_greedy_in_order(
    const std::vector<const sim::JobView*>& ordered_views,
    const workload::ResourceVec& capacity, bool respect_estimate,
    workload::ResourceVec& issued, std::vector<sim::Allocation>& out);

/// Max-min fair split of `leftover` across views by width fraction: every
/// job first receives an equal fraction lambda of its width, then a FIFO
/// sweep hands out what is left. Appends to `out`.
void grant_max_min_fair(const std::vector<const sim::JobView*>& views,
                        workload::ResourceVec leftover,
                        std::vector<sim::Allocation>& out);

/// The per-slot amount a deadline job may absorb: its width, except that a
/// job whose remaining estimate is smaller takes only that (overrun jobs —
/// estimate exhausted but still running — fall back to full width).
workload::ResourceVec desired_amount(const sim::JobView& view);

}  // namespace flowtime::sched
