#include "sched/baselines.h"

#include <algorithm>

#include "sched/allocation_util.h"
#include "util/logging.h"

namespace flowtime::sched {

namespace {

std::vector<const sim::JobView*> views_of(const sim::ClusterState& state) {
  std::vector<const sim::JobView*> views;
  views.reserve(state.active.size());
  for (const sim::JobView& view : state.active) views.push_back(&view);
  return views;
}

}  // namespace

std::vector<sim::Allocation> FifoScheduler::allocate(
    const sim::ClusterState& state) {
  // FIFO queues jobs in *submission* order. A workflow manager submits each
  // job when its parents finish, so workflow jobs enter the queue at their
  // ready time, behind whatever ad-hoc backlog accumulated meanwhile.
  std::vector<const sim::JobView*> views = views_of(state);
  std::sort(views.begin(), views.end(),
            [](const sim::JobView* a, const sim::JobView* b) {
              if (a->ready_since_s != b->ready_since_s) {
                return a->ready_since_s < b->ready_since_s;
              }
              return a->uid < b->uid;
            });
  std::vector<sim::Allocation> out;
  workload::ResourceVec issued{};
  grant_greedy_in_order(views, state.capacity, /*respect_estimate=*/true,
                        issued, out);
  return out;
}

std::vector<sim::Allocation> FairScheduler::allocate(
    const sim::ClusterState& state) {
  std::vector<sim::Allocation> out;
  grant_max_min_fair(views_of(state), state.capacity, out);
  return out;
}

EdfScheduler::EdfScheduler(core::DecompositionConfig decomposition,
                           bool strict_adhoc_blocking)
    : decomposer_(decomposition),
      strict_adhoc_blocking_(strict_adhoc_blocking) {}

void EdfScheduler::on_workflow_arrival(
    const workload::Workflow& workflow,
    const std::vector<sim::JobUid>& node_uids, double now_s) {
  (void)now_s;
  const auto decomposition = decomposer_.decompose(workflow);
  for (dag::NodeId v = 0; v < workflow.dag.num_nodes(); ++v) {
    deadline_by_uid_[node_uids[static_cast<std::size_t>(v)]] =
        decomposition.ok() ? decomposition.windows[static_cast<std::size_t>(v)]
                            .deadline_s
                      : workflow.deadline_s;
  }
}

std::vector<sim::Allocation> EdfScheduler::allocate(
    const sim::ClusterState& state) {
  std::vector<const sim::JobView*> deadline_views;
  std::vector<const sim::JobView*> adhoc_views;
  for (const sim::JobView& view : state.active) {
    (view.kind == sim::JobKind::kDeadline ? deadline_views : adhoc_views)
        .push_back(&view);
  }
  std::sort(deadline_views.begin(), deadline_views.end(),
            [this](const sim::JobView* a, const sim::JobView* b) {
              const double da = deadline_by_uid_.at(a->uid);
              const double db = deadline_by_uid_.at(b->uid);
              if (da != db) return da < db;
              return a->uid < b->uid;
            });
  std::sort(adhoc_views.begin(), adhoc_views.end(),
            [](const sim::JobView* a, const sim::JobView* b) {
              if (a->arrival_s != b->arrival_s) {
                return a->arrival_s < b->arrival_s;
              }
              return a->uid < b->uid;
            });
  std::vector<sim::Allocation> out;
  workload::ResourceVec issued{};
  grant_greedy_in_order(deadline_views, state.capacity,
                        /*respect_estimate=*/true, issued, out);
  // The paper's EDF starves ad-hoc work whenever deadline-aware jobs are in
  // the cluster; the non-strict variant hands them the leftovers instead.
  if (!strict_adhoc_blocking_ || deadline_views.empty()) {
    grant_greedy_in_order(adhoc_views, state.capacity,
                          /*respect_estimate=*/true, issued, out);
  }
  return out;
}

}  // namespace flowtime::sched
