// CORA-like utility scheduler (Huang et al., INFOCOM 2015 [10]; the paper's
// §VII-A configures it with deadline-critical utilities for workflow jobs
// and completion-time utilities for ad-hoc jobs).
//
// CORA is a job-level policy: it sees each deadline job's deadline as the
// enclosing workflow's deadline (no DAG decomposition — that is FlowTime's
// contribution) and minimizes the maximum utility. Our per-slot realization:
//
//   1. every deadline job receives its *pacing rate* — remaining demand
//      spread evenly until its deadline — which is the allocation that keeps
//      the step-utility of every deadline-critical job equal (and met) with
//      minimal instantaneous usage;
//   2. the remaining capacity is shared max-min across all jobs (ad-hoc and
//      deadline alike), which trades the two classes' completion-time
//      utilities against each other.
//
// The "moderate on both metrics" behaviour the paper reports emerges
// naturally: pacing against the (late) workflow deadline starts upstream
// jobs too slowly, so downstream jobs miss workflow-internal milestones;
// meanwhile ad-hoc jobs share leftovers with deadline jobs instead of
// owning them.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/scheduler.h"

namespace flowtime::sched {

struct CoraConfig {
  /// Safety factor on the pacing rate (>1 front-loads slightly).
  double pacing_boost = 1.1;
};

class CoraScheduler : public sim::Scheduler {
 public:
  explicit CoraScheduler(CoraConfig config = {});

  std::string name() const override { return "CORA"; }
  void on_workflow_arrival(const workload::Workflow& workflow,
                           const std::vector<sim::JobUid>& node_uids,
                           double now_s) override;
  std::vector<sim::Allocation> allocate(
      const sim::ClusterState& state) override;

 private:
  CoraConfig config_;
  std::map<sim::JobUid, double> workflow_deadline_by_uid_;
};

}  // namespace flowtime::sched
