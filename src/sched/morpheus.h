// Morpheus-like scheduler (Jyothi et al., OSDI 2016 [5]).
//
// Morpheus infers per-job SLOs (deadlines) for recurring jobs from the
// history of prior runs, then places a paced reservation for each job. The
// paper's critique (§I): the inference looks at each job in isolation — it
// never uses the workflow's global DAG structure — so inferred milestones
// can be individually plausible yet collectively wrong under contention.
//
// Reproduction of the history: a recurring workflow's past runs executed
// mostly uncontended, so a job's historical completion offset is its
// earliest finish time (critical-path earliest start + own minimum runtime).
// Morpheus then pads the inferred SLO (their "relaxation" step); we expose
// the padding factor. Scheduling is reservation-style: each deadline job is
// paced to its inferred SLO (EDF-ordered under shortage), ad-hoc jobs take
// the leftovers FIFO.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/scheduler.h"

namespace flowtime::sched {

struct MorpheusConfig {
  /// Inferred SLO = start + padding x historical completion offset.
  double slo_padding = 1.5;
  /// Cluster model used to reconstruct historical (uncontended) runs.
  workload::ClusterSpec cluster;
};

class MorpheusScheduler : public sim::Scheduler {
 public:
  explicit MorpheusScheduler(MorpheusConfig config = {});

  std::string name() const override { return "Morpheus"; }
  void on_workflow_arrival(const workload::Workflow& workflow,
                           const std::vector<sim::JobUid>& node_uids,
                           double now_s) override;
  std::vector<sim::Allocation> allocate(
      const sim::ClusterState& state) override;

  /// Inferred per-job deadline, for tests.
  double inferred_deadline(sim::JobUid uid) const {
    return inferred_deadline_by_uid_.at(uid);
  }

 private:
  MorpheusConfig config_;
  std::map<sim::JobUid, double> inferred_deadline_by_uid_;
};

}  // namespace flowtime::sched
