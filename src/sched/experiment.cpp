#include "sched/experiment.h"

#include <cmath>
#include <cstdlib>

#include "cluster/federated_scheduler.h"
#include "runtime/concurrent_scheduler.h"
#include "sched/baselines.h"
#include "sched/cora.h"
#include "sched/morpheus.h"
#include "sched/rayon.h"
#include "util/logging.h"

namespace flowtime::sched {

namespace {

std::unique_ptr<sim::Scheduler> make_flowtime(
    core::FlowTimeConfig flowtime, const ExperimentConfig& config) {
  if (config.cells > 1) {
    cluster::FederatedConfig federated;
    federated.flowtime = std::move(flowtime);
    federated.partition.cells = config.cells;
    if (!cluster::parse_cell_policy(config.cell_policy,
                                    &federated.partition.policy)) {
      FT_LOG(kError) << "unknown cell policy: " << config.cell_policy;
      std::abort();
    }
    federated.parallel_solve = config.async_replan;
    federated.solver_threads = config.runtime_threads;
    federated.cell_solve_deadline_ms = config.cell_solve_deadline_ms;
    return std::make_unique<cluster::FederatedScheduler>(
        std::move(federated));
  }
  if (!config.async_replan) {
    return std::make_unique<core::FlowTimeScheduler>(std::move(flowtime));
  }
  runtime::RuntimeConfig rt;
  rt.flowtime = std::move(flowtime);
  rt.async_replan = true;
  rt.barrier_mode = config.async_barrier;
  rt.solver_threads = config.runtime_threads;
  return std::make_unique<runtime::ConcurrentScheduler>(std::move(rt));
}

}  // namespace

std::unique_ptr<sim::Scheduler> make_scheduler(
    const std::string& name, const ExperimentConfig& config) {
  if (name == "FlowTime") {
    return make_flowtime(config.flowtime, config);
  }
  if (name == "FlowTime_no_ds") {
    core::FlowTimeConfig no_slack = config.flowtime;
    no_slack.deadline_slack_s = 0.0;
    return make_flowtime(std::move(no_slack), config);
  }
  if (name == "CORA") return std::make_unique<CoraScheduler>();
  if (name == "EDF") {
    core::DecompositionConfig decomposition;
    decomposition.cluster = config.flowtime.cluster;
    decomposition.mode = config.flowtime.decomposition_mode;
    return std::make_unique<EdfScheduler>(decomposition);
  }
  if (name == "Fair") return std::make_unique<FairScheduler>();
  if (name == "FIFO") return std::make_unique<FifoScheduler>();
  if (name == "Rayon") {
    core::DecompositionConfig decomposition;
    decomposition.cluster = config.flowtime.cluster;
    decomposition.mode = config.flowtime.decomposition_mode;
    decomposition.cluster.slot_seconds = config.sim.cluster.slot_seconds;
    return std::make_unique<RayonScheduler>(decomposition);
  }
  if (name == "Morpheus") {
    MorpheusConfig morpheus;
    morpheus.cluster = config.flowtime.cluster;
    return std::make_unique<MorpheusScheduler>(morpheus);
  }
  FT_LOG(kError) << "unknown scheduler: " << name;
  std::abort();
}

sim::JobDeadlines milestone_deadlines(const workload::Scenario& scenario,
                                      const ExperimentConfig& config) {
  core::DecompositionConfig decomposition_config;
  decomposition_config.cluster = config.flowtime.cluster;
  decomposition_config.mode = config.flowtime.decomposition_mode;
  const core::DeadlineDecomposer decomposer(decomposition_config);
  // In the paper's formulation deadlines are slot indices, so milestones
  // are evaluated at slot granularity: a fractional decomposed deadline
  // rounds up to the end of its slot (completions land on slot boundaries).
  const double slot = config.sim.cluster.slot_seconds;
  sim::JobDeadlines deadlines;
  for (const workload::Workflow& w : scenario.workflows) {
    const auto result = decomposer.decompose(w);
    for (dag::NodeId v = 0; v < w.dag.num_nodes(); ++v) {
      const double raw =
          result.ok() ? result.windows[static_cast<std::size_t>(v)].deadline_s
                      : w.deadline_s;
      deadlines[workload::WorkflowJobRef{w.id, v}] =
          std::ceil(raw / slot - 1e-9) * slot;
    }
  }
  return deadlines;
}

std::vector<SchedulerOutcome> run_comparison(
    const workload::Scenario& scenario, const ExperimentConfig& config) {
  std::vector<std::string> names = config.schedulers;
  if (names.empty()) names = {"FlowTime", "CORA", "EDF", "Fair", "FIFO"};

  const sim::JobDeadlines deadlines = milestone_deadlines(scenario, config);
  std::vector<SchedulerOutcome> outcomes;
  outcomes.reserve(names.size());
  for (const std::string& name : names) {
    std::unique_ptr<sim::Scheduler> scheduler =
        make_scheduler(name, config);
    sim::Simulator simulator(config.sim);
    SchedulerOutcome outcome;
    outcome.name = name;
    outcome.result = simulator.run(scenario, *scheduler);
    outcome.deadlines =
        sim::evaluate_deadlines(outcome.result, scenario.workflows, deadlines);
    outcome.adhoc = sim::evaluate_adhoc(outcome.result);
    const core::FlowTimeScheduler* flowtime =
        dynamic_cast<const core::FlowTimeScheduler*>(scheduler.get());
    if (auto* wrapped =
            dynamic_cast<runtime::ConcurrentScheduler*>(scheduler.get())) {
      // Events queued after the run's last allocate (final completions)
      // must be applied before reading stats.
      wrapped->drain_events();
      flowtime = &wrapped->inner();
      outcome.coalesced_events = wrapped->coalesced_events();
      outcome.stale_solves = wrapped->stale_solves();
    }
    if (auto* federated =
            dynamic_cast<cluster::FederatedScheduler*>(scheduler.get())) {
      outcome.replans = federated->replans();
      outcome.pivots = federated->total_pivots();
      outcome.migrations = federated->migrations();
      outcome.cell_overload_events = federated->overload_events();
      outcome.cell_failures = federated->cell_failures();
      outcome.failovers = federated->failovers();
      outcome.quarantines = federated->quarantines();
      outcome.cell_recoveries = federated->cell_recoveries();
    }
    if (flowtime != nullptr) {
      outcome.replans = flowtime->replans();
      outcome.replans_discarded = flowtime->replans_discarded();
      outcome.pivots = flowtime->total_pivots();
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace flowtime::sched
