#include "sched/allocation_util.h"

#include <algorithm>

namespace flowtime::sched {

namespace {
constexpr double kTol = 1e-9;
}

workload::ResourceVec desired_amount(const sim::JobView& view) {
  if (view.kind == sim::JobKind::kAdhoc || view.overrun) return view.width;
  // Ask for ceil-to-width of the remaining estimate so the last slot does
  // not over-grab.
  return workload::elementwise_min(view.width, view.remaining_estimate);
}

void grant_greedy_in_order(
    const std::vector<const sim::JobView*>& ordered_views,
    const workload::ResourceVec& capacity, bool respect_estimate,
    workload::ResourceVec& issued, std::vector<sim::Allocation>& out) {
  for (const sim::JobView* view : ordered_views) {
    if (!view->ready) continue;
    const workload::ResourceVec free =
        workload::clamp_nonnegative(workload::sub(capacity, issued));
    workload::ResourceVec want =
        respect_estimate ? desired_amount(*view) : view->width;
    // All-or-scale: a gang of tasks shrinks proportionally when the
    // remaining capacity cannot host every task.
    double fraction = 1.0;
    for (int r = 0; r < workload::kNumResources; ++r) {
      if (want[r] > kTol) fraction = std::min(fraction, free[r] / want[r]);
    }
    if (fraction <= kTol) continue;
    const workload::ResourceVec amount = workload::scale(want, fraction);
    issued = workload::add(issued, amount);
    out.push_back(sim::Allocation{view->uid, amount});
  }
}

void grant_max_min_fair(const std::vector<const sim::JobView*>& views,
                        workload::ResourceVec leftover,
                        std::vector<sim::Allocation>& out) {
  std::vector<const sim::JobView*> ready;
  for (const sim::JobView* view : views) {
    if (view->ready) ready.push_back(view);
  }
  if (ready.empty()) return;

  workload::ResourceVec total_width{};
  std::vector<workload::ResourceVec> want(ready.size());
  for (std::size_t i = 0; i < ready.size(); ++i) {
    want[i] = desired_amount(*ready[i]);
    total_width = workload::add(total_width, want[i]);
  }
  double lambda = 1.0;
  for (int r = 0; r < workload::kNumResources; ++r) {
    if (total_width[r] > kTol) {
      lambda = std::min(lambda, leftover[r] / total_width[r]);
    }
  }
  std::vector<workload::ResourceVec> grants(ready.size());
  for (std::size_t i = 0; i < ready.size(); ++i) {
    grants[i] = workload::scale(want[i], lambda);
    leftover =
        workload::clamp_nonnegative(workload::sub(leftover, grants[i]));
  }
  // FIFO sweep for the remainder (arrival order).
  std::vector<std::size_t> order(ready.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return ready[a]->arrival_s < ready[b]->arrival_s;
  });
  for (std::size_t i : order) {
    const workload::ResourceVec extra = workload::elementwise_min(
        workload::clamp_nonnegative(workload::sub(want[i], grants[i])),
        leftover);
    grants[i] = workload::add(grants[i], extra);
    leftover = workload::clamp_nonnegative(workload::sub(leftover, extra));
  }
  for (std::size_t i = 0; i < ready.size(); ++i) {
    if (!workload::is_zero(grants[i], kTol)) {
      out.push_back(sim::Allocation{ready[i]->uid, grants[i]});
    }
  }
}

}  // namespace flowtime::sched
