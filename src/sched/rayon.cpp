#include "sched/rayon.h"

#include <algorithm>
#include <cmath>

#include "sched/allocation_util.h"
#include "util/logging.h"

namespace flowtime::sched {

namespace {
constexpr double kTol = 1e-9;
}

RayonScheduler::RayonScheduler(core::DecompositionConfig decomposition)
    : decomposer_(decomposition),
      slot_seconds_(decomposition.cluster.slot_seconds) {
  capacity_per_slot_ = decomposition.cluster.capacity_per_slot();
}

workload::ResourceVec RayonScheduler::reserved_at(int slot) const {
  const auto it = agenda_.find(slot);
  return it == agenda_.end() ? workload::ResourceVec{} : it->second;
}

void RayonScheduler::book(sim::JobUid uid, int release_slot,
                          int deadline_slot,
                          const workload::ResourceVec& demand,
                          const workload::ResourceVec& width) {
  Reservation reservation;
  reservation.first_slot = release_slot;
  reservation.width = width;
  workload::ResourceVec remaining = demand;
  int slot = release_slot;
  // Earliest-fit: walk forward booking whatever fits each slot; Rayon
  // accepts lateness ("if you're late don't blame us") by booking past the
  // deadline when the window is already full.
  const int hard_stop = release_slot + 100000;  // safety valve
  while (!workload::is_zero(remaining, kTol) && slot < hard_stop) {
    const workload::ResourceVec free = workload::clamp_nonnegative(
        workload::sub(capacity_per_slot_, reserved_at(slot)));
    workload::ResourceVec take =
        workload::elementwise_min(workload::elementwise_min(free, width),
                                  remaining);
    reservation.amounts.push_back(take);
    if (!workload::is_zero(take, kTol)) {
      agenda_[slot] = workload::add(reserved_at(slot), take);
      remaining = workload::clamp_nonnegative(
          workload::sub(remaining, take));
    }
    ++slot;
  }
  (void)deadline_slot;
  reservations_[uid] = std::move(reservation);
}

void RayonScheduler::on_workflow_arrival(
    const workload::Workflow& workflow,
    const std::vector<sim::JobUid>& node_uids, double now_s) {
  const auto decomposition = decomposer_.decompose(workflow);
  const int now_slot =
      static_cast<int>(std::floor(now_s / slot_seconds_ + kTol));
  for (dag::NodeId v = 0; v < workflow.dag.num_nodes(); ++v) {
    const workload::JobSpec& spec = workflow.jobs[static_cast<std::size_t>(v)];
    double release_s = workflow.start_s;
    double deadline_s = workflow.deadline_s;
    if (decomposition) {
      release_s = decomposition.windows[static_cast<std::size_t>(v)].start_s;
      deadline_s =
          decomposition.windows[static_cast<std::size_t>(v)].deadline_s;
    }
    const int release_slot = std::max(
        now_slot,
        static_cast<int>(std::floor(release_s / slot_seconds_ + kTol)));
    const int deadline_slot = static_cast<int>(
        std::ceil(deadline_s / slot_seconds_ - kTol)) - 1;
    book(node_uids[static_cast<std::size_t>(v)], release_slot, deadline_slot,
         spec.total_demand(),
         workload::scale(spec.max_parallel_demand(), slot_seconds_));
  }
}

void RayonScheduler::release_booking(sim::JobUid uid) {
  const auto it = reservations_.find(uid);
  if (it == reservations_.end()) return;
  const Reservation& reservation = it->second;
  for (std::size_t i = 0; i < reservation.amounts.size(); ++i) {
    const int slot = reservation.first_slot + static_cast<int>(i);
    agenda_[slot] = workload::clamp_nonnegative(
        workload::sub(agenda_[slot], reservation.amounts[i]));
  }
  reservations_.erase(it);
}

void RayonScheduler::on_job_complete(sim::JobUid uid, double now_s) {
  (void)now_s;
  // Early completion: hand the unused tail of the booking back.
  release_booking(uid);
}

std::vector<sim::Allocation> RayonScheduler::allocate(
    const sim::ClusterState& state) {
  std::vector<sim::Allocation> out;
  workload::ResourceVec issued{};
  std::vector<const sim::JobView*> adhoc_views;
  std::vector<sim::JobUid> to_rebook;

  for (const sim::JobView& view : state.active) {
    if (view.kind == sim::JobKind::kAdhoc) {
      adhoc_views.push_back(&view);
      continue;
    }
    const auto it = reservations_.find(view.uid);
    if (it == reservations_.end()) continue;
    const Reservation& reservation = it->second;
    const int index = state.slot - reservation.first_slot;
    workload::ResourceVec amount{};
    if (index >= 0 && index < static_cast<int>(reservation.amounts.size())) {
      amount = reservation.amounts[static_cast<std::size_t>(index)];
    } else if (index >= static_cast<int>(reservation.amounts.size())) {
      // Booking exhausted but the job still runs (under-estimate or missed
      // slots while parents ran late): re-book the residual from now.
      to_rebook.push_back(view.uid);
    }
    if (workload::is_zero(amount, kTol)) continue;
    if (!view.ready) {
      // The reservation burns unused (Rayon has no DAG knowledge); the
      // booking slides forward implicitly via the rebooking path.
      continue;
    }
    amount = workload::elementwise_min(amount, view.width);
    amount = workload::elementwise_min(
        amount, workload::clamp_nonnegative(
                    workload::sub(state.capacity, issued)));
    issued = workload::add(issued, amount);
    out.push_back(sim::Allocation{view.uid, amount});
  }

  // Re-book exhausted jobs for the NEXT slot onwards.
  for (sim::JobUid uid : to_rebook) {
    const sim::JobView* view = nullptr;
    for (const sim::JobView& candidate : state.active) {
      if (candidate.uid == uid) {
        view = &candidate;
        break;
      }
    }
    if (view == nullptr) continue;
    release_booking(uid);
    workload::ResourceVec residual = view->overrun
                                         ? view->width
                                         : view->remaining_estimate;
    book(uid, state.slot + 1, state.slot + 1, residual, view->width);
  }

  // Best-effort jobs take the physically free capacity (not merely the
  // unbooked agenda — unconsumed reservations are lost, per Rayon), FIFO.
  std::sort(adhoc_views.begin(), adhoc_views.end(),
            [](const sim::JobView* a, const sim::JobView* b) {
              if (a->arrival_s != b->arrival_s) {
                return a->arrival_s < b->arrival_s;
              }
              return a->uid < b->uid;
            });
  grant_greedy_in_order(adhoc_views, state.capacity,
                        /*respect_estimate=*/true, issued, out);
  return out;
}

}  // namespace flowtime::sched
