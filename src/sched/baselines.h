// Baseline schedulers (paper §VII-A): FIFO, Fair and EDF.
//
// All baselines are job-level policies — none reasons about workflow
// structure beyond the readiness the simulator enforces — which is exactly
// the gap FlowTime targets.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/decomposition.h"
#include "sim/scheduler.h"

namespace flowtime::sched {

/// FIFO: all jobs, deadline-aware or not, served in arrival order at full
/// width. Deadline-oblivious (the paper's worst baseline for misses).
class FifoScheduler : public sim::Scheduler {
 public:
  std::string name() const override { return "FIFO"; }
  std::vector<sim::Allocation> allocate(
      const sim::ClusterState& state) override;
};

/// Fair: per-slot max-min fair sharing across every active job, the
/// YARN-Fair-like policy. Deadline-oblivious but interleaves everything, so
/// ad-hoc jobs do comparatively well (paper: best baseline for turnaround).
class FairScheduler : public sim::Scheduler {
 public:
  std::string name() const override { return "Fair"; }
  std::vector<sim::Allocation> allocate(
      const sim::ClusterState& state) override;
};

/// EDF: deadline jobs strictly first, ordered by deadline, at full width.
/// Per the paper's description (SII-B: EDF "may block the ad-hoc jobs as
/// long as there are deadline-aware workflows in the cluster"), ad-hoc jobs
/// receive nothing while any deadline job is incomplete; set
/// `strict_adhoc_blocking = false` for the milder leftover-sharing variant.
/// The paper's motivating strawman: near-best deadline behaviour, terrible
/// ad-hoc turnaround (Fig. 1).
///
/// Job deadlines come from the same decomposition FlowTime uses (the
/// strongest version of this baseline — with raw workflow deadlines EDF
/// would only do worse on job milestones).
class EdfScheduler : public sim::Scheduler {
 public:
  explicit EdfScheduler(core::DecompositionConfig decomposition = {},
                        bool strict_adhoc_blocking = true);

  std::string name() const override { return "EDF"; }
  void on_workflow_arrival(const workload::Workflow& workflow,
                           const std::vector<sim::JobUid>& node_uids,
                           double now_s) override;
  std::vector<sim::Allocation> allocate(
      const sim::ClusterState& state) override;

 private:
  core::DeadlineDecomposer decomposer_;
  bool strict_adhoc_blocking_;
  std::map<sim::JobUid, double> deadline_by_uid_;
};

}  // namespace flowtime::sched
