// Experiment harness: runs one scenario against FlowTime and the baselines
// and evaluates everyone against the same milestones, the way the paper's
// §VII-B.1 comparison works.
//
// The per-job deadlines used for Fig. 4(a)/(b)-style evaluation are the
// decomposed workflow milestones. They are computed once (by a decomposition
// pass identical to FlowTime's) and applied to every scheduler, so no
// scheduler is judged by a yardstick another one invented.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/flowtime_scheduler.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace flowtime::sched {

struct SchedulerOutcome {
  std::string name;
  sim::SimResult result;
  sim::DeadlineReport deadlines;
  sim::AdhocReport adhoc;
  int replans = 0;                     // FlowTime only (adopted plans)
  int replans_discarded = 0;           // FlowTime only (stale, unadopted)
  std::int64_t pivots = 0;             // FlowTime only
  std::int64_t coalesced_events = 0;   // async runtime only
  std::int64_t stale_solves = 0;       // async runtime only
  int migrations = 0;                  // federated runs only
  int cell_overload_events = 0;        // federated runs only
  int cell_failures = 0;               // federated runs only (fault_cell)
  int failovers = 0;                   // federated runs only (fault_cell)
  int quarantines = 0;                 // federated runs only (fault_cell)
  int cell_recoveries = 0;             // federated runs only (fault_cell)
};

struct ExperimentConfig {
  sim::SimConfig sim;
  core::FlowTimeConfig flowtime;
  /// Schedulers to run, by name. Known names: FlowTime, FlowTime_no_ds,
  /// CORA, EDF, Fair, FIFO, Morpheus, Rayon. Empty = the paper's Fig. 4
  /// set (FlowTime, CORA, EDF, Fair, FIFO).
  std::vector<std::string> schedulers;
  /// Run the FlowTime variants behind the concurrent runtime: events are
  /// queued and the LP solve runs on a background thread (DESIGN.md §11).
  /// Baselines are unaffected (they have no solver to move).
  bool async_replan = false;
  /// With async_replan: wait for every solve before serving its slot, so
  /// the run is deterministic (plan-for-plan equal to the sync path).
  bool async_barrier = false;
  /// Solver threads for the concurrent runtime.
  int runtime_threads = 1;
  /// Shard the cluster into this many cells and run the FlowTime variants
  /// federated (cluster::FederatedScheduler): per-cell lexmin plans, greedy
  /// cross-cell routing/migration. 1 = plain single-cell FlowTime. With
  /// async_replan the per-cell solves run concurrently on a SolverPool
  /// (runtime_threads workers; 0 = one per cell).
  int cells = 1;
  /// Partition policy for cells > 1: "balanced" or "round_robin".
  std::string cell_policy = "balanced";
  /// Per-cell solve deadline (wall ms) for federated runs; 0 = unlimited.
  /// A solve that misses the deadline degrades via the escalation ladder;
  /// the health machine only reacts to injected cell faults.
  double cell_solve_deadline_ms = 0.0;

  ExperimentConfig() { flowtime.cluster = sim.cluster; }
};

/// Builds a scheduler by name; terminates on unknown names.
std::unique_ptr<sim::Scheduler> make_scheduler(
    const std::string& name, const ExperimentConfig& config);

/// Decomposed per-job deadlines for the scenario (the shared milestones).
sim::JobDeadlines milestone_deadlines(const workload::Scenario& scenario,
                                      const ExperimentConfig& config);

/// Runs every configured scheduler over the scenario.
std::vector<SchedulerOutcome> run_comparison(
    const workload::Scenario& scenario, const ExperimentConfig& config);

}  // namespace flowtime::sched
