#include "sched/morpheus.h"

#include <algorithm>
#include <cmath>

#include "dag/critical_path.h"
#include "sched/allocation_util.h"

namespace flowtime::sched {

namespace {
constexpr double kTol = 1e-9;
}

MorpheusScheduler::MorpheusScheduler(MorpheusConfig config)
    : config_(std::move(config)) {}

void MorpheusScheduler::on_workflow_arrival(
    const workload::Workflow& workflow,
    const std::vector<sim::JobUid>& node_uids, double now_s) {
  (void)now_s;
  // Reconstruct the history: earliest finish per node on an uncontended
  // cluster = critical-path earliest start + own minimum runtime.
  std::vector<double> weight;
  weight.reserve(workflow.jobs.size());
  for (const workload::JobSpec& job : workflow.jobs) {
    weight.push_back(job.min_runtime_s(config_.cluster.capacity));
  }
  const auto cp = dag::critical_path(workflow.dag, weight);
  for (dag::NodeId v = 0; v < workflow.dag.num_nodes(); ++v) {
    const double offset =
        cp ? cp->path_until[static_cast<std::size_t>(v)]
           : workflow.deadline_s - workflow.start_s;
    inferred_deadline_by_uid_[node_uids[static_cast<std::size_t>(v)]] =
        workflow.start_s + config_.slo_padding * offset;
  }
}

std::vector<sim::Allocation> MorpheusScheduler::allocate(
    const sim::ClusterState& state) {
  // Reservation pass: deadline jobs, most urgent inferred SLO first, each
  // paced to its SLO.
  std::vector<const sim::JobView*> deadline_views;
  std::vector<const sim::JobView*> adhoc_views;
  for (const sim::JobView& view : state.active) {
    (view.kind == sim::JobKind::kDeadline ? deadline_views : adhoc_views)
        .push_back(&view);
  }
  std::sort(deadline_views.begin(), deadline_views.end(),
            [this](const sim::JobView* a, const sim::JobView* b) {
              const double da = inferred_deadline_by_uid_.at(a->uid);
              const double db = inferred_deadline_by_uid_.at(b->uid);
              if (da != db) return da < db;
              return a->uid < b->uid;
            });
  std::sort(adhoc_views.begin(), adhoc_views.end(),
            [](const sim::JobView* a, const sim::JobView* b) {
              if (a->arrival_s != b->arrival_s) {
                return a->arrival_s < b->arrival_s;
              }
              return a->uid < b->uid;
            });

  std::vector<sim::Allocation> out;
  workload::ResourceVec issued{};
  for (const sim::JobView* view : deadline_views) {
    if (!view->ready) continue;
    const double slo = inferred_deadline_by_uid_.at(view->uid);
    const double slots_left =
        std::max(1.0, (slo - state.now_s) / state.slot_seconds);
    workload::ResourceVec rate{};
    for (int r = 0; r < workload::kNumResources; ++r) {
      const double remaining =
          view->overrun ? view->width[r] : view->remaining_estimate[r];
      rate[r] = std::min(view->width[r], remaining / slots_left);
    }
    rate = workload::elementwise_min(
        rate, workload::clamp_nonnegative(
                  workload::sub(state.capacity, issued)));
    if (workload::is_zero(rate, kTol)) continue;
    issued = workload::add(issued, rate);
    out.push_back(sim::Allocation{view->uid, rate});
  }
  grant_greedy_in_order(adhoc_views, state.capacity,
                        /*respect_estimate=*/true, issued, out);
  return out;
}

}  // namespace flowtime::sched
