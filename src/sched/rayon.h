// Rayon-like reservation scheduler (Curino et al., SoCC 2014 [4] —
// "Reservation-based Scheduling: If You're Late Don't Blame Us!").
//
// Rayon admits deadline work by *reservation*: when a job with a known
// deadline arrives, it books concrete capacity in a cluster agenda — as
// early as feasible — and at runtime the job consumes exactly its booked
// share; best-effort work runs in whatever the agenda left free. The
// paper's critique (§I) is that Rayon needs per-job deadlines as input;
// like our EDF baseline it receives the decomposed milestones, making it
// the strongest honest version of itself.
//
// Differences from FlowTime this baseline exposes:
//   * greedy earliest-fit booking instead of a global lexmin LP — the
//     agenda's profile is front-loaded, not flat;
//   * reservations are made per job at arrival, never re-balanced when
//     other workflows arrive later (no re-planning).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/decomposition.h"
#include "sim/scheduler.h"

namespace flowtime::sched {

class RayonScheduler : public sim::Scheduler {
 public:
  /// Slot length comes from `decomposition.cluster` — one ClusterSpec
  /// carries the whole cluster shape.
  explicit RayonScheduler(core::DecompositionConfig decomposition = {});

  std::string name() const override { return "Rayon"; }
  void on_workflow_arrival(const workload::Workflow& workflow,
                           const std::vector<sim::JobUid>& node_uids,
                           double now_s) override;
  void on_job_complete(sim::JobUid uid, double now_s) override;
  std::vector<sim::Allocation> allocate(
      const sim::ClusterState& state) override;

  /// Total slots booked in the agenda (introspection for tests).
  int reserved_slots() const { return static_cast<int>(agenda_.size()); }

 private:
  struct Reservation {
    // Booked amounts from booking_first_slot on.
    int first_slot = 0;
    std::vector<workload::ResourceVec> amounts;
    workload::ResourceVec width{};
    bool complete = false;
  };

  /// Books `demand` for a job as early as possible within
  /// [release_slot, +inf), preferring slots before `deadline_slot`.
  void book(sim::JobUid uid, int release_slot, int deadline_slot,
            const workload::ResourceVec& demand,
            const workload::ResourceVec& width);

  workload::ResourceVec reserved_at(int slot) const;
  void release_booking(sim::JobUid uid);

  core::DeadlineDecomposer decomposer_;
  workload::ResourceVec capacity_per_slot_{};
  double slot_seconds_ = 10.0;

  std::map<int, workload::ResourceVec> agenda_;  // slot -> total reserved
  std::map<sim::JobUid, Reservation> reservations_;
};

}  // namespace flowtime::sched
