#include "sched/cora.h"

#include <algorithm>
#include <cmath>

#include "sched/allocation_util.h"

namespace flowtime::sched {

namespace {
constexpr double kTol = 1e-9;
}

CoraScheduler::CoraScheduler(CoraConfig config) : config_(config) {}

void CoraScheduler::on_workflow_arrival(
    const workload::Workflow& workflow,
    const std::vector<sim::JobUid>& node_uids, double now_s) {
  (void)now_s;
  for (sim::JobUid uid : node_uids) {
    workflow_deadline_by_uid_[uid] = workflow.deadline_s;
  }
}

std::vector<sim::Allocation> CoraScheduler::allocate(
    const sim::ClusterState& state) {
  std::vector<sim::Allocation> out;
  workload::ResourceVec issued{};

  // Pass 1: pacing rates for deadline jobs (deadline-critical utilities).
  std::map<sim::JobUid, workload::ResourceVec> paced;
  for (const sim::JobView& view : state.active) {
    if (view.kind != sim::JobKind::kDeadline || !view.ready) continue;
    const double deadline = workflow_deadline_by_uid_.at(view.uid);
    const double slots_left =
        std::max(1.0, (deadline - state.now_s) / state.slot_seconds);
    workload::ResourceVec rate{};
    for (int r = 0; r < workload::kNumResources; ++r) {
      const double remaining =
          view.overrun ? view.width[r] : view.remaining_estimate[r];
      rate[r] = std::min(view.width[r],
                         config_.pacing_boost * remaining / slots_left);
    }
    rate = workload::elementwise_min(
        rate, workload::clamp_nonnegative(
                  workload::sub(state.capacity, issued)));
    if (workload::is_zero(rate, kTol)) continue;
    issued = workload::add(issued, rate);
    paced[view.uid] = rate;
  }

  // Pass 2: leftovers max-min across everyone still wanting more.
  std::vector<sim::JobView> residual_views;
  residual_views.reserve(state.active.size());
  for (const sim::JobView& view : state.active) {
    if (!view.ready) continue;
    sim::JobView residual = view;
    const auto it = paced.find(view.uid);
    if (it != paced.end()) {
      residual.width = workload::clamp_nonnegative(
          workload::sub(view.width, it->second));
      if (view.kind == sim::JobKind::kDeadline && !view.overrun) {
        residual.remaining_estimate = workload::clamp_nonnegative(
            workload::sub(view.remaining_estimate, it->second));
      }
    }
    residual_views.push_back(residual);
  }
  std::vector<const sim::JobView*> pointers;
  pointers.reserve(residual_views.size());
  for (const sim::JobView& view : residual_views) pointers.push_back(&view);
  std::vector<sim::Allocation> extra;
  grant_max_min_fair(pointers,
                     workload::clamp_nonnegative(
                         workload::sub(state.capacity, issued)),
                     extra);

  // Merge paced + extra.
  std::map<sim::JobUid, workload::ResourceVec> merged;
  for (const auto& [uid, amount] : paced) merged[uid] = amount;
  for (const sim::Allocation& a : extra) {
    merged[a.uid] = workload::add(merged[a.uid], a.amount);
  }
  out.reserve(merged.size());
  for (const auto& [uid, amount] : merged) {
    out.push_back(sim::Allocation{uid, amount});
  }
  return out;
}

}  // namespace flowtime::sched
