// Federated FlowTime: cluster sharding with a cross-cell placement
// coordinator (DESIGN.md §13).
//
// The Stage-2 lexmin LP solves over the whole cluster, so its cost grows
// superlinearly with machine count. Federation partitions the cluster into
// N cells (cluster/partition.h), runs one full FlowTimeScheduler per cell —
// lexmin *within* a cell — and adds a greedy coordinator *across* cells:
// workflow arrivals are bin-packed onto the cell with the lowest residual
// normalized load among those whose admission check accepts the deadline
// (prune-infeasible-first), ad-hoc jobs go to the cell with the least ad-hoc
// pressure, and workflows migrate off a cell whose degradation ladder
// engages or whose plan overloads/extends deadlines. Per-cell replans are
// independent, so they run concurrently on a runtime::SolverPool; each cell
// has its own warm cache and a 1/N slice of the solver budget.
//
// Invariant: with cells = 1 the coordinator is a pass-through — same event
// order, same replan sequence, same serve calls — so the federated plan is
// byte-identical to a plain FlowTimeScheduler's. Tests pin this.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/partition.h"
#include "core/admission.h"
#include "core/flowtime_scheduler.h"
#include "runtime/solver_pool.h"
#include "sim/scheduler.h"

namespace flowtime::cluster {

struct FederatedConfig {
  /// Per-cell scheduler template. `flowtime.cluster` is the TOTAL cluster;
  /// the partitioner derives each cell's slice, and solver budgets
  /// (`solver_budget_ms`, `solver_pivot_budget`) are divided evenly across
  /// cells so the federation spends the same solve allowance in aggregate.
  core::FlowTimeConfig flowtime;
  PartitionConfig partition;
  /// Largest fraction of the whole cluster one tenant's in-flight deadline
  /// workflows may claim (demand averaged over each workflow's window).
  /// Arrivals over quota are deferred — routed to no cell — until earlier
  /// work of the same tenant completes. >= 1 disables quotas.
  double tenant_quota_fraction = 1.0;
  /// Solve dirty cells concurrently on a SolverPool instead of one after
  /// another. Plans are unchanged either way (each cell's solve reads only
  /// its own inputs); only wall clock differs. Adoption stays in cell order
  /// on the serving thread.
  bool parallel_solve = false;
  /// Worker threads for parallel_solve; 0 = one per cell, capped at 16.
  int solver_threads = 0;
  /// Move workflows off overloaded cells (no effect with one cell).
  bool enable_migration = true;
  /// A cell whose last adopted plan exceeded this peak normalized load is
  /// considered a hotspot (1.0 = exactly full).
  double overload_threshold = 1.2;
  int max_migrations_per_slot = 1;
  /// A migrated workflow is pinned to its new cell for this many slots, so
  /// load oscillations do not bounce it between cells.
  int migration_cooldown_slots = 30;
  /// Route new workflows only to cells whose admission check accepts the
  /// deadline; fall back to the least-loaded cell (and count it) when every
  /// cell rejects. Off = pure least-load routing.
  bool admission_aware_routing = true;
};

/// One cell: a FlowTimeScheduler scoped to the cell's capacity slice, the
/// cell's admission controller (the routing oracle), and the solver-side
/// state an external replan driver needs (warm cache, pending solve).
class CellScheduler {
 public:
  CellScheduler(CellSpec spec, core::FlowTimeConfig config);

  const CellSpec& spec() const { return spec_; }
  core::FlowTimeScheduler& scheduler() { return scheduler_; }
  const core::FlowTimeScheduler& scheduler() const { return scheduler_; }
  core::AdmissionController& admission() { return admission_; }
  core::PlacementWarmCache& warm_cache() { return warm_cache_; }

  /// Peak normalized load of the cell's last adopted plan (0 before any).
  double last_peak_load() const;
  /// Hotspot test: degradation ladder engaged, last plan's peak above the
  /// threshold, or the last plan had to extend deadline windows (projected
  /// breach).
  bool overloaded(double threshold) const;

  /// Ad-hoc pressure bookkeeping for routing (count of live ad-hoc jobs).
  void adhoc_arrived() { ++adhoc_active_; }
  void adhoc_finished() { adhoc_active_ = std::max(adhoc_active_ - 1, 0); }
  int adhoc_active() const { return adhoc_active_; }

  /// Overload-transition latch, so `cluster.cell_overload_events` counts
  /// transitions into overload rather than every overloaded slot.
  bool latch_overload(bool now_overloaded);

 private:
  CellSpec spec_;
  core::FlowTimeScheduler scheduler_;
  core::AdmissionController admission_;
  core::PlacementWarmCache warm_cache_;
  int adhoc_active_ = 0;
  bool was_overloaded_ = false;
};

/// The coordinator. Implements the plain sim::Scheduler typed-event
/// interface, so the simulator (and the concurrent runtime) drive it like
/// any single scheduler; internally it routes events to cells, drives the
/// per-cell begin/solve/finish replan cycle (serially or on a SolverPool),
/// and merges the per-cell allocations into one vector.
class FederatedScheduler : public sim::Scheduler {
 public:
  explicit FederatedScheduler(FederatedConfig config = {});
  ~FederatedScheduler() override;

  std::string name() const override { return "FlowTime"; }
  const workload::ClusterSpec* cluster_spec() const override {
    return &config_.flowtime.cluster;
  }

  void on_event(const sim::SchedulerEvent& event) override;
  std::vector<sim::Allocation> allocate(
      const sim::ClusterState& state) override;

  int num_cells() const { return static_cast<int>(cells_.size()); }
  const CellScheduler& cell(int i) const { return *cells_[i]; }
  /// Cell currently owning a workflow, or -1 (unknown / quota-deferred).
  int cell_of_workflow(int workflow_id) const;

  // Aggregate statistics across cells (comparable to the accessors of a
  // single FlowTimeScheduler).
  int replans() const;
  std::int64_t total_pivots() const;
  bool degraded_mode() const;
  int degraded_replans() const;
  int truncated_replans() const;
  int decomposition_fallbacks() const;

  int migrations() const { return migrations_; }
  int overload_events() const { return overload_events_; }
  int quota_deferrals() const { return quota_deferrals_; }
  int infeasible_routes() const { return infeasible_routes_; }

  /// Wall seconds of each replan *round* (one allocate() that solved at
  /// least one cell): max over concurrently solved cells under
  /// parallel_solve, sum under serial. Zeros when obs is disabled. The
  /// sharding bench derives its p50/p99 from this.
  const std::vector<double>& replan_round_wall_s() const {
    return replan_round_wall_s_;
  }

 private:
  struct WorkflowInfo {
    std::shared_ptr<const workload::Workflow> workflow;
    std::vector<sim::JobUid> node_uids;
    std::vector<bool> complete;  // per DAG node
    int cell = -1;               // -1 = quota-deferred, owned by no cell
    int incomplete_jobs = 0;
    double quota_share = 0.0;  // this workflow's claim on its tenant quota
    int last_migration_slot = -1000000;
  };

  void handle_workflow_arrival(const sim::WorkflowArrivalEvent& arrival);
  /// Places a known workflow on a cell: delivers the arrival (and any
  /// already-complete jobs), registers uids, commits admission. `forced`
  /// bypasses the feasibility gate (migration / deferred re-route).
  void place_workflow(int workflow_id, int cell, double now_s, bool forced);
  /// Bin-pack routing: least projected peak load among admitting cells,
  /// falling back to least-loaded when all reject. Returns the cell id.
  int route_workflow(const workload::Workflow& workflow, double now_s);
  void handle_job_complete(const sim::JobCompleteEvent& event);
  /// Re-routes quota-deferred workflows whose tenant dropped under quota.
  void route_deferred(double now_s);
  /// One migration round (allocate-time): move up to
  /// `max_migrations_per_slot` workflows off overloaded cells.
  void run_migrations(const sim::ClusterState& state);
  void migrate_workflow(int workflow_id, int from, int to, double now_s,
                        int slot);
  /// Splits the global snapshot into per-cell snapshots (views of jobs the
  /// cell owns, capacity scaled by the cell's fraction), preserving view
  /// order. Views of deferred workflows are dropped — they get nothing.
  std::vector<sim::ClusterState> split_state(
      const sim::ClusterState& state) const;
  /// Runs the begin/solve/finish cycle for every dirty cell (serially or on
  /// the pool) and records the round's wall time.
  void replan_dirty_cells(const std::vector<sim::ClusterState>& cell_states,
                          double now_s);
  double tenant_usage(int tenant) const;
  double quota_share(const workload::Workflow& workflow) const;

  FederatedConfig config_;
  std::vector<std::unique_ptr<CellScheduler>> cells_;
  std::unique_ptr<runtime::SolverPool> pool_;

  std::map<sim::JobUid, int> cell_of_uid_;
  std::map<sim::JobUid, int> workflow_of_uid_;   // deadline uids only
  std::map<int, WorkflowInfo> workflows_;        // by workflow id
  std::map<int, int> tenant_of_workflow_;        // workflow id -> tenant
  std::map<int, double> tenant_usage_;           // tenant -> summed shares
  std::vector<int> deferred_;                    // workflow ids, FIFO

  int migrations_ = 0;
  int overload_events_ = 0;
  int quota_deferrals_ = 0;
  int infeasible_routes_ = 0;
  std::vector<double> replan_round_wall_s_;
};

}  // namespace flowtime::cluster
