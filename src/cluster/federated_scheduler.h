// Federated FlowTime: cluster sharding with a cross-cell placement
// coordinator (DESIGN.md §13).
//
// The Stage-2 lexmin LP solves over the whole cluster, so its cost grows
// superlinearly with machine count. Federation partitions the cluster into
// N cells (cluster/partition.h), runs one full FlowTimeScheduler per cell —
// lexmin *within* a cell — and adds a greedy coordinator *across* cells:
// workflow arrivals are bin-packed onto the cell with the lowest residual
// normalized load among those whose admission check accepts the deadline
// (prune-infeasible-first), ad-hoc jobs go to the cell with the least ad-hoc
// pressure, and workflows migrate off a cell whose degradation ladder
// engages or whose plan overloads/extends deadlines. Per-cell replans are
// independent, so they run concurrently on a runtime::SolverPool; each cell
// has its own warm cache and a 1/N slice of the solver budget.
//
// Invariant: with cells = 1 the coordinator is a pass-through — same event
// order, same replan sequence, same serve calls — so the federated plan is
// byte-identical to a plain FlowTimeScheduler's. Tests pin this.
//
// Cell fault tolerance (DESIGN.md §14): the coordinator treats each cell as
// a process that can crash, hang, flap, or lose its solver (the fault_cell
// chaos family). A per-cell health state machine — healthy → suspect →
// quarantined — is driven by observed failures only (missed heartbeats
// while a cell is down, preempted solves): after K consecutive failures the
// circuit breaker trips, the cell leaves the routing set and its incomplete
// workflows fail over to surviving admitting cells via the migration path
// (forget + forced re-admission, completed work re-credited,
// ReplanCause::kFailover). Re-admission is probe-based with exponential,
// deterministically jittered backoff, so flapping cells earn growing
// quarantine windows. With no cell faults none of this machinery acts, and
// runs stay byte-identical to the pre-fault-tolerance coordinator.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/partition.h"
#include "core/admission.h"
#include "core/flowtime_scheduler.h"
#include "fault/plan.h"
#include "obs/span.h"
#include "runtime/solver_pool.h"
#include "sim/scheduler.h"
#include "util/backoff.h"

namespace flowtime::cluster {

struct FederatedConfig {
  /// Per-cell scheduler template. `flowtime.cluster` is the TOTAL cluster;
  /// the partitioner derives each cell's slice, and solver budgets
  /// (`solver_budget_ms`, `solver_pivot_budget`) are divided evenly across
  /// cells so the federation spends the same solve allowance in aggregate.
  core::FlowTimeConfig flowtime;
  PartitionConfig partition;
  /// Largest fraction of the whole cluster one tenant's in-flight deadline
  /// workflows may claim (demand averaged over each workflow's window).
  /// Arrivals over quota are deferred — routed to no cell — until earlier
  /// work of the same tenant completes. >= 1 disables quotas.
  double tenant_quota_fraction = 1.0;
  /// Solve dirty cells concurrently on a SolverPool instead of one after
  /// another. Plans are unchanged either way (each cell's solve reads only
  /// its own inputs); only wall clock differs. Adoption stays in cell order
  /// on the serving thread.
  bool parallel_solve = false;
  /// Worker threads for parallel_solve; 0 = one per cell, capped at 16.
  int solver_threads = 0;
  /// Move workflows off overloaded cells (no effect with one cell).
  bool enable_migration = true;
  /// A cell whose last adopted plan exceeded this peak normalized load is
  /// considered a hotspot (1.0 = exactly full).
  double overload_threshold = 1.2;
  int max_migrations_per_slot = 1;
  /// A migrated workflow is pinned to its new cell for this many slots, so
  /// load oscillations do not bounce it between cells.
  int migration_cooldown_slots = 30;
  /// Route new workflows only to cells whose admission check accepts the
  /// deadline; fall back to the least-loaded cell (and count it) when every
  /// cell rejects. Off = pure least-load routing.
  bool admission_aware_routing = true;

  // --- Cell fault tolerance (DESIGN.md §14) ------------------------------
  /// Wall-clock ceiling (ms) on one cell's solve, merged into the solve
  /// budget at begin_replan (tightest wins) so a slow shard degrades via
  /// the escalation ladder instead of stalling the round. 0 = off, keeping
  /// purely event-driven runs bit-deterministic.
  double cell_solve_deadline_ms = 0.0;
  /// Circuit breaker K: consecutive observed failures (missed heartbeats
  /// while the cell is down, preempted solves) before the cell is
  /// quarantined and its incomplete workflows evacuated. Crashes quarantine
  /// immediately — a dead connection is unambiguous, a timeout is not.
  int quarantine_after_failures = 3;
  /// Probe-based re-admission: a quarantined cell is re-probed after a
  /// backoff that grows exponentially per failed probe, with deterministic
  /// seeded jitter (seeded from partition.seed and the cell id), so
  /// flapping cells earn growing quarantine windows.
  double probe_backoff_base_slots = 2.0;
  double probe_backoff_multiplier = 2.0;
  double probe_backoff_cap_slots = 64.0;
  double probe_backoff_jitter = 0.25;
  /// Slots of uninterrupted health after re-admission before the probe
  /// backoff resets to its base (earlier relapses keep the longer delays).
  int backoff_reset_slots = 60;
};

/// Coordinator-observed health of one cell. Healthy cells are in the
/// routing set; a suspect cell has failures pending but keeps its work; a
/// quarantined cell tripped the circuit breaker — its workflows were
/// evacuated and it re-enters only through a successful probe.
enum class CellHealth { kHealthy, kSuspect, kQuarantined };

const char* to_string(CellHealth health);

/// One cell: a FlowTimeScheduler scoped to the cell's capacity slice, the
/// cell's admission controller (the routing oracle), and the solver-side
/// state an external replan driver needs (warm cache, pending solve).
class CellScheduler {
 public:
  CellScheduler(CellSpec spec, core::FlowTimeConfig config,
                util::BackoffConfig probe_backoff = {});

  const CellSpec& spec() const { return spec_; }
  core::FlowTimeScheduler& scheduler() { return *scheduler_; }
  const core::FlowTimeScheduler& scheduler() const { return *scheduler_; }
  core::AdmissionController& admission() { return *admission_; }
  core::PlacementWarmCache& warm_cache() { return *warm_cache_; }

  /// Crash recovery: rebuilds the scheduler, admission ledger and warm
  /// cache from the stored config — everything a real shard process holds
  /// in memory and loses when it dies. Routing and health bookkeeping live
  /// in the coordinator and survive.
  void reset();

  /// Peak normalized load of the cell's last adopted plan (0 before any).
  double last_peak_load() const;
  /// Hotspot test: degradation ladder engaged, last plan's peak above the
  /// threshold, or the last plan had to extend deadline windows (projected
  /// breach).
  bool overloaded(double threshold) const;

  /// Ad-hoc pressure bookkeeping for routing (count of live ad-hoc jobs).
  void adhoc_arrived() { ++adhoc_active_; }
  void adhoc_finished() { adhoc_active_ = std::max(adhoc_active_ - 1, 0); }
  int adhoc_active() const { return adhoc_active_; }

  /// Overload-transition latch, so `cluster.cell_overload_events` counts
  /// transitions into overload rather than every overloaded slot.
  bool latch_overload(bool now_overloaded);

  // --- Health state (owned here, driven by the coordinator) --------------
  CellHealth health() const { return health_; }
  void set_health(CellHealth health) { health_ = health; }
  /// Down = an injected crash/hang/flap phase is active: the shard serves
  /// nothing and misses heartbeats. Distinct from quarantine, which is the
  /// coordinator's verdict and outlives the fault until a probe passes.
  bool down() const { return down_; }
  void set_down(bool down, fault::CellFaultMode mode) {
    down_ = down;
    down_mode_ = mode;
    arm_cancel();
  }
  fault::CellFaultMode down_mode() const { return down_mode_; }
  /// Solver-broken = every solve attempt is preempted (fault_cell mode
  /// `solver`); the cell still serves its last plan and answers heartbeats.
  bool solver_broken() const { return solver_broken_; }
  void set_solver_broken(bool broken) {
    solver_broken_ = broken;
    arm_cancel();
  }
  /// Cooperative-preemption token handed to PendingReplan::cancel while a
  /// solver fault or downtime is active; lp::SolveBudget polls it between
  /// pivots, so injected solve failures are deterministic (no wall clocks).
  const std::atomic<bool>* cancel_flag() const { return &cancel_; }

  int consecutive_failures() const { return consecutive_failures_; }
  void count_failure() { ++consecutive_failures_; }
  void clear_failures() { consecutive_failures_ = 0; }

  util::Backoff& probe_backoff() { return probe_backoff_; }
  int probe_at_slot() const { return probe_at_slot_; }
  void set_probe_at_slot(int slot) { probe_at_slot_ = slot; }
  int healthy_since_slot() const { return healthy_since_slot_; }
  void set_healthy_since_slot(int slot) { healthy_since_slot_ = slot; }
  obs::SpanId quarantine_span = obs::kNoSpan;

 private:
  void arm_cancel() {
    cancel_.store(down_ || solver_broken_, std::memory_order_relaxed);
  }

  CellSpec spec_;
  core::FlowTimeConfig config_;  ///< kept verbatim for reset()
  std::unique_ptr<core::FlowTimeScheduler> scheduler_;
  std::unique_ptr<core::AdmissionController> admission_;
  std::unique_ptr<core::PlacementWarmCache> warm_cache_;
  int adhoc_active_ = 0;
  bool was_overloaded_ = false;

  CellHealth health_ = CellHealth::kHealthy;
  bool down_ = false;
  fault::CellFaultMode down_mode_ = fault::CellFaultMode::kCrash;
  bool solver_broken_ = false;
  std::atomic<bool> cancel_{false};
  int consecutive_failures_ = 0;
  util::Backoff probe_backoff_;
  int probe_at_slot_ = -1;
  int healthy_since_slot_ = -1;
};

/// The coordinator. Implements the plain sim::Scheduler typed-event
/// interface, so the simulator (and the concurrent runtime) drive it like
/// any single scheduler; internally it routes events to cells, drives the
/// per-cell begin/solve/finish replan cycle (serially or on a SolverPool),
/// and merges the per-cell allocations into one vector.
class FederatedScheduler : public sim::Scheduler {
 public:
  explicit FederatedScheduler(FederatedConfig config = {});
  ~FederatedScheduler() override;

  std::string name() const override { return "FlowTime"; }
  const workload::ClusterSpec* cluster_spec() const override {
    return &config_.flowtime.cluster;
  }

  void on_event(const sim::SchedulerEvent& event) override;
  std::vector<sim::Allocation> allocate(
      const sim::ClusterState& state) override;

  int num_cells() const { return static_cast<int>(cells_.size()); }
  const CellScheduler& cell(int i) const { return *cells_[i]; }
  /// Cell currently owning a workflow, or -1 (unknown / quota-deferred).
  int cell_of_workflow(int workflow_id) const;

  // Aggregate statistics across cells (comparable to the accessors of a
  // single FlowTimeScheduler).
  int replans() const;
  std::int64_t total_pivots() const;
  bool degraded_mode() const;
  int degraded_replans() const;
  int truncated_replans() const;
  int decomposition_fallbacks() const;

  int migrations() const { return migrations_; }
  int overload_events() const { return overload_events_; }
  int quota_deferrals() const { return quota_deferrals_; }
  int infeasible_routes() const { return infeasible_routes_; }

  // --- Fault-tolerance statistics (DESIGN.md §14) ------------------------
  /// Cell fault engagements observed (CellFaultEvent with active=true).
  int cell_failures() const { return cell_failures_; }
  /// Workflows evacuated off failed/quarantined cells and re-admitted.
  int failovers() const { return failovers_; }
  /// Transitions into quarantine (circuit-breaker trips and crashes).
  int quarantines() const { return quarantines_; }
  /// Probe re-admissions back into the routing set.
  int cell_recoveries() const { return cell_recoveries_; }
  /// Workflows currently waiting for any live cell (never stranded: the
  /// queue is retried every slot and drains as soon as a cell is routable).
  int pending_failover() const {
    return static_cast<int>(pending_failover_.size());
  }

  /// One entry per quarantine episode: [failed_slot, recovered_slot) with
  /// recovered_slot == -1 while the outage is still open. The failover
  /// bench derives recovery latency and per-cell downtime from this.
  struct CellOutage {
    int cell = -1;
    int failed_slot = 0;
    int recovered_slot = -1;
  };
  const std::vector<CellOutage>& outage_log() const { return outage_log_; }

  /// Wall seconds of each replan *round* (one allocate() that solved at
  /// least one cell): max over concurrently solved cells under
  /// parallel_solve, sum under serial. Zeros when obs is disabled. The
  /// sharding bench derives its p50/p99 from this.
  const std::vector<double>& replan_round_wall_s() const {
    return replan_round_wall_s_;
  }

 private:
  struct WorkflowInfo {
    std::shared_ptr<const workload::Workflow> workflow;
    std::vector<sim::JobUid> node_uids;
    std::vector<bool> complete;  // per DAG node
    int cell = -1;               // -1 = quota-deferred, owned by no cell
    int incomplete_jobs = 0;
    double quota_share = 0.0;  // this workflow's claim on its tenant quota
    int last_migration_slot = -1000000;
  };

  void handle_workflow_arrival(const sim::WorkflowArrivalEvent& arrival);
  /// Reacts to an injected cell fault engaging or lifting: crashes reset
  /// the cell and quarantine it immediately; hangs/flaps mark it down (the
  /// heartbeat path escalates); solver faults arm the preemption token.
  void handle_cell_fault(const sim::CellFaultEvent& event);
  /// Per-slot health pass: counts missed heartbeats of down cells toward
  /// the circuit breaker, runs due probes of quarantined cells, and resets
  /// probe backoffs after a stable healthy period. No-op with no faults.
  void update_cell_health(const sim::ClusterState& state);
  /// Trips the circuit breaker: quarantine the cell, open an outage,
  /// schedule the first probe, and evacuate its incomplete workflows.
  /// `state_lost` = crash semantics (the cell was reset; nothing to
  /// forget). Idempotent while already quarantined.
  void quarantine_cell(int cell, int slot, double now_s, const char* reason,
                       bool state_lost);
  /// Probe passed: the cell re-enters the routing set.
  void readmit_cell(int cell, int slot, double now_s);
  /// Moves every incomplete workflow off `cell` onto surviving admitting
  /// cells (pending_failover_ when none is live). With `state_lost` the
  /// cell's ad-hoc jobs are re-delivered elsewhere too.
  void fail_over_workflows(int cell, int slot, double now_s,
                           const char* cause, bool state_lost);
  /// Completes a failover for one workflow onto `target`.
  void place_failover(int workflow_id, int target, int slot, double now_s,
                      int from_cell, int jobs_moved, const char* cause);
  /// Retries pending_failover_/pending_adhoc_ once a cell is routable.
  void route_pending_failover(const sim::ClusterState& state);
  /// In the routing set: healthy and currently reachable.
  bool cell_routable(int cell) const;
  /// Delivers one capacity-change broadcast to a single cell (scaled slice
  /// to the scheduler, resource units to the admission ledger).
  void apply_capacity_to_cell(int cell, const sim::CapacityChangeEvent& change);
  /// Places a known workflow on a cell: delivers the arrival (and any
  /// already-complete jobs), registers uids, commits admission. `forced`
  /// bypasses the feasibility gate (migration / deferred re-route).
  void place_workflow(int workflow_id, int cell, double now_s, bool forced);
  /// Bin-pack routing: least projected peak load among admitting cells,
  /// falling back to least-loaded when all reject. Returns the cell id.
  int route_workflow(const workload::Workflow& workflow, double now_s);
  void handle_job_complete(const sim::JobCompleteEvent& event);
  /// Re-routes quota-deferred workflows whose tenant dropped under quota.
  void route_deferred(double now_s);
  /// One migration round (allocate-time): move up to
  /// `max_migrations_per_slot` workflows off overloaded cells.
  void run_migrations(const sim::ClusterState& state);
  void migrate_workflow(int workflow_id, int from, int to, double now_s,
                        int slot);
  /// Splits the global snapshot into per-cell snapshots (views of jobs the
  /// cell owns, capacity scaled by the cell's fraction), preserving view
  /// order. Views of deferred workflows are dropped — they get nothing.
  std::vector<sim::ClusterState> split_state(
      const sim::ClusterState& state) const;
  /// Runs the begin/solve/finish cycle for every dirty cell (serially or on
  /// the pool) and records the round's wall time.
  void replan_dirty_cells(const std::vector<sim::ClusterState>& cell_states,
                          double now_s);
  double tenant_usage(int tenant) const;
  double quota_share(const workload::Workflow& workflow) const;

  FederatedConfig config_;
  std::vector<std::unique_ptr<CellScheduler>> cells_;
  std::unique_ptr<runtime::SolverPool> pool_;

  std::map<sim::JobUid, int> cell_of_uid_;
  std::map<sim::JobUid, int> workflow_of_uid_;   // deadline uids only
  std::map<int, WorkflowInfo> workflows_;        // by workflow id
  std::map<int, int> tenant_of_workflow_;        // workflow id -> tenant
  std::map<int, double> tenant_usage_;           // tenant -> summed shares
  std::vector<int> deferred_;                    // workflow ids, FIFO

  /// Workflows evacuated with no live cell to land on, FIFO; retried every
  /// slot so nothing is ever stranded.
  std::vector<int> pending_failover_;
  /// Ad-hoc arrivals kept verbatim so a crashed cell's ad-hoc jobs can be
  /// re-delivered to a survivor (the crashed shard forgot them).
  std::map<sim::JobUid, sim::AdhocArrivalEvent> adhoc_events_;
  /// Ad-hoc jobs waiting for any routable cell (uids into adhoc_events_).
  std::vector<sim::JobUid> pending_adhoc_;
  /// Last broadcast capacity change, re-applied to a cell rebuilt after a
  /// crash (the fresh admission ledger would otherwise assume the
  /// original cluster capacity through concurrent machine churn).
  std::optional<sim::CapacityChangeEvent> last_capacity_event_;

  int migrations_ = 0;
  int overload_events_ = 0;
  int quota_deferrals_ = 0;
  int infeasible_routes_ = 0;
  int cell_failures_ = 0;
  int failovers_ = 0;
  int quarantines_ = 0;
  int cell_recoveries_ = 0;
  std::vector<CellOutage> outage_log_;
  std::vector<double> replan_round_wall_s_;
};

}  // namespace flowtime::cluster
