#include "cluster/partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.h"

namespace flowtime::cluster {

const char* to_string(CellPolicy policy) {
  switch (policy) {
    case CellPolicy::kRoundRobin:
      return "round_robin";
    case CellPolicy::kCapacityBalanced:
      return "balanced";
  }
  return "?";
}

bool parse_cell_policy(const std::string& name, CellPolicy* out) {
  if (name == "round_robin" || name == "rr") {
    *out = CellPolicy::kRoundRobin;
    return true;
  }
  if (name == "balanced" || name == "capacity_balanced") {
    *out = CellPolicy::kCapacityBalanced;
    return true;
  }
  return false;
}

CellPartitioner::CellPartitioner(PartitionConfig config)
    : config_(std::move(config)) {
  config_.cells = std::max(config_.cells, 1);
}

std::vector<CellSpec> CellPartitioner::partition(
    const workload::ClusterSpec& total) const {
  const int n = config_.cells;
  std::vector<double> fraction(static_cast<std::size_t>(n), 1.0 / n);

  if (config_.policy == CellPolicy::kRoundRobin && n > 1) {
    // Deal machine granules. One CPU core stands in for one machine — the
    // homogeneous-machine assumption behind the fluid ClusterSpec — floored
    // at one granule per cell so tiny clusters still partition.
    const std::int64_t machines = std::max<std::int64_t>(
        n, std::llround(total.capacity[workload::kCpu]));
    const std::int64_t base = machines / n;
    const std::int64_t extra = machines % n;
    // The seed decides which `extra` cells get the remainder machine: deal
    // them to the first `extra` positions of a seeded permutation of cells.
    std::vector<int> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    util::Rng rng(config_.seed);
    for (int i = n - 1; i > 0; --i) {
      std::swap(order[static_cast<std::size_t>(i)],
                order[static_cast<std::size_t>(rng.uniform_int(0, i))]);
    }
    std::vector<std::int64_t> count(static_cast<std::size_t>(n), base);
    for (std::int64_t i = 0; i < extra; ++i) {
      ++count[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
    }
    for (int i = 0; i < n; ++i) {
      fraction[static_cast<std::size_t>(i)] =
          static_cast<double>(count[static_cast<std::size_t>(i)]) /
          static_cast<double>(machines);
    }
  }

  // The last cell absorbs accumulated rounding so fractions sum to 1 and
  // the per-cell capacities add back to the total exactly.
  double used = 0.0;
  std::vector<CellSpec> cells;
  cells.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    CellSpec cell;
    cell.id = i;
    cell.fraction =
        (i == n - 1) ? 1.0 - used : fraction[static_cast<std::size_t>(i)];
    used += cell.fraction;
    cell.cluster.slot_seconds = total.slot_seconds;
    cell.cluster.capacity = workload::scale(total.capacity, cell.fraction);
    cells.push_back(cell);
  }
  return cells;
}

}  // namespace flowtime::cluster
