// Cluster partitioning for federated scheduling (DESIGN.md §13).
//
// A cell is a statically carved fraction of the cluster that one
// FlowTimeScheduler plans alone. Partitioning is static and deterministic
// under a seed: the same (cluster, config) always yields the same cells, so
// federated runs are reproducible and a restarted coordinator re-derives the
// identical layout. The machines are homogeneous (ClusterSpec is a fluid
// capacity vector), so a cell is fully described by its capacity fraction —
// there is no per-machine assignment to persist.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/resources.h"

namespace flowtime::cluster {

/// How the partitioner divides capacity across cells.
enum class CellPolicy {
  /// Deal machine-sized granules to cells round-robin. When the machine
  /// count does not divide evenly, the seed shuffles which cells receive
  /// the remainder machines — cells differ by one granule.
  kRoundRobin,
  /// Every cell gets exactly capacity/N: the fluid ideal. Cells are
  /// interchangeable; the seed is unused.
  kCapacityBalanced,
};

const char* to_string(CellPolicy policy);
/// Parses "round_robin" / "balanced" (aliases "rr", "capacity_balanced").
/// Returns false and leaves `out` untouched on unknown names.
bool parse_cell_policy(const std::string& name, CellPolicy* out);

/// One cell of the partition. `cluster` is the cell's own ClusterSpec —
/// handed verbatim to the cell's FlowTimeScheduler and AdmissionController —
/// and `fraction` is its share of every total-cluster quantity (capacity,
/// solver budgets, mid-run capacity changes).
struct CellSpec {
  int id = 0;
  workload::ClusterSpec cluster;
  double fraction = 1.0;
};

struct PartitionConfig {
  int cells = 1;  // clamped to >= 1
  CellPolicy policy = CellPolicy::kCapacityBalanced;
  /// Seed for remainder placement under kRoundRobin; no effect otherwise.
  std::uint64_t seed = 0;
};

/// Splits `total` into config.cells cells. Fractions sum to 1 exactly
/// (the last cell absorbs rounding); every cell keeps the total's
/// slot_seconds so the slot grids of all cells stay aligned.
class CellPartitioner {
 public:
  explicit CellPartitioner(PartitionConfig config = {});

  std::vector<CellSpec> partition(const workload::ClusterSpec& total) const;

  const PartitionConfig& config() const { return config_; }

 private:
  PartitionConfig config_;
};

}  // namespace flowtime::cluster
