#include "cluster/federated_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>
#include <variant>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace flowtime::cluster {

namespace {

core::AdmissionConfig admission_config_for(
    const CellSpec& spec, const core::FlowTimeConfig& flowtime) {
  core::AdmissionConfig config;
  config.cluster = spec.cluster;
  config.deadline_cap_fraction = flowtime.deadline_cap_fraction;
  config.decomposition_mode = flowtime.decomposition_mode;
  return config;
}

}  // namespace

const char* to_string(CellHealth health) {
  switch (health) {
    case CellHealth::kHealthy:
      return "healthy";
    case CellHealth::kSuspect:
      return "suspect";
    case CellHealth::kQuarantined:
      return "quarantined";
  }
  return "healthy";
}

CellScheduler::CellScheduler(CellSpec spec, core::FlowTimeConfig config,
                             util::BackoffConfig probe_backoff)
    : spec_(spec),
      config_(std::move(config)),
      scheduler_(std::make_unique<core::FlowTimeScheduler>(config_)),
      admission_(std::make_unique<core::AdmissionController>(
          admission_config_for(spec_, scheduler_->config()))),
      warm_cache_(std::make_unique<core::PlacementWarmCache>()),
      probe_backoff_(probe_backoff) {}

void CellScheduler::reset() {
  scheduler_ = std::make_unique<core::FlowTimeScheduler>(config_);
  admission_ = std::make_unique<core::AdmissionController>(
      admission_config_for(spec_, scheduler_->config()));
  warm_cache_ = std::make_unique<core::PlacementWarmCache>();
  adhoc_active_ = 0;
  was_overloaded_ = false;
}

double CellScheduler::last_peak_load() const {
  const auto& log = scheduler_->replan_log();
  return log.empty() ? 0.0 : log.back().max_normalized_load;
}

bool CellScheduler::overloaded(double threshold) const {
  if (scheduler_->degraded_mode()) return true;
  const auto& log = scheduler_->replan_log();
  if (log.empty()) return false;
  return log.back().max_normalized_load > threshold ||
         log.back().late_extensions > 0;
}

bool CellScheduler::latch_overload(bool now_overloaded) {
  const bool transition = now_overloaded && !was_overloaded_;
  was_overloaded_ = now_overloaded;
  return transition;
}

FederatedScheduler::FederatedScheduler(FederatedConfig config)
    : config_(std::move(config)) {
  config_.partition.cells = std::max(config_.partition.cells, 1);
  const CellPartitioner partitioner(config_.partition);
  const auto specs = partitioner.partition(config_.flowtime.cluster);
  const int n = static_cast<int>(specs.size());
  cells_.reserve(specs.size());
  for (const CellSpec& spec : specs) {
    core::FlowTimeConfig cell_config = config_.flowtime;
    cell_config.cluster = spec.cluster;
    // Invisible at cells = 1: no cell stamps on traces/counters, so the
    // single-cell federation is byte-for-byte a plain FlowTimeScheduler.
    cell_config.cell_id = n > 1 ? spec.id : -1;
    cell_config.external_replan_driver = true;
    // Each cell gets a 1/N slice of the solver allowance so the federation
    // spends the same aggregate budget as one whole-cluster scheduler.
    if (cell_config.solver_budget_ms > 0.0) cell_config.solver_budget_ms /= n;
    if (cell_config.solver_pivot_budget > 0) {
      cell_config.solver_pivot_budget =
          std::max<std::int64_t>(1, cell_config.solver_pivot_budget / n);
    }
    // Each cell's probe backoff draws jitter from its own stream, seeded
    // from the partition seed and cell id, so recovery schedules are
    // reproducible and uncorrelated across cells.
    util::BackoffConfig probe;
    probe.base = config_.probe_backoff_base_slots;
    probe.multiplier = config_.probe_backoff_multiplier;
    probe.cap = config_.probe_backoff_cap_slots;
    probe.jitter = config_.probe_backoff_jitter;
    probe.seed = config_.partition.seed ^
                 (0x9e3779b97f4a7c15ull *
                  static_cast<std::uint64_t>(spec.id + 1));
    cells_.push_back(
        std::make_unique<CellScheduler>(spec, cell_config, probe));
  }
  if (config_.parallel_solve) {
    const int threads = config_.solver_threads > 0 ? config_.solver_threads
                                                   : std::min(n, 16);
    pool_ = std::make_unique<runtime::SolverPool>(threads);
  }
}

FederatedScheduler::~FederatedScheduler() = default;

int FederatedScheduler::cell_of_workflow(int workflow_id) const {
  const auto it = workflows_.find(workflow_id);
  return it == workflows_.end() ? -1 : it->second.cell;
}

int FederatedScheduler::replans() const {
  int total = 0;
  for (const auto& cell : cells_) total += cell->scheduler().replans();
  return total;
}

std::int64_t FederatedScheduler::total_pivots() const {
  std::int64_t total = 0;
  for (const auto& cell : cells_) total += cell->scheduler().total_pivots();
  return total;
}

bool FederatedScheduler::degraded_mode() const {
  for (const auto& cell : cells_) {
    if (cell->scheduler().degraded_mode()) return true;
  }
  return false;
}

int FederatedScheduler::degraded_replans() const {
  int total = 0;
  for (const auto& cell : cells_) {
    total += cell->scheduler().degraded_replans();
  }
  return total;
}

int FederatedScheduler::truncated_replans() const {
  int total = 0;
  for (const auto& cell : cells_) {
    total += cell->scheduler().truncated_replans();
  }
  return total;
}

int FederatedScheduler::decomposition_fallbacks() const {
  int total = 0;
  for (const auto& cell : cells_) {
    total += cell->scheduler().decomposition_fallbacks();
  }
  return total;
}

double FederatedScheduler::tenant_usage(int tenant) const {
  const auto it = tenant_usage_.find(tenant);
  return it == tenant_usage_.end() ? 0.0 : it->second;
}

double FederatedScheduler::quota_share(
    const workload::Workflow& workflow) const {
  // A workflow's claim on its tenant's quota: the fraction of the whole
  // cluster its total demand occupies when spread evenly over its
  // start-to-deadline window — the same "average load" yardstick the
  // decomposer flattens toward.
  const workload::ClusterSpec& total = config_.flowtime.cluster;
  const double window_s =
      std::max(workflow.deadline_s - workflow.start_s, total.slot_seconds);
  const workload::ResourceVec demand = workflow.total_demand();
  double share = 0.0;
  for (int r = 0; r < workload::kNumResources; ++r) {
    const double cap = total.capacity[r] * window_s;
    if (cap > 1e-12) share = std::max(share, demand[r] / cap);
  }
  return share;
}

void FederatedScheduler::on_event(const sim::SchedulerEvent& event) {
  if (const auto* arrival = std::get_if<sim::WorkflowArrivalEvent>(&event)) {
    handle_workflow_arrival(*arrival);
    return;
  }
  if (const auto* adhoc = std::get_if<sim::AdhocArrivalEvent>(&event)) {
    // Least ad-hoc pressure wins (live ad-hoc jobs per unit of cell
    // capacity); ties go to the lowest cell id, so routing is deterministic.
    // The event is kept verbatim so a crashed cell's ad-hoc jobs can be
    // re-delivered to a survivor.
    adhoc_events_[adhoc->uid] = *adhoc;
    int best = -1;
    double best_pressure = std::numeric_limits<double>::infinity();
    for (int i = 0; i < num_cells(); ++i) {
      if (!cell_routable(i)) continue;
      const double pressure = static_cast<double>(cells_[i]->adhoc_active()) /
                              std::max(cells_[i]->spec().fraction, 1e-12);
      if (pressure < best_pressure - 1e-12) {
        best = i;
        best_pressure = pressure;
      }
    }
    if (best < 0) {
      // No live cell right now; parked until one re-enters the routing set.
      pending_adhoc_.push_back(adhoc->uid);
      return;
    }
    cell_of_uid_[adhoc->uid] = best;
    cells_[best]->adhoc_arrived();
    cells_[best]->scheduler().on_event(event);
    return;
  }
  if (const auto* complete = std::get_if<sim::JobCompleteEvent>(&event)) {
    handle_job_complete(*complete);
    return;
  }
  if (const auto* change = std::get_if<sim::CapacityChangeEvent>(&event)) {
    // Remembered so a cell rebuilt after a crash can be brought up to date
    // with churn that happened before (or during) its downtime.
    last_capacity_event_ = *change;
    for (int i = 0; i < num_cells(); ++i) {
      apply_capacity_to_cell(i, *change);
    }
    return;
  }
  if (const auto* failure = std::get_if<sim::TaskFailureEvent>(&event)) {
    const auto it = cell_of_uid_.find(failure->uid);
    if (it != cell_of_uid_.end()) {
      cells_[it->second]->scheduler().on_event(event);
    }
    return;
  }
  if (const auto* fault = std::get_if<sim::CellFaultEvent>(&event)) {
    handle_cell_fault(*fault);
    return;
  }
  // Solver sabotage re-parametrizes every cell's solver.
  for (auto& cell : cells_) cell->scheduler().on_event(event);
}

void FederatedScheduler::apply_capacity_to_cell(
    int cell, const sim::CapacityChangeEvent& change) {
  CellScheduler& target = *cells_[cell];
  const double fraction = target.spec().fraction;
  sim::CapacityChangeEvent scaled = change;
  scaled.capacity = workload::scale(change.capacity, fraction);
  target.scheduler().on_event(sim::SchedulerEvent{scaled});
  // The event carries per-slot resource-seconds; the admission layer
  // models capacity in resource units.
  const double slot_seconds = target.spec().cluster.slot_seconds;
  target.admission().on_capacity_change(
      workload::scale(change.capacity, fraction / slot_seconds),
      change.now_s);
}

bool FederatedScheduler::cell_routable(int cell) const {
  const CellScheduler& c = *cells_[cell];
  return !c.down() && c.health() == CellHealth::kHealthy;
}

namespace {
int backoff_delay_slots(util::Backoff& backoff) {
  return std::max(1, static_cast<int>(std::lround(backoff.next())));
}
}  // namespace

void FederatedScheduler::handle_cell_fault(const sim::CellFaultEvent& event) {
  if (event.cell < 0 || event.cell >= num_cells()) return;
  CellScheduler& cell = *cells_[event.cell];
  const double slot_seconds = config_.flowtime.cluster.slot_seconds;
  const int slot =
      static_cast<int>(std::floor(event.now_s / slot_seconds + 1e-9));
  if (event.active) {
    ++cell_failures_;
    if (obs::enabled()) {
      obs::registry().counter("cluster.cell_failures").add();
      obs::emit(obs::TraceEvent("cell_failed")
                    .field("cell", event.cell)
                    .field("mode", fault::to_string(event.mode))
                    .field("slot", slot)
                    .field("sim_s", event.now_s));
    }
    switch (event.mode) {
      case fault::CellFaultMode::kCrash:
      case fault::CellFaultMode::kFlap:
        cell.set_down(true, event.mode);
        // The shard's memory is gone: rebuild it empty, then replay the
        // last capacity broadcast so the fresh admission ledger tracks any
        // machine churn that already happened.
        cell.reset();
        if (last_capacity_event_.has_value()) {
          apply_capacity_to_cell(event.cell, *last_capacity_event_);
        }
        // A dead connection is an unambiguous failure signal (unlike a
        // timeout), so the breaker trips immediately.
        quarantine_cell(event.cell, slot, event.now_s,
                        fault::to_string(event.mode), /*state_lost=*/true);
        break;
      case fault::CellFaultMode::kHang:
        // Not instantly distinguishable from slowness; detection happens
        // through missed heartbeats in update_cell_health.
        cell.set_down(true, event.mode);
        break;
      case fault::CellFaultMode::kSolverFail:
        // Arms the preemption token: subsequent solves return preempted
        // and escalate through the solve-failure path.
        cell.set_solver_broken(true);
        break;
    }
  } else {
    if (event.mode == fault::CellFaultMode::kSolverFail) {
      cell.set_solver_broken(false);
    } else {
      cell.set_down(false, event.mode);
    }
    // No instant re-admission: a quarantined cell rejoins only through a
    // successful probe (update_cell_health), so flapping keeps hurting the
    // flapper, not the fleet.
  }
}

void FederatedScheduler::update_cell_health(const sim::ClusterState& state) {
  const int breaker = std::max(config_.quarantine_after_failures, 1);
  for (int i = 0; i < num_cells(); ++i) {
    CellScheduler& cell = *cells_[i];
    if (cell.down() && cell.health() != CellHealth::kQuarantined) {
      // Missed heartbeat: one observed failure per slot while unreachable.
      cell.count_failure();
      if (cell.health() == CellHealth::kHealthy) {
        cell.set_health(CellHealth::kSuspect);
      }
      if (cell.consecutive_failures() >= breaker) {
        quarantine_cell(i, state.slot, state.now_s, "heartbeat_timeout",
                        /*state_lost=*/false);
      }
      continue;
    }
    if (!cell.down() && cell.health() == CellHealth::kSuspect &&
        !cell.solver_broken()) {
      // Heartbeats (and the solver) are back before the breaker tripped.
      cell.clear_failures();
      cell.set_health(CellHealth::kHealthy);
      cell.set_healthy_since_slot(state.slot);
      continue;
    }
    if (cell.health() == CellHealth::kQuarantined &&
        cell.probe_at_slot() >= 0 && state.slot >= cell.probe_at_slot()) {
      if (!cell.down() && !cell.solver_broken()) {
        readmit_cell(i, state.slot, state.now_s);
      } else {
        // Probe failed; the next one waits exponentially longer.
        cell.set_probe_at_slot(state.slot +
                               backoff_delay_slots(cell.probe_backoff()));
      }
      continue;
    }
    if (cell.health() == CellHealth::kHealthy &&
        cell.probe_backoff().attempts() > 0 &&
        cell.healthy_since_slot() >= 0 &&
        state.slot - cell.healthy_since_slot() >=
            std::max(config_.backoff_reset_slots, 1)) {
      // Stable for long enough: future outages start from the base delay.
      cell.probe_backoff().reset();
    }
  }
}

void FederatedScheduler::quarantine_cell(int cell_id, int slot, double now_s,
                                         const char* reason,
                                         bool state_lost) {
  CellScheduler& cell = *cells_[cell_id];
  if (cell.health() == CellHealth::kQuarantined) {
    // Already quarantined (e.g. a flap's next down phase): evacuation
    // already ran and the probe schedule stands.
    return;
  }
  cell.set_health(CellHealth::kQuarantined);
  ++quarantines_;
  outage_log_.push_back(CellOutage{cell_id, slot, -1});
  cell.set_probe_at_slot(slot + backoff_delay_slots(cell.probe_backoff()));
  if (obs::enabled()) {
    obs::registry().counter("cluster.cell_quarantines").add();
    int quarantined = 0;
    for (const auto& c : cells_) {
      if (c->health() == CellHealth::kQuarantined) ++quarantined;
    }
    obs::registry().gauge("cluster.cells_quarantined").set(quarantined);
    cell.quarantine_span = obs::begin_span(
        "quarantine", "cell " + std::to_string(cell_id), obs::kNoSpan, now_s);
  }
  fail_over_workflows(cell_id, slot, now_s, reason, state_lost);
}

void FederatedScheduler::readmit_cell(int cell_id, int slot, double now_s) {
  CellScheduler& cell = *cells_[cell_id];
  cell.set_health(CellHealth::kHealthy);
  cell.clear_failures();
  cell.set_probe_at_slot(-1);
  cell.set_healthy_since_slot(slot);
  ++cell_recoveries_;
  int downtime_slots = 0;
  for (auto it = outage_log_.rbegin(); it != outage_log_.rend(); ++it) {
    if (it->cell == cell_id && it->recovered_slot < 0) {
      it->recovered_slot = slot;
      downtime_slots = slot - it->failed_slot;
      break;
    }
  }
  if (obs::enabled()) {
    obs::registry().counter("cluster.cell_recoveries").add();
    int quarantined = 0;
    for (const auto& c : cells_) {
      if (c->health() == CellHealth::kQuarantined) ++quarantined;
    }
    obs::registry().gauge("cluster.cells_quarantined").set(quarantined);
    obs::emit(obs::TraceEvent("cell_recovered")
                  .field("cell", cell_id)
                  .field("downtime_slots", downtime_slots)
                  .field("slot", slot)
                  .field("sim_s", now_s));
    obs::end_span(cell.quarantine_span, now_s);
    cell.quarantine_span = obs::kNoSpan;
  }
}

void FederatedScheduler::fail_over_workflows(int cell_id, int slot,
                                             double now_s, const char* cause,
                                             bool state_lost) {
  std::vector<int> evacuees;
  for (const auto& [workflow_id, info] : workflows_) {
    if (info.cell == cell_id && info.incomplete_jobs > 0) {
      evacuees.push_back(workflow_id);
    }
  }
  for (const int workflow_id : evacuees) {
    WorkflowInfo& info = workflows_.at(workflow_id);
    int jobs_moved = info.incomplete_jobs;
    if (!state_lost) {
      // The shard is alive (hung or solver-broken): drop its planning state
      // for the workflow so it cannot double-serve after recovery. A
      // crashed shard already lost everything.
      const int dropped =
          cells_[cell_id]->scheduler().forget_workflow(workflow_id);
      if (dropped > 0) jobs_moved = dropped;
    }
    cells_[cell_id]->admission().forget_workflow(workflow_id, now_s);
    for (std::size_t node = 0; node < info.node_uids.size(); ++node) {
      if (!info.complete[node]) cell_of_uid_.erase(info.node_uids[node]);
    }
    info.cell = -1;
    const int target = route_workflow(*info.workflow, now_s);
    if (target < 0) {
      // No live cell: parked, retried every slot — never stranded, and the
      // tenant's quota stays claimed (the workflow is still in flight).
      pending_failover_.push_back(workflow_id);
      continue;
    }
    place_failover(workflow_id, target, slot, now_s, cell_id, jobs_moved,
                   cause);
  }
  if (!state_lost) return;
  // Crash also wiped the shard's ad-hoc queue: re-deliver those jobs via
  // the pending queue (drained the same slot when a survivor exists).
  std::vector<sim::JobUid> adhocs;
  for (const auto& [uid, owner] : cell_of_uid_) {
    if (owner == cell_id &&
        workflow_of_uid_.find(uid) == workflow_of_uid_.end()) {
      adhocs.push_back(uid);
    }
  }
  for (const sim::JobUid uid : adhocs) {
    cell_of_uid_.erase(uid);
    cells_[cell_id]->adhoc_finished();
    pending_adhoc_.push_back(uid);
  }
}

void FederatedScheduler::place_failover(int workflow_id, int target, int slot,
                                        double now_s, int from_cell,
                                        int jobs_moved, const char* cause) {
  place_workflow(workflow_id, target, now_s, /*forced=*/true);
  // The forced arrival marks the target dirty with kWorkflowArrival; the
  // extra cause tag attributes the next plan to the failover.
  cells_[target]->scheduler().request_replan(core::ReplanCause::kFailover);
  WorkflowInfo& info = workflows_.at(workflow_id);
  info.last_migration_slot = slot;  // migration cooldown: no instant bounce
  ++failovers_;
  if (obs::enabled()) {
    obs::registry().counter("cluster.failovers").add();
    obs::emit(obs::TraceEvent("failover")
                  .field("workflow", workflow_id)
                  .field("from_cell", from_cell)
                  .field("to_cell", target)
                  .field("jobs_moved", jobs_moved)
                  .field("cause", cause)
                  .field("sim_s", now_s));
  }
}

void FederatedScheduler::route_pending_failover(
    const sim::ClusterState& state) {
  if (!pending_failover_.empty()) {
    std::vector<int> still_pending;
    for (const int workflow_id : pending_failover_) {
      const auto it = workflows_.find(workflow_id);
      if (it == workflows_.end()) continue;  // completed while parked
      const int target = route_workflow(*it->second.workflow, state.now_s);
      if (target < 0) {
        still_pending.push_back(workflow_id);
        continue;
      }
      place_failover(workflow_id, target, state.slot, state.now_s,
                     /*from_cell=*/-1, it->second.incomplete_jobs,
                     "pending");
    }
    pending_failover_ = std::move(still_pending);
  }
  if (!pending_adhoc_.empty()) {
    std::vector<sim::JobUid> still_pending;
    for (const sim::JobUid uid : pending_adhoc_) {
      const auto it = adhoc_events_.find(uid);
      if (it == adhoc_events_.end()) continue;  // completed while parked
      int best = -1;
      double best_pressure = std::numeric_limits<double>::infinity();
      for (int i = 0; i < num_cells(); ++i) {
        if (!cell_routable(i)) continue;
        const double pressure =
            static_cast<double>(cells_[i]->adhoc_active()) /
            std::max(cells_[i]->spec().fraction, 1e-12);
        if (pressure < best_pressure - 1e-12) {
          best = i;
          best_pressure = pressure;
        }
      }
      if (best < 0) {
        still_pending.push_back(uid);
        continue;
      }
      cell_of_uid_[uid] = best;
      cells_[best]->adhoc_arrived();
      cells_[best]->scheduler().on_event(sim::SchedulerEvent{it->second});
    }
    pending_adhoc_ = std::move(still_pending);
  }
}

void FederatedScheduler::handle_workflow_arrival(
    const sim::WorkflowArrivalEvent& arrival) {
  const workload::Workflow& workflow = *arrival.workflow;
  WorkflowInfo info;
  info.workflow = arrival.workflow;
  info.node_uids = arrival.node_uids;
  info.complete.assign(arrival.node_uids.size(), false);
  info.incomplete_jobs = static_cast<int>(arrival.node_uids.size());
  info.quota_share = quota_share(workflow);
  workflows_[workflow.id] = std::move(info);
  tenant_of_workflow_[workflow.id] = workflow.tenant;
  for (const sim::JobUid uid : arrival.node_uids) {
    workflow_of_uid_[uid] = workflow.id;
  }

  if (config_.tenant_quota_fraction < 1.0) {
    const double usage = tenant_usage(workflow.tenant);
    const double share = workflows_[workflow.id].quota_share;
    if (usage + share > config_.tenant_quota_fraction + 1e-12) {
      deferred_.push_back(workflow.id);
      ++quota_deferrals_;
      if (obs::enabled()) {
        obs::registry().counter("cluster.quota_deferrals").add();
        obs::emit(obs::TraceEvent("quota_deferral")
                      .field("workflow", workflow.id)
                      .field("tenant", workflow.tenant)
                      .field("share", share)
                      .field("tenant_usage", usage));
      }
      return;
    }
  }
  const int cell = route_workflow(workflow, arrival.now_s);
  tenant_usage_[workflow.tenant] += workflows_[workflow.id].quota_share;
  if (cell < 0) {
    // Accepted (quota claimed) but unplaceable: every cell is down or
    // quarantined. Parked and retried each slot until a cell comes back.
    pending_failover_.push_back(workflow.id);
    return;
  }
  place_workflow(workflow.id, cell, arrival.now_s, /*forced=*/false);
}

int FederatedScheduler::route_workflow(const workload::Workflow& workflow,
                                       double now_s) {
  if (num_cells() == 1) return cell_routable(0) ? 0 : -1;
  // Pass 0 considers only healthy cells; pass 1 (reached only when no
  // healthy cell exists) falls back to suspect cells — degraded but still
  // answering — and never to down or quarantined ones.
  for (int pass = 0; pass < 2; ++pass) {
    int best = -1;
    double best_peak = std::numeric_limits<double>::infinity();
    int fallback = -1;
    double fallback_peak = std::numeric_limits<double>::infinity();
    for (int i = 0; i < num_cells(); ++i) {
      CellScheduler& cell = *cells_[i];
      if (cell.down() || cell.health() == CellHealth::kQuarantined) continue;
      const bool healthy = cell.health() == CellHealth::kHealthy;
      if (pass == 0 ? !healthy : healthy) continue;
      if (!config_.admission_aware_routing) {
        const double load = cell.last_peak_load();
        if (fallback < 0 || load < fallback_peak - 1e-12) {
          fallback = i;
          fallback_peak = load;
        }
        continue;
      }
      // Projected peak load with the candidate added — the bin-pack key.
      // Infeasible cells (deadline cannot be met next to their admitted
      // work) are pruned first, DCoflow-style.
      const core::AdmissionDecision decision =
          cell.admission().evaluate(workflow, now_s);
      if (decision.admitted && decision.peak_load < best_peak - 1e-12) {
        best = i;
        best_peak = decision.peak_load;
      }
      // `fallback < 0` seeds the first live candidate even when its peak is
      // infinite (width-limited), matching the pre-health-filter behavior of
      // defaulting to cell 0.
      if (fallback < 0 || decision.peak_load < fallback_peak - 1e-12) {
        fallback = i;
        fallback_peak = decision.peak_load;
      }
    }
    if (best >= 0) return best;
    if (fallback < 0) continue;  // no candidate in this pass
    // Every cell rejected (or routing is load-only): take the least-loaded
    // cell anyway — the cell scheduler extends windows rather than failing,
    // and the miss stays visible in the metrics.
    if (config_.admission_aware_routing) {
      ++infeasible_routes_;
      if (obs::enabled()) {
        obs::registry().counter("cluster.route_infeasible").add();
        obs::emit(obs::TraceEvent("route_infeasible")
                      .field("workflow", workflow.id)
                      .field("cell", fallback)
                      .field("peak_load", fallback_peak));
      }
    }
    return fallback;
  }
  return -1;  // every cell is down or quarantined
}

void FederatedScheduler::place_workflow(int workflow_id, int cell,
                                        double now_s, bool forced) {
  WorkflowInfo& info = workflows_.at(workflow_id);
  info.cell = cell;
  CellScheduler& target = *cells_[cell];
  target.scheduler().on_event(sim::SchedulerEvent{
      sim::WorkflowArrivalEvent{info.workflow, info.node_uids, now_s}});
  for (std::size_t node = 0; node < info.node_uids.size(); ++node) {
    if (info.complete[node]) {
      // Re-deliver completions so a migrated-in workflow's finished jobs
      // are not re-planned.
      target.scheduler().on_event(sim::SchedulerEvent{
          sim::JobCompleteEvent{info.node_uids[node], now_s}});
    } else {
      cell_of_uid_[info.node_uids[node]] = cell;
    }
  }
  // Commit the demand to the cell's admission view even when the placement
  // was forced past the feasibility gate — the routing oracle must keep
  // seeing it.
  (void)forced;
  target.admission().force_admit(*info.workflow, now_s);
}

void FederatedScheduler::handle_job_complete(
    const sim::JobCompleteEvent& event) {
  // A job may complete while its workflow is parked for failover (no owning
  // cell). The cell-side delivery is then skipped, but the federation-level
  // bookkeeping below must still run — completion credit is never lost.
  const auto cell_it = cell_of_uid_.find(event.uid);
  const int uid_cell = cell_it == cell_of_uid_.end() ? -1 : cell_it->second;
  if (uid_cell >= 0) {
    cells_[uid_cell]->scheduler().on_event(sim::SchedulerEvent{event});
    cell_of_uid_.erase(cell_it);
  }

  const auto wf_it = workflow_of_uid_.find(event.uid);
  if (wf_it == workflow_of_uid_.end()) {
    // Ad-hoc job: just drop the routing pressure.
    if (uid_cell >= 0) cells_[uid_cell]->adhoc_finished();
    adhoc_events_.erase(event.uid);
    return;
  }
  const int workflow_id = wf_it->second;
  workflow_of_uid_.erase(wf_it);
  auto info_it = workflows_.find(workflow_id);
  if (info_it == workflows_.end()) return;
  WorkflowInfo& info = info_it->second;
  for (std::size_t node = 0; node < info.node_uids.size(); ++node) {
    if (info.node_uids[node] != event.uid) continue;
    if (!info.complete[node]) {
      info.complete[node] = true;
      --info.incomplete_jobs;
      if (info.cell >= 0) {
        cells_[info.cell]->admission().complete_job(
            workflow_id, static_cast<dag::NodeId>(node), event.now_s);
      }
    }
    break;
  }
  if (info.incomplete_jobs <= 0) {
    if (info.cell >= 0) {
      cells_[info.cell]->admission().forget_workflow(workflow_id,
                                                     event.now_s);
    }
    const int tenant = tenant_of_workflow_[workflow_id];
    tenant_usage_[tenant] =
        std::max(tenant_usage_[tenant] - info.quota_share, 0.0);
    tenant_of_workflow_.erase(workflow_id);
    workflows_.erase(info_it);
  }
}

void FederatedScheduler::route_deferred(double now_s) {
  if (deferred_.empty()) return;
  std::vector<int> still_deferred;
  for (const int workflow_id : deferred_) {
    const auto it = workflows_.find(workflow_id);
    if (it == workflows_.end()) continue;  // completed while deferred: gone
    const int tenant = tenant_of_workflow_[workflow_id];
    if (tenant_usage(tenant) + it->second.quota_share >
        config_.tenant_quota_fraction + 1e-12) {
      still_deferred.push_back(workflow_id);
      continue;
    }
    const int cell = route_workflow(*it->second.workflow, now_s);
    if (cell < 0) {
      // Quota would allow it, but no cell is live; stay deferred (the quota
      // claim only happens at placement, so nothing leaks).
      still_deferred.push_back(workflow_id);
      continue;
    }
    tenant_usage_[tenant] += it->second.quota_share;
    place_workflow(workflow_id, cell, now_s, /*forced=*/true);
  }
  deferred_ = std::move(still_deferred);
}

void FederatedScheduler::run_migrations(const sim::ClusterState& state) {
  if (!config_.enable_migration || num_cells() <= 1) return;
  // Overload detection runs every slot; the counter fires on transitions.
  std::vector<int> hot;
  for (int i = 0; i < num_cells(); ++i) {
    if (!cell_routable(i)) continue;  // failover, not migration, moves work
    const bool overloaded = cells_[i]->overloaded(config_.overload_threshold);
    if (overloaded) hot.push_back(i);
    if (cells_[i]->latch_overload(overloaded)) {
      ++overload_events_;
      if (obs::enabled()) {
        obs::registry().counter("cluster.cell_overload_events").add();
        obs::emit(obs::TraceEvent("cell_overload")
                      .field("cell", i)
                      .field("peak_load", cells_[i]->last_peak_load())
                      .field("degraded",
                             cells_[i]->scheduler().degraded_mode()));
      }
    }
  }
  if (hot.empty()) return;

  // Remaining demand per workflow, from the authoritative views.
  std::map<int, double> remaining_by_workflow;
  for (const sim::JobView& view : state.active) {
    if (view.kind != sim::JobKind::kDeadline) continue;
    double worst = 0.0;
    for (int r = 0; r < workload::kNumResources; ++r) {
      worst = std::max(worst, view.remaining_estimate[r]);
    }
    remaining_by_workflow[view.workflow_id] += worst;
  }

  int budget = config_.max_migrations_per_slot;
  for (const int from : hot) {
    if (budget <= 0) break;
    // Candidate: the cell's heaviest incomplete workflow not in cooldown.
    int candidate = -1;
    double candidate_remaining = 0.0;
    for (const auto& [workflow_id, info] : workflows_) {
      if (info.cell != from || info.incomplete_jobs <= 0) continue;
      if (state.slot - info.last_migration_slot <
          config_.migration_cooldown_slots) {
        continue;
      }
      const auto it = remaining_by_workflow.find(workflow_id);
      const double remaining = it == remaining_by_workflow.end()
                                   ? 0.0
                                   : it->second;
      if (remaining > candidate_remaining + 1e-9) {
        candidate = workflow_id;
        candidate_remaining = remaining;
      }
    }
    if (candidate < 0) continue;
    // Target: the least-loaded non-hot cell that admits the workflow
    // (forced placement onto the least-loaded one if none admits — moving
    // to a cooler cell still beats staying on the hotspot — but never onto
    // another hotspot: in that state migration only reshuffles pain).
    const workload::Workflow& workflow = *workflows_.at(candidate).workflow;
    int to = -1;
    double to_peak = std::numeric_limits<double>::infinity();
    int cool = -1;
    double cool_peak = std::numeric_limits<double>::infinity();
    for (int i = 0; i < num_cells(); ++i) {
      if (i == from || !cell_routable(i) ||
          cells_[i]->overloaded(config_.overload_threshold)) {
        continue;
      }
      const core::AdmissionDecision decision =
          cells_[i]->admission().evaluate(workflow, state.now_s);
      if (decision.admitted && decision.peak_load < to_peak - 1e-12) {
        to = i;
        to_peak = decision.peak_load;
      }
      if (decision.peak_load < cool_peak - 1e-12) {
        cool = i;
        cool_peak = decision.peak_load;
      }
    }
    if (to < 0) to = cool;
    if (to < 0) continue;
    migrate_workflow(candidate, from, to, state.now_s, state.slot);
    --budget;
  }
}

void FederatedScheduler::migrate_workflow(int workflow_id, int from, int to,
                                          double now_s, int slot) {
  const int dropped =
      cells_[from]->scheduler().forget_workflow(workflow_id);
  cells_[from]->admission().forget_workflow(workflow_id, now_s);
  place_workflow(workflow_id, to, now_s, /*forced=*/true);
  WorkflowInfo& info = workflows_.at(workflow_id);
  info.last_migration_slot = slot;
  ++migrations_;
  if (obs::enabled()) {
    obs::registry().counter("cluster.migrations").add();
    obs::emit(obs::TraceEvent("migration")
                  .field("workflow", workflow_id)
                  .field("from_cell", from)
                  .field("to_cell", to)
                  .field("jobs_moved", dropped)
                  .field("sim_s", now_s));
  }
}

std::vector<sim::ClusterState> FederatedScheduler::split_state(
    const sim::ClusterState& state) const {
  std::vector<sim::ClusterState> cell_states(cells_.size());
  for (int i = 0; i < num_cells(); ++i) {
    sim::ClusterState& cs = cell_states[static_cast<std::size_t>(i)];
    cs.slot = state.slot;
    cs.now_s = state.now_s;
    cs.slot_seconds = state.slot_seconds;
    cs.capacity = workload::scale(state.capacity, cells_[i]->spec().fraction);
  }
  for (const sim::JobView& view : state.active) {
    const auto it = cell_of_uid_.find(view.uid);
    if (it == cell_of_uid_.end()) continue;  // quota-deferred: no cell serves
    cell_states[static_cast<std::size_t>(it->second)].active.push_back(view);
  }
  return cell_states;
}

void FederatedScheduler::replan_dirty_cells(
    const std::vector<sim::ClusterState>& cell_states, double now_s) {
  struct SolveJob {
    int cell = 0;
    core::PendingReplan pending;
    core::PlanSolveResult solved;
  };
  std::vector<SolveJob> jobs;
  for (int i = 0; i < num_cells(); ++i) {
    CellScheduler& cell = *cells_[i];
    if (!cell.scheduler().dirty()) continue;
    // Down cells are unreachable — their dirty bit survives and the plan
    // runs after recovery. A quarantined cell with a broken solver is a
    // tripped breaker: no solve attempts until a probe re-admits it.
    if (cell.down()) continue;
    if (cell.solver_broken() && cell.health() == CellHealth::kQuarantined) {
      continue;
    }
    SolveJob job;
    job.cell = i;
    job.pending = cell.scheduler().begin_replan(
        cell_states[static_cast<std::size_t>(i)]);
    // The per-cell solve deadline caps whatever budget the cell already
    // carries; 0 means no deadline (and byte-identity with the seed).
    if (config_.cell_solve_deadline_ms > 0.0) {
      job.pending.budget_wall_ms =
          job.pending.budget_wall_ms > 0.0
              ? std::min(job.pending.budget_wall_ms,
                         config_.cell_solve_deadline_ms)
              : config_.cell_solve_deadline_ms;
    }
    // A broken solver preempts deterministically via the cancel token
    // rather than timing out on a wall clock.
    if (cell.solver_broken()) job.pending.cancel = cell.cancel_flag();
    jobs.push_back(std::move(job));
  }
  if (jobs.empty()) return;

  auto solve_one = [this](SolveJob& job) {
    CellScheduler& cell = *cells_[job.cell];
    std::optional<obs::ScopedTimer> timer;
    if (obs::enabled()) timer.emplace(&job.pending.record.wall_s);
    job.solved = core::FlowTimeScheduler::solve_replan(
        cell.scheduler().config(), &cell.warm_cache(), job.pending);
  };

  if (pool_) {
    runtime::WaitGroup barrier;
    barrier.add(static_cast<int>(jobs.size()));
    for (SolveJob& job : jobs) {
      pool_->submit([&solve_one, &job, &barrier] {
        solve_one(job);
        barrier.done();
      });
    }
    barrier.wait();
  } else {
    for (SolveJob& job : jobs) solve_one(job);
  }

  // Adoption always happens on the serving thread, in cell order, so runs
  // are deterministic regardless of solver-thread interleaving.
  const int breaker = std::max(config_.quarantine_after_failures, 1);
  double round_wall = 0.0;
  for (SolveJob& job : jobs) {
    CellScheduler& cell = *cells_[job.cell];
    const double wall = job.pending.record.wall_s;
    if (job.solved.preempted) {
      // The solve failed (deadline or broken solver): keep the old plan,
      // re-assert the dirty bit, and count one failure toward the breaker.
      cell.scheduler().abandon_replan(job.pending, job.solved);
      cell.count_failure();
      if (cell.health() == CellHealth::kHealthy) {
        cell.set_health(CellHealth::kSuspect);
      }
      if (cell.health() != CellHealth::kQuarantined &&
          cell.consecutive_failures() >= breaker) {
        quarantine_cell(job.cell,
                        cell_states[static_cast<std::size_t>(job.cell)].slot,
                        now_s, "solver_failure", /*state_lost=*/false);
      }
    } else {
      cell.scheduler().finish_replan(job.pending, std::move(job.solved),
                                     now_s);
      if (cell.health() == CellHealth::kSuspect && !cell.down() &&
          !cell.solver_broken()) {
        // A clean solve is proof of life: back to healthy.
        cell.clear_failures();
        cell.set_health(CellHealth::kHealthy);
        cell.set_healthy_since_slot(
            cell_states[static_cast<std::size_t>(job.cell)].slot);
      }
    }
    round_wall = pool_ ? std::max(round_wall, wall) : round_wall + wall;
  }
  replan_round_wall_s_.push_back(round_wall);
}

std::vector<sim::Allocation> FederatedScheduler::allocate(
    const sim::ClusterState& state) {
  // Health first (missed heartbeats, probes), so the routing passes below
  // see this slot's routing set; then parked failover work gets first claim
  // on any cell that just came back.
  update_cell_health(state);
  route_pending_failover(state);
  route_deferred(state.now_s);
  run_migrations(state);
  const std::vector<sim::ClusterState> cell_states = split_state(state);
  for (int i = 0; i < num_cells(); ++i) {
    if (cells_[i]->down()) continue;  // unreachable: no heartbeat round-trip
    cells_[i]->scheduler().sync_views(
        cell_states[static_cast<std::size_t>(i)]);
  }
  replan_dirty_cells(cell_states, state.now_s);
  std::vector<sim::Allocation> merged;
  for (int i = 0; i < num_cells(); ++i) {
    // A down cell serves nothing (its machines answer no RPCs); a merely
    // quarantined cell keeps serving what it still owns — quarantine only
    // removes it from the routing set.
    if (cells_[i]->down()) continue;
    std::vector<sim::Allocation> cell_allocs = cells_[i]->scheduler().serve(
        cell_states[static_cast<std::size_t>(i)]);
    merged.insert(merged.end(), cell_allocs.begin(), cell_allocs.end());
  }
  return merged;
}

}  // namespace flowtime::cluster
