#include "cluster/federated_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>
#include <variant>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace flowtime::cluster {

namespace {

core::AdmissionConfig admission_config_for(
    const CellSpec& spec, const core::FlowTimeConfig& flowtime) {
  core::AdmissionConfig config;
  config.cluster = spec.cluster;
  config.deadline_cap_fraction = flowtime.deadline_cap_fraction;
  config.decomposition_mode = flowtime.decomposition_mode;
  return config;
}

}  // namespace

CellScheduler::CellScheduler(CellSpec spec, core::FlowTimeConfig config)
    : spec_(spec),
      scheduler_(std::move(config)),
      admission_(admission_config_for(spec, scheduler_.config())) {}

double CellScheduler::last_peak_load() const {
  const auto& log = scheduler_.replan_log();
  return log.empty() ? 0.0 : log.back().max_normalized_load;
}

bool CellScheduler::overloaded(double threshold) const {
  if (scheduler_.degraded_mode()) return true;
  const auto& log = scheduler_.replan_log();
  if (log.empty()) return false;
  return log.back().max_normalized_load > threshold ||
         log.back().late_extensions > 0;
}

bool CellScheduler::latch_overload(bool now_overloaded) {
  const bool transition = now_overloaded && !was_overloaded_;
  was_overloaded_ = now_overloaded;
  return transition;
}

FederatedScheduler::FederatedScheduler(FederatedConfig config)
    : config_(std::move(config)) {
  config_.partition.cells = std::max(config_.partition.cells, 1);
  const CellPartitioner partitioner(config_.partition);
  const auto specs = partitioner.partition(config_.flowtime.cluster);
  const int n = static_cast<int>(specs.size());
  cells_.reserve(specs.size());
  for (const CellSpec& spec : specs) {
    core::FlowTimeConfig cell_config = config_.flowtime;
    cell_config.cluster = spec.cluster;
    // Invisible at cells = 1: no cell stamps on traces/counters, so the
    // single-cell federation is byte-for-byte a plain FlowTimeScheduler.
    cell_config.cell_id = n > 1 ? spec.id : -1;
    cell_config.external_replan_driver = true;
    // Each cell gets a 1/N slice of the solver allowance so the federation
    // spends the same aggregate budget as one whole-cluster scheduler.
    if (cell_config.solver_budget_ms > 0.0) cell_config.solver_budget_ms /= n;
    if (cell_config.solver_pivot_budget > 0) {
      cell_config.solver_pivot_budget =
          std::max<std::int64_t>(1, cell_config.solver_pivot_budget / n);
    }
    cells_.push_back(std::make_unique<CellScheduler>(spec, cell_config));
  }
  if (config_.parallel_solve) {
    const int threads = config_.solver_threads > 0 ? config_.solver_threads
                                                   : std::min(n, 16);
    pool_ = std::make_unique<runtime::SolverPool>(threads);
  }
}

FederatedScheduler::~FederatedScheduler() = default;

int FederatedScheduler::cell_of_workflow(int workflow_id) const {
  const auto it = workflows_.find(workflow_id);
  return it == workflows_.end() ? -1 : it->second.cell;
}

int FederatedScheduler::replans() const {
  int total = 0;
  for (const auto& cell : cells_) total += cell->scheduler().replans();
  return total;
}

std::int64_t FederatedScheduler::total_pivots() const {
  std::int64_t total = 0;
  for (const auto& cell : cells_) total += cell->scheduler().total_pivots();
  return total;
}

bool FederatedScheduler::degraded_mode() const {
  for (const auto& cell : cells_) {
    if (cell->scheduler().degraded_mode()) return true;
  }
  return false;
}

int FederatedScheduler::degraded_replans() const {
  int total = 0;
  for (const auto& cell : cells_) {
    total += cell->scheduler().degraded_replans();
  }
  return total;
}

int FederatedScheduler::truncated_replans() const {
  int total = 0;
  for (const auto& cell : cells_) {
    total += cell->scheduler().truncated_replans();
  }
  return total;
}

int FederatedScheduler::decomposition_fallbacks() const {
  int total = 0;
  for (const auto& cell : cells_) {
    total += cell->scheduler().decomposition_fallbacks();
  }
  return total;
}

double FederatedScheduler::tenant_usage(int tenant) const {
  const auto it = tenant_usage_.find(tenant);
  return it == tenant_usage_.end() ? 0.0 : it->second;
}

double FederatedScheduler::quota_share(
    const workload::Workflow& workflow) const {
  // A workflow's claim on its tenant's quota: the fraction of the whole
  // cluster its total demand occupies when spread evenly over its
  // start-to-deadline window — the same "average load" yardstick the
  // decomposer flattens toward.
  const workload::ClusterSpec& total = config_.flowtime.cluster;
  const double window_s =
      std::max(workflow.deadline_s - workflow.start_s, total.slot_seconds);
  const workload::ResourceVec demand = workflow.total_demand();
  double share = 0.0;
  for (int r = 0; r < workload::kNumResources; ++r) {
    const double cap = total.capacity[r] * window_s;
    if (cap > 1e-12) share = std::max(share, demand[r] / cap);
  }
  return share;
}

void FederatedScheduler::on_event(const sim::SchedulerEvent& event) {
  if (const auto* arrival = std::get_if<sim::WorkflowArrivalEvent>(&event)) {
    handle_workflow_arrival(*arrival);
    return;
  }
  if (const auto* adhoc = std::get_if<sim::AdhocArrivalEvent>(&event)) {
    // Least ad-hoc pressure wins (live ad-hoc jobs per unit of cell
    // capacity); ties go to the lowest cell id, so routing is deterministic.
    int best = 0;
    double best_pressure = std::numeric_limits<double>::infinity();
    for (int i = 0; i < num_cells(); ++i) {
      const double pressure = static_cast<double>(cells_[i]->adhoc_active()) /
                              std::max(cells_[i]->spec().fraction, 1e-12);
      if (pressure < best_pressure - 1e-12) {
        best = i;
        best_pressure = pressure;
      }
    }
    cell_of_uid_[adhoc->uid] = best;
    cells_[best]->adhoc_arrived();
    cells_[best]->scheduler().on_event(event);
    return;
  }
  if (const auto* complete = std::get_if<sim::JobCompleteEvent>(&event)) {
    handle_job_complete(*complete);
    return;
  }
  if (const auto* change = std::get_if<sim::CapacityChangeEvent>(&event)) {
    for (auto& cell : cells_) {
      const double fraction = cell->spec().fraction;
      sim::CapacityChangeEvent scaled = *change;
      scaled.capacity = workload::scale(change->capacity, fraction);
      cell->scheduler().on_event(sim::SchedulerEvent{scaled});
      // The event carries per-slot resource-seconds; the admission layer
      // models capacity in resource units.
      const double slot_seconds = cell->spec().cluster.slot_seconds;
      cell->admission().on_capacity_change(
          workload::scale(change->capacity, fraction / slot_seconds),
          change->now_s);
    }
    return;
  }
  if (const auto* failure = std::get_if<sim::TaskFailureEvent>(&event)) {
    const auto it = cell_of_uid_.find(failure->uid);
    if (it != cell_of_uid_.end()) {
      cells_[it->second]->scheduler().on_event(event);
    }
    return;
  }
  // Solver sabotage re-parametrizes every cell's solver.
  for (auto& cell : cells_) cell->scheduler().on_event(event);
}

void FederatedScheduler::handle_workflow_arrival(
    const sim::WorkflowArrivalEvent& arrival) {
  const workload::Workflow& workflow = *arrival.workflow;
  WorkflowInfo info;
  info.workflow = arrival.workflow;
  info.node_uids = arrival.node_uids;
  info.complete.assign(arrival.node_uids.size(), false);
  info.incomplete_jobs = static_cast<int>(arrival.node_uids.size());
  info.quota_share = quota_share(workflow);
  workflows_[workflow.id] = std::move(info);
  tenant_of_workflow_[workflow.id] = workflow.tenant;
  for (const sim::JobUid uid : arrival.node_uids) {
    workflow_of_uid_[uid] = workflow.id;
  }

  if (config_.tenant_quota_fraction < 1.0) {
    const double usage = tenant_usage(workflow.tenant);
    const double share = workflows_[workflow.id].quota_share;
    if (usage + share > config_.tenant_quota_fraction + 1e-12) {
      deferred_.push_back(workflow.id);
      ++quota_deferrals_;
      if (obs::enabled()) {
        obs::registry().counter("cluster.quota_deferrals").add();
        obs::emit(obs::TraceEvent("quota_deferral")
                      .field("workflow", workflow.id)
                      .field("tenant", workflow.tenant)
                      .field("share", share)
                      .field("tenant_usage", usage));
      }
      return;
    }
  }
  const int cell = route_workflow(workflow, arrival.now_s);
  tenant_usage_[workflow.tenant] += workflows_[workflow.id].quota_share;
  place_workflow(workflow.id, cell, arrival.now_s, /*forced=*/false);
}

int FederatedScheduler::route_workflow(const workload::Workflow& workflow,
                                       double now_s) {
  if (num_cells() == 1) return 0;
  int best = -1;
  double best_peak = std::numeric_limits<double>::infinity();
  int fallback = 0;
  double fallback_peak = std::numeric_limits<double>::infinity();
  for (int i = 0; i < num_cells(); ++i) {
    if (!config_.admission_aware_routing) {
      const double load = cells_[i]->last_peak_load();
      if (load < fallback_peak - 1e-12) {
        fallback = i;
        fallback_peak = load;
      }
      continue;
    }
    // Projected peak load with the candidate added — the bin-pack key.
    // Infeasible cells (deadline cannot be met next to their admitted
    // work) are pruned first, DCoflow-style.
    const core::AdmissionDecision decision =
        cells_[i]->admission().evaluate(workflow, now_s);
    if (decision.admitted && decision.peak_load < best_peak - 1e-12) {
      best = i;
      best_peak = decision.peak_load;
    }
    if (decision.peak_load < fallback_peak - 1e-12) {
      fallback = i;
      fallback_peak = decision.peak_load;
    }
  }
  if (best >= 0) return best;
  // Every cell rejected (or routing is load-only): take the least-loaded
  // cell anyway — the cell scheduler extends windows rather than failing,
  // and the miss stays visible in the metrics.
  if (config_.admission_aware_routing) {
    ++infeasible_routes_;
    if (obs::enabled()) {
      obs::registry().counter("cluster.route_infeasible").add();
      obs::emit(obs::TraceEvent("route_infeasible")
                    .field("workflow", workflow.id)
                    .field("cell", fallback)
                    .field("peak_load", fallback_peak));
    }
  }
  return fallback;
}

void FederatedScheduler::place_workflow(int workflow_id, int cell,
                                        double now_s, bool forced) {
  WorkflowInfo& info = workflows_.at(workflow_id);
  info.cell = cell;
  CellScheduler& target = *cells_[cell];
  target.scheduler().on_event(sim::SchedulerEvent{
      sim::WorkflowArrivalEvent{info.workflow, info.node_uids, now_s}});
  for (std::size_t node = 0; node < info.node_uids.size(); ++node) {
    if (info.complete[node]) {
      // Re-deliver completions so a migrated-in workflow's finished jobs
      // are not re-planned.
      target.scheduler().on_event(sim::SchedulerEvent{
          sim::JobCompleteEvent{info.node_uids[node], now_s}});
    } else {
      cell_of_uid_[info.node_uids[node]] = cell;
    }
  }
  // Commit the demand to the cell's admission view even when the placement
  // was forced past the feasibility gate — the routing oracle must keep
  // seeing it.
  (void)forced;
  target.admission().force_admit(*info.workflow, now_s);
}

void FederatedScheduler::handle_job_complete(
    const sim::JobCompleteEvent& event) {
  const auto cell_it = cell_of_uid_.find(event.uid);
  if (cell_it == cell_of_uid_.end()) return;
  const int cell = cell_it->second;
  cells_[cell]->scheduler().on_event(sim::SchedulerEvent{event});
  cell_of_uid_.erase(cell_it);

  const auto wf_it = workflow_of_uid_.find(event.uid);
  if (wf_it == workflow_of_uid_.end()) {
    // Ad-hoc job: just drop the routing pressure.
    cells_[cell]->adhoc_finished();
    return;
  }
  const int workflow_id = wf_it->second;
  workflow_of_uid_.erase(wf_it);
  auto info_it = workflows_.find(workflow_id);
  if (info_it == workflows_.end()) return;
  WorkflowInfo& info = info_it->second;
  for (std::size_t node = 0; node < info.node_uids.size(); ++node) {
    if (info.node_uids[node] != event.uid) continue;
    if (!info.complete[node]) {
      info.complete[node] = true;
      --info.incomplete_jobs;
      cells_[cell]->admission().complete_job(
          workflow_id, static_cast<dag::NodeId>(node), event.now_s);
    }
    break;
  }
  if (info.incomplete_jobs <= 0) {
    cells_[cell]->admission().forget_workflow(workflow_id, event.now_s);
    const int tenant = tenant_of_workflow_[workflow_id];
    tenant_usage_[tenant] =
        std::max(tenant_usage_[tenant] - info.quota_share, 0.0);
    tenant_of_workflow_.erase(workflow_id);
    workflows_.erase(info_it);
  }
}

void FederatedScheduler::route_deferred(double now_s) {
  if (deferred_.empty()) return;
  std::vector<int> still_deferred;
  for (const int workflow_id : deferred_) {
    const auto it = workflows_.find(workflow_id);
    if (it == workflows_.end()) continue;  // completed while deferred: gone
    const int tenant = tenant_of_workflow_[workflow_id];
    if (tenant_usage(tenant) + it->second.quota_share >
        config_.tenant_quota_fraction + 1e-12) {
      still_deferred.push_back(workflow_id);
      continue;
    }
    const int cell = route_workflow(*it->second.workflow, now_s);
    tenant_usage_[tenant] += it->second.quota_share;
    place_workflow(workflow_id, cell, now_s, /*forced=*/true);
  }
  deferred_ = std::move(still_deferred);
}

void FederatedScheduler::run_migrations(const sim::ClusterState& state) {
  if (!config_.enable_migration || num_cells() <= 1) return;
  // Overload detection runs every slot; the counter fires on transitions.
  std::vector<int> hot;
  for (int i = 0; i < num_cells(); ++i) {
    const bool overloaded = cells_[i]->overloaded(config_.overload_threshold);
    if (overloaded) hot.push_back(i);
    if (cells_[i]->latch_overload(overloaded)) {
      ++overload_events_;
      if (obs::enabled()) {
        obs::registry().counter("cluster.cell_overload_events").add();
        obs::emit(obs::TraceEvent("cell_overload")
                      .field("cell", i)
                      .field("peak_load", cells_[i]->last_peak_load())
                      .field("degraded",
                             cells_[i]->scheduler().degraded_mode()));
      }
    }
  }
  if (hot.empty()) return;

  // Remaining demand per workflow, from the authoritative views.
  std::map<int, double> remaining_by_workflow;
  for (const sim::JobView& view : state.active) {
    if (view.kind != sim::JobKind::kDeadline) continue;
    double worst = 0.0;
    for (int r = 0; r < workload::kNumResources; ++r) {
      worst = std::max(worst, view.remaining_estimate[r]);
    }
    remaining_by_workflow[view.workflow_id] += worst;
  }

  int budget = config_.max_migrations_per_slot;
  for (const int from : hot) {
    if (budget <= 0) break;
    // Candidate: the cell's heaviest incomplete workflow not in cooldown.
    int candidate = -1;
    double candidate_remaining = 0.0;
    for (const auto& [workflow_id, info] : workflows_) {
      if (info.cell != from || info.incomplete_jobs <= 0) continue;
      if (state.slot - info.last_migration_slot <
          config_.migration_cooldown_slots) {
        continue;
      }
      const auto it = remaining_by_workflow.find(workflow_id);
      const double remaining = it == remaining_by_workflow.end()
                                   ? 0.0
                                   : it->second;
      if (remaining > candidate_remaining + 1e-9) {
        candidate = workflow_id;
        candidate_remaining = remaining;
      }
    }
    if (candidate < 0) continue;
    // Target: the least-loaded non-hot cell that admits the workflow
    // (forced placement onto the least-loaded one if none admits — moving
    // to a cooler cell still beats staying on the hotspot — but never onto
    // another hotspot: in that state migration only reshuffles pain).
    const workload::Workflow& workflow = *workflows_.at(candidate).workflow;
    int to = -1;
    double to_peak = std::numeric_limits<double>::infinity();
    int cool = -1;
    double cool_peak = std::numeric_limits<double>::infinity();
    for (int i = 0; i < num_cells(); ++i) {
      if (i == from || cells_[i]->overloaded(config_.overload_threshold)) {
        continue;
      }
      const core::AdmissionDecision decision =
          cells_[i]->admission().evaluate(workflow, state.now_s);
      if (decision.admitted && decision.peak_load < to_peak - 1e-12) {
        to = i;
        to_peak = decision.peak_load;
      }
      if (decision.peak_load < cool_peak - 1e-12) {
        cool = i;
        cool_peak = decision.peak_load;
      }
    }
    if (to < 0) to = cool;
    if (to < 0) continue;
    migrate_workflow(candidate, from, to, state.now_s, state.slot);
    --budget;
  }
}

void FederatedScheduler::migrate_workflow(int workflow_id, int from, int to,
                                          double now_s, int slot) {
  const int dropped =
      cells_[from]->scheduler().forget_workflow(workflow_id);
  cells_[from]->admission().forget_workflow(workflow_id, now_s);
  place_workflow(workflow_id, to, now_s, /*forced=*/true);
  WorkflowInfo& info = workflows_.at(workflow_id);
  info.last_migration_slot = slot;
  ++migrations_;
  if (obs::enabled()) {
    obs::registry().counter("cluster.migrations").add();
    obs::emit(obs::TraceEvent("migration")
                  .field("workflow", workflow_id)
                  .field("from_cell", from)
                  .field("to_cell", to)
                  .field("jobs_moved", dropped)
                  .field("sim_s", now_s));
  }
}

std::vector<sim::ClusterState> FederatedScheduler::split_state(
    const sim::ClusterState& state) const {
  std::vector<sim::ClusterState> cell_states(cells_.size());
  for (int i = 0; i < num_cells(); ++i) {
    sim::ClusterState& cs = cell_states[static_cast<std::size_t>(i)];
    cs.slot = state.slot;
    cs.now_s = state.now_s;
    cs.slot_seconds = state.slot_seconds;
    cs.capacity = workload::scale(state.capacity, cells_[i]->spec().fraction);
  }
  for (const sim::JobView& view : state.active) {
    const auto it = cell_of_uid_.find(view.uid);
    if (it == cell_of_uid_.end()) continue;  // quota-deferred: no cell serves
    cell_states[static_cast<std::size_t>(it->second)].active.push_back(view);
  }
  return cell_states;
}

void FederatedScheduler::replan_dirty_cells(
    const std::vector<sim::ClusterState>& cell_states, double now_s) {
  struct SolveJob {
    int cell = 0;
    core::PendingReplan pending;
    core::PlanSolveResult solved;
  };
  std::vector<SolveJob> jobs;
  for (int i = 0; i < num_cells(); ++i) {
    if (!cells_[i]->scheduler().dirty()) continue;
    SolveJob job;
    job.cell = i;
    job.pending = cells_[i]->scheduler().begin_replan(
        cell_states[static_cast<std::size_t>(i)]);
    jobs.push_back(std::move(job));
  }
  if (jobs.empty()) return;

  auto solve_one = [this](SolveJob& job) {
    CellScheduler& cell = *cells_[job.cell];
    std::optional<obs::ScopedTimer> timer;
    if (obs::enabled()) timer.emplace(&job.pending.record.wall_s);
    job.solved = core::FlowTimeScheduler::solve_replan(
        cell.scheduler().config(), &cell.warm_cache(), job.pending);
  };

  if (pool_) {
    runtime::WaitGroup barrier;
    barrier.add(static_cast<int>(jobs.size()));
    for (SolveJob& job : jobs) {
      pool_->submit([&solve_one, &job, &barrier] {
        solve_one(job);
        barrier.done();
      });
    }
    barrier.wait();
  } else {
    for (SolveJob& job : jobs) solve_one(job);
  }

  // Adoption always happens on the serving thread, in cell order, so runs
  // are deterministic regardless of solver-thread interleaving.
  double round_wall = 0.0;
  for (SolveJob& job : jobs) {
    cells_[job.cell]->scheduler().finish_replan(
        job.pending, std::move(job.solved), now_s);
    const double wall = job.pending.record.wall_s;
    round_wall = pool_ ? std::max(round_wall, wall) : round_wall + wall;
  }
  replan_round_wall_s_.push_back(round_wall);
}

std::vector<sim::Allocation> FederatedScheduler::allocate(
    const sim::ClusterState& state) {
  route_deferred(state.now_s);
  run_migrations(state);
  const std::vector<sim::ClusterState> cell_states = split_state(state);
  for (int i = 0; i < num_cells(); ++i) {
    cells_[i]->scheduler().sync_views(
        cell_states[static_cast<std::size_t>(i)]);
  }
  replan_dirty_cells(cell_states, state.now_s);
  std::vector<sim::Allocation> merged;
  for (int i = 0; i < num_cells(); ++i) {
    std::vector<sim::Allocation> cell_allocs = cells_[i]->scheduler().serve(
        cell_states[static_cast<std::size_t>(i)]);
    merged.insert(merged.end(), cell_allocs.begin(), cell_allocs.end());
  }
  return merged;
}

}  // namespace flowtime::cluster
