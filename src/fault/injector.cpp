#include "fault/injector.h"

#include <cmath>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace flowtime::fault {

namespace {

void emit_capacity_change(int slot, double now_s, const char* direction,
                          const workload::ResourceVec& effective,
                          const workload::ResourceVec& delta) {
  obs::registry().counter("fault.capacity_changes").add();
  obs::TraceEvent event("capacity_change");
  event.field("slot", slot)
      .field("now_s", now_s)
      .field("direction", direction);
  for (int r = 0; r < workload::kNumResources; ++r) {
    event.field(std::string("capacity_") + workload::resource_name(r),
                effective[r]);
    event.field(std::string("delta_") + workload::resource_name(r),
                delta[r]);
  }
  obs::emit(event);
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan,
                             const workload::ClusterSpec& cluster)
    : plan_(plan),
      cluster_(cluster),
      // Independent streams per fault family: adding machines to a plan
      // must not shift the hazard draws of an otherwise identical run.
      noise_rng_(plan.seed ^ 0x9e3779b97f4a7c15ull),
      hazard_rng_(plan.seed ^ 0xc2b2ae3d27d4eb4full),
      cell_rng_(plan.seed ^ 0xbf58476d1ce4e5b9ull) {
  machines_.reserve(plan_.machines.size());
  for (const MachineFault& fault : plan_.machines) {
    machines_.push_back(MachineState{fault, false, obs::kNoSpan});
  }
  cell_states_.reserve(plan_.cell_faults.size());
  for (const CellFault& fault : plan_.cell_faults) {
    // Each fault forks its own flap-jitter stream at construction, in
    // declaration order, so per-slot evaluation order cannot shift draws.
    cell_states_.push_back(
        CellFaultState{fault, cell_rng_.fork(), false, false, false, 0,
                       obs::kNoSpan});
  }
  for (const TaskFault& fault : plan_.task_faults) {
    task_faults_by_slot_.emplace(fault.slot, fault);
  }
  for (const StragglerFault& fault : plan_.stragglers) {
    stragglers_by_slot_.emplace(fault.slot, fault);
  }
}

workload::ResourceVec FaultInjector::capacity_for_slot(
    int slot, double now_s, const workload::ResourceVec& base,
    bool* changed) {
  if (changed != nullptr) *changed = false;
  if (machines_.empty()) return base;

  workload::ResourceVec down_delta{};
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    MachineState& machine = machines_[i];
    const bool should_be_down =
        slot >= machine.fault.down_slot &&
        (machine.fault.up_slot < 0 || slot < machine.fault.up_slot);
    if (should_be_down && !machine.down) {
      machine.down = true;
      ++log_.machine_downs;
      if (obs::enabled()) {
        obs::registry().counter("fault.machine_down").add();
        obs::TraceEvent event("fault_injected");
        event.field("kind", "machine_down")
            .field("slot", slot)
            .field("now_s", now_s)
            .field("machine", i);
        for (int r = 0; r < workload::kNumResources; ++r) {
          event.field(std::string("capacity_") + workload::resource_name(r),
                      machine.fault.capacity[r]);
        }
        obs::emit(event);
        machine.span = obs::begin_span(
            "fault", "machine_down#" + std::to_string(i), obs::kNoSpan,
            now_s);
      }
    } else if (!should_be_down && machine.down) {
      machine.down = false;
      ++log_.machine_ups;
      if (obs::enabled()) {
        obs::registry().counter("fault.machine_up").add();
        obs::end_span(machine.span, now_s);
        machine.span = obs::kNoSpan;
      }
    }
    if (machine.down) {
      down_delta = workload::add(down_delta, machine.fault.capacity);
    }
  }

  const workload::ResourceVec effective =
      workload::clamp_nonnegative(workload::sub(base, down_delta));
  const bool transition =
      !capacity_applied_once_
          ? !workload::is_zero(down_delta)
          : !workload::is_zero(workload::sub(down_delta, last_down_delta_),
                               1e-9);
  if (transition) {
    ++log_.capacity_changes;
    if (changed != nullptr) *changed = true;
    if (obs::enabled()) {
      const bool shrinking =
          !workload::fits_within(down_delta, last_down_delta_, 1e-9);
      emit_capacity_change(slot, now_s, shrinking ? "down" : "up", effective,
                           down_delta);
    }
  }
  last_down_delta_ = down_delta;
  capacity_applied_once_ = true;
  return effective;
}

std::optional<TaskFaultAction> FaultInjector::task_fault(int slot,
                                                         int workflow_id,
                                                         int node,
                                                         int retries_so_far) {
  // Declared faults fire exactly once, regardless of retry count, at the
  // first slot >= the declared one at which the job is actually runnable
  // (the simulator only consults us for runnable jobs) — a scheduler that
  // defers the job past the declared slot still suffers the fault.
  const auto past = task_faults_by_slot_.upper_bound(slot);
  for (auto it = task_faults_by_slot_.begin(); it != past; ++it) {
    if (it->second.workflow_id == workflow_id && it->second.node == node) {
      TaskFaultAction action;
      action.lost_fraction = it->second.lost_fraction;
      action.backoff_slots = std::max(it->second.backoff_slots, 1);
      task_faults_by_slot_.erase(it);
      return action;
    }
  }
  if (plan_.hazard.active() && retries_so_far < plan_.hazard.max_retries &&
      hazard_rng_.bernoulli(plan_.hazard.prob_per_slot)) {
    TaskFaultAction action;
    action.lost_fraction = plan_.hazard.lost_fraction;
    action.backoff_slots = std::max(plan_.hazard.backoff_slots, 1);
    action.from_hazard = true;
    return action;
  }
  return std::nullopt;
}

double FaultInjector::straggler_factor(int slot, int workflow_id, int node) {
  // Like declared task faults: fires at the first slot >= the declared one
  // the job is seen alive, so deferred jobs still straggle.
  const auto past = stragglers_by_slot_.upper_bound(slot);
  for (auto it = stragglers_by_slot_.begin(); it != past; ++it) {
    if (it->second.workflow_id == workflow_id && it->second.node == node) {
      const double factor = it->second.factor;
      stragglers_by_slot_.erase(it);
      return factor > 0.0 ? factor : 1.0;
    }
  }
  return 1.0;
}

double FaultInjector::noise_factor(int workflow_id, int node) {
  if (!plan_.noise.active()) return 1.0;
  double factor = 1.0;
  switch (plan_.noise.model) {
    case NoiseModel::kNone:
      return 1.0;
    case NoiseModel::kLognormal:
      factor = plan_.noise.bias *
               noise_rng_.lognormal(0.0, std::max(plan_.noise.sigma, 0.0));
      break;
    case NoiseModel::kAdversarial:
      factor = plan_.noise.bias;
      break;
  }
  if (factor <= 0.0) factor = 1.0;
  ++log_.noised_jobs;
  if (obs::enabled()) {
    obs::registry().counter("fault.noised_jobs").add();
    obs::emit(obs::TraceEvent("fault_injected")
                  .field("kind", "estimate_noise")
                  .field("workflow", workflow_id)
                  .field("node", node)
                  .field("model", to_string(plan_.noise.model))
                  .field("factor", factor));
  }
  return factor;
}

std::optional<SolverFault> FaultInjector::solver_fault_for_slot(
    int slot, bool* changed) {
  *changed = false;
  if (plan_.solver_faults.empty()) return std::nullopt;

  // Merge every window covering this slot: tightest limits win, failure
  // forcing ORs.
  std::optional<SolverFault> merged;
  for (const SolverFault& fault : plan_.solver_faults) {
    if (slot < fault.slot) continue;
    if (fault.until_slot >= 0 && slot >= fault.until_slot) continue;
    if (!merged.has_value()) {
      merged = fault;
      merged->slot = slot;
      merged->until_slot = -1;  // the merge is a per-slot answer
      continue;
    }
    if (fault.budget_ms >= 0.0) {
      merged->budget_ms = merged->budget_ms >= 0.0
                              ? std::min(merged->budget_ms, fault.budget_ms)
                              : fault.budget_ms;
    }
    if (fault.pivot_cap > 0) {
      merged->pivot_cap = merged->pivot_cap > 0
                              ? std::min(merged->pivot_cap, fault.pivot_cap)
                              : fault.pivot_cap;
    }
    merged->force_numerical_failure =
        merged->force_numerical_failure || fault.force_numerical_failure;
  }

  const bool same =
      solver_checked_once_ &&
      merged.has_value() == last_solver_fault_.has_value() &&
      (!merged.has_value() ||
       (merged->budget_ms == last_solver_fault_->budget_ms &&
        merged->pivot_cap == last_solver_fault_->pivot_cap &&
        merged->force_numerical_failure ==
            last_solver_fault_->force_numerical_failure));
  if (!same) {
    *changed = true;
    if (merged.has_value()) ++log_.solver_sabotages;
  }
  solver_checked_once_ = true;
  last_solver_fault_ = merged;
  return merged;
}

int FaultInjector::flap_phase_slots(CellFaultState& state) {
  const int period = std::max(state.fault.period_slots, 1);
  if (state.fault.jitter <= 0.0) return period;
  const double jitter =
      std::min(std::max(state.fault.jitter, 0.0), 0.999);
  const double drawn =
      period * state.rng.uniform_real(1.0 - jitter, 1.0 + jitter);
  return std::max(1, static_cast<int>(std::lround(drawn)));
}

std::vector<CellFaultTransition> FaultInjector::cell_faults_for_slot(
    int slot, double now_s) {
  std::vector<CellFaultTransition> transitions;
  if (cell_states_.empty()) return transitions;

  for (std::size_t i = 0; i < cell_states_.size(); ++i) {
    CellFaultState& state = cell_states_[i];
    const CellFault& fault = state.fault;
    bool should_be_active = false;
    if (slot >= fault.slot &&
        (fault.until_slot < 0 || slot < fault.until_slot)) {
      if (fault.mode == CellFaultMode::kFlap) {
        // Phase machine: alternating down/up phases starting down at
        // fault.slot. Advanced once per slot (increasing order), so each
        // jitter draw happens exactly once per phase boundary.
        if (!state.flap_started) {
          state.flap_started = true;
          state.flap_down = true;
          state.flap_phase_end = slot + flap_phase_slots(state);
        }
        while (slot >= state.flap_phase_end) {
          state.flap_down = !state.flap_down;
          state.flap_phase_end += flap_phase_slots(state);
        }
        should_be_active = state.flap_down;
      } else {
        should_be_active = true;
      }
    }
    if (should_be_active == state.active) continue;
    state.active = should_be_active;
    transitions.push_back(CellFaultTransition{fault.cell, fault.mode,
                                              should_be_active});
    if (should_be_active) {
      ++log_.cell_faults;
      if (obs::enabled()) {
        obs::registry().counter("fault.cell_faults").add();
        obs::emit(obs::TraceEvent("fault_injected")
                      .field("kind", std::string("cell_") +
                                         to_string(fault.mode))
                      .field("slot", slot)
                      .field("now_s", now_s)
                      .field("cell", fault.cell));
        state.span = obs::begin_span(
            "fault",
            std::string("cell_") + to_string(fault.mode) + "#" +
                std::to_string(fault.cell),
            obs::kNoSpan, now_s);
      }
    } else {
      ++log_.cell_recoveries;
      if (obs::enabled()) {
        obs::registry().counter("fault.cell_recoveries").add();
        obs::emit(obs::TraceEvent("fault_lifted")
                      .field("kind", std::string("cell_") +
                                         to_string(fault.mode))
                      .field("slot", slot)
                      .field("now_s", now_s)
                      .field("cell", fault.cell));
        obs::end_span(state.span, now_s);
        state.span = obs::kNoSpan;
      }
    }
  }
  return transitions;
}

}  // namespace flowtime::fault
