// Declarative fault plans (the "chaos" side of the robustness testbed).
//
// A FaultPlan describes every perturbation a simulation run should suffer:
//
//   * machine churn — whole machines leave the cluster at a slot and
//     (optionally) come back later, shrinking the capacity vector C_t^r
//     mid-horizon exactly the way the paper's time-varying caps allow;
//   * task-level faults — a job's in-flight work is lost at a given slot
//     and the job retries after a configurable backoff, either declared
//     per-job or drawn from a seeded per-slot hazard rate;
//   * stragglers — a job's remaining ground-truth work is inflated by a
//     slowdown multiplier (tasks run slower than estimated from that slot
//     on), surfacing as estimate overruns downstream;
//   * estimate noise — the hidden actual/estimate ratio of every workflow
//     job is perturbed by a multiplicative lognormal model or an
//     adversarial uniform under-estimation factor;
//   * cell faults — a whole federation cell (scheduler shard) crashes,
//     hangs, flaps, or loses its solver for a slot window, exercising the
//     coordinator's failure detection and workflow failover.
//
// The plan is pure data: all randomness derives from `seed` inside the
// FaultInjector (fault/injector.h), so a (plan, scenario) pair reproduces
// bit-identical runs. Plans round-trip through workload::scenario_io via
// the `fault*` directives, keeping chaos scenarios shareable as text.
// Header-only so workload/scenario_io can parse plans without linking the
// injection engine.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/resources.h"

namespace flowtime::fault {

/// One machine (or rack) failure: `capacity` resource units leave the
/// cluster at the start of `down_slot` and return at the start of
/// `up_slot` (-1 = never recovers). Overlapping failures stack.
struct MachineFault {
  int down_slot = 0;
  int up_slot = -1;
  workload::ResourceVec capacity{};
};

/// One declared task-level fault: at the start of `slot` the job loses
/// `lost_fraction` of the progress it has made so far and is barred from
/// running for `backoff_slots` slots before its retry is released.
struct TaskFault {
  int workflow_id = -1;  ///< owning workflow; -1 targets an ad-hoc job
  int node = -1;         ///< DAG node (workflow jobs) or ad-hoc id
  int slot = 0;
  double lost_fraction = 1.0;
  int backoff_slots = 1;
};

/// One declared straggler: from `slot` on, the job's remaining ground-truth
/// work takes `factor`x longer than the estimate assumed (a one-time
/// inflation of the remaining actual demand).
struct StragglerFault {
  int workflow_id = -1;
  int node = -1;
  int slot = 0;
  double factor = 2.0;
};

/// Random churn: every arrived, runnable job fails with `prob_per_slot`
/// each slot (seeded, deterministic), up to `max_retries` times per job.
struct HazardConfig {
  double prob_per_slot = 0.0;
  double lost_fraction = 1.0;
  int backoff_slots = 1;
  int max_retries = 3;

  bool active() const { return prob_per_slot > 0.0; }
};

enum class NoiseModel {
  kNone,
  /// factor *= bias * lognormal(0, sigma): symmetric-in-log noise around
  /// `bias` (the paper's Fig. 9 estimation-error sweep generalized).
  kLognormal,
  /// factor *= bias with bias > 1: every estimate is uniformly too small,
  /// the worst case for a planner that defers work toward the deadline.
  kAdversarial,
};

inline const char* to_string(NoiseModel model) {
  switch (model) {
    case NoiseModel::kNone:
      return "none";
    case NoiseModel::kLognormal:
      return "lognormal";
    case NoiseModel::kAdversarial:
      return "adversarial";
  }
  return "none";
}

/// Ground-truth runtime noise applied to workflow jobs at release. Only the
/// hidden actual_runtime_factor moves; the estimates schedulers see stay
/// untouched, so this models misestimation, not re-profiling.
struct NoiseConfig {
  NoiseModel model = NoiseModel::kNone;
  double sigma = 0.0;  ///< lognormal shape (log-stddev)
  double bias = 1.0;   ///< multiplicative bias (>1 = under-estimation)

  bool active() const { return model != NoiseModel::kNone; }
};

/// How a federation cell (one scheduler shard, cluster/federated_scheduler)
/// fails. The machines behind the cell stay up — it is the *scheduler*
/// process that dies — so cluster capacity is untouched; the cell's slice
/// simply goes unmanaged until recovery.
enum class CellFaultMode {
  /// Process dies: all in-memory state (plan, warm cache, admission ledger)
  /// is lost; recovery restarts from empty. Until `until_slot` (-1 = never
  /// recovers) the cell neither solves nor serves.
  kCrash,
  /// Process lives but stops responding for [slot, until_slot): solves are
  /// preempted, heartbeats miss, no allocations are served. State survives.
  kHang,
  /// Crash/recover cycling: starting at `slot`, the cell toggles
  /// down/up every `period_slots` (optionally jittered from the cell
  /// stream) until `until_slot`. Each down phase has crash semantics.
  kFlap,
  /// The cell's solver is broken for [slot, until_slot): every solve
  /// attempt fails (is preempted), but the cell still serves its last
  /// plan and answers heartbeats.
  kSolverFail,
};

inline const char* to_string(CellFaultMode mode) {
  switch (mode) {
    case CellFaultMode::kCrash:
      return "crash";
    case CellFaultMode::kHang:
      return "hang";
    case CellFaultMode::kFlap:
      return "flap";
    case CellFaultMode::kSolverFail:
      return "solver";
  }
  return "crash";
}

/// One declared cell-level fault. For kCrash/kHang/kSolverFail the fault is
/// active over [slot, until_slot) (-1 = forever). For kFlap the window is
/// subdivided into alternating down/up phases of `period_slots` each,
/// starting down; `jitter` (in [0, 1)) perturbs each phase length by a
/// deterministic draw from the injector's cell stream.
struct CellFault {
  int cell = 0;
  CellFaultMode mode = CellFaultMode::kCrash;
  int slot = 0;
  int until_slot = -1;
  int period_slots = 0;
  double jitter = 0.0;
};

/// Solver sabotage: from the start of `slot` until the start of
/// `until_slot` (-1 = forever) the scheduler's internal solver is squeezed
/// to `budget_ms` of wall clock and `pivot_cap` pivots per planning
/// decision (either may be unlimited: < 0 resp. <= 0), and — when
/// `force_numerical_failure` is set — its primary solve path is declared
/// numerically broken, forcing the escalation ladder to its cold rung.
/// Overlapping windows merge with the tightest limit winning.
struct SolverFault {
  int slot = 0;
  int until_slot = -1;
  double budget_ms = -1.0;
  std::int64_t pivot_cap = 0;
  bool force_numerical_failure = false;
};

/// The complete fault declaration for one run. Default-constructed plans
/// are empty: the injector becomes a no-op and instrumented binaries are
/// byte-identical to pre-fault builds.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<MachineFault> machines;
  std::vector<TaskFault> task_faults;
  std::vector<StragglerFault> stragglers;
  std::vector<SolverFault> solver_faults;
  std::vector<CellFault> cell_faults;
  HazardConfig hazard;
  NoiseConfig noise;

  bool empty() const {
    return machines.empty() && task_faults.empty() && stragglers.empty() &&
           solver_faults.empty() && cell_faults.empty() && !hazard.active() &&
           !noise.active();
  }
};

}  // namespace flowtime::fault
