// Fault-injection engine: turns a declarative FaultPlan into per-slot
// perturbations the simulator applies to ground truth.
//
// One injector drives one run. The simulator consults it in slot order:
//
//   * capacity_for_slot() folds the machine-churn schedule into the slot's
//     base capacity, emitting paired fault/recovery events — a
//     `fault_injected` (kind=machine_down) plus a `capacity_change` event
//     and a `fault` span at the down transition, the span end plus another
//     `capacity_change` at recovery;
//   * task_fault() answers "does this job fail this slot?" from the
//     declared per-job faults and the seeded hazard draw;
//   * straggler_factor() returns the declared slowdown multiplier firing
//     for a job at a slot (1.0 otherwise);
//   * noise_factor() perturbs one job's hidden actual/estimate ratio at
//     layout time (lognormal or adversarial models);
//   * cell_faults_for_slot() reports federation-cell failures/recoveries
//     crossing the slot; the simulator forwards them as typed
//     CellFaultEvents for the federated coordinator to react to.
//
// Determinism: all randomness flows from plan.seed through forked
// util::Rng streams (one for noise, one for the hazard), and the draw
// order is fixed by the simulator's deterministic job layout and slot
// loop, so identical (plan, scenario) pairs replay bit-identically.
// Observability follows the repo contract: every emission site guards on
// obs::enabled(), so an empty plan — or a disabled obs layer — leaves the
// run untouched.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "fault/plan.h"
#include "obs/span.h"
#include "util/rng.h"
#include "workload/resources.h"

namespace flowtime::fault {

/// What the simulator must do to a job the injector just failed.
struct TaskFaultAction {
  double lost_fraction = 1.0;
  int backoff_slots = 1;
  bool from_hazard = false;
};

/// Counters mirrored in-process so tests and reports can assert on fault
/// activity without parsing the trace. The obs `fault.*` counters carry the
/// same numbers.
struct FaultLog {
  int machine_downs = 0;
  int machine_ups = 0;
  int capacity_changes = 0;
  int task_failures = 0;
  int task_retries = 0;
  int stragglers = 0;
  int noised_jobs = 0;
  int solver_sabotages = 0;  // engage transitions (lifts are not counted)
  int cell_faults = 0;       // cell down/broken engage transitions
  int cell_recoveries = 0;   // cell up/repaired transitions
};

/// One cell-fault transition crossed this slot: the fault `mode` on `cell`
/// either engages (`active`) or lifts. Delivered to schedulers as a typed
/// sim::CellFaultEvent; non-federated policies ignore it.
struct CellFaultTransition {
  int cell = 0;
  CellFaultMode mode = CellFaultMode::kCrash;
  bool active = false;
};

class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, const workload::ClusterSpec& cluster);

  /// False for empty plans: every hook below becomes a cheap no-op and the
  /// simulator skips the fault path entirely.
  bool active() const { return !plan_.empty(); }

  const FaultPlan& plan() const { return plan_; }
  const FaultLog& log() const { return log_; }

  /// Effective capacity (resource units, not resource-seconds) at `slot`
  /// after machine churn. Must be called once per slot in increasing slot
  /// order; transitions emit their events/spans on the call that crosses
  /// them. Sets `*changed` when the churn delta differs from the previous
  /// slot's (the signal to notify schedulers).
  workload::ResourceVec capacity_for_slot(int slot, double now_s,
                                          const workload::ResourceVec& base,
                                          bool* changed);

  /// Declared + hazard-driven failure decision for one arrived, runnable,
  /// incomplete job. `retries_so_far` caps hazard faults at
  /// plan.hazard.max_retries; declared faults always fire. At most one
  /// fault per job per slot (declared wins over hazard).
  std::optional<TaskFaultAction> task_fault(int slot, int workflow_id,
                                            int node, int retries_so_far);

  /// Declared straggler multiplier firing for this job at this slot, or
  /// 1.0. Each declared straggler fires at most once.
  double straggler_factor(int slot, int workflow_id, int node);

  /// Ground-truth noise factor for one workflow job, drawn at layout time
  /// (call in layout order for determinism). 1.0 when noise is off.
  double noise_factor(int workflow_id, int node);

  /// Merged solver sabotage active at `slot` (tightest budget and pivot cap
  /// of every overlapping window, ORed failure forcing), or nullopt when
  /// none is active. Must be called once per slot in increasing slot order;
  /// `*changed` is set when the merged state differs from the previous
  /// slot's — engage, lift, AND window-to-window tightening all count, so
  /// the scheduler hook fires exactly on transitions.
  std::optional<SolverFault> solver_fault_for_slot(int slot, bool* changed);

  /// Cell-fault transitions crossing `slot`, in plan declaration order.
  /// Must be called once per slot in increasing slot order; each returned
  /// entry is an engage (active=true) or lift (active=false) edge relative
  /// to the previous slot. Flap phases draw their jittered lengths from the
  /// dedicated cell stream, so adding cell faults never shifts the noise or
  /// hazard draws of an otherwise identical plan.
  std::vector<CellFaultTransition> cell_faults_for_slot(int slot,
                                                        double now_s);

  /// In-process mirrors for tests/reports (the obs counters match).
  void count_task_failure() { ++log_.task_failures; }
  void count_task_retry() { ++log_.task_retries; }
  void count_straggler() { ++log_.stragglers; }

 private:
  struct MachineState {
    MachineFault fault;
    bool down = false;
    obs::SpanId span = obs::kNoSpan;
  };

  struct CellFaultState {
    CellFault fault;
    util::Rng rng;  ///< private flap-jitter stream, forked from cell_rng_
    bool active = false;
    bool flap_started = false;
    bool flap_down = false;
    int flap_phase_end = 0;
    obs::SpanId span = obs::kNoSpan;
  };

  /// Jittered length of one flap phase, drawn from the fault's own stream.
  static int flap_phase_slots(CellFaultState& state);

  FaultPlan plan_;
  workload::ClusterSpec cluster_;
  util::Rng noise_rng_;
  util::Rng hazard_rng_;
  util::Rng cell_rng_;
  std::vector<MachineState> machines_;
  std::vector<CellFaultState> cell_states_;
  workload::ResourceVec last_down_delta_{};
  bool capacity_applied_once_ = false;
  /// Declared task faults / stragglers indexed by slot; entries are
  /// consumed (fire once).
  std::multimap<int, TaskFault> task_faults_by_slot_;
  std::multimap<int, StragglerFault> stragglers_by_slot_;
  /// Merged sabotage state of the previous solver_fault_for_slot call, for
  /// transition detection. nullopt = no sabotage was active.
  std::optional<SolverFault> last_solver_fault_;
  bool solver_checked_once_ = false;
  FaultLog log_;
};

}  // namespace flowtime::fault
