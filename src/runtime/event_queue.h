// Bounded MPSC queue of scheduler events (DESIGN.md §11).
//
// The ingestion side of the concurrent runtime: producers (the simulator
// loop, fault injectors, external drivers) push SchedulerEvent values;
// the single consumer — the runtime's serving thread — drains everything
// queued in one sweep at the top of each allocate(). Draining in batches
// is what makes burst coalescing possible: five arrivals queued between
// two slots become one re-plan, not five.
//
// Bounded with blocking push: when the queue is full the producer waits,
// which back-pressures event sources instead of growing memory without
// limit. `close()` releases blocked producers and makes further pushes
// fail, for shutdown.
//
// Deadlock guard: in the standard single-threaded setup the simulator
// thread is both the sole producer and the sole consumer — if it blocked
// on a full queue there would be no thread left to drain it. The queue
// therefore tracks the consumer's thread id (the constructing thread
// until the first drain re-binds it) and a push from that thread never
// blocks: it grows past the bound instead and counts the overflow, so the
// cap back-pressures only genuinely concurrent producers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/events.h"

namespace flowtime::runtime {

/// One queued event plus its causal trace stamp. With obs enabled the queue
/// stamps every accepted event with a process-wide trace id and its enqueue
/// wall time (obs::wall_now_s) and emits an `event_enqueued` trace event —
/// the root of the `event_enqueued → batch_formed → solve_* →
/// plan_adopted|plan_discarded` chain the concurrent runtime completes.
/// With obs disabled both stamps stay zero and nothing is emitted.
struct StampedEvent {
  sim::SchedulerEvent event;
  std::int64_t trace_id = 0;
  double enqueue_wall_s = 0.0;
};

class EventQueue {
 public:
  explicit EventQueue(std::size_t capacity)
      : capacity_(capacity), consumer_(std::this_thread::get_id()) {}

  /// Enqueues one event, blocking while the queue is full — except from
  /// the consumer's own thread, where blocking could never be released
  /// (see the class comment): there the bound is exceeded instead and
  /// overflows() counts it. Returns false (dropping the event) only after
  /// close(). Thread-safe.
  bool push(sim::SchedulerEvent event);

  /// Moves every queued event into `out` (appending, FIFO order) and
  /// returns how many were taken. Never blocks. Single consumer; the
  /// calling thread becomes the consumer for the deadlock guard.
  std::size_t drain(std::vector<sim::SchedulerEvent>& out);

  /// Same, but keeps the causal trace stamps — the overload the concurrent
  /// runtime uses to thread trace ids into batch/replan events.
  std::size_t drain(std::vector<StampedEvent>& out);

  /// Events currently queued (snapshot; racy by nature).
  std::size_t depth() const;

  /// Consumer-thread pushes that found the queue full and grew past the
  /// bound instead of deadlocking.
  std::int64_t overflows() const;

  /// Releases blocked producers and rejects further pushes. Queued events
  /// remain drainable.
  void close();
  bool closed() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::deque<StampedEvent> items_;
  const std::size_t capacity_;
  std::thread::id consumer_;  // guarded by mu_
  std::int64_t overflows_ = 0;
  bool closed_ = false;
};

}  // namespace flowtime::runtime
