// Bounded MPSC queue of scheduler events (DESIGN.md §11).
//
// The ingestion side of the concurrent runtime: producers (the simulator
// loop, fault injectors, external drivers) push SchedulerEvent values;
// the single consumer — the runtime's serving thread — drains everything
// queued in one sweep at the top of each allocate(). Draining in batches
// is what makes burst coalescing possible: five arrivals queued between
// two slots become one re-plan, not five.
//
// Bounded with blocking push: when the queue is full the producer waits,
// which back-pressures event sources instead of growing memory without
// limit. `close()` releases blocked producers and makes further pushes
// fail, for shutdown.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "sim/events.h"

namespace flowtime::runtime {

class EventQueue {
 public:
  explicit EventQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Enqueues one event, blocking while the queue is full. Returns false
  /// (dropping the event) only after close(). Thread-safe.
  bool push(sim::SchedulerEvent event);

  /// Moves every queued event into `out` (appending, FIFO order) and
  /// returns how many were taken. Never blocks. Single consumer.
  std::size_t drain(std::vector<sim::SchedulerEvent>& out);

  /// Events currently queued (snapshot; racy by nature).
  std::size_t depth() const;

  /// Releases blocked producers and rejects further pushes. Queued events
  /// remain drainable.
  void close();
  bool closed() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::deque<sim::SchedulerEvent> items_;
  const std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace flowtime::runtime
