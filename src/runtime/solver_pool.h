// Background solver threads for the concurrent runtime (DESIGN.md §11).
//
// A deliberately small worker pool: tasks are whole LP solves (tens of
// milliseconds to seconds), so there is nothing to gain from lock-free
// cleverness — one mutex, one condvar, FIFO order. The runtime submits at
// most one solve per scheduler at a time (the warm cache is solver-
// exclusive), so extra threads only matter when several schedulers share
// one pool.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flowtime::runtime {

class SolverPool {
 public:
  /// Starts `threads` workers (clamped to >= 1).
  explicit SolverPool(int threads = 1);
  /// Drains queued tasks and joins the workers.
  ~SolverPool();

  SolverPool(const SolverPool&) = delete;
  SolverPool& operator=(const SolverPool&) = delete;

  /// Enqueues a task; FIFO per pool. Must not be called after shutdown().
  void submit(std::function<void()> task);

  /// Runs every queued task to completion, then joins all workers.
  /// Idempotent. Submitting after shutdown is a no-op (task dropped).
  void shutdown();

  int threads() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// Go-style barrier for fan-out/fan-in over a SolverPool: the submitter
/// calls add() per task, each task calls done() when it finishes, and the
/// submitter blocks in wait() until the count returns to zero. Unlike
/// shutdown(), the pool stays usable afterwards, so a federated scheduler
/// can run one barrier per replan round.
class WaitGroup {
 public:
  /// Registers `n` pending completions. Call before submitting the tasks.
  void add(int n = 1);
  /// Marks one task complete; wakes wait() when the count reaches zero.
  void done();
  /// Blocks until every add() has been matched by a done().
  void wait();

 private:
  std::mutex mu_;
  std::condition_variable all_done_;
  int pending_ = 0;
};

}  // namespace flowtime::runtime
