// Concurrent scheduler runtime: asynchronous re-planning behind the
// sim::Scheduler interface (DESIGN.md §11).
//
// Wraps a core::FlowTimeScheduler and moves the expensive lexmin LP solve
// off the serving path:
//
//   producers ──► EventQueue ──► [serving thread: drain + apply + serve]
//                                      │ begin_replan (snapshot, epoch E)
//                                      ▼
//                               [solver thread: solve_replan]
//                                      │ done
//                                      ▼
//                 [serving thread: epoch still E? adopt : discard]
//
// Three properties, in decreasing order of importance:
//   * allocate() never blocks on a solve (async mode): the current plan
//     keeps serving while the next one is computed;
//   * bursts coalesce: all events drained in one sweep trigger at most one
//     re-plan, not one each;
//   * staleness is detected, not ignored: a solve whose planner inputs
//     changed mid-flight (epoch mismatch) is discarded — and preempted
//     early via the cancel token so the solver thread stops wasting pivots.
//
// Determinism: with `async_replan = false` the wrapper is a pure
// pass-through (byte-identical to the bare FlowTimeScheduler). With
// `async_replan = true` and `barrier_mode = true` every allocate() waits
// for the in-flight solve to adopt before serving, which serializes the
// run plan-for-plan with the synchronous path while still exercising the
// full queue/snapshot/solver-thread machinery — the property the
// determinism tests pin.
//
// Causal tracing (obs enabled, DESIGN.md §8): every queued event carries a
// trace id stamped at enqueue; the serving thread links events to their
// drained batch (`event_dequeued` / `batch_formed`), batches to the replan
// attempt that absorbs them (`batch_planned` / `solve_begin`), and every
// attempt to exactly one terminal — `plan_adopted` or `plan_discarded` —
// whose queue-wait + coalesce + solve + adoption-lag stages sum to the
// replan's end-to-end wall latency by construction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/flowtime_scheduler.h"
#include "obs/span.h"
#include "runtime/event_queue.h"
#include "runtime/solver_pool.h"
#include "sim/scheduler.h"

namespace flowtime::runtime {

struct RuntimeConfig {
  core::FlowTimeConfig flowtime;
  /// false: pass-through (single-threaded, byte-identical to the bare
  /// scheduler). true: events are queued and solves run on the pool.
  bool async_replan = false;
  /// Only meaningful with async_replan: every allocate() waits for the
  /// in-flight solve and adopts it before serving. Deterministic (same
  /// plans as the synchronous path) at the cost of blocking per slot.
  bool barrier_mode = false;
  /// EventQueue bound; producers on other threads block (back-pressure)
  /// when it fills. Pushes from the serving thread itself never block —
  /// they exceed the bound instead (see EventQueue's deadlock guard).
  std::size_t queue_capacity = 4096;
  /// Solver pool width. One suffices for a single scheduler — the warm
  /// cache admits one solve at a time anyway.
  int solver_threads = 1;
  /// Test hook, solver thread: called right before each solve runs. Tests
  /// block in here to hold a solve in flight deterministically (e.g. to
  /// force staleness). Must not touch the scheduler.
  std::function<void(const core::PendingReplan&)> solve_started_hook;
};

class ConcurrentScheduler : public sim::Scheduler {
 public:
  explicit ConcurrentScheduler(RuntimeConfig config);
  ~ConcurrentScheduler() override;

  ConcurrentScheduler(const ConcurrentScheduler&) = delete;
  ConcurrentScheduler& operator=(const ConcurrentScheduler&) = delete;

  /// Reports the inner policy's name so comparisons and reports treat the
  /// wrapped scheduler as the same policy (the runtime is infrastructure,
  /// not a policy).
  std::string name() const override { return inner_.name(); }
  const workload::ClusterSpec* cluster_spec() const override {
    return inner_.cluster_spec();
  }

  /// Async mode: O(1) — the event is enqueued (value semantics; workflow
  /// payloads ride as non-owning shared_ptrs) and applied at the next
  /// allocate(). Sync mode: applied immediately.
  void on_event(const sim::SchedulerEvent& event) override;

  /// Serving entry point; see the class comment for the async pipeline.
  std::vector<sim::Allocation> allocate(
      const sim::ClusterState& state) override;

  /// Applies everything still queued (events arriving after the last
  /// allocate of a run). No re-plan is started. Serving thread only.
  void drain_events();

  /// Blocks until no solve is in flight and the planner is clean: drains
  /// events, then begin/wait/adopt in a loop. Serving thread only.
  void quiesce(const sim::ClusterState& state);

  // --- Runtime statistics (serving thread, or after the run) -------------
  /// Replan-trigger events that shared a re-plan with an earlier trigger
  /// of the same drained batch instead of causing their own.
  std::int64_t coalesced_events() const { return coalesced_events_; }
  /// Solves that completed but were discarded because their inputs went
  /// stale mid-flight (epoch mismatch at adoption, or preempted).
  std::int64_t stale_solves() const { return stale_solves_; }
  /// Subset of stale_solves() that the cancel token stopped early.
  std::int64_t preempted_solves() const { return preempted_solves_; }
  /// Solves submitted to the pool (async mode only).
  std::int64_t async_solves() const { return async_solves_; }
  /// Serving-thread pushes that found the event queue full and grew past
  /// its bound instead of self-deadlocking (EventQueue deadlock guard).
  std::int64_t queue_overflows() const { return queue_.overflows(); }

  /// The wrapped scheduler, for stats (replans, pivots, replan_log) and
  /// deadline evaluation. Do not call mutating members while a run is in
  /// progress.
  const core::FlowTimeScheduler& inner() const { return inner_; }
  core::FlowTimeScheduler& inner() { return inner_; }

 private:
  /// One solve in flight. The serving thread owns the structure; the
  /// solver thread touches only `pending` (read), `result` (write before
  /// `done`) and the two atomics. `done` is the publication edge: the
  /// solver's release-store makes `result` visible to the serving thread's
  /// acquire-load.
  struct InFlight {
    core::PendingReplan pending;
    core::PlanSolveResult result;
    std::atomic<bool> done{false};
    std::atomic<bool> cancel{false};
    obs::SpanId span = obs::kNoSpan;
    // --- causal-chain stamps (obs enabled only; 0 otherwise) --------------
    /// Trace id of this replan attempt; links batch_planned / solve_begin /
    /// solve_done / plan_adopted|plan_discarded.
    std::int64_t replan_trace = 0;
    /// Enqueue wall time of the oldest trigger event this replan absorbs
    /// (submit time when the trigger was internal, e.g. plan exhaustion).
    double first_enqueue_wall_s = 0.0;
    /// Drain wall time of that trigger's batch.
    double first_dequeue_wall_s = 0.0;
    /// Serving thread, at pool submission.
    double submit_wall_s = 0.0;
    /// Solver thread, right after the solve; written before the `done`
    /// release-store, so the serving thread's acquire-load covers it.
    double done_wall_s = 0.0;
  };

  /// One drained batch containing at least one replan trigger, not yet
  /// absorbed by a replan. Serving thread only; populated only when obs is
  /// enabled (causal bookkeeping, no scheduling effect).
  struct PendingBatch {
    std::int64_t batch_trace = 0;
    double first_trigger_enqueue_wall_s = 0.0;
    double dequeue_wall_s = 0.0;
  };

  /// Drains the queue and applies events to the inner scheduler; counts
  /// coalesced replan triggers and preempts a now-stale in-flight solve.
  void apply_queued_events();
  /// Adopts or discards a finished solve, if any.
  void harvest(double now_s);
  /// Starts a solve when the planner is dirty and none is in flight.
  void maybe_submit(const sim::ClusterState& state);
  /// Blocks until the in-flight solve (if any) reports done.
  void wait_for_solve();
  /// Emits the chain terminal (`plan_adopted` / `plan_discarded`) with the
  /// per-stage latency decomposition, and observes the stage histograms.
  void emit_terminal(const InFlight& fin, bool adopted, bool stale,
                     double harvest_wall_s);

  RuntimeConfig config_;
  core::FlowTimeScheduler inner_;
  EventQueue queue_;
  std::unique_ptr<SolverPool> pool_;  // created only in async mode
  /// Solver-thread-exclusive warm cache: exactly one solve runs at a time
  /// (inflight_ is singular), so no lock is needed — exactly the contract
  /// core::FlowTimeScheduler::solve_replan documents.
  core::PlacementWarmCache warm_cache_;
  std::unique_ptr<InFlight> inflight_;
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::vector<StampedEvent> batch_;  // drain scratch, reused
  std::vector<PendingBatch> pending_batches_;  // trigger batches awaiting a replan
  std::int64_t coalesced_events_ = 0;
  std::int64_t stale_solves_ = 0;
  std::int64_t preempted_solves_ = 0;
  std::int64_t async_solves_ = 0;
};

}  // namespace flowtime::runtime
