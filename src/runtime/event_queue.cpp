#include "runtime/event_queue.h"

#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"

namespace flowtime::runtime {

bool EventQueue::push(sim::SchedulerEvent event) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (std::this_thread::get_id() == consumer_) {
      // The consumer pushing into its own queue: waiting for a drain that
      // only this thread can perform would deadlock, so exceed the bound
      // instead (the very next drain takes everything anyway).
      if (!closed_ && items_.size() >= capacity_) {
        ++overflows_;
        if (overflows_ == 1) {
          FT_LOG(kWarn) << "EventQueue: consumer-thread push overflowed the "
                           "capacity of " << capacity_
                        << "; growing past the bound instead of blocking";
        }
        if (obs::enabled()) {
          obs::registry().counter("runtime.queue_overflows").add();
        }
      }
    } else {
      not_full_.wait(lock,
                     [this] { return closed_ || items_.size() < capacity_; });
    }
    if (closed_) return false;
    items_.push_back(std::move(event));
    if (obs::enabled()) {
      obs::registry().counter("runtime.events_enqueued").add();
      obs::registry().gauge("runtime.queue_depth").set(
          static_cast<double>(items_.size()));
    }
  }
  return true;
}

std::size_t EventQueue::drain(std::vector<sim::SchedulerEvent>& out) {
  std::deque<sim::SchedulerEvent> taken;
  {
    std::lock_guard<std::mutex> lock(mu_);
    consumer_ = std::this_thread::get_id();
    taken.swap(items_);
  }
  not_full_.notify_all();
  if (obs::enabled() && !taken.empty()) {
    obs::registry().gauge("runtime.queue_depth").set(0.0);
  }
  for (sim::SchedulerEvent& e : taken) out.push_back(std::move(e));
  return taken.size();
}

std::size_t EventQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

std::int64_t EventQueue::overflows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overflows_;
}

void EventQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
}

bool EventQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace flowtime::runtime
