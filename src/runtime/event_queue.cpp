#include "runtime/event_queue.h"

#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace flowtime::runtime {

bool EventQueue::push(sim::SchedulerEvent event) {
  StampedEvent item{std::move(event)};
  const bool traced = obs::enabled();
  std::string name;
  double now_s = 0.0;
  bool trigger = false;
  if (traced) {
    item.trace_id = obs::next_trace_id();
    item.enqueue_wall_s = obs::wall_now_s();
    name = std::string(sim::event_name(item.event));
    now_s = sim::event_time(item.event);
    trigger = sim::is_replan_trigger(item.event);
  }
  const std::int64_t trace_id = item.trace_id;
  const double enqueue_wall_s = item.enqueue_wall_s;
  std::size_t depth_after = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (std::this_thread::get_id() == consumer_) {
      // The consumer pushing into its own queue: waiting for a drain that
      // only this thread can perform would deadlock, so exceed the bound
      // instead (the very next drain takes everything anyway).
      if (!closed_ && items_.size() >= capacity_) {
        ++overflows_;
        if (overflows_ == 1) {
          FT_LOG(kWarn) << "EventQueue: consumer-thread push overflowed the "
                           "capacity of " << capacity_
                        << "; growing past the bound instead of blocking";
        }
        if (obs::enabled()) {
          obs::registry().counter("runtime.queue_overflows").add();
        }
      }
    } else {
      not_full_.wait(lock,
                     [this] { return closed_ || items_.size() < capacity_; });
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    depth_after = items_.size();
    if (obs::enabled()) {
      obs::registry().counter("runtime.events_enqueued").add();
      obs::registry().gauge("runtime.queue_depth").set(
          static_cast<double>(items_.size()));
    }
  }
  if (traced) {
    // Chain root. Emitted outside the lock (the sink serializes itself);
    // consumers pair by trace id, never by line order — the consumer may
    // drain and emit `event_dequeued` before this line lands.
    obs::emit(obs::TraceEvent("event_enqueued")
                  .field("trace", trace_id)
                  .field("event", name)
                  .field("now_s", now_s)
                  .field("wall_s", enqueue_wall_s)
                  .field("trigger", trigger)
                  .field("lane", obs::thread_lane())
                  .field("depth", depth_after));
  }
  return true;
}

std::size_t EventQueue::drain(std::vector<sim::SchedulerEvent>& out) {
  std::vector<StampedEvent> taken;
  const std::size_t n = drain(taken);
  for (StampedEvent& e : taken) out.push_back(std::move(e.event));
  return n;
}

std::size_t EventQueue::drain(std::vector<StampedEvent>& out) {
  std::deque<StampedEvent> taken;
  {
    std::lock_guard<std::mutex> lock(mu_);
    consumer_ = std::this_thread::get_id();
    taken.swap(items_);
  }
  not_full_.notify_all();
  if (obs::enabled() && !taken.empty()) {
    obs::registry().gauge("runtime.queue_depth").set(0.0);
  }
  for (StampedEvent& e : taken) out.push_back(std::move(e));
  return taken.size();
}

std::size_t EventQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

std::int64_t EventQueue::overflows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overflows_;
}

void EventQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
}

bool EventQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace flowtime::runtime
