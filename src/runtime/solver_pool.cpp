#include "runtime/solver_pool.h"

#include <algorithm>
#include <utility>

namespace flowtime::runtime {

SolverPool::SolverPool(int threads) {
  const int n = std::max(threads, 1);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SolverPool::~SolverPool() { shutdown(); }

void SolverPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    tasks_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void SolverPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void SolverPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        // stopping_ and no work left: drain semantics — queued tasks still
        // run before the worker exits.
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void WaitGroup::add(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_ += n;
}

void WaitGroup::done() {
  // Notify while still holding the mutex: the WaitGroup is typically
  // stack-allocated and destroyed as soon as wait() returns, so an
  // unlocked notify could touch the condvar after its destructor ran.
  std::lock_guard<std::mutex> lock(mu_);
  --pending_;
  if (pending_ <= 0) all_done_.notify_all();
}

void WaitGroup::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return pending_ <= 0; });
}

}  // namespace flowtime::runtime
