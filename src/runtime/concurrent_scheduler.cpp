#include "runtime/concurrent_scheduler.h"

#include <optional>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace flowtime::runtime {

namespace {

core::FlowTimeConfig make_inner_config(const RuntimeConfig& config) {
  core::FlowTimeConfig fc = config.flowtime;
  // In async mode the runtime drives begin/solve/finish itself; the inner
  // scheduler must never block allocate() on an inline solve.
  fc.external_replan_driver = config.async_replan;
  return fc;
}

}  // namespace

ConcurrentScheduler::ConcurrentScheduler(RuntimeConfig config)
    : config_(std::move(config)),
      inner_(make_inner_config(config_)),
      queue_(config_.queue_capacity) {
  if (config_.async_replan) {
    pool_ = std::make_unique<SolverPool>(config_.solver_threads);
  }
}

ConcurrentScheduler::~ConcurrentScheduler() {
  queue_.close();
  if (inflight_) inflight_->cancel.store(true, std::memory_order_relaxed);
  if (pool_) pool_->shutdown();  // runs the queued solve to completion
  if (inflight_ && inflight_->done.load(std::memory_order_acquire)) {
    // The run ended with a solve still in flight: account its pivots as a
    // discarded attempt rather than losing them.
    std::unique_ptr<InFlight> fin = std::move(inflight_);
    inner_.abandon_replan(fin->pending, fin->result);
    if (obs::enabled()) {
      // Close the chain even on teardown: every solve_begin must reach a
      // terminal for the trace to balance.
      obs::end_span(fin->span, fin->pending.state.now_s);
      emit_terminal(*fin, /*adopted=*/false, /*stale=*/true,
                    obs::wall_now_s());
    }
  }
}

void ConcurrentScheduler::on_event(const sim::SchedulerEvent& event) {
  if (!config_.async_replan) {
    inner_.on_event(event);
    return;
  }
  queue_.push(event);
}

std::vector<sim::Allocation> ConcurrentScheduler::allocate(
    const sim::ClusterState& state) {
  if (!config_.async_replan) return inner_.allocate(state);

  apply_queued_events();
  // Adopt a finished solve before syncing views, so plan-exhaustion is
  // judged against the freshest plan.
  harvest(state.now_s);
  inner_.sync_views(state);
  maybe_submit(state);
  if (config_.barrier_mode) {
    // Deterministic mode: no plan is served while a newer one is pending.
    // Events cannot interleave here (single serving thread), so the solve
    // is never stale and the loop adopts exactly what the synchronous
    // path would have computed.
    while (inflight_) {
      wait_for_solve();
      harvest(state.now_s);
      maybe_submit(state);
    }
  }
  return inner_.serve(state);
}

void ConcurrentScheduler::drain_events() {
  if (!config_.async_replan) return;
  apply_queued_events();
}

void ConcurrentScheduler::quiesce(const sim::ClusterState& state) {
  if (!config_.async_replan) return;
  apply_queued_events();
  harvest(state.now_s);
  inner_.sync_views(state);
  maybe_submit(state);
  while (inflight_) {
    wait_for_solve();
    harvest(state.now_s);
    maybe_submit(state);
  }
}

void ConcurrentScheduler::apply_queued_events() {
  batch_.clear();
  queue_.drain(batch_);
  if (batch_.empty()) return;
  const bool traced = obs::enabled();
  const double drain_wall_s = traced ? obs::wall_now_s() : 0.0;
  const std::int64_t batch_trace = traced ? obs::next_trace_id() : 0;
  double first_trigger_enqueue_wall_s = 0.0;
  int triggers = 0;
  for (const StampedEvent& item : batch_) {
    const bool trigger = sim::is_replan_trigger(item.event);
    if (trigger && triggers++ == 0) {
      first_trigger_enqueue_wall_s = item.enqueue_wall_s;
    }
    if (traced && item.trace_id != 0) {
      const double wait_ms = (drain_wall_s - item.enqueue_wall_s) * 1e3;
      obs::registry().histogram("runtime.queue_wait_ms").observe(wait_ms);
      obs::emit(obs::TraceEvent("event_dequeued")
                    .field("trace", item.trace_id)
                    .field("batch", batch_trace)
                    .field("queue_wait_ms", wait_ms)
                    .field("wall_s", drain_wall_s));
    }
    inner_.on_event(item.event);
  }
  if (traced) {
    obs::emit(obs::TraceEvent("batch_formed")
                  .field("batch", batch_trace)
                  .field("events", batch_.size())
                  .field("triggers", triggers)
                  .field("lane", obs::thread_lane())
                  .field("wall_s", drain_wall_s));
    if (triggers > 0) {
      // Only trigger-bearing batches feed a replan; trigger-free ones end
      // their chain at batch_formed.
      pending_batches_.push_back(
          PendingBatch{batch_trace, first_trigger_enqueue_wall_s,
                       drain_wall_s});
    }
  }
  if (triggers > 1) {
    // All the triggers of this batch share the single re-plan the batch
    // causes; everything past the first rode along for free.
    coalesced_events_ += triggers - 1;
    if (obs::enabled()) {
      obs::registry().counter("runtime.coalesced_events").add(triggers - 1);
    }
  }
  if (inflight_ && !inflight_->done.load(std::memory_order_acquire) &&
      inflight_->pending.epoch != inner_.planner_epoch()) {
    // The batch changed the planner inputs under the running solve: its
    // answer is already unusable, so stop it between pivots instead of
    // letting it finish a plan nobody will adopt.
    inflight_->cancel.store(true, std::memory_order_relaxed);
  }
}

void ConcurrentScheduler::harvest(double now_s) {
  if (!inflight_ || !inflight_->done.load(std::memory_order_acquire)) return;
  std::unique_ptr<InFlight> fin = std::move(inflight_);
  const bool stale = fin->pending.epoch != inner_.planner_epoch();
  const bool adopted = !stale && !fin->result.preempted;
  const std::int64_t pivots = fin->result.pivots;
  if (!adopted) {
    ++stale_solves_;
    if (fin->result.preempted) ++preempted_solves_;
    if (obs::enabled()) {
      obs::registry().counter("runtime.stale_solves").add();
      if (fin->result.preempted) {
        obs::registry().counter("runtime.preempted_solves").add();
      }
    }
    inner_.abandon_replan(fin->pending, fin->result);
  } else {
    inner_.finish_replan(fin->pending, std::move(fin->result), now_s);
  }
  if (obs::enabled()) {
    obs::end_span(fin->span, now_s);
    fin->result.pivots = pivots;  // finish_replan moved the result out
    emit_terminal(*fin, adopted, stale, obs::wall_now_s());
  }
}

void ConcurrentScheduler::emit_terminal(const InFlight& fin, bool adopted,
                                        bool stale, double harvest_wall_s) {
  if (fin.replan_trace == 0) return;  // obs was off when this solve started
  if (fin.done_wall_s == 0.0) return;  // obs turned off mid-flight
  // The four stages tile [first_enqueue, harvest] exactly, so the
  // decomposition always sums to the observed end-to-end latency:
  //   queue_wait : oldest trigger enqueued -> its batch drained
  //   coalesce   : batch drained -> solve submitted (includes time spent
  //                waiting behind an earlier in-flight solve)
  //   solve      : submitted -> solver thread finished
  //   adoption   : finished -> serving thread adopted/discarded
  const double queue_wait_ms =
      (fin.first_dequeue_wall_s - fin.first_enqueue_wall_s) * 1e3;
  const double coalesce_ms =
      (fin.submit_wall_s - fin.first_dequeue_wall_s) * 1e3;
  const double solve_ms = (fin.done_wall_s - fin.submit_wall_s) * 1e3;
  const double adoption_lag_ms = (harvest_wall_s - fin.done_wall_s) * 1e3;
  obs::registry().histogram("runtime.adoption_lag_ms").observe(
      adoption_lag_ms);
  obs::emit(obs::TraceEvent(adopted ? "plan_adopted" : "plan_discarded")
                .field("replan", fin.replan_trace)
                .field("slot", fin.pending.record.slot)
                .field("epoch", static_cast<std::int64_t>(fin.pending.epoch))
                .field("pivots", fin.result.pivots)
                .field("stale", stale)
                .field("preempted", fin.result.preempted)
                .field("queue_wait_ms", queue_wait_ms)
                .field("coalesce_ms", coalesce_ms)
                .field("solve_ms", solve_ms)
                .field("adoption_lag_ms", adoption_lag_ms)
                .field("total_ms",
                       (harvest_wall_s - fin.first_enqueue_wall_s) * 1e3)
                .field("lane", obs::thread_lane())
                .field("wall_s", harvest_wall_s));
}

void ConcurrentScheduler::maybe_submit(const sim::ClusterState& state) {
  if (inflight_ || !inner_.dirty()) return;
  auto fly = std::make_unique<InFlight>();
  fly->pending = inner_.begin_replan(state);
  fly->pending.cancel = &fly->cancel;
  if (obs::enabled()) {
    fly->span = obs::begin_span(
        "async_replan", "async_replan@slot" + std::to_string(state.slot),
        obs::kNoSpan, state.now_s);
    obs::registry().counter("runtime.async_solves").add();
    // Chain link: this attempt absorbs every trigger batch drained since
    // the last submission. The oldest trigger's stamps anchor the latency
    // decomposition; an internally-triggered replan (plan exhaustion, no
    // queued trigger) anchors at the submission itself.
    fly->replan_trace = obs::next_trace_id();
    const double submit_wall_s = obs::wall_now_s();
    fly->submit_wall_s = submit_wall_s;
    fly->first_enqueue_wall_s = submit_wall_s;
    fly->first_dequeue_wall_s = submit_wall_s;
    for (const PendingBatch& batch : pending_batches_) {
      obs::emit(obs::TraceEvent("batch_planned")
                    .field("batch", batch.batch_trace)
                    .field("replan", fly->replan_trace));
      if (batch.first_trigger_enqueue_wall_s < fly->first_enqueue_wall_s) {
        fly->first_enqueue_wall_s = batch.first_trigger_enqueue_wall_s;
      }
      if (batch.dequeue_wall_s < fly->first_dequeue_wall_s) {
        fly->first_dequeue_wall_s = batch.dequeue_wall_s;
      }
    }
    const double coalesce_ms =
        (submit_wall_s - fly->first_dequeue_wall_s) * 1e3;
    obs::registry().histogram("runtime.coalesce_window_ms")
        .observe(coalesce_ms);
    obs::emit(obs::TraceEvent("solve_begin")
                  .field("replan", fly->replan_trace)
                  .field("slot", state.slot)
                  .field("epoch", static_cast<std::int64_t>(fly->pending.epoch))
                  .field("batches", pending_batches_.size())
                  .field("coalesce_ms", coalesce_ms)
                  .field("lane", obs::thread_lane())
                  .field("wall_s", submit_wall_s));
  }
  pending_batches_.clear();
  InFlight* job = fly.get();
  inflight_ = std::move(fly);
  ++async_solves_;
  pool_->submit([this, job] {
    if (config_.solve_started_hook) config_.solve_started_hook(job->pending);
    {
      std::optional<obs::ScopedTimer> timer;
      if (obs::enabled()) timer.emplace(&job->pending.record.wall_s);
      job->result = core::FlowTimeScheduler::solve_replan(
          inner_.config(), &warm_cache_, job->pending);
    }
    if (job->replan_trace != 0 && obs::enabled()) {
      job->done_wall_s = obs::wall_now_s();
      const double solve_ms = (job->done_wall_s - job->submit_wall_s) * 1e3;
      obs::registry().histogram("runtime.solve_ms").observe(solve_ms);
      obs::emit(obs::TraceEvent("solve_done")
                    .field("replan", job->replan_trace)
                    .field("pivots", job->result.pivots)
                    .field("preempted", job->result.preempted)
                    .field("solve_ms", solve_ms)
                    .field("lane", obs::thread_lane())
                    .field("wall_s", job->done_wall_s));
    }
    {
      // The store pairs with harvest's acquire load; taking the mutex
      // first makes the condvar wait in wait_for_solve race-free.
      std::lock_guard<std::mutex> lock(done_mu_);
      job->done.store(true, std::memory_order_release);
    }
    done_cv_.notify_all();
  });
}

void ConcurrentScheduler::wait_for_solve() {
  if (!inflight_) return;
  InFlight* job = inflight_.get();
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [job] {
    return job->done.load(std::memory_order_acquire);
  });
}

}  // namespace flowtime::runtime
