#include "runtime/concurrent_scheduler.h"

#include <optional>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace flowtime::runtime {

namespace {

core::FlowTimeConfig make_inner_config(const RuntimeConfig& config) {
  core::FlowTimeConfig fc = config.flowtime;
  // In async mode the runtime drives begin/solve/finish itself; the inner
  // scheduler must never block allocate() on an inline solve.
  fc.external_replan_driver = config.async_replan;
  return fc;
}

}  // namespace

ConcurrentScheduler::ConcurrentScheduler(RuntimeConfig config)
    : config_(std::move(config)),
      inner_(make_inner_config(config_)),
      queue_(config_.queue_capacity) {
  if (config_.async_replan) {
    pool_ = std::make_unique<SolverPool>(config_.solver_threads);
  }
}

ConcurrentScheduler::~ConcurrentScheduler() {
  queue_.close();
  if (inflight_) inflight_->cancel.store(true, std::memory_order_relaxed);
  if (pool_) pool_->shutdown();  // runs the queued solve to completion
  if (inflight_ && inflight_->done.load(std::memory_order_acquire)) {
    // The run ended with a solve still in flight: account its pivots as a
    // discarded attempt rather than losing them.
    std::unique_ptr<InFlight> fin = std::move(inflight_);
    inner_.abandon_replan(fin->pending, fin->result);
  }
}

void ConcurrentScheduler::on_event(const sim::SchedulerEvent& event) {
  if (!config_.async_replan) {
    inner_.on_event(event);
    return;
  }
  queue_.push(event);
}

std::vector<sim::Allocation> ConcurrentScheduler::allocate(
    const sim::ClusterState& state) {
  if (!config_.async_replan) return inner_.allocate(state);

  apply_queued_events();
  // Adopt a finished solve before syncing views, so plan-exhaustion is
  // judged against the freshest plan.
  harvest(state.now_s);
  inner_.sync_views(state);
  maybe_submit(state);
  if (config_.barrier_mode) {
    // Deterministic mode: no plan is served while a newer one is pending.
    // Events cannot interleave here (single serving thread), so the solve
    // is never stale and the loop adopts exactly what the synchronous
    // path would have computed.
    while (inflight_) {
      wait_for_solve();
      harvest(state.now_s);
      maybe_submit(state);
    }
  }
  return inner_.serve(state);
}

void ConcurrentScheduler::drain_events() {
  if (!config_.async_replan) return;
  apply_queued_events();
}

void ConcurrentScheduler::quiesce(const sim::ClusterState& state) {
  if (!config_.async_replan) return;
  apply_queued_events();
  harvest(state.now_s);
  inner_.sync_views(state);
  maybe_submit(state);
  while (inflight_) {
    wait_for_solve();
    harvest(state.now_s);
    maybe_submit(state);
  }
}

void ConcurrentScheduler::apply_queued_events() {
  batch_.clear();
  queue_.drain(batch_);
  if (batch_.empty()) return;
  int triggers = 0;
  for (const sim::SchedulerEvent& event : batch_) {
    if (sim::is_replan_trigger(event)) ++triggers;
    inner_.on_event(event);
  }
  if (triggers > 1) {
    // All the triggers of this batch share the single re-plan the batch
    // causes; everything past the first rode along for free.
    coalesced_events_ += triggers - 1;
    if (obs::enabled()) {
      obs::registry().counter("runtime.coalesced_events").add(triggers - 1);
    }
  }
  if (inflight_ && !inflight_->done.load(std::memory_order_acquire) &&
      inflight_->pending.epoch != inner_.planner_epoch()) {
    // The batch changed the planner inputs under the running solve: its
    // answer is already unusable, so stop it between pivots instead of
    // letting it finish a plan nobody will adopt.
    inflight_->cancel.store(true, std::memory_order_relaxed);
  }
}

void ConcurrentScheduler::harvest(double now_s) {
  if (!inflight_ || !inflight_->done.load(std::memory_order_acquire)) return;
  std::unique_ptr<InFlight> fin = std::move(inflight_);
  const bool stale = fin->pending.epoch != inner_.planner_epoch();
  if (stale || fin->result.preempted) {
    ++stale_solves_;
    if (fin->result.preempted) ++preempted_solves_;
    if (obs::enabled()) {
      obs::registry().counter("runtime.stale_solves").add();
      if (fin->result.preempted) {
        obs::registry().counter("runtime.preempted_solves").add();
      }
    }
    inner_.abandon_replan(fin->pending, fin->result);
  } else {
    inner_.finish_replan(fin->pending, std::move(fin->result), now_s);
  }
  if (obs::enabled()) obs::end_span(fin->span, now_s);
}

void ConcurrentScheduler::maybe_submit(const sim::ClusterState& state) {
  if (inflight_ || !inner_.dirty()) return;
  auto fly = std::make_unique<InFlight>();
  fly->pending = inner_.begin_replan(state);
  fly->pending.cancel = &fly->cancel;
  if (obs::enabled()) {
    fly->span = obs::begin_span(
        "async_replan", "async_replan@slot" + std::to_string(state.slot),
        obs::kNoSpan, state.now_s);
    obs::registry().counter("runtime.async_solves").add();
  }
  InFlight* job = fly.get();
  inflight_ = std::move(fly);
  ++async_solves_;
  pool_->submit([this, job] {
    if (config_.solve_started_hook) config_.solve_started_hook(job->pending);
    {
      std::optional<obs::ScopedTimer> timer;
      if (obs::enabled()) timer.emplace(&job->pending.record.wall_s);
      job->result = core::FlowTimeScheduler::solve_replan(
          inner_.config(), &warm_cache_, job->pending);
    }
    {
      // The store pairs with harvest's acquire load; taking the mutex
      // first makes the condvar wait in wait_for_solve race-free.
      std::lock_guard<std::mutex> lock(done_mu_);
      job->done.store(true, std::memory_order_release);
    }
    done_cv_.notify_all();
  });
}

void ConcurrentScheduler::wait_for_solve() {
  if (!inflight_) return;
  InFlight* job = inflight_.get();
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [job] {
    return job->done.load(std::memory_order_acquire);
  });
}

}  // namespace flowtime::runtime
