// Scheduler interface between the cluster simulator and the scheduling
// policies (FlowTime core and every baseline).
//
// Information boundaries follow the paper's system model (§II-A) exactly:
//   * When a workflow is released the scheduler sees its full DAG and the
//     per-job estimates (workflows recur, so prior runs supply them).
//   * When an ad-hoc job arrives the scheduler sees identity, arrival time
//     and maximum parallelism — never its size.
//   * Ground truth (actual runtimes) lives only inside the simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dag/dag.h"
#include "sim/events.h"
#include "workload/resources.h"
#include "workload/workflow.h"

namespace flowtime::sim {

using workload::ResourceVec;

enum class JobKind { kDeadline, kAdhoc };

/// Scheduler-visible state of one incomplete job. All quantities derive
/// from estimates; `overrun` flags jobs that consumed their whole estimate
/// without finishing (under-estimated ground truth).
struct JobView {
  JobUid uid = -1;
  JobKind kind = JobKind::kAdhoc;
  int workflow_id = -1;      // kDeadline only
  dag::NodeId node = -1;     // kDeadline only
  double arrival_s = 0.0;
  /// When the job last became runnable: its arrival for ad-hoc jobs, the
  /// completion of its last DAG parent for workflow jobs. This is the
  /// submission time a job-level scheduler (FIFO) would observe from a
  /// workflow manager that submits jobs as their parents finish.
  double ready_since_s = 0.0;
  /// Estimated residual demand (resource-seconds). Zeros for ad-hoc jobs —
  /// their size is unknown by definition.
  ResourceVec remaining_estimate{};
  /// Maximum footprint the job can occupy in one slot (all tasks running),
  /// expressed in resource-seconds per slot.
  ResourceVec width{};
  /// One task's per-slot footprint (the YARN container request). Schedulers
  /// running against node-granular clusters should issue whole multiples.
  ResourceVec container{};
  bool ready = true;    // all DAG parents complete
  bool overrun = false; // estimate exhausted but job still running
};

/// Snapshot handed to Scheduler::allocate each slot.
struct ClusterState {
  int slot = 0;
  double now_s = 0.0;
  double slot_seconds = 10.0;
  ResourceVec capacity{};            // resource-seconds available this slot
  std::vector<JobView> active;       // arrived and incomplete
};

/// One job's share of the current slot, in resource-seconds.
struct Allocation {
  JobUid uid = -1;
  ResourceVec amount{};
};

/// Scheduling policy. The simulator (or the concurrent runtime) drives it
/// with SchedulerEvent values through on_event and asks for one allocation
/// vector per slot. Implementations must stay within capacity and per-job
/// widths; the simulator clamps violations and reports them so tests can
/// assert they never happen.
///
/// Event delivery is unified: every producer calls `on_event`. The default
/// `on_event` unpacks the variant into the legacy per-event virtuals below
/// so existing policies keep working unchanged; new policies override
/// `on_event` directly and ignore the deprecated hooks.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// The cluster model this policy was configured with, or nullptr when the
  /// policy has none. The simulator compares it against its own spec at the
  /// start of a run and flags config skew — the classic footgun where the
  /// scheduler plans against a different cluster than the one executing.
  virtual const workload::ClusterSpec* cluster_spec() const {
    return nullptr;
  }

  /// Unified event entry point. The default implementation dispatches to
  /// the legacy per-event virtuals, so policies migrate incrementally.
  /// Events arrive in simulation-time order; a policy must tolerate any
  /// interleaving of event kinds.
  virtual void on_event(const SchedulerEvent& event);

  // --- Legacy per-event hooks -------------------------------------------
  // Deprecated: override (or call) `on_event` instead. These remain only
  // as the default dispatch targets so policies in src/sched migrate
  // incrementally; they will be removed once every policy consumes the
  // typed events.

  /// A workflow was released. `node_uids[v]` is the JobUid of DAG node v.
  [[deprecated("override on_event(WorkflowArrivalEvent) instead")]]
  virtual void on_workflow_arrival(const workload::Workflow& workflow,
                                   const std::vector<JobUid>& node_uids,
                                   double now_s) {
    (void)workflow;
    (void)node_uids;
    (void)now_s;
  }

  /// An ad-hoc job arrived; only identity, time and width are disclosed.
  [[deprecated("override on_event(AdhocArrivalEvent) instead")]]
  virtual void on_adhoc_arrival(JobUid uid, double now_s,
                                const ResourceVec& width) {
    (void)uid;
    (void)now_s;
    (void)width;
  }

  /// A job finished (its completion slot just ended).
  [[deprecated("override on_event(JobCompleteEvent) instead")]]
  virtual void on_job_complete(JobUid uid, double now_s) {
    (void)uid;
    (void)now_s;
  }

  /// The cluster's effective capacity changed mid-run (machine failure or
  /// recovery injected by a FaultPlan). `capacity` is the new per-slot
  /// budget in resource-seconds — the same units ClusterState::capacity
  /// uses. Self-healing schedulers re-plan; the default ignores it and the
  /// simulator's capacity clamp keeps the policy honest either way.
  [[deprecated("override on_event(CapacityChangeEvent) instead")]]
  virtual void on_capacity_change(double now_s, const ResourceVec& capacity) {
    (void)now_s;
    (void)capacity;
  }

  /// A job lost in-flight work to an injected fault and will retry.
  /// `lost_estimate` is the estimated demand added back to the job's
  /// remaining work (resource-seconds); the job is barred from running
  /// until `retry_at_s`. `retry` counts this job's failures so far.
  [[deprecated("override on_event(TaskFailureEvent) instead")]]
  virtual void on_task_failure(JobUid uid, double now_s,
                               const ResourceVec& lost_estimate, int retry,
                               double retry_at_s) {
    (void)uid;
    (void)now_s;
    (void)lost_estimate;
    (void)retry;
    (void)retry_at_s;
  }

  /// Chaos injection squeezed (or, on lift, released) the scheduler's
  /// solver resources: the planner should cap its per-decision solve work
  /// at `budget_ms` wall-clock (< 0 = unlimited) and `pivot_cap` pivots
  /// (<= 0 = unlimited); `force_numerical_failure` asks it to treat its
  /// primary solve path as numerically broken. A lift is signalled as
  /// (-1.0, 0, false). Schedulers without an internal solver ignore this.
  [[deprecated("override on_event(SolverSabotageEvent) instead")]]
  virtual void on_solver_sabotage(double now_s, double budget_ms,
                                  std::int64_t pivot_cap,
                                  bool force_numerical_failure) {
    (void)now_s;
    (void)budget_ms;
    (void)pivot_cap;
    (void)force_numerical_failure;
  }

  virtual std::vector<Allocation> allocate(const ClusterState& state) = 0;
};

}  // namespace flowtime::sim
