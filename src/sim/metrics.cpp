#include "sim/metrics.h"

#include <algorithm>

#include "util/stats.h"

namespace flowtime::sim {

std::vector<double> DeadlineReport::job_deltas() const {
  std::vector<double> deltas;
  deltas.reserve(jobs.size());
  for (const JobDeadlineOutcome& job : jobs) deltas.push_back(job.delta_s);
  return deltas;
}

DeadlineReport evaluate_deadlines(
    const SimResult& result,
    const std::vector<workload::Workflow>& workflows,
    const JobDeadlines& job_deadlines) {
  DeadlineReport report;
  const double sim_end = result.end_s();

  // Completion time of the last job per workflow.
  std::map<int, std::optional<double>> workflow_completion;
  std::map<int, bool> workflow_has_straggler;
  for (const JobRecord& job : result.jobs) {
    if (job.kind != JobKind::kDeadline) continue;

    auto& completion = workflow_completion[job.workflow_id];
    if (!job.completion_s) {
      workflow_has_straggler[job.workflow_id] = true;
    } else if (!workflow_has_straggler[job.workflow_id]) {
      completion = std::max(completion.value_or(0.0), *job.completion_s);
    }

    const workload::WorkflowJobRef ref{job.workflow_id, job.node};
    const auto it = job_deadlines.find(ref);
    if (it == job_deadlines.end()) continue;
    JobDeadlineOutcome outcome;
    outcome.uid = job.uid;
    outcome.ref = ref;
    outcome.deadline_s = it->second;
    outcome.completion_s = job.completion_s;
    if (job.completion_s) {
      outcome.delta_s = *job.completion_s - it->second;
      outcome.missed = outcome.delta_s > 1e-9;
    } else {
      outcome.delta_s = sim_end - it->second;
      outcome.missed = true;
    }
    if (outcome.missed) ++report.jobs_missed;
    report.jobs.push_back(outcome);
  }

  for (const workload::Workflow& w : workflows) {
    WorkflowDeadlineOutcome outcome;
    outcome.workflow_id = w.id;
    outcome.deadline_s = w.deadline_s;
    const bool straggler = workflow_has_straggler[w.id];
    if (!straggler && workflow_completion[w.id].has_value()) {
      outcome.completion_s = workflow_completion[w.id];
      outcome.delta_s = *outcome.completion_s - w.deadline_s;
      outcome.missed = outcome.delta_s > 1e-9;
    } else {
      outcome.missed = true;
      outcome.delta_s = 0.0;
    }
    if (outcome.missed) ++report.workflows_missed;
    report.workflows.push_back(outcome);
  }
  return report;
}

AdhocReport evaluate_adhoc(const SimResult& result) {
  AdhocReport report;
  for (const JobRecord& job : result.jobs) {
    if (job.kind != JobKind::kAdhoc) continue;
    ++report.total;
    if (!job.completion_s) continue;
    ++report.completed;
    report.turnarounds_s.push_back(job.turnaround_s());
  }
  report.mean_turnaround_s = util::mean(report.turnarounds_s);
  report.p50_turnaround_s = util::quantile(report.turnarounds_s, 0.50);
  report.p95_turnaround_s = util::quantile(report.turnarounds_s, 0.95);
  report.max_turnaround_s = util::max_of(report.turnarounds_s);
  return report;
}

workload::ResourceVec mean_utilization(const SimResult& result,
                                       const ResourceVec& capacity_per_slot) {
  workload::ResourceVec total{};
  for (const auto& used : result.used_per_slot) {
    total = workload::add(total, used);
  }
  workload::ResourceVec out{};
  const double slots = static_cast<double>(result.used_per_slot.size());
  for (int r = 0; r < workload::kNumResources; ++r) {
    out[r] = slots > 0.0 && capacity_per_slot[r] > 0.0
                 ? total[r] / (slots * capacity_per_slot[r])
                 : 0.0;
  }
  return out;
}

}  // namespace flowtime::sim
