#include "sim/events.h"

namespace flowtime::sim {

namespace {

struct NameVisitor {
  const char* operator()(const WorkflowArrivalEvent&) const {
    return "workflow_arrival";
  }
  const char* operator()(const AdhocArrivalEvent&) const {
    return "adhoc_arrival";
  }
  const char* operator()(const JobCompleteEvent&) const {
    return "job_complete";
  }
  const char* operator()(const CapacityChangeEvent&) const {
    return "capacity_change";
  }
  const char* operator()(const TaskFailureEvent&) const {
    return "task_failure";
  }
  const char* operator()(const SolverSabotageEvent&) const {
    return "solver_sabotage";
  }
  const char* operator()(const CellFaultEvent&) const { return "cell_fault"; }
};

}  // namespace

const char* event_name(const SchedulerEvent& event) {
  return std::visit(NameVisitor{}, event);
}

bool is_replan_trigger(const SchedulerEvent& event) {
  return !std::holds_alternative<SolverSabotageEvent>(event) &&
         !std::holds_alternative<AdhocArrivalEvent>(event) &&
         !std::holds_alternative<CellFaultEvent>(event);
}

JobUid event_job_uid(const SchedulerEvent& event) {
  if (const auto* adhoc = std::get_if<AdhocArrivalEvent>(&event)) {
    return adhoc->uid;
  }
  if (const auto* complete = std::get_if<JobCompleteEvent>(&event)) {
    return complete->uid;
  }
  if (const auto* failure = std::get_if<TaskFailureEvent>(&event)) {
    return failure->uid;
  }
  return -1;
}

}  // namespace flowtime::sim
