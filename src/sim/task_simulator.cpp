#include "sim/task_simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "util/logging.h"

namespace flowtime::sim {

namespace {

constexpr double kTol = 1e-6;

struct TaskJob {
  JobRecord record;
  int tasks_total = 0;
  int tasks_done = 0;
  int tasks_running = 0;
  int task_slots = 1;        // actual whole-slot duration of one task
  ResourceVec container{};   // per-slot footprint of one running task
  ResourceVec est_total{};   // estimated total demand (for the view)
  ResourceVec est_per_task{};
  std::vector<JobUid> parent_uids;
  std::vector<int> running_until;  // slot index at which each task frees
  bool arrived = false;
  bool complete = false;
  double ready_since_s = -1.0;

  int tasks_pending() const {
    return tasks_total - tasks_done - tasks_running;
  }
  bool ready(const std::vector<TaskJob>& all) const {
    for (JobUid p : parent_uids) {
      if (!all[static_cast<std::size_t>(p)].complete) return false;
    }
    return true;
  }
};

TaskJob make_task_job(const workload::JobSpec& spec, double slot_seconds) {
  TaskJob job;
  job.tasks_total = spec.num_tasks;
  job.task_slots = std::max(
      1, static_cast<int>(std::ceil(
             spec.task.runtime_s * spec.actual_runtime_factor /
                 slot_seconds -
             kTol)));
  job.container = workload::scale(spec.task.demand, slot_seconds);
  job.est_total = spec.total_demand();
  job.est_per_task =
      workload::scale(spec.task.demand, spec.task.runtime_s);
  job.record.actual_demand = spec.actual_total_demand();
  return job;
}

}  // namespace

TaskLevelSimulator::TaskLevelSimulator(TaskSimConfig config)
    : config_(config) {}

SimResult TaskLevelSimulator::run(const workload::Scenario& scenario,
                                  Scheduler& scheduler) {
  SimResult result;
  result.slot_seconds = config_.cluster.slot_seconds;
  std::vector<TaskJob> jobs;

  struct PendingWorkflow {
    const workload::Workflow* workflow = nullptr;
    std::vector<JobUid> node_uids;
  };
  std::vector<PendingWorkflow> workflow_arrivals;
  for (const workload::Workflow& w : scenario.workflows) {
    assert(w.valid());
    PendingWorkflow pending;
    pending.workflow = &w;
    for (dag::NodeId v = 0; v < w.dag.num_nodes(); ++v) {
      const workload::JobSpec& spec = w.jobs[static_cast<std::size_t>(v)];
      TaskJob job = make_task_job(spec, config_.cluster.slot_seconds);
      job.record.uid = static_cast<JobUid>(jobs.size());
      job.record.kind = JobKind::kDeadline;
      job.record.name = w.name + "/" + spec.name + "#" + std::to_string(v);
      job.record.workflow_id = w.id;
      job.record.node = v;
      job.record.arrival_s = w.start_s;
      pending.node_uids.push_back(job.record.uid);
      jobs.push_back(std::move(job));
    }
    for (dag::NodeId v = 0; v < w.dag.num_nodes(); ++v) {
      TaskJob& job = jobs[static_cast<std::size_t>(
          pending.node_uids[static_cast<std::size_t>(v)])];
      for (dag::NodeId p : w.dag.parents(v)) {
        job.parent_uids.push_back(
            pending.node_uids[static_cast<std::size_t>(p)]);
      }
    }
    workflow_arrivals.push_back(std::move(pending));
  }
  for (const workload::AdhocJob& a : scenario.adhoc_jobs) {
    TaskJob job = make_task_job(a.spec, config_.cluster.slot_seconds);
    job.record.uid = static_cast<JobUid>(jobs.size());
    job.record.kind = JobKind::kAdhoc;
    job.record.name = a.spec.name;
    job.record.arrival_s = a.arrival_s;
    jobs.push_back(std::move(job));
  }

  std::sort(workflow_arrivals.begin(), workflow_arrivals.end(),
            [](const PendingWorkflow& a, const PendingWorkflow& b) {
              return a.workflow->start_s < b.workflow->start_s;
            });
  std::vector<JobUid> adhoc_queue;
  for (const TaskJob& job : jobs) {
    if (job.record.kind == JobKind::kAdhoc) {
      adhoc_queue.push_back(job.record.uid);
    }
  }
  std::sort(adhoc_queue.begin(), adhoc_queue.end(), [&](JobUid a, JobUid b) {
    return jobs[static_cast<std::size_t>(a)].record.arrival_s <
           jobs[static_cast<std::size_t>(b)].record.arrival_s;
  });

  std::size_t next_workflow = 0;
  std::size_t next_adhoc = 0;
  std::size_t incomplete = jobs.size();
  const int max_slots = static_cast<int>(
      std::ceil(config_.max_horizon_s / config_.cluster.slot_seconds));
  const ResourceVec slot_capacity =
      workload::scale(config_.cluster.capacity, config_.cluster.slot_seconds);

  for (int slot = 0; slot < max_slots && incomplete > 0; ++slot) {
    const double now = slot * config_.cluster.slot_seconds;

    // Tasks finishing at this boundary free their containers.
    std::vector<JobUid> completed_now;
    for (TaskJob& job : jobs) {
      if (!job.arrived || job.complete) continue;
      const auto still_running = std::partition(
          job.running_until.begin(), job.running_until.end(),
          [slot](int until) { return until > slot; });
      const int finished = static_cast<int>(
          std::distance(still_running, job.running_until.end()));
      if (finished > 0) {
        job.running_until.erase(still_running, job.running_until.end());
        job.tasks_running -= finished;
        job.tasks_done += finished;
        if (job.tasks_done == job.tasks_total) {
          job.complete = true;
          job.record.completion_s = now;
          completed_now.push_back(job.record.uid);
        }
      }
    }
    for (JobUid uid : completed_now) {
      --incomplete;
      scheduler.on_event(JobCompleteEvent{uid, now});
    }
    if (incomplete == 0) {
      result.slots_simulated = slot;
      break;
    }

    // Arrivals.
    while (next_workflow < workflow_arrivals.size() &&
           workflow_arrivals[next_workflow].workflow->start_s <= now + kTol) {
      PendingWorkflow& pending = workflow_arrivals[next_workflow];
      for (JobUid uid : pending.node_uids) {
        jobs[static_cast<std::size_t>(uid)].arrived = true;
      }
      // Aliasing, non-owning: the scenario outlives the run, so the event
      // can carry a shared_ptr without taking ownership or copying.
      scheduler.on_event(WorkflowArrivalEvent{
          std::shared_ptr<const workload::Workflow>(
              std::shared_ptr<const workload::Workflow>(), pending.workflow),
          pending.node_uids, now});
      ++next_workflow;
    }
    while (next_adhoc < adhoc_queue.size() &&
           jobs[static_cast<std::size_t>(adhoc_queue[next_adhoc])]
                   .record.arrival_s <= now + kTol) {
      TaskJob& job = jobs[static_cast<std::size_t>(adhoc_queue[next_adhoc])];
      job.arrived = true;
      scheduler.on_event(AdhocArrivalEvent{
          job.record.uid, now,
          workload::scale(job.container, job.tasks_total)});
      ++next_adhoc;
    }

    // Snapshot.
    ClusterState state;
    state.slot = slot;
    state.now_s = now;
    state.slot_seconds = config_.cluster.slot_seconds;
    state.capacity = slot_capacity;
    ResourceVec occupied{};
    for (TaskJob& job : jobs) {
      if (!job.arrived || job.complete) continue;
      occupied = workload::add(
          occupied, workload::scale(job.container, job.tasks_running));
      JobView view;
      view.uid = job.record.uid;
      view.kind = job.record.kind;
      view.workflow_id = job.record.workflow_id;
      view.node = job.record.node;
      view.arrival_s = job.record.arrival_s;
      view.width = workload::scale(job.container, job.tasks_total);
      view.container = job.container;
      view.ready = job.ready(jobs);
      if (view.ready) {
        if (job.ready_since_s < 0.0) job.ready_since_s = now;
        view.ready_since_s = job.ready_since_s;
      } else {
        view.ready_since_s = now;
      }
      if (job.record.kind == JobKind::kDeadline) {
        // Remaining estimate: unfinished tasks at their estimated cost.
        view.remaining_estimate = workload::scale(
            job.est_per_task, job.tasks_total - job.tasks_done);
        view.overrun = false;  // task model: estimates shift task_slots
      }
      state.active.push_back(view);
    }

    const std::vector<Allocation> allocations = scheduler.allocate(state);

    // Launch new tasks toward each job's granted footprint; running tasks
    // are never preempted and always count against the grant first.
    ResourceVec free = workload::clamp_nonnegative(
        workload::sub(slot_capacity, occupied));
    for (const Allocation& alloc : allocations) {
      if (alloc.uid < 0 ||
          alloc.uid >= static_cast<JobUid>(jobs.size())) {
        continue;
      }
      TaskJob& job = jobs[static_cast<std::size_t>(alloc.uid)];
      if (!job.arrived || job.complete || !job.ready(jobs)) continue;
      // Target containers from the granted footprint (round to nearest:
      // the LP's fractional grants should not starve on floor).
      int target = job.tasks_running;
      for (int r = 0; r < workload::kNumResources; ++r) {
        if (job.container[r] > kTol) {
          target = std::max(
              target, static_cast<int>(std::llround(
                          alloc.amount[r] / job.container[r])));
          break;  // container components are proportional by construction
        }
      }
      int to_start = std::min(target - job.tasks_running,
                              job.tasks_pending());
      while (to_start > 0 &&
             workload::fits_within(job.container, free, kTol)) {
        free = workload::sub(free, job.container);
        job.running_until.push_back(slot + job.task_slots);
        ++job.tasks_running;
        --to_start;
      }
    }

    ResourceVec used{};
    for (const TaskJob& job : jobs) {
      used = workload::add(
          used, workload::scale(job.container, job.tasks_running));
    }
    result.used_per_slot.push_back(used);
    result.allocated_per_slot.push_back(used);
    result.slots_simulated = slot + 1;
  }

  result.all_completed = incomplete == 0;
  if (!result.all_completed) {
    FT_LOG(kWarn) << "task-level horizon expired with " << incomplete
                  << " incomplete jobs under " << scheduler.name();
  }
  result.jobs.reserve(jobs.size());
  for (TaskJob& job : jobs) result.jobs.push_back(std::move(job.record));
  return result;
}

}  // namespace flowtime::sim
