// Evaluation metrics (paper §VII-A "Metrics"): deadline misses at job and
// workflow granularity, and the average turnaround time of ad-hoc jobs.
//
// Per-job deadlines are an *input* here: every scheduler in the comparison
// is judged against the same decomposed job deadlines (the workflow's
// internal milestones), exactly as the paper's Fig. 4(a)/(b) does.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "sim/simulator.h"
#include "workload/workflow.h"

namespace flowtime::sim {

/// Deadline evaluation of one job.
struct JobDeadlineOutcome {
  JobUid uid = -1;
  workload::WorkflowJobRef ref;
  double deadline_s = 0.0;
  std::optional<double> completion_s;
  /// completion - deadline (positive = missed); unfinished jobs count as
  /// missed with delta measured at the simulation end.
  double delta_s = 0.0;
  bool missed = false;
};

struct WorkflowDeadlineOutcome {
  int workflow_id = -1;
  double deadline_s = 0.0;
  std::optional<double> completion_s;  // completion of the last job
  double delta_s = 0.0;
  bool missed = false;
};

struct DeadlineReport {
  std::vector<JobDeadlineOutcome> jobs;
  std::vector<WorkflowDeadlineOutcome> workflows;
  int jobs_missed = 0;
  int workflows_missed = 0;

  /// Distribution of job deltas, the series behind Fig. 4(a)/5(a).
  std::vector<double> job_deltas() const;
};

/// Map from workflow job to its absolute deadline (seconds).
using JobDeadlines = std::map<workload::WorkflowJobRef, double>;

/// Judges a simulation against per-job deadlines plus the workflows' own
/// deadlines. Jobs absent from `job_deadlines` are judged only at workflow
/// granularity.
DeadlineReport evaluate_deadlines(const SimResult& result,
                                  const std::vector<workload::Workflow>& workflows,
                                  const JobDeadlines& job_deadlines);

struct AdhocReport {
  int total = 0;
  int completed = 0;
  double mean_turnaround_s = 0.0;
  double p50_turnaround_s = 0.0;
  double p95_turnaround_s = 0.0;
  double max_turnaround_s = 0.0;
  std::vector<double> turnarounds_s;  // completed jobs only
};

/// Turnaround statistics of ad-hoc jobs (Fig. 4(c)/5(c)). Jobs the horizon
/// cut off are counted in `total` but not in the turnaround stats.
AdhocReport evaluate_adhoc(const SimResult& result);

/// Mean cluster utilization (delivered work / capacity) over the busy
/// period, per resource.
workload::ResourceVec mean_utilization(const SimResult& result,
                                       const ResourceVec& capacity_per_slot);

}  // namespace flowtime::sim
