// Slot-based discrete-event cluster simulator.
//
// Substitutes for the paper's YARN testbed (see DESIGN.md §2). Time advances
// in fixed slots (default 10 s, the paper's slot length). Each slot the
// simulator feeds the scheduler a snapshot and applies the returned
// allocation to ground truth:
//
//   * a job absorbs at most its width per slot and at most its remaining
//     actual demand per resource,
//   * allocations to jobs whose DAG parents have not finished are wasted
//     (precedence is physical, not advisory),
//   * a job completes at the end of the slot in which every resource's
//     actual demand reaches zero.
//
// Units: all per-slot quantities (capacity, width, allocation) are
// resource-seconds, i.e. cores*slot_seconds for CPU. Demands are
// resource-seconds as well, so "capacity per slot" = capacity * slot_seconds.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fault/injector.h"  // FaultPlan (config) + FaultLog (result)
#include "sim/scheduler.h"
#include "workload/trace_gen.h"

namespace flowtime::sim {

struct SimConfig {
  /// The authoritative cluster model (cores, memory GB, slot length).
  /// Schedulers exposing cluster_spec() are checked against it at run
  /// start; mismatches are reported as config skew.
  workload::ClusterSpec cluster;        // Fig. 7 cluster, 10 s slots (§VI)
  double max_horizon_s = 48.0 * 3600.0; // safety stop
  /// Per-slot capacity override hook: slots listed here replace the base
  /// capacity (the paper allows time-varying caps C_t^r).
  std::vector<std::pair<int, ResourceVec>> capacity_overrides;
  /// Node-granular (YARN-like) execution: when > 0 the cluster is
  /// `num_nodes` identical machines and every grant is realized as whole
  /// task containers placed first-fit onto nodes; work that does not pack
  /// is lost to fragmentation (reported in SimResult). 0 = fluid mode: the
  /// cluster is one divisible resource pool, the paper's LP abstraction.
  int num_nodes = 0;
  /// Fault-injection plan (machine churn, task faults, stragglers,
  /// estimate noise). Empty by default: the fault path is skipped entirely
  /// and runs are byte-identical to pre-fault builds. All fault randomness
  /// derives from `fault_plan.seed`, so one seed fixes the whole run.
  fault::FaultPlan fault_plan;
  /// Periodic observability hook: when > 0, `stats_hook` fires at the end
  /// of every Nth simulated slot with the slot index and the slot's end
  /// time. The library never writes to stdout/stderr itself —
  /// flowtime_sim --stats-every=N wires this to a metric-registry printer.
  int stats_every_slots = 0;
  std::function<void(int slot, double now_s)> stats_hook;
};

/// Outcome of one job.
struct JobRecord {
  JobUid uid = -1;
  JobKind kind = JobKind::kAdhoc;
  std::string name;
  int workflow_id = -1;
  dag::NodeId node = -1;
  double arrival_s = 0.0;
  /// End of the completion slot; unset if the horizon expired first.
  std::optional<double> completion_s;
  ResourceVec actual_demand{};

  double turnaround_s() const {
    return completion_s ? *completion_s - arrival_s : -1.0;
  }
};

struct SimResult {
  std::vector<JobRecord> jobs;            // indexed by JobUid
  std::vector<ResourceVec> used_per_slot; // delivered work per slot
  std::vector<ResourceVec> allocated_per_slot;  // granted (incl. waste)
  int slots_simulated = 0;
  double slot_seconds = 10.0;
  bool all_completed = false;

  /// Wall-clock end of the simulated period.
  double end_s() const { return slots_simulated * slot_seconds; }
  // Contract violations by the scheduler; well-behaved policies keep all
  // three at zero (tests assert this).
  int capacity_violations = 0;
  int width_violations = 0;
  int not_ready_allocations = 0;
  /// Node mode only: granted work that could not be realized as whole
  /// containers on any node (fragmentation + quantization loss).
  ResourceVec fragmentation_lost{};
  /// Fault-injection activity this run (all zero for empty plans). The
  /// obs `fault.*` counters and `fault_injected`/`task_retry`/
  /// `capacity_change` trace events carry the same story per event.
  fault::FaultLog faults;

  const JobRecord& record(JobUid uid) const {
    return jobs[static_cast<std::size_t>(uid)];
  }
};

/// Runs one scenario against one scheduler. The simulator is reusable;
/// each run() is independent.
class Simulator {
 public:
  explicit Simulator(SimConfig config = {});

  SimResult run(const workload::Scenario& scenario, Scheduler& scheduler);

  const SimConfig& config() const { return config_; }

 private:
  SimConfig config_;
};

}  // namespace flowtime::sim
