#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <optional>
#include <utility>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/backoff.h"
#include "util/logging.h"

namespace flowtime::sim {

namespace {

constexpr double kTol = 1e-6;

// Ground-truth execution state of one job.
struct LiveJob {
  JobRecord record;
  ResourceVec remaining_actual{};
  ResourceVec remaining_estimate{};
  ResourceVec estimate_total{};  // for computing fault progress loss
  ResourceVec width{};
  ResourceVec container{};  // one task's per-slot footprint (node mode)
  std::vector<JobUid> parent_uids;  // empty for ad-hoc jobs
  int adhoc_id = -1;        // scenario AdhocJob::id (fault-plan selector)
  bool arrived = false;
  bool complete = false;
  double ready_since_s = -1.0;  // first instant the job was runnable
  // Fault state: a failed job sits out until backoff_until_slot, then its
  // retry is released (pending_retry drives the task_retry event).
  int retries = 0;
  int backoff_until_slot = -1;
  bool pending_retry = false;
  /// Retry delays run through the shared backoff policy. multiplier 1 and
  /// no jitter reproduce the historical fixed `backoff_slots` delay; the
  /// policy is rebuilt if a later declared fault changes the base.
  std::optional<util::Backoff> retry_backoff;
  obs::SpanId job_span = obs::kNoSpan;        // release → completion
  obs::SpanId placement_span = obs::kNoSpan;  // current allocated run
  obs::SpanId fault_span = obs::kNoSpan;      // failure → retry release

  bool ready(const std::vector<LiveJob>& all) const {
    for (JobUid p : parent_uids) {
      if (!all[static_cast<std::size_t>(p)].complete) return false;
    }
    return true;
  }

  /// Runnable = DAG-ready and not sitting out a fault backoff.
  bool runnable(const std::vector<LiveJob>& all, int slot) const {
    return slot >= backoff_until_slot && ready(all);
  }
};

struct PendingWorkflow {
  const workload::Workflow* workflow = nullptr;
  std::vector<JobUid> node_uids;
};

}  // namespace

Simulator::Simulator(SimConfig config) : config_(std::move(config)) {}

SimResult Simulator::run(const workload::Scenario& scenario,
                         Scheduler& scheduler) {
  SimResult result;
  result.slot_seconds = config_.cluster.slot_seconds;
  fault::FaultInjector injector(config_.fault_plan, config_.cluster);

  // Config-skew check: a scheduler that plans against a different cluster
  // than the one executing produces plans that silently never fit (or
  // silently underuse the cluster). Flag it up front, once per run.
  if (const workload::ClusterSpec* spec = scheduler.cluster_spec()) {
    if (!workload::approx_equal(*spec, config_.cluster, 1e-6)) {
      FT_LOG(kWarn) << "scheduler " << scheduler.name()
                    << " is configured for " << workload::to_string(*spec)
                    << " but the simulator runs "
                    << workload::to_string(config_.cluster);
      if (obs::enabled()) {
        obs::registry().counter("sim.config_skew").add();
        obs::emit(obs::TraceEvent("config_skew")
                      .field("component", "simulator")
                      .field("scheduler", scheduler.name())
                      .field("configured", workload::to_string(*spec))
                      .field("authoritative",
                             workload::to_string(config_.cluster)));
      }
    }
  }

  std::vector<LiveJob> jobs;

  // Lay out uids: workflow jobs first (in workflow order), then ad-hoc.
  std::vector<PendingWorkflow> workflow_arrivals;
  for (const workload::Workflow& w : scenario.workflows) {
    assert(w.valid());
    PendingWorkflow pending;
    pending.workflow = &w;
    for (dag::NodeId v = 0; v < w.dag.num_nodes(); ++v) {
      const workload::JobSpec& spec = w.jobs[static_cast<std::size_t>(v)];
      LiveJob job;
      job.record.uid = static_cast<JobUid>(jobs.size());
      job.record.kind = JobKind::kDeadline;
      job.record.name = w.name + "/" + spec.name + "#" + std::to_string(v);
      job.record.workflow_id = w.id;
      job.record.node = v;
      job.record.arrival_s = w.start_s;
      job.record.actual_demand = spec.actual_total_demand();
      if (injector.active()) {
        // Estimate noise perturbs only the hidden ground truth; the
        // estimates handed to schedulers stay what prior runs "measured".
        job.record.actual_demand = workload::scale(
            job.record.actual_demand, injector.noise_factor(w.id, v));
      }
      job.remaining_actual = job.record.actual_demand;
      job.remaining_estimate = spec.total_demand();
      job.estimate_total = job.remaining_estimate;
      job.width = workload::scale(spec.max_parallel_demand(),
                                  config_.cluster.slot_seconds);
      job.container = workload::scale(spec.task.demand, config_.cluster.slot_seconds);
      pending.node_uids.push_back(job.record.uid);
      jobs.push_back(std::move(job));
    }
    // Parent uids need the whole workflow laid out first.
    for (dag::NodeId v = 0; v < w.dag.num_nodes(); ++v) {
      LiveJob& job = jobs[static_cast<std::size_t>(
          pending.node_uids[static_cast<std::size_t>(v)])];
      for (dag::NodeId p : w.dag.parents(v)) {
        job.parent_uids.push_back(
            pending.node_uids[static_cast<std::size_t>(p)]);
      }
    }
    workflow_arrivals.push_back(std::move(pending));
  }
  for (const workload::AdhocJob& a : scenario.adhoc_jobs) {
    LiveJob job;
    job.record.uid = static_cast<JobUid>(jobs.size());
    job.record.kind = JobKind::kAdhoc;
    job.record.name = a.spec.name;
    job.record.arrival_s = a.arrival_s;
    job.record.actual_demand = a.spec.actual_total_demand();
    job.remaining_actual = job.record.actual_demand;
    job.remaining_estimate = a.spec.total_demand();
    job.estimate_total = job.remaining_estimate;
    job.adhoc_id = a.id;
    job.width =
        workload::scale(a.spec.max_parallel_demand(), config_.cluster.slot_seconds);
    job.container =
        workload::scale(a.spec.task.demand, config_.cluster.slot_seconds);
    jobs.push_back(std::move(job));
  }

  // Arrival queues sorted by time (stable for determinism).
  std::sort(workflow_arrivals.begin(), workflow_arrivals.end(),
            [](const PendingWorkflow& a, const PendingWorkflow& b) {
              return a.workflow->start_s < b.workflow->start_s;
            });
  std::vector<JobUid> adhoc_queue;
  for (const LiveJob& job : jobs) {
    if (job.record.kind == JobKind::kAdhoc) adhoc_queue.push_back(job.record.uid);
  }
  std::sort(adhoc_queue.begin(), adhoc_queue.end(), [&](JobUid a, JobUid b) {
    return jobs[static_cast<std::size_t>(a)].record.arrival_s <
           jobs[static_cast<std::size_t>(b)].record.arrival_s;
  });

  // Lifecycle spans: workflow span + remaining-job count, closed when the
  // last job of the workflow completes.
  std::map<int, std::pair<obs::SpanId, int>> workflow_spans;

  std::size_t next_workflow = 0;
  std::size_t next_adhoc = 0;
  std::size_t incomplete = jobs.size();
  const int max_slots = static_cast<int>(
      std::ceil(config_.max_horizon_s / config_.cluster.slot_seconds));

  for (int slot = 0; slot < max_slots && incomplete > 0; ++slot) {
    const double now = slot * config_.cluster.slot_seconds;

    // Release everything that has arrived by the start of this slot.
    while (next_workflow < workflow_arrivals.size() &&
           workflow_arrivals[next_workflow].workflow->start_s <=
               now + kTol) {
      PendingWorkflow& pending = workflow_arrivals[next_workflow];
      for (JobUid uid : pending.node_uids) {
        jobs[static_cast<std::size_t>(uid)].arrived = true;
      }
      if (obs::enabled()) {
        const workload::Workflow& w = *pending.workflow;
        obs::SpanMeta wf_meta;
        wf_meta.workflow_id = w.id;
        wf_meta.deadline_s = w.deadline_s;
        const obs::SpanId wf_span =
            obs::begin_span("workflow", w.name, obs::kNoSpan, now, wf_meta);
        workflow_spans[w.id] = {wf_span,
                                static_cast<int>(pending.node_uids.size())};
        for (JobUid uid : pending.node_uids) {
          LiveJob& job = jobs[static_cast<std::size_t>(uid)];
          obs::SpanMeta meta;
          meta.workflow_id = w.id;
          meta.node = job.record.node;
          meta.uid = uid;
          job.job_span =
              obs::begin_span("job", job.record.name, wf_span, now, meta);
        }
      }
      // The event aliases the scenario's workflow (no copy, no ownership):
      // the scenario outlives the run, and any scheduler that needs the DAG
      // past the callback copies it, as FlowTimeScheduler does.
      scheduler.on_event(WorkflowArrivalEvent{
          std::shared_ptr<const workload::Workflow>(
              std::shared_ptr<const workload::Workflow>(), pending.workflow),
          pending.node_uids, now});
      ++next_workflow;
    }
    while (next_adhoc < adhoc_queue.size() &&
           jobs[static_cast<std::size_t>(adhoc_queue[next_adhoc])]
                   .record.arrival_s <= now + kTol) {
      LiveJob& job =
          jobs[static_cast<std::size_t>(adhoc_queue[next_adhoc])];
      job.arrived = true;
      if (obs::enabled()) {
        obs::SpanMeta meta;
        meta.uid = job.record.uid;
        job.job_span = obs::begin_span("job", job.record.name, obs::kNoSpan,
                                       now, meta);
      }
      scheduler.on_event(AdhocArrivalEvent{job.record.uid, now, job.width});
      ++next_adhoc;
    }

    // Effective capacity this slot: base, then per-slot overrides, then
    // injected machine churn on top.
    ResourceVec capacity_units = config_.cluster.capacity;
    for (const auto& [override_slot, cap] : config_.capacity_overrides) {
      if (override_slot == slot) capacity_units = cap;
    }
    if (injector.active()) {
      bool capacity_changed = false;
      capacity_units = injector.capacity_for_slot(slot, now, capacity_units,
                                                  &capacity_changed);
      if (capacity_changed) {
        scheduler.on_event(CapacityChangeEvent{
            now,
            workload::scale(capacity_units, config_.cluster.slot_seconds)});
      }

      // Solver sabotage: squeeze (or release) the scheduler's internal
      // solver on window transitions.
      bool solver_changed = false;
      const auto sabotage = injector.solver_fault_for_slot(slot, &solver_changed);
      if (solver_changed) {
        if (obs::enabled()) {
          if (sabotage.has_value()) {
            obs::registry().counter("fault.solver_sabotages").add();
            obs::emit(obs::TraceEvent("fault_injected")
                          .field("kind", "solver_sabotage")
                          .field("slot", slot)
                          .field("now_s", now)
                          .field("budget_ms", sabotage->budget_ms)
                          .field("pivot_cap", sabotage->pivot_cap)
                          .field("force_numerical_failure",
                                 sabotage->force_numerical_failure));
          } else {
            obs::emit(obs::TraceEvent("fault_lifted")
                          .field("kind", "solver_sabotage")
                          .field("slot", slot)
                          .field("now_s", now));
          }
        }
        if (sabotage.has_value()) {
          scheduler.on_event(SolverSabotageEvent{
              now, sabotage->budget_ms, sabotage->pivot_cap,
              sabotage->force_numerical_failure});
        } else {
          scheduler.on_event(SolverSabotageEvent{now, -1.0, 0, false});
        }
      }

      // Cell faults: whole scheduler shards crash/hang/flap. The injector
      // emits the fault_injected/fault_lifted trace pair; here we only
      // forward the typed transition (federated coordinators react,
      // single-cell policies ignore it).
      for (const auto& transition : injector.cell_faults_for_slot(slot, now)) {
        scheduler.on_event(CellFaultEvent{transition.cell, now,
                                          transition.mode,
                                          transition.active});
      }

      // Release retries whose backoff expired, then inject this slot's
      // task faults and stragglers. Order matters for determinism: jobs
      // are visited in uid order and retries precede new failures.
      for (LiveJob& job : jobs) {
        if (!job.pending_retry || job.complete || slot < job.backoff_until_slot) {
          continue;
        }
        job.pending_retry = false;
        injector.count_task_retry();
        if (obs::enabled()) {
          obs::registry().counter("fault.task_retries").add();
          obs::emit(obs::TraceEvent("task_retry")
                        .field("slot", slot)
                        .field("now_s", now)
                        .field("uid", job.record.uid)
                        .field("workflow", job.record.workflow_id)
                        .field("node", job.record.node)
                        .field("name", job.record.name)
                        .field("retry", job.retries));
          obs::end_span(job.fault_span, now);
          job.fault_span = obs::kNoSpan;
        }
      }
      for (LiveJob& job : jobs) {
        if (!job.arrived || job.complete) continue;
        const bool is_adhoc = job.record.kind == JobKind::kAdhoc;
        const int selector_node = is_adhoc ? job.adhoc_id : job.record.node;
        const double straggle = injector.straggler_factor(
            slot, job.record.workflow_id, selector_node);
        if (straggle != 1.0) {
          job.remaining_actual =
              workload::scale(job.remaining_actual, straggle);
          injector.count_straggler();
          if (obs::enabled()) {
            obs::registry().counter("fault.stragglers").add();
            obs::emit(obs::TraceEvent("fault_injected")
                          .field("kind", "straggler")
                          .field("slot", slot)
                          .field("now_s", now)
                          .field("uid", job.record.uid)
                          .field("workflow", job.record.workflow_id)
                          .field("node", job.record.node)
                          .field("factor", straggle));
          }
        }
        if (!job.runnable(jobs, slot)) continue;  // backoff / parents
        const auto fault = injector.task_fault(
            slot, job.record.workflow_id, selector_node, job.retries);
        if (!fault) continue;
        // Fail-and-retry: the job loses `lost_fraction` of the progress it
        // made, in both the ground-truth and the estimate domains, and is
        // barred from running until the backoff expires.
        const ResourceVec lost_actual = workload::scale(
            workload::clamp_nonnegative(workload::sub(
                job.record.actual_demand, job.remaining_actual)),
            fault->lost_fraction);
        const ResourceVec lost_estimate = workload::scale(
            workload::clamp_nonnegative(
                workload::sub(job.estimate_total, job.remaining_estimate)),
            fault->lost_fraction);
        job.remaining_actual =
            workload::add(job.remaining_actual, lost_actual);
        job.remaining_estimate =
            workload::add(job.remaining_estimate, lost_estimate);
        ++job.retries;
        if (!job.retry_backoff.has_value() ||
            job.retry_backoff->config().base !=
                static_cast<double>(fault->backoff_slots)) {
          util::BackoffConfig backoff_config;
          backoff_config.base = fault->backoff_slots;
          backoff_config.multiplier = 1.0;  // legacy fixed per-retry delay
          job.retry_backoff.emplace(backoff_config);
        }
        job.backoff_until_slot =
            slot + static_cast<int>(std::lround(job.retry_backoff->next()));
        job.pending_retry = true;
        job.ready_since_s = -1.0;  // re-latches when the retry runs
        injector.count_task_failure();
        if (obs::enabled()) {
          obs::registry().counter("fault.task_failures").add();
          obs::TraceEvent event("fault_injected");
          event.field("kind", "task_failure")
              .field("slot", slot)
              .field("now_s", now)
              .field("uid", job.record.uid)
              .field("workflow", job.record.workflow_id)
              .field("node", job.record.node)
              .field("name", job.record.name)
              .field("retry", job.retries)
              .field("backoff_slots", fault->backoff_slots)
              .field("from_hazard", fault->from_hazard);
          for (int r = 0; r < workload::kNumResources; ++r) {
            event.field(std::string("lost_") + workload::resource_name(r),
                        lost_actual[r]);
          }
          obs::emit(event);
          // The failed run's placement ends here; the fault span covers
          // failure → retry release, pairing injection with recovery.
          obs::end_span(job.placement_span, now);
          job.placement_span = obs::kNoSpan;
          obs::SpanMeta meta;
          meta.workflow_id = job.record.workflow_id;
          meta.node = job.record.node;
          meta.uid = job.record.uid;
          job.fault_span =
              obs::begin_span("fault", "task_retry:" + job.record.name,
                              job.job_span, now, meta);
        }
        scheduler.on_event(TaskFailureEvent{
            job.record.uid, now, lost_estimate, job.retries,
            job.backoff_until_slot * config_.cluster.slot_seconds});
      }
    }

    // Snapshot for the scheduler.
    ClusterState state;
    state.slot = slot;
    state.now_s = now;
    state.slot_seconds = config_.cluster.slot_seconds;
    state.capacity =
        workload::scale(capacity_units, config_.cluster.slot_seconds);
    for (LiveJob& job : jobs) {
      if (!job.arrived || job.complete) continue;
      JobView view;
      view.uid = job.record.uid;
      view.kind = job.record.kind;
      view.workflow_id = job.record.workflow_id;
      view.node = job.record.node;
      view.arrival_s = job.record.arrival_s;
      view.width = job.width;
      view.container = job.container;
      view.ready = job.runnable(jobs, slot);
      if (view.ready) {
        if (job.ready_since_s < 0.0) job.ready_since_s = now;
        view.ready_since_s = job.ready_since_s;
      } else {
        view.ready_since_s = now;  // not runnable yet
      }
      if (job.record.kind == JobKind::kDeadline) {
        view.remaining_estimate = job.remaining_estimate;
        view.overrun = workload::is_zero(job.remaining_estimate, kTol);
      }
      state.active.push_back(view);
    }

    std::vector<Allocation> allocations = scheduler.allocate(state);

    // Enforce the contract: per-job width, readiness, then global capacity.
    ResourceVec granted_total{};
    std::vector<std::pair<JobUid, ResourceVec>> grants;
    for (Allocation& alloc : allocations) {
      if (alloc.uid < 0 ||
          alloc.uid >= static_cast<JobUid>(jobs.size())) {
        continue;
      }
      LiveJob& job = jobs[static_cast<std::size_t>(alloc.uid)];
      if (!job.arrived || job.complete) continue;
      ResourceVec amount = workload::clamp_nonnegative(alloc.amount);
      if (!workload::fits_within(amount, job.width, kTol)) {
        ++result.width_violations;
        amount = workload::elementwise_min(amount, job.width);
      }
      if (!job.runnable(jobs, slot)) {
        // Physical precedence (or a fault backoff): the grant is wasted,
        // not banked.
        ++result.not_ready_allocations;
        granted_total = workload::add(granted_total, amount);
        grants.emplace_back(alloc.uid, workload::zeros());
        continue;
      }
      granted_total = workload::add(granted_total, amount);
      grants.emplace_back(alloc.uid, amount);
    }
    double scale_factor = 1.0;
    if (!workload::fits_within(granted_total, state.capacity, 1e-3)) {
      ++result.capacity_violations;
      for (int r = 0; r < workload::kNumResources; ++r) {
        if (granted_total[r] > state.capacity[r]) {
          scale_factor =
              std::min(scale_factor, state.capacity[r] / granted_total[r]);
        }
      }
    }

    // Node mode: realize grants as whole containers placed first-fit on
    // identical nodes; whatever does not pack is fragmentation loss.
    std::vector<ResourceVec> node_free;
    if (config_.num_nodes > 0) {
      node_free.assign(
          static_cast<std::size_t>(config_.num_nodes),
          workload::scale(state.capacity, 1.0 / config_.num_nodes));
    }

    // Deliver and collect completions.
    ResourceVec used{};
    std::vector<JobUid> completed_now;
    const bool spans_on = obs::enabled();
    std::vector<char> granted_this_slot(spans_on ? jobs.size() : 0, 0);
    for (auto& [uid, amount] : grants) {
      LiveJob& job = jobs[static_cast<std::size_t>(uid)];
      ResourceVec granted = workload::scale(amount, scale_factor);
      if (config_.num_nodes > 0) {
        int want = 0;
        bool sized = false;
        for (int r = 0; r < workload::kNumResources; ++r) {
          if (job.container[r] > kTol) {
            const int fit = static_cast<int>(
                std::floor(granted[r] / job.container[r] + 1e-9));
            want = sized ? std::min(want, fit) : fit;
            sized = true;
          }
        }
        int placed = 0;
        for (int c = 0; c < want; ++c) {
          bool found = false;
          for (ResourceVec& free : node_free) {
            if (workload::fits_within(job.container, free, 1e-9)) {
              free = workload::sub(free, job.container);
              found = true;
              break;
            }
          }
          if (!found) break;
          ++placed;
        }
        const ResourceVec realized =
            workload::scale(job.container, placed);
        result.fragmentation_lost = workload::add(
            result.fragmentation_lost,
            workload::clamp_nonnegative(workload::sub(granted, realized)));
        granted = realized;
      }
      if (spans_on && !workload::is_zero(granted, kTol)) {
        granted_this_slot[static_cast<std::size_t>(uid)] = 1;
        if (job.placement_span == obs::kNoSpan) {
          obs::SpanMeta meta;
          meta.workflow_id = job.record.workflow_id;
          meta.node = job.record.node;
          meta.uid = uid;
          job.placement_span = obs::begin_span(
              "placement", job.record.name, job.job_span, now, meta);
        }
      }
      const ResourceVec delivered =
          workload::elementwise_min(granted, job.remaining_actual);
      job.remaining_actual = workload::clamp_nonnegative(
          workload::sub(job.remaining_actual, delivered));
      job.remaining_estimate = workload::clamp_nonnegative(
          workload::sub(job.remaining_estimate, granted));
      used = workload::add(used, delivered);
      if (workload::is_zero(job.remaining_actual, kTol)) {
        job.complete = true;
        job.record.completion_s = now + config_.cluster.slot_seconds;
        completed_now.push_back(uid);
      }
    }
    if (spans_on) {
      // A slot without allocation ends the job's current placement run.
      for (LiveJob& job : jobs) {
        if (job.placement_span != obs::kNoSpan && !job.complete &&
            !granted_this_slot[static_cast<std::size_t>(job.record.uid)]) {
          obs::end_span(job.placement_span, now);
          job.placement_span = obs::kNoSpan;
        }
      }
    }

    result.used_per_slot.push_back(used);
    result.allocated_per_slot.push_back(
        workload::scale(granted_total, scale_factor));
    result.slots_simulated = slot + 1;

    if (obs::enabled()) {
      obs::registry().counter("sim.slots").add();
      int ready_jobs = 0;
      for (const JobView& view : state.active) {
        if (view.ready) ++ready_jobs;
      }
      obs::TraceEvent event("slot");
      event.field("scheduler", scheduler.name())
          .field("slot", slot)
          .field("now_s", now);
      for (int r = 0; r < workload::kNumResources; ++r) {
        const double load =
            state.capacity[r] > kTol ? used[r] / state.capacity[r] : 0.0;
        event.field(std::string("load_") + workload::resource_name(r), load);
        obs::registry()
            .histogram(std::string("sim.load.") +
                       workload::resource_name(r))
            .observe(load);
      }
      event.field("active_jobs", state.active.size())
          .field("ready_jobs", ready_jobs)
          .field("completions", completed_now.size());
      obs::emit(event);
    }

    for (JobUid uid : completed_now) {
      --incomplete;
      if (spans_on) {
        LiveJob& job = jobs[static_cast<std::size_t>(uid)];
        const double end_s = now + config_.cluster.slot_seconds;
        obs::end_span(job.placement_span, end_s);
        job.placement_span = obs::kNoSpan;
        obs::end_span(job.job_span, end_s);
        job.job_span = obs::kNoSpan;
        const auto wf_it = workflow_spans.find(job.record.workflow_id);
        if (wf_it != workflow_spans.end() && --wf_it->second.second == 0) {
          obs::end_span(wf_it->second.first, end_s);
          workflow_spans.erase(wf_it);
        }
      }
      scheduler.on_event(
          JobCompleteEvent{uid, now + config_.cluster.slot_seconds});
    }

    if (config_.stats_every_slots > 0 && config_.stats_hook &&
        (slot + 1) % config_.stats_every_slots == 0) {
      config_.stats_hook(slot, now + config_.cluster.slot_seconds);
    }
  }

  // Horizon expiry can leave spans open (unfinished jobs, the scheduler's
  // final plan epoch); close them so every begin pairs with exactly one end.
  obs::end_open_spans(result.slots_simulated * config_.cluster.slot_seconds);

  result.all_completed = incomplete == 0;
  if (!result.all_completed) {
    FT_LOG(kWarn) << "simulation horizon expired with " << incomplete
                  << " incomplete jobs under scheduler " << scheduler.name();
  }
  if (obs::enabled()) {
    obs::emit(obs::TraceEvent("sim_run")
                  .field("scheduler", scheduler.name())
                  .field("slots", result.slots_simulated)
                  .field("jobs", jobs.size())
                  .field("all_completed", result.all_completed)
                  .field("capacity_violations", result.capacity_violations)
                  .field("width_violations", result.width_violations)
                  .field("not_ready_allocations",
                         result.not_ready_allocations));
  }
  result.faults = injector.log();
  result.jobs.reserve(jobs.size());
  for (LiveJob& job : jobs) result.jobs.push_back(std::move(job.record));
  return result;
}

}  // namespace flowtime::sim
