// Typed scheduler events (DESIGN.md §11).
//
// Every interaction the simulator (or a live driver) pushes into a
// scheduling policy is one value of the `SchedulerEvent` variant below.
// Events are plain values — copyable, self-contained, carrying no borrowed
// references with narrower lifetime than the scenario — so they can cross
// thread boundaries: the concurrent runtime (src/runtime) enqueues them
// into a bounded MPSC queue and applies them on the serving side, which is
// impossible with the legacy callback-per-event interface.
//
// The one non-trivial payload is the workflow DAG on arrival. It travels as
// a shared_ptr<const Workflow> so that enqueueing stays O(1): the simulator
// aliases the scenario's workflow (which outlives the run), while a live
// ingestion front-end would hand over an owning pointer. Consumers must not
// assume the pointer outlives the run.
#pragma once

#include <cstdint>
#include <memory>
#include <variant>
#include <vector>

#include "fault/plan.h"
#include "workload/resources.h"
#include "workload/workflow.h"

namespace flowtime::sim {

/// Dense per-run job identifier assigned by the simulator.
using JobUid = int;

/// A workflow was released: the scheduler sees its full DAG and per-job
/// estimates (workflows recur; prior runs supply them). `node_uids[v]` is
/// the JobUid of DAG node v.
struct WorkflowArrivalEvent {
  std::shared_ptr<const workload::Workflow> workflow;
  std::vector<JobUid> node_uids;
  double now_s = 0.0;
};

/// An ad-hoc job arrived; only identity, time and width are disclosed —
/// never its size (paper §II-A).
struct AdhocArrivalEvent {
  JobUid uid = -1;
  double now_s = 0.0;
  workload::ResourceVec width{};
};

/// A job finished (its completion slot just ended).
struct JobCompleteEvent {
  JobUid uid = -1;
  double now_s = 0.0;
};

/// The cluster's effective capacity changed mid-run (machine failure or
/// recovery). `capacity` is the new per-slot budget in resource-seconds.
struct CapacityChangeEvent {
  double now_s = 0.0;
  workload::ResourceVec capacity{};
};

/// A job lost in-flight work to an injected fault and will retry.
/// `lost_estimate` is the estimated demand re-credited to the job's
/// remaining work; the job is barred from running until `retry_at_s`.
struct TaskFailureEvent {
  JobUid uid = -1;
  double now_s = 0.0;
  workload::ResourceVec lost_estimate{};
  int retry = 0;
  double retry_at_s = 0.0;
};

/// Chaos injection squeezed (budget_ms/pivot_cap limits, forced numerical
/// failure) or, with (-1.0, 0, false), released the scheduler's internal
/// solver. See fault::SolverFault.
struct SolverSabotageEvent {
  double now_s = 0.0;
  double budget_ms = -1.0;
  std::int64_t pivot_cap = 0;
  bool force_numerical_failure = false;
};

/// A whole federation cell (scheduler shard) failed (`active`) or recovered
/// (!`active`) — see fault::CellFault. Only the federated coordinator
/// reacts (failure detection, quarantine, workflow failover); single-cell
/// policies ignore the event. The machines behind the cell are unaffected.
struct CellFaultEvent {
  int cell = 0;
  double now_s = 0.0;
  fault::CellFaultMode mode = fault::CellFaultMode::kCrash;
  bool active = false;
};

/// The unified event type delivered through Scheduler::on_event. Variant
/// order is part of the API (index() is stable for trace consumers); new
/// event types append at the end.
using SchedulerEvent =
    std::variant<WorkflowArrivalEvent, AdhocArrivalEvent, JobCompleteEvent,
                 CapacityChangeEvent, TaskFailureEvent, SolverSabotageEvent,
                 CellFaultEvent>;

/// Simulation timestamp carried by the event.
inline double event_time(const SchedulerEvent& event) {
  return std::visit([](const auto& e) { return e.now_s; }, event);
}

/// Stable lowercase tag for traces and logs ("workflow_arrival", ...).
const char* event_name(const SchedulerEvent& event);

/// True for events that add, remove or resize planned work — the ones a
/// replanning scheduler may react to with a new plan. Ad-hoc arrivals never
/// enter the LP (their size is unknown), SolverSabotageEvent only
/// re-parametrizes the solver, and CellFaultEvent is handled natively by
/// the federated coordinator (which marks the affected cells dirty itself),
/// so none of those count.
bool is_replan_trigger(const SchedulerEvent& event);

/// JobUid the event is about, or -1 for events that are not addressed to a
/// single job (workflow arrivals, capacity changes, sabotage). A federated
/// coordinator uses this to route job-scoped events to the owning cell.
JobUid event_job_uid(const SchedulerEvent& event);

}  // namespace flowtime::sim
