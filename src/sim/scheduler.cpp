#include "sim/scheduler.h"

#include <type_traits>

namespace flowtime::sim {

// Default dispatch: unpack the variant into the legacy per-event virtuals.
// This is the one sanctioned caller of the deprecated hooks — policies that
// have not migrated yet receive exactly the calls they always did, in the
// same order, with the same arguments.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
void Scheduler::on_event(const SchedulerEvent& event) {
  std::visit(
      [this](const auto& e) {
        using E = std::decay_t<decltype(e)>;
        if constexpr (std::is_same_v<E, WorkflowArrivalEvent>) {
          on_workflow_arrival(*e.workflow, e.node_uids, e.now_s);
        } else if constexpr (std::is_same_v<E, AdhocArrivalEvent>) {
          on_adhoc_arrival(e.uid, e.now_s, e.width);
        } else if constexpr (std::is_same_v<E, JobCompleteEvent>) {
          on_job_complete(e.uid, e.now_s);
        } else if constexpr (std::is_same_v<E, CapacityChangeEvent>) {
          on_capacity_change(e.now_s, e.capacity);
        } else if constexpr (std::is_same_v<E, TaskFailureEvent>) {
          on_task_failure(e.uid, e.now_s, e.lost_estimate, e.retry,
                          e.retry_at_s);
        } else if constexpr (std::is_same_v<E, SolverSabotageEvent>) {
          on_solver_sabotage(e.now_s, e.budget_ms, e.pivot_cap,
                             e.force_numerical_failure);
        } else {
          // Cell faults only concern the federated coordinator, which
          // overrides on_event wholesale; single-cell policies ignore them.
          static_assert(std::is_same_v<E, CellFaultEvent>);
        }
      },
      event);
}
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace flowtime::sim
