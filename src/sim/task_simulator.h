// Task-level, non-preemptive cluster simulator.
//
// The fluid Simulator treats a job as divisible resource-time — the
// abstraction the paper's LP works in. Real YARN execution is coarser:
// a job is a set of discrete tasks; once a task starts it holds its
// container until it finishes (no preemption, no partial slots). This
// simulator executes scenarios at that granularity while keeping the same
// Scheduler interface: a scheduler's per-slot grant is interpreted as the
// TARGET footprint for the job, and the simulator
//
//   * keeps already-running tasks running regardless of the new grant
//     (non-preemption: a shrinking plan drains, it does not kill), and
//   * launches new tasks up to the granted footprint while respecting the
//     global capacity and DAG readiness.
//
// Completion happens when the job's last task finishes. Used by the
// substrate-fidelity tests and bench: results should track the fluid
// simulator closely when task runtimes are small relative to windows, and
// diverge visibly when single tasks span many slots.
#pragma once

#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "workload/trace_gen.h"

namespace flowtime::sim {

struct TaskSimConfig {
  workload::ClusterSpec cluster;
  double max_horizon_s = 48.0 * 3600.0;
};

/// Runs one scenario at task granularity. Reuses SimResult; the
/// per-slot "used" series records the occupancy of running tasks.
class TaskLevelSimulator {
 public:
  explicit TaskLevelSimulator(TaskSimConfig config = {});

  SimResult run(const workload::Scenario& scenario, Scheduler& scheduler);

  const TaskSimConfig& config() const { return config_; }

 private:
  TaskSimConfig config_;
};

}  // namespace flowtime::sim
