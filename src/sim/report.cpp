#include "sim/report.h"

#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace flowtime::sim {

std::string utilization_csv(const SimResult& result) {
  std::ostringstream out;
  out << "slot,time_s";
  for (int r = 0; r < workload::kNumResources; ++r) {
    out << ",used_" << workload::resource_name(r) << ",allocated_"
        << workload::resource_name(r);
  }
  out << "\n";
  for (std::size_t t = 0; t < result.used_per_slot.size(); ++t) {
    out << t << "," << (static_cast<double>(t) * result.slot_seconds);
    for (int r = 0; r < workload::kNumResources; ++r) {
      out << "," << result.used_per_slot[t][r] << ","
          << result.allocated_per_slot[t][r];
    }
    out << "\n";
  }
  return out.str();
}

std::string jobs_csv(const SimResult& result) {
  std::ostringstream out;
  out << "uid,kind,name,workflow_id,node,arrival_s,completion_s,"
         "turnaround_s\n";
  for (const JobRecord& job : result.jobs) {
    out << job.uid << ","
        << (job.kind == JobKind::kDeadline ? "deadline" : "adhoc") << ","
        << job.name << "," << job.workflow_id << "," << job.node << ","
        << job.arrival_s << ",";
    if (job.completion_s) {
      out << *job.completion_s << "," << job.turnaround_s();
    } else {
      out << ",";
    }
    out << "\n";
  }
  return out.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    FT_LOG(kError) << "cannot write " << path;
    return false;
  }
  out << content;
  return static_cast<bool>(out);
}

}  // namespace flowtime::sim
