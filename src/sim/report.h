// CSV reporting of simulation results, for plotting and offline analysis
// (`flowtime_sim --csv-prefix out/` writes these next to the table output).
#pragma once

#include <string>

#include "sim/simulator.h"

namespace flowtime::sim {

/// Per-slot utilization: slot, time_s, used/allocated per resource.
std::string utilization_csv(const SimResult& result);

/// Per-job outcomes: uid, kind, name, workflow, arrival, completion,
/// turnaround.
std::string jobs_csv(const SimResult& result);

/// Writes `content` to `path`; returns false (and logs) on I/O failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace flowtime::sim
