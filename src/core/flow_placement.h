// Flow-based placement: the structured fast path for the scheduling LP's
// first level.
//
// Each resource's placement problem is a bipartite transportation problem
// (DESIGN.md §5.2): jobs supply demand, slots consume it under capacity,
// widths cap the job->slot edges. Two consequences:
//
//   * feasibility of a window set is a single max-flow computation, and
//   * the first lexmin level (min over u of "all slot loads <= u") is a
//     parametric max-flow, solved here by binary search on u.
//
// This module does NOT refine further levels — for the full lexicographic
// profile use solve_placement (the LP path). It exists as the cheap
// feasibility/admission-control primitive (capacity_planning-style what-if
// queries, admission checks on workflow arrival) and as a cross-check of
// the LP solver in tests and benches.
#pragma once

#include <vector>

#include "core/lp_formulation.h"

namespace flowtime::core {

struct FlowPlacementResult {
  bool feasible = false;        // all demands placeable within windows/caps
  double min_max_level = 0.0;   // smallest uniform load bound u (max over
                                // resources); > 1 means windows exceed caps
  /// allocation[j][t][r] achieving min_max_level (valid when demands were
  /// placeable at that level).
  std::vector<std::vector<workload::ResourceVec>> allocation;
};

struct FlowPlacementOptions {
  double level_tolerance = 1e-6;  // binary-search precision on u
  int max_iterations = 60;
};

/// One resource's first-level solve, shared by solve_flow_placement and
/// solve_placement's TU fast path (lp/unimodular.h flow_representable gates
/// the latter).
struct ResourceFlowLevel {
  /// False when some demand cannot be routed at any finite level (empty
  /// window, or width-limited). Callers fall back to the LP path for the
  /// authoritative infeasibility diagnosis.
  bool placeable = false;
  /// True when at least one job demands this resource; when false, `level`
  /// and `allocation` are trivially zero.
  bool any_demand = false;
  double level = 0.0;  // min uniform normalized load u for this resource
  /// allocation[j][t] in resource-seconds, t relative to first_slot; rows
  /// are sized num_slots for every job (zero where nothing was placed).
  std::vector<std::vector<double>> allocation;
};

/// Minimizes the uniform load bound u for a single resource by binary
/// search over parametric max-flows and returns the achieving allocation.
ResourceFlowLevel solve_resource_flow_level(
    const std::vector<LpJob>& jobs,
    const std::vector<workload::ResourceVec>& capacity_per_slot,
    int first_slot, int resource, const FlowPlacementOptions& options = {});

/// Solves the first-level placement by parametric max-flow. Inputs match
/// solve_placement: windows are clipped to
/// [first_slot, first_slot + capacity_per_slot.size()).
FlowPlacementResult solve_flow_placement(
    const std::vector<LpJob>& jobs,
    const std::vector<workload::ResourceVec>& capacity_per_slot,
    int first_slot, const FlowPlacementOptions& options = {});

}  // namespace flowtime::core
