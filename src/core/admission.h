// Admission control — an extension the paper's framework makes natural.
//
// FlowTime plans deadline work as a feasibility problem, so "can this new
// workflow's deadline be met next to everything already promised?" is
// answerable *before* accepting it: decompose the candidate, add its jobs
// to the currently admitted ones, and check that the flattest placement
// stays within capacity. The check runs on the max-flow fast path
// (core/flow_placement.h), making it cheap enough for an RPC admission
// gate. Rayon's admission story [4] is the same idea with a greedy agenda;
// here the answer is exact for the first level.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/decomposition.h"
#include "core/flow_placement.h"
#include "obs/span.h"
#include "workload/workflow.h"

namespace flowtime::core {

struct AdmissionConfig {
  workload::ClusterSpec cluster;
  /// Reserve this fraction of the cluster for ad-hoc work when deciding;
  /// a candidate is admitted only if the deadline plan fits the rest.
  double deadline_cap_fraction = 1.0;
  DecompositionMode decomposition_mode = DecompositionMode::kResourceDemand;
};

struct AdmissionDecision {
  bool admitted = false;
  /// Peak normalized load of the flattest placement including the
  /// candidate (relative to the reduced cap). <= 1 means admissible.
  double peak_load = 0.0;
  std::string reason;
};

/// Tracks admitted-but-unfinished deadline work and answers admission
/// queries. This is a planning-side companion to FlowTimeScheduler: feed it
/// the same arrivals/completions and ask before accepting new workflows.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config = {});

  /// Would admitting `candidate` at time `now_s` keep every admitted
  /// deadline feasible? Does not mutate state.
  AdmissionDecision evaluate(const workload::Workflow& candidate,
                             double now_s) const;

  /// evaluate() + commit on success.
  AdmissionDecision admit(const workload::Workflow& candidate, double now_s);

  /// Commits the candidate regardless of feasibility (the returned decision
  /// still reports the honest evaluate() verdict). The federation
  /// coordinator uses this when it places a workflow on a cell that did not
  /// pass the feasibility check — every cell rejected it, or a hotspot
  /// migration forced the move — so the cell's future admission queries
  /// still see the demand. No-op commit when decomposition itself fails.
  AdmissionDecision force_admit(const workload::Workflow& candidate,
                                double now_s);

  /// Marks one admitted workflow's job complete (frees its demand). The
  /// optional timestamp closes the workflow's `admitted` span when its last
  /// job completes.
  void complete_job(int workflow_id, dag::NodeId node, double now_s = 0.0);

  /// Drops a whole workflow (finished or cancelled).
  void forget_workflow(int workflow_id, double now_s = 0.0);

  /// The cluster's effective capacity changed (machine failure/recovery).
  /// Future admission checks run against the new capacity — a shrunken
  /// cluster admits less; a recovered one admits more. `new_capacity` is
  /// in resource units (cores, GB), like ClusterSpec::capacity.
  void on_capacity_change(const workload::ResourceVec& new_capacity,
                          double now_s = 0.0);

  /// Number of distinct workflows currently tracked.
  int admitted_workflows() const;
  /// Number of incomplete admitted jobs currently tracked.
  int pending_jobs() const;

  /// Checks this controller's cluster model against the authoritative one
  /// (e.g. the simulator's). On mismatch logs, bumps the
  /// "core.admission.config_skew" counter and emits a "config_skew" trace
  /// event. Returns true when the specs agree.
  bool verify_cluster(const workload::ClusterSpec& authoritative) const;

 private:
  struct AdmittedJob {
    workload::WorkflowJobRef ref;
    LpJob lp_job;
    bool complete = false;
  };

  /// Decomposes a workflow into LpJobs on the slot grid. On failure returns
  /// nullopt and, when `status` is non-null, stores the machine-readable
  /// reason.
  std::optional<std::vector<AdmittedJob>> decompose_to_jobs(
      const workload::Workflow& workflow, DecomposeStatus* status) const;

  AdmissionConfig config_;
  std::vector<AdmittedJob> admitted_;
  /// `admitted` lifecycle span per tracked workflow (admit → last
  /// completion / forget).
  std::map<int, obs::SpanId> admitted_spans_;
};

}  // namespace flowtime::core
