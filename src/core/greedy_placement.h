// LP-free fallback placement (DESIGN.md §10 "Graceful degradation").
//
// The last rung of FlowTimeScheduler's escalation ladder: when both the
// warm and the cold LP solve fail (budget exhausted, numerical failure,
// infeasible after window repair), this routine still produces a complete
// placement for every job — in O(jobs * slots * resources) arithmetic with
// no iteration counts to bound and no tolerances to trip, so it cannot
// itself fail.
//
// Algorithm (earliest-deadline-first water filling):
//   * Jobs are processed in (deadline_slot, release_slot, uid) order — the
//     job with the least room to maneuver claims capacity first.
//   * Each job needs at least n = ceil(demand / width) occupied slots (per
//     the binding resource); n is clamped to the window length, matching
//     the late-extension semantics of the LP path (an impossible window
//     still gets a densest-possible placement rather than nothing).
//   * The job's demand is spread evenly over the n window slots whose
//     normalized load (after the jobs placed so far) is lowest — ties break
//     toward earlier slots, keeping the result deterministic and finishing
//     jobs early when the profile is flat.
//
// Quality contract: every job receives its full demand inside its (clipped)
// window, exactly like an ok() LP schedule; what is lost is flatness — the
// greedy profile can exceed the lexmin peak, and `capacity_exceeded` fires
// whenever the packed load tops capacity. Oversubscription is deliberately
// NOT clipped here: the scheduler's allocator already shrinks per-slot
// grants proportionally, and clipping twice would strand demand.
#pragma once

#include <vector>

#include "core/lp_formulation.h"
#include "workload/resources.h"

namespace flowtime::core {

/// Drop-in replacement for solve_placement: same inputs, same LpSchedule
/// shape, status always kOptimal. `capacity_per_slot[t]` is the capacity of
/// slot `first_slot + t` in resource-seconds.
LpSchedule greedy_placement(
    const std::vector<LpJob>& jobs,
    const std::vector<workload::ResourceVec>& capacity_per_slot,
    int first_slot);

}  // namespace flowtime::core
