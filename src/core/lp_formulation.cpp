#include "core/lp_formulation.h"

#include <algorithm>
#include <cmath>

#include "core/flow_placement.h"
#include "lp/simplex.h"
#include "lp/unimodular.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace flowtime::core {

namespace {

constexpr double kTinyCapacity = 1e-9;

// FNV-1a over the model *shape*: column/row counts and per-row sparsity of
// the base problem plus the per-load entry layout. Two problems with the
// same fingerprint produce lexmin working problems of identical shape, so
// a basis from one is a valid warm-start hint for the other (data may
// differ; the solver repairs that). Collisions are harmless — the simplex
// engine re-validates dimensions and falls back to a cold solve.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL;
  return h * 0x100000001b3ULL;
}

std::uint64_t shape_fingerprint(const lp::LpProblem& base,
                                const std::vector<lp::LoadRow>& loads) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = mix(h, static_cast<std::uint64_t>(base.num_columns()));
  h = mix(h, static_cast<std::uint64_t>(base.num_rows()));
  h = mix(h, loads.size());
  for (int i = 0; i < base.num_rows(); ++i) {
    const auto& entries = base.row_entries(i);
    h = mix(h, entries.size());
    if (!entries.empty()) {
      h = mix(h, static_cast<std::uint64_t>(entries.front().column));
      h = mix(h, static_cast<std::uint64_t>(entries.back().column));
    }
  }
  for (const lp::LoadRow& load : loads) {
    h = mix(h, load.entries.size());
    if (!load.entries.empty()) {
      h = mix(h, static_cast<std::uint64_t>(load.entries.front().column));
      h = mix(h, static_cast<std::uint64_t>(load.entries.back().column));
    }
  }
  return h;
}

// Runs one lexmin solve through the warm cache: passes the cached basis
// when the shape fingerprint matches, and stores the final basis back for
// the next same-shaped solve.
lp::LexMinMaxResult solve_lexmin_cached(const lp::LexMinMaxSolver& lexmin,
                                        const lp::LpProblem& base,
                                        const std::vector<lp::LoadRow>& loads,
                                        PlacementWarmCache::Entry* cache) {
  const lp::Basis* warm = nullptr;
  std::uint64_t fingerprint = 0;
  if (cache != nullptr) {
    fingerprint = shape_fingerprint(base, loads);
    if (cache->fingerprint == fingerprint && !cache->basis.empty()) {
      warm = &cache->basis;
    }
  }
  lp::LexMinMaxResult lex = lexmin.solve(base, loads, warm);
  if (cache != nullptr) {
    cache->fingerprint = fingerprint;
    cache->basis = lex.final_basis;
  }
  return lex;
}

// Column bookkeeping for one resource's LP.
struct ColumnMap {
  // per job: first column index and [begin, end] slot range (relative),
  // or begin > end when the job has no columns for this resource.
  struct JobColumns {
    int first_column = -1;
    int begin = 0;
    int end = -1;
  };
  std::vector<JobColumns> jobs;
};

}  // namespace

LpSchedule solve_placement(
    const std::vector<LpJob>& jobs,
    const std::vector<workload::ResourceVec>& capacity_per_slot,
    int first_slot, const LpScheduleOptions& options) {
  if (options.coupled_resources) {
    return solve_placement_coupled(jobs, capacity_per_slot, first_slot,
                                   options);
  }
  LpSchedule schedule;
  schedule.first_slot = first_slot;
  schedule.num_slots = static_cast<int>(capacity_per_slot.size());
  schedule.allocation.assign(
      jobs.size(),
      std::vector<workload::ResourceVec>(
          static_cast<std::size_t>(schedule.num_slots)));
  schedule.normalized_load.assign(
      static_cast<std::size_t>(schedule.num_slots), workload::ResourceVec{});
  schedule.status = lp::SolveStatus::kOptimal;

  const int last_slot = first_slot + schedule.num_slots - 1;

  for (int r = 0; r < workload::kNumResources; ++r) {
    // --- Build the per-resource base problem (demand rows + widths). ---
    lp::LpProblem base;
    ColumnMap map;
    map.jobs.resize(jobs.size());
    bool any_columns = false;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const LpJob& job = jobs[j];
      if (job.demand[r] <= 0.0) continue;
      const int begin = std::max(job.release_slot, first_slot) - first_slot;
      const int end = std::min(job.deadline_slot, last_slot) - first_slot;
      if (begin > end) {
        // Empty window with positive demand: unplaceable.
        FT_LOG(kInfo) << "lp_formulation: job uid=" << job.uid
                      << " has an empty window for resource " << r;
        schedule.status = lp::SolveStatus::kInfeasible;
        return schedule;
      }
      map.jobs[j] = ColumnMap::JobColumns{base.num_columns(), begin, end};
      std::vector<lp::RowEntry> demand_row;
      demand_row.reserve(static_cast<std::size_t>(end - begin + 1));
      for (int t = begin; t <= end; ++t) {
        const int col = base.add_column(0.0, 0.0, job.width[r]);
        demand_row.push_back(lp::RowEntry{col, 1.0});
        any_columns = true;
      }
      base.add_row(lp::RowSense::kEqual, job.demand[r],
                   std::move(demand_row));
    }
    if (!any_columns) continue;

    // --- Load rows, one per slot (paper constraints (3)/(4) folded into
    //     the lexmin objective). ---
    std::vector<lp::LoadRow> loads(
        static_cast<std::size_t>(schedule.num_slots));
    for (int t = 0; t < schedule.num_slots; ++t) {
      loads[static_cast<std::size_t>(t)].normalizer = std::max(
          capacity_per_slot[static_cast<std::size_t>(t)][r], kTinyCapacity);
      loads[static_cast<std::size_t>(t)].name =
          "slot" + std::to_string(first_slot + t);
    }
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const auto& cols = map.jobs[j];
      if (cols.first_column < 0) continue;
      for (int t = cols.begin; t <= cols.end; ++t) {
        loads[static_cast<std::size_t>(t)].entries.push_back(
            lp::RowEntry{cols.first_column + (t - cols.begin), 1.0});
      }
    }

    // --- TU/max-flow fast path: a first-level-only solve of a
    //     flow-representable system is a parametric max flow, not an LP.
    //     The gate is structural (O(nnz)) and conservative: any deviation
    //     from the transportation shape falls through to simplex. ---
    if (options.flow_fast_path && options.lexmin.max_rounds == 1 &&
        !options.integral_extraction && lp::flow_representable(base, loads)) {
      FlowPlacementOptions flow_options;
      flow_options.level_tolerance = options.lexmin.level_tol;
      const ResourceFlowLevel flow = solve_resource_flow_level(
          jobs, capacity_per_slot, first_slot, r, flow_options);
      if (flow.placeable) {
        schedule.flow_fast_path = true;
        schedule.lexmin_rounds = std::max(schedule.lexmin_rounds, 1);
        schedule.max_normalized_load =
            std::max(schedule.max_normalized_load, flow.level);
        if (flow.level > 1.0 + 1e-6) schedule.capacity_exceeded = true;
        for (std::size_t j = 0; j < jobs.size(); ++j) {
          const auto& cols = map.jobs[j];
          if (cols.first_column < 0) continue;
          for (int t = cols.begin; t <= cols.end; ++t) {
            schedule.allocation[j][static_cast<std::size_t>(t)][r] =
                flow.allocation[j][static_cast<std::size_t>(t)];
          }
        }
        for (int t = 0; t < schedule.num_slots; ++t) {
          double used = 0.0;
          for (std::size_t j = 0; j < jobs.size(); ++j) {
            used += flow.allocation[j][static_cast<std::size_t>(t)];
          }
          schedule.normalized_load[static_cast<std::size_t>(t)][r] =
              used / loads[static_cast<std::size_t>(t)].normalizer;
        }
        if (obs::enabled()) {
          obs::registry().counter("lp.flow_fast_path.solves").add();
        }
        continue;
      }
      // Not placeable at any finite level: let simplex diagnose it
      // authoritatively (infeasible vs. capacity_exceeded).
    }

    lp::LexMinMaxSolver lexmin(options.lexmin);
    lp::LexMinMaxResult lex = solve_lexmin_cached(
        lexmin, base, loads,
        options.warm_cache != nullptr
            ? &options.warm_cache->per_resource[static_cast<std::size_t>(r)]
            : nullptr);
    schedule.pivots += lex.pivots;
    schedule.lexmin_rounds = std::max(schedule.lexmin_rounds, lex.rounds);
    schedule.lexmin_truncated = schedule.lexmin_truncated || lex.truncated;
    schedule.budget_exhausted =
        schedule.budget_exhausted || lex.budget_exhausted;
    if (!lex.optimal()) {
      schedule.status = lex.status;
      return schedule;
    }
    schedule.max_normalized_load =
        std::max(schedule.max_normalized_load, lex.max_level());
    if (lex.max_level() > 1.0 + 1e-6) schedule.capacity_exceeded = true;

    std::vector<double> x = std::move(lex.x);

    // --- Optional integral extraction: re-solve as a pure transportation
    //     feasibility problem with the lexmin profile as hard caps. Vertex
    //     solutions of this TU system are integral when the data are. ---
    if (options.integral_extraction) {
      lp::LpProblem integral = base;
      for (int t = 0; t < schedule.num_slots; ++t) {
        const auto& load = loads[static_cast<std::size_t>(t)];
        if (load.entries.empty()) continue;
        const double cap = std::ceil(
            load.normalizer * lex.load[static_cast<std::size_t>(t)] - 1e-9);
        integral.add_row(lp::RowSense::kLessEqual, std::max(cap, 0.0),
                         load.entries);
      }
      lp::SimplexSolver simplex(options.lexmin.lp_options);
      const lp::Solution vertex = simplex.solve(integral);
      schedule.pivots += vertex.iterations;
      if (vertex.optimal()) {
        x = vertex.x;
      } else {
        FT_LOG(kWarn) << "integral extraction failed ("
                      << lp::to_string(vertex.status)
                      << "); keeping the fractional lexmin placement";
      }
    }

    // --- Unpack into the schedule. ---
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const auto& cols = map.jobs[j];
      if (cols.first_column < 0) continue;
      for (int t = cols.begin; t <= cols.end; ++t) {
        schedule.allocation[j][static_cast<std::size_t>(t)][r] =
            x[static_cast<std::size_t>(cols.first_column + (t - cols.begin))];
      }
    }
    for (int t = 0; t < schedule.num_slots; ++t) {
      double used = 0.0;
      for (const lp::RowEntry& e :
           loads[static_cast<std::size_t>(t)].entries) {
        used += x[static_cast<std::size_t>(e.column)];
      }
      schedule.normalized_load[static_cast<std::size_t>(t)][r] =
          used / loads[static_cast<std::size_t>(t)].normalizer;
    }
  }
  return schedule;
}

LpSchedule solve_placement_coupled(
    const std::vector<LpJob>& jobs,
    const std::vector<workload::ResourceVec>& capacity_per_slot,
    int first_slot, const LpScheduleOptions& options) {
  LpSchedule schedule;
  schedule.first_slot = first_slot;
  schedule.num_slots = static_cast<int>(capacity_per_slot.size());
  schedule.allocation.assign(
      jobs.size(),
      std::vector<workload::ResourceVec>(
          static_cast<std::size_t>(schedule.num_slots)));
  schedule.normalized_load.assign(
      static_cast<std::size_t>(schedule.num_slots), workload::ResourceVec{});
  schedule.status = lp::SolveStatus::kOptimal;
  const int last_slot = first_slot + schedule.num_slots - 1;

  // One f column per (job, slot in window), measured in the job's dominant
  // resource; every other resource scales by the job's bundle ratio.
  lp::LpProblem base;
  struct JobColumns {
    int first_column = -1;
    int begin = 0;
    int end = -1;
    int reference = -1;               // dominant resource index
    workload::ResourceVec ratio{};    // per-resource multiplier of f
  };
  std::vector<JobColumns> map(jobs.size());
  std::vector<lp::LoadRow> loads(
      static_cast<std::size_t>(schedule.num_slots) *
      workload::kNumResources);
  for (int t = 0; t < schedule.num_slots; ++t) {
    for (int r = 0; r < workload::kNumResources; ++r) {
      auto& load = loads[static_cast<std::size_t>(t) *
                             workload::kNumResources +
                         r];
      load.normalizer = std::max(
          capacity_per_slot[static_cast<std::size_t>(t)][r], kTinyCapacity);
      load.name = "slot" + std::to_string(first_slot + t) + "_r" +
                  std::to_string(r);
    }
  }

  bool any_columns = false;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const LpJob& job = jobs[j];
    JobColumns& columns = map[j];
    // Dominant resource: largest demand relative to width (they are
    // proportional for gang jobs, so any nonzero one works).
    for (int r = 0; r < workload::kNumResources; ++r) {
      if (job.demand[r] > 0.0 &&
          (columns.reference < 0 ||
           job.demand[r] > job.demand[columns.reference])) {
        columns.reference = r;
      }
    }
    if (columns.reference < 0) continue;  // nothing to place
    const double ref_demand = job.demand[columns.reference];
    for (int r = 0; r < workload::kNumResources; ++r) {
      columns.ratio[r] = job.demand[r] / ref_demand;
    }
    const int begin = std::max(job.release_slot, first_slot) - first_slot;
    const int end = std::min(job.deadline_slot, last_slot) - first_slot;
    if (begin > end) {
      FT_LOG(kInfo) << "coupled placement: job uid=" << job.uid
                    << " has an empty window";
      schedule.status = lp::SolveStatus::kInfeasible;
      return schedule;
    }
    columns.first_column = base.num_columns();
    columns.begin = begin;
    columns.end = end;
    // Width bound in reference units: min over resources of width/ratio.
    double f_width = job.width[columns.reference];
    for (int r = 0; r < workload::kNumResources; ++r) {
      if (columns.ratio[r] > 0.0) {
        f_width = std::min(f_width, job.width[r] / columns.ratio[r]);
      }
    }
    std::vector<lp::RowEntry> demand_row;
    for (int t = begin; t <= end; ++t) {
      const int col = base.add_column(0.0, 0.0, f_width);
      demand_row.push_back(lp::RowEntry{col, 1.0});
      for (int r = 0; r < workload::kNumResources; ++r) {
        if (columns.ratio[r] > 0.0) {
          loads[static_cast<std::size_t>(t) * workload::kNumResources + r]
              .entries.push_back(lp::RowEntry{col, columns.ratio[r]});
        }
      }
      any_columns = true;
    }
    base.add_row(lp::RowSense::kEqual, ref_demand, std::move(demand_row));
  }
  if (!any_columns) return schedule;

  if (options.integral_extraction) {
    FT_LOG(kWarn) << "integral extraction is not supported for the coupled "
                     "formulation (the matrix is not TU); skipping";
  }
  lp::LexMinMaxSolver lexmin(options.lexmin);
  const lp::LexMinMaxResult lex = solve_lexmin_cached(
      lexmin, base, loads,
      options.warm_cache != nullptr ? &options.warm_cache->coupled : nullptr);
  schedule.pivots = lex.pivots;
  schedule.lexmin_rounds = lex.rounds;
  schedule.lexmin_truncated = lex.truncated;
  schedule.budget_exhausted = lex.budget_exhausted;
  if (!lex.optimal()) {
    schedule.status = lex.status;
    return schedule;
  }
  schedule.max_normalized_load = lex.max_level();
  schedule.capacity_exceeded = lex.max_level() > 1.0 + 1e-6;

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const JobColumns& columns = map[j];
    if (columns.first_column < 0) continue;
    for (int t = columns.begin; t <= columns.end; ++t) {
      const double f = lex.x[static_cast<std::size_t>(
          columns.first_column + (t - columns.begin))];
      for (int r = 0; r < workload::kNumResources; ++r) {
        schedule.allocation[j][static_cast<std::size_t>(t)][r] =
            f * columns.ratio[r];
      }
    }
  }
  for (int t = 0; t < schedule.num_slots; ++t) {
    for (int r = 0; r < workload::kNumResources; ++r) {
      schedule.normalized_load[static_cast<std::size_t>(t)][r] =
          lex.load[static_cast<std::size_t>(t) * workload::kNumResources +
                   r];
    }
  }
  return schedule;
}

}  // namespace flowtime::core
