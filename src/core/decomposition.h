// Deadline decomposition (paper §IV).
//
// Transforms a workflow deadline into per-job deadlines in three steps:
//
//  1. Group the DAG into a sequence of node sets with Kahn's algorithm:
//     mutually independent jobs share a set and therefore a deadline
//     (§IV-A, the `{1, {2..n}, n+1}` output of Fig. 3).
//  2. Guarantee each set its minimum runtime — the largest minimum runtime
//     of any job in the set, where a job's minimum runtime accounts for how
//     many of its tasks fit the cluster at once (§IV-B).
//  3. Distribute the remaining time (deadline - start - sum of minima)
//     across sets in proportion to their *total resource demand*
//     (tasks x task runtime x per-task demand, normalized by cluster
//     capacity so CPU and memory are comparable) — not in proportion to
//     critical-path runtime, which ignores how wide a level is (§IV-B,
//     Fig. 3 discussion: the middle level of a fork-join gets (n-1)/(n+1)
//     of the deadline rather than 1/3).
//
// When the remaining time is negative the deadline is tighter than the
// workflow's minimum makespan; footnote 1 falls back to classic
// critical-path decomposition (Yu/Buyya/Tham 2005), which this module also
// implements — both for the fallback and as the ablation baseline.
#pragma once

#include <vector>

#include "dag/dag.h"
#include "workload/resources.h"
#include "workload/workflow.h"

namespace flowtime::core {

enum class DecompositionMode {
  /// The paper's contribution: slack distributed by total resource demand.
  kResourceDemand,
  /// The traditional scheme: the whole window distributed by per-level
  /// minimum runtime (critical-path style). Used as fallback and ablation.
  kCriticalPath,
};

struct DecompositionConfig {
  workload::ClusterSpec cluster;
  DecompositionMode mode = DecompositionMode::kResourceDemand;
};

/// Absolute execution window of one job: the job may run in
/// [start_s, deadline_s]; its decomposed deadline is deadline_s.
struct JobWindow {
  double start_s = 0.0;
  double deadline_s = 0.0;
};

/// Machine-readable reason a decomposition failed. Mirrors
/// AdmissionDecision::reason so schedulers/gateways can surface it in trace
/// events instead of collapsing every failure into "nullopt".
enum class DecomposeStatus {
  kOk,
  kEmptyWorkflow,       // zero DAG nodes
  kCyclicDag,           // precedence graph has a cycle
  kInvalidWorkflow,     // non-positive job, deadline before start, ...
  kJobExceedsCapacity,  // some task demand cannot fit the cluster at all
};

const char* to_string(DecomposeStatus status);

struct DecompositionResult {
  DecomposeStatus status = DecomposeStatus::kOk;
  std::vector<JobWindow> windows;              // per DAG node
  std::vector<std::vector<dag::NodeId>> levels;  // the node-set sequence
  std::vector<double> level_duration_s;        // window of each set
  /// True when negative slack forced the critical-path fallback.
  bool used_fallback = false;
  double min_makespan_s = 0.0;  // sum of per-level minimum runtimes

  bool ok() const { return status == DecomposeStatus::kOk; }
  explicit operator bool() const { return ok(); }
};

/// Decomposes workflow deadlines into job deadlines. Stateless; thread-safe.
class DeadlineDecomposer {
 public:
  explicit DeadlineDecomposer(DecompositionConfig config = {});

  /// On failure the result's `status` says why (cyclic DAG, empty or
  /// invalid workflow, a job that cannot fit the cluster at all) and the
  /// payload fields are empty.
  DecompositionResult decompose(const workload::Workflow& workflow) const;

  const DecompositionConfig& config() const { return config_; }

 private:
  DecompositionConfig config_;
};

}  // namespace flowtime::core
