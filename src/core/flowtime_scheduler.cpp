#include "core/flowtime_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <type_traits>
#include <utility>

#include "core/greedy_placement.h"
#include "lp/solve_budget.h"
#include "lp/solve_profile.h"
#include "obs/deadline_monitor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace flowtime::core {

namespace {
constexpr double kTol = 1e-9;
}

std::string to_string(ReplanCause causes) {
  std::string out;
  auto append = [&](ReplanCause bit, const char* label) {
    if (!has_cause(causes, bit)) return;
    if (!out.empty()) out += "|";
    out += label;
  };
  append(ReplanCause::kWorkflowArrival, "arrival");
  append(ReplanCause::kDeviation, "deviation");
  append(ReplanCause::kOverrun, "overrun");
  append(ReplanCause::kPlanExhausted, "plan_exhausted");
  append(ReplanCause::kStalePlan, "stale_plan");
  append(ReplanCause::kCapacityChange, "capacity_change");
  append(ReplanCause::kTaskFailure, "task_failure");
  append(ReplanCause::kMigration, "migration");
  append(ReplanCause::kFailover, "failover");
  if (out.empty()) out = "none";
  return out;
}

const char* to_string(DegradeReason reason) {
  switch (reason) {
    case DegradeReason::kNone:
      return "none";
    case DegradeReason::kTimeout:
      return "timeout";
    case DegradeReason::kIterationLimit:
      return "iteration_limit";
    case DegradeReason::kNumericalFailure:
      return "numerical_failure";
    case DegradeReason::kInfeasible:
      return "infeasible";
  }
  return "?";
}

FlowTimeScheduler::FlowTimeScheduler(FlowTimeConfig config)
    : config_(std::move(config)) {}

void FlowTimeScheduler::on_event(const sim::SchedulerEvent& event) {
  std::visit(
      [this](const auto& e) {
        using E = std::decay_t<decltype(e)>;
        if constexpr (std::is_same_v<E, sim::WorkflowArrivalEvent>) {
          handle_workflow_arrival(*e.workflow, e.node_uids, e.now_s);
        } else if constexpr (std::is_same_v<E, sim::AdhocArrivalEvent>) {
          handle_adhoc_arrival(e.uid);
        } else if constexpr (std::is_same_v<E, sim::JobCompleteEvent>) {
          handle_job_complete(e.uid, e.now_s);
        } else if constexpr (std::is_same_v<E, sim::CapacityChangeEvent>) {
          handle_capacity_change();
        } else if constexpr (std::is_same_v<E, sim::TaskFailureEvent>) {
          handle_task_failure(e.uid, e.now_s, e.lost_estimate, e.retry_at_s);
        } else if constexpr (std::is_same_v<E, sim::SolverSabotageEvent>) {
          handle_solver_sabotage(e.budget_ms, e.pivot_cap,
                                 e.force_numerical_failure);
        } else {
          // Cell faults are federation-level; the single-cell core ignores
          // them (cluster/federated_scheduler intercepts before delivery).
          static_assert(std::is_same_v<E, sim::CellFaultEvent>);
        }
      },
      event);
}

int FlowTimeScheduler::seconds_to_release_slot(double seconds) const {
  return static_cast<int>(
      std::floor(seconds / config_.cluster.slot_seconds + kTol));
}

int FlowTimeScheduler::seconds_to_deadline_slot(double seconds) const {
  // Last slot fully inside [0, seconds): slot t covers [tS, (t+1)S).
  return static_cast<int>(
             std::ceil(seconds / config_.cluster.slot_seconds - kTol)) -
         1;
}

int FlowTimeScheduler::min_slots_needed(const DeadlineJobState& job) const {
  int needed = 1;
  for (int r = 0; r < workload::kNumResources; ++r) {
    if (job.remaining[r] > kTol && job.width[r] > kTol) {
      needed = std::max(
          needed,
          static_cast<int>(std::ceil(job.remaining[r] / job.width[r] - kTol)));
    }
  }
  return needed;
}

void FlowTimeScheduler::handle_workflow_arrival(
    const workload::Workflow& workflow,
    const std::vector<sim::JobUid>& node_uids, double now_s) {
  DecompositionConfig decomposition_config;
  decomposition_config.cluster = config_.cluster;
  decomposition_config.mode = config_.decomposition_mode;
  const DeadlineDecomposer decomposer(decomposition_config);
  DecompositionResult decomposition = decomposer.decompose(workflow);
  if (decomposition.used_fallback &&
      config_.decomposition_mode != DecompositionMode::kCriticalPath) {
    ++decomposition_fallbacks_;
  }
  if (obs::enabled()) {
    obs::registry().counter("core.workflow_arrivals").add();
    if (decomposition.used_fallback) {
      obs::registry().counter("core.decomposition_fallbacks").add();
    }
    obs::TraceEvent event("workflow_arrival");
    event.field("workflow", workflow.id)
        .field("now_s", now_s)
        .field("jobs", workflow.dag.num_nodes())
        .field("deadline_s", workflow.deadline_s)
        .field("decompose_status", to_string(decomposition.status))
        .field("used_fallback", decomposition.used_fallback)
        .field("min_makespan_s", decomposition.min_makespan_s);
    if (config_.cell_id >= 0) event.field("cell", config_.cell_id);
    obs::emit(event);
  }
  if (!decomposition.ok()) {
    // Structurally broken workflow: fall back to the raw workflow deadline
    // for every job so they at least stay schedulable.
    FT_LOG(kError) << "decomposition failed for workflow " << workflow.id
                   << " (" << to_string(decomposition.status)
                   << "); using the workflow deadline for every job";
    decomposition.windows.assign(
        static_cast<std::size_t>(workflow.dag.num_nodes()),
        JobWindow{workflow.start_s, workflow.deadline_s});
  }

  if (obs::enabled()) {
    // Monitored against the raw Stage-1 milestones (without scheduler
    // slack): those are what the evaluation judges, so risk is honest.
    obs::deadline_monitor().track_workflow(workflow.id, workflow.start_s,
                                           workflow.deadline_s);
  }
  const int slack_slots = static_cast<int>(
      std::round(config_.deadline_slack_s / config_.cluster.slot_seconds));
  for (dag::NodeId v = 0; v < workflow.dag.num_nodes(); ++v) {
    const JobWindow& window =
        decomposition.windows[static_cast<std::size_t>(v)];
    const workload::JobSpec& spec =
        workflow.jobs[static_cast<std::size_t>(v)];
    DeadlineJobState job;
    job.uid = node_uids[static_cast<std::size_t>(v)];
    job.ref = workload::WorkflowJobRef{workflow.id, v};
    job.release_slot = seconds_to_release_slot(window.start_s);
    const int deadline_slot = seconds_to_deadline_slot(window.deadline_s);
    // Slack must not erase the window entirely.
    job.lp_deadline_slot =
        std::max(job.release_slot, deadline_slot - slack_slots);
    job.width = workload::scale(spec.max_parallel_demand(),
                                config_.cluster.slot_seconds);
    job.remaining = spec.total_demand();
    if (obs::enabled()) {
      obs::deadline_monitor().track_job(
          workflow.id, v, window.start_s, window.deadline_s,
          min_slots_needed(job) * config_.cluster.slot_seconds);
    }
    deadline_jobs_[job.uid] = job;
    job_deadlines_[job.ref] = window.deadline_s;
  }
  decompositions_[workflow.id] = std::move(decomposition);
  workflows_[workflow.id] = workflow;  // kept for fault re-decomposition
  mark_dirty(ReplanCause::kWorkflowArrival);
}

void FlowTimeScheduler::handle_adhoc_arrival(sim::JobUid uid) {
  adhoc_fifo_.push_back(uid);
}

void FlowTimeScheduler::handle_job_complete(sim::JobUid uid, double now_s) {
  const auto it = deadline_jobs_.find(uid);
  if (it == deadline_jobs_.end()) {
    // Ad-hoc completion frees leftover capacity only; no plan impact.
    std::erase(adhoc_fifo_, uid);
    return;
  }
  DeadlineJobState& job = it->second;
  job.complete = true;
  // A deadline job leaving the planning set changes what the next solve
  // sees, whether or not it triggers one: any in-flight solve is now stale.
  ++planner_epoch_;
  if (obs::enabled()) {
    obs::deadline_monitor().complete_job(job.ref.workflow_id, job.ref.node,
                                         now_s);
  }
  const int completion_slot =
      seconds_to_deadline_slot(now_s);  // slot that just ended
  if (job.planned_last_slot >= 0 &&
      std::abs(completion_slot - job.planned_last_slot) >=
          config_.replan_deviation_slots) {
    // Early or late versus the plan: capacity freed up or borrowed;
    // re-flatten the remainder.
    mark_dirty(ReplanCause::kDeviation);
  }
  plan_.erase(uid);
}

void FlowTimeScheduler::handle_capacity_change() {
  // The next allocate() snapshot carries the new capacity, so the re-plan
  // automatically flattens the remaining deadline work under it (SV: C_t^r
  // may vary). A failure shrinks the budget — the LP may now need late
  // extensions; a recovery widens it — the plan can relax again.
  mark_dirty(ReplanCause::kCapacityChange);
}

void FlowTimeScheduler::handle_task_failure(
    sim::JobUid uid, double now_s, const sim::ResourceVec& lost_estimate,
    double retry_at_s) {
  const auto it = deadline_jobs_.find(uid);
  if (it == deadline_jobs_.end()) {
    // Ad-hoc: no plan to repair; the simulator re-runs the lost work and
    // the max-min fair sweep keeps feeding the job.
    return;
  }
  DeadlineJobState& job = it->second;
  // Re-credit the lost work and clear the overrun latch: the estimate grew
  // back, so "estimate exhausted" no longer describes the job, and a later
  // genuine overrun must be able to re-trigger its own re-plan.
  job.remaining = workload::add(job.remaining, lost_estimate);
  job.overrun = false;
  mark_dirty(ReplanCause::kTaskFailure);

  // Negative slack check: can this job still make its decomposed window,
  // given it cannot run again before retry_at_s? If not, the per-level
  // split this workflow arrived with is dead — fall back to critical-path
  // decomposition (paper footnote 1) and relax every incomplete sibling's
  // LP deadline to the fallback windows. If even those are infeasible the
  // re-plan extends windows minimally and the deadline monitor reports the
  // breach — renegotiation, not silent failure.
  const double slot_s = config_.cluster.slot_seconds;
  const double earliest_end =
      std::max(now_s, retry_at_s) + min_slots_needed(job) * slot_s;
  if (earliest_end <= (job.lp_deadline_slot + 1) * slot_s + kTol) return;
  const auto wf_it = workflows_.find(job.ref.workflow_id);
  if (wf_it == workflows_.end()) return;
  if (decompositions_[job.ref.workflow_id].used_fallback) {
    return;  // this workflow already runs on the fallback windows
  }
  DecompositionConfig decomposition_config;
  decomposition_config.cluster = config_.cluster;
  decomposition_config.mode = DecompositionMode::kCriticalPath;
  const DeadlineDecomposer decomposer(decomposition_config);
  DecompositionResult fallback = decomposer.decompose(wf_it->second);
  if (!fallback.ok()) return;
  fallback.used_fallback = true;
  const int slack_slots =
      static_cast<int>(std::round(config_.deadline_slack_s / slot_s));
  int relaxed = 0;
  for (auto& [other_uid, other] : deadline_jobs_) {
    (void)other_uid;
    if (other.complete || other.ref.workflow_id != job.ref.workflow_id) {
      continue;
    }
    const JobWindow& window =
        fallback.windows[static_cast<std::size_t>(other.ref.node)];
    const int deadline_slot = seconds_to_deadline_slot(window.deadline_s);
    const int lp_slot =
        std::max(other.release_slot, deadline_slot - slack_slots);
    if (lp_slot > other.lp_deadline_slot) {
      other.lp_deadline_slot = lp_slot;
      ++relaxed;
    }
  }
  ++fault_redecompositions_;
  decompositions_[job.ref.workflow_id] = std::move(fallback);
  FT_LOG(kWarn) << "FlowTime: fault on workflow " << job.ref.workflow_id
                << " job " << job.ref.node
                << " left its window infeasible; re-decomposed on the "
                   "critical path ("
                << relaxed << " windows relaxed)";
  if (obs::enabled()) {
    obs::registry().counter("core.fault_redecompositions").add();
    obs::emit(obs::TraceEvent("fault_redecompose")
                  .field("workflow", job.ref.workflow_id)
                  .field("node", job.ref.node)
                  .field("now_s", now_s)
                  .field("retry_at_s", retry_at_s)
                  .field("relaxed_windows", relaxed));
  }
}

void FlowTimeScheduler::handle_solver_sabotage(double budget_ms,
                                               std::int64_t pivot_cap,
                                               bool force_numerical_failure) {
  // Stored, not acted on: the sabotage tightens (or, on lift, releases)
  // the budget of every re-plan that starts while it is active. It never
  // triggers a re-plan by itself — that would let the chaos layer change
  // *when* the scheduler plans, not just how hard planning is.
  sabotage_budget_ms_ = budget_ms;
  sabotage_pivot_cap_ = pivot_cap > 0 ? pivot_cap : 0;
  sabotage_force_numerical_ = force_numerical_failure;
}

const DecompositionResult* FlowTimeScheduler::decomposition(
    int workflow_id) const {
  const auto it = decompositions_.find(workflow_id);
  return it == decompositions_.end() ? nullptr : &it->second;
}

int FlowTimeScheduler::forget_workflow(int workflow_id) {
  int dropped = 0;
  for (auto it = deadline_jobs_.begin(); it != deadline_jobs_.end();) {
    if (it->second.ref.workflow_id != workflow_id) {
      ++it;
      continue;
    }
    if (!it->second.complete) ++dropped;
    plan_.erase(it->first);
    it = deadline_jobs_.erase(it);
  }
  decompositions_.erase(workflow_id);
  workflows_.erase(workflow_id);
  if (dropped == 0) return 0;
  // The deadline monitor keeps its entries: the coordinator re-delivers the
  // workflow to its new cell, whose arrival handler re-tracks (overwrites)
  // the same workflow id — dropping and re-adding would only churn gauges.
  mark_dirty(ReplanCause::kMigration);
  if (obs::enabled()) {
    obs::registry().counter("core.workflows_forgotten").add();
    obs::TraceEvent event("workflow_forgotten");
    event.field("workflow", workflow_id).field("jobs_dropped", dropped);
    if (config_.cell_id >= 0) event.field("cell", config_.cell_id);
    obs::emit(event);
  }
  return dropped;
}

void FlowTimeScheduler::replan(const sim::ClusterState& state) {
  // The synchronous path: the three phases of the planner/serving split
  // run back to back on the calling thread. The concurrent runtime calls
  // the same phases with the solve moved to a background thread; keeping
  // one code path is what makes sync-vs-async parity testable at all.
  PendingReplan pending = begin_replan(state);
  PlanSolveResult solved;
  {
    std::optional<obs::ScopedTimer> timer;
    if (obs::enabled()) timer.emplace(&pending.record.wall_s);
    solved = solve_replan(config_, &warm_cache_, pending);
  }
  finish_replan(pending, std::move(solved), state.now_s);
}

PendingReplan FlowTimeScheduler::begin_replan(const sim::ClusterState& state) {
  PendingReplan pending;
  pending.state = state;
  pending.epoch = planner_epoch_;
  pending.record.slot = state.slot;
  pending.record.causes = pending_causes_;
  pending_causes_ = ReplanCause::kNone;
  dirty_ = false;

  int horizon_last_slot = state.slot;
  for (auto& [uid, job] : deadline_jobs_) {
    if (job.complete) continue;
    LpJob lp_job;
    lp_job.uid = uid;
    lp_job.width = job.width;
    lp_job.demand = job.remaining;
    if (job.overrun) {
      // Estimate exhausted but the job is still running: keep it fed one
      // slot's width at a time until ground truth finishes it.
      lp_job.demand = job.width;
    }
    // A ready job has effectively arrived (paper: a_i is the arrival time):
    // its parents are done, so the decomposed level start is only a guide,
    // not a constraint. Opening the window to "now" lets the lexmin LP
    // front-load under cross-workflow contention while still deferring work
    // when the profile is loose.
    lp_job.release_slot = job.ready ? state.slot
                                    : std::max(job.release_slot, state.slot);
    if (!job.ready) {
      // Parents still running: pushing the release past their estimated
      // finish avoids planning allocations the simulator would waste.
      int parent_slots = 0;
      for (const auto& [puid, parent] : deadline_jobs_) {
        (void)puid;
        if (parent.complete || parent.ref.workflow_id != job.ref.workflow_id)
          continue;
        if (parent.release_slot < job.release_slot &&
            parent.lp_deadline_slot <= job.lp_deadline_slot) {
          // Heuristic: any unfinished earlier-level job of this workflow.
          parent_slots = std::max(parent_slots, min_slots_needed(parent));
        }
      }
      lp_job.release_slot = std::max(lp_job.release_slot,
                                     state.slot + std::max(parent_slots, 1));
    }
    lp_job.deadline_slot = job.lp_deadline_slot;
    if (lp_job.deadline_slot < lp_job.release_slot + min_slots_needed(job) - 1) {
      // Late (or about to be): extend to the minimal feasible window. The
      // deadline metrics will record the miss; the LP stays feasible.
      lp_job.deadline_slot =
          lp_job.release_slot + min_slots_needed(job) - 1;
      ++pending.record.late_extensions;
    }
    horizon_last_slot = std::max(horizon_last_slot, lp_job.deadline_slot);
    pending.lp_jobs.push_back(lp_job);
    pending.lp_uids.push_back(uid);
  }
  pending.horizon_last_slot = horizon_last_slot;
  pending.record.planned_jobs = static_cast<int>(pending.lp_jobs.size());

  // Merged solver budget: the config's knobs and any chaos-injected
  // sabotage, tightest limit winning. Snapshotted here so the solve can
  // run on another thread without reading live sabotage state.
  {
    double wall_ms = config_.solver_budget_ms;
    if (sabotage_budget_ms_ >= 0.0) {
      wall_ms = wall_ms > 0.0 ? std::min(wall_ms, sabotage_budget_ms_)
                              : sabotage_budget_ms_;
    }
    std::int64_t pivot_cap = config_.solver_pivot_budget;
    if (sabotage_pivot_cap_ > 0) {
      pivot_cap = pivot_cap > 0 ? std::min(pivot_cap, sabotage_pivot_cap_)
                                : sabotage_pivot_cap_;
    }
    pending.budget_wall_ms = wall_ms;
    pending.budget_pivot_cap = pivot_cap;
    pending.force_numerical = sabotage_force_numerical_;
  }
  return pending;
}

void FlowTimeScheduler::finish_replan(const PendingReplan& pending,
                                      PlanSolveResult&& solved,
                                      double now_s) {
  // Counted at adoption, not at begin_replan: discarded attempts go to
  // replans_discarded_ instead, so replans() means "plans served" in both
  // sync and async runs and the comparison numbers stay comparable.
  ++replans_;
  ReplanRecord record = pending.record;
  record.pivots = solved.pivots;
  total_pivots_ += solved.pivots;

  // Adopt: the solved rows replace the serving plan wholesale, indexed
  // from the slot the inputs were snapshotted at (plans are time-indexed,
  // so late adoption under the async runtime still aligns).
  plan_ = std::move(solved.rows);
  plan_first_slot_ = pending.state.slot;
  for (auto& [uid, job] : deadline_jobs_) {
    (void)uid;
    if (!job.complete) job.planned_last_slot = -1;
  }
  for (const auto& [uid, last] : solved.planned_last_slot) {
    const auto it = deadline_jobs_.find(uid);
    if (it != deadline_jobs_.end() && !it->second.complete) {
      it->second.planned_last_slot = last;
    }
  }
  if (record.lexmin_truncated) {
    ++truncated_replans_;
    FT_LOG(kWarn) << "FlowTime replan: lexmin round budget exhausted; the "
                     "plan's load profile tail is unrefined";
  }
  if (record.capacity_exceeded) {
    FT_LOG(kInfo) << "FlowTime: deadline windows need "
                  << record.max_normalized_load
                  << "x capacity; some deadlines will be missed";
  }
  replan_log_.push_back(record);

  // Degraded-mode state machine (hysteresis; DESIGN.md §10). Every re-plan
  // re-attempts the full LP, so recovery needs no special trigger — just
  // `degrade_recovery_replans` consecutive clean rung-0 plans.
  if (record.degrade_rung > 0) {
    ++degraded_replans_;
    clean_replans_ = 0;
    if (obs::enabled()) {
      obs::registry().counter("core.degraded_replans").add();
    }
    if (!degraded_mode_) {
      degraded_mode_ = true;
      FT_LOG(kWarn) << "FlowTime: entering degraded mode at slot "
                    << record.slot << " (rung " << record.degrade_rung
                    << ", " << to_string(record.degrade_reason) << ")";
      if (obs::enabled()) {
        obs::registry().counter("core.degrade_enters").add();
        obs::emit(obs::TraceEvent("degrade_enter")
                      .field("slot", record.slot)
                      .field("rung", record.degrade_rung)
                      .field("reason", to_string(record.degrade_reason)));
        degraded_span_ = obs::begin_span(
            "degraded", "degraded@slot" + std::to_string(record.slot),
            obs::kNoSpan, now_s);
      }
    }
  } else if (degraded_mode_) {
    ++clean_replans_;
    if (clean_replans_ >= std::max(config_.degrade_recovery_replans, 1)) {
      degraded_mode_ = false;
      clean_replans_ = 0;
      FT_LOG(kInfo) << "FlowTime: leaving degraded mode at slot "
                    << record.slot;
      if (obs::enabled()) {
        obs::emit(obs::TraceEvent("degrade_exit")
                      .field("slot", record.slot)
                      .field("clean_replans",
                             std::max(config_.degrade_recovery_replans, 1)));
        obs::end_span(degraded_span_, now_s);
        degraded_span_ = obs::kNoSpan;
      }
    }
  }

  if (obs::enabled()) {
    // Each re-plan opens a new plan epoch; the previous one ends here and
    // the simulator's end_open_spans closes the last epoch of the run.
    obs::end_span(plan_span_, now_s);
    std::string plan_name =
        "plan#" + std::to_string(replans_) + ":" + to_string(record.causes);
    if (config_.cell_id >= 0) {
      plan_name = "cell" + std::to_string(config_.cell_id) + ":" + plan_name;
    }
    plan_span_ = obs::begin_span("plan", plan_name, obs::kNoSpan, now_s);
    obs::registry().counter("core.replans").add();
    obs::registry().counter("core.replan_pivots").add(record.pivots);
    obs::registry().histogram("core.replan_seconds").observe(record.wall_s);
    if (record.lp_failed) {
      obs::registry().counter("core.replan_lp_failures").add();
    }
    if (record.lexmin_truncated) {
      obs::registry().counter("core.replan_lexmin_truncated").add();
    }
    if (config_.cell_id >= 0) {
      const std::string cell_prefix =
          "cluster.cell." + std::to_string(config_.cell_id) + ".";
      obs::registry().counter(cell_prefix + "replans").add();
      obs::registry().counter(cell_prefix + "replan_pivots")
          .add(record.pivots);
      obs::registry().gauge(cell_prefix + "load")
          .set(record.max_normalized_load);
    }
    obs::TraceEvent event("replan");
    event.field("slot", record.slot)
        .field("cause", to_string(record.causes))
        .field("planned_jobs", record.planned_jobs)
        .field("pivots", record.pivots)
        .field("wall_s", record.wall_s)
        .field("late_extensions", record.late_extensions)
        .field("capacity_exceeded", record.capacity_exceeded)
        .field("lp_failed", record.lp_failed)
        .field("lexmin_truncated", record.lexmin_truncated)
        .field("max_normalized_load", record.max_normalized_load)
        .field("degrade_rung", record.degrade_rung)
        .field("degrade_reason", to_string(record.degrade_reason))
        .field("budget_exhausted", record.budget_exhausted)
        .field("flow_fast_path", record.flow_fast_path)
        .field("degraded_mode", degraded_mode_);
    if (config_.cell_id >= 0) event.field("cell", config_.cell_id);
    obs::emit(event);
  }
}

void FlowTimeScheduler::abandon_replan(const PendingReplan& pending,
                                       const PlanSolveResult& solved) {
  // The solve ran (and spent pivots) but its inputs went stale — or a
  // cancel token preempted it. Account for the work, record the attempt as
  // discarded, and leave every piece of serving state untouched: the old
  // plan keeps serving until a fresh solve adopts.
  ReplanRecord record = pending.record;
  record.pivots = solved.pivots;
  record.discarded = true;
  ++replans_discarded_;
  total_pivots_ += solved.pivots;
  replan_log_.push_back(record);
  // Discarding must not swallow the triggers: begin_replan cleared the
  // dirty flag and the causes when it snapshotted, so put them back. The
  // event that staled this solve bumped the epoch but need not have marked
  // dirty itself (an on-time completion, for instance) — without the
  // re-assert the original trigger would never be re-planned and its jobs
  // would starve with no plan rows. No epoch bump: the next begin_replan
  // snapshots at the live epoch and is valid by construction.
  dirty_ = true;
  pending_causes_ |= pending.record.causes;
  if (obs::enabled()) {
    obs::registry().counter("core.replans_discarded").add();
    obs::emit(obs::TraceEvent("replan_discarded")
                  .field("slot", record.slot)
                  .field("cause", to_string(record.causes))
                  .field("epoch", static_cast<std::int64_t>(pending.epoch))
                  .field("pivots", record.pivots)
                  .field("preempted", solved.preempted));
  }
}

PlanSolveResult FlowTimeScheduler::solve_replan(const FlowTimeConfig& config,
                                                PlacementWarmCache* warm_cache,
                                                PendingReplan& pending) {
  PlanSolveResult out;
  if (pending.lp_jobs.empty()) return out;
  ReplanRecord& record = pending.record;
  const sim::ClusterState& state = pending.state;
  // Bucketing rewrites the job windows in place; work on a copy so the
  // snapshot in `pending` stays what begin_replan produced.
  std::vector<LpJob> lp_jobs = pending.lp_jobs;
  const int horizon_last_slot = pending.horizon_last_slot;

  // Phase-level profile of every LP the escalation ladder runs below (all
  // rungs, retries and lexmin probes included). Thread-local while open;
  // merged into the registry and emitted as one `solve_profile` trace event
  // when the scope closes, so the solver pool never contends on it.
  std::optional<lp::ScopedSolveProfile> profile;
  if (obs::enabled()) profile.emplace("replan", state.slot);

  const int num_slots = horizon_last_slot - state.slot + 1;
  // Plan-ahead coarsening: bucket `bucket` consecutive slots into one
  // planning slot so the LP's load-row count stays bounded for day-scale
  // horizons. Windows round conservatively (release up, deadline down);
  // bucket allocations are spread evenly over their slots at issue time.
  const int bucket =
      (num_slots + config.max_planning_slots - 1) /
      std::max(config.max_planning_slots, 1);
  int coarse_horizon = 1;
  if (bucket > 1) {
    for (LpJob& job : lp_jobs) {
      const int rel_release = job.release_slot - state.slot;
      const int rel_deadline = job.deadline_slot - state.slot;
      int release = (rel_release + bucket - 1) / bucket;
      int deadline = (rel_deadline + 1) / bucket - 1;
      if (deadline < release) deadline = release;
      job.width = workload::scale(job.width, bucket);
      // Conservative rounding may have shrunk the window below the job's
      // need; extend minimally (the fine-grained pass did the same).
      for (int r = 0; r < workload::kNumResources; ++r) {
        if (job.demand[r] > 1e-9 && job.width[r] > 1e-9) {
          const int needed = static_cast<int>(
              std::ceil(job.demand[r] / job.width[r] - 1e-9));
          deadline = std::max(deadline, release + needed - 1);
        }
      }
      job.release_slot = release;
      job.deadline_slot = deadline;
      coarse_horizon = std::max(coarse_horizon, deadline + 1);
    }
  } else {
    coarse_horizon = num_slots;
  }
  const workload::ResourceVec full_cap =
      workload::scale(state.capacity, bucket > 1 ? bucket : 1);
  const double cap_fraction =
      std::clamp(config.deadline_cap_fraction, 0.05, 1.0);
  std::vector<workload::ResourceVec> caps(
      static_cast<std::size_t>(coarse_horizon),
      workload::scale(full_cap, cap_fraction));
  LpScheduleOptions lp_options = config.lp;
  if (lp_options.warm_cache == nullptr) {
    lp_options.warm_cache = warm_cache;
  }
  const int lp_first_slot = bucket > 1 ? 0 : state.slot;

  // --- Escalation ladder (DESIGN.md §10) ---------------------------------
  // One budget shared by every solve of this re-plan. The limits were
  // merged (config knobs + chaos sabotage, tightest winning) at
  // begin_replan time so this function reads no live scheduler state; the
  // cancel token is how the concurrent runtime preempts a solve whose
  // inputs went stale mid-flight.
  lp::SolveBudget budget;
  budget.set_wall_clock_ms(pending.budget_wall_ms);
  budget.set_pivot_cap(pending.budget_pivot_cap);
  budget.set_cancel_token(pending.cancel);
  const auto preempted = [&pending] {
    return pending.cancel != nullptr &&
           pending.cancel->load(std::memory_order_relaxed);
  };
  if (budget.limited()) {
    // Installed only when a limit exists, so the unlimited path is
    // bit-identical to a build without budgets.
    lp_options.lexmin.lp_options.budget = &budget;
  }

  const auto classify = [](lp::SolveStatus status) {
    switch (status) {
      case lp::SolveStatus::kTimeout:
        return DegradeReason::kTimeout;
      case lp::SolveStatus::kIterationLimit:
        return DegradeReason::kIterationLimit;
      case lp::SolveStatus::kInfeasible:
        return DegradeReason::kInfeasible;
      default:
        return DegradeReason::kNumericalFailure;
    }
  };
  const auto escalate = [&](int from_rung, DegradeReason reason) {
    if (record.degrade_reason == DegradeReason::kNone) {
      record.degrade_reason = reason;
    }
    FT_LOG(kWarn) << "FlowTime replan: solver rung " << from_rung
                  << " failed (" << to_string(reason) << "); escalating to rung "
                  << from_rung + 1;
    if (obs::enabled()) {
      obs::registry().counter("core.solver_escalations").add();
      obs::emit(obs::TraceEvent("solver_escalation")
                    .field("slot", state.slot)
                    .field("from_rung", from_rung)
                    .field("to_rung", from_rung + 1)
                    .field("reason", to_string(reason))
                    .field("budget_pivots", budget.pivots_used()));
    }
  };

  // Rung 0: the regular warm-started LP (with the headroom retry).
  LpSchedule schedule;
  if (pending.force_numerical) {
    // Chaos injection: pretend the warm solve lost its numerics so the
    // cold rung is exercised end to end.
    schedule.status = lp::SolveStatus::kNumericalFailure;
  } else {
    schedule = solve_placement(lp_jobs, caps, lp_first_slot, lp_options);
    if (cap_fraction < 1.0 &&
        (!schedule.ok() || schedule.capacity_exceeded)) {
      // The reserved headroom is a preference, not a mandate: retry at the
      // full cluster before conceding any deadline.
      caps.assign(static_cast<std::size_t>(coarse_horizon), full_cap);
      const std::int64_t prior = schedule.pivots;
      schedule = solve_placement(lp_jobs, caps, lp_first_slot, lp_options);
      schedule.pivots += prior;
    }
  }
  out.pivots += schedule.pivots;

  if (!schedule.ok() && preempted()) {
    // Cancelled, not broken: the inputs went stale while rung 0 ran.
    // Escalating would burn the cold rung on answers nobody will adopt.
    out.preempted = true;
    return out;
  }
  if (!schedule.ok()) {
    // Rung 1: cold LP — fresh basis (the warm cache may be poisoned, so it
    // is dropped entirely), Bland's rule from the first pivot, a tighter
    // pivot tolerance, and the most permissive caps.
    escalate(0, classify(schedule.status));
    record.degrade_rung = 1;
    if (warm_cache != nullptr) warm_cache->clear();
    LpScheduleOptions cold = lp_options;
    cold.warm_cache = nullptr;
    cold.lexmin.warm_start = false;
    cold.lexmin.lp_options.degenerate_before_bland = 0;
    cold.lexmin.lp_options.pivot_tol = 1e-7;
    caps.assign(static_cast<std::size_t>(coarse_horizon), full_cap);
    schedule = solve_placement(lp_jobs, caps, lp_first_slot, cold);
    out.pivots += schedule.pivots;
  }

  if (!schedule.ok() && preempted()) {
    out.preempted = true;
    return out;
  }
  if (!schedule.ok()) {
    // Rung 2: the LP-free guaranteed fallback. Cannot itself fail; the
    // plan may be less flat and may oversubscribe (capacity_exceeded),
    // which the allocator's proportional shrink absorbs.
    escalate(1, classify(schedule.status));
    record.degrade_rung = 2;
    record.lp_failed = true;
    FT_LOG(kError) << "FlowTime replan: both LP rungs failed ("
                   << lp::to_string(schedule.status)
                   << "); using greedy fallback placement for "
                   << lp_jobs.size() << " jobs";
    schedule = greedy_placement(lp_jobs, caps, lp_first_slot);
  }

  record.budget_exhausted = budget.limited() && budget.exhausted();
  record.capacity_exceeded = schedule.capacity_exceeded;
  record.lexmin_truncated = schedule.lexmin_truncated;
  record.max_normalized_load = schedule.max_normalized_load;
  record.flow_fast_path = schedule.flow_fast_path;
  for (std::size_t j = 0; j < lp_jobs.size(); ++j) {
    auto& row = out.rows[pending.lp_uids[j]];
    if (bucket > 1) {
      // Spread each planning bucket's allocation evenly over its slots.
      row.assign(static_cast<std::size_t>(schedule.num_slots) *
                     static_cast<std::size_t>(bucket),
                 workload::ResourceVec{});
      for (int t = 0; t < schedule.num_slots; ++t) {
        const workload::ResourceVec per_slot = workload::scale(
            schedule.allocation[j][static_cast<std::size_t>(t)],
            1.0 / bucket);
        for (int s = 0; s < bucket; ++s) {
          row[static_cast<std::size_t>(t * bucket + s)] = per_slot;
        }
      }
    } else {
      row = schedule.allocation[j];
    }
    int last = -1;
    for (int t = 0; t < static_cast<int>(row.size()); ++t) {
      if (!workload::is_zero(row[static_cast<std::size_t>(t)], kTol)) {
        last = t;
      }
    }
    out.planned_last_slot[pending.lp_uids[j]] =
        last < 0 ? -1 : state.slot + last;
  }
  return out;
}

void FlowTimeScheduler::check_cluster_skew(const sim::ClusterState& state) {
  skew_checked_ = true;
  const workload::ClusterSpec observed{
      workload::scale(state.capacity, 1.0 / state.slot_seconds),
      state.slot_seconds};
  if (workload::approx_equal(config_.cluster, observed, 1e-6)) return;
  FT_LOG(kWarn) << "FlowTime configured for "
                << workload::to_string(config_.cluster)
                << " but the simulator runs "
                << workload::to_string(observed)
                << "; plans will not match execution";
  if (obs::enabled()) {
    obs::registry().counter("core.scheduler.config_skew").add();
    obs::emit(obs::TraceEvent("config_skew")
                  .field("component", "flowtime_scheduler")
                  .field("configured", workload::to_string(config_.cluster))
                  .field("authoritative", workload::to_string(observed)));
  }
}

std::vector<sim::Allocation> FlowTimeScheduler::allocate(
    const sim::ClusterState& state) {
  sync_views(state);
  // Under the concurrent runtime the replan is driven externally
  // (begin/solve/finish on the runtime's threads); allocate() then only
  // serves the last adopted plan and must never block on a solve.
  if (dirty_ && !config_.external_replan_driver) {
    replan(state);
  }
  return serve(state);
}

void FlowTimeScheduler::sync_views(const sim::ClusterState& state) {
  if (!skew_checked_) check_cluster_skew(state);
  // Sync authoritative view state.
  for (const sim::JobView& view : state.active) {
    if (view.kind != sim::JobKind::kDeadline) continue;
    auto it = deadline_jobs_.find(view.uid);
    if (it == deadline_jobs_.end()) continue;
    DeadlineJobState& job = it->second;
    job.remaining = view.remaining_estimate;
    job.ready = view.ready;
    if (view.overrun && !job.overrun) {
      job.overrun = true;
      mark_dirty(ReplanCause::kOverrun);  // needs more than planned
    }
    // Plan exhausted while the job still runs: re-plan.
    if (!dirty_ && job.planned_last_slot >= 0 &&
        state.slot > job.planned_last_slot) {
      mark_dirty(ReplanCause::kPlanExhausted);
    }
  }
}

std::vector<sim::Allocation> FlowTimeScheduler::serve(
    const sim::ClusterState& state) {
  std::vector<const sim::JobView*> adhoc_views;
  for (const sim::JobView& view : state.active) {
    if (view.kind != sim::JobKind::kDeadline) adhoc_views.push_back(&view);
  }

  if (obs::enabled()) {
    // Feed the deadline-risk monitor. The projection is the width-limited
    // earliest completion from now — FlowTime *plans* completions near the
    // deadline on purpose (minus slack), so the planned end is not a risk
    // signal; whether the job could still finish in time at full width is.
    // Exception: when the plan itself lands past the Stage-1 deadline
    // (late extension, capacity overrun), the plan is the honest forecast.
    const double slot_s = config_.cluster.slot_seconds;
    for (const auto& [uid, job] : deadline_jobs_) {
      (void)uid;
      if (job.complete) continue;
      double projected = state.now_s + min_slots_needed(job) * slot_s;
      if (job.planned_last_slot >= 0) {
        const double planned_end = (job.planned_last_slot + 1) * slot_s;
        const auto deadline_it = job_deadlines_.find(job.ref);
        const bool planned_late =
            deadline_it != job_deadlines_.end() &&
            planned_end > deadline_it->second + kTol;
        // In degraded mode the plan came from a fallback rung, so its
        // quality guarantee is gone: the planned end is the honest forecast
        // even when it nominally beats the deadline.
        if (planned_late || degraded_mode_) {
          projected = std::max(projected, planned_end);
        }
      }
      obs::deadline_monitor().update_job(job.ref.workflow_id, job.ref.node,
                                         state.now_s, projected);
    }
  }

  std::vector<sim::Allocation> result;
  workload::ResourceVec issued{};

  // Deadline jobs take their planned share; allocations for jobs whose
  // parents are still running are withheld (they would be wasted) and the
  // window shift is handled by the next re-plan. When an over-subscribed
  // plan (capacity_exceeded) asks for more than the slot holds, every job
  // is scaled down proportionally so lateness spreads evenly instead of
  // starving whichever workflow happens to sort last.
  std::vector<std::pair<const sim::JobView*, workload::ResourceVec>> planned;
  workload::ResourceVec planned_total{};
  for (const sim::JobView& view : state.active) {
    if (view.kind != sim::JobKind::kDeadline) continue;
    const auto plan_it = plan_.find(view.uid);
    if (plan_it == plan_.end()) continue;
    const int index = state.slot - plan_first_slot_;
    if (index < 0 ||
        index >= static_cast<int>(plan_it->second.size())) {
      continue;
    }
    workload::ResourceVec amount = workload::elementwise_min(
        plan_it->second[static_cast<std::size_t>(index)], view.width);
    if (workload::is_zero(amount, kTol)) continue;
    if (!view.ready) {
      mark_dirty(ReplanCause::kStalePlan);  // replan next slot
      continue;
    }
    if (config_.round_to_containers) {
      // Round up to whole containers so node-granular execution never
      // quantizes a thin planned slice down to nothing; width still caps.
      double containers = 0.0;
      bool sized = false;
      for (int r = 0; r < workload::kNumResources; ++r) {
        if (view.container[r] > kTol) {
          containers = std::max(
              containers, std::ceil(amount[r] / view.container[r] - kTol));
          sized = true;
        }
      }
      if (sized) {
        amount = workload::elementwise_min(
            workload::scale(view.container, containers), view.width);
      }
    }
    planned_total = workload::add(planned_total, amount);
    planned.emplace_back(&view, amount);
  }
  double shrink = 1.0;
  for (int r = 0; r < workload::kNumResources; ++r) {
    if (planned_total[r] > state.capacity[r]) {
      shrink = std::min(shrink, state.capacity[r] / planned_total[r]);
    }
  }
  for (const auto& [view, amount] : planned) {
    workload::ResourceVec scaled = workload::scale(amount, shrink);
    if (config_.round_to_containers && shrink < 1.0 - kTol) {
      // Shrinking broke the container multiples; round back down so the
      // grant still materializes as whole containers.
      double containers = std::numeric_limits<double>::infinity();
      bool sized = false;
      for (int r = 0; r < workload::kNumResources; ++r) {
        if (view->container[r] > kTol) {
          containers = std::min(
              containers, std::floor(scaled[r] / view->container[r] + kTol));
          sized = true;
        }
      }
      if (sized) scaled = workload::scale(view->container, containers);
    }
    issued = workload::add(issued, scaled);
    result.push_back(sim::Allocation{view->uid, scaled});
  }

  // Ad-hoc jobs absorb the leftover, max-min fair by width fraction:
  // first a uniform fraction lambda of every job's width, then a FIFO
  // sweep for the remainder.
  if (!adhoc_views.empty()) {
    std::sort(adhoc_views.begin(), adhoc_views.end(),
              [](const sim::JobView* a, const sim::JobView* b) {
                return a->arrival_s < b->arrival_s;
              });
    workload::ResourceVec leftover = workload::clamp_nonnegative(
        workload::sub(state.capacity, issued));
    workload::ResourceVec total_width{};
    for (const sim::JobView* view : adhoc_views) {
      total_width = workload::add(total_width, view->width);
    }
    double lambda = 1.0;
    for (int r = 0; r < workload::kNumResources; ++r) {
      if (total_width[r] > kTol) {
        lambda = std::min(lambda, leftover[r] / total_width[r]);
      }
    }
    std::vector<workload::ResourceVec> grants(adhoc_views.size());
    for (std::size_t i = 0; i < adhoc_views.size(); ++i) {
      grants[i] = workload::scale(adhoc_views[i]->width, lambda);
      leftover = workload::clamp_nonnegative(
          workload::sub(leftover, grants[i]));
    }
    for (std::size_t i = 0; i < adhoc_views.size(); ++i) {
      const workload::ResourceVec extra = workload::elementwise_min(
          workload::clamp_nonnegative(
              workload::sub(adhoc_views[i]->width, grants[i])),
          leftover);
      grants[i] = workload::add(grants[i], extra);
      leftover = workload::clamp_nonnegative(workload::sub(leftover, extra));
    }
    for (std::size_t i = 0; i < adhoc_views.size(); ++i) {
      if (config_.round_to_containers) {
        double containers = std::numeric_limits<double>::infinity();
        bool sized = false;
        for (int r = 0; r < workload::kNumResources; ++r) {
          if (adhoc_views[i]->container[r] > kTol) {
            containers = std::min(
                containers,
                std::floor(grants[i][r] / adhoc_views[i]->container[r] +
                           kTol));
            sized = true;
          }
        }
        if (sized) {
          grants[i] = workload::scale(adhoc_views[i]->container, containers);
        }
      }
      if (!workload::is_zero(grants[i], kTol)) {
        result.push_back(sim::Allocation{adhoc_views[i]->uid, grants[i]});
      }
    }
  }
  return result;
}

}  // namespace flowtime::core
