// The FlowTime scheduler (paper §III-§V).
//
// Pipeline per workflow arrival:
//   decompose the workflow deadline into per-job windows (§IV), then place
//   all known deadline jobs with the lexmin-max LP (§V) so the per-slot
//   load profile is as flat as possible; everything the plan leaves free
//   goes to ad-hoc jobs immediately (the "minimally impacting" principle of
//   §II-B). Ad-hoc jobs never enter the LP — their size is unknown.
//
// Dynamic behaviour (§III-A "scheduling efficiency" and "robustness"):
//   * re-plan on workflow arrival;
//   * re-plan when a job deviates from the plan: finishes earlier or later
//     than planned (estimation error), or exhausts its estimate without
//     finishing (under-estimation, the `overrun` flag);
//   * deadline slack: the LP must finish each job `deadline_slack_s` before
//     its decomposed deadline, absorbing small estimation errors (§VII-B.2,
//     default 60 s);
//   * late jobs get minimal feasible window extensions instead of making
//     the LP infeasible — the miss is then visible in the metrics, which is
//     the honest outcome.
#pragma once

#include <atomic>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/decomposition.h"
#include "core/lp_formulation.h"
#include "obs/span.h"
#include "sim/scheduler.h"

namespace flowtime::core {

struct FlowTimeConfig {
  /// Must match the simulator's cluster for min-runtime computations; the
  /// simulator verifies this via Scheduler::cluster_spec at run start.
  workload::ClusterSpec cluster;
  /// Jobs are planned to finish this long before their decomposed deadline
  /// (paper Fig. 5; 0 disables the feature — the FlowTime_no_ds variant).
  double deadline_slack_s = 60.0;
  DecompositionMode decomposition_mode = DecompositionMode::kResourceDemand;
  LpScheduleOptions lp;
  /// A completion this many slots away from the plan triggers a re-plan.
  int replan_deviation_slots = 2;
  /// Fraction of the cluster the deadline plan may use (paper Fig. 1(b)
  /// draws the deadline workload under a "Resource Cap" below the full
  /// cluster, and SV notes C_t^r may vary to provide flexibility). Values
  /// < 1 reserve guaranteed headroom for ad-hoc jobs; if the reduced cap
  /// cannot fit the deadline windows the re-plan falls back to the full
  /// cluster rather than missing deadlines for the sake of headroom.
  double deadline_cap_fraction = 1.0;
  /// Issue planned allocations as whole task containers (rounding each
  /// slot's grant up to the next container multiple, bounded by width and
  /// free capacity). Required for node-granular clusters, where fractional
  /// grants quantize to zero containers and starve; harmless but
  /// unnecessary on the fluid substrate.
  bool round_to_containers = false;
  /// Plan-ahead coarsening: when the planning horizon exceeds this many
  /// slots, consecutive slots are bucketed so the LP never sees more than
  /// this many load rows. Windows round conservatively (release up,
  /// deadline down), and a bucket's allocation is spread evenly over its
  /// slots. Keeps re-plan latency bounded for day-scale deadlines.
  int max_planning_slots = 360;
  /// Wall-clock allowance for ALL LP solving of one re-plan (warm and cold
  /// rungs share it); <= 0 = unlimited. Enforced by a monotonic-clock
  /// watchdog at pivot granularity, so placements under a wall budget are
  /// machine-dependent — use solver_pivot_budget for reproducible runs.
  double solver_budget_ms = 0.0;
  /// Total simplex pivots one re-plan may spend across every solve; <= 0 =
  /// unlimited. Deterministic, unlike the wall clock: the same scenario and
  /// cap degrade at the same pivot and produce byte-identical placements.
  std::int64_t solver_pivot_budget = 0;
  /// Consecutive clean full-LP re-plans required before degraded mode ends
  /// (hysteresis; see DESIGN.md §10). Every re-plan re-attempts the full
  /// LP regardless — this only delays *reporting* recovery, so one lucky
  /// solve amid a numerical storm does not flap the mode.
  int degrade_recovery_replans = 3;
  /// When true the scheduler never re-plans inside allocate(): an external
  /// driver (runtime::ConcurrentScheduler) watches dirty() and runs the
  /// begin_replan / solve_replan / finish_replan cycle itself — possibly on
  /// another thread — while allocate() keeps serving the current plan.
  /// DESIGN.md §11 documents the threading contract.
  bool external_replan_driver = false;
  /// Cell this scheduler serves when it runs as one shard of a federated
  /// cluster (cluster::FederatedScheduler, DESIGN.md §13); -1 = the whole
  /// cluster. Purely observational: a cell-aware scheduler stamps `cell` on
  /// its replan/arrival trace events and bumps the per-cell
  /// `cluster.cell.<id>.*` counters so multi-cell traces stay separable.
  int cell_id = -1;

  FlowTimeConfig() {
    // Scheduling needs the peak flattened and a couple of refinement
    // levels; full lexicographic refinement is reserved for benches.
    lp.lexmin.max_rounds = 6;
  }
};

/// Why a re-plan was triggered. A single re-plan may coalesce several
/// causes (bitmask); to_string renders e.g. "arrival|deviation".
enum class ReplanCause : unsigned {
  kNone = 0,
  kWorkflowArrival = 1u << 0,  // new deadline work appeared
  kDeviation = 1u << 1,        // completion far from the planned slot
  kOverrun = 1u << 2,          // estimate exhausted, job still running
  kPlanExhausted = 1u << 3,    // current slot past the planned horizon
  kStalePlan = 1u << 4,        // plan allocates to a not-yet-ready job
  kCapacityChange = 1u << 5,   // machine failed or recovered mid-run
  kTaskFailure = 1u << 6,      // a job lost work to a fault and will retry
  kMigration = 1u << 7,        // workflow moved between federation cells
  kFailover = 1u << 8,         // workflow evacuated from a failed cell
};

inline ReplanCause operator|(ReplanCause a, ReplanCause b) {
  return static_cast<ReplanCause>(static_cast<unsigned>(a) |
                                  static_cast<unsigned>(b));
}
inline ReplanCause& operator|=(ReplanCause& a, ReplanCause b) {
  return a = a | b;
}
inline bool has_cause(ReplanCause mask, ReplanCause bit) {
  return (static_cast<unsigned>(mask) & static_cast<unsigned>(bit)) != 0;
}

/// "arrival|deviation|overrun|plan_exhausted|stale_plan" subset.
std::string to_string(ReplanCause causes);

/// Why an escalation-ladder rung was abandoned (DESIGN.md §10). Attached to
/// every `solver_escalation` trace event and, for the first failed rung, to
/// the re-plan's record.
enum class DegradeReason {
  kNone = 0,
  kTimeout,           // wall-clock budget or cancellation fired mid-solve
  kIterationLimit,    // pivot budget (or solver iteration cap) exhausted
  kNumericalFailure,  // solver lost feasibility/optimality numerically
  kInfeasible,        // infeasible even after late-extension window repair
};

const char* to_string(DegradeReason reason);

/// One re-plan, as recorded in FlowTimeScheduler::replan_log() and emitted
/// as a "replan" trace event.
struct ReplanRecord {
  int slot = 0;
  ReplanCause causes = ReplanCause::kNone;
  int planned_jobs = 0;       // incomplete deadline jobs fed to the LP
  std::int64_t pivots = 0;    // simplex pivots this re-plan
  double wall_s = 0.0;        // re-plan wall time (0 when obs disabled)
  int late_extensions = 0;    // jobs whose window had to be extended
  bool capacity_exceeded = false;
  bool lp_failed = false;     // greedy fallback used (degrade_rung == 2)
  /// The lexmin round budget ran out before the load profile was fully
  /// refined: the plan is feasible and its peak exact, but its tail is not
  /// the lexicographic optimum (plan-quality warning, not a failure).
  bool lexmin_truncated = false;
  double max_normalized_load = 0.0;
  /// Escalation-ladder rung that produced this plan: 0 = warm LP,
  /// 1 = cold LP retry, 2 = greedy fallback placement.
  int degrade_rung = 0;
  /// Why rung 0 was abandoned (kNone when the warm LP succeeded). Per-rung
  /// reasons are in the `solver_escalation` trace events.
  DegradeReason degrade_reason = DegradeReason::kNone;
  /// The re-plan's shared SolveBudget ran out at some point of the ladder.
  bool budget_exhausted = false;
  /// At least one resource of the placement was answered by the TU/max-flow
  /// fast path instead of simplex (first-level-only solves that pass the
  /// lp/unimodular flow_representable gate; see LpScheduleOptions).
  bool flow_fast_path = false;
  /// The solve finished (or was preempted) but was never adopted: its
  /// inputs went stale while it ran and the concurrent runtime discarded
  /// it. Synchronous runs never set this.
  bool discarded = false;
};

/// One re-plan in flight, produced by FlowTimeScheduler::begin_replan. The
/// planner/serving split (DESIGN.md §11) hinges on this type: everything
/// the heavy LP solve needs is copied in here, so `solve_replan` can run on
/// a background thread against this immutable snapshot — a plan epoch —
/// while the scheduler keeps serving the current plan. `epoch` captures the
/// planner-state version the inputs were built from; the concurrent runtime
/// compares it against the live version at adoption time to detect solves
/// whose inputs went stale mid-flight.
struct PendingReplan {
  sim::ClusterState state;      // trigger-time snapshot (slot, capacity)
  ReplanRecord record;          // slot/causes filled; solve adds the rest
  std::vector<LpJob> lp_jobs;   // planner inputs, windows already baked
  std::vector<sim::JobUid> lp_uids;
  int horizon_last_slot = 0;
  std::uint64_t epoch = 0;      // planner-state version at build time
  // Merged solver budget (config knobs + active sabotage, tightest wins).
  double budget_wall_ms = 0.0;
  std::int64_t budget_pivot_cap = 0;
  bool force_numerical = false;
  /// Optional cooperative preemption: the async runtime points this at its
  /// cancel flag so a stale solve can be aborted between pivots. Not owned.
  const std::atomic<bool>* cancel = nullptr;
};

/// What one solve produced: the plan rows (per uid, indexed from
/// PendingReplan::state.slot) ready for adoption. Carried separately from
/// the scheduler so a background solve never touches live serving state.
struct PlanSolveResult {
  std::map<sim::JobUid, std::vector<workload::ResourceVec>> rows;
  std::map<sim::JobUid, int> planned_last_slot;  // absolute slot, -1 = none
  std::int64_t pivots = 0;
  /// The solve was abandoned because PendingReplan::cancel fired — the
  /// result must be discarded, not adopted (it skipped the ladder).
  bool preempted = false;
};

/// FlowTime as a sim::Scheduler.
///
/// Threading contract: with the default config the instance is
/// single-threaded, exactly as before. With `external_replan_driver` the
/// class splits into two roles that may run on different threads:
///   * serving — on_event / allocate / begin_replan / finish_replan, all
///     from one thread (the event-loop / simulator thread);
///   * solving — the static `solve_replan`, which reads only its arguments
///     (config copy or stable reference, the warm cache it is handed, and
///     the PendingReplan snapshot) and may therefore run concurrently with
///     serving, provided at most one solve runs at a time per warm cache.
class FlowTimeScheduler : public sim::Scheduler {
 public:
  explicit FlowTimeScheduler(FlowTimeConfig config = {});

  std::string name() const override { return "FlowTime"; }

  const workload::ClusterSpec* cluster_spec() const override {
    return &config_.cluster;
  }

  /// FlowTime consumes the typed event API natively (the legacy virtuals
  /// are bypassed entirely).
  void on_event(const sim::SchedulerEvent& event) override;
  std::vector<sim::Allocation> allocate(
      const sim::ClusterState& state) override;

  // --- Planner / serving split (DESIGN.md §11) ---------------------------
  // The synchronous path is replan() = begin + solve + finish on one
  // thread. The concurrent runtime drives the three steps itself so the
  // solve can move to a background thread. These are building blocks, not
  // a general API: begin/finish must run on the serving thread, and
  // finish_replan must see every begin_replan exactly once (or the pending
  // plan be explicitly abandoned via abandon_replan).

  /// True when some event since the last re-plan invalidated the plan.
  bool dirty() const { return dirty_; }
  /// Causes accumulated since the last re-plan (merged into the next one).
  ReplanCause pending_causes() const { return pending_causes_; }
  /// Version counter of the planner inputs: bumped by every event that
  /// changes what a re-plan would see. A solve built at epoch E is stale
  /// once planner_epoch() > E.
  std::uint64_t planner_epoch() const { return planner_epoch_; }

  /// Starts a re-plan: snapshots planner inputs into a PendingReplan and
  /// clears the dirty flag. Serving thread only.
  PendingReplan begin_replan(const sim::ClusterState& state);
  /// The heavy step: bucketing, escalation ladder, LP solves. Static and
  /// self-contained so it can run on a solver thread; `warm_cache` must not
  /// be shared with a concurrent solve. Updates pending.record in place.
  static PlanSolveResult solve_replan(const FlowTimeConfig& config,
                                      PlacementWarmCache* warm_cache,
                                      PendingReplan& pending);
  /// Adopts a solved plan: installs the rows, updates counters, the replan
  /// log, the degraded-mode state machine and observability. Serving
  /// thread only. `now_s` is adoption time (== pending.state.now_s on the
  /// synchronous path; later under async adoption).
  void finish_replan(const PendingReplan& pending, PlanSolveResult&& solved,
                     double now_s);
  /// Accounts a solve that was discarded unadopted (stale or preempted):
  /// the attempt shows up in replans_discarded()/total_pivots() and the
  /// replan log so solver work is never silently unattributed, and the
  /// planner is re-marked dirty with the discarded solve's causes so the
  /// external driver immediately re-bases a fresh solve — a discard must
  /// never swallow its trigger. Serving thread only.
  void abandon_replan(const PendingReplan& pending,
                      const PlanSolveResult& solved);

  /// First half of allocate(): syncs job state from the authoritative views
  /// (remaining estimates, readiness, the overrun latch, plan-exhaustion).
  /// May mark the scheduler dirty. Idempotent for a given state. The
  /// external replan driver calls this before deciding whether to start a
  /// solve; plain allocate() calls it internally.
  void sync_views(const sim::ClusterState& state);
  /// Second half of allocate(): issues allocations from the current plan
  /// (deadline shares, then max-min fair ad-hoc leftover). Never solves.
  std::vector<sim::Allocation> serve(const sim::ClusterState& state);

  /// Decomposed job deadlines (without slack), for evaluation: every
  /// scheduler in a comparison is judged against these milestones.
  const std::map<workload::WorkflowJobRef, double>& job_deadlines() const {
    return job_deadlines_;
  }

  /// Decomposition of one arrived workflow (for tests and examples).
  const DecompositionResult* decomposition(int workflow_id) const;

  /// Drops one workflow's incomplete deadline jobs from the planning set
  /// (plan rows included) and marks the planner dirty with kMigration. The
  /// federation coordinator calls this on the source cell when it moves a
  /// workflow to another cell; the caller is responsible for re-delivering
  /// the workflow (arrival + completed-job events) to its new owner. The
  /// evaluation milestones in job_deadlines() are kept — the re-delivery
  /// re-derives identical values. Returns the number of incomplete jobs
  /// dropped (0 = nothing to move; the planner is left untouched).
  int forget_workflow(int workflow_id);

  /// Externally asserts a replan trigger. The federation coordinator uses
  /// this to tag a destination cell with kFailover when it re-homes an
  /// evacuated workflow (the forced arrival alone would record only
  /// kWorkflowArrival). The next adopted plan carries the cause.
  void request_replan(ReplanCause cause) { mark_dirty(cause); }

  /// Re-plans whose solution was adopted (counted at finish_replan, so
  /// sync and async runs report comparable numbers). Discarded attempts
  /// are in replans_discarded().
  int replans() const { return replans_; }
  /// Solves that ran but were abandoned unadopted (stale or preempted).
  /// Always 0 on the synchronous path.
  int replans_discarded() const { return replans_discarded_; }
  std::int64_t total_pivots() const { return total_pivots_; }

  /// The effective configuration (after construction-time adjustments);
  /// what an external replan driver must pass to solve_replan.
  const FlowTimeConfig& config() const { return config_; }

  /// One record per re-plan, in order — cause tags, LP stats, fallbacks.
  /// In-process mirror of the "replan" trace events, so tests can assert on
  /// causes without parsing JSONL.
  const std::vector<ReplanRecord>& replan_log() const { return replan_log_; }

  /// Workflows whose decomposition fell back to critical-path splitting
  /// (negative slack) since construction.
  int decomposition_fallbacks() const { return decomposition_fallbacks_; }

  /// Re-plans whose lexmin solve was truncated by the round budget (see
  /// ReplanRecord::lexmin_truncated) since construction.
  int truncated_replans() const { return truncated_replans_; }

  /// Workflows re-decomposed in critical-path mode after a fault left a
  /// job's decomposed window infeasible (negative slack) since
  /// construction. See on_task_failure.
  int fault_redecompositions() const { return fault_redecompositions_; }

  /// True while the scheduler is in degraded mode: some recent re-plan
  /// needed the ladder and fewer than `degrade_recovery_replans` clean
  /// full-LP re-plans have happened since.
  bool degraded_mode() const { return degraded_mode_; }

  /// Re-plans that escalated past the warm LP (rung > 0) since construction.
  int degraded_replans() const { return degraded_replans_; }

 private:
  struct DeadlineJobState {
    sim::JobUid uid = -1;
    workload::WorkflowJobRef ref;
    int release_slot = 0;
    int lp_deadline_slot = 0;  // slack already applied
    workload::ResourceVec width{};
    workload::ResourceVec remaining{};  // estimate, synced from the view
    bool ready = true;
    bool overrun = false;
    bool complete = false;
    int planned_last_slot = -1;  // last slot with planned allocation
  };

  // Event handlers behind on_event (the former legacy virtuals).
  void handle_workflow_arrival(const workload::Workflow& workflow,
                               const std::vector<sim::JobUid>& node_uids,
                               double now_s);
  void handle_adhoc_arrival(sim::JobUid uid);
  void handle_job_complete(sim::JobUid uid, double now_s);
  void handle_capacity_change();
  void handle_task_failure(sim::JobUid uid, double now_s,
                           const sim::ResourceVec& lost_estimate,
                           double retry_at_s);
  void handle_solver_sabotage(double budget_ms, std::int64_t pivot_cap,
                              bool force_numerical_failure);

  void replan(const sim::ClusterState& state);
  void mark_dirty(ReplanCause cause) {
    dirty_ = true;
    pending_causes_ |= cause;
    // Time-derived causes (the clock walked past the planned horizon, or
    // the current plan touched a not-yet-ready job) re-assert every slot
    // until a fresh plan is adopted, and a re-plan started from the same
    // planner inputs already accounts for them. Bumping the epoch for them
    // would re-mark an in-flight solve stale every slot — a solve slower
    // than one slot would then never be adopted.
    if (cause != ReplanCause::kPlanExhausted &&
        cause != ReplanCause::kStalePlan) {
      ++planner_epoch_;
    }
  }
  /// Once per run: compare config_.cluster against the simulator's view.
  void check_cluster_skew(const sim::ClusterState& state);
  int seconds_to_release_slot(double seconds) const;
  int seconds_to_deadline_slot(double seconds) const;
  /// Minimum slots this job needs at full width.
  int min_slots_needed(const DeadlineJobState& job) const;

  FlowTimeConfig config_;
  /// Warm-start cache threaded through every solve_placement call: the
  /// final basis of one re-plan seeds the next when the LP shape (same
  /// jobs, same windows, same horizon) repeats, which is the common case
  /// for deviation/overrun re-plans. Keyed by a shape fingerprint inside
  /// solve_placement; a mismatch falls back to a cold solve. Under the
  /// external replan driver the solver thread owns this exclusively.
  PlacementWarmCache warm_cache_;
  bool dirty_ = false;
  ReplanCause pending_causes_ = ReplanCause::kNone;
  /// Bumped by every event that changes what a re-plan would see (arrivals,
  /// completions, failures, capacity changes, overrun latches) — the
  /// staleness yardstick for asynchronous solves. Per-slot estimate drift
  /// does not count: a plan is not stale merely because time passed.
  std::uint64_t planner_epoch_ = 0;
  bool skew_checked_ = false;
  int replans_ = 0;            // adopted plans only
  int replans_discarded_ = 0;  // stale/preempted solves, never adopted
  std::int64_t total_pivots_ = 0;
  int decomposition_fallbacks_ = 0;
  int truncated_replans_ = 0;
  int fault_redecompositions_ = 0;
  std::vector<ReplanRecord> replan_log_;
  obs::SpanId plan_span_ = obs::kNoSpan;  // current re-plan epoch

  // Degraded-mode state machine (DESIGN.md §10): entered when a re-plan
  // escalates past the warm LP, left after `degrade_recovery_replans`
  // consecutive clean full-LP re-plans.
  bool degraded_mode_ = false;
  int clean_replans_ = 0;       // consecutive rung-0 re-plans while degraded
  int degraded_replans_ = 0;    // lifetime count of rung > 0 re-plans
  obs::SpanId degraded_span_ = obs::kNoSpan;
  // Active solver sabotage injected via on_solver_sabotage (chaos testing);
  // merged into the re-plan budget. budget_ms < 0 and pivot_cap == 0 mean
  // no sabotage.
  double sabotage_budget_ms_ = -1.0;
  std::int64_t sabotage_pivot_cap_ = 0;
  bool sabotage_force_numerical_ = false;

  std::map<sim::JobUid, DeadlineJobState> deadline_jobs_;
  std::vector<sim::JobUid> adhoc_fifo_;  // arrival order
  std::map<workload::WorkflowJobRef, double> job_deadlines_;
  std::map<int, DecompositionResult> decompositions_;  // by workflow id
  /// Arrived workflows, kept so a fault can re-decompose them (the arrival
  /// callback only borrows its Workflow reference).
  std::map<int, workload::Workflow> workflows_;

  // Current plan: allocation per uid from plan_first_slot_ onwards.
  std::map<sim::JobUid, std::vector<workload::ResourceVec>> plan_;
  int plan_first_slot_ = 0;
};

}  // namespace flowtime::core
